file(REMOVE_RECURSE
  "libautobi_common.a"
)
