file(REMOVE_RECURSE
  "CMakeFiles/autobi_common.dir/rng.cc.o"
  "CMakeFiles/autobi_common.dir/rng.cc.o.d"
  "CMakeFiles/autobi_common.dir/stats_util.cc.o"
  "CMakeFiles/autobi_common.dir/stats_util.cc.o.d"
  "CMakeFiles/autobi_common.dir/strings.cc.o"
  "CMakeFiles/autobi_common.dir/strings.cc.o.d"
  "libautobi_common.a"
  "libautobi_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autobi_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
