# Empty dependencies file for autobi_common.
# This may be replaced when dependencies are built.
