# Empty compiler generated dependencies file for autobi_ml.
# This may be replaced when dependencies are built.
