file(REMOVE_RECURSE
  "CMakeFiles/autobi_ml.dir/calibration.cc.o"
  "CMakeFiles/autobi_ml.dir/calibration.cc.o.d"
  "CMakeFiles/autobi_ml.dir/dataset.cc.o"
  "CMakeFiles/autobi_ml.dir/dataset.cc.o.d"
  "CMakeFiles/autobi_ml.dir/decision_tree.cc.o"
  "CMakeFiles/autobi_ml.dir/decision_tree.cc.o.d"
  "CMakeFiles/autobi_ml.dir/gbdt.cc.o"
  "CMakeFiles/autobi_ml.dir/gbdt.cc.o.d"
  "CMakeFiles/autobi_ml.dir/logistic.cc.o"
  "CMakeFiles/autobi_ml.dir/logistic.cc.o.d"
  "CMakeFiles/autobi_ml.dir/metrics.cc.o"
  "CMakeFiles/autobi_ml.dir/metrics.cc.o.d"
  "CMakeFiles/autobi_ml.dir/random_forest.cc.o"
  "CMakeFiles/autobi_ml.dir/random_forest.cc.o.d"
  "libautobi_ml.a"
  "libautobi_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autobi_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
