file(REMOVE_RECURSE
  "libautobi_ml.a"
)
