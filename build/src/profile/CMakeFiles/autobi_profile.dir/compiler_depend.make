# Empty compiler generated dependencies file for autobi_profile.
# This may be replaced when dependencies are built.
