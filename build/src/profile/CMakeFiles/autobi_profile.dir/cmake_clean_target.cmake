file(REMOVE_RECURSE
  "libautobi_profile.a"
)
