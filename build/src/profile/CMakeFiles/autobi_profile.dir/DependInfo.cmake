
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profile/column_profile.cc" "src/profile/CMakeFiles/autobi_profile.dir/column_profile.cc.o" "gcc" "src/profile/CMakeFiles/autobi_profile.dir/column_profile.cc.o.d"
  "/root/repo/src/profile/emd.cc" "src/profile/CMakeFiles/autobi_profile.dir/emd.cc.o" "gcc" "src/profile/CMakeFiles/autobi_profile.dir/emd.cc.o.d"
  "/root/repo/src/profile/ind.cc" "src/profile/CMakeFiles/autobi_profile.dir/ind.cc.o" "gcc" "src/profile/CMakeFiles/autobi_profile.dir/ind.cc.o.d"
  "/root/repo/src/profile/spider.cc" "src/profile/CMakeFiles/autobi_profile.dir/spider.cc.o" "gcc" "src/profile/CMakeFiles/autobi_profile.dir/spider.cc.o.d"
  "/root/repo/src/profile/ucc.cc" "src/profile/CMakeFiles/autobi_profile.dir/ucc.cc.o" "gcc" "src/profile/CMakeFiles/autobi_profile.dir/ucc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/table/CMakeFiles/autobi_table.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/autobi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
