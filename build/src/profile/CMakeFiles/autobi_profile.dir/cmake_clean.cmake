file(REMOVE_RECURSE
  "CMakeFiles/autobi_profile.dir/column_profile.cc.o"
  "CMakeFiles/autobi_profile.dir/column_profile.cc.o.d"
  "CMakeFiles/autobi_profile.dir/emd.cc.o"
  "CMakeFiles/autobi_profile.dir/emd.cc.o.d"
  "CMakeFiles/autobi_profile.dir/ind.cc.o"
  "CMakeFiles/autobi_profile.dir/ind.cc.o.d"
  "CMakeFiles/autobi_profile.dir/spider.cc.o"
  "CMakeFiles/autobi_profile.dir/spider.cc.o.d"
  "CMakeFiles/autobi_profile.dir/ucc.cc.o"
  "CMakeFiles/autobi_profile.dir/ucc.cc.o.d"
  "libautobi_profile.a"
  "libautobi_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autobi_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
