file(REMOVE_RECURSE
  "libautobi_text.a"
)
