file(REMOVE_RECURSE
  "CMakeFiles/autobi_text.dir/embedding.cc.o"
  "CMakeFiles/autobi_text.dir/embedding.cc.o.d"
  "CMakeFiles/autobi_text.dir/similarity.cc.o"
  "CMakeFiles/autobi_text.dir/similarity.cc.o.d"
  "CMakeFiles/autobi_text.dir/tokenize.cc.o"
  "CMakeFiles/autobi_text.dir/tokenize.cc.o.d"
  "libautobi_text.a"
  "libautobi_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autobi_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
