# Empty compiler generated dependencies file for autobi_text.
# This may be replaced when dependencies are built.
