file(REMOVE_RECURSE
  "libautobi_core.a"
)
