file(REMOVE_RECURSE
  "CMakeFiles/autobi_core.dir/auto_bi.cc.o"
  "CMakeFiles/autobi_core.dir/auto_bi.cc.o.d"
  "CMakeFiles/autobi_core.dir/bi_model.cc.o"
  "CMakeFiles/autobi_core.dir/bi_model.cc.o.d"
  "CMakeFiles/autobi_core.dir/candidates.cc.o"
  "CMakeFiles/autobi_core.dir/candidates.cc.o.d"
  "CMakeFiles/autobi_core.dir/case_io.cc.o"
  "CMakeFiles/autobi_core.dir/case_io.cc.o.d"
  "CMakeFiles/autobi_core.dir/explain.cc.o"
  "CMakeFiles/autobi_core.dir/explain.cc.o.d"
  "CMakeFiles/autobi_core.dir/graph_builder.cc.o"
  "CMakeFiles/autobi_core.dir/graph_builder.cc.o.d"
  "CMakeFiles/autobi_core.dir/join_stats.cc.o"
  "CMakeFiles/autobi_core.dir/join_stats.cc.o.d"
  "CMakeFiles/autobi_core.dir/local_model.cc.o"
  "CMakeFiles/autobi_core.dir/local_model.cc.o.d"
  "CMakeFiles/autobi_core.dir/model_export.cc.o"
  "CMakeFiles/autobi_core.dir/model_export.cc.o.d"
  "CMakeFiles/autobi_core.dir/schema_summary.cc.o"
  "CMakeFiles/autobi_core.dir/schema_summary.cc.o.d"
  "CMakeFiles/autobi_core.dir/suggest.cc.o"
  "CMakeFiles/autobi_core.dir/suggest.cc.o.d"
  "CMakeFiles/autobi_core.dir/trainer.cc.o"
  "CMakeFiles/autobi_core.dir/trainer.cc.o.d"
  "libautobi_core.a"
  "libautobi_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autobi_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
