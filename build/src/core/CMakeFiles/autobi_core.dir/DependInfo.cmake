
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/auto_bi.cc" "src/core/CMakeFiles/autobi_core.dir/auto_bi.cc.o" "gcc" "src/core/CMakeFiles/autobi_core.dir/auto_bi.cc.o.d"
  "/root/repo/src/core/bi_model.cc" "src/core/CMakeFiles/autobi_core.dir/bi_model.cc.o" "gcc" "src/core/CMakeFiles/autobi_core.dir/bi_model.cc.o.d"
  "/root/repo/src/core/candidates.cc" "src/core/CMakeFiles/autobi_core.dir/candidates.cc.o" "gcc" "src/core/CMakeFiles/autobi_core.dir/candidates.cc.o.d"
  "/root/repo/src/core/case_io.cc" "src/core/CMakeFiles/autobi_core.dir/case_io.cc.o" "gcc" "src/core/CMakeFiles/autobi_core.dir/case_io.cc.o.d"
  "/root/repo/src/core/explain.cc" "src/core/CMakeFiles/autobi_core.dir/explain.cc.o" "gcc" "src/core/CMakeFiles/autobi_core.dir/explain.cc.o.d"
  "/root/repo/src/core/graph_builder.cc" "src/core/CMakeFiles/autobi_core.dir/graph_builder.cc.o" "gcc" "src/core/CMakeFiles/autobi_core.dir/graph_builder.cc.o.d"
  "/root/repo/src/core/join_stats.cc" "src/core/CMakeFiles/autobi_core.dir/join_stats.cc.o" "gcc" "src/core/CMakeFiles/autobi_core.dir/join_stats.cc.o.d"
  "/root/repo/src/core/local_model.cc" "src/core/CMakeFiles/autobi_core.dir/local_model.cc.o" "gcc" "src/core/CMakeFiles/autobi_core.dir/local_model.cc.o.d"
  "/root/repo/src/core/model_export.cc" "src/core/CMakeFiles/autobi_core.dir/model_export.cc.o" "gcc" "src/core/CMakeFiles/autobi_core.dir/model_export.cc.o.d"
  "/root/repo/src/core/schema_summary.cc" "src/core/CMakeFiles/autobi_core.dir/schema_summary.cc.o" "gcc" "src/core/CMakeFiles/autobi_core.dir/schema_summary.cc.o.d"
  "/root/repo/src/core/suggest.cc" "src/core/CMakeFiles/autobi_core.dir/suggest.cc.o" "gcc" "src/core/CMakeFiles/autobi_core.dir/suggest.cc.o.d"
  "/root/repo/src/core/trainer.cc" "src/core/CMakeFiles/autobi_core.dir/trainer.cc.o" "gcc" "src/core/CMakeFiles/autobi_core.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/features/CMakeFiles/autobi_features.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/autobi_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/autobi_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/autobi_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/autobi_table.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/autobi_text.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/autobi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
