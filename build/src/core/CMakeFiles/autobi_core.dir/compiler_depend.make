# Empty compiler generated dependencies file for autobi_core.
# This may be replaced when dependencies are built.
