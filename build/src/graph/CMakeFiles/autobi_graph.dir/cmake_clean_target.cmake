file(REMOVE_RECURSE
  "libautobi_graph.a"
)
