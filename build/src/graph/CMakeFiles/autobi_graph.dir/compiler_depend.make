# Empty compiler generated dependencies file for autobi_graph.
# This may be replaced when dependencies are built.
