file(REMOVE_RECURSE
  "CMakeFiles/autobi_graph.dir/brute_force.cc.o"
  "CMakeFiles/autobi_graph.dir/brute_force.cc.o.d"
  "CMakeFiles/autobi_graph.dir/edmonds.cc.o"
  "CMakeFiles/autobi_graph.dir/edmonds.cc.o.d"
  "CMakeFiles/autobi_graph.dir/ems.cc.o"
  "CMakeFiles/autobi_graph.dir/ems.cc.o.d"
  "CMakeFiles/autobi_graph.dir/join_graph.cc.o"
  "CMakeFiles/autobi_graph.dir/join_graph.cc.o.d"
  "CMakeFiles/autobi_graph.dir/kmca.cc.o"
  "CMakeFiles/autobi_graph.dir/kmca.cc.o.d"
  "CMakeFiles/autobi_graph.dir/kmca_cc.cc.o"
  "CMakeFiles/autobi_graph.dir/kmca_cc.cc.o.d"
  "CMakeFiles/autobi_graph.dir/validate.cc.o"
  "CMakeFiles/autobi_graph.dir/validate.cc.o.d"
  "libautobi_graph.a"
  "libautobi_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autobi_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
