
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/brute_force.cc" "src/graph/CMakeFiles/autobi_graph.dir/brute_force.cc.o" "gcc" "src/graph/CMakeFiles/autobi_graph.dir/brute_force.cc.o.d"
  "/root/repo/src/graph/edmonds.cc" "src/graph/CMakeFiles/autobi_graph.dir/edmonds.cc.o" "gcc" "src/graph/CMakeFiles/autobi_graph.dir/edmonds.cc.o.d"
  "/root/repo/src/graph/ems.cc" "src/graph/CMakeFiles/autobi_graph.dir/ems.cc.o" "gcc" "src/graph/CMakeFiles/autobi_graph.dir/ems.cc.o.d"
  "/root/repo/src/graph/join_graph.cc" "src/graph/CMakeFiles/autobi_graph.dir/join_graph.cc.o" "gcc" "src/graph/CMakeFiles/autobi_graph.dir/join_graph.cc.o.d"
  "/root/repo/src/graph/kmca.cc" "src/graph/CMakeFiles/autobi_graph.dir/kmca.cc.o" "gcc" "src/graph/CMakeFiles/autobi_graph.dir/kmca.cc.o.d"
  "/root/repo/src/graph/kmca_cc.cc" "src/graph/CMakeFiles/autobi_graph.dir/kmca_cc.cc.o" "gcc" "src/graph/CMakeFiles/autobi_graph.dir/kmca_cc.cc.o.d"
  "/root/repo/src/graph/validate.cc" "src/graph/CMakeFiles/autobi_graph.dir/validate.cc.o" "gcc" "src/graph/CMakeFiles/autobi_graph.dir/validate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/autobi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
