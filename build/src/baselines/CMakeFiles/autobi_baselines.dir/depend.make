# Empty dependencies file for autobi_baselines.
# This may be replaced when dependencies are built.
