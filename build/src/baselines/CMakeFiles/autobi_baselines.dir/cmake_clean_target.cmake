file(REMOVE_RECURSE
  "libautobi_baselines.a"
)
