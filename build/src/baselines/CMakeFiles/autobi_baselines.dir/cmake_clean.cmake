file(REMOVE_RECURSE
  "CMakeFiles/autobi_baselines.dir/fk_baselines.cc.o"
  "CMakeFiles/autobi_baselines.dir/fk_baselines.cc.o.d"
  "CMakeFiles/autobi_baselines.dir/ml_fk.cc.o"
  "CMakeFiles/autobi_baselines.dir/ml_fk.cc.o.d"
  "libautobi_baselines.a"
  "libautobi_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autobi_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
