# Empty compiler generated dependencies file for autobi_features.
# This may be replaced when dependencies are built.
