file(REMOVE_RECURSE
  "CMakeFiles/autobi_features.dir/featurizer.cc.o"
  "CMakeFiles/autobi_features.dir/featurizer.cc.o.d"
  "CMakeFiles/autobi_features.dir/name_frequency.cc.o"
  "CMakeFiles/autobi_features.dir/name_frequency.cc.o.d"
  "libautobi_features.a"
  "libautobi_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autobi_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
