file(REMOVE_RECURSE
  "libautobi_features.a"
)
