
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/features/featurizer.cc" "src/features/CMakeFiles/autobi_features.dir/featurizer.cc.o" "gcc" "src/features/CMakeFiles/autobi_features.dir/featurizer.cc.o.d"
  "/root/repo/src/features/name_frequency.cc" "src/features/CMakeFiles/autobi_features.dir/name_frequency.cc.o" "gcc" "src/features/CMakeFiles/autobi_features.dir/name_frequency.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/profile/CMakeFiles/autobi_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/autobi_text.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/autobi_table.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/autobi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
