# Empty compiler generated dependencies file for autobi_table.
# This may be replaced when dependencies are built.
