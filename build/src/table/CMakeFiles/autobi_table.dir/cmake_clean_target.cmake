file(REMOVE_RECURSE
  "libautobi_table.a"
)
