file(REMOVE_RECURSE
  "CMakeFiles/autobi_table.dir/column.cc.o"
  "CMakeFiles/autobi_table.dir/column.cc.o.d"
  "CMakeFiles/autobi_table.dir/csv.cc.o"
  "CMakeFiles/autobi_table.dir/csv.cc.o.d"
  "CMakeFiles/autobi_table.dir/sql_ddl.cc.o"
  "CMakeFiles/autobi_table.dir/sql_ddl.cc.o.d"
  "CMakeFiles/autobi_table.dir/table.cc.o"
  "CMakeFiles/autobi_table.dir/table.cc.o.d"
  "CMakeFiles/autobi_table.dir/value.cc.o"
  "CMakeFiles/autobi_table.dir/value.cc.o.d"
  "libautobi_table.a"
  "libautobi_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autobi_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
