
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/bi_generator.cc" "src/synth/CMakeFiles/autobi_synth.dir/bi_generator.cc.o" "gcc" "src/synth/CMakeFiles/autobi_synth.dir/bi_generator.cc.o.d"
  "/root/repo/src/synth/classic_dbs.cc" "src/synth/CMakeFiles/autobi_synth.dir/classic_dbs.cc.o" "gcc" "src/synth/CMakeFiles/autobi_synth.dir/classic_dbs.cc.o.d"
  "/root/repo/src/synth/corpus.cc" "src/synth/CMakeFiles/autobi_synth.dir/corpus.cc.o" "gcc" "src/synth/CMakeFiles/autobi_synth.dir/corpus.cc.o.d"
  "/root/repo/src/synth/names.cc" "src/synth/CMakeFiles/autobi_synth.dir/names.cc.o" "gcc" "src/synth/CMakeFiles/autobi_synth.dir/names.cc.o.d"
  "/root/repo/src/synth/schema_builder.cc" "src/synth/CMakeFiles/autobi_synth.dir/schema_builder.cc.o" "gcc" "src/synth/CMakeFiles/autobi_synth.dir/schema_builder.cc.o.d"
  "/root/repo/src/synth/tpc_util.cc" "src/synth/CMakeFiles/autobi_synth.dir/tpc_util.cc.o" "gcc" "src/synth/CMakeFiles/autobi_synth.dir/tpc_util.cc.o.d"
  "/root/repo/src/synth/tpcc.cc" "src/synth/CMakeFiles/autobi_synth.dir/tpcc.cc.o" "gcc" "src/synth/CMakeFiles/autobi_synth.dir/tpcc.cc.o.d"
  "/root/repo/src/synth/tpcds.cc" "src/synth/CMakeFiles/autobi_synth.dir/tpcds.cc.o" "gcc" "src/synth/CMakeFiles/autobi_synth.dir/tpcds.cc.o.d"
  "/root/repo/src/synth/tpce.cc" "src/synth/CMakeFiles/autobi_synth.dir/tpce.cc.o" "gcc" "src/synth/CMakeFiles/autobi_synth.dir/tpce.cc.o.d"
  "/root/repo/src/synth/tpch.cc" "src/synth/CMakeFiles/autobi_synth.dir/tpch.cc.o" "gcc" "src/synth/CMakeFiles/autobi_synth.dir/tpch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/autobi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/autobi_table.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/autobi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/autobi_features.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/autobi_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/autobi_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/autobi_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/autobi_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
