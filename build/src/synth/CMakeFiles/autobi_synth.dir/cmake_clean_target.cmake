file(REMOVE_RECURSE
  "libautobi_synth.a"
)
