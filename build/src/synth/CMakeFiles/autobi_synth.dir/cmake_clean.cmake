file(REMOVE_RECURSE
  "CMakeFiles/autobi_synth.dir/bi_generator.cc.o"
  "CMakeFiles/autobi_synth.dir/bi_generator.cc.o.d"
  "CMakeFiles/autobi_synth.dir/classic_dbs.cc.o"
  "CMakeFiles/autobi_synth.dir/classic_dbs.cc.o.d"
  "CMakeFiles/autobi_synth.dir/corpus.cc.o"
  "CMakeFiles/autobi_synth.dir/corpus.cc.o.d"
  "CMakeFiles/autobi_synth.dir/names.cc.o"
  "CMakeFiles/autobi_synth.dir/names.cc.o.d"
  "CMakeFiles/autobi_synth.dir/schema_builder.cc.o"
  "CMakeFiles/autobi_synth.dir/schema_builder.cc.o.d"
  "CMakeFiles/autobi_synth.dir/tpc_util.cc.o"
  "CMakeFiles/autobi_synth.dir/tpc_util.cc.o.d"
  "CMakeFiles/autobi_synth.dir/tpcc.cc.o"
  "CMakeFiles/autobi_synth.dir/tpcc.cc.o.d"
  "CMakeFiles/autobi_synth.dir/tpcds.cc.o"
  "CMakeFiles/autobi_synth.dir/tpcds.cc.o.d"
  "CMakeFiles/autobi_synth.dir/tpce.cc.o"
  "CMakeFiles/autobi_synth.dir/tpce.cc.o.d"
  "CMakeFiles/autobi_synth.dir/tpch.cc.o"
  "CMakeFiles/autobi_synth.dir/tpch.cc.o.d"
  "libautobi_synth.a"
  "libautobi_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autobi_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
