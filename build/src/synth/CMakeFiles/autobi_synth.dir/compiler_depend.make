# Empty compiler generated dependencies file for autobi_synth.
# This may be replaced when dependencies are built.
