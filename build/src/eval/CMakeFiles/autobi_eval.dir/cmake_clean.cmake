file(REMOVE_RECURSE
  "CMakeFiles/autobi_eval.dir/harness.cc.o"
  "CMakeFiles/autobi_eval.dir/harness.cc.o.d"
  "CMakeFiles/autobi_eval.dir/metrics.cc.o"
  "CMakeFiles/autobi_eval.dir/metrics.cc.o.d"
  "CMakeFiles/autobi_eval.dir/report.cc.o"
  "CMakeFiles/autobi_eval.dir/report.cc.o.d"
  "libautobi_eval.a"
  "libautobi_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autobi_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
