# Empty compiler generated dependencies file for autobi_eval.
# This may be replaced when dependencies are built.
