file(REMOVE_RECURSE
  "libautobi_eval.a"
)
