# Empty dependencies file for bench_table9_latency.
# This may be replaced when dependencies are built.
