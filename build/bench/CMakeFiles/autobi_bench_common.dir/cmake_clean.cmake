file(REMOVE_RECURSE
  "CMakeFiles/autobi_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/autobi_bench_common.dir/bench_common.cc.o.d"
  "libautobi_bench_common.a"
  "libautobi_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autobi_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
