file(REMOVE_RECURSE
  "libautobi_bench_common.a"
)
