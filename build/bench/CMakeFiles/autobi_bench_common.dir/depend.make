# Empty dependencies file for autobi_bench_common.
# This may be replaced when dependencies are built.
