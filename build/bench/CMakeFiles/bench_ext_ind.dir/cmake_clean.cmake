file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_ind.dir/bench_ext_ind.cc.o"
  "CMakeFiles/bench_ext_ind.dir/bench_ext_ind.cc.o.d"
  "bench_ext_ind"
  "bench_ext_ind.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_ind.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
