# Empty dependencies file for bench_ext_ind.
# This may be replaced when dependencies are built.
