# Empty dependencies file for bench_ext_classifiers.
# This may be replaced when dependencies are built.
