file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_classifiers.dir/bench_ext_classifiers.cc.o"
  "CMakeFiles/bench_ext_classifiers.dir/bench_ext_classifiers.cc.o.d"
  "bench_ext_classifiers"
  "bench_ext_classifiers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_classifiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
