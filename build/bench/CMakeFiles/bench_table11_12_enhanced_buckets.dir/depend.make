# Empty dependencies file for bench_table11_12_enhanced_buckets.
# This may be replaced when dependencies are built.
