file(REMOVE_RECURSE
  "CMakeFiles/bench_table11_12_enhanced_buckets.dir/bench_table11_12_enhanced_buckets.cc.o"
  "CMakeFiles/bench_table11_12_enhanced_buckets.dir/bench_table11_12_enhanced_buckets.cc.o.d"
  "bench_table11_12_enhanced_buckets"
  "bench_table11_12_enhanced_buckets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table11_12_enhanced_buckets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
