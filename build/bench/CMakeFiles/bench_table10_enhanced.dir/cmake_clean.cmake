file(REMOVE_RECURSE
  "CMakeFiles/bench_table10_enhanced.dir/bench_table10_enhanced.cc.o"
  "CMakeFiles/bench_table10_enhanced.dir/bench_table10_enhanced.cc.o.d"
  "bench_table10_enhanced"
  "bench_table10_enhanced.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table10_enhanced.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
