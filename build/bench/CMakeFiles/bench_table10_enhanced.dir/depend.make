# Empty dependencies file for bench_table10_enhanced.
# This may be replaced when dependencies are built.
