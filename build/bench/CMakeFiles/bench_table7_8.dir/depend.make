# Empty dependencies file for bench_table7_8.
# This may be replaced when dependencies are built.
