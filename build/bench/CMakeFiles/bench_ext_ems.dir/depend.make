# Empty dependencies file for bench_ext_ems.
# This may be replaced when dependencies are built.
