file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_ems.dir/bench_ext_ems.cc.o"
  "CMakeFiles/bench_ext_ems.dir/bench_ext_ems.cc.o.d"
  "bench_ext_ems"
  "bench_ext_ems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_ems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
