# Empty dependencies file for bench_fig6_kmcacc.
# This may be replaced when dependencies are built.
