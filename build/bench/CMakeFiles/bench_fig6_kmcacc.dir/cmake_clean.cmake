file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_kmcacc.dir/bench_fig6_kmcacc.cc.o"
  "CMakeFiles/bench_fig6_kmcacc.dir/bench_fig6_kmcacc.cc.o.d"
  "bench_fig6_kmcacc"
  "bench_fig6_kmcacc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_kmcacc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
