file(REMOVE_RECURSE
  "CMakeFiles/autobi_integration_tests.dir/baselines_test.cc.o"
  "CMakeFiles/autobi_integration_tests.dir/baselines_test.cc.o.d"
  "CMakeFiles/autobi_integration_tests.dir/integration_test.cc.o"
  "CMakeFiles/autobi_integration_tests.dir/integration_test.cc.o.d"
  "CMakeFiles/autobi_integration_tests.dir/prediction_property_test.cc.o"
  "CMakeFiles/autobi_integration_tests.dir/prediction_property_test.cc.o.d"
  "CMakeFiles/autobi_integration_tests.dir/trainer_options_test.cc.o"
  "CMakeFiles/autobi_integration_tests.dir/trainer_options_test.cc.o.d"
  "autobi_integration_tests"
  "autobi_integration_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autobi_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
