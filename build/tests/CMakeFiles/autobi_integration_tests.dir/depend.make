# Empty dependencies file for autobi_integration_tests.
# This may be replaced when dependencies are built.
