
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/case_io_test.cc" "tests/CMakeFiles/autobi_core_tests.dir/case_io_test.cc.o" "gcc" "tests/CMakeFiles/autobi_core_tests.dir/case_io_test.cc.o.d"
  "/root/repo/tests/core_test.cc" "tests/CMakeFiles/autobi_core_tests.dir/core_test.cc.o" "gcc" "tests/CMakeFiles/autobi_core_tests.dir/core_test.cc.o.d"
  "/root/repo/tests/edge_cases_test.cc" "tests/CMakeFiles/autobi_core_tests.dir/edge_cases_test.cc.o" "gcc" "tests/CMakeFiles/autobi_core_tests.dir/edge_cases_test.cc.o.d"
  "/root/repo/tests/eval_test.cc" "tests/CMakeFiles/autobi_core_tests.dir/eval_test.cc.o" "gcc" "tests/CMakeFiles/autobi_core_tests.dir/eval_test.cc.o.d"
  "/root/repo/tests/explain_summary_test.cc" "tests/CMakeFiles/autobi_core_tests.dir/explain_summary_test.cc.o" "gcc" "tests/CMakeFiles/autobi_core_tests.dir/explain_summary_test.cc.o.d"
  "/root/repo/tests/graph_builder_test.cc" "tests/CMakeFiles/autobi_core_tests.dir/graph_builder_test.cc.o" "gcc" "tests/CMakeFiles/autobi_core_tests.dir/graph_builder_test.cc.o.d"
  "/root/repo/tests/harness_test.cc" "tests/CMakeFiles/autobi_core_tests.dir/harness_test.cc.o" "gcc" "tests/CMakeFiles/autobi_core_tests.dir/harness_test.cc.o.d"
  "/root/repo/tests/join_stats_test.cc" "tests/CMakeFiles/autobi_core_tests.dir/join_stats_test.cc.o" "gcc" "tests/CMakeFiles/autobi_core_tests.dir/join_stats_test.cc.o.d"
  "/root/repo/tests/model_export_test.cc" "tests/CMakeFiles/autobi_core_tests.dir/model_export_test.cc.o" "gcc" "tests/CMakeFiles/autobi_core_tests.dir/model_export_test.cc.o.d"
  "/root/repo/tests/report_test.cc" "tests/CMakeFiles/autobi_core_tests.dir/report_test.cc.o" "gcc" "tests/CMakeFiles/autobi_core_tests.dir/report_test.cc.o.d"
  "/root/repo/tests/sql_ddl_test.cc" "tests/CMakeFiles/autobi_core_tests.dir/sql_ddl_test.cc.o" "gcc" "tests/CMakeFiles/autobi_core_tests.dir/sql_ddl_test.cc.o.d"
  "/root/repo/tests/suggest_test.cc" "tests/CMakeFiles/autobi_core_tests.dir/suggest_test.cc.o" "gcc" "tests/CMakeFiles/autobi_core_tests.dir/suggest_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/synth/CMakeFiles/autobi_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/autobi_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/autobi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/autobi_features.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/autobi_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/autobi_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/autobi_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/autobi_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/autobi_table.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/autobi_text.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/autobi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
