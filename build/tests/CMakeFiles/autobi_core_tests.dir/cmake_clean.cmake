file(REMOVE_RECURSE
  "CMakeFiles/autobi_core_tests.dir/case_io_test.cc.o"
  "CMakeFiles/autobi_core_tests.dir/case_io_test.cc.o.d"
  "CMakeFiles/autobi_core_tests.dir/core_test.cc.o"
  "CMakeFiles/autobi_core_tests.dir/core_test.cc.o.d"
  "CMakeFiles/autobi_core_tests.dir/edge_cases_test.cc.o"
  "CMakeFiles/autobi_core_tests.dir/edge_cases_test.cc.o.d"
  "CMakeFiles/autobi_core_tests.dir/eval_test.cc.o"
  "CMakeFiles/autobi_core_tests.dir/eval_test.cc.o.d"
  "CMakeFiles/autobi_core_tests.dir/explain_summary_test.cc.o"
  "CMakeFiles/autobi_core_tests.dir/explain_summary_test.cc.o.d"
  "CMakeFiles/autobi_core_tests.dir/graph_builder_test.cc.o"
  "CMakeFiles/autobi_core_tests.dir/graph_builder_test.cc.o.d"
  "CMakeFiles/autobi_core_tests.dir/harness_test.cc.o"
  "CMakeFiles/autobi_core_tests.dir/harness_test.cc.o.d"
  "CMakeFiles/autobi_core_tests.dir/join_stats_test.cc.o"
  "CMakeFiles/autobi_core_tests.dir/join_stats_test.cc.o.d"
  "CMakeFiles/autobi_core_tests.dir/model_export_test.cc.o"
  "CMakeFiles/autobi_core_tests.dir/model_export_test.cc.o.d"
  "CMakeFiles/autobi_core_tests.dir/report_test.cc.o"
  "CMakeFiles/autobi_core_tests.dir/report_test.cc.o.d"
  "CMakeFiles/autobi_core_tests.dir/sql_ddl_test.cc.o"
  "CMakeFiles/autobi_core_tests.dir/sql_ddl_test.cc.o.d"
  "CMakeFiles/autobi_core_tests.dir/suggest_test.cc.o"
  "CMakeFiles/autobi_core_tests.dir/suggest_test.cc.o.d"
  "autobi_core_tests"
  "autobi_core_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autobi_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
