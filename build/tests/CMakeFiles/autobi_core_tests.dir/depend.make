# Empty dependencies file for autobi_core_tests.
# This may be replaced when dependencies are built.
