# Empty dependencies file for autobi_synth_tests.
# This may be replaced when dependencies are built.
