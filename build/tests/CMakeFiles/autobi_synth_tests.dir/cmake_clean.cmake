file(REMOVE_RECURSE
  "CMakeFiles/autobi_synth_tests.dir/names_test.cc.o"
  "CMakeFiles/autobi_synth_tests.dir/names_test.cc.o.d"
  "CMakeFiles/autobi_synth_tests.dir/synth_test.cc.o"
  "CMakeFiles/autobi_synth_tests.dir/synth_test.cc.o.d"
  "CMakeFiles/autobi_synth_tests.dir/tpc_depth_test.cc.o"
  "CMakeFiles/autobi_synth_tests.dir/tpc_depth_test.cc.o.d"
  "autobi_synth_tests"
  "autobi_synth_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autobi_synth_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
