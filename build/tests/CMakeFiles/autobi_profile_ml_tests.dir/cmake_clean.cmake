file(REMOVE_RECURSE
  "CMakeFiles/autobi_profile_ml_tests.dir/emd_test.cc.o"
  "CMakeFiles/autobi_profile_ml_tests.dir/emd_test.cc.o.d"
  "CMakeFiles/autobi_profile_ml_tests.dir/gbdt_test.cc.o"
  "CMakeFiles/autobi_profile_ml_tests.dir/gbdt_test.cc.o.d"
  "CMakeFiles/autobi_profile_ml_tests.dir/ind_test.cc.o"
  "CMakeFiles/autobi_profile_ml_tests.dir/ind_test.cc.o.d"
  "CMakeFiles/autobi_profile_ml_tests.dir/ml_test.cc.o"
  "CMakeFiles/autobi_profile_ml_tests.dir/ml_test.cc.o.d"
  "CMakeFiles/autobi_profile_ml_tests.dir/profile_test.cc.o"
  "CMakeFiles/autobi_profile_ml_tests.dir/profile_test.cc.o.d"
  "CMakeFiles/autobi_profile_ml_tests.dir/spider_test.cc.o"
  "CMakeFiles/autobi_profile_ml_tests.dir/spider_test.cc.o.d"
  "CMakeFiles/autobi_profile_ml_tests.dir/ucc_test.cc.o"
  "CMakeFiles/autobi_profile_ml_tests.dir/ucc_test.cc.o.d"
  "autobi_profile_ml_tests"
  "autobi_profile_ml_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autobi_profile_ml_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
