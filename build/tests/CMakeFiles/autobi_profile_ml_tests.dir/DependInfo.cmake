
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/emd_test.cc" "tests/CMakeFiles/autobi_profile_ml_tests.dir/emd_test.cc.o" "gcc" "tests/CMakeFiles/autobi_profile_ml_tests.dir/emd_test.cc.o.d"
  "/root/repo/tests/gbdt_test.cc" "tests/CMakeFiles/autobi_profile_ml_tests.dir/gbdt_test.cc.o" "gcc" "tests/CMakeFiles/autobi_profile_ml_tests.dir/gbdt_test.cc.o.d"
  "/root/repo/tests/ind_test.cc" "tests/CMakeFiles/autobi_profile_ml_tests.dir/ind_test.cc.o" "gcc" "tests/CMakeFiles/autobi_profile_ml_tests.dir/ind_test.cc.o.d"
  "/root/repo/tests/ml_test.cc" "tests/CMakeFiles/autobi_profile_ml_tests.dir/ml_test.cc.o" "gcc" "tests/CMakeFiles/autobi_profile_ml_tests.dir/ml_test.cc.o.d"
  "/root/repo/tests/profile_test.cc" "tests/CMakeFiles/autobi_profile_ml_tests.dir/profile_test.cc.o" "gcc" "tests/CMakeFiles/autobi_profile_ml_tests.dir/profile_test.cc.o.d"
  "/root/repo/tests/spider_test.cc" "tests/CMakeFiles/autobi_profile_ml_tests.dir/spider_test.cc.o" "gcc" "tests/CMakeFiles/autobi_profile_ml_tests.dir/spider_test.cc.o.d"
  "/root/repo/tests/ucc_test.cc" "tests/CMakeFiles/autobi_profile_ml_tests.dir/ucc_test.cc.o" "gcc" "tests/CMakeFiles/autobi_profile_ml_tests.dir/ucc_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/profile/CMakeFiles/autobi_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/autobi_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/autobi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/autobi_table.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
