# Empty dependencies file for autobi_profile_ml_tests.
# This may be replaced when dependencies are built.
