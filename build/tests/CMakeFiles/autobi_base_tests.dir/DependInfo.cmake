
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/csv_test.cc" "tests/CMakeFiles/autobi_base_tests.dir/csv_test.cc.o" "gcc" "tests/CMakeFiles/autobi_base_tests.dir/csv_test.cc.o.d"
  "/root/repo/tests/embedding_test.cc" "tests/CMakeFiles/autobi_base_tests.dir/embedding_test.cc.o" "gcc" "tests/CMakeFiles/autobi_base_tests.dir/embedding_test.cc.o.d"
  "/root/repo/tests/rng_test.cc" "tests/CMakeFiles/autobi_base_tests.dir/rng_test.cc.o" "gcc" "tests/CMakeFiles/autobi_base_tests.dir/rng_test.cc.o.d"
  "/root/repo/tests/similarity_test.cc" "tests/CMakeFiles/autobi_base_tests.dir/similarity_test.cc.o" "gcc" "tests/CMakeFiles/autobi_base_tests.dir/similarity_test.cc.o.d"
  "/root/repo/tests/stats_util_test.cc" "tests/CMakeFiles/autobi_base_tests.dir/stats_util_test.cc.o" "gcc" "tests/CMakeFiles/autobi_base_tests.dir/stats_util_test.cc.o.d"
  "/root/repo/tests/strings_test.cc" "tests/CMakeFiles/autobi_base_tests.dir/strings_test.cc.o" "gcc" "tests/CMakeFiles/autobi_base_tests.dir/strings_test.cc.o.d"
  "/root/repo/tests/table_test.cc" "tests/CMakeFiles/autobi_base_tests.dir/table_test.cc.o" "gcc" "tests/CMakeFiles/autobi_base_tests.dir/table_test.cc.o.d"
  "/root/repo/tests/tokenize_test.cc" "tests/CMakeFiles/autobi_base_tests.dir/tokenize_test.cc.o" "gcc" "tests/CMakeFiles/autobi_base_tests.dir/tokenize_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/table/CMakeFiles/autobi_table.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/autobi_text.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/autobi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
