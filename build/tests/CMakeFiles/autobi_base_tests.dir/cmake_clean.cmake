file(REMOVE_RECURSE
  "CMakeFiles/autobi_base_tests.dir/csv_test.cc.o"
  "CMakeFiles/autobi_base_tests.dir/csv_test.cc.o.d"
  "CMakeFiles/autobi_base_tests.dir/embedding_test.cc.o"
  "CMakeFiles/autobi_base_tests.dir/embedding_test.cc.o.d"
  "CMakeFiles/autobi_base_tests.dir/rng_test.cc.o"
  "CMakeFiles/autobi_base_tests.dir/rng_test.cc.o.d"
  "CMakeFiles/autobi_base_tests.dir/similarity_test.cc.o"
  "CMakeFiles/autobi_base_tests.dir/similarity_test.cc.o.d"
  "CMakeFiles/autobi_base_tests.dir/stats_util_test.cc.o"
  "CMakeFiles/autobi_base_tests.dir/stats_util_test.cc.o.d"
  "CMakeFiles/autobi_base_tests.dir/strings_test.cc.o"
  "CMakeFiles/autobi_base_tests.dir/strings_test.cc.o.d"
  "CMakeFiles/autobi_base_tests.dir/table_test.cc.o"
  "CMakeFiles/autobi_base_tests.dir/table_test.cc.o.d"
  "CMakeFiles/autobi_base_tests.dir/tokenize_test.cc.o"
  "CMakeFiles/autobi_base_tests.dir/tokenize_test.cc.o.d"
  "autobi_base_tests"
  "autobi_base_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autobi_base_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
