# Empty compiler generated dependencies file for autobi_base_tests.
# This may be replaced when dependencies are built.
