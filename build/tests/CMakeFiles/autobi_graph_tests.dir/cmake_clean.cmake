file(REMOVE_RECURSE
  "CMakeFiles/autobi_graph_tests.dir/auto_bi_test.cc.o"
  "CMakeFiles/autobi_graph_tests.dir/auto_bi_test.cc.o.d"
  "CMakeFiles/autobi_graph_tests.dir/ems_exact_test.cc.o"
  "CMakeFiles/autobi_graph_tests.dir/ems_exact_test.cc.o.d"
  "CMakeFiles/autobi_graph_tests.dir/graph_test.cc.o"
  "CMakeFiles/autobi_graph_tests.dir/graph_test.cc.o.d"
  "autobi_graph_tests"
  "autobi_graph_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autobi_graph_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
