
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/auto_bi_test.cc" "tests/CMakeFiles/autobi_graph_tests.dir/auto_bi_test.cc.o" "gcc" "tests/CMakeFiles/autobi_graph_tests.dir/auto_bi_test.cc.o.d"
  "/root/repo/tests/ems_exact_test.cc" "tests/CMakeFiles/autobi_graph_tests.dir/ems_exact_test.cc.o" "gcc" "tests/CMakeFiles/autobi_graph_tests.dir/ems_exact_test.cc.o.d"
  "/root/repo/tests/graph_test.cc" "tests/CMakeFiles/autobi_graph_tests.dir/graph_test.cc.o" "gcc" "tests/CMakeFiles/autobi_graph_tests.dir/graph_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/autobi_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/autobi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
