# Empty compiler generated dependencies file for autobi_graph_tests.
# This may be replaced when dependencies are built.
