# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(autobi_base_tests "/root/repo/build/tests/autobi_base_tests")
set_tests_properties(autobi_base_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;72;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(autobi_profile_ml_tests "/root/repo/build/tests/autobi_profile_ml_tests")
set_tests_properties(autobi_profile_ml_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;72;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(autobi_graph_tests "/root/repo/build/tests/autobi_graph_tests")
set_tests_properties(autobi_graph_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;72;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(autobi_core_tests "/root/repo/build/tests/autobi_core_tests")
set_tests_properties(autobi_core_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;72;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(autobi_synth_tests "/root/repo/build/tests/autobi_synth_tests")
set_tests_properties(autobi_synth_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;72;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(autobi_integration_tests "/root/repo/build/tests/autobi_integration_tests")
set_tests_properties(autobi_integration_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;72;add_test;/root/repo/tests/CMakeLists.txt;0;")
