
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/csv_autobi.cc" "examples/CMakeFiles/csv_autobi.dir/csv_autobi.cc.o" "gcc" "examples/CMakeFiles/csv_autobi.dir/csv_autobi.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/synth/CMakeFiles/autobi_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/autobi_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/autobi_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/autobi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/autobi_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/autobi_features.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/autobi_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/autobi_table.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/autobi_text.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/autobi_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/autobi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
