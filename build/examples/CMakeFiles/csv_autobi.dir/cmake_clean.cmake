file(REMOVE_RECURSE
  "CMakeFiles/csv_autobi.dir/csv_autobi.cc.o"
  "CMakeFiles/csv_autobi.dir/csv_autobi.cc.o.d"
  "csv_autobi"
  "csv_autobi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_autobi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
