# Empty compiler generated dependencies file for csv_autobi.
# This may be replaced when dependencies are built.
