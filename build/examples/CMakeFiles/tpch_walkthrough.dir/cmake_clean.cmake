file(REMOVE_RECURSE
  "CMakeFiles/tpch_walkthrough.dir/tpch_walkthrough.cc.o"
  "CMakeFiles/tpch_walkthrough.dir/tpch_walkthrough.cc.o.d"
  "tpch_walkthrough"
  "tpch_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
