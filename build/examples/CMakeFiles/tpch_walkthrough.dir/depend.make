# Empty dependencies file for tpch_walkthrough.
# This may be replaced when dependencies are built.
