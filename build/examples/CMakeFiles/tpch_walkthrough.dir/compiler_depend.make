# Empty compiler generated dependencies file for tpch_walkthrough.
# This may be replaced when dependencies are built.
