# Empty compiler generated dependencies file for eval_case.
# This may be replaced when dependencies are built.
