file(REMOVE_RECURSE
  "CMakeFiles/eval_case.dir/eval_case.cc.o"
  "CMakeFiles/eval_case.dir/eval_case.cc.o.d"
  "eval_case"
  "eval_case.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_case.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
