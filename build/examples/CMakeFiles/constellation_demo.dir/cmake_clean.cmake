file(REMOVE_RECURSE
  "CMakeFiles/constellation_demo.dir/constellation_demo.cc.o"
  "CMakeFiles/constellation_demo.dir/constellation_demo.cc.o.d"
  "constellation_demo"
  "constellation_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constellation_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
