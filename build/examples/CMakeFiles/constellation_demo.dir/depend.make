# Empty dependencies file for constellation_demo.
# This may be replaced when dependencies are built.
