# Empty compiler generated dependencies file for constellation_demo.
# This may be replaced when dependencies are built.
