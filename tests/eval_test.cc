#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "eval/report.h"

namespace autobi {
namespace {

Join N1(int ft, int fc, int tt, int tc) {
  return Join{ColumnRef{ft, {fc}}, ColumnRef{tt, {tc}}, JoinKind::kNToOne};
}
Join OneOne(int ft, int fc, int tt, int tc) {
  return Join{ColumnRef{ft, {fc}}, ColumnRef{tt, {tc}}, JoinKind::kOneToOne}
      .Normalized();
}

TEST(EvaluateCaseTest, PerfectPrediction) {
  BiCase c;
  c.ground_truth.joins = {N1(0, 0, 1, 0), N1(0, 1, 2, 0)};
  BiModel pred;
  pred.joins = {N1(0, 0, 1, 0), N1(0, 1, 2, 0)};
  EdgeMetrics m = EvaluateCase(c, pred);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
  EXPECT_TRUE(m.case_correct);
}

TEST(EvaluateCaseTest, FalsePositiveBreaksCasePrecision) {
  BiCase c;
  c.ground_truth.joins = {N1(0, 0, 1, 0)};
  BiModel pred;
  pred.joins = {N1(0, 0, 1, 0), N1(0, 1, 2, 0)};
  EdgeMetrics m = EvaluateCase(c, pred);
  EXPECT_DOUBLE_EQ(m.precision, 0.5);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_FALSE(m.case_correct);
}

TEST(EvaluateCaseTest, WrongDirectionIsIncorrect) {
  BiCase c;
  c.ground_truth.joins = {N1(0, 0, 1, 0)};
  BiModel pred;
  pred.joins = {N1(1, 0, 0, 0)};
  EdgeMetrics m = EvaluateCase(c, pred);
  EXPECT_DOUBLE_EQ(m.precision, 0.0);
  EXPECT_DOUBLE_EQ(m.recall, 0.0);
}

TEST(EvaluateCaseTest, EmptyPredictionOnEmptyTruthIsPerfect) {
  BiCase c;
  BiModel pred;
  EdgeMetrics m = EvaluateCase(c, pred);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_TRUE(m.case_correct);
}

TEST(EvaluateCaseTest, EmptyPredictionOnNonEmptyTruthScoresZero) {
  BiCase c;
  c.ground_truth.joins = {N1(0, 0, 1, 0)};
  EdgeMetrics m = EvaluateCase(c, BiModel{});
  EXPECT_DOUBLE_EQ(m.precision, 0.0);
  EXPECT_DOUBLE_EQ(m.recall, 0.0);
}

TEST(EvaluateCaseTest, DuplicatePredictionsNotDoubleCounted) {
  BiCase c;
  c.ground_truth.joins = {N1(0, 0, 1, 0)};
  BiModel pred;
  pred.joins = {N1(0, 0, 1, 0), N1(0, 0, 1, 0)};
  EdgeMetrics m = EvaluateCase(c, pred);
  EXPECT_EQ(m.correct, 1u);
  EXPECT_DOUBLE_EQ(m.precision, 0.5);
}

// Footnote 7: F -(N:1)-> A -(1:1)- B is equivalent to F -(N:1)-> B plus
// B -(1:1)- A.
TEST(EvaluateCaseTest, SemanticEquivalenceAcrossOneToOne) {
  BiCase c;
  // Truth: F(0) -> A(1); A(1) 1:1 B(2).
  c.ground_truth.joins = {N1(0, 0, 1, 0), OneOne(1, 0, 2, 0)};
  // Prediction: F -> B; B 1:1 A. Semantically identical.
  BiModel pred;
  pred.joins = {N1(0, 0, 2, 0), OneOne(2, 0, 1, 0)};
  EdgeMetrics m = EvaluateCase(c, pred);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_TRUE(m.case_correct);
}

TEST(EvaluateCaseTest, EquivalenceDoesNotLeakAcrossUnrelatedRefs) {
  BiCase c;
  c.ground_truth.joins = {N1(0, 0, 1, 0), OneOne(1, 0, 2, 0)};
  // F -> C(3) is NOT in any 1:1 class with A.
  BiModel pred;
  pred.joins = {N1(0, 0, 3, 0)};
  EdgeMetrics m = EvaluateCase(c, pred);
  EXPECT_DOUBLE_EQ(m.precision, 0.0);
}

TEST(EvaluateCaseTest, PredictedOneToOneMatchesNToOneTruthEitherWay) {
  BiCase c;
  c.ground_truth.joins = {N1(0, 0, 1, 0)};
  BiModel pred;
  pred.joins = {OneOne(1, 0, 0, 0)};
  EdgeMetrics m = EvaluateCase(c, pred);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
}

TEST(AggregateTest, AveragesAcrossCases) {
  EdgeMetrics a;
  a.precision = 1.0;
  a.recall = 0.5;
  a.f1 = 2.0 / 3.0;
  a.case_correct = true;
  EdgeMetrics b;
  b.precision = 0.5;
  b.recall = 1.0;
  b.f1 = 2.0 / 3.0;
  b.case_correct = false;
  AggregateMetrics agg = Aggregate({a, b});
  EXPECT_DOUBLE_EQ(agg.precision, 0.75);
  EXPECT_DOUBLE_EQ(agg.recall, 0.75);
  EXPECT_DOUBLE_EQ(agg.case_precision, 0.5);
  EXPECT_EQ(agg.num_cases, 2u);
}

TEST(ReportTest, FormattingHelpers) {
  EXPECT_EQ(Fmt3(0.97342), "0.973");
  EXPECT_EQ(FmtSeconds(1.5), "1.500s");
}

}  // namespace
}  // namespace autobi
