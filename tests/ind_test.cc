#include "profile/ind.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/strings.h"
#include "tests/test_util.h"

namespace autobi {
namespace {

// Convenience: run discovery with profiling + UCCs.
std::vector<Ind> Discover(const std::vector<Table>& tables,
                          const IndOptions& options = {}) {
  auto profiles = ProfileTables(tables);
  std::vector<std::vector<Ucc>> uccs;
  for (size_t i = 0; i < tables.size(); ++i) {
    uccs.push_back(DiscoverUccs(tables[i], profiles[i]));
  }
  return DiscoverInds(tables, profiles, uccs, options);
}

TEST(IndTest, FindsFullInclusion) {
  std::vector<Table> tables;
  tables.push_back(MakeTable(
      "fact", {{"cust_id", {"1", "2", "2", "3", "1"}}}));
  tables.push_back(MakeTable("dim", {{"id", SeqCells(1, 5)}}));
  std::vector<Ind> inds = Discover(tables);
  ASSERT_FALSE(inds.empty());
  bool found = false;
  for (const Ind& ind : inds) {
    if (ind.dependent.table == 0 && ind.referenced.table == 1) {
      found = true;
      EXPECT_DOUBLE_EQ(ind.containment, 1.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(IndTest, RespectsContainmentThreshold) {
  std::vector<Table> tables;
  // Only 2 of 4 distinct fact values appear in the dim.
  tables.push_back(MakeTable("fact", {{"x", {"1", "2", "8", "9"}}}));
  tables.push_back(MakeTable("dim", {{"id", SeqCells(1, 4)}}));
  IndOptions strict;
  strict.min_containment = 0.9;
  EXPECT_TRUE(Discover(tables, strict).empty());
  IndOptions loose;
  loose.min_containment = 0.4;
  EXPECT_FALSE(Discover(tables, loose).empty());
}

TEST(IndTest, ReferencedSideMustBeKeyLike) {
  std::vector<Table> tables;
  tables.push_back(MakeTable("a", {{"x", {"1", "2"}}}));
  tables.push_back(MakeTable("b", {{"y", {"1", "1", "2", "2", "1"}}}));
  // b.y has distinct ratio 0.4 < 0.9: no IND a.x ⊆ b.y.
  for (const Ind& ind : Discover(tables)) {
    EXPECT_NE(ind.referenced.table, 1);
  }
}

TEST(IndTest, NumericRangeScreenDoesNotDropOverlapping) {
  std::vector<Table> tables;
  tables.push_back(MakeTable("a", {{"x", {"5", "6"}}}));
  tables.push_back(MakeTable("b", {{"y", SeqCells(1, 10)}}));
  EXPECT_FALSE(Discover(tables).empty());
}

TEST(IndTest, DisjointRangesProduceNothing) {
  std::vector<Table> tables;
  tables.push_back(MakeTable("a", {{"x", {"100", "200"}}}));
  tables.push_back(MakeTable("b", {{"y", SeqCells(1, 10)}}));
  EXPECT_TRUE(Discover(tables).empty());
}

TEST(CompositeContainmentTest, ExactTupleMatching) {
  Table a = MakeTable("a", {{"p", {"1", "1", "2"}}, {"q", {"7", "8", "7"}}});
  Table b = MakeTable("b", {{"p", {"1", "1", "2"}}, {"q", {"7", "8", "8"}}});
  // Distinct tuples of a: (1,7),(1,8),(2,7); of b: (1,7),(1,8),(2,8).
  EXPECT_NEAR(CompositeContainment(a, {0, 1}, b, {0, 1}), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(CompositeContainment(a, {0, 1}, a, {0, 1}), 1.0);
}

TEST(IndTest, CompositeIndAgainstCompositeUcc) {
  // Referenced table keyed by (a,b); dependent tuples drawn from it.
  std::vector<Table> tables;
  tables.push_back(MakeTable(
      "fact",
      {{"fa", {"1", "1", "2", "2", "1"}}, {"fb", {"1", "2", "1", "2", "1"}}}));
  tables.push_back(MakeTable(
      "link", {{"a", {"1", "1", "2", "2"}}, {"b", {"1", "2", "1", "2"}}}));
  IndOptions opt;
  opt.min_referenced_distinct_ratio = 0.9;
  std::vector<Ind> inds = Discover(tables, opt);
  bool composite_found = false;
  for (const Ind& ind : inds) {
    if (ind.IsComposite() && ind.dependent.table == 0 &&
        ind.referenced.table == 1) {
      composite_found = true;
      EXPECT_EQ(ind.dependent.columns.size(), 2u);
      EXPECT_DOUBLE_EQ(ind.containment, 1.0);
    }
  }
  EXPECT_TRUE(composite_found);
}

// Regression (PR 2 tentpole cache): the referenced composite tuple-hash set
// is built at most once per (table, UCC) even when several dependent tables
// probe the same UCC — before the cache it was rebuilt on every probe.
TEST(IndTest, CompositeReferencedSetBuiltOncePerUcc) {
  // dim's columns are individually non-unique; (a,b) is its only (minimal,
  // composite) UCC. The three fact tables have duplicated rows, so they have
  // no UCCs and are never referenced sides themselves.
  std::vector<Table> tables;
  tables.push_back(MakeTable(
      "dim", {{"a", {"1", "1", "2", "2"}}, {"b", {"1", "2", "1", "2"}}}));
  for (const char* name : {"f1", "f2", "f3"}) {
    tables.push_back(MakeTable(
        name, {{"fa", {"1", "1", "2", "2"}}, {"fb", {"1", "1", "2", "2"}}}));
  }
  auto profiles = ProfileTables(tables);
  std::vector<std::vector<Ucc>> uccs;
  for (size_t i = 0; i < tables.size(); ++i) {
    uccs.push_back(DiscoverUccs(tables[i], profiles[i]));
  }
  ASSERT_EQ(uccs[0].size(), 1u);
  ASSERT_EQ(uccs[0][0].columns.size(), 2u);

  for (int threads : {1, 8}) {
    IndOptions opt;
    opt.threads = threads;
    IndStats stats;
    DiscoverInds(tables, profiles, uccs, opt, &stats);
    // Every fact table probed dim's (a,b) UCC...
    EXPECT_GE(stats.composite_probes, 3u) << "threads=" << threads;
    // ...but the referenced tuple-hash set was constructed exactly once.
    EXPECT_EQ(stats.composite_sets_built, 1u) << "threads=" << threads;
    EXPECT_EQ(stats.composite_budget_truncations, 0u);
  }
}

// Regression (PR 2 budget fix): exhausting max_composite_probes terminates
// ALL composite probing for the pair (it used to silently continue with the
// next UCC) and the truncation is recorded, not silent.
TEST(IndTest, CompositeBudgetTerminatesPairAndRecordsTruncation) {
  // dim has three minimal composite UCCs: (a,b), (a,c), (b,c); each admits
  // two source assignments from fact's (fa, fb).
  std::vector<Table> tables;
  tables.push_back(MakeTable("dim", {{"a", {"1", "1", "2", "2"}},
                                     {"b", {"1", "2", "1", "2"}},
                                     {"c", {"1", "2", "2", "1"}}}));
  tables.push_back(MakeTable(
      "fact", {{"fa", {"1", "1", "2", "2"}}, {"fb", {"1", "1", "2", "2"}}}));
  auto profiles = ProfileTables(tables);
  std::vector<std::vector<Ucc>> uccs;
  for (size_t i = 0; i < tables.size(); ++i) {
    uccs.push_back(DiscoverUccs(tables[i], profiles[i]));
  }
  ASSERT_EQ(uccs[0].size(), 3u);

  IndOptions opt;
  opt.max_composite_probes = 1;
  IndStats stats;
  DiscoverInds(tables, profiles, uccs, opt, &stats);
  // Exactly one probe executed, then the pair's budget cut off everything —
  // including the two untouched UCCs (5 enumerable assignments remained).
  EXPECT_EQ(stats.composite_probes, 1u);
  EXPECT_EQ(stats.composite_budget_truncations, 1u);

  // With a budget that covers the space there is no truncation.
  IndOptions roomy;
  roomy.max_composite_probes = 64;
  IndStats full;
  DiscoverInds(tables, profiles, uccs, roomy, &full);
  EXPECT_EQ(full.composite_budget_truncations, 0u);
  EXPECT_EQ(full.composite_probes, 6u);
}

// Property test: discovered unary INDs exactly match a naive O(n^2)
// reference computation over random tables.
class IndPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IndPropertyTest, MatchesNaiveReference) {
  Rng rng(GetParam());
  // Random small tables with int columns over random ranges.
  std::vector<Table> tables;
  for (int t = 0; t < 3; ++t) {
    std::vector<std::pair<std::string, std::vector<std::string>>> cols;
    size_t ncols = 1 + rng.NextBelow(3);
    // One row count per table: Table's contract requires equal-length
    // columns (Table::Validate), and the columnar key view checks it.
    size_t rows = 5 + rng.NextBelow(20);
    for (size_t c = 0; c < ncols; ++c) {
      std::vector<std::string> cells;
      long lo = long(rng.NextBelow(5));
      long hi = lo + 3 + long(rng.NextBelow(25));
      for (size_t r = 0; r < rows; ++r) {
        cells.push_back(std::to_string(rng.NextInt(lo, hi)));
      }
      cols.emplace_back(StrFormat("c%zu", c), cells);
    }
    tables.push_back(MakeTable(StrFormat("t%d", t), cols));
  }
  IndOptions opt;
  opt.max_arity = 1;  // Compare unary only.
  std::vector<Ind> inds = Discover(tables, opt);

  // Naive reference.
  auto profiles = ProfileTables(tables);
  size_t expected = 0;
  for (size_t ti = 0; ti < tables.size(); ++ti) {
    for (size_t tj = 0; tj < tables.size(); ++tj) {
      if (ti == tj) continue;
      for (size_t a = 0; a < tables[ti].num_columns(); ++a) {
        for (size_t bcol = 0; bcol < tables[tj].num_columns(); ++bcol) {
          const ColumnProfile& pa = profiles[ti].columns[a];
          const ColumnProfile& pb = profiles[tj].columns[bcol];
          if (pa.num_distinct < opt.min_distinct) continue;
          if (pb.non_null_count == 0 ||
              pb.distinct_ratio < opt.min_referenced_distinct_ratio) {
            continue;
          }
          if (pa.non_null_count == 0) continue;
          // Row-weighted reference, matching Containment's contract,
          // rebuilt from the pooled distinct keys.
          DistinctKeyMap ma = BuildDistinctKeyMap(pa);
          DistinctKeyMap mb = BuildDistinctKeyMap(pb);
          int64_t hits = 0;
          for (const auto& [key, count] : ma) {
            if (mb.count(key)) hits += count;
          }
          double containment = double(hits) / double(pa.non_null_count);
          if (containment >= opt.min_containment) ++expected;
        }
      }
    }
  }
  EXPECT_EQ(inds.size(), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndPropertyTest,
                         ::testing::Range(uint64_t{1}, uint64_t{11}));

}  // namespace
}  // namespace autobi
