// Kernel-oracle equivalence suite (PR 7): the hash-first columnar kernels
// (table/key_view.h + radix-sorted aggregation) must be *bit-identical* to
// the retained legacy string-map/string-set kernels on every surface the
// pipeline consumes — canonical key bytes, ColumnProfile fields, UCC sets,
// composite IND key sets and containments, and end-to-end candidates — on
// adversarial randomized data (nulls, escape bytes '|' and '\', int/double
// canonicalization edges, mixed-type columns), on the synthetic REAL corpus,
// and on TPC-H ingested through the SQL-DDL path, at 1, 2, and 8 threads.
//
// scripts/check.sh runs this file under ASan/UBSan on every invocation.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "core/candidates.h"
#include "profile/column_profile.h"
#include "profile/ind.h"
#include "profile/sketch.h"
#include "profile/ucc.h"
#include "synth/corpus.h"
#include "synth/tpch_ddl.h"
#include "table/key_view.h"
#include "tests/test_util.h"

namespace autobi {
namespace {

// Adversarial cell pool: empty (= null), the tuple-escape bytes '|' and '\'
// alone / doubled / embedded, int canonicalization edges (leading zeros,
// negative zero, INT64_MIN, > 2^53), double rendering edges (integral
// doubles below/above the 1e15 canonicalization cutoff, tiny/huge
// magnitudes), and plain strings with spaces and multi-byte characters.
const char* const kAdversarialPool[] = {
    "",        "a",       "b",     "a|b",   "a\\b",  "|",
    "\\",      "\\|",     "|\\",   "||",    "a|",    "|b",
    "a\\|b",   "0",       "-0",    "7",     "007",   "-7",
    "42",      "1000000000000000",  "9007199254740993",
    "-9223372036854775808",        "3.5",   "-3.5",  "0.125",
    "1e300",   "-1e-300", "1e15",  "999999999999999",
    "2.000000000001",     "x y",   " lead", "trail ", "ümlaut",
};

std::vector<std::string> RandomCells(Rng& rng, size_t rows) {
  // Per-column shape: 0 = ints, 1 = doubles, 2 = adversarial strings,
  // 3 = mixed (forces a string column over numeric-looking cells).
  int kind = int(rng.NextBelow(4));
  double null_p = double(rng.NextBelow(4)) * 0.1;
  std::vector<std::string> cells;
  for (size_t r = 0; r < rows; ++r) {
    if (rng.NextDouble() < null_p) {
      cells.push_back("");
      continue;
    }
    switch (kind) {
      case 0:
        cells.push_back(std::to_string(rng.NextInt(-30, 30)));
        break;
      case 1:
        cells.push_back(StrFormat("%lld.%llu",
                                  (long long)rng.NextInt(-20, 20),
                                  (unsigned long long)rng.NextBelow(100)));
        break;
      default: {
        const size_t pool =
            sizeof(kAdversarialPool) / sizeof(kAdversarialPool[0]);
        // Skip index 0 ("") so null frequency stays governed by null_p; for
        // the mixed shape interleave numeric-looking and string cells.
        size_t i = 1 + rng.NextBelow(pool - 1);
        if (kind == 3 && rng.NextBelow(2) == 0) {
          cells.push_back(std::to_string(rng.NextInt(0, 20)));
        } else {
          cells.push_back(kAdversarialPool[i]);
        }
        break;
      }
    }
  }
  return cells;
}

Table RandomTable(Rng& rng, const std::string& name) {
  size_t rows = 5 + rng.NextBelow(60);
  size_t ncols = 1 + rng.NextBelow(4);
  std::vector<std::pair<std::string, std::vector<std::string>>> cols;
  for (size_t c = 0; c < ncols; ++c) {
    cols.emplace_back(StrFormat("c%zu", c), RandomCells(rng, rows));
  }
  return MakeTable(name, cols);
}

void ExpectProfilesIdentical(const ColumnProfile& a, const ColumnProfile& b) {
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.row_count, b.row_count);
  EXPECT_EQ(a.non_null_count, b.non_null_count);
  EXPECT_EQ(a.num_distinct, b.num_distinct);
  EXPECT_EQ(a.distinct_hashes, b.distinct_hashes);
  EXPECT_EQ(a.distinct_counts, b.distinct_counts);
  EXPECT_EQ(a.distinct_pool, b.distinct_pool);
  EXPECT_EQ(a.distinct_offsets, b.distinct_offsets);
  EXPECT_EQ(a.distinct_ratio, b.distinct_ratio);  // Bitwise, not NEAR.
  EXPECT_EQ(a.is_numeric, b.is_numeric);
  EXPECT_EQ(a.min_value, b.min_value);
  EXPECT_EQ(a.max_value, b.max_value);
  EXPECT_EQ(a.sorted_numeric_sample, b.sorted_numeric_sample);
  EXPECT_EQ(a.avg_value_length, b.avg_value_length);
  EXPECT_EQ(a.key_bytes, b.key_bytes);
  EXPECT_EQ(a.collision_hashes, b.collision_hashes);
  EXPECT_EQ(a.collision_keys, b.collision_keys);
}

// Legacy-profiled TableProfile, assembled column-by-column through the
// string-map oracle.
TableProfile ProfileTableLegacy(const Table& t) {
  TableProfile tp;
  tp.row_count = t.num_rows();
  for (size_t c = 0; c < t.num_columns(); ++c) {
    tp.columns.push_back(ProfileColumnLegacy(t.column(c)));
  }
  return tp;
}

std::string UccsToString(const std::vector<Ucc>& uccs) {
  std::string out;
  for (const Ucc& u : uccs) {
    for (int c : u.columns) out += StrFormat("%d,", c);
    out += ";";
  }
  return out;
}

std::string IndsToString(const std::vector<Ind>& inds) {
  std::string out;
  for (const Ind& ind : inds) {
    out += StrFormat("%d:", ind.dependent.table);
    for (int c : ind.dependent.columns) out += StrFormat("%d,", c);
    out += StrFormat("->%d:", ind.referenced.table);
    for (int c : ind.referenced.columns) out += StrFormat("%d,", c);
    out += StrFormat("@%.17g;", ind.containment);
  }
  return out;
}

std::string CandidatesToString(const std::vector<JoinCandidate>& cands) {
  std::string out;
  for (const JoinCandidate& jc : cands) {
    out += StrFormat("%d:", jc.src.table);
    for (int c : jc.src.columns) out += StrFormat("%d,", c);
    out += StrFormat("->%d:", jc.dst.table);
    for (int c : jc.dst.columns) out += StrFormat("%d,", c);
    out += StrFormat("@%.17g/%.17g/%d;", jc.left_containment,
                     jc.right_containment, jc.one_to_one ? 1 : 0);
  }
  return out;
}

class KernelOracleTest : public ::testing::TestWithParam<uint64_t> {};

// The columnar key view reproduces Column::KeyAt byte-for-byte, including
// null placement and the stable hash identity.
TEST_P(KernelOracleTest, KeyViewMatchesKeyAt) {
  Rng rng(GetParam() * 7919 + 1);
  Table t = RandomTable(rng, "kv");
  TableKeyView view(t);
  ASSERT_EQ(view.num_columns(), t.num_columns());
  for (size_t c = 0; c < t.num_columns(); ++c) {
    const Column& col = t.column(c);
    const ColumnKeyView& cv = view.column(c);
    ASSERT_EQ(cv.size(), t.num_rows());
    size_t non_null = 0;
    size_t bytes = 0;
    std::string key;
    for (size_t r = 0; r < t.num_rows(); ++r) {
      ASSERT_EQ(cv.IsNull(r), col.IsNull(r)) << "col " << c << " row " << r;
      if (col.IsNull(r)) continue;
      ASSERT_TRUE(col.KeyAt(r, &key));
      EXPECT_EQ(cv.key(r), key) << "col " << c << " row " << r;
      EXPECT_EQ(cv.hash(r), StableHash64(key));
      ++non_null;
      bytes += key.size();
    }
    EXPECT_EQ(cv.num_non_null(), non_null);
    EXPECT_EQ(cv.key_bytes(), bytes);
  }
}

// The radix-sort profiling kernel is bit-identical to the string-map oracle
// on every ColumnProfile field (including the pooled distinct keys and their
// (hash, first-row) order).
TEST_P(KernelOracleTest, ProfileMatchesLegacyOracle) {
  Rng rng(GetParam() * 104729 + 2);
  Table t = RandomTable(rng, "prof");
  TableKeyView view(t);
  for (size_t c = 0; c < t.num_columns(); ++c) {
    ColumnProfile hashed = ProfileColumn(t.column(c));
    ColumnProfile via_view = ProfileColumn(t.column(c), view.column(c));
    ColumnProfile legacy = ProfileColumnLegacy(t.column(c));
    ExpectProfilesIdentical(hashed, legacy);
    ExpectProfilesIdentical(via_view, legacy);
  }
}

// UCC discovery with the hash-first candidate checks (lazy and prebuilt
// views) returns exactly the legacy string-set lattice result.
TEST_P(KernelOracleTest, UccsMatchLegacyOracle) {
  Rng rng(GetParam() * 15485863 + 3);
  Table t = RandomTable(rng, "ucc");
  TableProfile profile = ProfileTable(t);
  UccOptions legacy_opt;
  legacy_opt.legacy_kernel = true;
  std::vector<Ucc> legacy = DiscoverUccs(t, profile, legacy_opt);
  std::vector<Ucc> lazy = DiscoverUccs(t, profile);
  TableKeyView view(t);
  std::vector<Ucc> prebuilt = DiscoverUccs(t, profile, {}, &view);
  EXPECT_EQ(UccsToString(lazy), UccsToString(legacy));
  EXPECT_EQ(UccsToString(prebuilt), UccsToString(legacy));

  // And the point kernel agrees on every arity-1/2 combination directly.
  for (size_t a = 0; a < t.num_columns(); ++a) {
    std::vector<int> cols = {int(a)};
    EXPECT_EQ(IsUniqueCombination(t, cols), IsUniqueCombinationLegacy(t, cols));
    for (size_t b = a + 1; b < t.num_columns(); ++b) {
      cols = {int(a), int(b)};
      EXPECT_EQ(IsUniqueCombination(t, cols),
                IsUniqueCombinationLegacy(t, cols));
      EXPECT_EQ(IsUniqueCombination(view, cols),
                IsUniqueCombinationLegacy(t, cols));
    }
  }
}

// Composite key sets and containments from the streamed view kernel equal
// the per-row KeyAt/TupleHash oracles.
TEST_P(KernelOracleTest, CompositeKernelsMatchLegacyOracle) {
  Rng rng(GetParam() * 32452843 + 4);
  Table a = RandomTable(rng, "ca");
  Table b = RandomTable(rng, "cb");
  for (size_t i = 0; i < a.num_columns(); ++i) {
    for (size_t j = i + 1; j < a.num_columns(); ++j) {
      std::vector<int> ca = {int(i), int(j)};
      EXPECT_EQ(BuildCompositeKeySet(a, ca), BuildCompositeKeySetLegacy(a, ca));
      for (size_t k = 0; k + 1 < b.num_columns(); ++k) {
        std::vector<int> cb = {int(k), int(k + 1)};
        EXPECT_EQ(CompositeContainment(a, ca, b, cb),
                  CompositeContainmentLegacy(a, ca, b, cb));
      }
    }
  }
}

// IND discovery fed by hash-first profiles/UCCs returns exactly the INDs of
// the all-legacy pipeline (legacy profiles, legacy UCC kernel), serially and
// with a thread pool.
TEST_P(KernelOracleTest, IndsMatchLegacyPipeline) {
  Rng rng(GetParam() * 49979687 + 5);
  std::vector<Table> tables;
  for (int t = 0; t < 3; ++t) {
    tables.push_back(RandomTable(rng, StrFormat("t%d", t)));
  }
  std::vector<TableProfile> profiles = ProfileTables(tables);
  std::vector<TableProfile> legacy_profiles;
  std::vector<std::vector<Ucc>> uccs;
  std::vector<std::vector<Ucc>> legacy_uccs;
  UccOptions legacy_opt;
  legacy_opt.legacy_kernel = true;
  for (size_t i = 0; i < tables.size(); ++i) {
    legacy_profiles.push_back(ProfileTableLegacy(tables[i]));
    TableKeyView view(tables[i]);
    uccs.push_back(DiscoverUccs(tables[i], profiles[i], {}, &view));
    legacy_uccs.push_back(
        DiscoverUccs(tables[i], legacy_profiles[i], legacy_opt));
  }
  for (int threads : {1, 8}) {
    IndOptions opt;
    opt.threads = threads;
    std::vector<Ind> inds = DiscoverInds(tables, profiles, uccs, opt);
    std::vector<Ind> legacy_inds =
        DiscoverInds(tables, legacy_profiles, legacy_uccs, opt);
    EXPECT_EQ(IndsToString(inds), IndsToString(legacy_inds))
        << "threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelOracleTest,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

// End-to-end candidate generation on the REAL corpus and on TPC-H ingested
// through the SQL-DDL path: profiles and candidates are bit-identical at 1,
// 2, and 8 threads, and equal to the all-legacy reference pipeline.
TEST(KernelOracleEndToEndTest, CorpusAndTpchIdenticalAcrossThreadsAndKernels) {
  CorpusOptions copt;
  copt.seed = 777;
  copt.cases_per_bucket = 1;
  RealBenchmark real = BuildRealBenchmark(copt);
  std::vector<std::vector<Table>> case_tables;
  for (const BiCase& c : real.cases) case_tables.push_back(c.tables);
  Rng tpch_rng(99);
  StatusOr<BiCase> tpch = GenerateTpchFromDdl(/*scale=*/0.5, tpch_rng);
  ASSERT_TRUE(tpch.ok()) << tpch.status().ToString();
  case_tables.push_back(tpch->tables);

  for (const std::vector<Table>& tables : case_tables) {
    CandidateGenOptions base;
    base.threads = 1;
    CandidateSet ref = GenerateCandidates(tables, base);
    for (int threads : {2, 8}) {
      CandidateGenOptions opt;
      opt.threads = threads;
      CandidateSet got = GenerateCandidates(tables, opt);
      ASSERT_EQ(got.profiles.size(), ref.profiles.size());
      for (size_t t = 0; t < ref.profiles.size(); ++t) {
        ASSERT_EQ(got.profiles[t].columns.size(),
                  ref.profiles[t].columns.size());
        for (size_t c = 0; c < ref.profiles[t].columns.size(); ++c) {
          ExpectProfilesIdentical(got.profiles[t].columns[c],
                                  ref.profiles[t].columns[c]);
        }
        EXPECT_EQ(UccsToString(got.uccs[t]), UccsToString(ref.uccs[t]));
      }
      EXPECT_EQ(CandidatesToString(got.candidates),
                CandidatesToString(ref.candidates))
          << "threads=" << threads;
    }
    // All-legacy reference: legacy profiles + legacy UCC kernel feeding the
    // same IND scan must yield the same discovery result.
    std::vector<TableProfile> legacy_profiles;
    std::vector<std::vector<Ucc>> legacy_uccs;
    UccOptions legacy_opt;
    legacy_opt.legacy_kernel = true;
    for (const Table& t : tables) {
      legacy_profiles.push_back(ProfileTableLegacy(t));
      legacy_uccs.push_back(
          DiscoverUccs(t, legacy_profiles.back(), legacy_opt));
    }
    for (size_t t = 0; t < tables.size(); ++t) {
      ASSERT_EQ(legacy_profiles[t].columns.size(),
                ref.profiles[t].columns.size());
      for (size_t c = 0; c < ref.profiles[t].columns.size(); ++c) {
        ExpectProfilesIdentical(legacy_profiles[t].columns[c],
                                ref.profiles[t].columns[c]);
      }
      EXPECT_EQ(UccsToString(legacy_uccs[t]), UccsToString(ref.uccs[t]));
    }
    IndOptions iopt;
    iopt.threads = 1;
    EXPECT_EQ(IndsToString(DiscoverInds(tables, legacy_profiles, legacy_uccs,
                                        iopt)),
              IndsToString(DiscoverInds(tables, ref.profiles, ref.uccs,
                                        iopt)));
  }
}

// The DDL-ingested TPC-H case has the expected shape: 8 tables, 8 declared
// FK joins including the composite (l_partkey,l_suppkey) -> partsupp, the
// fixed-size region/nation dimensions, and a parseable embedded script.
TEST(TpchDdlTest, GeneratesExpectedShape) {
  Rng rng(5);
  StatusOr<BiCase> c = GenerateTpchFromDdl(/*scale=*/0.25, rng);
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  ASSERT_EQ(c->tables.size(), 8u);
  EXPECT_EQ(c->tables[0].name(), "region");
  EXPECT_EQ(c->tables[0].num_rows(), 5u);
  EXPECT_EQ(c->tables[1].name(), "nation");
  EXPECT_EQ(c->tables[1].num_rows(), 25u);
  EXPECT_EQ(c->tables[7].name(), "lineitem");
  EXPECT_EQ(c->tables[7].num_columns(), 16u);
  EXPECT_EQ(c->ground_truth.joins.size(), 8u);
  bool composite = false;
  for (const Join& join : c->ground_truth.joins) {
    if (join.from.columns.size() == 2) composite = true;
  }
  EXPECT_TRUE(composite);
  // The partsupp composite key is genuinely unique (cross-product keys).
  const Table& partsupp = c->tables[5];
  EXPECT_EQ(partsupp.name(), "partsupp");
  EXPECT_TRUE(IsUniqueCombination(partsupp, {0, 1}));
}

// The canonical double key is produced via std::to_chars(general, 12), which
// the standard specifies as printf %.12g output; pin that equivalence (and
// KeyAt/key-view agreement) against a literal snprintf reference across
// random bit patterns and rendering edge cases, so a libstdc++ deviation
// would surface here instead of as a silent content-hash change.
TEST(KernelOracleKeyTest, DoubleKeysMatchSnprintfReference) {
  Rng rng(99);
  std::vector<double> values = {0.5,    -0.5,     0.1,     1.0 / 3.0,
                                2.5e-5, 1e300,    -1e-300, 5e-324,
                                1e15 + 0.5,       123456.789012345,
                                1.7976931348623157e308,    2.000000000001};
  for (int i = 0; i < 20000; ++i) {
    uint64_t bits = rng.Next();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    if (std::isfinite(v)) values.push_back(v);
  }
  Column col("d");
  for (double v : values) col.AppendDouble(v);
  ColumnKeyView view(col);
  std::string key;
  char buf[64];
  for (size_t i = 0; i < values.size(); ++i) {
    double v = values[i];
    std::string expect;
    if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
      expect = std::to_string(static_cast<int64_t>(v));
    } else {
      int n = std::snprintf(buf, sizeof(buf), "%.12g", v);
      expect.assign(buf, static_cast<size_t>(n));
    }
    ASSERT_TRUE(col.KeyAt(i, &key));
    EXPECT_EQ(key, expect) << "v=" << v;
    EXPECT_EQ(std::string(view.key(i)), expect) << "v=" << v;
  }
}

}  // namespace
}  // namespace autobi
