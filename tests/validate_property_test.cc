#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "common/rng.h"
#include "graph/validate.h"

namespace autobi {
namespace {

using Pairs = std::vector<std::pair<int, int>>;

// --- Naive reference implementations, deliberately written with a different
// algorithmic strategy than src/graph/validate.cc so shared bugs are
// unlikely: reachability via O(V^3) transitive closure and components via
// O(V * E) label propagation, vs. the library's DFS/union-find.

bool NaiveHasDirectedCycle(int n, const Pairs& arcs) {
  std::vector<std::vector<char>> reach(size_t(n),
                                       std::vector<char>(size_t(n), 0));
  for (const auto& [src, dst] : arcs) reach[size_t(src)][size_t(dst)] = 1;
  for (int k = 0; k < n; ++k) {
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (reach[size_t(i)][size_t(k)] && reach[size_t(k)][size_t(j)]) {
          reach[size_t(i)][size_t(j)] = 1;
        }
      }
    }
  }
  for (int v = 0; v < n; ++v) {
    if (reach[size_t(v)][size_t(v)]) return true;
  }
  return false;
}

int NaiveCountWeakComponents(int n, const Pairs& arcs) {
  std::vector<int> label(static_cast<size_t>(n));
  for (int v = 0; v < n; ++v) label[size_t(v)] = v;
  // Propagate minimum labels across (undirected) arcs until fixpoint.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [src, dst] : arcs) {
      int m = std::min(label[size_t(src)], label[size_t(dst)]);
      if (label[size_t(src)] != m || label[size_t(dst)] != m) {
        label[size_t(src)] = m;
        label[size_t(dst)] = m;
        changed = true;
      }
    }
  }
  int count = 0;
  for (int v = 0; v < n; ++v) {
    if (label[size_t(v)] == v) ++count;
  }
  return count;
}

bool NaiveIsKArborescence(int n, const Pairs& arcs, int* k_out) {
  std::vector<int> in_degree(size_t(n), 0);
  for (const auto& [src, dst] : arcs) {
    (void)src;
    ++in_degree[size_t(dst)];
  }
  for (int v = 0; v < n; ++v) {
    if (in_degree[size_t(v)] > 1) return false;
  }
  if (NaiveHasDirectedCycle(n, arcs)) return false;
  if (k_out != nullptr) *k_out = NaiveCountWeakComponents(n, arcs);
  return true;
}

// Random digraph with the shapes the predicates must survive: self-loops,
// exact duplicate arcs, and vertices no arc touches.
Pairs GenArcs(int n, Rng& rng) {
  Pairs arcs;
  int m = int(rng.NextInt(0, 3 * n));
  for (int i = 0; i < m; ++i) {
    if (!arcs.empty() && rng.NextBool(0.15)) {
      arcs.push_back(arcs[rng.NextBelow(arcs.size())]);  // Duplicate.
      continue;
    }
    int src = int(rng.NextBelow(uint64_t(n)));
    int dst = rng.NextBool(0.1) ? src : int(rng.NextBelow(uint64_t(n)));
    arcs.emplace_back(src, dst);
  }
  return arcs;
}

TEST(ValidatePropertyTest, MatchesNaiveReferencesOnRandomDigraphs) {
  Rng master(0xA11DA7EULL);
  for (int trial = 0; trial < 2000; ++trial) {
    Rng rng = master.Fork();
    int n = int(rng.NextInt(1, 9));
    Pairs arcs = GenArcs(n, rng);

    SCOPED_TRACE(testing::Message() << "trial=" << trial << " n=" << n
                                    << " m=" << arcs.size());
    EXPECT_EQ(HasDirectedCycle(n, arcs), NaiveHasDirectedCycle(n, arcs));
    EXPECT_EQ(CountWeakComponents(n, arcs),
              NaiveCountWeakComponents(n, arcs));

    int k = -1, naive_k = -1;
    bool is = IsKArborescence(n, arcs, &k);
    bool naive_is = NaiveIsKArborescence(n, arcs, &naive_k);
    EXPECT_EQ(is, naive_is);
    if (is && naive_is) {
      EXPECT_EQ(k, naive_k);
    }
  }
}

TEST(ValidatePropertyTest, IsolatedVerticesCountAsComponents) {
  // No arcs: every vertex is its own trivial arborescence.
  for (int n = 1; n <= 6; ++n) {
    int k = 0;
    EXPECT_TRUE(IsKArborescence(n, {}, &k));
    EXPECT_EQ(k, n);
    EXPECT_EQ(CountWeakComponents(n, {}), n);
    EXPECT_FALSE(HasDirectedCycle(n, {}));
  }
}

TEST(ValidatePropertyTest, SelfLoopIsACycleAndDuplicateArcBreaksInDegree) {
  EXPECT_TRUE(HasDirectedCycle(2, {{1, 1}}));
  EXPECT_FALSE(IsKArborescence(2, {{1, 1}}));
  // The same arc twice gives in-degree 2 at its head.
  EXPECT_FALSE(IsKArborescence(3, {{0, 1}, {0, 1}}));
  // ...but duplicates do not confuse weak-component counting.
  EXPECT_EQ(CountWeakComponents(3, {{0, 1}, {0, 1}}), 2);
}

}  // namespace
}  // namespace autobi
