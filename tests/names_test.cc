#include "synth/names.h"

#include <gtest/gtest.h>

#include <set>

namespace autobi {
namespace {

TEST(EntityPoolTest, NonEmptyAndWellFormed) {
  const auto& pool = EntityPool();
  EXPECT_GE(pool.size(), 40u);
  std::set<std::string> names;
  for (const EntityTemplate& e : pool) {
    EXPECT_TRUE(names.insert(e.name).second) << "duplicate entity " << e.name;
    EXPECT_FALSE(e.attributes.empty()) << e.name;
  }
}

TEST(EntityPoolTest, ParentLinksResolveAndAreAcyclic) {
  const auto& pool = EntityPool();
  std::set<std::string> names;
  for (const EntityTemplate& e : pool) names.insert(e.name);
  for (const EntityTemplate& e : pool) {
    if (std::string(e.parent).empty()) continue;
    EXPECT_TRUE(names.count(e.parent))
        << e.name << " -> unknown parent " << e.parent;
  }
  // Follow parent chains; they must terminate (no cycles).
  auto find = [&](const std::string& n) -> const EntityTemplate* {
    for (const EntityTemplate& e : pool) {
      if (n == e.name) return &e;
    }
    return nullptr;
  };
  for (const EntityTemplate& e : pool) {
    const EntityTemplate* cur = &e;
    int hops = 0;
    while (cur != nullptr && !std::string(cur->parent).empty()) {
      cur = find(cur->parent);
      ASSERT_LT(++hops, 20) << "parent cycle at " << e.name;
    }
  }
}

TEST(FactPoolTest, EveryFactHasMeasures) {
  for (const FactTemplate& f : FactPool()) {
    EXPECT_GE(f.measures.size(), 2u) << f.name;
  }
}

TEST(StyleTokensTest, AllStyles) {
  std::vector<std::string> tokens = {"customer", "id"};
  EXPECT_EQ(StyleTokens(tokens, NameStyle::kSnake), "customer_id");
  EXPECT_EQ(StyleTokens(tokens, NameStyle::kCamel), "customerId");
  EXPECT_EQ(StyleTokens(tokens, NameStyle::kPascal), "CustomerId");
  EXPECT_EQ(StyleTokens(tokens, NameStyle::kFlat), "customerid");
  EXPECT_EQ(StyleTokens({}, NameStyle::kSnake), "");
}

TEST(AbbreviateTest, KnownAbbreviations) {
  Rng rng(1);
  EXPECT_EQ(Abbreviate("customer", rng), "cust");
  EXPECT_EQ(Abbreviate("quantity", rng), "qty");
  EXPECT_EQ(Abbreviate("department", rng), "dept");
}

TEST(AbbreviateTest, ShortTokensUnchangedLongTokensShortened) {
  Rng rng(2);
  EXPECT_EQ(Abbreviate("id", rng), "id");
  for (int i = 0; i < 20; ++i) {
    std::string abbr = Abbreviate("warehouse_zone_xyz", rng);
    EXPECT_LT(abbr.size(), std::string("warehouse_zone_xyz").size());
    EXPECT_GE(abbr.size(), 2u);
  }
}

}  // namespace
}  // namespace autobi
