// Cross-thread-count determinism: the concurrency contract (ARCHITECTURE.md)
// promises that training, prediction, and evaluation are bit-identical at
// any thread count. These tests run the same workloads at 1, 2, and 8
// threads and compare serialized models, edge probabilities, and metrics
// exactly — no tolerances.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "baselines/baseline.h"
#include "common/parallel.h"
#include "core/auto_bi.h"
#include "core/trainer.h"
#include "eval/harness.h"
#include "ml/gbdt.h"
#include "synth/corpus.h"

namespace autobi {
namespace {

constexpr int kThreadCounts[] = {1, 2, 8};

std::vector<BiCase> TrainCorpus() {
  CorpusOptions opt;
  opt.seed = 77;
  opt.training_cases = 24;
  return BuildTrainingCorpus(opt);
}

std::vector<BiCase> TestCases() {
  CorpusOptions opt;
  opt.seed = 1234;  // Disjoint from training.
  opt.training_cases = 6;
  return BuildTrainingCorpus(opt);
}

LocalModel TrainAt(const std::vector<BiCase>& corpus, int threads) {
  TrainerOptions opt;
  opt.forest.num_trees = 12;
  opt.forest.threads = threads;
  opt.candidates.threads = threads;
  return TrainLocalModel(corpus, opt);
}

std::string Serialize(const LocalModel& model) {
  std::ostringstream os;
  os.precision(17);
  model.Save(os);
  return os.str();
}

TEST(DeterminismTest, TrainingBitIdenticalAcrossThreadCounts) {
  std::vector<BiCase> corpus = TrainCorpus();
  std::string reference = Serialize(TrainAt(corpus, kThreadCounts[0]));
  EXPECT_FALSE(reference.empty());
  for (size_t i = 1; i < std::size(kThreadCounts); ++i) {
    std::string other = Serialize(TrainAt(corpus, kThreadCounts[i]));
    EXPECT_EQ(reference, other)
        << "LocalModel differs between threads=" << kThreadCounts[0]
        << " and threads=" << kThreadCounts[i];
  }
}

TEST(DeterminismTest, PredictionBitIdenticalAcrossThreadCounts) {
  std::vector<BiCase> corpus = TrainCorpus();
  LocalModel model = TrainAt(corpus, 2);
  std::vector<BiCase> cases = TestCases();

  for (const BiCase& bi_case : cases) {
    AutoBiOptions ref_opt;
    ref_opt.threads = kThreadCounts[0];
    AutoBiResult reference = AutoBi(&model, ref_opt).Predict(bi_case.tables);

    for (size_t t = 1; t < std::size(kThreadCounts); ++t) {
      AutoBiOptions opt;
      opt.threads = kThreadCounts[t];
      AutoBiResult result = AutoBi(&model, opt).Predict(bi_case.tables);

      // The scored join graph must match edge-for-edge, probabilities
      // compared exactly.
      ASSERT_EQ(reference.graph.num_edges(), result.graph.num_edges());
      for (size_t e = 0; e < reference.graph.num_edges(); ++e) {
        const JoinEdge& a = reference.graph.edges()[e];
        const JoinEdge& b = result.graph.edges()[e];
        EXPECT_EQ(a.src, b.src);
        EXPECT_EQ(a.dst, b.dst);
        EXPECT_EQ(a.src_columns, b.src_columns);
        EXPECT_EQ(a.dst_columns, b.dst_columns);
        EXPECT_EQ(a.one_to_one, b.one_to_one);
        EXPECT_EQ(a.probability, b.probability)  // Exact, not NEAR.
            << "edge " << e << " at threads=" << kThreadCounts[t];
      }

      // And so must the final predicted BiModel.
      ASSERT_EQ(reference.model.joins.size(), result.model.joins.size());
      for (size_t j = 0; j < reference.model.joins.size(); ++j) {
        EXPECT_TRUE(reference.model.joins[j] == result.model.joins[j])
            << "join " << j << " at threads=" << kThreadCounts[t];
      }
      EXPECT_EQ(reference.backbone_edges, result.backbone_edges);
      EXPECT_EQ(reference.recall_edges, result.recall_edges);
    }
  }
}

TEST(DeterminismTest, HarnessMetricsIdenticalAcrossThreadCounts) {
  std::vector<BiCase> corpus = TrainCorpus();
  LocalModel model = TrainAt(corpus, 2);
  std::vector<BiCase> cases = TestCases();
  AutoBiPredictor predictor("Auto-BI", &model, AutoBiOptions{});

  HarnessOptions ref_opt;
  ref_opt.threads = kThreadCounts[0];
  MethodResults reference = RunMethod(predictor, cases, ref_opt);

  for (size_t t = 1; t < std::size(kThreadCounts); ++t) {
    HarnessOptions opt;
    opt.threads = kThreadCounts[t];
    MethodResults results = RunMethod(predictor, cases, opt);
    ASSERT_EQ(reference.cases.size(), results.cases.size());
    for (size_t i = 0; i < reference.cases.size(); ++i) {
      const EdgeMetrics& a = reference.cases[i].metrics;
      const EdgeMetrics& b = results.cases[i].metrics;
      EXPECT_EQ(a.predicted, b.predicted);
      EXPECT_EQ(a.ground_truth, b.ground_truth);
      EXPECT_EQ(a.correct, b.correct);
      EXPECT_EQ(a.precision, b.precision);  // Exact.
      EXPECT_EQ(a.recall, b.recall);
      EXPECT_EQ(a.f1, b.f1);
      EXPECT_EQ(a.case_correct, b.case_correct);
    }
    AggregateMetrics qa = reference.Quality();
    AggregateMetrics qb = results.Quality();
    EXPECT_EQ(qa.precision, qb.precision);
    EXPECT_EQ(qa.recall, qb.recall);
    EXPECT_EQ(qa.f1, qb.f1);
    EXPECT_EQ(qa.case_precision, qb.case_precision);
  }
}

TEST(DeterminismTest, GbdtBitIdenticalAcrossThreadCounts) {
  // Big enough that several nodes clear the parallel-split-search floor.
  Dataset d({"x0", "x1", "x2"});
  Rng data_rng(5);
  for (int i = 0; i < 2000; ++i) {
    double x0 = data_rng.NextDouble();
    double x1 = data_rng.NextDouble();
    double x2 = data_rng.NextDouble();
    d.Add({x0, x1, x2}, x0 + 0.3 * x1 > 0.6 ? 1 : 0);
  }
  std::string reference;
  for (int threads : kThreadCounts) {
    GbdtOptions opt;
    opt.num_rounds = 10;
    opt.threads = threads;
    Rng rng(99);  // Same seed per run: subsampling must match too.
    Gbdt model;
    model.Fit(d, opt, rng);
    std::ostringstream os;
    model.Save(os);
    if (reference.empty()) {
      reference = os.str();
      EXPECT_FALSE(reference.empty());
    } else {
      EXPECT_EQ(reference, os.str()) << "threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace autobi
