// Byte-level fuzz of the untrusted-input loaders (ReadCsv / ParseSqlDdl):
// seeded mutations of well-formed inputs plus arbitrary byte strings. The
// invariant is error-not-crash — every input yields either a well-formed
// Status or a Table/DdlSchema that passes Validate(). Deterministic from a
// fixed seed, so a failure here reproduces exactly.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "table/csv.h"
#include "table/sql_ddl.h"

namespace autobi {
namespace {

const char* const kCsvSeeds[] = {
    "id,name,price\n1,apple,0.5\n2,banana,0.25\n3,cherry,3.0\n",
    "\xEF\xBB\xBFk,v\r\n1,\"a,b\"\r\n2,\"quote\"\"d\"\r\n",
    "a\n1\n2\n3\n4\n",
    "x,y,z\n,,\n\"multi\nline\",2,3\n",
};

const char* const kDdlSeeds[] = {
    "CREATE TABLE t (id INT PRIMARY KEY, name VARCHAR(20));\n",
    "create table a (x int);\n"
    "create table b (y int, a_x int,\n"
    "  foreign key (a_x) references a (x));\n",
    "CREATE TABLE [s].[t] (\"c one\" DECIMAL, `c2` BIGINT REFERENCES a(x));",
};

// Bytes that exercise the loaders' special cases.
const char kSpice[] = {',', '"', '\n', '\r', '\0', ';', '(', ')',
                       '.', '\\', '\xEF', '\xBB', '\xBF', '\xFF', ' ', '\t'};

std::string Mutate(std::string input, Rng& rng) {
  int edits = 1 + static_cast<int>(rng.NextBelow(8));
  for (int e = 0; e < edits && !input.empty(); ++e) {
    size_t pos = rng.NextBelow(input.size());
    switch (rng.NextBelow(5)) {
      case 0:
        input[pos] = kSpice[rng.NextBelow(sizeof(kSpice))];
        break;
      case 1:
        input[pos] = static_cast<char>(rng.NextBelow(256));
        break;
      case 2:
        input.insert(pos, 1, kSpice[rng.NextBelow(sizeof(kSpice))]);
        break;
      case 3:
        input.erase(pos, 1 + rng.NextBelow(4));
        break;
      default:
        input.resize(pos);  // Truncate.
        break;
    }
  }
  return input;
}

std::string RandomBytes(Rng& rng) {
  std::string out(rng.NextBelow(200), '\0');
  for (char& c : out) c = static_cast<char>(rng.NextBelow(256));
  return out;
}

// The loaders must never crash, and an OK result must be well-formed.
void CheckCsv(const std::string& text, const CsvOptions& options) {
  CsvStats stats;
  StatusOr<Table> t = ReadCsv(text, "fuzz", options, &stats);
  if (t.ok()) {
    EXPECT_TRUE(t.value().Validate()) << "accepted table is ragged";
  } else {
    EXPECT_NE(t.status().code(), StatusCode::kOk);
    EXPECT_FALSE(t.status().message().empty());
  }
}

void CheckDdl(const std::string& script) {
  StatusOr<DdlSchema> schema = ParseSqlDdl(script);
  if (schema.ok()) {
    EXPECT_FALSE(schema.value().tables.empty());
    for (const Table& t : schema.value().tables) {
      EXPECT_TRUE(t.Validate());
      EXPECT_EQ(t.num_rows(), 0u);
    }
  } else {
    EXPECT_FALSE(schema.status().message().empty());
  }
}

TEST(LoaderFuzzTest, MutatedCsvNeverCrashes) {
  Rng rng(0xC5Fu);
  for (int i = 0; i < 700; ++i) {
    Rng child = rng.Fork();
    std::string text =
        Mutate(kCsvSeeds[child.NextBelow(std::size(kCsvSeeds))], child);
    CsvOptions options;
    options.lenient = child.NextBool(0.5);
    if (child.NextBool(0.2)) options.max_bytes = 1 + child.NextBelow(64);
    CheckCsv(text, options);
  }
}

TEST(LoaderFuzzTest, ArbitraryByteCsvNeverCrashes) {
  Rng rng(0xAB17u);
  for (int i = 0; i < 300; ++i) {
    Rng child = rng.Fork();
    std::string text = RandomBytes(child);
    CsvOptions options;
    options.lenient = child.NextBool(0.5);
    CheckCsv(text, options);
  }
}

TEST(LoaderFuzzTest, MutatedDdlNeverCrashes) {
  Rng rng(0xDD1u);
  for (int i = 0; i < 700; ++i) {
    Rng child = rng.Fork();
    CheckDdl(Mutate(kDdlSeeds[child.NextBelow(std::size(kDdlSeeds))], child));
  }
}

TEST(LoaderFuzzTest, ArbitraryByteDdlNeverCrashes) {
  Rng rng(0xF00Du);
  for (int i = 0; i < 300; ++i) {
    Rng child = rng.Fork();
    CheckDdl(RandomBytes(child));
  }
}

// Unmutated seeds must stay accepted — guards the mutator against a seed
// corpus that silently stopped parsing.
TEST(LoaderFuzzTest, SeedCorpusParsesClean) {
  for (const char* seed : kCsvSeeds) {
    StatusOr<Table> t = ReadCsv(seed, "seed");
    EXPECT_TRUE(t.ok()) << t.status().ToString();
  }
  for (const char* seed : kDdlSeeds) {
    StatusOr<DdlSchema> s = ParseSqlDdl(seed);
    EXPECT_TRUE(s.ok()) << s.status().ToString();
  }
}

}  // namespace
}  // namespace autobi
