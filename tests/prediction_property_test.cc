// End-to-end property sweep: on generated cases of varied sizes, Auto-BI's
// predictions must always satisfy the structural guarantees the paper
// proves or assumes — FK-once, acyclicity, valid column references, and
// value-containment on every predicted N:1 join.

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "core/auto_bi.h"
#include "core/trainer.h"
#include "graph/validate.h"
#include "profile/column_profile.h"
#include "synth/bi_generator.h"
#include "synth/corpus.h"

namespace autobi {
namespace {

// One shared model for the whole sweep (training dominates runtime).
const LocalModel& SharedModel() {
  static const LocalModel* model = [] {
    CorpusOptions opt;
    opt.seed = 808;
    opt.training_cases = 50;
    TrainerOptions trainer;
    trainer.forest.num_trees = 16;
    return new LocalModel(TrainLocalModel(BuildTrainingCorpus(opt),
                                          trainer));
  }();
  return *model;
}

struct SweepParam {
  uint64_t seed;
  int tables;
};

class PredictionPropertyTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(PredictionPropertyTest, StructuralGuaranteesHold) {
  Rng rng(GetParam().seed * 7919);
  BiGenOptions gen;
  gen.num_tables = GetParam().tables;
  BiCase bi_case = GenerateBiCase(gen, rng);

  AutoBi auto_bi(&SharedModel(), AutoBiOptions{});
  AutoBiResult result = auto_bi.Predict(bi_case.tables);

  // Valid references.
  int n = int(bi_case.tables.size());
  for (const Join& j : result.model.joins) {
    ASSERT_GE(j.from.table, 0);
    ASSERT_LT(j.from.table, n);
    ASSERT_LT(j.to.table, n);
    for (int c : j.from.columns) {
      ASSERT_GE(c, 0);
      ASSERT_LT(c, int(bi_case.tables[size_t(j.from.table)].num_columns()));
    }
    for (int c : j.to.columns) {
      ASSERT_LT(c, int(bi_case.tables[size_t(j.to.table)].num_columns()));
    }
  }

  // FK-once over N:1 joins.
  std::set<std::pair<int, std::vector<int>>> sources;
  for (const Join& j : result.model.joins) {
    if (j.kind != JoinKind::kNToOne) continue;
    EXPECT_TRUE(sources.emplace(j.from.table, j.from.columns).second);
  }

  // Acyclicity of the directed N:1 graph (Equation 19).
  std::vector<std::pair<int, int>> arcs;
  for (const Join& j : result.model.joins) {
    if (j.kind == JoinKind::kNToOne) {
      arcs.emplace_back(j.from.table, j.to.table);
    }
  }
  EXPECT_FALSE(HasDirectedCycle(n, arcs));

  // The precision-mode backbone alone is a k-arborescence.
  std::vector<std::pair<int, int>> backbone_arcs;
  for (int id : result.backbone_edges) {
    const JoinEdge& e = result.graph.edge(id);
    backbone_arcs.emplace_back(e.src, e.dst);
  }
  EXPECT_TRUE(IsKArborescence(n, backbone_arcs));

  // Every predicted single-column N:1 join is a genuine approximate IND in
  // the data (the candidate-generation contract survives to the output).
  auto profiles = ProfileTables(bi_case.tables);
  for (const Join& j : result.model.joins) {
    if (j.kind != JoinKind::kNToOne || j.from.columns.size() != 1) continue;
    const ColumnProfile& src =
        profiles[size_t(j.from.table)].columns[size_t(j.from.columns[0])];
    const ColumnProfile& dst =
        profiles[size_t(j.to.table)].columns[size_t(j.to.columns[0])];
    EXPECT_GE(Containment(src, dst), 0.8)
        << "non-inclusive join predicted in " << bi_case.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizeSweep, PredictionPropertyTest,
    ::testing::Values(SweepParam{1, 4}, SweepParam{2, 6}, SweepParam{3, 8},
                      SweepParam{4, 10}, SweepParam{5, 13},
                      SweepParam{6, 17}, SweepParam{7, 22},
                      SweepParam{8, 5}, SweepParam{9, 9},
                      SweepParam{10, 12}));

}  // namespace
}  // namespace autobi
