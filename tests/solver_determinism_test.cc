// PR 4 determinism contract for the wave-parallel k-MCA-CC solver and the
// workspace-based Edmonds rewrite:
//   - results AND stats are byte-identical at any thread count (explicit
//     `options.threads` or the AUTOBI_THREADS environment override),
//   - one reused EdmondsWorkspace reproduces the frozen recursive reference
//     arc-for-arc across many solves (corpus-derived augmented instances and
//     adversarial random arc instances),
//   - canonical-signature memoization actually deduplicates subproblems
//     reached via different branch orders, without changing the optimum.

#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "fuzz/corpus.h"
#include "fuzz/generator.h"
#include "graph/edmonds.h"
#include "graph/join_graph.h"
#include "graph/kmca.h"
#include "graph/kmca_cc.h"

namespace autobi {
namespace {

struct Solved {
  KmcaResult result;
  KmcaCcStats stats;
};

Solved SolveWithThreads(const JoinGraph& g, int threads,
                        long max_calls = 2'000'000) {
  KmcaCcOptions opt;
  opt.threads = threads;
  opt.max_one_mca_calls = max_calls;
  Solved s;
  s.result = SolveKmcaCc(g, opt, &s.stats);
  return s;
}

void ExpectIdentical(const Solved& a, const Solved& b, const char* what) {
  EXPECT_EQ(a.result.edge_ids, b.result.edge_ids) << what;
  EXPECT_EQ(a.result.cost, b.result.cost) << what;  // Exact, not NEAR.
  EXPECT_EQ(a.result.k, b.result.k) << what;
  EXPECT_EQ(a.result.feasible, b.result.feasible) << what;
  EXPECT_EQ(a.stats.one_mca_calls, b.stats.one_mca_calls) << what;
  EXPECT_EQ(a.stats.nodes, b.stats.nodes) << what;
  EXPECT_EQ(a.stats.pruned, b.stats.pruned) << what;
  EXPECT_EQ(a.stats.memo_hits, b.stats.memo_hits) << what;
  EXPECT_EQ(a.stats.waves, b.stats.waves) << what;
  EXPECT_EQ(a.stats.budget_exhausted, b.stats.budget_exhausted) << what;
}

// Conflict-dense generator settings: most instances branch, many have >= 8
// open subtrees, exact ties exercise the lexicographic incumbent rule.
JoinGraphGenOptions ConflictDenseGen() {
  JoinGraphGenOptions gen;
  gen.min_vertices = 4;
  gen.max_vertices = 9;
  gen.min_edges = 6;
  gen.max_edges = 24;
  gen.conflict_density = 0.7;
  gen.tie_prob = 0.5;
  gen.parallel_edge_prob = 0.3;
  return gen;
}

TEST(SolverDeterminismTest, ThreadSweepIsByteIdentical) {
  Rng rng(0xD5EEDu);
  JoinGraphGenOptions gen = ConflictDenseGen();
  for (int i = 0; i < 60; ++i) {
    JoinGraphInstance inst = GenJoinGraph(gen, rng);
    Solved t1 = SolveWithThreads(inst.graph, 1);
    Solved t2 = SolveWithThreads(inst.graph, 2);
    Solved t8 = SolveWithThreads(inst.graph, 8);
    ExpectIdentical(t1, t2, "threads=1 vs threads=2");
    ExpectIdentical(t1, t8, "threads=1 vs threads=8");
    // And across repeated runs at the same thread count.
    Solved t8b = SolveWithThreads(inst.graph, 8);
    ExpectIdentical(t8, t8b, "threads=8 run 1 vs run 2");
  }
}

TEST(SolverDeterminismTest, EnvThreadOverrideIsByteIdentical) {
  Rng rng(0xE24Fu);
  JoinGraphGenOptions gen = ConflictDenseGen();
  std::vector<JoinGraphInstance> instances;
  for (int i = 0; i < 12; ++i) instances.push_back(GenJoinGraph(gen, rng));

  std::vector<Solved> at_one;
  ASSERT_EQ(setenv("AUTOBI_THREADS", "1", 1), 0);
  for (const JoinGraphInstance& inst : instances) {
    at_one.push_back(SolveWithThreads(inst.graph, /*threads=*/0));
  }
  ASSERT_EQ(setenv("AUTOBI_THREADS", "8", 1), 0);
  for (size_t i = 0; i < instances.size(); ++i) {
    Solved at_eight = SolveWithThreads(instances[i].graph, /*threads=*/0);
    ExpectIdentical(at_one[i], at_eight, "AUTOBI_THREADS=1 vs 8");
  }
  unsetenv("AUTOBI_THREADS");
}

TEST(SolverDeterminismTest, BudgetedSearchIsThreadCountInvariant) {
  // The budget is charged serially at wave formation, so even a truncated
  // search (including the greedy fallback path) must not depend on the
  // thread count.
  Rng rng(0xB4D6E7u);
  JoinGraphGenOptions gen = ConflictDenseGen();
  for (int i = 0; i < 40; ++i) {
    JoinGraphInstance inst = GenJoinGraph(gen, rng);
    for (long budget : {1L, 3L, 7L}) {
      Solved t1 = SolveWithThreads(inst.graph, 1, budget);
      Solved t8 = SolveWithThreads(inst.graph, 8, budget);
      ExpectIdentical(t1, t8, "budgeted threads=1 vs threads=8");
    }
  }
}

// One workspace, many solves: the iterative contraction must reproduce the
// frozen recursive reference arc-for-arc (same indices, not just the same
// weight) with all scratch reused across calls.
TEST(SolverDeterminismTest, ReusedWorkspaceMatchesRecursiveReference) {
  EdmondsWorkspace workspace;
  int solved = 0;

  // Corpus repros, lifted to their augmented k-MCA instances.
  for (const std::string& path : ListCorpusFiles(AUTOBI_CORPUS_DIR)) {
    CorpusCase c;
    std::string error;
    ASSERT_TRUE(LoadCorpusFile(path, &c, &error)) << path << ": " << error;
    if (c.graph.num_vertices() == 0) continue;
    KmcaInstance inst = BuildKmcaInstance(c.graph, c.penalty_weight);
    ASSERT_TRUE(workspace.Solve(inst.num_vertices + 1, inst.arcs,
                                inst.artificial_root))
        << path;
    auto legacy = SolveMinCostArborescenceLegacy(
        inst.num_vertices + 1, inst.arcs, inst.artificial_root);
    ASSERT_TRUE(legacy.has_value()) << path;
    EXPECT_EQ(workspace.selected(), *legacy) << path;
    ++solved;
  }
  EXPECT_GT(solved, 0) << "corpus at " AUTOBI_CORPUS_DIR " is empty";

  // Adversarial random arc instances (negative weights, self-loops,
  // duplicates, unreachable vertices).
  Rng rng(0xA5C4u);
  ArcGenOptions gen;
  for (int i = 0; i < 500; ++i) {
    ArcInstance inst = GenArcInstance(gen, rng);
    bool ok = workspace.Solve(inst.num_vertices, inst.arcs, inst.root);
    auto legacy = SolveMinCostArborescenceLegacy(inst.num_vertices, inst.arcs,
                                                 inst.root);
    ASSERT_EQ(ok, legacy.has_value()) << FormatArcInstance(inst);
    if (ok) EXPECT_EQ(workspace.selected(), *legacy) << FormatArcInstance(inst);
  }
}

// Two branch orders that converge on the same masked subproblem: a hub with
// one conflict group {a, b, c} plus costlier parallel alternatives for two
// of the destinations. Dropping b then c and dropping c then b both reach
// the masked set {a, b, c}'s complement sibling — the second occurrence must
// be a memo hit, and the optimum must match the legacy reference exactly.
TEST(SolverDeterminismTest, MemoizationDeduplicatesConvergingBranches) {
  JoinGraph g(4);
  g.AddEdge(0, 1, {0}, {0}, 0.90);  // a (id 0)
  g.AddEdge(0, 2, {0}, {0}, 0.89);  // b (id 1)
  g.AddEdge(0, 3, {0}, {0}, 0.88);  // c (id 2)
  g.AddEdge(0, 2, {0}, {1}, 0.80);  // d (id 3): alternative for vertex 2
  g.AddEdge(0, 3, {0}, {1}, 0.79);  // e (id 4): alternative for vertex 3

  KmcaCcStats stats;
  KmcaResult r = SolveKmcaCc(g, {}, &stats);
  EXPECT_GT(stats.memo_hits, 0);
  EXPECT_FALSE(stats.budget_exhausted);

  KmcaCcStats legacy_stats;
  KmcaResult legacy = SolveKmcaCcLegacy(g, {}, &legacy_stats);
  EXPECT_EQ(r.cost, legacy.cost);
  EXPECT_EQ(r.edge_ids, legacy.edge_ids);
}

}  // namespace
}  // namespace autobi
