#include "table/sql_ddl.h"

#include <gtest/gtest.h>

#include "core/candidates.h"

namespace autobi {
namespace {

// Unwraps a parse expected to succeed, failing the test with the Status
// message otherwise.
DdlSchema MustParse(std::string_view script) {
  StatusOr<DdlSchema> schema = ParseSqlDdl(script);
  EXPECT_TRUE(schema.ok()) << schema.status().ToString();
  return schema.ok() ? std::move(schema).value() : DdlSchema{};
}

TEST(SqlDdlTest, ParsesSimpleCreateTable) {
  DdlSchema schema = MustParse(
      "CREATE TABLE customers (id INT, name VARCHAR(50), balance DECIMAL);");
  ASSERT_EQ(schema.tables.size(), 1u);
  const Table& t = schema.tables[0];
  EXPECT_EQ(t.name(), "customers");
  ASSERT_EQ(t.num_columns(), 3u);
  EXPECT_EQ(t.column(0).name(), "id");
  EXPECT_EQ(t.column(0).type(), ValueType::kInt);
  EXPECT_EQ(t.column(1).type(), ValueType::kString);
  EXPECT_EQ(t.column(2).type(), ValueType::kDouble);
}

TEST(SqlDdlTest, MultipleTablesAndCaseInsensitivity) {
  DdlSchema schema = MustParse(
      "create table a (x integer);\n"
      "CREATE TABLE b (y BIGINT);");
  ASSERT_EQ(schema.tables.size(), 2u);
  EXPECT_EQ(schema.tables[1].name(), "b");
  EXPECT_EQ(schema.tables[1].column(0).type(), ValueType::kInt);
}

TEST(SqlDdlTest, TableLevelForeignKey) {
  DdlSchema schema = MustParse(
      "CREATE TABLE orders (\n"
      "  id INT PRIMARY KEY,\n"
      "  cust_id INT NOT NULL,\n"
      "  FOREIGN KEY (cust_id) REFERENCES customers (id) ON DELETE CASCADE\n"
      ");");
  ASSERT_EQ(schema.foreign_keys.size(), 1u);
  const DdlForeignKey& fk = schema.foreign_keys[0];
  EXPECT_EQ(fk.from_table, "orders");
  EXPECT_EQ(fk.from_columns, (std::vector<std::string>{"cust_id"}));
  EXPECT_EQ(fk.to_table, "customers");
  EXPECT_EQ(fk.to_columns, (std::vector<std::string>{"id"}));
  // PRIMARY KEY did not become a column.
  EXPECT_EQ(schema.tables[0].num_columns(), 2u);
}

TEST(SqlDdlTest, InlineReferences) {
  DdlSchema schema = MustParse(
      "CREATE TABLE line (prod_id INT REFERENCES products(id), qty INT);");
  ASSERT_EQ(schema.foreign_keys.size(), 1u);
  EXPECT_EQ(schema.foreign_keys[0].from_columns,
            (std::vector<std::string>{"prod_id"}));
  EXPECT_EQ(schema.foreign_keys[0].to_table, "products");
  EXPECT_EQ(schema.tables[0].num_columns(), 2u);
}

TEST(SqlDdlTest, CompositeForeignKey) {
  DdlSchema schema = MustParse(
      "CREATE TABLE lineitem (p INT, s INT,\n"
      "  FOREIGN KEY (p, s) REFERENCES partsupp (ps_p, ps_s));");
  ASSERT_EQ(schema.foreign_keys.size(), 1u);
  EXPECT_EQ(schema.foreign_keys[0].from_columns,
            (std::vector<std::string>{"p", "s"}));
  EXPECT_EQ(schema.foreign_keys[0].to_columns,
            (std::vector<std::string>{"ps_p", "ps_s"}));
}

TEST(SqlDdlTest, QuotedIdentifiersAndSchemaPrefix) {
  DdlSchema schema = MustParse(
      "CREATE TABLE \"Sales\".\"Order Details\" (\n"
      "  [Order ID] INT,\n"
      "  `unit price` FLOAT\n"
      ");");
  EXPECT_EQ(schema.tables[0].name(), "Order Details");
  EXPECT_EQ(schema.tables[0].column(0).name(), "Order ID");
  EXPECT_EQ(schema.tables[0].column(1).name(), "unit price");
}

TEST(SqlDdlTest, CommentsAndOtherStatementsIgnored) {
  DdlSchema schema = MustParse(
      "-- schema dump\n"
      "DROP TABLE IF EXISTS old;\n"
      "/* block\n comment */\n"
      "CREATE TABLE t (a INT);\n"
      "INSERT INTO t VALUES (1);\n");
  ASSERT_EQ(schema.tables.size(), 1u);
}

TEST(SqlDdlTest, IfNotExists) {
  DdlSchema schema = MustParse("CREATE TABLE IF NOT EXISTS t (a INT);");
  EXPECT_EQ(schema.tables[0].name(), "t");
}

TEST(SqlDdlTest, ErrorsOnGarbageAndEmpty) {
  EXPECT_EQ(ParseSqlDdl("SELECT 1;").status().code(),
            StatusCode::kInvalidInput);
  EXPECT_EQ(ParseSqlDdl("").status().code(), StatusCode::kInvalidInput);
  EXPECT_EQ(ParseSqlDdl("CREATE TABLE broken (a INT").status().code(),
            StatusCode::kInvalidInput);
}

TEST(SqlDdlTest, TruncatedReferencesIsAnErrorNotARead) {
  // Regression: REFERENCES as the final token used to read one past the end
  // of the token vector. Both the table-level and inline forms.
  EXPECT_FALSE(
      ParseSqlDdl("CREATE TABLE t (a INT, FOREIGN KEY (a) REFERENCES").ok());
  EXPECT_FALSE(ParseSqlDdl("CREATE TABLE t (a INT REFERENCES").ok());
}

TEST(SqlDdlTest, EmptyTablesStillYieldMetadataCandidates) {
  // The schema-only pipeline must produce candidates for DDL-only input
  // (no rows): metadata fallback in candidate generation.
  DdlSchema schema = MustParse(
      "CREATE TABLE orders (order_id INT, cust_id INT);"
      "CREATE TABLE customers (cust_id INT, name VARCHAR(10));");
  CandidateSet cands = GenerateCandidates(schema.tables);
  bool found = false;
  for (const JoinCandidate& c : cands.candidates) {
    if (c.src == (ColumnRef{0, {1}}) && c.dst == (ColumnRef{1, {0}})) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(SqlDdlTest, TablesAreEmptyButTyped) {
  DdlSchema schema = MustParse("CREATE TABLE t (a INT, b TEXT);");
  EXPECT_EQ(schema.tables[0].num_rows(), 0u);
  EXPECT_TRUE(schema.tables[0].Validate());
}

}  // namespace
}  // namespace autobi
