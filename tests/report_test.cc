#include "eval/report.h"

#include <gtest/gtest.h>

namespace autobi {
namespace {

TEST(TablePrinterTest, RendersAlignedTable) {
  TablePrinter t({"Method", "P"});
  t.AddRow({"Auto-BI", "0.973"});
  t.AddRow({"a-very-long-method-name", "1.0"});
  ::testing::internal::CaptureStdout();
  t.Print();
  std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("| Method "), std::string::npos);
  EXPECT_NE(out.find("| Auto-BI "), std::string::npos);
  EXPECT_NE(out.find("a-very-long-method-name"), std::string::npos);
  // All rows share the same width.
  size_t first_nl = out.find('\n');
  std::string first_line = out.substr(0, first_nl);
  size_t pos = 0;
  size_t lines = 0;
  while (pos < out.size()) {
    size_t nl = out.find('\n', pos);
    if (nl == std::string::npos) break;
    EXPECT_EQ(nl - pos, first_line.size()) << "ragged table row";
    pos = nl + 1;
    ++lines;
  }
  EXPECT_GE(lines, 6u);  // 3 separators + header + 2 rows.
}

TEST(TablePrinterTest, SeparatorAndShortRows) {
  TablePrinter t({"A", "B", "C"});
  t.AddRow({"1"});  // Missing cells render empty.
  t.AddSeparator();
  t.AddRow({"2", "3", "4"});
  ::testing::internal::CaptureStdout();
  t.Print();
  std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("| 2 | 3 | 4 |"), std::string::npos);
}

TEST(FormattersTest, Values) {
  EXPECT_EQ(Fmt3(1.0), "1.000");
  EXPECT_EQ(Fmt3(0.12349), "0.123");
  EXPECT_EQ(FmtSeconds(0.02), "20.00ms");
  EXPECT_EQ(FmtSeconds(2.5), "2.500s");
  EXPECT_EQ(FmtSeconds(0.0001), "100us");
}

}  // namespace
}  // namespace autobi
