// Unit tests for the concurrency subsystem (src/common/parallel.h): pool
// lifecycle, the ParallelFor/ParallelMap contracts, exception propagation,
// nested-call safety, and AUTOBI_THREADS resolution.

#include "common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

namespace autobi {
namespace {

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  constexpr size_t kN = 1000;
  std::vector<int> hits(kN, 0);
  std::atomic<int> calls{0};
  ParallelFor(
      kN,
      [&](size_t i) {
        ++hits[i];
        calls.fetch_add(1, std::memory_order_relaxed);
      },
      8);
  EXPECT_EQ(calls.load(), int(kN));
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i], 1) << "index " << i;
}

TEST(ParallelForTest, EmptyRangeInvokesNothing) {
  int calls = 0;
  ParallelFor(0, [&](size_t) { ++calls; }, 8);
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForTest, FewerItemsThanThreads) {
  std::vector<size_t> out(3, 0);
  ParallelFor(3, [&](size_t i) { out[i] = i + 1; }, 16);
  EXPECT_EQ(out, (std::vector<size_t>{1, 2, 3}));
}

TEST(ParallelForTest, SerialFallbackAtOneThread) {
  // threads=1 must run on the calling thread, in order.
  std::vector<size_t> order;
  ParallelFor(5, [&](size_t i) { order.push_back(i); }, 1);
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, NestedCallsRunSeriallyWithoutDeadlock) {
  constexpr size_t kOuter = 4;
  constexpr size_t kInner = 8;
  std::vector<std::vector<int>> results(kOuter);
  ParallelFor(
      kOuter,
      [&](size_t o) {
        results[o].assign(kInner, 0);
        // The nested region must complete (serially when on a pool worker)
        // rather than deadlocking on a saturated pool.
        ParallelFor(
            kInner, [&](size_t i) { results[o][i] = int(o * kInner + i); },
            4);
      },
      4);
  for (size_t o = 0; o < kOuter; ++o) {
    for (size_t i = 0; i < kInner; ++i) {
      EXPECT_EQ(results[o][i], int(o * kInner + i));
    }
  }
}

TEST(ParallelForTest, PropagatesExceptionOfLowestFailingIndex) {
  // Every index >= 5 throws; each chunk stops at its first failure, so the
  // lowest failing index overall (5) must be the one rethrown.
  try {
    ParallelFor(
        100,
        [&](size_t i) {
          if (i >= 5) throw std::runtime_error(std::to_string(i));
        },
        4);
    FAIL() << "expected ParallelFor to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "5");
  }
}

TEST(ParallelForTest, PoolUsableAfterException) {
  EXPECT_THROW(ParallelFor(
                   64, [](size_t i) { if (i == 7) throw std::logic_error("x"); },
                   8),
               std::logic_error);
  // Workers must have survived the failed region.
  std::atomic<int> calls{0};
  ParallelFor(64, [&](size_t) { calls.fetch_add(1); }, 8);
  EXPECT_EQ(calls.load(), 64);
}

TEST(ParallelMapTest, ResultsInIndexOrder) {
  std::vector<int> out = ParallelMap(
      50, [](size_t i) { return int(i) * 3; }, 8);
  ASSERT_EQ(out.size(), 50u);
  for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], int(i) * 3);
}

TEST(ThreadPoolTest, FixedSizeAndGrowth) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.size(), 2);
  pool.EnsureWorkers(4);
  EXPECT_EQ(pool.size(), 4);
  pool.EnsureWorkers(1);  // Never shrinks.
  EXPECT_EQ(pool.size(), 4);
}

TEST(ThreadPoolTest, ZeroWorkerPoolRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0);
  bool ran = false;
  pool.Submit([&] { ran = true; });
  EXPECT_TRUE(ran);  // Inline: done by the time Submit returns.
}

TEST(ThreadPoolTest, DrainsQueueOnShutdown) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&] { done.fetch_add(1); });
    }
    // Destructor must run all queued tasks before joining.
  }
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadCountTest, ParseThreadCount) {
  EXPECT_EQ(ParseThreadCount(nullptr), 0);
  EXPECT_EQ(ParseThreadCount(""), 0);
  EXPECT_EQ(ParseThreadCount("abc"), 0);
  EXPECT_EQ(ParseThreadCount("12x"), 0);
  EXPECT_EQ(ParseThreadCount("0"), 0);
  EXPECT_EQ(ParseThreadCount("-3"), 0);
  EXPECT_EQ(ParseThreadCount("4"), 4);
  EXPECT_EQ(ParseThreadCount("999999"), kMaxThreads);
}

TEST(ThreadCountTest, ResolveThreadsHonorsEnvAndExplicitRequest) {
  const char* saved = std::getenv("AUTOBI_THREADS");
  std::string saved_value = saved ? saved : "";

  setenv("AUTOBI_THREADS", "3", 1);
  EXPECT_EQ(ResolveThreads(0), 3);   // env wins for "auto".
  EXPECT_EQ(ResolveThreads(5), 5);   // explicit request wins over env.
  setenv("AUTOBI_THREADS", "garbage", 1);
  EXPECT_EQ(ResolveThreads(0), HardwareThreads());  // invalid -> hardware.

  if (saved) {
    setenv("AUTOBI_THREADS", saved_value.c_str(), 1);
  } else {
    unsetenv("AUTOBI_THREADS");
  }
  EXPECT_GE(HardwareThreads(), 1);
}

}  // namespace
}  // namespace autobi
