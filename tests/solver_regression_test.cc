#include <gtest/gtest.h>

#include <cstdlib>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "fuzz/generator.h"
#include "graph/brute_force.h"
#include "graph/edmonds.h"
#include "graph/join_graph.h"
#include "graph/kmca.h"
#include "graph/kmca_cc.h"
#include "graph/validate.h"

namespace autobi {
namespace {

using Pairs = std::vector<std::pair<int, int>>;

Pairs EdgePairs(const JoinGraph& g, const std::vector<int>& edge_ids) {
  Pairs arcs;
  for (int id : edge_ids) arcs.emplace_back(g.edge(id).src, g.edge(id).dst);
  return arcs;
}

// Dense FK-once conflict graph: one hub vertex with an equal-column edge to
// every other vertex (a single large conflict group) plus a second group, so
// the branch-and-bound has many children at the root.
JoinGraph DenseConflictGraph() {
  JoinGraph g(7);
  for (int v = 1; v <= 5; ++v) {
    g.AddEdge(0, v, {0}, {0}, 0.9);  // source_key shared by all five.
  }
  for (int v = 3; v <= 6; ++v) {
    g.AddEdge(1, v, {1}, {0}, 0.8);  // A second conflict group of four.
  }
  g.AddEdge(6, 0, {0}, {1}, 0.7);
  return g;
}

// Regression for the branch-and-bound budget: with a tiny max_one_mca_calls
// the search cannot reach a feasible leaf, so SolveKmcaCc must fall back to
// the thinned relaxation — setting budget_exhausted while still returning a
// structurally valid, FK-once-feasible (possibly suboptimal) model.
TEST(SolverRegressionTest, BudgetExhaustedStillReturnsValidModel) {
  JoinGraph g = DenseConflictGraph();
  KmcaCcOptions opt;
  opt.max_one_mca_calls = 1;
  KmcaCcStats stats;
  KmcaResult r = SolveKmcaCc(g, opt, &stats);

  EXPECT_TRUE(stats.budget_exhausted);
  EXPECT_TRUE(r.feasible);
  int k = 0;
  EXPECT_TRUE(IsKArborescence(g.num_vertices(), EdgePairs(g, r.edge_ids), &k));
  EXPECT_EQ(k, r.k);
  EXPECT_TRUE(SatisfiesFkOnce(g, r.edge_ids));
  EXPECT_NEAR(r.cost, KArborescenceCost(g, r.edge_ids, opt.penalty_weight),
              1e-9);
  // Suboptimal is allowed; beating the exhaustive optimum is not.
  KmcaResult oracle = BruteForceKmcaCc(g, opt.penalty_weight);
  EXPECT_GE(r.cost, oracle.cost - 1e-9);

  // With the default (ample) budget the same instance solves to optimality.
  KmcaCcStats full_stats;
  KmcaResult full = SolveKmcaCc(g, KmcaCcOptions{}, &full_stats);
  EXPECT_FALSE(full_stats.budget_exhausted);
  EXPECT_NEAR(full.cost, oracle.cost, 1e-9);
}

TEST(SolverRegressionTest, BudgetExhaustedMidSearchKeepsIncumbent) {
  JoinGraph g = DenseConflictGraph();
  KmcaCcOptions opt;
  // Enough budget to reach some leaves but not to finish the search.
  opt.max_one_mca_calls = 4;
  KmcaCcStats stats;
  KmcaResult r = SolveKmcaCc(g, opt, &stats);

  EXPECT_TRUE(stats.budget_exhausted);
  EXPECT_TRUE(r.feasible);
  EXPECT_TRUE(IsKArborescence(g.num_vertices(), EdgePairs(g, r.edge_ids)));
  EXPECT_TRUE(SatisfiesFkOnce(g, r.edge_ids));
  EXPECT_GE(r.cost, BruteForceKmcaCc(g, opt.penalty_weight).cost - 1e-9);
}

// All-ties instance: every probability is exactly 0.5, so every edge weight
// is bit-identical and any tie-break asymmetry in the solver would surface
// as run-to-run (or environment-dependent) drift.
JoinGraph AllTiesGraph() {
  JoinGraph g(6);
  g.AddEdge(0, 1, {0}, {0}, 0.5);
  g.AddEdge(0, 2, {0}, {0}, 0.5);  // Conflict with the edge above.
  g.AddEdge(1, 2, {0}, {0}, 0.5);
  g.AddEdge(2, 3, {1}, {0}, 0.5);
  g.AddEdge(3, 4, {0}, {0}, 0.5);
  g.AddEdge(4, 3, {0}, {1}, 0.5);
  g.AddOneToOneEdge(4, 5, {1}, {1}, 0.5);
  g.AddEdge(5, 0, {0}, {2}, 0.5);
  return g;
}

// The graph solvers are sequential, but they run inside a pipeline whose
// worker count comes from AUTOBI_THREADS — equal-weight tie-breaks must not
// depend on that environment (or on how often the solver has run before).
TEST(SolverRegressionTest, TieBreaksAreDeterministicAcrossRunsAndThreadEnv) {
  JoinGraph g = AllTiesGraph();
  KmcaResult base = SolveKmcaCc(g, KmcaCcOptions{}, nullptr);

  for (const char* threads : {"1", "8"}) {
    ASSERT_EQ(setenv("AUTOBI_THREADS", threads, /*overwrite=*/1), 0);
    for (int run = 0; run < 5; ++run) {
      KmcaResult r = SolveKmcaCc(g, KmcaCcOptions{}, nullptr);
      EXPECT_EQ(r.edge_ids, base.edge_ids)
          << "AUTOBI_THREADS=" << threads << " run=" << run;
      EXPECT_EQ(r.cost, base.cost);  // Bitwise: same adds in the same order.
      KmcaResult plain = SolveKmca(g, DefaultPenaltyWeight());
      KmcaResult plain2 = SolveKmca(g, DefaultPenaltyWeight());
      EXPECT_EQ(plain.edge_ids, plain2.edge_ids);
    }
  }
  unsetenv("AUTOBI_THREADS");
}

TEST(SolverRegressionTest, EdmondsDeterministicOnTiedArcs) {
  // Parallel arcs with identical weights: the returned arc *indices* must be
  // stable across repeated runs.
  std::vector<Arc> arcs = {
      {0, 1, 1.0}, {0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 1.0}, {2, 3, 0.5},
      {1, 3, 0.5}, {3, 1, 1.0},
  };
  auto base = SolveMinCostArborescence(4, arcs, 0);
  ASSERT_TRUE(base.has_value());
  for (int run = 0; run < 10; ++run) {
    auto r = SolveMinCostArborescence(4, arcs, 0);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(*r, *base) << "run=" << run;
  }
}

// Randomized determinism sweep: generator-drawn tie-heavy instances solved
// twice must agree exactly (the differential harness also re-solves, but
// this pins the property in the default test suite without the oracles).
TEST(SolverRegressionTest, RandomTieHeavyInstancesSolveIdentically) {
  JoinGraphGenOptions gen;
  gen.tie_prob = 1.0;  // Every probability drawn from the quantized ties.
  gen.conflict_density = 0.5;
  Rng master(0xD373231ULL);
  for (int trial = 0; trial < 200; ++trial) {
    Rng rng = master.Fork();
    JoinGraphInstance inst = GenJoinGraph(gen, rng);
    KmcaCcOptions opt;
    opt.penalty_weight = inst.penalty_weight;
    KmcaResult a = SolveKmcaCc(inst.graph, opt, nullptr);
    KmcaResult b = SolveKmcaCc(inst.graph, opt, nullptr);
    EXPECT_EQ(a.edge_ids, b.edge_ids) << "trial=" << trial;
    EXPECT_EQ(a.cost, b.cost) << "trial=" << trial;
  }
}

}  // namespace
}  // namespace autobi
