// PR 9 differential suite for the lake-scale path: the blocking stage is a
// pure pruning optimization, so a blocking-on Predict must be bit-identical
// to the exhaustive all-pairs oracle (blocking off) on every workload — the
// synthetic REAL corpus, the DDL-driven TPC-H schema, and adversarial lakes
// (shared dimension names, shared key ranges) — and the partitioned
// per-component solve must stitch the same result at 1, 2 and 8 threads.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/auto_bi.h"
#include "core/model_export.h"
#include "core/trainer.h"
#include "synth/corpus.h"
#include "synth/lake.h"
#include "synth/tpch_ddl.h"

namespace autobi {
namespace {

// One shared model for the whole suite (training dominates runtime).
const LocalModel& SharedModel() {
  static const LocalModel* model = [] {
    CorpusOptions opt;
    opt.seed = 808;
    opt.training_cases = 50;
    TrainerOptions trainer;
    trainer.forest.num_trees = 16;
    return new LocalModel(TrainLocalModel(BuildTrainingCorpus(opt), trainer));
  }();
  return *model;
}

AutoBiResult RunPredict(const std::vector<Table>& tables, bool blocking,
                        int threads) {
  AutoBiOptions opt;
  opt.threads = threads;
  opt.candidates.ind.blocking.enabled = blocking;
  AutoBi autobi(&SharedModel(), opt);
  return autobi.Predict(tables);
}

std::string ExportOrDie(const std::vector<Table>& tables,
                        const AutoBiResult& result) {
  StatusOr<std::string> json = ExportJson(tables, result.model);
  EXPECT_TRUE(json.ok()) << json.status().ToString();
  return json.ok() ? json.value() : std::string();
}

// The full bit-identity contract: model export, join graph, and the solver's
// selected edge sets must all match the exhaustive oracle exactly.
void ExpectMatchesExhaustive(const std::vector<Table>& tables, int threads,
                             const char* what) {
  AutoBiResult on = RunPredict(tables, true, threads);
  AutoBiResult off = RunPredict(tables, false, threads);
  EXPECT_EQ(ExportOrDie(tables, on), ExportOrDie(tables, off))
      << what << ": blocking changed the exported model (recall loss)";
  EXPECT_TRUE(on.graph.StructurallyEqual(off.graph))
      << what << ": blocking changed the join graph";
  EXPECT_EQ(on.backbone_edges, off.backbone_edges) << what;
  EXPECT_EQ(on.recall_edges, off.recall_edges) << what;
  // Blocking must actually do work (prune something) wherever more than one
  // table pair exists; the counters prove the fast path ran.
  if (tables.size() > 2) {
    EXPECT_GT(on.ind_stats.blocking.column_pairs_total, 0);
  }
  EXPECT_EQ(off.ind_stats.blocking.column_pairs_pruned, 0);
}

TEST(BlockingDifferentialTest, CorpusBitIdenticalToExhaustive) {
  CorpusOptions opt;
  opt.seed = 911;
  opt.training_cases = 12;
  std::vector<BiCase> corpus = BuildTrainingCorpus(opt);
  ASSERT_FALSE(corpus.empty());
  for (size_t i = 0; i < corpus.size(); ++i) {
    ExpectMatchesExhaustive(corpus[i].tables, 1,
                            corpus[i].name.empty() ? "corpus case"
                                                   : corpus[i].name.c_str());
  }
}

TEST(BlockingDifferentialTest, TpchDdlBitIdenticalToExhaustive) {
  Rng rng(424242);
  StatusOr<BiCase> tpch = GenerateTpchFromDdl(0.05, rng);
  ASSERT_TRUE(tpch.ok()) << tpch.status().ToString();
  for (int threads : {1, 2, 8}) {
    ExpectMatchesExhaustive(tpch->tables, threads, "TPC-H(ddl)");
  }
}

TEST(BlockingDifferentialTest, LakeBitIdenticalToExhaustiveAcrossThreads) {
  LakeGenOptions gen;
  gen.num_tables = 80;
  gen.shared_dim_name_prob = 0.6;   // Force name collisions across islands.
  gen.shared_key_range_prob = 0.2;  // And value-overlapping near-joins.
  Rng rng(0x9a5e);
  BiCase lake = GenerateLake(gen, rng);
  for (int threads : {1, 2, 8}) {
    ExpectMatchesExhaustive(lake.tables, threads, "lake");
  }
}

// The partitioned solve must kick in on a lake (many islands -> many
// components) and stitch bit-identically at any thread count: the thread-1
// run is the reference, 2 and 8 must reproduce it byte for byte, including
// the partition telemetry.
TEST(BlockingDifferentialTest, ComponentStitchDeterministicAcrossThreads) {
  LakeGenOptions gen;
  gen.num_tables = 60;
  Rng rng(0x57a7);
  BiCase lake = GenerateLake(gen, rng);

  AutoBiResult reference = RunPredict(lake.tables, true, 1);
  ASSERT_TRUE(reference.partition.used);
  ASSERT_GT(reference.partition.components, 1u);
  EXPECT_EQ(reference.partition.component_health.size(),
            reference.partition.components_solved);
  std::string reference_json = ExportOrDie(lake.tables, reference);

  for (int threads : {2, 8}) {
    AutoBiResult run = RunPredict(lake.tables, true, threads);
    EXPECT_EQ(ExportOrDie(lake.tables, run), reference_json) << threads;
    EXPECT_TRUE(run.graph.StructurallyEqual(reference.graph)) << threads;
    EXPECT_EQ(run.backbone_edges, reference.backbone_edges) << threads;
    EXPECT_EQ(run.recall_edges, reference.recall_edges) << threads;
    EXPECT_EQ(run.partition.used, reference.partition.used) << threads;
    EXPECT_EQ(run.partition.components, reference.partition.components);
    EXPECT_EQ(run.partition.components_solved,
              reference.partition.components_solved);
    EXPECT_EQ(run.partition.largest_component_edges,
              reference.partition.largest_component_edges);
  }
}

// An edgeless singleton island (1-table remainder) must flow through the
// partition path without a solve call and without disturbing the others.
TEST(BlockingDifferentialTest, SingletonComponentsAreSkippedNotSolved) {
  LakeGenOptions gen;
  gen.num_tables = 31;  // 31 = islands of 3..8 plus a likely remainder.
  Rng rng(0xbeef);
  BiCase lake = GenerateLake(gen, rng);
  AutoBiResult result = RunPredict(lake.tables, true, 2);
  if (result.partition.used) {
    EXPECT_LE(result.partition.components_solved, result.partition.components);
  }
  ExpectMatchesExhaustive(lake.tables, 2, "singleton lake");
}

}  // namespace
}  // namespace autobi
