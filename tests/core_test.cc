#include <gtest/gtest.h>

#include "core/auto_bi.h"
#include "core/bi_model.h"
#include "core/candidates.h"
#include "core/trainer.h"
#include "features/featurizer.h"
#include "tests/test_util.h"

namespace autobi {
namespace {

// --- BiModel / Join.

TEST(JoinTest, OneToOneNormalizationIsOrientationInsensitive) {
  Join a{ColumnRef{0, {1}}, ColumnRef{1, {0}}, JoinKind::kOneToOne};
  Join b{ColumnRef{1, {0}}, ColumnRef{0, {1}}, JoinKind::kOneToOne};
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Normalized().from, b.Normalized().from);
}

TEST(JoinTest, NToOneDirectionMatters) {
  Join a{ColumnRef{0, {1}}, ColumnRef{1, {0}}, JoinKind::kNToOne};
  Join b{ColumnRef{1, {0}}, ColumnRef{0, {1}}, JoinKind::kNToOne};
  EXPECT_FALSE(a == b);
}

TEST(BiModelTest, ContainsUsesNormalizedEquality) {
  BiModel m;
  m.joins.push_back(
      Join{ColumnRef{1, {0}}, ColumnRef{0, {1}}, JoinKind::kOneToOne});
  EXPECT_TRUE(m.Contains(
      Join{ColumnRef{0, {1}}, ColumnRef{1, {0}}, JoinKind::kOneToOne}));
  EXPECT_FALSE(m.Contains(
      Join{ColumnRef{0, {1}}, ColumnRef{1, {0}}, JoinKind::kNToOne}));
}

// --- Candidate generation on a hand-built mini-case.

// fact(cust_id, amount) -> customers(id, name); customers 1:1 cust_details;
// products is a decoy whose key range accidentally contains cust_id (a
// negative candidate, so classifier training sees both classes).
std::vector<Table> MiniTables() {
  std::vector<Table> tables;
  tables.push_back(MakeTable(
      "fact_sales", {{"cust_id", {"1", "2", "2", "3", "1", "3", "2", "1"}},
                     {"amount", {"10", "20", "30", "40", "55", "60", "70",
                                 "80"}}}));
  tables.push_back(MakeTable(
      "customers", {{"id", {"1", "2", "3"}},
                    {"name", {"ann", "bob", "cat"}}}));
  tables.push_back(MakeTable(
      "cust_details", {{"id", {"1", "2", "3"}},
                       {"email", {"a@x", "b@x", "c@x"}}}));
  tables.push_back(MakeTable(
      "products", {{"sku", SeqCells(1, 9)},
                   {"label", {"p1", "p2", "p3", "p4", "p5", "p6", "p7", "p8",
                              "p9"}}}));
  return tables;
}

TEST(CandidatesTest, FindsFkAndOneToOneShapes) {
  CandidateSet cs = GenerateCandidates(MiniTables());
  bool fk_found = false;
  bool one_found = false;
  for (const JoinCandidate& c : cs.candidates) {
    if (c.src.table == 0 && c.src.columns == std::vector<int>{0} &&
        !c.one_to_one) {
      fk_found = true;
      EXPECT_DOUBLE_EQ(c.left_containment, 1.0);
    }
    if (c.one_to_one) {
      one_found = true;
      // Canonical orientation: lower table first.
      EXPECT_LT(c.src.table, c.dst.table);
      EXPECT_GE(std::min(c.left_containment, c.right_containment), 0.9);
    }
  }
  EXPECT_TRUE(fk_found);
  EXPECT_TRUE(one_found);
}

TEST(CandidatesTest, NoDuplicateCandidates) {
  CandidateSet cs = GenerateCandidates(MiniTables());
  for (size_t i = 0; i < cs.candidates.size(); ++i) {
    for (size_t j = i + 1; j < cs.candidates.size(); ++j) {
      bool same = cs.candidates[i].src == cs.candidates[j].src &&
                  cs.candidates[i].dst == cs.candidates[j].dst;
      EXPECT_FALSE(same);
    }
  }
}

TEST(CandidatesTest, TimingsPopulated) {
  CandidateSet cs = GenerateCandidates(MiniTables());
  EXPECT_GE(cs.ucc_seconds, 0.0);
  EXPECT_GE(cs.ind_seconds, 0.0);
  EXPECT_EQ(cs.profiles.size(), 4u);
  EXPECT_EQ(cs.uccs.size(), 4u);
}

// --- Featurizer.

TEST(FeaturizerTest, VectorLengthsMatchNameLists) {
  std::vector<Table> tables = MiniTables();
  CandidateSet cs = GenerateCandidates(tables);
  ASSERT_FALSE(cs.candidates.empty());
  FeatureContext ctx{&tables, &cs.profiles, nullptr};
  Featurizer f;
  const JoinCandidate& cand = cs.candidates[0];
  EXPECT_EQ(f.FeaturizeN1(ctx, cand, false).size(),
            Featurizer::N1FeatureNames(false).size());
  EXPECT_EQ(f.FeaturizeN1(ctx, cand, true).size(),
            Featurizer::N1FeatureNames(true).size());
  EXPECT_EQ(f.FeaturizeOneToOne(ctx, cand, false).size(),
            Featurizer::OneToOneFeatureNames(false).size());
  EXPECT_EQ(f.FeaturizeOneToOne(ctx, cand, true).size(),
            Featurizer::OneToOneFeatureNames(true).size());
}

TEST(FeaturizerTest, SchemaOnlyIsPrefixOfFull) {
  std::vector<Table> tables = MiniTables();
  CandidateSet cs = GenerateCandidates(tables);
  FeatureContext ctx{&tables, &cs.profiles, nullptr};
  Featurizer f;
  const JoinCandidate& cand = cs.candidates[0];
  auto full = f.FeaturizeN1(ctx, cand, false);
  auto schema = f.FeaturizeN1(ctx, cand, true);
  ASSERT_LT(schema.size(), full.size());
  for (size_t i = 0; i < schema.size(); ++i) {
    EXPECT_DOUBLE_EQ(schema[i], full[i]);
  }
}

TEST(FeaturizerTest, NameSimilarityFeatureReflectsMatch) {
  std::vector<Table> tables = MiniTables();
  CandidateSet cs = GenerateCandidates(tables);
  FeatureContext ctx{&tables, &cs.profiles, nullptr};
  Featurizer f;
  // Find the fact.cust_id -> customers.id candidate: its table-augmented
  // similarity ("customers id" vs "cust id") should be > 0.
  for (const JoinCandidate& c : cs.candidates) {
    if (c.src.table == 0 && c.dst.table == 1 && !c.one_to_one) {
      auto v = f.FeaturizeN1(ctx, c, false);
      EXPECT_GT(v[4], 0.5);  // Embedding_similarity with table augment.
    }
  }
}

TEST(NameFrequencyTest, FrequencyIsRelativeToMax) {
  NameFrequency freq;
  freq.Observe("id");
  freq.Observe("id");
  freq.Observe("ID");  // Normalizes to the same key.
  freq.Observe("customer_name");
  EXPECT_DOUBLE_EQ(freq.Frequency("id"), 1.0);
  EXPECT_DOUBLE_EQ(freq.Frequency("customer_name"), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(freq.Frequency("unseen"), 0.0);
}

// --- Labeling with transitivity.

BiCase MiniCase() {
  BiCase c;
  c.tables = MiniTables();
  // GT: fact.cust_id -> customers.id; customers.id 1:1 cust_details.id.
  c.ground_truth.joins.push_back(
      Join{ColumnRef{0, {0}}, ColumnRef{1, {0}}, JoinKind::kNToOne});
  c.ground_truth.joins.push_back(
      Join{ColumnRef{1, {0}}, ColumnRef{2, {0}}, JoinKind::kOneToOne}
          .Normalized());
  return c;
}

TEST(LabelTest, ExactMatchesLabeledPositive) {
  BiCase c = MiniCase();
  CandidateSet cs = GenerateCandidates(c.tables);
  std::vector<int> labels =
      LabelCandidates(c, cs.candidates, /*label_transitivity=*/false);
  for (size_t i = 0; i < cs.candidates.size(); ++i) {
    const JoinCandidate& cand = cs.candidates[i];
    if (cand.src == (ColumnRef{0, {0}}) && cand.dst == (ColumnRef{1, {0}})) {
      EXPECT_EQ(labels[i], 1);
    }
  }
}

TEST(LabelTest, TransitivityMarksIndirectPairs) {
  BiCase c = MiniCase();
  CandidateSet cs = GenerateCandidates(c.tables);
  // fact.cust_id -> cust_details.id is not a GT join, but transitively
  // positive (fact -> customers 1:1 cust_details).
  int idx = -1;
  for (size_t i = 0; i < cs.candidates.size(); ++i) {
    if (cs.candidates[i].src == (ColumnRef{0, {0}}) &&
        cs.candidates[i].dst == (ColumnRef{2, {0}})) {
      idx = int(i);
    }
  }
  ASSERT_GE(idx, 0) << "expected candidate fact->cust_details";
  std::vector<int> without =
      LabelCandidates(c, cs.candidates, /*label_transitivity=*/false);
  std::vector<int> with =
      LabelCandidates(c, cs.candidates, /*label_transitivity=*/true);
  EXPECT_EQ(without[size_t(idx)], 0);
  EXPECT_EQ(with[size_t(idx)], 1);
}

// --- EdgesToModel.

TEST(EdgesToModelTest, DeduplicatesOneToOnePairs) {
  JoinGraph g(2);
  g.AddOneToOneEdge(0, 1, {0}, {0}, 0.9);
  BiModel m = EdgesToModel(g, {0, 1});
  ASSERT_EQ(m.joins.size(), 1u);
  EXPECT_EQ(m.joins[0].kind, JoinKind::kOneToOne);
}

// --- LocalModel save/load.

TEST(LocalModelTest, SaveLoadPreservesScores) {
  BiCase c = MiniCase();
  std::vector<BiCase> corpus(8, c);
  TrainerOptions opt;
  opt.forest.num_trees = 8;
  LocalModel model = TrainLocalModel(corpus, opt);
  ASSERT_TRUE(model.trained());

  std::string path = ::testing::TempDir() + "/autobi_model.txt";
  ASSERT_TRUE(model.SaveToFile(path));
  LocalModel loaded;
  ASSERT_TRUE(loaded.LoadFromFile(path));

  CandidateSet cs = GenerateCandidates(c.tables);
  FeatureContext ctx{&c.tables, &cs.profiles, &model.frequency()};
  FeatureContext lctx{&c.tables, &cs.profiles, &loaded.frequency()};
  for (const JoinCandidate& cand : cs.candidates) {
    EXPECT_NEAR(model.Score(ctx, cand, false),
                loaded.Score(lctx, cand, false), 1e-9);
    EXPECT_NEAR(model.Score(ctx, cand, true), loaded.Score(lctx, cand, true),
                1e-9);
  }
}

}  // namespace
}  // namespace autobi
