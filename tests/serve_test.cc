// Serving-layer tests: the NDJSON protocol surface (serve/json.h,
// serve/engine.h), the versioned model catalog, the cross-request
// content-hash caches (core/predict_cache.h), in-run profile dedupe, and
// admission control. The load-bearing properties:
//   - any request bytes produce one well-formed JSON response line,
//   - Predict responses are byte-identical at any thread count and whether
//     the caches are cold or warm,
//   - admission overflow is an immediate kResourceExhausted, not a hang.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/auto_bi.h"
#include "core/candidates.h"
#include "core/predict_cache.h"
#include "core/trainer.h"
#include "profile/sketch.h"
#include "serve/catalog.h"
#include "serve/engine.h"
#include "serve/json.h"
#include "synth/corpus.h"
#include "table/csv.h"

namespace autobi {
namespace {

// ---------------------------------------------------------------------------
// JSON wire format.

TEST(ServeJson, RoundTripsScalarsAndContainers) {
  const char* inputs[] = {
      "null",
      "true",
      "false",
      "0",
      "-17",
      "9007199254740993",  // > 2^53: must stay exact through int64.
      "1.5",
      "\"hi\"",
      "[]",
      "[1,2,[3]]",
      "{}",
      "{\"a\":1,\"b\":[true,null],\"c\":{\"d\":\"e\"}}",
  };
  for (const char* input : inputs) {
    StatusOr<Json> parsed = ParseJson(input);
    ASSERT_TRUE(parsed.ok()) << input;
    EXPECT_EQ(parsed->Write(), input) << input;
  }
}

TEST(ServeJson, ObjectPreservesInsertionOrder) {
  StatusOr<Json> parsed = ParseJson(R"({"z":1,"a":2,"m":3})");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Write(), R"({"z":1,"a":2,"m":3})");
}

TEST(ServeJson, EscapesControlCharactersToASingleLine) {
  Json obj = Json::MakeObject();
  obj.Set("text", Json::MakeString("line1\nline2\ttab\x01\"quote\""));
  std::string wire = obj.Write();
  EXPECT_EQ(wire.find('\n'), std::string::npos);
  StatusOr<Json> back = ParseJson(wire);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->Find("text")->AsString(), "line1\nline2\ttab\x01\"quote\"");
}

TEST(ServeJson, ParsesUnicodeEscapes) {
  StatusOr<Json> parsed = ParseJson(R"("\u00e9\ud83d\ude00")");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->AsString(), "\xC3\xA9\xF0\x9F\x98\x80");  // é + emoji.
}

TEST(ServeJson, RejectsMalformedInput) {
  const char* inputs[] = {
      "",       "{",     "}",          "[1,",       "{\"a\"}",
      "\"abc",  "01",    "1.",         "1e",        "tru",
      "nul",    "[1]]",  "{\"a\":1,}", "\"\\q\"",   "\"\\ud800\"",
      "\"\x01\"",
  };
  for (const char* input : inputs) {
    StatusOr<Json> parsed = ParseJson(input);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << input;
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidInput) << input;
    }
  }
}

TEST(ServeJson, RejectsExcessiveNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(ParseJson(deep).ok());
}

TEST(ServeJson, TypedGettersDistinguishAbsentFromWrongType) {
  StatusOr<Json> obj = ParseJson(R"({"n":3,"s":"x"})");
  ASSERT_TRUE(obj.ok());
  EXPECT_EQ(obj->GetInt("n", 0).value(), 3);
  EXPECT_EQ(obj->GetInt("missing", 7).value(), 7);
  EXPECT_FALSE(obj->GetInt("s", 0).ok());
  EXPECT_FALSE(obj->GetString("n", "").ok());
}

// ---------------------------------------------------------------------------
// Content hashing + PredictCache.

Table MakeTable(const std::string& name, int rows, int salt = 0) {
  Table t(name);
  Column& id = t.AddColumn("id");
  Column& label = t.AddColumn("label");
  for (int i = 0; i < rows; ++i) {
    id.AppendInt(i + salt);
    label.AppendString("v" + std::to_string((i * 7 + salt) % 23));
  }
  return t;
}

TEST(ContentHash, SensitiveToValuesNamesAndTypes) {
  Table a = MakeTable("t", 50);
  Table b = MakeTable("t", 50);
  EXPECT_EQ(TableContentHash(a), TableContentHash(b));
  EXPECT_NE(TableContentHash(a), TableContentHash(MakeTable("t2", 50)));
  EXPECT_NE(TableContentHash(a), TableContentHash(MakeTable("t", 50, 1)));

  // null vs "" vs 3 vs "3" must not alias.
  Table n1("x"), n2("x"), n3("x"), n4("x");
  n1.AddColumn("c").AppendNull();
  n2.AddColumn("c").AppendString("");
  n3.AddColumn("c").AppendInt(3);
  n4.AddColumn("c").AppendString("3");
  uint64_t h1 = TableContentHash(n1), h2 = TableContentHash(n2);
  uint64_t h3 = TableContentHash(n3), h4 = TableContentHash(n4);
  EXPECT_NE(h1, h2);
  EXPECT_NE(h3, h4);
  EXPECT_NE(h2, h3);
}

TEST(PredictCacheTest, TableShardHitMissAndEviction) {
  PredictCache::Options options;
  options.max_table_entries = 2;
  PredictCache cache(options);
  EXPECT_EQ(cache.FindTable(1), nullptr);
  for (uint64_t k = 1; k <= 3; ++k) {
    auto entry = std::make_shared<PredictCache::TableEntry>();
    cache.InsertTable(k, entry);
  }
  PredictCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.table_entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(cache.FindTable(1), nullptr);  // FIFO: oldest evicted.
  EXPECT_NE(cache.FindTable(3), nullptr);
  stats = cache.GetStats();
  EXPECT_EQ(stats.table_hits, 1u);
  EXPECT_GE(stats.table_misses, 2u);
}

// ---------------------------------------------------------------------------
// Shared trained model for pipeline-level tests (tiny: the tests probe the
// serving machinery, not classifier quality).

const LocalModel& TestModel() {
  static const LocalModel* model = [] {
    CorpusOptions copt;
    copt.seed = 99;
    copt.training_cases = 12;
    TrainerOptions topt;
    topt.forest.num_trees = 4;
    return new LocalModel(TrainLocalModel(BuildTrainingCorpus(copt), topt));
  }();
  return *model;
}

std::vector<Table> StarTables() {
  std::vector<Table> tables;
  Table customers("customers");
  Column& cid = customers.AddColumn("cust_id");
  Column& cname = customers.AddColumn("cust_name");
  for (int i = 0; i < 40; ++i) {
    cid.AppendInt(1000 + i);
    cname.AppendString("customer_" + std::to_string(i));
  }
  tables.push_back(std::move(customers));
  Table orders("orders");
  Column& oid = orders.AddColumn("order_id");
  Column& ocust = orders.AddColumn("cust_id");
  Column& qty = orders.AddColumn("quantity");
  for (int i = 0; i < 150; ++i) {
    oid.AppendInt(i + 1);
    ocust.AppendInt(1000 + (i * 13) % 40);
    qty.AppendInt(1 + i % 9);
  }
  tables.push_back(std::move(orders));
  return tables;
}

// ---------------------------------------------------------------------------
// Library-side cache behaviour: warm == cold, partial reuse, in-run dedupe.

TEST(PredictCacheTest, WarmSolveIsBitIdenticalToCold) {
  PredictCache cache;
  AutoBiOptions options;
  options.threads = 1;
  options.cache = &cache;
  AutoBi predictor(&TestModel(), options);
  std::vector<Table> tables = StarTables();

  AutoBiResult cold = predictor.Predict(tables);
  PredictCache::Stats after_cold = cache.GetStats();
  EXPECT_EQ(after_cold.solve_hits, 0u);
  EXPECT_EQ(after_cold.solve_entries, 1u);

  AutoBiResult warm = predictor.Predict(tables);
  PredictCache::Stats after_warm = cache.GetStats();
  EXPECT_EQ(after_warm.solve_hits, 1u);

  ASSERT_EQ(cold.model.joins.size(), warm.model.joins.size());
  for (size_t i = 0; i < cold.model.joins.size(); ++i) {
    EXPECT_TRUE(cold.model.joins[i] == warm.model.joins[i]);
  }
  EXPECT_EQ(cold.backbone_edges, warm.backbone_edges);
  EXPECT_EQ(cold.recall_edges, warm.recall_edges);
  EXPECT_EQ(cold.graph.edges().size(), warm.graph.edges().size());
}

TEST(PredictCacheTest, PartialChangeReusesUnchangedTableProfiles) {
  PredictCache cache;
  AutoBiOptions options;
  options.threads = 1;
  options.cache = &cache;
  AutoBi predictor(&TestModel(), options);
  std::vector<Table> tables = StarTables();
  predictor.Predict(tables);

  // Change only the fact table; the dimension's profile must come from the
  // cache, and the result must equal a cache-free run on the same input.
  std::vector<Table> mutated = tables;
  for (size_t c = 0; c < mutated[1].num_columns(); ++c) {
    mutated[1].column(c).AppendNull();
  }
  PredictCache::Stats before = cache.GetStats();
  AutoBiResult cached_run = predictor.Predict(mutated);
  PredictCache::Stats after = cache.GetStats();
  EXPECT_GE(after.table_hits, before.table_hits + 1);

  AutoBiOptions nocache;
  nocache.threads = 1;
  AutoBi reference(&TestModel(), nocache);
  AutoBiResult ref = reference.Predict(mutated);
  ASSERT_EQ(cached_run.model.joins.size(), ref.model.joins.size());
  for (size_t i = 0; i < ref.model.joins.size(); ++i) {
    EXPECT_TRUE(cached_run.model.joins[i] == ref.model.joins[i]);
  }
}

TEST(PredictCacheTest, DegradedRunsNeverPopulateTheSolveMemo) {
  PredictCache cache;
  AutoBiOptions options;
  options.threads = 1;
  options.cache = &cache;
  AutoBi predictor(&TestModel(), options);
  std::vector<Table> tables = StarTables();

  RunContext ctx;
  ctx.budgets.max_rows_per_table = 5;  // Trips metadata-only degradation.
  StatusOr<AutoBiResult> degraded = predictor.Predict(tables, &ctx);
  ASSERT_TRUE(degraded.ok());
  ASSERT_TRUE(degraded->degradation.Any());
  EXPECT_EQ(cache.GetStats().solve_entries, 0u);
}

TEST(CandidatesTest, IdenticalTablesInOneRunAreProfiledOnce) {
  std::vector<Table> tables = StarTables();
  tables.push_back(tables[0]);  // The same dimension table twice.
  CandidateGenOptions options;
  options.threads = 1;
  CandidateSet set = GenerateCandidates(tables, options, nullptr);
  EXPECT_EQ(set.profile_dedup_hits, 1u);
  ASSERT_EQ(set.profiles.size(), 3u);
  ASSERT_EQ(set.uccs.size(), 3u);
  EXPECT_EQ(set.uccs[0].size(), set.uccs[2].size());
  EXPECT_EQ(set.profiles[0].columns.size(), set.profiles[2].columns.size());
}

// ---------------------------------------------------------------------------
// ServeEngine protocol tests.

Json Call(ServeEngine& engine, const std::string& request) {
  StatusOr<Json> response = ParseJson(engine.HandleLine(request));
  EXPECT_TRUE(response.ok()) << "response not JSON for: " << request;
  return response.ok() ? *response : Json();
}

bool IsOk(const Json& response) {
  const Json* ok = response.Find("ok");
  return ok != nullptr && ok->is_bool() && ok->AsBool();
}

std::string ErrorCode(const Json& response) {
  const Json* error = response.Find("error");
  if (error == nullptr) return "";
  const Json* code = error->Find("code");
  return code != nullptr && code->is_string() ? code->AsString() : "";
}

std::string UploadLine(const std::string& session, const Table& table) {
  Json req = Json::MakeObject();
  req.Set("verb", Json::MakeString("upload_table"));
  req.Set("session", Json::MakeString(session));
  req.Set("name", Json::MakeString(table.name()));
  req.Set("csv", Json::MakeString(WriteCsv(table)));
  return req.Write();
}

// Creates a session, uploads the star schema, returns the session id.
std::string SetUpStarSession(ServeEngine& engine) {
  Json created = Call(engine, R"({"verb":"create_session"})");
  EXPECT_TRUE(IsOk(created));
  std::string session = created.Find("session")->AsString();
  for (const Table& t : StarTables()) {
    EXPECT_TRUE(IsOk(Call(engine, UploadLine(session, t))));
  }
  return session;
}

TEST(ServeEngineTest, SessionLifecycle) {
  ServeEngine engine(&TestModel(), ServeOptions{});
  std::string session = SetUpStarSession(engine);

  Json predict = Call(engine, R"({"verb":"predict","session":")" + session +
                                  R"(","tier":"standard"})");
  ASSERT_TRUE(IsOk(predict)) << predict.Write();
  EXPECT_EQ(predict.Find("num_tables")->AsInt(), 2);
  ASSERT_NE(predict.Find("joins"), nullptr);

  Json model = Call(engine, R"({"verb":"get_model","session":")" + session +
                                R"(","format":"json"})");
  ASSERT_TRUE(IsOk(model)) << model.Write();
  EXPECT_NE(model.Find("model"), nullptr);

  Json diff =
      Call(engine, R"({"verb":"diff","session":")" + session + R"("})");
  ASSERT_TRUE(IsOk(diff));
  EXPECT_FALSE(diff.Find("against_previous")->AsBool());

  EXPECT_TRUE(IsOk(Call(engine, R"({"verb":"close_session","session":")" +
                                    session + R"("})")));
  Json after = Call(engine, R"({"verb":"predict","session":")" + session +
                                R"("})");
  EXPECT_FALSE(IsOk(after));
  EXPECT_EQ(ErrorCode(after), "INVALID_INPUT");
}

TEST(ServeEngineTest, MalformedAndInvalidRequestsReturnTypedErrors) {
  ServeEngine engine(&TestModel(), ServeOptions{});
  EXPECT_EQ(ErrorCode(Call(engine, "{not json")), "INVALID_INPUT");
  EXPECT_EQ(ErrorCode(Call(engine, "[1,2,3]")), "INVALID_INPUT");
  EXPECT_EQ(ErrorCode(Call(engine, R"({"verb":"no_such_verb"})")),
            "INVALID_INPUT");
  EXPECT_EQ(ErrorCode(Call(engine, R"({"id":4})")), "INVALID_INPUT");
  EXPECT_EQ(ErrorCode(Call(engine, R"({"verb":"predict","session":"nope"})")),
            "INVALID_INPUT");
  // The id is echoed even on errors.
  Json echoed = Call(engine, R"({"verb":"nope","id":42})");
  ASSERT_NE(echoed.Find("id"), nullptr);
  EXPECT_EQ(echoed.Find("id")->AsInt(), 42);
}

TEST(ServeEngineTest, UploadValidationAndReplacement) {
  ServeEngine engine(&TestModel(), ServeOptions{});
  Json created = Call(engine, R"({"verb":"create_session"})");
  std::string session = created.Find("session")->AsString();

  EXPECT_EQ(ErrorCode(Call(engine, R"({"verb":"upload_table","session":")" +
                                       session + R"("})")),
            "INVALID_INPUT");
  EXPECT_EQ(ErrorCode(Call(
                engine, R"({"verb":"upload_table","session":")" + session +
                            R"(","name":"t","csv":"a,b\n1\n"})")),
            "INVALID_INPUT");  // Ragged CSV.
  Json first = Call(engine, R"({"verb":"upload_table","session":")" + session +
                                R"(","name":"t","csv":"a,b\n1,2\n"})");
  ASSERT_TRUE(IsOk(first));
  EXPECT_FALSE(first.Find("replaced")->AsBool());
  Json second = Call(engine, R"({"verb":"upload_table","session":")" +
                                 session +
                                 R"(","name":"t","csv":"a,b\n3,4\n"})");
  ASSERT_TRUE(IsOk(second));
  EXPECT_TRUE(second.Find("replaced")->AsBool());
  EXPECT_EQ(second.Find("num_tables")->AsInt(), 1);
  EXPECT_NE(first.Find("content_hash")->AsString(),
            second.Find("content_hash")->AsString());

  // Columns-form upload with mixed types is rejected.
  EXPECT_EQ(ErrorCode(Call(engine,
                           R"({"verb":"upload_table","session":")" + session +
                               R"(","name":"u","columns":[)"
                               R"({"name":"c","values":[1,"x"]}]})")),
            "INVALID_INPUT");
}

TEST(ServeEngineTest, PredictIsByteIdenticalAcrossThreadCountsAndCacheState) {
  std::vector<std::string> joins_by_threads;
  for (int threads : {1, 2, 8}) {
    ServeOptions options;
    options.threads = threads;
    ServeEngine engine(&TestModel(), options);
    std::string session = SetUpStarSession(engine);
    std::string line = R"({"verb":"predict","session":")" + session +
                       R"(","tier":"standard"})";
    Json cold = Call(engine, line);
    ASSERT_TRUE(IsOk(cold)) << cold.Write();
    Json warm = Call(engine, line);
    ASSERT_TRUE(IsOk(warm)) << warm.Write();
    // Warm re-submission hits the solve memo and matches byte-for-byte.
    EXPECT_GE(warm.Find("cache")->Find("solve_hits")->AsInt(), 1);
    EXPECT_EQ(cold.Find("joins")->Write(), warm.Find("joins")->Write());
    joins_by_threads.push_back(cold.Find("joins")->Write());
  }
  EXPECT_EQ(joins_by_threads[0], joins_by_threads[1]);
  EXPECT_EQ(joins_by_threads[0], joins_by_threads[2]);
}

// The orders rows of StarTables(), parameterized by row count so a fresh
// full upload can reproduce exactly what update_table appends.
Table OrdersTable(int rows) {
  Table orders("orders");
  Column& oid = orders.AddColumn("order_id");
  Column& ocust = orders.AddColumn("cust_id");
  Column& qty = orders.AddColumn("quantity");
  for (int i = 0; i < rows; ++i) {
    oid.AppendInt(i + 1);
    ocust.AppendInt(1000 + (i * 13) % 40);
    qty.AppendInt(1 + i % 9);
  }
  return orders;
}

std::string UpdateOrdersLine(const std::string& session, int start,
                             int count) {
  Table delta = OrdersTable(start + count);
  Json req = Json::MakeObject();
  req.Set("verb", Json::MakeString("update_table"));
  req.Set("session", Json::MakeString(session));
  req.Set("name", Json::MakeString("orders"));
  Json cols = Json::MakeArray();
  for (size_t c = 0; c < delta.num_columns(); ++c) {
    Json col = Json::MakeObject();
    col.Set("name", Json::MakeString(delta.column(c).name()));
    Json values = Json::MakeArray();
    for (int r = start; r < start + count; ++r) {
      values.Append(Json::MakeInt(delta.column(c).Int(size_t(r))));
    }
    col.Set("values", std::move(values));
    cols.Append(std::move(col));
  }
  req.Set("columns", std::move(cols));
  return req.Write();
}

TEST(ServeEngineTest, UpdateTableAppendsAndIncrementalPredictMatchesFresh) {
  ServeOptions options;
  options.threads = 2;
  ServeEngine engine(&TestModel(), options);
  std::string session = SetUpStarSession(engine);
  std::string predict_line = R"({"verb":"predict","session":")" + session +
                             R"(","tier":"standard","incremental":true})";

  // First incremental predict: a cold rebuild through the delta engine —
  // everything reprofiled, nothing reused, counters say so.
  Json first = Call(engine, predict_line);
  ASSERT_TRUE(IsOk(first)) << first.Write();
  const Json* inc = first.Find("incremental");
  ASSERT_NE(inc, nullptr);
  EXPECT_FALSE(inc->Find("used")->AsBool());
  EXPECT_EQ(inc->Find("tables_reprofiled")->AsInt(), 2);
  EXPECT_EQ(inc->Find("pairs_rescored")->AsInt(), 1);
  EXPECT_EQ(inc->Find("pairs_reused")->AsInt(), 0);

  // Append ten orders rows. The response reports the append, and the next
  // incremental predict merges the orders profile forward instead of
  // reprofiling anything (tables_reprofiled == changed-from-scratch == 0).
  Json updated = Call(engine, UpdateOrdersLine(session, 150, 10));
  ASSERT_TRUE(IsOk(updated)) << updated.Write();
  EXPECT_EQ(updated.Find("rows_appended")->AsInt(), 10);
  EXPECT_EQ(updated.Find("rows")->AsInt(), 160);

  Json second = Call(engine, predict_line);
  ASSERT_TRUE(IsOk(second)) << second.Write();
  inc = second.Find("incremental");
  ASSERT_NE(inc, nullptr);
  EXPECT_TRUE(inc->Find("used")->AsBool());
  EXPECT_EQ(inc->Find("tables_reprofiled")->AsInt(), 0);
  EXPECT_EQ(inc->Find("tables_delta_merged")->AsInt(), 1);
  EXPECT_EQ(inc->Find("pairs_rescored")->AsInt(), 1);

  // A fresh session holding the full 160-row orders table predicts the
  // exact same joins and model export with a plain (non-incremental)
  // predict — the serve-side differential-equivalence contract.
  ServeEngine fresh_engine(&TestModel(), options);
  Json created = Call(fresh_engine, R"({"verb":"create_session"})");
  ASSERT_TRUE(IsOk(created));
  std::string fresh = created.Find("session")->AsString();
  for (const Table& t : StarTables()) {
    if (t.name() == "orders") continue;
    ASSERT_TRUE(IsOk(Call(fresh_engine, UploadLine(fresh, t))));
  }
  ASSERT_TRUE(IsOk(Call(fresh_engine, UploadLine(fresh, OrdersTable(160)))));
  Json reference = Call(fresh_engine, R"({"verb":"predict","session":")" +
                                          fresh + R"(","tier":"standard"})");
  ASSERT_TRUE(IsOk(reference)) << reference.Write();
  EXPECT_EQ(second.Find("joins")->Write(), reference.Find("joins")->Write());
  Json inc_model = Call(engine, R"({"verb":"get_model","session":")" +
                                    session + R"(","format":"json"})");
  Json ref_model = Call(fresh_engine, R"({"verb":"get_model","session":")" +
                                          fresh + R"(","format":"json"})");
  ASSERT_TRUE(IsOk(inc_model) && IsOk(ref_model));
  EXPECT_EQ(inc_model.Find("model")->Write(), ref_model.Find("model")->Write());

  // No-op re-predict: everything reused, solve warm-started wholesale.
  Json third = Call(engine, predict_line);
  ASSERT_TRUE(IsOk(third)) << third.Write();
  inc = third.Find("incremental");
  ASSERT_NE(inc, nullptr);
  EXPECT_TRUE(inc->Find("used")->AsBool());
  EXPECT_EQ(inc->Find("tables_reprofiled")->AsInt(), 0);
  EXPECT_EQ(inc->Find("tables_delta_merged")->AsInt(), 0);
  EXPECT_EQ(inc->Find("pairs_rescored")->AsInt(), 0);
  EXPECT_EQ(inc->Find("pairs_reused")->AsInt(), 1);
  EXPECT_TRUE(inc->Find("warm_start_used")->AsBool());
  EXPECT_EQ(third.Find("joins")->Write(), second.Find("joins")->Write());

  // A replace-style change (re-upload with different cells) reprofiles
  // exactly the changed table.
  Table salted = MakeTable("customers", 40, 3);
  ASSERT_TRUE(IsOk(Call(engine, UploadLine(session, salted))));
  Json fourth = Call(engine, predict_line);
  ASSERT_TRUE(IsOk(fourth)) << fourth.Write();
  inc = fourth.Find("incremental");
  ASSERT_NE(inc, nullptr);
  EXPECT_TRUE(inc->Find("used")->AsBool());
  EXPECT_EQ(inc->Find("tables_reprofiled")->AsInt(), 1);
}

TEST(ServeEngineTest, UpdateTableRejectsMalformedDeltas) {
  ServeEngine engine(&TestModel(), ServeOptions{});
  std::string session = SetUpStarSession(engine);

  // Unknown table.
  EXPECT_EQ(ErrorCode(Call(
                engine, R"({"verb":"update_table","session":")" + session +
                            R"(","name":"nope","columns":[]})")),
            "INVALID_INPUT");
  // Wrong column set.
  EXPECT_EQ(ErrorCode(Call(
                engine, R"({"verb":"update_table","session":")" + session +
                            R"(","name":"orders","columns":[)" +
                            R"({"name":"order_id","values":[999]}]})")),
            "INVALID_INPUT");
  // Type mismatch: a string into the int order_id column.
  EXPECT_EQ(
      ErrorCode(Call(
          engine,
          R"({"verb":"update_table","session":")" + session +
              R"(","name":"orders","columns":[)" +
              R"({"name":"order_id","values":["x"]},)" +
              R"({"name":"cust_id","values":[1000]},)" +
              R"({"name":"quantity","values":[1]}]})")),
      "INVALID_INPUT");
  // Ragged delta.
  EXPECT_EQ(
      ErrorCode(Call(
          engine,
          R"({"verb":"update_table","session":")" + session +
              R"(","name":"orders","columns":[)" +
              R"({"name":"order_id","values":[999,1000]},)" +
              R"({"name":"cust_id","values":[1000]},)" +
              R"({"name":"quantity","values":[1,2]}]})")),
      "INVALID_INPUT");
  // Failed updates must not have mutated the table: predict still works on
  // 150 orders rows.
  Json predict = Call(engine, R"({"verb":"predict","session":")" + session +
                                  R"(","tier":"standard"})");
  ASSERT_TRUE(IsOk(predict)) << predict.Write();
}

TEST(ServeEngineTest, ConcurrentPredictsAreDeterministic) {
  ServeOptions options;
  options.threads = 2;
  options.max_inflight = 8;
  ServeEngine engine(&TestModel(), options);
  // Eight sessions with the same tables, predicted concurrently.
  std::vector<std::string> sessions;
  for (int i = 0; i < 8; ++i) sessions.push_back(SetUpStarSession(engine));

  std::vector<std::string> joins(sessions.size());
  std::vector<std::thread> workers;
  for (size_t i = 0; i < sessions.size(); ++i) {
    workers.emplace_back([&, i] {
      Json response =
          Call(engine, R"({"verb":"predict","session":")" + sessions[i] +
                           R"(","tier":"standard"})");
      if (IsOk(response)) joins[i] = response.Find("joins")->Write();
    });
  }
  for (std::thread& w : workers) w.join();
  for (size_t i = 1; i < joins.size(); ++i) {
    EXPECT_EQ(joins[0], joins[i]) << "thread " << i;
    EXPECT_FALSE(joins[i].empty());
  }
}

TEST(AdmissionGateTest, OverflowRejectsImmediately) {
  AdmissionGate gate(/*max_inflight=*/1, /*max_queue=*/0);
  ASSERT_TRUE(gate.Enter().ok());
  Status second = gate.Enter();
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(gate.rejected(), 1);
  gate.Exit();
  EXPECT_TRUE(gate.Enter().ok());
  gate.Exit();
}

TEST(AdmissionGateTest, QueuedCallerProceedsAfterExit) {
  AdmissionGate gate(1, 1);
  ASSERT_TRUE(gate.Enter().ok());
  std::atomic<bool> entered{false};
  std::thread waiter([&] {
    Status status = gate.Enter();
    EXPECT_TRUE(status.ok());
    entered.store(true);
    gate.Exit();
  });
  // The waiter parks in the queue; an Exit must wake it.
  while (gate.queued() == 0) std::this_thread::yield();
  EXPECT_FALSE(entered.load());
  gate.Exit();
  waiter.join();
  EXPECT_TRUE(entered.load());
}

TEST(AdmissionGateTest, TracksAdmittedAndQueueWaitTime) {
  AdmissionGate gate(1, 1);
  ASSERT_TRUE(gate.Enter().ok());
  EXPECT_EQ(gate.admitted(), 1);
  EXPECT_EQ(gate.queue_wait_total_seconds(), 0.0);

  std::thread waiter([&] {
    EXPECT_TRUE(gate.Enter().ok());
    gate.Exit();
  });
  while (gate.queued() == 0) std::this_thread::yield();
  // Make the waiter's queue time unambiguously measurable.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  gate.Exit();
  waiter.join();

  EXPECT_EQ(gate.admitted(), 2);
  EXPECT_GT(gate.queue_wait_total_seconds(), 0.0);
  EXPECT_GE(gate.queue_wait_max_seconds(), 0.015);
  EXPECT_LE(gate.queue_wait_max_seconds(), gate.queue_wait_total_seconds());
}

TEST(ServeEngineTest, PredictOverflowReturnsResourceExhausted) {
  ServeOptions options;
  options.threads = 1;
  options.max_inflight = 1;
  options.max_queue = 0;
  ServeEngine engine(&TestModel(), options);
  std::string session = SetUpStarSession(engine);
  std::string line = R"({"verb":"predict","session":")" + session + R"("})";

  // The hook parks the first Predict while it holds the only slot.
  std::mutex mu;
  std::condition_variable cv;
  bool holding = false, release = false;
  engine.SetPredictHoldHookForTest([&] {
    std::unique_lock<std::mutex> lock(mu);
    holding = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  });

  std::thread holder([&] {
    Json response = Call(engine, line);
    EXPECT_TRUE(IsOk(response)) << response.Write();
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return holding; });
  }
  // Slot taken, queue empty: this request must be rejected, not parked.
  engine.SetPredictHoldHookForTest(nullptr);
  Json rejected = Call(engine, line);
  EXPECT_FALSE(IsOk(rejected));
  EXPECT_EQ(ErrorCode(rejected), "RESOURCE_EXHAUSTED");
  {
    std::unique_lock<std::mutex> lock(mu);
    release = true;
    cv.notify_all();
  }
  holder.join();
}

TEST(ServeEngineTest, QosTierOverridesValidated) {
  ServeEngine engine(&TestModel(), ServeOptions{});
  std::string session = SetUpStarSession(engine);
  EXPECT_EQ(ErrorCode(Call(engine, R"({"verb":"predict","session":")" +
                                       session + R"(","tier":"warp"})")),
            "INVALID_INPUT");
  EXPECT_EQ(ErrorCode(Call(engine,
                           R"({"verb":"predict","session":")" + session +
                               R"(","deadline_seconds":-1})")),
            "INVALID_INPUT");
  Json batch = Call(engine, R"({"verb":"predict","session":")" + session +
                                R"(","tier":"batch","mode":"precision_only"})");
  ASSERT_TRUE(IsOk(batch)) << batch.Write();
  EXPECT_EQ(batch.Find("tier")->AsString(), "batch");
}

// ---------------------------------------------------------------------------
// Catalog.

std::vector<NamedJoin> OneJoin(const std::string& from_table,
                               const std::string& to_table) {
  NamedJoin j;
  j.from = {from_table, {"id"}};
  j.to = {to_table, {"id"}};
  j.kind = JoinKind::kNToOne;
  return {j};
}

TEST(ModelCatalogTest, PublishListPinDiff) {
  ModelCatalog catalog(8);
  EXPECT_EQ(catalog.Publish("acme", "v1", 111, OneJoin("a", "b")).value(), 1);
  std::vector<NamedJoin> two = OneJoin("a", "b");
  two.push_back(OneJoin("c", "d")[0]);
  EXPECT_EQ(catalog.Publish("acme", "v2", 222, two).value(), 2);
  // Tenants are isolated.
  EXPECT_EQ(catalog.Publish("other", "x", 333, OneJoin("q", "r")).value(), 1);

  std::vector<ModelSnapshot> listed = catalog.List("acme");
  ASSERT_EQ(listed.size(), 2u);
  EXPECT_EQ(listed[0].version, 1);
  EXPECT_EQ(listed[1].label, "v2");

  // Get: explicit version and "latest".
  EXPECT_EQ(catalog.Get("acme", 1)->joins.size(), 1u);
  EXPECT_EQ(catalog.Get("acme", 0)->version, 2);
  EXPECT_FALSE(catalog.Get("acme", 9).ok());
  EXPECT_FALSE(catalog.Get("ghost", 1).ok());

  StatusOr<ModelDiff> diff = catalog.Diff("acme", 1, 2);
  ASSERT_TRUE(diff.ok());
  ASSERT_EQ(diff->added.size(), 1u);
  EXPECT_TRUE(diff->added[0] == OneJoin("c", "d")[0]);
  EXPECT_TRUE(diff->removed.empty());

  ASSERT_TRUE(catalog.Pin("acme", 1, true).ok());
  EXPECT_TRUE(catalog.Get("acme", 1)->pinned);
  EXPECT_FALSE(catalog.Pin("acme", 9, true).ok());
}

TEST(ModelCatalogTest, EvictionSkipsPinnedSnapshots) {
  ModelCatalog catalog(/*max_unpinned_per_tenant=*/2);
  ASSERT_TRUE(catalog.Publish("t", "keep", 1, OneJoin("a", "b")).ok());
  ASSERT_TRUE(catalog.Pin("t", 1, true).ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        catalog.Publish("t", "churn", 10 + uint64_t(i), OneJoin("c", "d"))
            .ok());
  }
  // The pinned v1 survives; only 2 unpinned remain.
  EXPECT_TRUE(catalog.Get("t", 1).ok());
  std::vector<ModelSnapshot> listed = catalog.List("t");
  size_t unpinned = 0;
  for (const ModelSnapshot& s : listed) {
    if (!s.pinned) ++unpinned;
  }
  EXPECT_EQ(unpinned, 2u);
}

TEST(ServeEngineTest, CatalogVerbsEndToEnd) {
  ServeEngine engine(&TestModel(), ServeOptions{});
  std::string session = SetUpStarSession(engine);
  ASSERT_TRUE(IsOk(Call(engine, R"({"verb":"predict","session":")" + session +
                                    R"("})")));
  Json published = Call(engine, R"({"verb":"publish_model","session":")" +
                                    session + R"(","label":"first"})");
  ASSERT_TRUE(IsOk(published)) << published.Write();
  EXPECT_EQ(published.Find("version")->AsInt(), 1);

  Json listed = Call(engine, R"({"verb":"list_models"})");
  ASSERT_TRUE(IsOk(listed));
  ASSERT_EQ(listed.Find("models")->size(), 1u);
  EXPECT_EQ(listed.Find("models")->at(0).Find("label")->AsString(), "first");

  EXPECT_TRUE(IsOk(Call(engine, R"({"verb":"pin_model","version":1})")));
  Json got = Call(engine, R"({"verb":"get_catalog_model","version":1})");
  ASSERT_TRUE(IsOk(got));
  EXPECT_TRUE(got.Find("pinned")->AsBool());

  Json diff = Call(engine, R"({"verb":"diff_models","from":1,"to":1})");
  ASSERT_TRUE(IsOk(diff));
  EXPECT_EQ(diff.Find("added")->size(), 0u);
  EXPECT_EQ(diff.Find("removed")->size(), 0u);
}

// Lake-scale observability (PR 9): every successful predict reports what the
// blocking stage pruned and how the global solve partitioned, and the stats
// verb accumulates those numbers across requests.
TEST(ServeEngineTest, PredictReportsBlockingAndPartitionCounters) {
  ServeEngine engine(&TestModel(), ServeOptions{});
  std::string session = SetUpStarSession(engine);
  Json predict =
      Call(engine, R"({"verb":"predict","session":")" + session + R"("})");
  ASSERT_TRUE(IsOk(predict)) << predict.Write();

  const Json* blocking = predict.Find("blocking");
  ASSERT_NE(blocking, nullptr);
  int64_t total = blocking->Find("column_pairs_total")->AsInt();
  int64_t admitted = blocking->Find("column_pairs_admitted")->AsInt();
  int64_t pruned = blocking->Find("column_pairs_pruned")->AsInt();
  EXPECT_GT(total, 0);
  EXPECT_EQ(total, admitted + pruned);
  EXPECT_GE(blocking->Find("table_pairs_total")->AsInt(),
            blocking->Find("table_pairs_active")->AsInt());
  const Json* rate = blocking->Find("pruning_rate");
  ASSERT_NE(rate, nullptr);
  EXPECT_GE(rate->AsDouble(), 0.0);
  EXPECT_LE(rate->AsDouble(), 1.0);

  const Json* partition = predict.Find("partition");
  ASSERT_NE(partition, nullptr);
  ASSERT_NE(partition->Find("used"), nullptr);
  EXPECT_GE(partition->Find("components")->AsInt(),
            partition->Find("components_solved")->AsInt());

  // The stats verb carries the cumulative sums of the same counters.
  Json stats = Call(engine, R"({"verb":"stats"})");
  ASSERT_TRUE(IsOk(stats));
  const Json* cumulative = stats.Find("blocking");
  ASSERT_NE(cumulative, nullptr);
  EXPECT_EQ(cumulative->Find("column_pairs_pruned")->AsInt(), pruned);
  EXPECT_EQ(cumulative->Find("column_pairs_admitted")->AsInt(), admitted);
  EXPECT_GE(cumulative->Find("components_solved")->AsInt(), 0);
}

TEST(ServeEngineTest, StatsAndShutdown) {
  ServeEngine engine(&TestModel(), ServeOptions{});
  Call(engine, R"({"verb":"ping"})");
  Json stats = Call(engine, R"({"verb":"stats"})");
  ASSERT_TRUE(IsOk(stats));
  EXPECT_GE(stats.Find("requests")->AsInt(), 1);
  const Json* admission = stats.Find("admission");
  ASSERT_NE(admission, nullptr);
  // Queue-wait and rejection counters are always present; only predicts
  // pass through the gate, so everything is zero after a ping.
  EXPECT_EQ(admission->Find("admitted")->AsInt(), 0);
  EXPECT_EQ(admission->Find("rejected")->AsInt(), 0);
  EXPECT_EQ(admission->Find("queue_wait_total_seconds")->AsDouble(), 0.0);
  EXPECT_EQ(admission->Find("queue_wait_max_seconds")->AsDouble(), 0.0);
  // Without --state_dir the durability block reports disabled.
  const Json* durability = stats.Find("durability");
  ASSERT_NE(durability, nullptr);
  EXPECT_FALSE(durability->Find("enabled")->AsBool());
  EXPECT_FALSE(engine.shutdown_requested());
  Json shutdown = Call(engine, R"({"verb":"shutdown"})");
  EXPECT_TRUE(IsOk(shutdown));
  EXPECT_TRUE(shutdown.Find("state_flushed")->AsBool());
  EXPECT_TRUE(engine.shutdown_requested());
}

// The tentpole end-to-end property: a daemon restarted from a populated
// state dir serves the published model byte-identically, and the stats verb
// reports what recovery found.
TEST(ServeEngineTest, StateDirRestartServesByteIdenticalCatalogModel) {
  std::string dir = ::testing::TempDir() + "/autobi_serve_restart";
  std::filesystem::remove_all(dir);
  ServeOptions options;
  options.state_dir = dir;

  std::string first_response;
  {
    ServeEngine engine(&TestModel(), options);
    ASSERT_TRUE(engine.RecoverState().ok());
    std::string session = SetUpStarSession(engine);
    ASSERT_TRUE(IsOk(Call(engine, R"({"verb":"predict","session":")" +
                                      session + R"("})")));
    Json published = Call(engine, R"({"verb":"publish_model","session":")" +
                                      session + R"(","label":"durable"})");
    ASSERT_TRUE(IsOk(published)) << published.Write();
    ASSERT_TRUE(IsOk(Call(engine, R"({"verb":"pin_model","version":1})")));
    first_response =
        engine.HandleLine(R"({"verb":"get_catalog_model","version":1})");
    ASSERT_TRUE(engine.FlushState().ok());
  }  // Engine destroyed: the "restart".

  ServeEngine engine(&TestModel(), options);
  ASSERT_TRUE(engine.RecoverState().ok());
  // Byte-identical response without any session or re-predict.
  EXPECT_EQ(engine.HandleLine(R"({"verb":"get_catalog_model","version":1})"),
            first_response);

  Json stats = Call(engine, R"({"verb":"stats"})");
  ASSERT_TRUE(IsOk(stats));
  const Json* durability = stats.Find("durability");
  ASSERT_NE(durability, nullptr);
  EXPECT_TRUE(durability->Find("enabled")->AsBool());
  EXPECT_EQ(durability->Find("recovered_versions")->AsInt(), 1);
  EXPECT_EQ(durability->Find("recovered_tenants")->AsInt(), 1);
  EXPECT_EQ(durability->Find("discarded_records")->AsInt(), 0);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace autobi
