// Structural depth checks on the TPC transcriptions, including the paper's
// Section-5.3 observation that TPC-E clusters join through a few central
// "hub" tables — verified here with the schema summarizer on the ground
// truth.

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "core/schema_summary.h"
#include "profile/ucc.h"
#include "synth/tpc.h"

namespace autobi {
namespace {

TEST(TpcDepthTest, TpcEHubsAreTheCentralTables) {
  Rng rng(1);
  BiCase tpce = GenerateTpcE(0.2, rng);
  SchemaSummary summary = SummarizeSchema(tpce.tables, tpce.ground_truth);
  std::set<std::string> hubs;
  for (int t : summary.HubTables()) {
    hubs.insert(tpce.tables[size_t(t)].name());
  }
  // The paper names customers/security/trade-style hubs explicitly.
  EXPECT_TRUE(hubs.count("customer"));
  EXPECT_TRUE(hubs.count("security"));
  EXPECT_TRUE(hubs.count("trade"));
  EXPECT_TRUE(hubs.count("company"));
  EXPECT_GE(hubs.size(), 5u);
  // And the schema is one big connected cluster.
  EXPECT_EQ(summary.num_clusters, 1);
}

TEST(TpcDepthTest, TpcDsRolePlayingDateFks) {
  Rng rng(2);
  BiCase tpcds = GenerateTpcDs(0.2, rng);
  // date_dim is referenced by many role-playing FKs — the reason
  // Auto-BI-P's recall collapses on TPC-DS (Table 5).
  int date_dim = -1;
  for (size_t t = 0; t < tpcds.tables.size(); ++t) {
    if (tpcds.tables[t].name() == "date_dim") date_dim = int(t);
  }
  ASSERT_GE(date_dim, 0);
  int in_degree = 0;
  for (const Join& j : tpcds.ground_truth.joins) {
    if (j.to.table == date_dim) ++in_degree;
  }
  EXPECT_GE(in_degree, 15);
  // A k-arborescence can keep at most ONE of these, bounding backbone
  // recall to roughly (edges - (in_degree-1) - ...) / edges.
  SchemaSummary summary = SummarizeSchema(tpcds.tables, tpcds.ground_truth);
  EXPECT_EQ(summary.tables[size_t(date_dim)].role, TableRole::kHub);
}

TEST(TpcDepthTest, TpcHPartsuppHasCompositeKey) {
  Rng rng(3);
  BiCase tpch = GenerateTpcH(0.2, rng);
  int partsupp = -1;
  for (size_t t = 0; t < tpch.tables.size(); ++t) {
    if (tpch.tables[t].name() == "partsupp") partsupp = int(t);
  }
  ASSERT_GE(partsupp, 0);
  const Table& ps = tpch.tables[size_t(partsupp)];
  // Neither component is unique alone; the pair is.
  EXPECT_FALSE(IsUniqueCombination(ps, {0}));
  EXPECT_FALSE(IsUniqueCombination(ps, {1}));
  EXPECT_TRUE(IsUniqueCombination(ps, {0, 1}));
  // And UCC discovery finds it.
  TableProfile profile = ProfileTable(ps);
  bool found = false;
  for (const Ucc& u : DiscoverUccs(ps, profile)) {
    if (u.columns == std::vector<int>{0, 1}) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(TpcDepthTest, TpcCIsConnectedThroughOrderAndCustomer) {
  Rng rng(4);
  BiCase tpcc = GenerateTpcC(0.3, rng);
  SchemaSummary summary = SummarizeSchema(tpcc.tables, tpcc.ground_truth);
  EXPECT_EQ(summary.num_clusters, 1);
  std::set<std::string> hubs;
  for (int t : summary.HubTables()) {
    hubs.insert(tpcc.tables[size_t(t)].name());
  }
  EXPECT_TRUE(hubs.count("customer"));
  EXPECT_TRUE(hubs.count("orders"));
}

TEST(TpcDepthTest, ScaleKnobChangesRowCountsNotStructure) {
  Rng rng_a(5), rng_b(5);
  BiCase small = GenerateTpcH(0.2, rng_a);
  BiCase large = GenerateTpcH(0.6, rng_b);
  ASSERT_EQ(small.tables.size(), large.tables.size());
  EXPECT_EQ(small.ground_truth.joins.size(),
            large.ground_truth.joins.size());
  EXPECT_LT(small.tables[7].num_rows(), large.tables[7].num_rows());
}

}  // namespace
}  // namespace autobi
