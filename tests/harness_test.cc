#include "eval/harness.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace autobi {
namespace {

// A predictor that always returns a fixed model and timing.
class FixedPredictor : public JoinPredictor {
 public:
  FixedPredictor(BiModel model, double seconds)
      : model_(std::move(model)), seconds_(seconds) {}
  std::string name() const override { return "fixed"; }
  BiModel Predict(const std::vector<Table>& tables,
                  AutoBiTiming* timing) const override {
    (void)tables;
    if (timing != nullptr) {
      timing->ucc = seconds_ / 4;
      timing->ind = seconds_ / 4;
      timing->local_inference = seconds_ / 4;
      timing->global_predict = seconds_ / 4;
    }
    return model_;
  }

 private:
  BiModel model_;
  double seconds_;
};

BiCase TwoTableCase() {
  BiCase c;
  c.tables.push_back(MakeTable("a", {{"x", {"1"}}}));
  c.tables.push_back(MakeTable("b", {{"x", {"1"}}}));
  c.ground_truth.joins.push_back(
      Join{ColumnRef{0, {0}}, ColumnRef{1, {0}}, JoinKind::kNToOne});
  return c;
}

TEST(HarnessTest, RunMethodEvaluatesEveryCase) {
  std::vector<BiCase> cases = {TwoTableCase(), TwoTableCase()};
  BiModel perfect;
  perfect.joins.push_back(
      Join{ColumnRef{0, {0}}, ColumnRef{1, {0}}, JoinKind::kNToOne});
  FixedPredictor predictor(perfect, 1.0);
  MethodResults r = RunMethod(predictor, cases);
  EXPECT_EQ(r.method, "fixed");
  ASSERT_EQ(r.cases.size(), 2u);
  AggregateMetrics q = r.Quality();
  EXPECT_DOUBLE_EQ(q.precision, 1.0);
  EXPECT_DOUBLE_EQ(q.recall, 1.0);
  EXPECT_DOUBLE_EQ(q.case_precision, 1.0);
}

TEST(HarnessTest, TotalSecondsSumsBreakdown) {
  FixedPredictor predictor(BiModel{}, 2.0);
  MethodResults r = RunMethod(predictor, {TwoTableCase()});
  std::vector<double> totals = r.TotalSeconds();
  ASSERT_EQ(totals.size(), 1u);
  EXPECT_NEAR(totals[0], 2.0, 1e-9);
}

TEST(HarnessTest, QualityOnSubsetSelectsIndices) {
  std::vector<BiCase> cases = {TwoTableCase(), TwoTableCase()};
  BiModel perfect;
  perfect.joins.push_back(
      Join{ColumnRef{0, {0}}, ColumnRef{1, {0}}, JoinKind::kNToOne});
  FixedPredictor predictor(perfect, 0.0);
  MethodResults r = RunMethod(predictor, cases);
  AggregateMetrics first = QualityOnSubset(r, {0});
  EXPECT_EQ(first.num_cases, 1u);
  EXPECT_DOUBLE_EQ(first.f1, 1.0);
  AggregateMetrics none = QualityOnSubset(r, {});
  EXPECT_EQ(none.num_cases, 0u);
}

TEST(HarnessTest, WrongPredictionScoresZero) {
  BiModel wrong;
  wrong.joins.push_back(
      Join{ColumnRef{1, {0}}, ColumnRef{0, {0}}, JoinKind::kNToOne});
  FixedPredictor predictor(wrong, 0.0);
  MethodResults r = RunMethod(predictor, {TwoTableCase()});
  AggregateMetrics q = r.Quality();
  EXPECT_DOUBLE_EQ(q.precision, 0.0);
  EXPECT_DOUBLE_EQ(q.case_precision, 0.0);
}

}  // namespace
}  // namespace autobi
