// Tests for the crash-safe serving state layer: record framing + CRC32C,
// the RecordLog commit barrier, snapshot files, and ModelCatalog recovery
// from a state dir (including pin-aware eviction across restart).

#include "serve/journal.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "common/fs.h"
#include "serve/catalog.h"

namespace autobi {
namespace {

// Fresh per-test scratch dir under the gtest temp root.
std::string ScratchDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/autobi_journal_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

NamedJoin MakeJoin(const std::string& from_table, const std::string& from_col,
                   const std::string& to_table, const std::string& to_col,
                   JoinKind kind = JoinKind::kNToOne) {
  NamedJoin j;
  j.from.table = from_table;
  j.from.columns = {from_col};
  j.to.table = to_table;
  j.to.columns = {to_col};
  j.kind = kind;
  return j.Normalized();
}

TEST(Crc32cTest, KnownAnswers) {
  // The canonical CRC32C check value (RFC 3720 appendix B.4).
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
  // Sensitive to every byte: flipping one bit changes the checksum.
  std::string a = "hello journal";
  std::string b = a;
  b[3] ^= 0x01;
  EXPECT_NE(Crc32c(a.data(), a.size()), Crc32c(b.data(), b.size()));
}

TEST(FramingTest, RoundTripPreservesOrderAndOffsets) {
  std::string log;
  AppendFramedRecord(&log, 7, "first");
  size_t second_off = log.size();
  AppendFramedRecord(&log, 7, "second record, a bit longer");
  AppendFramedRecord(&log, 7, "");  // Empty payloads are legal.

  LogReadResult r = DecodeRecords(log, 7);
  ASSERT_EQ(r.payloads.size(), 3u);
  EXPECT_EQ(r.payloads[0], "first");
  EXPECT_EQ(r.payloads[1], "second record, a bit longer");
  EXPECT_EQ(r.payloads[2], "");
  ASSERT_EQ(r.offsets.size(), 3u);
  EXPECT_EQ(r.offsets[0], 0u);
  EXPECT_EQ(r.offsets[1], second_off);
  EXPECT_EQ(r.valid_bytes, log.size());
  EXPECT_EQ(r.discarded_records, 0);
}

TEST(FramingTest, TornTailIsDiscardedSilently) {
  std::string log;
  AppendFramedRecord(&log, 1, "committed");
  size_t committed_bytes = log.size();
  AppendFramedRecord(&log, 1, "torn by a crash");

  // Every strictly-shorter prefix of the second record decodes to just the
  // first record — a torn header, a torn payload, any split point.
  for (size_t cut = committed_bytes; cut < log.size(); ++cut) {
    LogReadResult r = DecodeRecords(std::string_view(log.data(), cut), 1);
    ASSERT_EQ(r.payloads.size(), 1u) << "cut=" << cut;
    EXPECT_EQ(r.payloads[0], "committed");
    EXPECT_EQ(r.valid_bytes, committed_bytes);
    EXPECT_EQ(r.discarded_records, cut > committed_bytes ? 1 : 0);
  }
}

TEST(FramingTest, CorruptByteStopsReplayAtThatRecord) {
  std::string log;
  AppendFramedRecord(&log, 1, "good");
  size_t second_off = log.size();
  AppendFramedRecord(&log, 1, "about to be damaged");
  AppendFramedRecord(&log, 1, "unreachable after the damage");

  std::string damaged = log;
  damaged[second_off + 16 + 3] ^= 0x40;  // A payload byte of record 2.
  LogReadResult r = DecodeRecords(damaged, 1);
  ASSERT_EQ(r.payloads.size(), 1u);
  EXPECT_EQ(r.payloads[0], "good");
  EXPECT_EQ(r.valid_bytes, second_off);
  EXPECT_EQ(r.discarded_records, 1);
}

TEST(FramingTest, WrongGenerationStopsReplay) {
  std::string log;
  AppendFramedRecord(&log, 3, "gen three");
  AppendFramedRecord(&log, 4, "stale record from another epoch");
  LogReadResult r = DecodeRecords(log, 3);
  ASSERT_EQ(r.payloads.size(), 1u);
  EXPECT_EQ(r.payloads[0], "gen three");
  EXPECT_EQ(r.discarded_records, 1);
}

TEST(RecordLogTest, AppendCommitReopenRoundTrip) {
  std::string dir = ScratchDir("recordlog");
  std::string path = dir + "/journal.1";

  RecordLog log;
  ASSERT_TRUE(log.Open(path, 1, 0).ok());
  ASSERT_TRUE(log.Append("alpha").ok());
  ASSERT_TRUE(log.Append("beta").ok());
  ASSERT_TRUE(log.Commit().ok());
  log.Close();
  EXPECT_FALSE(log.is_open());

  StatusOr<std::string> bytes = ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  LogReadResult r = DecodeRecords(*bytes, 1);
  ASSERT_EQ(r.payloads.size(), 2u);
  EXPECT_EQ(r.payloads[0], "alpha");
  EXPECT_EQ(r.payloads[1], "beta");

  // Reopen for appending at the committed size; new records follow cleanly.
  RecordLog again;
  ASSERT_TRUE(again.Open(path, 1, r.valid_bytes).ok());
  ASSERT_TRUE(again.Append("gamma").ok());
  ASSERT_TRUE(again.Commit().ok());
  again.Close();
  bytes = ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  r = DecodeRecords(*bytes, 1);
  ASSERT_EQ(r.payloads.size(), 3u);
  EXPECT_EQ(r.payloads[2], "gamma");
}

TEST(RecordLogTest, OpenTruncatesTornTail) {
  std::string dir = ScratchDir("torntail");
  std::string path = dir + "/journal.1";
  std::string bytes;
  AppendFramedRecord(&bytes, 1, "kept");
  size_t committed = bytes.size();
  bytes += "garbage tail from a crash";
  ASSERT_TRUE(WriteFileAtomic(path, bytes).ok());

  RecordLog log;
  ASSERT_TRUE(log.Open(path, 1, committed).ok());
  log.Close();
  StatusOr<std::string> after = ReadFileToString(path);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->size(), committed);
  LogReadResult r = DecodeRecords(*after, 1);
  ASSERT_EQ(r.payloads.size(), 1u);
  EXPECT_EQ(r.payloads[0], "kept");
  EXPECT_EQ(r.discarded_records, 0);
}

TEST(SnapshotFileTest, RoundTripMissingAndCorrupt) {
  std::string dir = ScratchDir("snapshot");
  std::string path = dir + "/snapshot";

  SnapshotReadResult missing = ReadSnapshotFile(path);
  EXPECT_FALSE(missing.found);
  EXPECT_FALSE(missing.corrupt);

  ASSERT_TRUE(WriteSnapshotFile(path, 5, "{\"tenants\":[]}").ok());
  SnapshotReadResult ok = ReadSnapshotFile(path);
  EXPECT_TRUE(ok.found);
  EXPECT_FALSE(ok.corrupt);
  EXPECT_EQ(ok.generation, 5u);
  EXPECT_EQ(ok.payload, "{\"tenants\":[]}");

  StatusOr<std::string> raw = ReadFileToString(path);
  ASSERT_TRUE(raw.ok());
  std::string damaged = *raw;
  damaged[damaged.size() - 2] ^= 0x10;
  ASSERT_TRUE(WriteFileAtomic(path, damaged).ok());
  SnapshotReadResult bad = ReadSnapshotFile(path);
  EXPECT_TRUE(bad.found);
  EXPECT_TRUE(bad.corrupt);
}

TEST(CatalogDurabilityTest, RestartRecoversVersionsPinsAndJoins) {
  std::string dir = ScratchDir("restart");
  std::vector<NamedJoin> joins = {
      MakeJoin("Orders", "cust_id", "Customers", "id"),
      MakeJoin("Orders", "prod_id", "Products", "id"),
  };
  {
    ModelCatalog catalog(8);
    ASSERT_TRUE(catalog.OpenStateDir(dir).ok());
    ASSERT_EQ(catalog.Publish("default", "v1", 0x1111, joins).value(), 1);
    ASSERT_EQ(catalog.Publish("default", "v2", 0x2222, {joins[0]}).value(),
              2);
    ASSERT_EQ(catalog.Publish("tenant_b", "b1", 0x3333, {}).value(), 1);
    ASSERT_TRUE(catalog.Pin("default", 1, true).ok());
    ASSERT_TRUE(catalog.Flush().ok());
  }  // Destructor = process exit; no explicit handoff.

  ModelCatalog recovered(8);
  ASSERT_TRUE(recovered.OpenStateDir(dir).ok());
  DurabilityStats stats = recovered.durability();
  EXPECT_TRUE(stats.enabled);
  EXPECT_EQ(stats.recovered_versions, 3);
  EXPECT_EQ(stats.recovered_tenants, 2);
  EXPECT_EQ(stats.discarded_records, 0);

  std::vector<ModelSnapshot> list = recovered.List("default");
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0].version, 1);
  EXPECT_EQ(list[0].label, "v1");
  EXPECT_TRUE(list[0].pinned);
  EXPECT_EQ(list[0].tables_hash, 0x1111u);
  ASSERT_EQ(list[0].joins.size(), 2u);
  EXPECT_TRUE(list[0].joins == joins || (list[0].joins[0] == joins[1] &&
                                         list[0].joins[1] == joins[0]));
  EXPECT_EQ(list[1].version, 2);
  EXPECT_FALSE(list[1].pinned);
  ASSERT_EQ(recovered.List("tenant_b").size(), 1u);

  // Versions continue densely after restart, never reusing numbers.
  EXPECT_EQ(recovered.Publish("default", "v3", 0x4444, {}).value(), 3);
}

TEST(CatalogDurabilityTest, PinnedSnapshotSurvivesEvictionAcrossRestart) {
  std::string dir = ScratchDir("pin_evict");
  {
    // Capacity 2 unpinned: publishing past it evicts the oldest unpinned.
    ModelCatalog catalog(2);
    ASSERT_TRUE(catalog.OpenStateDir(dir).ok());
    ASSERT_EQ(catalog.Publish("default", "keep", 1, {}).value(), 1);
    ASSERT_TRUE(catalog.Pin("default", 1, true).ok());
    ASSERT_EQ(catalog.Publish("default", "v2", 2, {}).value(), 2);
    ASSERT_EQ(catalog.Publish("default", "v3", 3, {}).value(), 3);
    ASSERT_EQ(catalog.Publish("default", "v4", 4, {}).value(), 4);
    ASSERT_TRUE(catalog.Flush().ok());
  }

  ModelCatalog recovered(2);
  ASSERT_TRUE(recovered.OpenStateDir(dir).ok());
  std::vector<ModelSnapshot> list = recovered.List("default");
  // v2 was evicted when v4 arrived; the pinned v1 was skipped both live and
  // on replay (evictions are explicit journal records, never re-derived).
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0].version, 1);
  EXPECT_EQ(list[0].label, "keep");
  EXPECT_TRUE(list[0].pinned);
  EXPECT_EQ(list[1].version, 3);
  EXPECT_EQ(list[2].version, 4);

  // Dense numbering continues after the restart.
  EXPECT_EQ(recovered.Publish("default", "v5", 5, {}).value(), 5);
  EXPECT_FALSE(recovered.Get("default", 2).ok());
}

TEST(CatalogDurabilityTest, CompactionBumpsGenerationAndSweepsOldJournal) {
  std::string dir = ScratchDir("compact");
  {
    ModelCatalog catalog(16);
    ASSERT_TRUE(catalog.OpenStateDir(dir, /*compact_every=*/2).ok());
    for (int i = 0; i < 7; ++i) {
      ASSERT_TRUE(
          catalog.Publish("default", "v" + std::to_string(i), uint64_t(i), {})
              .ok());
    }
    DurabilityStats stats = catalog.durability();
    EXPECT_GE(stats.snapshots_written, 2L);
    EXPECT_GE(stats.generation, 2u);
  }

  // Exactly one journal file (the live generation) remains beside the
  // snapshot; stale generations were unlinked as compaction advanced.
  int journals = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    std::string name = entry.path().filename().string();
    if (name.rfind("journal.", 0) == 0) ++journals;
  }
  EXPECT_EQ(journals, 1);
  EXPECT_TRUE(ReadSnapshotFile(dir + "/snapshot").found);

  ModelCatalog recovered(16);
  ASSERT_TRUE(recovered.OpenStateDir(dir, 2).ok());
  EXPECT_EQ(recovered.List("default").size(), 7u);
  EXPECT_EQ(recovered.durability().recovered_versions, 7);
}

TEST(CatalogDurabilityTest, TornJournalTailRecoversCommittedPrefix) {
  std::string dir = ScratchDir("torn_catalog");
  {
    ModelCatalog catalog(16);
    // compact_every high enough that everything stays in journal.0.
    ASSERT_TRUE(catalog.OpenStateDir(dir, 1000).ok());
    for (int i = 1; i <= 4; ++i) {
      ASSERT_TRUE(
          catalog.Publish("default", "v" + std::to_string(i), uint64_t(i), {})
              .ok());
    }
  }

  // Tear the last record's tail off, as a crash mid-write would.
  std::string journal_path;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    std::string name = entry.path().filename().string();
    if (name.rfind("journal.", 0) == 0) journal_path = entry.path().string();
  }
  ASSERT_FALSE(journal_path.empty());
  StatusOr<std::string> bytes = ReadFileToString(journal_path);
  ASSERT_TRUE(bytes.ok());
  std::filesystem::resize_file(journal_path, bytes->size() - 5);

  ModelCatalog recovered(16);
  ASSERT_TRUE(recovered.OpenStateDir(dir, 1000).ok());
  DurabilityStats stats = recovered.durability();
  EXPECT_EQ(stats.recovered_versions, 3);
  EXPECT_EQ(stats.discarded_records, 1);
  std::vector<ModelSnapshot> list = recovered.List("default");
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list.back().version, 3);
  // Publishing still works; the torn-off v4 was never durable, so its
  // number may be reassigned — what matters is the new version exceeds
  // everything that survived.
  StatusOr<int64_t> next = recovered.Publish("default", "again", 9, {});
  ASSERT_TRUE(next.ok());
  EXPECT_GT(*next, 3);
}

}  // namespace
}  // namespace autobi
