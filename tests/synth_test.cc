#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "graph/validate.h"
#include "profile/column_profile.h"
#include "synth/bi_generator.h"
#include "synth/classic_dbs.h"
#include "synth/corpus.h"
#include "synth/schema_builder.h"
#include "synth/tpc.h"

namespace autobi {
namespace {

// --- SchemaBuilder.

TEST(SchemaBuilderTest, FkValuesComeFromReferencedColumn) {
  SchemaBuilder b;
  TableSpec dim;
  dim.name = "dim";
  dim.rows = 20;
  ColumnSpec pk;
  pk.name = "id";
  pk.kind = ColumnKind::kSurrogateKey;
  dim.columns.push_back(pk);
  b.AddTable(dim);
  TableSpec fact;
  fact.name = "fact";
  fact.rows = 100;
  b.AddTable(fact);
  b.AddFkColumn("fact", "dim_id", "dim", "id");

  Rng rng(1);
  BiCase c = b.Generate("t", rng);
  const Table& f = c.tables[1];
  int fk = f.ColumnIndex("dim_id");
  ASSERT_GE(fk, 0);
  for (size_t r = 0; r < f.num_rows(); ++r) {
    int64_t v = f.column(size_t(fk)).Int(r);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 20);
  }
  ASSERT_EQ(c.ground_truth.joins.size(), 1u);
  EXPECT_EQ(c.ground_truth.joins[0].kind, JoinKind::kNToOne);
}

TEST(SchemaBuilderTest, DanglingFractionRespected) {
  SchemaBuilder b;
  TableSpec dim;
  dim.name = "dim";
  dim.rows = 50;
  ColumnSpec pk;
  pk.name = "id";
  pk.kind = ColumnKind::kSurrogateKey;
  dim.columns.push_back(pk);
  b.AddTable(dim);
  TableSpec fact;
  fact.name = "fact";
  fact.rows = 1000;
  b.AddTable(fact);
  b.AddFkColumn("fact", "dim_id", "dim", "id", 0.0, /*dangling=*/0.2);
  Rng rng(2);
  BiCase c = b.Generate("t", rng);
  const Column& fk = c.tables[1].column(0);
  size_t dangling = 0;
  for (size_t r = 0; r < fk.size(); ++r) {
    int64_t v = fk.Int(r);
    if (v < 1 || v > 50) ++dangling;
  }
  EXPECT_NEAR(double(dangling) / 1000.0, 0.2, 0.05);
}

TEST(SchemaBuilderTest, OneToOneKeysAlign) {
  SchemaBuilder b;
  TableSpec a;
  a.name = "a";
  a.rows = 30;
  ColumnSpec pk;
  pk.name = "id";
  pk.kind = ColumnKind::kSurrogateKey;
  a.columns.push_back(pk);
  b.AddTable(a);
  TableSpec d = a;
  d.name = "a_details";
  b.AddTable(d);
  b.AddOneToOne("a", "id", "a_details", "id");
  Rng rng(3);
  BiCase c = b.Generate("t", rng);
  ColumnProfile pa = ProfileColumn(c.tables[0].column(0));
  ColumnProfile pb = ProfileColumn(c.tables[1].column(0));
  EXPECT_DOUBLE_EQ(Containment(pa, pb), 1.0);
  EXPECT_DOUBLE_EQ(Containment(pb, pa), 1.0);
  EXPECT_TRUE(pa.IsUnique());
  EXPECT_TRUE(pb.IsUnique());
}

TEST(SchemaBuilderTest, CompositeFkTuplesComeFromReferencedRows) {
  // partsupp-style: pair key via Mod/Div, composite FK sampling rows.
  SchemaBuilder b;
  TableSpec part;
  part.name = "part";
  part.rows = 10;
  ColumnSpec ppk;
  ppk.name = "p_id";
  ppk.kind = ColumnKind::kSurrogateKey;
  part.columns.push_back(ppk);
  b.AddTable(part);
  TableSpec supp = part;
  supp.name = "supp";
  supp.rows = 8;
  supp.columns[0].name = "s_id";
  b.AddTable(supp);
  TableSpec ps;
  ps.name = "ps";
  ps.rows = 40;
  ColumnSpec m;
  m.name = "ps_p";
  m.kind = ColumnKind::kModKey;
  m.ref_table = "part";
  m.ref_column = "p_id";
  ColumnSpec dv;
  dv.name = "ps_s";
  dv.kind = ColumnKind::kDivKey;
  dv.ref_table = "supp";
  dv.ref_column = "s_id";
  dv.divisor = 10;
  ps.columns.push_back(m);
  ps.columns.push_back(dv);
  b.AddTable(ps);
  TableSpec line;
  line.name = "line";
  line.rows = 200;
  ColumnSpec f1;
  f1.name = "l_p";
  f1.kind = ColumnKind::kForeignKey;
  f1.ref_table = "ps";
  f1.ref_column = "ps_p";
  ColumnSpec f2;
  f2.name = "l_s";
  f2.kind = ColumnKind::kForeignKey;
  f2.ref_table = "ps";
  f2.ref_column = "ps_s";
  line.columns.push_back(f1);
  line.columns.push_back(f2);
  b.AddTable(line);
  b.AddRelationship({"line", {"l_p", "l_s"}, "ps", {"ps_p", "ps_s"},
                     JoinKind::kNToOne});
  Rng rng(4);
  BiCase c = b.Generate("t", rng);
  // (ps_p, ps_s) pairs must be unique; line tuples must be drawn from them.
  const Table& tps = c.tables[2];
  std::set<std::pair<int64_t, int64_t>> pairs;
  for (size_t r = 0; r < tps.num_rows(); ++r) {
    EXPECT_TRUE(pairs.emplace(tps.column(0).Int(r), tps.column(1).Int(r))
                    .second);
  }
  const Table& tl = c.tables[3];
  for (size_t r = 0; r < tl.num_rows(); ++r) {
    EXPECT_TRUE(pairs.count(
        {tl.column(0).Int(r), tl.column(1).Int(r)}));
  }
}

// --- BI-case generator invariants (property sweep over seeds/sizes).

struct GenParam {
  uint64_t seed;
  int tables;
};

class BiGeneratorPropertyTest
    : public ::testing::TestWithParam<GenParam> {};

TEST_P(BiGeneratorPropertyTest, StructuralInvariants) {
  Rng rng(GetParam().seed);
  BiGenOptions opt;
  opt.num_tables = GetParam().tables;
  BiCase c = GenerateBiCase(opt, rng);

  // Tables are valid and close to the requested count.
  EXPECT_NEAR(double(c.tables.size()), double(opt.num_tables), 2.0);
  for (const Table& t : c.tables) {
    EXPECT_TRUE(t.Validate());
    EXPECT_GT(t.num_columns(), 0u);
    EXPECT_GT(t.num_rows(), 0u);
  }

  // Ground-truth joins reference valid tables/columns, and N:1 joins have
  // high value containment (valid approximate INDs).
  auto profiles = ProfileTables(c.tables);
  for (const Join& j : c.ground_truth.joins) {
    ASSERT_GE(j.from.table, 0);
    ASSERT_LT(j.from.table, int(c.tables.size()));
    ASSERT_LT(j.to.table, int(c.tables.size()));
    for (int col : j.from.columns) {
      ASSERT_LT(col, int(c.tables[size_t(j.from.table)].num_columns()));
    }
    if (j.kind == JoinKind::kNToOne && j.from.columns.size() == 1) {
      const ColumnProfile& pf =
          profiles[size_t(j.from.table)].columns[size_t(j.from.columns[0])];
      const ColumnProfile& pt =
          profiles[size_t(j.to.table)].columns[size_t(j.to.columns[0])];
      EXPECT_GE(Containment(pf, pt), 0.85)
          << "dirty FK exceeded generator limits in case " << c.name;
      EXPECT_TRUE(pt.IsUnique());
    }
  }

  // FK-once holds in the ground truth: no source column set joins twice.
  std::set<std::pair<int, std::vector<int>>> sources;
  for (const Join& j : c.ground_truth.joins) {
    if (j.kind != JoinKind::kNToOne) continue;
    EXPECT_TRUE(sources.emplace(j.from.table, j.from.columns).second);
  }

  // Star/snowflake ground truths are 1-arborescences over joined tables;
  // constellations are k-arborescences (N:1 edges only).
  if (c.schema_type == SchemaType::kStar ||
      c.schema_type == SchemaType::kSnowflake) {
    std::vector<std::pair<int, int>> arcs;
    for (const Join& j : c.ground_truth.joins) {
      if (j.kind == JoinKind::kNToOne) {
        arcs.emplace_back(j.from.table, j.to.table);
      }
    }
    EXPECT_TRUE(IsKArborescence(int(c.tables.size()), arcs));
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndSizes, BiGeneratorPropertyTest,
    ::testing::Values(GenParam{1, 4}, GenParam{2, 5}, GenParam{3, 6},
                      GenParam{4, 8}, GenParam{5, 10}, GenParam{6, 12},
                      GenParam{7, 16}, GenParam{8, 21}, GenParam{9, 28},
                      GenParam{10, 7}, GenParam{11, 9}, GenParam{12, 14}));

// --- Corpus builders.

TEST(CorpusTest, BucketMapping) {
  EXPECT_EQ(BucketOfTableCount(3), -1);
  EXPECT_EQ(BucketOfTableCount(4), 0);
  EXPECT_EQ(BucketOfTableCount(10), 6);
  EXPECT_EQ(BucketOfTableCount(11), 7);
  EXPECT_EQ(BucketOfTableCount(15), 7);
  EXPECT_EQ(BucketOfTableCount(16), 8);
  EXPECT_EQ(BucketOfTableCount(20), 8);
  EXPECT_EQ(BucketOfTableCount(21), 9);
  EXPECT_EQ(BucketOfTableCount(88), 9);
}

TEST(CorpusTest, RealBenchmarkIsStratified) {
  CorpusOptions opt;
  opt.cases_per_bucket = 2;
  RealBenchmark bench = BuildRealBenchmark(opt);
  ASSERT_EQ(bench.cases.size(), size_t(2 * kNumBuckets));
  std::vector<int> counts(kNumBuckets, 0);
  for (size_t i = 0; i < bench.cases.size(); ++i) {
    int b = BucketOfTableCount(int(bench.cases[i].tables.size()));
    EXPECT_EQ(b, bench.bucket_of[i]);
    ++counts[size_t(b)];
  }
  for (int b = 0; b < kNumBuckets; ++b) EXPECT_EQ(counts[size_t(b)], 2);
}

TEST(CorpusTest, TrainingCorpusDeterministicPerSeed) {
  CorpusOptions opt;
  opt.training_cases = 5;
  auto a = BuildTrainingCorpus(opt);
  auto b = BuildTrainingCorpus(opt);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].tables.size(), b[i].tables.size());
  }
  opt.seed = 777;
  auto c = BuildTrainingCorpus(opt);
  EXPECT_NE(a[0].name, c[0].name);
}

TEST(CorpusTest, StatsComputation) {
  CorpusOptions opt;
  opt.training_cases = 6;
  auto corpus = BuildTrainingCorpus(opt);
  CorpusStats stats = ComputeCorpusStats(corpus);
  EXPECT_GT(stats.rows_avg, 0);
  EXPECT_GT(stats.tables_avg, 2);
  EXPECT_GE(stats.rows_p95, stats.rows_p50);
  EXPECT_GE(stats.edges_p90, stats.edges_p50);
}

// --- TPC generators.

TEST(TpcTest, TpcHShape) {
  Rng rng(1);
  BiCase c = GenerateTpcH(0.3, rng);
  EXPECT_EQ(c.tables.size(), 8u);
  EXPECT_EQ(c.ground_truth.joins.size(), 8u);
  // The composite lineitem->partsupp join is present.
  bool composite = false;
  for (const Join& j : c.ground_truth.joins) {
    if (j.from.columns.size() == 2) composite = true;
  }
  EXPECT_TRUE(composite);
  for (const Table& t : c.tables) EXPECT_TRUE(t.Validate());
}

TEST(TpcTest, TpcDsShape) {
  Rng rng(2);
  BiCase c = GenerateTpcDs(0.2, rng);
  EXPECT_EQ(c.tables.size(), 24u);
  EXPECT_NEAR(double(c.ground_truth.joins.size()), 107.0, 10.0);
  for (const Table& t : c.tables) EXPECT_TRUE(t.Validate());
}

TEST(TpcTest, TpcCShape) {
  Rng rng(3);
  BiCase c = GenerateTpcC(0.3, rng);
  EXPECT_EQ(c.tables.size(), 9u);
  EXPECT_EQ(c.ground_truth.joins.size(), 10u);
}

TEST(TpcTest, TpcEShape) {
  Rng rng(4);
  BiCase c = GenerateTpcE(0.2, rng);
  EXPECT_NEAR(double(c.tables.size()), 32.0, 2.0);
  EXPECT_NEAR(double(c.ground_truth.joins.size()), 45.0, 6.0);
}

TEST(TpcTest, GroundTruthFksAreContained) {
  Rng rng(5);
  for (BiCase c : {GenerateTpcH(0.2, rng), GenerateTpcC(0.2, rng)}) {
    auto profiles = ProfileTables(c.tables);
    for (const Join& j : c.ground_truth.joins) {
      if (j.from.columns.size() != 1) continue;
      const ColumnProfile& pf =
          profiles[size_t(j.from.table)].columns[size_t(j.from.columns[0])];
      const ColumnProfile& pt =
          profiles[size_t(j.to.table)].columns[size_t(j.to.columns[0])];
      EXPECT_GE(Containment(pf, pt), 0.99);
    }
  }
}

// --- Classic DBs.

TEST(ClassicDbsTest, AllEightVariantsGenerate) {
  Rng rng(6);
  for (ClassicDb db : {ClassicDb::kFoodMart, ClassicDb::kNorthwind,
                       ClassicDb::kAdventureWorks,
                       ClassicDb::kWorldWideImporters}) {
    for (bool olap : {true, false}) {
      BiCase c = GenerateClassicDb(db, olap, 0.3, rng);
      EXPECT_GE(c.tables.size(), 7u) << ClassicDbName(db);
      EXPECT_GE(c.ground_truth.joins.size(), 6u) << ClassicDbName(db);
      for (const Table& t : c.tables) EXPECT_TRUE(t.Validate());
    }
  }
}

}  // namespace
}  // namespace autobi
