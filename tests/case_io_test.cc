#include "core/case_io.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/rng.h"
#include "eval/metrics.h"
#include "synth/bi_generator.h"
#include "tests/test_util.h"

namespace autobi {
namespace {

std::string TempCaseDir(const char* name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(CaseIoTest, RoundTripsHandBuiltCase) {
  BiCase original;
  original.name = "mini case";
  original.schema_type = SchemaType::kStar;
  original.tables.push_back(MakeTable(
      "fact", {{"cust_id", {"1", "2", "1"}}, {"amt", {"5.5", "6.5", ""}}}));
  original.tables.push_back(MakeTable(
      "customers", {{"id", {"1", "2"}}, {"who", {"ann", "bob"}}}));
  original.ground_truth.joins.push_back(
      Join{ColumnRef{0, {0}}, ColumnRef{1, {0}}, JoinKind::kNToOne});

  std::string dir = TempCaseDir("roundtrip");
  Status saved = SaveCase(original, dir);
  ASSERT_TRUE(saved.ok()) << saved.ToString();

  StatusOr<BiCase> loaded = LoadCase(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const BiCase& c = loaded.value();
  EXPECT_EQ(c.name, "mini case");
  EXPECT_EQ(c.schema_type, SchemaType::kStar);
  ASSERT_EQ(c.tables.size(), 2u);
  EXPECT_EQ(c.tables[0].name(), "fact");
  EXPECT_EQ(c.tables[0].num_rows(), 3u);
  EXPECT_EQ(c.tables[0].column(0).Int(1), 2);
  EXPECT_TRUE(c.tables[0].column(1).IsNull(2));
  ASSERT_EQ(c.ground_truth.joins.size(), 1u);
  EXPECT_TRUE(c.ground_truth.joins[0] == original.ground_truth.joins[0]);
}

TEST(CaseIoTest, RoundTripsGeneratedCaseWithEquivalentEvaluation) {
  Rng rng(5150);
  BiGenOptions opt;
  opt.num_tables = 6;
  BiCase original = GenerateBiCase(opt, rng);
  std::string dir = TempCaseDir("generated");
  Status saved = SaveCase(original, dir);
  ASSERT_TRUE(saved.ok()) << saved.ToString();
  StatusOr<BiCase> loaded = LoadCase(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().tables.size(), original.tables.size());
  ASSERT_EQ(loaded.value().ground_truth.joins.size(),
            original.ground_truth.joins.size());
  // Evaluating the original ground truth as a "prediction" against the
  // loaded case must be perfect: same joins, same semantics.
  EdgeMetrics m = EvaluateCase(loaded.value(), original.ground_truth);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  // Row counts survive.
  for (size_t t = 0; t < original.tables.size(); ++t) {
    EXPECT_EQ(loaded.value().tables[t].num_rows(),
              original.tables[t].num_rows());
    EXPECT_EQ(loaded.value().tables[t].num_columns(),
              original.tables[t].num_columns());
  }
}

TEST(CaseIoTest, MissingDirectoryFails) {
  StatusOr<BiCase> loaded = LoadCase("/nonexistent/path");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInternal);
  EXPECT_FALSE(loaded.status().message().empty());
}

TEST(CaseIoTest, CorruptManifestFails) {
  std::string dir = TempCaseDir("corrupt");
  {
    std::ofstream m(dir + "/case.manifest");
    m << "not_a_manifest 9\n";
  }
  StatusOr<BiCase> loaded = LoadCase(dir);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidInput);
  EXPECT_NE(loaded.status().message().find("header"), std::string::npos);
}

TEST(CaseIoTest, JoinTableRangeValidated) {
  std::string dir = TempCaseDir("range");
  BiCase original;
  original.name = "r";
  original.tables.push_back(MakeTable("t", {{"a", {"1"}}}));
  Status saved = SaveCase(original, dir);
  ASSERT_TRUE(saved.ok()) << saved.ToString();
  // Rewrite manifest with a join that references a table out of range.
  {
    std::ofstream m(dir + "/case.manifest");
    m << "autobi_case 1\nname r\nschema_type other\ntables 1\nt\n"
      << "joins 1\nN:1 0 0 7 0\n";
  }
  StatusOr<BiCase> loaded = LoadCase(dir);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("out of range"),
            std::string::npos);
}

TEST(CaseIoTest, TraversalTableNameRejected) {
  std::string dir = TempCaseDir("traversal");
  {
    std::ofstream m(dir + "/case.manifest");
    m << "autobi_case 1\nname r\nschema_type other\ntables 1\n"
      << "../../etc/passwd\njoins 0\n";
  }
  StatusOr<BiCase> loaded = LoadCase(dir);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidInput);
}

TEST(CaseIoTest, AbsurdManifestCountRejected) {
  std::string dir = TempCaseDir("huge");
  {
    std::ofstream m(dir + "/case.manifest");
    m << "autobi_case 1\nname r\nschema_type other\ntables 99999999999\n";
  }
  StatusOr<BiCase> loaded = LoadCase(dir);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidInput);
}

}  // namespace
}  // namespace autobi
