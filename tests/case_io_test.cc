#include "core/case_io.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/rng.h"
#include "eval/metrics.h"
#include "synth/bi_generator.h"
#include "tests/test_util.h"

namespace autobi {
namespace {

std::string TempCaseDir(const char* name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(CaseIoTest, RoundTripsHandBuiltCase) {
  BiCase original;
  original.name = "mini case";
  original.schema_type = SchemaType::kStar;
  original.tables.push_back(MakeTable(
      "fact", {{"cust_id", {"1", "2", "1"}}, {"amt", {"5.5", "6.5", ""}}}));
  original.tables.push_back(MakeTable(
      "customers", {{"id", {"1", "2"}}, {"who", {"ann", "bob"}}}));
  original.ground_truth.joins.push_back(
      Join{ColumnRef{0, {0}}, ColumnRef{1, {0}}, JoinKind::kNToOne});

  std::string dir = TempCaseDir("roundtrip");
  std::string error;
  ASSERT_TRUE(SaveCase(original, dir, &error)) << error;

  BiCase loaded;
  ASSERT_TRUE(LoadCase(dir, &loaded, &error)) << error;
  EXPECT_EQ(loaded.name, "mini case");
  EXPECT_EQ(loaded.schema_type, SchemaType::kStar);
  ASSERT_EQ(loaded.tables.size(), 2u);
  EXPECT_EQ(loaded.tables[0].name(), "fact");
  EXPECT_EQ(loaded.tables[0].num_rows(), 3u);
  EXPECT_EQ(loaded.tables[0].column(0).Int(1), 2);
  EXPECT_TRUE(loaded.tables[0].column(1).IsNull(2));
  ASSERT_EQ(loaded.ground_truth.joins.size(), 1u);
  EXPECT_TRUE(loaded.ground_truth.joins[0] == original.ground_truth.joins[0]);
}

TEST(CaseIoTest, RoundTripsGeneratedCaseWithEquivalentEvaluation) {
  Rng rng(5150);
  BiGenOptions opt;
  opt.num_tables = 6;
  BiCase original = GenerateBiCase(opt, rng);
  std::string dir = TempCaseDir("generated");
  std::string error;
  ASSERT_TRUE(SaveCase(original, dir, &error)) << error;
  BiCase loaded;
  ASSERT_TRUE(LoadCase(dir, &loaded, &error)) << error;
  ASSERT_EQ(loaded.tables.size(), original.tables.size());
  ASSERT_EQ(loaded.ground_truth.joins.size(),
            original.ground_truth.joins.size());
  // Evaluating the original ground truth as a "prediction" against the
  // loaded case must be perfect: same joins, same semantics.
  EdgeMetrics m = EvaluateCase(loaded, original.ground_truth);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  // Row counts survive.
  for (size_t t = 0; t < original.tables.size(); ++t) {
    EXPECT_EQ(loaded.tables[t].num_rows(), original.tables[t].num_rows());
    EXPECT_EQ(loaded.tables[t].num_columns(),
              original.tables[t].num_columns());
  }
}

TEST(CaseIoTest, MissingDirectoryFails) {
  BiCase c;
  std::string error;
  EXPECT_FALSE(LoadCase("/nonexistent/path", &c, &error));
  EXPECT_FALSE(error.empty());
}

TEST(CaseIoTest, CorruptManifestFails) {
  std::string dir = TempCaseDir("corrupt");
  {
    std::ofstream m(dir + "/case.manifest");
    m << "not_a_manifest 9\n";
  }
  BiCase c;
  std::string error;
  EXPECT_FALSE(LoadCase(dir, &c, &error));
  EXPECT_NE(error.find("header"), std::string::npos);
}

TEST(CaseIoTest, JoinTableRangeValidated) {
  std::string dir = TempCaseDir("range");
  BiCase original;
  original.name = "r";
  original.tables.push_back(MakeTable("t", {{"a", {"1"}}}));
  std::string error;
  ASSERT_TRUE(SaveCase(original, dir, &error)) << error;
  // Append a join that references a table out of range.
  {
    std::ofstream m(dir + "/case.manifest", std::ios::app);
  }
  // Rewrite manifest with a bogus join.
  {
    std::ofstream m(dir + "/case.manifest");
    m << "autobi_case 1\nname r\nschema_type other\ntables 1\nt\n"
      << "joins 1\nN:1 0 0 7 0\n";
  }
  BiCase c;
  EXPECT_FALSE(LoadCase(dir, &c, &error));
  EXPECT_NE(error.find("out of range"), std::string::npos);
}

}  // namespace
}  // namespace autobi
