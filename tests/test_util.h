#ifndef AUTOBI_TESTS_TEST_UTIL_H_
#define AUTOBI_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "table/table.h"
#include "table/value.h"

namespace autobi {

// Builds a table from textual cells; per-column types are inferred the same
// way the CSV reader does. Empty cells become nulls.
inline Table MakeTable(
    const std::string& name,
    const std::vector<std::pair<std::string, std::vector<std::string>>>&
        columns) {
  Table t(name);
  for (const auto& [col_name, cells] : columns) {
    ValueType type = ValueType::kNull;
    for (const std::string& cell : cells) {
      type = UnifyValueTypes(type, InferValueType(cell));
    }
    if (type == ValueType::kNull) type = ValueType::kString;
    Column& col = t.AddColumn(col_name, type);
    for (const std::string& cell : cells) {
      col.AppendParsed(cell);
    }
  }
  return t;
}

// Sequential int cells "lo".."hi" as strings.
inline std::vector<std::string> SeqCells(int lo, int hi) {
  std::vector<std::string> out;
  for (int i = lo; i <= hi; ++i) out.push_back(std::to_string(i));
  return out;
}

}  // namespace autobi

#endif  // AUTOBI_TESTS_TEST_UTIL_H_
