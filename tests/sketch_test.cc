// Property tests for the hash-sketch profiling layer (profile/sketch.h):
// the sorted-merge Containment must equal the legacy string-map
// implementation on adversarial randomized columns (nulls, duplicates,
// escape-worthy values), the composite tuple-hash containment must equal a
// string-set oracle, and the blocking-screened DiscoverInds must return
// byte-identical IND and candidate lists on the synthetic REAL corpus with
// the screen on and off, at 1 and 8 threads.

#include "profile/sketch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "core/candidates.h"
#include "profile/column_profile.h"
#include "profile/ind.h"
#include "profile/ucc.h"
#include "synth/corpus.h"
#include "tests/test_util.h"

namespace autobi {
namespace {

// Values chosen to stress canonicalization: separator and escape characters,
// empty strings, numeric lookalikes, duplicates.
const char* kValuePool[] = {
    "a",      "b",    "a|b",   "a\\|b", "x\\y",  "p|q\\", "\\",
    "|",      "",     "dup",   "dup",   "3",     "3.0",   "-7",
    "0.5",    "id_1", "id_2",  "id_10", "Id_1",  " id",   "id ",
    "\\|\\|", "||",   "\\\\|", "cafe",  "Cafe'", "0",     "00",
};

Column RandomColumn(Rng* rng, size_t rows, double null_prob) {
  Column col("c", ValueType::kString);
  for (size_t r = 0; r < rows; ++r) {
    if (rng->NextBool(null_prob)) {
      col.AppendNull();
    } else {
      col.AppendString(kValuePool[rng->NextBelow(std::size(kValuePool))]);
    }
  }
  return col;
}

TEST(SketchTest, StableHashIsPureAndOrderFree) {
  EXPECT_EQ(StableHash64("abc"), StableHash64(std::string("abc")));
  EXPECT_NE(StableHash64("ab|c"), StableHash64("a|bc"));
  EXPECT_NE(StableHash64(""), StableHash64("\\"));
  // Monotone unit mapping.
  EXPECT_LT(HashToUnitInterval(1), HashToUnitInterval(uint64_t{1} << 60));
}

TEST(SketchTest, ProfileHashVectorsMirrorDistinctKeys) {
  Rng rng(7);
  Column col = RandomColumn(&rng, 200, 0.1);
  ColumnProfile p = ProfileColumn(col);
  ASSERT_EQ(p.distinct_hashes.size(), p.distinct_counts.size());
  ASSERT_EQ(p.distinct_offsets.size(), p.distinct_hashes.size() + 1);
  // No collisions among the pool values: vector size == exact distinct
  // count, counts sum to the non-null row count, hashes strictly increasing.
  EXPECT_EQ(p.distinct_hashes.size(), p.num_distinct);
  int64_t total = 0;
  for (int32_t c : p.distinct_counts) total += c;
  EXPECT_EQ(total, int64_t(p.non_null_count));
  for (size_t i = 1; i < p.distinct_hashes.size(); ++i) {
    EXPECT_LT(p.distinct_hashes[i - 1], p.distinct_hashes[i]);
  }
  // Every pooled distinct key hashes to its own slot.
  for (size_t i = 0; i < p.distinct_hashes.size(); ++i) {
    EXPECT_EQ(StableHash64(p.distinct_key(i)), p.distinct_hashes[i]);
  }
}

// The tentpole exactness contract: hash-merge containment == string-map
// containment, bit for bit, on randomized adversarial columns.
class ContainmentEquivalenceTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(ContainmentEquivalenceTest, HashMergeEqualsStringMap) {
  Rng rng(GetParam() * 2654435761ULL + 1);
  std::vector<ColumnProfile> profiles;
  for (int i = 0; i < 6; ++i) {
    size_t rows = 1 + rng.NextBelow(300);
    Column col = RandomColumn(&rng, rows, 0.15);
    profiles.push_back(ProfileColumn(col));
  }
  // Include an all-null and an empty column.
  Column empty("e", ValueType::kString);
  profiles.push_back(ProfileColumn(empty));
  Column nulls("n", ValueType::kString);
  for (int i = 0; i < 5; ++i) nulls.AppendNull();
  profiles.push_back(ProfileColumn(nulls));

  for (const ColumnProfile& a : profiles) {
    for (const ColumnProfile& b : profiles) {
      EXPECT_EQ(Containment(a, b), ContainmentViaStringMap(a, b));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContainmentEquivalenceTest,
                         ::testing::Range(uint64_t{1}, uint64_t{9}));

// String-set oracle for composite containment, written independently of the
// production TupleKey/TupleHash code.
double CompositeContainmentOracle(const Table& ta, const std::vector<int>& ca,
                                  const Table& tb,
                                  const std::vector<int>& cb) {
  auto tuple_of = [](const Table& t, const std::vector<int>& cols, size_t r,
                     std::string* out) {
    out->clear();
    std::string cell;
    for (int c : cols) {
      if (!t.column(size_t(c)).KeyAt(r, &cell)) return false;
      for (char ch : cell) {
        if (ch == '|' || ch == '\\') out->push_back('\\');
        out->push_back(ch);
      }
      out->push_back('|');
    }
    return true;
  };
  std::unordered_set<std::string> referenced;
  std::string key;
  for (size_t r = 0; r < tb.num_rows(); ++r) {
    if (tuple_of(tb, cb, r, &key)) referenced.insert(key);
  }
  size_t total = 0, hits = 0;
  for (size_t r = 0; r < ta.num_rows(); ++r) {
    if (!tuple_of(ta, ca, r, &key)) continue;
    ++total;
    if (referenced.count(key)) ++hits;
  }
  return total == 0 ? 0.0 : double(hits) / double(total);
}

TEST_P(ContainmentEquivalenceTest, CompositeHashEqualsStringOracle) {
  Rng rng(GetParam() * 40503 + 11);
  auto random_table = [&](const char* name) {
    Table t(name);
    for (int c = 0; c < 2; ++c) {
      Column& col = t.AddColumn(StrFormat("c%d", c), ValueType::kString);
      for (int r = 0; r < 60; ++r) {
        if (rng.NextBool(0.1)) {
          col.AppendNull();
        } else {
          col.AppendString(kValuePool[rng.NextBelow(std::size(kValuePool))]);
        }
      }
    }
    return t;
  };
  Table a = random_table("a");
  Table b = random_table("b");
  std::vector<int> cols = {0, 1};
  EXPECT_EQ(CompositeContainment(a, cols, b, cols),
            CompositeContainmentOracle(a, cols, b, cols));
  EXPECT_EQ(CompositeContainment(b, cols, a, cols),
            CompositeContainmentOracle(b, cols, a, cols));
  EXPECT_DOUBLE_EQ(CompositeContainment(a, cols, a, cols), 1.0);
}

TEST(SketchTest, KmvEstimateIsExactWhenSketchCoversColumns) {
  // Below k the estimate degenerates to the exact distinct containment.
  Table t = MakeTable("t", {{"x", SeqCells(1, 40)}, {"y", SeqCells(21, 60)}});
  ColumnProfile px = ProfileColumn(t.column(0));
  ColumnProfile py = ProfileColumn(t.column(1));
  KmvEstimate est = EstimateContainment(px.distinct_hashes,
                                        px.distinct_counts,
                                        py.distinct_hashes, 256);
  EXPECT_EQ(est.sample, 40u);
  EXPECT_DOUBLE_EQ(est.containment, 0.5);
}

TEST(SketchTest, BlockingSkipsDisjointHighCardinalityPair) {
  // Two large key-like string columns with disjoint domains: blocking must
  // prune both ordered pairs — no exact merges, no active table pairs —
  // without changing the (empty) result.
  std::vector<std::string> va, vb;
  for (int i = 0; i < 3000; ++i) {
    va.push_back(StrFormat("a%d", i));
    vb.push_back(StrFormat("b%d", i));
  }
  std::vector<Table> tables;
  tables.push_back(MakeTable("ta", {{"k", va}}));
  tables.push_back(MakeTable("tb", {{"k", vb}}));
  auto profiles = ProfileTables(tables);
  std::vector<std::vector<Ucc>> uccs(2);

  IndOptions blocked;
  IndStats s_on;
  auto on = DiscoverInds(tables, profiles, uccs, blocked, &s_on);
  EXPECT_TRUE(on.empty());
  EXPECT_EQ(s_on.unary_blocked, 2u);
  EXPECT_EQ(s_on.unary_exact_checks, 0u);
  EXPECT_EQ(s_on.blocking.table_pairs_active, 0u);
  EXPECT_EQ(s_on.blocking.column_pairs_pruned, 2u);
  EXPECT_EQ(s_on.pairs_scanned, 0u);

  IndOptions exhaustive;
  exhaustive.blocking.enabled = false;
  IndStats s_off;
  auto off = DiscoverInds(tables, profiles, uccs, exhaustive, &s_off);
  EXPECT_TRUE(off.empty());
  EXPECT_EQ(s_off.unary_blocked, 0u);
  EXPECT_EQ(s_off.unary_exact_checks, 2u);
  EXPECT_EQ(s_off.pairs_scanned, 2u);
}

TEST(SketchTest, BlockingKeepsContainedHighCardinalityPair) {
  // A true FK -> PK inclusion over a large domain must survive blocking.
  std::vector<std::string> pk, fk;
  for (int i = 0; i < 4000; ++i) pk.push_back(StrFormat("k%d", i));
  Rng rng(3);
  for (int i = 0; i < 4000; ++i) {
    fk.push_back(StrFormat("k%d", int(rng.NextBelow(4000))));
  }
  std::vector<Table> tables;
  tables.push_back(MakeTable("fact", {{"fk", fk}}));
  tables.push_back(MakeTable("dim", {{"pk", pk}}));
  auto profiles = ProfileTables(tables);
  std::vector<std::vector<Ucc>> uccs(2);
  IndStats stats;
  auto inds = DiscoverInds(tables, profiles, uccs, IndOptions{}, &stats);
  ASSERT_EQ(inds.size(), 1u);
  EXPECT_DOUBLE_EQ(inds[0].containment, 1.0);
}

// --- Mergeable profile sketches (MergeAppendedColumnProfile) ---------------

// Copies the first `rows` cells of a column (same name and type).
Column PrefixColumn(const Column& col, size_t rows) {
  Column out(col.name(), col.type());
  for (size_t r = 0; r < rows; ++r) {
    if (col.IsNull(r)) {
      out.AppendNull();
    } else if (col.type() == ValueType::kInt) {
      out.AppendInt(col.Int(r));
    } else if (col.type() == ValueType::kDouble) {
      out.AppendDouble(col.Double(r));
    } else {
      out.AppendString(col.Str(r));
    }
  }
  return out;
}

// Every ColumnProfile field, bitwise — the merge contract is bit-identity
// with a from-scratch profile, not approximation.
void ExpectMergedEqualsFromScratch(const ColumnProfile& merged,
                                   const ColumnProfile& scratch) {
  EXPECT_EQ(merged.type, scratch.type);
  EXPECT_EQ(merged.row_count, scratch.row_count);
  EXPECT_EQ(merged.non_null_count, scratch.non_null_count);
  EXPECT_EQ(merged.num_distinct, scratch.num_distinct);
  EXPECT_EQ(merged.distinct_hashes, scratch.distinct_hashes);
  EXPECT_EQ(merged.distinct_counts, scratch.distinct_counts);
  EXPECT_EQ(merged.distinct_pool, scratch.distinct_pool);
  EXPECT_EQ(merged.distinct_offsets, scratch.distinct_offsets);
  EXPECT_EQ(merged.distinct_ratio, scratch.distinct_ratio);
  EXPECT_EQ(merged.is_numeric, scratch.is_numeric);
  EXPECT_EQ(merged.min_value, scratch.min_value);
  EXPECT_EQ(merged.max_value, scratch.max_value);
  EXPECT_EQ(merged.sorted_numeric_sample, scratch.sorted_numeric_sample);
  EXPECT_EQ(merged.avg_value_length, scratch.avg_value_length);
  EXPECT_EQ(merged.key_bytes, scratch.key_bytes);
  EXPECT_EQ(merged.collision_hashes, scratch.collision_hashes);
  EXPECT_EQ(merged.collision_keys, scratch.collision_keys);
}

// old-profile ∪ appended-delta == from-scratch, on adversarial randomized
// columns (separator/escape values, nulls, duplicates) at every split point
// flavor: empty prefix, empty delta, and interior splits.
class MergeEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MergeEquivalenceTest, MergedProfileEqualsFromScratch) {
  Rng rng(GetParam() * 912839 + 7);
  size_t rows = 1 + rng.NextBelow(250);
  Column full = RandomColumn(&rng, rows, 0.15);
  ColumnProfile scratch = ProfileColumn(full);
  std::vector<size_t> splits = {0, rows, rows / 2, 1 + rng.NextBelow(rows)};
  for (size_t split : splits) {
    Column prefix = PrefixColumn(full, split);
    ColumnProfile old_profile = ProfileColumn(prefix);
    ColumnProfile merged = MergeAppendedColumnProfile(old_profile, full);
    ExpectMergedEqualsFromScratch(merged, scratch);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergeEquivalenceTest,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

TEST(SketchTest, MergeHandlesAllNullAndNumericColumns) {
  Column nulls("n", ValueType::kString);
  for (int i = 0; i < 8; ++i) nulls.AppendNull();
  ColumnProfile null_prefix = ProfileColumn(PrefixColumn(nulls, 3));
  ExpectMergedEqualsFromScratch(MergeAppendedColumnProfile(null_prefix, nulls),
                                ProfileColumn(nulls));

  Column ints("i", ValueType::kInt);
  for (int i = 0; i < 40; ++i) ints.AppendInt(i % 7);
  ColumnProfile int_prefix = ProfileColumn(PrefixColumn(ints, 25));
  ExpectMergedEqualsFromScratch(MergeAppendedColumnProfile(int_prefix, ints),
                                ProfileColumn(ints));

  Column dbl("d", ValueType::kDouble);
  for (int i = 0; i < 30; ++i) {
    if (i % 5 == 0) {
      dbl.AppendNull();
    } else {
      dbl.AppendDouble(i * 0.25);
    }
  }
  ColumnProfile dbl_prefix = ProfileColumn(PrefixColumn(dbl, 11));
  ExpectMergedEqualsFromScratch(MergeAppendedColumnProfile(dbl_prefix, dbl),
                                ProfileColumn(dbl));
}

TEST(SketchTest, MergeAppendedTableProfileMatchesProfileTable) {
  Rng rng(4242);
  Table full("t");
  for (int c = 0; c < 3; ++c) {
    Column& col = full.AddColumn(StrFormat("c%d", c), ValueType::kString);
    for (int r = 0; r < 120; ++r) {
      if (rng.NextBool(0.1)) {
        col.AppendNull();
      } else {
        col.AppendString(kValuePool[rng.NextBelow(std::size(kValuePool))]);
      }
    }
  }
  Table prefix("t");
  for (size_t c = 0; c < full.num_columns(); ++c) {
    const Column& src = full.column(c);
    Column& dst = prefix.AddColumn(src.name(), src.type());
    for (size_t r = 0; r < 70; ++r) {
      if (src.IsNull(r)) {
        dst.AppendNull();
      } else {
        dst.AppendString(src.Str(r));
      }
    }
  }
  TableProfile old_profile = ProfileTable(prefix);
  TableProfile merged = MergeAppendedTableProfile(old_profile, full);
  TableProfile scratch = ProfileTable(full);
  ASSERT_EQ(merged.columns.size(), scratch.columns.size());
  EXPECT_EQ(merged.row_count, scratch.row_count);
  for (size_t c = 0; c < merged.columns.size(); ++c) {
    ExpectMergedEqualsFromScratch(merged.columns[c], scratch.columns[c]);
  }
}

// --- Content-hash identities the schema diff depends on --------------------

TEST(SketchTest, PrefixHashEqualsHashOfTruncatedColumn) {
  Rng rng(77);
  Column full = RandomColumn(&rng, 90, 0.2);
  EXPECT_EQ(ColumnContentHashPrefix(full, full.size()),
            ColumnContentHash(full));
  for (size_t rows : {size_t{0}, size_t{1}, size_t{45}, size_t{89}}) {
    EXPECT_EQ(ColumnContentHashPrefix(full, rows),
              ColumnContentHash(PrefixColumn(full, rows)))
        << rows;
  }
}

TEST(SketchTest, CellsHashIgnoresNamesButNotCellsOrTypes) {
  Rng rng(78);
  Column a = RandomColumn(&rng, 60, 0.1);
  Column renamed("other_name", a.type());
  for (size_t r = 0; r < a.size(); ++r) {
    if (a.IsNull(r)) {
      renamed.AppendNull();
    } else {
      renamed.AppendString(a.Str(r));
    }
  }
  EXPECT_EQ(ColumnCellsHash(a), ColumnCellsHash(renamed));
  EXPECT_NE(ColumnContentHash(a), ColumnContentHash(renamed));

  Column ints("c", ValueType::kInt);
  ints.AppendInt(3);
  Column strs("c", ValueType::kString);
  strs.AppendString("3");
  EXPECT_NE(ColumnCellsHash(ints), ColumnCellsHash(strs));
}

// --- Corpus-level identity guards -----------------------------------------

std::string SerializeInds(const std::vector<Ind>& inds) {
  std::string out;
  for (const Ind& ind : inds) {
    out += StrFormat("%d:", ind.dependent.table);
    for (int c : ind.dependent.columns) out += StrFormat("%d,", c);
    out += StrFormat("<=%d:", ind.referenced.table);
    for (int c : ind.referenced.columns) out += StrFormat("%d,", c);
    out += StrFormat("@%.17g\n", ind.containment);
  }
  return out;
}

std::string SerializeCandidates(const std::vector<JoinCandidate>& cands) {
  std::string out;
  for (const JoinCandidate& c : cands) {
    out += StrFormat("%d:", c.src.table);
    for (int col : c.src.columns) out += StrFormat("%d,", col);
    out += StrFormat("->%d:", c.dst.table);
    for (int col : c.dst.columns) out += StrFormat("%d,", col);
    out += StrFormat("@%.17g/%.17g/%d\n", c.left_containment,
                     c.right_containment, c.one_to_one ? 1 : 0);
  }
  return out;
}

// On the synthetic corpus: (1) hash-merge containment equals the string-map
// reference on every cross-table column pair, and (2) the composite-probe
// budget is never hit (so the pair-wide budget-stop semantics cannot have
// changed any corpus result).
TEST(SketchCorpusTest, ContainmentMatchesReferenceOnTrainingCorpus) {
  CorpusOptions opt;
  opt.seed = 5150;
  opt.training_cases = 8;
  std::vector<BiCase> cases = BuildTrainingCorpus(opt);
  ASSERT_FALSE(cases.empty());
  for (const BiCase& bi_case : cases) {
    auto profiles = ProfileTables(bi_case.tables);
    for (size_t ti = 0; ti < profiles.size(); ++ti) {
      for (size_t tj = 0; tj < profiles.size(); ++tj) {
        if (ti == tj) continue;
        for (const ColumnProfile& pa : profiles[ti].columns) {
          for (const ColumnProfile& pb : profiles[tj].columns) {
            ASSERT_EQ(Containment(pa, pb), ContainmentViaStringMap(pa, pb))
                << bi_case.name;
          }
        }
      }
    }
    std::vector<std::vector<Ucc>> uccs;
    for (size_t i = 0; i < bi_case.tables.size(); ++i) {
      uccs.push_back(DiscoverUccs(bi_case.tables[i], profiles[i]));
    }
    IndStats stats;
    DiscoverInds(bi_case.tables, profiles, uccs, IndOptions{}, &stats);
    EXPECT_EQ(stats.composite_budget_truncations, 0u) << bi_case.name;
  }
}

// Blocking's default probe budgets must not change a single IND or
// candidate on the REAL corpus, at 1 and 8 threads (blocked results are
// additionally thread-count invariant by construction).
TEST(SketchCorpusTest, BlockingIdenticalIndsAndCandidatesOnRealCorpus) {
  CorpusOptions opt;
  opt.seed = 9091;
  opt.cases_per_bucket = 1;
  RealBenchmark real = BuildRealBenchmark(opt);
  ASSERT_FALSE(real.cases.empty());
  size_t screened_total = 0;
  for (const BiCase& bi_case : real.cases) {
    auto profiles = ProfileTables(bi_case.tables);
    std::vector<std::vector<Ucc>> uccs;
    for (size_t i = 0; i < bi_case.tables.size(); ++i) {
      uccs.push_back(DiscoverUccs(bi_case.tables[i], profiles[i]));
    }
    std::string reference;
    for (int threads : {1, 8}) {
      for (bool block : {false, true}) {
        IndOptions ind_opt;
        ind_opt.threads = threads;
        ind_opt.blocking.enabled = block;
        IndStats stats;
        std::string got =
            SerializeInds(DiscoverInds(bi_case.tables, profiles, uccs,
                                       ind_opt, &stats));
        if (reference.empty()) {
          reference = got;
        } else {
          EXPECT_EQ(reference, got)
              << bi_case.name << " threads=" << threads
              << " blocking=" << block;
        }
        if (block) screened_total += stats.unary_blocked;
      }
    }

    // Candidate sets (what downstream prediction consumes) are identical
    // too; identical candidates make every downstream stage a pure function
    // of identical input, so predicted join graphs cannot differ either.
    CandidateGenOptions gen_on;
    CandidateGenOptions gen_off;
    gen_off.ind.blocking.enabled = false;
    EXPECT_EQ(
        SerializeCandidates(GenerateCandidates(bi_case.tables, gen_on)
                                .candidates),
        SerializeCandidates(GenerateCandidates(bi_case.tables, gen_off)
                                .candidates))
        << bi_case.name;
  }
  // The corpus must actually exercise the screen somewhere, or this test
  // proves nothing.
  EXPECT_GT(screened_total, 0u);
}

}  // namespace
}  // namespace autobi
