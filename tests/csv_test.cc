#include "table/csv.h"

#include <gtest/gtest.h>

namespace autobi {
namespace {

TEST(CsvTest, ParsesHeaderAndTypedColumns) {
  Table t;
  std::string err;
  ASSERT_TRUE(ReadCsv("id,name,price\n1,apple,1.5\n2,pear,2.0\n", "fruits",
                      &t, &err))
      << err;
  EXPECT_EQ(t.name(), "fruits");
  ASSERT_EQ(t.num_columns(), 3u);
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.column(0).type(), ValueType::kInt);
  EXPECT_EQ(t.column(1).type(), ValueType::kString);
  EXPECT_EQ(t.column(2).type(), ValueType::kDouble);
  EXPECT_EQ(t.column(0).Int(1), 2);
  EXPECT_EQ(t.column(1).Str(0), "apple");
}

TEST(CsvTest, QuotedFieldsWithCommasQuotesAndNewlines) {
  Table t;
  std::string err;
  ASSERT_TRUE(ReadCsv(
      "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n\"line1\nline2\",plain\n", "t",
      &t, &err))
      << err;
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.column(0).Str(0), "x,y");
  EXPECT_EQ(t.column(1).Str(0), "he said \"hi\"");
  EXPECT_EQ(t.column(0).Str(1), "line1\nline2");
}

TEST(CsvTest, EmptyCellsBecomeNulls) {
  Table t;
  std::string err;
  ASSERT_TRUE(ReadCsv("a,b\n1,\n,2\n", "t", &t, &err)) << err;
  EXPECT_TRUE(t.column(1).IsNull(0));
  EXPECT_TRUE(t.column(0).IsNull(1));
  EXPECT_EQ(t.column(0).Int(0), 1);
}

TEST(CsvTest, MixedColumnDegradesToString) {
  Table t;
  std::string err;
  ASSERT_TRUE(ReadCsv("a\n1\nx\n", "t", &t, &err)) << err;
  EXPECT_EQ(t.column(0).type(), ValueType::kString);
  EXPECT_EQ(t.column(0).Str(0), "1");
}

TEST(CsvTest, CrLfTolerated) {
  Table t;
  std::string err;
  ASSERT_TRUE(ReadCsv("a,b\r\n1,2\r\n", "t", &t, &err)) << err;
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.column(1).Int(0), 2);
}

TEST(CsvTest, RaggedRowIsAnError) {
  Table t;
  std::string err;
  EXPECT_FALSE(ReadCsv("a,b\n1\n", "t", &t, &err));
  EXPECT_FALSE(err.empty());
}

TEST(CsvTest, UnterminatedQuoteIsAnError) {
  Table t;
  std::string err;
  EXPECT_FALSE(ReadCsv("a\n\"broken\n", "t", &t, &err));
}

TEST(CsvTest, EmptyInputIsAnError) {
  Table t;
  std::string err;
  EXPECT_FALSE(ReadCsv("", "t", &t, &err));
}

TEST(CsvTest, WriteReadRoundTrip) {
  Table t("rt");
  Column& a = t.AddColumn("num", ValueType::kInt);
  Column& b = t.AddColumn("txt", ValueType::kString);
  a.AppendInt(1);
  b.AppendString("with, comma");
  a.AppendNull();
  b.AppendString("with \"quote\"");
  std::string csv = WriteCsv(t);
  Table back;
  std::string err;
  ASSERT_TRUE(ReadCsv(csv, "rt", &back, &err)) << err;
  ASSERT_EQ(back.num_rows(), 2u);
  EXPECT_EQ(back.column(0).Int(0), 1);
  EXPECT_TRUE(back.column(0).IsNull(1));
  EXPECT_EQ(back.column(1).Str(0), "with, comma");
  EXPECT_EQ(back.column(1).Str(1), "with \"quote\"");
}

}  // namespace
}  // namespace autobi
