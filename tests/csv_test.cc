#include "table/csv.h"

#include <gtest/gtest.h>

namespace autobi {
namespace {

TEST(CsvTest, ParsesHeaderAndTypedColumns) {
  StatusOr<Table> parsed =
      ReadCsv("id,name,price\n1,apple,1.5\n2,pear,2.0\n", "fruits");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Table& t = parsed.value();
  EXPECT_EQ(t.name(), "fruits");
  ASSERT_EQ(t.num_columns(), 3u);
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.column(0).type(), ValueType::kInt);
  EXPECT_EQ(t.column(1).type(), ValueType::kString);
  EXPECT_EQ(t.column(2).type(), ValueType::kDouble);
  EXPECT_EQ(t.column(0).Int(1), 2);
  EXPECT_EQ(t.column(1).Str(0), "apple");
}

TEST(CsvTest, QuotedFieldsWithCommasQuotesAndNewlines) {
  StatusOr<Table> parsed = ReadCsv(
      "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n\"line1\nline2\",plain\n", "t");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Table& t = parsed.value();
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.column(0).Str(0), "x,y");
  EXPECT_EQ(t.column(1).Str(0), "he said \"hi\"");
  EXPECT_EQ(t.column(0).Str(1), "line1\nline2");
}

TEST(CsvTest, EmptyCellsBecomeNulls) {
  StatusOr<Table> parsed = ReadCsv("a,b\n1,\n,2\n", "t");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Table& t = parsed.value();
  EXPECT_TRUE(t.column(1).IsNull(0));
  EXPECT_TRUE(t.column(0).IsNull(1));
  EXPECT_EQ(t.column(0).Int(0), 1);
}

TEST(CsvTest, MixedColumnDegradesToString) {
  StatusOr<Table> parsed = ReadCsv("a\n1\nx\n", "t");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().column(0).type(), ValueType::kString);
  EXPECT_EQ(parsed.value().column(0).Str(0), "1");
}

TEST(CsvTest, CrLfTolerated) {
  StatusOr<Table> parsed = ReadCsv("a,b\r\n1,2\r\n", "t");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().num_rows(), 1u);
  EXPECT_EQ(parsed.value().column(1).Int(0), 2);
}

TEST(CsvTest, Utf8BomStripped) {
  CsvStats stats;
  StatusOr<Table> parsed =
      ReadCsv("\xEF\xBB\xBF""a,b\n1,2\n", "t", CsvOptions{}, &stats);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(stats.had_bom);
  EXPECT_EQ(parsed.value().column(0).name(), "a");
  EXPECT_EQ(parsed.value().column(0).Int(0), 1);
}

TEST(CsvTest, RaggedRowIsAnError) {
  StatusOr<Table> parsed = ReadCsv("a,b\n1\n", "t");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidInput);
  EXPECT_FALSE(parsed.status().message().empty());
}

TEST(CsvTest, LenientModePadsAndTruncatesRaggedRows) {
  CsvOptions opt;
  opt.lenient = true;
  CsvStats stats;
  StatusOr<Table> parsed = ReadCsv("a,b\n1\n1,2,3\n4,5\n", "t", opt, &stats);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Table& t = parsed.value();
  ASSERT_EQ(t.num_columns(), 2u);
  ASSERT_EQ(t.num_rows(), 3u);
  EXPECT_TRUE(t.column(1).IsNull(0));   // Short row padded with null.
  EXPECT_EQ(t.column(1).Int(1), 2);     // Long row kept its first two cells.
  EXPECT_EQ(stats.ragged_rows_padded, 1u);
  EXPECT_EQ(stats.ragged_rows_truncated, 1u);
  EXPECT_EQ(stats.Warnings(), 2u);
}

TEST(CsvTest, ByteCapRejectsOversizedInput) {
  CsvOptions opt;
  opt.max_bytes = 8;
  StatusOr<Table> parsed = ReadCsv("a,b\n1,2\n3,4\n", "t", opt);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kResourceExhausted);
}

TEST(CsvTest, UnterminatedQuoteIsAnError) {
  EXPECT_FALSE(ReadCsv("a\n\"broken\n", "t").ok());
}

TEST(CsvTest, EmptyInputIsAnError) {
  EXPECT_FALSE(ReadCsv("", "t").ok());
}

TEST(CsvTest, MissingFileIsInternalErrorWithPathContext) {
  StatusOr<Table> parsed = ReadCsvFile("/nonexistent/path/zzz.csv");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInternal);
  EXPECT_NE(parsed.status().message().find("zzz.csv"), std::string::npos);
}

TEST(CsvTest, WriteReadRoundTrip) {
  Table t("rt");
  Column& a = t.AddColumn("num", ValueType::kInt);
  Column& b = t.AddColumn("txt", ValueType::kString);
  a.AppendInt(1);
  b.AppendString("with, comma");
  a.AppendNull();
  b.AppendString("with \"quote\"");
  std::string csv = WriteCsv(t);
  StatusOr<Table> parsed = ReadCsv(csv, "rt");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Table& back = parsed.value();
  ASSERT_EQ(back.num_rows(), 2u);
  EXPECT_EQ(back.column(0).Int(0), 1);
  EXPECT_TRUE(back.column(0).IsNull(1));
  EXPECT_EQ(back.column(1).Str(0), "with, comma");
  EXPECT_EQ(back.column(1).Str(1), "with \"quote\"");
}

}  // namespace
}  // namespace autobi
