// Degenerate-input behaviour across the pipeline: single tables, empty
// columns, all-null data, empty graphs. The system must stay well-defined
// (no crashes, sensible empty outputs) on inputs real users will feed it.

#include <gtest/gtest.h>

#include "core/auto_bi.h"
#include "core/candidates.h"
#include "core/trainer.h"
#include "graph/ems.h"
#include "graph/kmca.h"
#include "graph/kmca_cc.h"
#include "tests/test_util.h"

namespace autobi {
namespace {

TEST(EdgeCaseTest, EmptyGraphSolves) {
  JoinGraph g(0);
  KmcaResult r = SolveKmca(g, DefaultPenaltyWeight());
  EXPECT_TRUE(r.feasible);
  EXPECT_TRUE(r.edge_ids.empty());
  KmcaResult cc = SolveKmcaCc(g);
  EXPECT_TRUE(cc.edge_ids.empty());
}

TEST(EdgeCaseTest, GraphWithoutEdges) {
  JoinGraph g(4);
  KmcaResult r = SolveKmca(g, DefaultPenaltyWeight());
  EXPECT_TRUE(r.edge_ids.empty());
  EXPECT_EQ(r.k, 4);
  EXPECT_TRUE(SolveEmsGreedy(g, {}).empty());
}

TEST(EdgeCaseTest, SingleVertexGraph) {
  JoinGraph g(1);
  KmcaResult r = SolveKmcaCc(g);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.k, 1);
}

TEST(EdgeCaseTest, CandidatesOnSingleTable) {
  std::vector<Table> tables;
  tables.push_back(MakeTable("only", {{"id", SeqCells(1, 5)}}));
  CandidateSet cs = GenerateCandidates(tables);
  EXPECT_TRUE(cs.candidates.empty());
}

TEST(EdgeCaseTest, CandidatesOnEmptyTableSet) {
  CandidateSet cs = GenerateCandidates({});
  EXPECT_TRUE(cs.candidates.empty());
  EXPECT_TRUE(cs.profiles.empty());
}

TEST(EdgeCaseTest, AllNullColumnsProduceNoCandidates) {
  std::vector<Table> tables;
  tables.push_back(MakeTable("a", {{"x", {"", "", ""}}}));
  tables.push_back(MakeTable("b", {{"y", {"", "", ""}}}));
  CandidateSet cs = GenerateCandidates(tables);
  EXPECT_TRUE(cs.candidates.empty());
}

TEST(EdgeCaseTest, PredictOnCandidatelessTables) {
  // Untrained model + disjoint tables: empty prediction, no crash.
  LocalModel model;
  AutoBi auto_bi(&model, AutoBiOptions{});
  std::vector<Table> tables;
  tables.push_back(MakeTable("a", {{"x", SeqCells(1, 5)}}));
  tables.push_back(MakeTable("b", {{"y", SeqCells(1000, 1005)}}));
  AutoBiResult r = auto_bi.Predict(tables);
  EXPECT_TRUE(r.model.joins.empty());
}

TEST(EdgeCaseTest, UntrainedModelScoresHalf) {
  LocalModel model;
  std::vector<Table> tables;
  tables.push_back(MakeTable("a", {{"x", {"1", "2", "2"}}}));
  tables.push_back(MakeTable("b", {{"x", {"1", "2"}}}));
  CandidateSet cs = GenerateCandidates(tables);
  ASSERT_FALSE(cs.candidates.empty());
  FeatureContext ctx{&tables, &cs.profiles, nullptr};
  EXPECT_DOUBLE_EQ(model.Score(ctx, cs.candidates[0], false), 0.5);
}

TEST(EdgeCaseTest, TrainerOnEmptyCorpus) {
  LocalModel model = TrainLocalModel({});
  EXPECT_FALSE(model.trained());
}

TEST(EdgeCaseTest, DuplicateColumnValuesStillKeyIfUniqueAfterNulls) {
  std::vector<Table> tables;
  tables.push_back(MakeTable("fact", {{"k", {"1", "1", "2"}}}));
  tables.push_back(MakeTable("dim", {{"k", {"1", "2", ""}}}));
  CandidateSet cs = GenerateCandidates(tables);
  bool found = false;
  for (const JoinCandidate& c : cs.candidates) {
    if (c.src.table == 0 && c.dst.table == 1) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(EdgeCaseTest, EmsWithEmptyBackbone) {
  JoinGraph g(3);
  g.AddEdge(0, 1, {0}, {0}, 0.9);
  g.AddEdge(1, 2, {0}, {0}, 0.9);
  std::vector<int> s = SolveEmsGreedy(g, {});
  EXPECT_EQ(s.size(), 2u);  // Both edges fit without cycles/conflicts.
}

TEST(EdgeCaseTest, KmcaCcBudgetExhaustionIsReported) {
  // A dense conflict graph with a tiny call budget must set the flag and
  // still return a feasible (if possibly suboptimal) answer.
  JoinGraph g(6);
  Rng rng(4);
  for (int i = 0; i < 18; ++i) {
    int u = int(rng.NextBelow(6));
    int v = int(rng.NextBelow(6));
    if (u == v) continue;
    g.AddEdge(u, v, {0}, {0}, rng.NextDouble(0.4, 0.9));  // One source col.
  }
  KmcaCcOptions opt;
  opt.max_one_mca_calls = 2;
  KmcaCcStats stats;
  KmcaResult r = SolveKmcaCc(g, opt, &stats);
  EXPECT_TRUE(stats.budget_exhausted || r.feasible);
}

}  // namespace
}  // namespace autobi
