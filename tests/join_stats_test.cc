#include "core/join_stats.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace autobi {
namespace {

TEST(JoinStatsTest, CleanNToOne) {
  std::vector<Table> tables;
  tables.push_back(MakeTable("fact", {{"k", {"1", "2", "2", "3"}}}));
  tables.push_back(MakeTable("dim", {{"k", {"1", "2", "3"}}}));
  Join join{ColumnRef{0, {0}}, ColumnRef{1, {0}}, JoinKind::kNToOne};
  JoinStats s = ComputeJoinStats(tables, join);
  EXPECT_EQ(s.left_rows, 4u);
  EXPECT_EQ(s.matched_rows, 4u);
  EXPECT_EQ(s.output_rows, 4u);
  EXPECT_EQ(s.max_fanout, 1u);
  EXPECT_EQ(s.left_distinct, 3u);
  EXPECT_EQ(s.right_distinct, 3u);
  EXPECT_DOUBLE_EQ(s.MatchRate(), 1.0);
  EXPECT_TRUE(s.LooksLikeCleanNToOne());
}

TEST(JoinStatsTest, DirtyJoinReportsUnmatched) {
  std::vector<Table> tables;
  tables.push_back(MakeTable("fact", {{"k", {"1", "9", "2", "9"}}}));
  tables.push_back(MakeTable("dim", {{"k", {"1", "2"}}}));
  Join join{ColumnRef{0, {0}}, ColumnRef{1, {0}}, JoinKind::kNToOne};
  JoinStats s = ComputeJoinStats(tables, join);
  EXPECT_EQ(s.matched_rows, 2u);
  EXPECT_DOUBLE_EQ(s.MatchRate(), 0.5);
  EXPECT_FALSE(s.LooksLikeCleanNToOne());
}

TEST(JoinStatsTest, FanOutDetectedWhenTargetNotUnique) {
  std::vector<Table> tables;
  tables.push_back(MakeTable("fact", {{"k", {"1", "2"}}}));
  tables.push_back(MakeTable("dim", {{"k", {"1", "1", "1", "2"}}}));
  Join join{ColumnRef{0, {0}}, ColumnRef{1, {0}}, JoinKind::kNToOne};
  JoinStats s = ComputeJoinStats(tables, join);
  EXPECT_EQ(s.max_fanout, 3u);
  EXPECT_EQ(s.output_rows, 4u);  // 3 + 1.
  EXPECT_FALSE(s.LooksLikeCleanNToOne());
}

TEST(JoinStatsTest, NullKeysSkipped) {
  std::vector<Table> tables;
  tables.push_back(MakeTable("fact", {{"k", {"1", "", "2"}}}));
  tables.push_back(MakeTable("dim", {{"k", {"1", "2", ""}}}));
  Join join{ColumnRef{0, {0}}, ColumnRef{1, {0}}, JoinKind::kNToOne};
  JoinStats s = ComputeJoinStats(tables, join);
  EXPECT_EQ(s.left_rows, 2u);
  EXPECT_EQ(s.right_distinct, 2u);
  EXPECT_EQ(s.matched_rows, 2u);
}

TEST(JoinStatsTest, CompositeKeyJoin) {
  std::vector<Table> tables;
  tables.push_back(MakeTable("fact", {{"a", {"1", "1", "2"}},
                                      {"b", {"7", "8", "7"}}}));
  tables.push_back(MakeTable("link", {{"a", {"1", "1", "2"}},
                                      {"b", {"7", "8", "8"}}}));
  Join join{ColumnRef{0, {0, 1}}, ColumnRef{1, {0, 1}}, JoinKind::kNToOne};
  JoinStats s = ComputeJoinStats(tables, join);
  // (1,7) and (1,8) match, (2,7) does not.
  EXPECT_EQ(s.matched_rows, 2u);
  EXPECT_EQ(s.left_distinct, 3u);
  EXPECT_EQ(s.right_distinct, 3u);
}

TEST(JoinStatsTest, ToStringMentionsCleanVerdict) {
  std::vector<Table> tables;
  tables.push_back(MakeTable("fact", {{"k", {"1", "2"}}}));
  tables.push_back(MakeTable("dim", {{"k", {"1", "2"}}}));
  Join join{ColumnRef{0, {0}}, ColumnRef{1, {0}}, JoinKind::kNToOne};
  std::string text = ComputeJoinStats(tables, join).ToString();
  EXPECT_NE(text.find("clean N:1"), std::string::npos);
  EXPECT_NE(text.find("matched=2"), std::string::npos);
}

}  // namespace
}  // namespace autobi
