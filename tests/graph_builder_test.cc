// Tests of Algorithm 1 (graph construction): candidates become edges with
// calibrated probabilities and -log weights; 1:1 candidates become
// bidirectional pairs.

#include "core/graph_builder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/trainer.h"
#include "tests/test_util.h"

namespace autobi {
namespace {

std::vector<Table> BuilderTables() {
  std::vector<Table> tables;
  tables.push_back(MakeTable(
      "fact", {{"cust_id", {"1", "2", "2", "3", "1", "3"}},
               {"v", {"1", "2", "3", "4", "5", "6"}}}));
  tables.push_back(MakeTable("customers", {{"id", {"1", "2", "3"}},
                                           {"who", {"a", "b", "c"}}}));
  tables.push_back(MakeTable("cust_info", {{"id", {"1", "2", "3"}},
                                           {"mail", {"x", "y", "z"}}}));
  return tables;
}

TEST(GraphBuilderTest, EdgesMirrorCandidates) {
  std::vector<Table> tables = BuilderTables();
  CandidateSet cands = GenerateCandidates(tables);
  LocalModel model;  // Untrained: every score is 0.5.
  JoinGraph graph = BuildJoinGraph(tables, cands, model, false);
  EXPECT_EQ(graph.num_vertices(), 3);
  // Each 1:1 candidate contributes 2 edges, each N:1 contributes 1.
  size_t expected = 0;
  for (const JoinCandidate& c : cands.candidates) {
    expected += c.one_to_one ? 2 : 1;
  }
  EXPECT_EQ(graph.num_edges(), expected);
}

TEST(GraphBuilderTest, WeightsAreNegLogOfScore) {
  std::vector<Table> tables = BuilderTables();
  CandidateSet cands = GenerateCandidates(tables);
  LocalModel model;
  JoinGraph graph = BuildJoinGraph(tables, cands, model, false);
  for (const JoinEdge& e : graph.edges()) {
    EXPECT_NEAR(e.weight, -std::log(e.probability), 1e-12);
    EXPECT_NEAR(e.probability, 0.5, 1e-9);  // Untrained fallback.
  }
}

TEST(GraphBuilderTest, OneToOneCandidatesBecomePairs) {
  std::vector<Table> tables = BuilderTables();
  CandidateSet cands = GenerateCandidates(tables);
  LocalModel model;
  JoinGraph graph = BuildJoinGraph(tables, cands, model, false);
  // customers <-> cust_info is 1:1-shaped; find its two orientations.
  int forward = -1, backward = -1;
  for (const JoinEdge& e : graph.edges()) {
    if (!e.one_to_one) continue;
    if (e.src == 1 && e.dst == 2) forward = e.id;
    if (e.src == 2 && e.dst == 1) backward = e.id;
  }
  ASSERT_GE(forward, 0);
  ASSERT_GE(backward, 0);
  EXPECT_EQ(graph.edge(forward).pair_id, graph.edge(backward).pair_id);
}

TEST(GraphBuilderTest, TimingReported) {
  std::vector<Table> tables = BuilderTables();
  CandidateSet cands = GenerateCandidates(tables);
  LocalModel model;
  double seconds = -1.0;
  BuildJoinGraph(tables, cands, model, false, &seconds);
  EXPECT_GE(seconds, 0.0);
}

TEST(GraphBuilderTest, SchemaOnlyScoresDifferFromFullOnceTrained) {
  // With a trained model, schema-only and full-feature scores come from
  // different classifiers.
  BiCase c;
  c.tables = BuilderTables();
  c.ground_truth.joins.push_back(
      Join{ColumnRef{0, {0}}, ColumnRef{1, {0}}, JoinKind::kNToOne});
  std::vector<BiCase> corpus(10, c);
  TrainerOptions opt;
  opt.forest.num_trees = 8;
  LocalModel model = TrainLocalModel(corpus, opt);
  CandidateSet cands = GenerateCandidates(c.tables);
  JoinGraph full = BuildJoinGraph(c.tables, cands, model, false);
  JoinGraph schema = BuildJoinGraph(c.tables, cands, model, true);
  ASSERT_EQ(full.num_edges(), schema.num_edges());
  bool any_diff = false;
  for (size_t i = 0; i < full.num_edges(); ++i) {
    if (std::fabs(full.edge(int(i)).probability -
                  schema.edge(int(i)).probability) > 1e-9) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

// --- Partitioned-solve units (PR 9) --------------------------------------

TEST(PartitionTest, ComponentsCoverAllVerticesOrderedBySmallest) {
  JoinGraph g(6);
  g.AddEdge(4, 5, {0}, {0}, 0.9);  // Component {4, 5}, edge 0.
  g.AddEdge(1, 2, {0}, {0}, 0.8);  // Component {1, 2}, edge 1.
  // Vertices 0 and 3 are edgeless singletons.
  std::vector<GraphComponent> comps = PartitionJoinGraph(g);
  ASSERT_EQ(comps.size(), 4u);
  EXPECT_EQ(comps[0].vertices, (std::vector<int>{0}));
  EXPECT_TRUE(comps[0].edge_ids.empty());
  EXPECT_EQ(comps[1].vertices, (std::vector<int>{1, 2}));
  EXPECT_EQ(comps[1].edge_ids, (std::vector<int>{1}));
  EXPECT_EQ(comps[2].vertices, (std::vector<int>{3}));
  EXPECT_EQ(comps[3].vertices, (std::vector<int>{4, 5}));
  EXPECT_EQ(comps[3].edge_ids, (std::vector<int>{0}));
}

TEST(PartitionTest, ComponentGraphRemapIsMonotoneAndExact) {
  JoinGraph g(5);
  // Component {1, 3, 4}: one composite N:1 edge plus a 1:1 pair.
  g.AddEdge(1, 3, {0, 1}, {0, 1}, 0.7);
  g.AddOneToOneEdge(3, 4, {2}, {0}, 0.6);
  g.AddEdge(0, 2, {0}, {0}, 0.5);  // The other component, {0, 2}.
  std::vector<GraphComponent> comps = PartitionJoinGraph(g);
  ASSERT_EQ(comps.size(), 2u);
  const GraphComponent& comp = comps[1];
  ASSERT_EQ(comp.vertices, (std::vector<int>{1, 3, 4}));

  JoinGraph local = BuildComponentGraph(g, comp);
  EXPECT_EQ(local.num_vertices(), 3);
  ASSERT_EQ(local.num_edges(), comp.edge_ids.size());
  auto rank = [&](int v) {
    return int(std::lower_bound(comp.vertices.begin(), comp.vertices.end(),
                                v) -
               comp.vertices.begin());
  };
  for (size_t k = 0; k < local.num_edges(); ++k) {
    const JoinEdge& le = local.edge(int(k));
    const JoinEdge& ge = g.edge(comp.edge_ids[k]);
    EXPECT_EQ(le.src, rank(ge.src));
    EXPECT_EQ(le.dst, rank(ge.dst));
    EXPECT_EQ(le.src_columns, ge.src_columns);
    EXPECT_EQ(le.dst_columns, ge.dst_columns);
    // Bit-identical carry-over: the per-component solve must see exactly the
    // numbers the flat solve would.
    EXPECT_EQ(le.probability, ge.probability);
    EXPECT_EQ(le.weight, ge.weight);
    EXPECT_EQ(le.one_to_one, ge.one_to_one);
    EXPECT_EQ(le.pair_id, ge.pair_id);
  }
}

TEST(PartitionTest, ConflictGroupsSurviveTheRemap) {
  JoinGraph g(4);
  // Two edges from the same (src, columns) — one FK-once conflict group —
  // landing in the same component.
  int a = g.AddEdge(0, 1, {0}, {0}, 0.9);
  int b = g.AddEdge(0, 2, {0}, {0}, 0.8);
  int c = g.AddEdge(0, 3, {1}, {0}, 0.7);  // Different columns: own group.
  ASSERT_EQ(g.edge(a).source_key, g.edge(b).source_key);
  ASSERT_NE(g.edge(a).source_key, g.edge(c).source_key);
  std::vector<GraphComponent> comps = PartitionJoinGraph(g);
  ASSERT_EQ(comps.size(), 1u);
  JoinGraph local = BuildComponentGraph(g, comps[0]);
  ASSERT_EQ(local.num_edges(), 3u);
  EXPECT_EQ(local.edge(0).source_key, local.edge(1).source_key);
  EXPECT_NE(local.edge(0).source_key, local.edge(2).source_key);
}

TEST(PartitionTest, EmptyAndSingleVertexGraphs) {
  JoinGraph empty(0);
  EXPECT_TRUE(PartitionJoinGraph(empty).empty());
  JoinGraph one(1);
  std::vector<GraphComponent> comps = PartitionJoinGraph(one);
  ASSERT_EQ(comps.size(), 1u);
  EXPECT_EQ(comps[0].vertices, (std::vector<int>{0}));
  EXPECT_TRUE(comps[0].edge_ids.empty());
}

}  // namespace
}  // namespace autobi
