// Tests of Algorithm 1 (graph construction): candidates become edges with
// calibrated probabilities and -log weights; 1:1 candidates become
// bidirectional pairs.

#include "core/graph_builder.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/trainer.h"
#include "tests/test_util.h"

namespace autobi {
namespace {

std::vector<Table> BuilderTables() {
  std::vector<Table> tables;
  tables.push_back(MakeTable(
      "fact", {{"cust_id", {"1", "2", "2", "3", "1", "3"}},
               {"v", {"1", "2", "3", "4", "5", "6"}}}));
  tables.push_back(MakeTable("customers", {{"id", {"1", "2", "3"}},
                                           {"who", {"a", "b", "c"}}}));
  tables.push_back(MakeTable("cust_info", {{"id", {"1", "2", "3"}},
                                           {"mail", {"x", "y", "z"}}}));
  return tables;
}

TEST(GraphBuilderTest, EdgesMirrorCandidates) {
  std::vector<Table> tables = BuilderTables();
  CandidateSet cands = GenerateCandidates(tables);
  LocalModel model;  // Untrained: every score is 0.5.
  JoinGraph graph = BuildJoinGraph(tables, cands, model, false);
  EXPECT_EQ(graph.num_vertices(), 3);
  // Each 1:1 candidate contributes 2 edges, each N:1 contributes 1.
  size_t expected = 0;
  for (const JoinCandidate& c : cands.candidates) {
    expected += c.one_to_one ? 2 : 1;
  }
  EXPECT_EQ(graph.num_edges(), expected);
}

TEST(GraphBuilderTest, WeightsAreNegLogOfScore) {
  std::vector<Table> tables = BuilderTables();
  CandidateSet cands = GenerateCandidates(tables);
  LocalModel model;
  JoinGraph graph = BuildJoinGraph(tables, cands, model, false);
  for (const JoinEdge& e : graph.edges()) {
    EXPECT_NEAR(e.weight, -std::log(e.probability), 1e-12);
    EXPECT_NEAR(e.probability, 0.5, 1e-9);  // Untrained fallback.
  }
}

TEST(GraphBuilderTest, OneToOneCandidatesBecomePairs) {
  std::vector<Table> tables = BuilderTables();
  CandidateSet cands = GenerateCandidates(tables);
  LocalModel model;
  JoinGraph graph = BuildJoinGraph(tables, cands, model, false);
  // customers <-> cust_info is 1:1-shaped; find its two orientations.
  int forward = -1, backward = -1;
  for (const JoinEdge& e : graph.edges()) {
    if (!e.one_to_one) continue;
    if (e.src == 1 && e.dst == 2) forward = e.id;
    if (e.src == 2 && e.dst == 1) backward = e.id;
  }
  ASSERT_GE(forward, 0);
  ASSERT_GE(backward, 0);
  EXPECT_EQ(graph.edge(forward).pair_id, graph.edge(backward).pair_id);
}

TEST(GraphBuilderTest, TimingReported) {
  std::vector<Table> tables = BuilderTables();
  CandidateSet cands = GenerateCandidates(tables);
  LocalModel model;
  double seconds = -1.0;
  BuildJoinGraph(tables, cands, model, false, &seconds);
  EXPECT_GE(seconds, 0.0);
}

TEST(GraphBuilderTest, SchemaOnlyScoresDifferFromFullOnceTrained) {
  // With a trained model, schema-only and full-feature scores come from
  // different classifiers.
  BiCase c;
  c.tables = BuilderTables();
  c.ground_truth.joins.push_back(
      Join{ColumnRef{0, {0}}, ColumnRef{1, {0}}, JoinKind::kNToOne});
  std::vector<BiCase> corpus(10, c);
  TrainerOptions opt;
  opt.forest.num_trees = 8;
  LocalModel model = TrainLocalModel(corpus, opt);
  CandidateSet cands = GenerateCandidates(c.tables);
  JoinGraph full = BuildJoinGraph(c.tables, cands, model, false);
  JoinGraph schema = BuildJoinGraph(c.tables, cands, model, true);
  ASSERT_EQ(full.num_edges(), schema.num_edges());
  bool any_diff = false;
  for (size_t i = 0; i < full.num_edges(); ++i) {
    if (std::fabs(full.edge(int(i)).probability -
                  schema.edge(int(i)).probability) > 1e-9) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace autobi
