#include "common/strings.h"

#include <gtest/gtest.h>

namespace autobi {
namespace {

TEST(ToLowerTest, Basic) {
  EXPECT_EQ(ToLower("Hello World"), "hello world");
  EXPECT_EQ(ToLower("ALL_CAPS_123"), "all_caps_123");
  EXPECT_EQ(ToLower(""), "");
}

TEST(TrimTest, RemovesWhitespaceBothEnds) {
  EXPECT_EQ(Trim("  abc  "), "abc");
  EXPECT_EQ(Trim("\tabc\n"), "abc");
  EXPECT_EQ(Trim("abc"), "abc");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(SplitTest, SplitsOnAnyDelimiter) {
  EXPECT_EQ(Split("a,b,c", ","), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,b;c", ",;"), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, DropsEmptyPieces) {
  EXPECT_EQ(Split(",,a,,b,,", ","), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(Split("", ",").empty());
  EXPECT_TRUE(Split(",,,", ",").empty());
}

TEST(JoinStringsTest, Basic) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({"solo"}, ","), "solo");
  EXPECT_EQ(JoinStrings({}, ","), "");
}

TEST(StartsEndsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foobar", "bar"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("foobar", "foo"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_FALSE(StartsWith("", "x"));
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(ParseInt64Test, ValidInputs) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt64("-7", &v));
  EXPECT_EQ(v, -7);
  EXPECT_TRUE(ParseInt64("  123  ", &v));
  EXPECT_EQ(v, 123);
  EXPECT_TRUE(ParseInt64("0", &v));
  EXPECT_EQ(v, 0);
}

TEST(ParseInt64Test, InvalidInputs) {
  int64_t v = 0;
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("abc", &v));
  EXPECT_FALSE(ParseInt64("12x", &v));
  EXPECT_FALSE(ParseInt64("1.5", &v));
  EXPECT_FALSE(ParseInt64("1 2", &v));
}

TEST(ParseDoubleTest, ValidInputs) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("3.5", &v));
  EXPECT_DOUBLE_EQ(v, 3.5);
  EXPECT_TRUE(ParseDouble("-2e3", &v));
  EXPECT_DOUBLE_EQ(v, -2000.0);
  EXPECT_TRUE(ParseDouble("7", &v));
  EXPECT_DOUBLE_EQ(v, 7.0);
}

TEST(ParseDoubleTest, InvalidInputs) {
  double v = 0;
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("x", &v));
  EXPECT_FALSE(ParseDouble("3.5y", &v));
}

}  // namespace
}  // namespace autobi
