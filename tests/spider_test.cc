#include "profile/spider.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "common/strings.h"
#include "tests/test_util.h"

namespace autobi {
namespace {

using Pair = std::pair<ColumnRef, ColumnRef>;

std::set<Pair> AsSet(const std::vector<SpiderInd>& inds) {
  std::set<Pair> out;
  for (const SpiderInd& ind : inds) {
    out.insert({ind.dependent, ind.referenced});
  }
  return out;
}

TEST(SpiderTest, FindsExactInclusion) {
  std::vector<Table> tables;
  tables.push_back(MakeTable("fk", {{"x", {"1", "2", "2"}}}));
  tables.push_back(MakeTable("pk", {{"y", {"1", "2", "3"}}}));
  std::set<Pair> inds = AsSet(DiscoverExactIndsSpider(tables));
  EXPECT_TRUE(inds.count({ColumnRef{0, {0}}, ColumnRef{1, {0}}}));
  EXPECT_FALSE(inds.count({ColumnRef{1, {0}}, ColumnRef{0, {0}}}));
}

TEST(SpiderTest, MutualInclusionBothDirections) {
  std::vector<Table> tables;
  tables.push_back(MakeTable("a", {{"x", {"1", "2"}}}));
  tables.push_back(MakeTable("b", {{"y", {"2", "1"}}}));
  std::set<Pair> inds = AsSet(DiscoverExactIndsSpider(tables));
  EXPECT_TRUE(inds.count({ColumnRef{0, {0}}, ColumnRef{1, {0}}}));
  EXPECT_TRUE(inds.count({ColumnRef{1, {0}}, ColumnRef{0, {0}}}));
}

TEST(SpiderTest, NearMissIsNotAnInd) {
  std::vector<Table> tables;
  tables.push_back(MakeTable("a", {{"x", {"1", "2", "99"}}}));
  tables.push_back(MakeTable("b", {{"y", {"1", "2", "3"}}}));
  EXPECT_TRUE(DiscoverExactIndsSpider(tables).empty());
}

TEST(SpiderTest, SameTablePairsExcluded) {
  std::vector<Table> tables;
  tables.push_back(MakeTable("t", {{"x", {"1", "2"}},
                                   {"y", {"1", "2", "3"}}}));
  EXPECT_TRUE(DiscoverExactIndsSpider(tables).empty());
}

TEST(SpiderTest, NullsIgnored) {
  std::vector<Table> tables;
  tables.push_back(MakeTable("a", {{"x", {"1", "", "2"}}}));
  tables.push_back(MakeTable("b", {{"y", {"1", "2"}}}));
  std::set<Pair> inds = AsSet(DiscoverExactIndsSpider(tables));
  EXPECT_TRUE(inds.count({ColumnRef{0, {0}}, ColumnRef{1, {0}}}));
}

TEST(SpiderTest, AllNullAndEmptyInput) {
  std::vector<Table> tables;
  tables.push_back(MakeTable("a", {{"x", {"", ""}}}));
  EXPECT_TRUE(DiscoverExactIndsSpider(tables).empty());
  EXPECT_TRUE(DiscoverExactIndsSpider({}).empty());
}

// Property: SPIDER's output matches a naive O(columns^2) set-containment
// reference on random tables.
class SpiderPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SpiderPropertyTest, MatchesNaiveReference) {
  Rng rng(GetParam() * 2654435761ULL);
  std::vector<Table> tables;
  for (int t = 0; t < 4; ++t) {
    std::vector<std::pair<std::string, std::vector<std::string>>> cols;
    size_t ncols = 1 + rng.NextBelow(3);
    for (size_t c = 0; c < ncols; ++c) {
      std::vector<std::string> cells;
      size_t rows = 3 + rng.NextBelow(15);
      for (size_t r = 0; r < rows; ++r) {
        cells.push_back(std::to_string(rng.NextBelow(12)));
      }
      cols.emplace_back(StrFormat("c%zu", c), cells);
    }
    tables.push_back(MakeTable(StrFormat("t%d", t), cols));
  }
  std::set<Pair> spider = AsSet(DiscoverExactIndsSpider(tables));

  // Naive reference over distinct-value sets.
  std::set<Pair> naive;
  auto distinct = [](const Column& col) {
    std::set<std::string> out;
    for (const std::string& k : col.Keys()) out.insert(k);
    return out;
  };
  for (size_t ti = 0; ti < tables.size(); ++ti) {
    for (size_t tj = 0; tj < tables.size(); ++tj) {
      if (ti == tj) continue;
      for (size_t a = 0; a < tables[ti].num_columns(); ++a) {
        std::set<std::string> da = distinct(tables[ti].column(a));
        if (da.empty()) continue;
        for (size_t b = 0; b < tables[tj].num_columns(); ++b) {
          std::set<std::string> db = distinct(tables[tj].column(b));
          if (std::includes(db.begin(), db.end(), da.begin(), da.end())) {
            naive.insert({ColumnRef{int(ti), {int(a)}},
                          ColumnRef{int(tj), {int(b)}}});
          }
        }
      }
    }
  }
  EXPECT_EQ(spider, naive);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpiderPropertyTest,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

}  // namespace
}  // namespace autobi
