#include "profile/ucc.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace autobi {
namespace {

TEST(IsUniqueCombinationTest, SingleColumn) {
  Table t = MakeTable("t", {{"u", {"1", "2", "3"}}, {"d", {"1", "1", "2"}}});
  EXPECT_TRUE(IsUniqueCombination(t, {0}));
  EXPECT_FALSE(IsUniqueCombination(t, {1}));
}

TEST(IsUniqueCombinationTest, CompositeUniqueness) {
  Table t = MakeTable("t", {{"a", {"1", "1", "2", "2"}},
                            {"b", {"1", "2", "1", "1"}}});
  EXPECT_FALSE(IsUniqueCombination(t, {0}));
  EXPECT_FALSE(IsUniqueCombination(t, {1}));
  EXPECT_FALSE(IsUniqueCombination(t, {0, 1}));  // (2,1) appears twice.
  Table u = MakeTable("u", {{"a", {"1", "1", "2", "2"}},
                            {"b", {"1", "2", "1", "2"}}});
  EXPECT_TRUE(IsUniqueCombination(u, {0, 1}));
}

TEST(IsUniqueCombinationTest, NullRowsSkipped) {
  Table t = MakeTable("t", {{"a", {"1", "", "", "2"}}});
  // Nulls are skipped, remaining values 1,2 are unique.
  EXPECT_TRUE(IsUniqueCombination(t, {0}));
}

TEST(IsUniqueCombinationTest, SeparatorValuesDoNotCollide) {
  // ("a|b","c") must differ from ("a","b|c") under tuple hashing.
  Table t = MakeTable("t", {{"x", {"a|b", "a"}}, {"y", {"c", "b|c"}}});
  EXPECT_TRUE(IsUniqueCombination(t, {0, 1}));
}

TEST(DiscoverUccsTest, FindsSingleColumnKeys) {
  Table t = MakeTable("t", {{"id", SeqCells(1, 10)},
                            {"code", SeqCells(100, 109)},
                            {"grp", {"1", "1", "1", "2", "2", "2", "3", "3",
                                     "3", "3"}}});
  TableProfile tp = ProfileTable(t);
  std::vector<Ucc> uccs = DiscoverUccs(t, tp);
  // id and code are keys; grp is not.
  ASSERT_EQ(uccs.size(), 2u);
  EXPECT_EQ(uccs[0].columns, (std::vector<int>{0}));
  EXPECT_EQ(uccs[1].columns, (std::vector<int>{1}));
}

TEST(DiscoverUccsTest, FindsMinimalCompositeKey) {
  Table t = MakeTable("t", {{"a", {"1", "1", "2", "2"}},
                            {"b", {"1", "2", "1", "2"}},
                            {"c", {"x", "x", "y", "y"}}});
  TableProfile tp = ProfileTable(t);
  std::vector<Ucc> uccs = DiscoverUccs(t, tp);
  // (a,b) is the only minimal UCC; (a,b,c) is non-minimal; (a,c),(b,c) are
  // not unique ((a,c) has (1,x),(1,x)... actually (1,x) repeats).
  bool found_ab = false;
  for (const Ucc& u : uccs) {
    EXPECT_LE(u.columns.size(), 2u);
    if (u.columns == std::vector<int>{0, 1}) found_ab = true;
  }
  EXPECT_TRUE(found_ab);
}

TEST(DiscoverUccsTest, MinimalityNoSupersetOfKey) {
  Table t = MakeTable("t", {{"id", SeqCells(1, 6)},
                            {"x", {"1", "1", "2", "2", "3", "3"}}});
  TableProfile tp = ProfileTable(t);
  std::vector<Ucc> uccs = DiscoverUccs(t, tp);
  for (const Ucc& u : uccs) {
    if (u.columns.size() > 1) {
      // No discovered composite may contain column 0 (already a key).
      EXPECT_EQ(std::find(u.columns.begin(), u.columns.end(), 0),
                u.columns.end());
    }
  }
}

TEST(DiscoverUccsTest, LowDistinctColumnsPruned) {
  // A constant column can never be part of a UCC at default options.
  Table t = MakeTable("t", {{"k", SeqCells(1, 40)},
                            {"c", std::vector<std::string>(40, "same")}});
  TableProfile tp = ProfileTable(t);
  std::vector<Ucc> uccs = DiscoverUccs(t, tp);
  ASSERT_EQ(uccs.size(), 1u);
  EXPECT_EQ(uccs[0].columns, (std::vector<int>{0}));
}

TEST(DiscoverUccsTest, EmptyTable) {
  Table t("empty");
  TableProfile tp = ProfileTable(t);
  EXPECT_TRUE(DiscoverUccs(t, tp).empty());
}

TEST(DiscoverUccsTest, RespectsArityCap) {
  // Key only emerges at arity 3; cap at 2 must not find it.
  Table t = MakeTable("t", {{"a", {"1", "1", "1", "1", "2", "2", "2", "2"}},
                            {"b", {"1", "1", "2", "2", "1", "1", "2", "2"}},
                            {"c", {"1", "2", "1", "2", "1", "2", "1", "2"}}});
  TableProfile tp = ProfileTable(t);
  UccOptions opt;
  opt.max_arity = 2;
  EXPECT_TRUE(DiscoverUccs(t, tp, opt).empty());
  opt.max_arity = 3;
  std::vector<Ucc> uccs = DiscoverUccs(t, tp, opt);
  ASSERT_EQ(uccs.size(), 1u);
  EXPECT_EQ(uccs[0].columns, (std::vector<int>{0, 1, 2}));
}

}  // namespace
}  // namespace autobi
