#include "profile/emd.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tests/test_util.h"

namespace autobi {
namespace {

TEST(NormalizedEmdTest, IdenticalDistributionsScoreZero) {
  std::vector<double> a = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(NormalizedEmd(a, a), 0.0);
}

TEST(NormalizedEmdTest, DisjointDistributionsScoreHigh) {
  std::vector<double> a = {0, 0.01, 0.02};
  std::vector<double> b = {0.98, 0.99, 1.0};
  EXPECT_GT(NormalizedEmd(a, b), 0.9);
}

TEST(NormalizedEmdTest, EmptyInputIsMaximal) {
  EXPECT_DOUBLE_EQ(NormalizedEmd({}, {1.0}), 1.0);
  EXPECT_DOUBLE_EQ(NormalizedEmd({1.0}, {}), 1.0);
}

TEST(NormalizedEmdTest, SinglePointDistributions) {
  EXPECT_DOUBLE_EQ(NormalizedEmd({5.0}, {5.0}), 0.0);
  EXPECT_DOUBLE_EQ(NormalizedEmd({0.0}, {1.0}), 1.0);
}

TEST(NormalizedEmdTest, SymmetricAndBounded) {
  Rng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> a, b;
    for (int i = 0; i < 30; ++i) a.push_back(rng.NextDouble(0, 10));
    for (int i = 0; i < 20; ++i) b.push_back(rng.NextDouble(3, 14));
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    double ab = NormalizedEmd(a, b);
    double ba = NormalizedEmd(b, a);
    EXPECT_NEAR(ab, ba, 1e-12);
    EXPECT_GE(ab, 0.0);
    EXPECT_LE(ab, 1.0);
  }
}

TEST(NormalizedEmdTest, SubsampleOfSameDistributionScoresLow) {
  // An FK that is a random sample of the PK domain should look "random"
  // (low EMD) — the MC-FK signal.
  Rng rng(23);
  std::vector<double> pk, fk;
  for (int i = 0; i < 500; ++i) pk.push_back(double(i));
  for (int i = 0; i < 300; ++i) fk.push_back(double(rng.NextBelow(500)));
  std::sort(fk.begin(), fk.end());
  EXPECT_LT(NormalizedEmd(pk, fk), 0.1);
}

TEST(EmdScoreTest, SameKeyDomainScoresLowerThanDifferent) {
  Table dim = MakeTable("dim", {{"id", SeqCells(1, 100)}});
  std::vector<std::string> fk_cells;
  Rng rng(5);
  for (int i = 0; i < 80; ++i) {
    fk_cells.push_back(std::to_string(1 + rng.NextBelow(100)));
  }
  Table fact = MakeTable("fact", {{"fk", fk_cells}});
  Table other = MakeTable("other", {{"id", SeqCells(5000, 5100)}});
  ColumnProfile p_dim = ProfileColumn(dim.column(0));
  ColumnProfile p_fk = ProfileColumn(fact.column(0));
  ColumnProfile p_other = ProfileColumn(other.column(0));
  EXPECT_LT(EmdScore(p_fk, p_dim), EmdScore(p_fk, p_other));
}

TEST(EmdScoreTest, EmptyColumnIsMaximal) {
  Table t = MakeTable("t", {{"a", {"", ""}}, {"b", {"1", "2"}}});
  ColumnProfile pa = ProfileColumn(t.column(0));
  ColumnProfile pb = ProfileColumn(t.column(1));
  EXPECT_DOUBLE_EQ(EmdScore(pa, pb), 1.0);
}

TEST(EmdScoreTest, StringColumnsUseHashedDistributions) {
  // Same string key domain -> low; different domains -> higher.
  Table a = MakeTable("a", {{"k", {"x1", "x2", "x3", "x4", "x5", "x6"}}});
  Table b = MakeTable("b", {{"k", {"x1", "x2", "x3", "x4", "x5", "x6"}}});
  Table c = MakeTable("c", {{"k", {"zz1", "zz2", "zz3", "zz4", "zz5",
                                   "zz6"}}});
  ColumnProfile pa = ProfileColumn(a.column(0));
  ColumnProfile pb = ProfileColumn(b.column(0));
  ColumnProfile pc = ProfileColumn(c.column(0));
  EXPECT_DOUBLE_EQ(EmdScore(pa, pb), 0.0);
  EXPECT_GT(EmdScore(pa, pc), 0.0);
}

}  // namespace
}  // namespace autobi
