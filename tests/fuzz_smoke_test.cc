#include <gtest/gtest.h>

#include <cstdlib>

#include "fuzz/fuzzer.h"

namespace autobi {
namespace {

#ifndef AUTOBI_CORPUS_DIR
#define AUTOBI_CORPUS_DIR ""
#endif

// Bounded fuzz campaign run as part of the default ctest suite (label
// fuzz_smoke): replays the checked-in corpus, then cross-checks the solver
// stack against the brute-force oracles on >= 500 fresh random cases. Small
// enough to stay under a few seconds even under sanitizers.
TEST(FuzzSmoke, DifferentialCampaignIsCleanOnHealthySolvers) {
  FuzzOptions opt;
  opt.seed = 20260806;
  opt.cases = 600;
  opt.max_edges = 12;
  opt.corpus_dir = AUTOBI_CORPUS_DIR;
  opt.write_repros = false;  // The source tree is not a scratch directory.
  FuzzReport r = RunFuzz(opt);

  EXPECT_EQ(r.mismatches, 0) << FormatFuzzReport(r);
  EXPECT_GE(r.differential_cases, 500);
  EXPECT_GT(r.arc_cases, 0);
  EXPECT_GT(r.metamorphic_cases, 0);
  EXPECT_GE(r.corpus_replayed, 10) << "checked-in corpus missing from "
                                   << AUTOBI_CORPUS_DIR;
}

// A different seed exercises a disjoint case stream; cheap insurance against
// the smoke seed happening to dodge a regression.
TEST(FuzzSmoke, SecondSeedIsAlsoClean) {
  FuzzOptions opt;
  opt.seed = 7;
  opt.cases = 250;
  opt.max_edges = 10;
  opt.write_repros = false;
  FuzzReport r = RunFuzz(opt);
  EXPECT_EQ(r.mismatches, 0) << FormatFuzzReport(r);
}

// Long campaign (label: slow). Opt in with AUTOBI_FUZZ_SLOW=1, e.g. for a
// pre-release soak; ctest skips it by default.
TEST(FuzzSlow, ExtendedCampaign) {
  if (std::getenv("AUTOBI_FUZZ_SLOW") == nullptr) {
    GTEST_SKIP() << "set AUTOBI_FUZZ_SLOW=1 to run the extended campaign";
  }
  FuzzOptions opt;
  opt.seed = 1;
  opt.cases = 20000;
  opt.max_edges = 18;
  opt.corpus_dir = AUTOBI_CORPUS_DIR;
  opt.write_repros = false;
  opt.time_budget_sec = 300.0;
  FuzzReport r = RunFuzz(opt);
  EXPECT_EQ(r.mismatches, 0) << FormatFuzzReport(r);
}

}  // namespace
}  // namespace autobi
