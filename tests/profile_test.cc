#include "profile/column_profile.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace autobi {
namespace {

TEST(ColumnProfileTest, BasicStatistics) {
  Table t = MakeTable("t", {{"c", {"1", "2", "2", "", "5"}}});
  ColumnProfile p = ProfileColumn(t.column(0));
  EXPECT_EQ(p.row_count, 5u);
  EXPECT_EQ(p.non_null_count, 4u);
  EXPECT_EQ(p.num_distinct, 3u);
  EXPECT_DOUBLE_EQ(p.distinct_ratio, 3.0 / 4.0);
  EXPECT_TRUE(p.is_numeric);
  EXPECT_DOUBLE_EQ(p.min_value, 1.0);
  EXPECT_DOUBLE_EQ(p.max_value, 5.0);
  EXPECT_FALSE(p.IsUnique());
}

TEST(ColumnProfileTest, UniqueColumnDetected) {
  Table t = MakeTable("t", {{"c", SeqCells(1, 50)}});
  ColumnProfile p = ProfileColumn(t.column(0));
  EXPECT_TRUE(p.IsUnique());
  EXPECT_DOUBLE_EQ(p.distinct_ratio, 1.0);
}

TEST(ColumnProfileTest, StringColumnNotNumeric) {
  Table t = MakeTable("t", {{"c", {"x", "y", "x"}}});
  ColumnProfile p = ProfileColumn(t.column(0));
  EXPECT_FALSE(p.is_numeric);
  EXPECT_EQ(p.num_distinct, 2u);
  EXPECT_DOUBLE_EQ(p.avg_value_length, 1.0);
}

TEST(ColumnProfileTest, NumericSampleIsSortedAndBounded) {
  std::vector<std::string> cells;
  for (int i = 2000; i > 0; --i) cells.push_back(std::to_string(i));
  Table t = MakeTable("t", {{"c", cells}});
  ColumnProfile p = ProfileColumn(t.column(0), /*max_sample=*/128);
  EXPECT_LE(p.sorted_numeric_sample.size(), 128u);
  EXPECT_TRUE(std::is_sorted(p.sorted_numeric_sample.begin(),
                             p.sorted_numeric_sample.end()));
}

TEST(ColumnProfileTest, AllNullColumn) {
  Table t = MakeTable("t", {{"c", {"", "", ""}}});
  ColumnProfile p = ProfileColumn(t.column(0));
  EXPECT_EQ(p.non_null_count, 0u);
  EXPECT_FALSE(p.IsUnique());
  EXPECT_DOUBLE_EQ(p.distinct_ratio, 0.0);
}

TEST(ContainmentTest, DirectionalFraction) {
  Table t = MakeTable("t", {{"a", {"1", "2", "3"}},
                            {"b", {"2", "3", "4"}},
                            {"c", {"1", "2", "3"}}});
  TableProfile tp = ProfileTable(t);
  EXPECT_NEAR(Containment(tp.columns[0], tp.columns[1]), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(Containment(tp.columns[0], tp.columns[2]), 1.0);
  // Empty dependent side -> 0.
  Table e = MakeTable("e", {{"x", {"", ""}}});
  ColumnProfile pe = ProfileColumn(e.column(0));
  EXPECT_DOUBLE_EQ(Containment(pe, tp.columns[0]), 0.0);
}

TEST(ContainmentTest, CrossTypeIntVsStringDigits) {
  Table a = MakeTable("a", {{"k", {"1", "2"}}});
  Table b = MakeTable("b", {{"k", {"1", "2", "x"}}});  // Mixed -> string.
  ColumnProfile pa = ProfileColumn(a.column(0));
  ColumnProfile pb = ProfileColumn(b.column(0));
  EXPECT_EQ(b.column(0).type(), ValueType::kString);
  EXPECT_DOUBLE_EQ(Containment(pa, pb), 1.0);
}

TEST(ProfileTablesTest, ProfilesEveryTable) {
  std::vector<Table> tables;
  tables.push_back(MakeTable("a", {{"x", SeqCells(1, 3)}}));
  tables.push_back(MakeTable("b", {{"y", SeqCells(1, 5)}}));
  auto profiles = ProfileTables(tables);
  ASSERT_EQ(profiles.size(), 2u);
  EXPECT_EQ(profiles[0].row_count, 3u);
  EXPECT_EQ(profiles[1].row_count, 5u);
}

}  // namespace
}  // namespace autobi
