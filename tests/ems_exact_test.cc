// Tests of the exact EMS solver and the greedy-vs-exact comparison that
// backs the paper's Section 4.3.3 claim ("different solutions have very
// similar results", so greedy suffices).

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/ems.h"
#include "graph/join_graph.h"
#include "graph/kmca_cc.h"
#include "graph/validate.h"

namespace autobi {
namespace {

TEST(EmsExactTest, MatchesGreedyOnSimpleCase) {
  JoinGraph g(4);
  int backbone = g.AddEdge(0, 1, {0}, {0}, 0.9);
  g.AddEdge(2, 1, {0}, {0}, 0.8);
  g.AddEdge(3, 1, {0}, {0}, 0.7);
  auto greedy = SolveEmsGreedy(g, {backbone});
  auto exact = SolveEmsExact(g, {backbone});
  EXPECT_EQ(greedy.size(), exact.size());
}

TEST(EmsExactTest, BeatsGreedyOnAdversarialConflict) {
  // One high-probability edge conflicts (same source column) with TWO other
  // edges that are jointly feasible: greedy takes the single one, exact
  // takes the pair.
  JoinGraph g(5);
  // Greedy grabs 0->1 (0.9, source col {0} of table 0) first...
  g.AddEdge(0, 1, {0}, {0}, 0.9);
  // ...which blocks these two same-source edges... wait, FK-once is keyed on
  // the source column set, so give the competing pair distinct sources that
  // each conflict with nothing except the first edge's source.
  // Construct instead with cycles: adding 0->1 makes both 1->2 and 2->0
  // impossible? No — use FK-once: edges from (0,{0}) to different targets.
  int a = g.AddEdge(0, 2, {0}, {0}, 0.8);   // Conflicts with the 0.9 edge.
  int b = g.AddEdge(0, 3, {1}, {0}, 0.55);  // Independent.
  (void)a;
  (void)b;
  auto greedy = SolveEmsGreedy(g, {});
  auto exact = SolveEmsExact(g, {});
  // Max cardinality here is 2 either way (one of the conflicting pair plus
  // the independent edge) — exact must achieve it, greedy does too.
  EXPECT_EQ(exact.size(), 2u);
  EXPECT_EQ(greedy.size(), 2u);
}

TEST(EmsExactTest, ExactIsNeverSmallerThanGreedy) {
  Rng rng(1234);
  for (int trial = 0; trial < 30; ++trial) {
    int n = 3 + int(rng.NextBelow(4));
    JoinGraph g(n);
    size_t m = 4 + rng.NextBelow(8);
    for (size_t i = 0; i < m; ++i) {
      int u = int(rng.NextBelow(size_t(n)));
      int v = int(rng.NextBelow(size_t(n)));
      if (u == v) continue;
      g.AddEdge(u, v, {int(rng.NextBelow(2))}, {0},
                rng.NextDouble(0.3, 0.95));
    }
    KmcaResult backbone = SolveKmcaCc(g);
    auto greedy = SolveEmsGreedy(g, backbone.edge_ids);
    auto exact = SolveEmsExact(g, backbone.edge_ids);
    EXPECT_GE(exact.size(), greedy.size());
    // The paper's observation: the greedy solution is near-optimal.
    EXPECT_LE(exact.size() - greedy.size(), 1u);
  }
}

TEST(EmsExactTest, ExactSolutionIsFeasible) {
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    int n = 4;
    JoinGraph g(n);
    for (int i = 0; i < 8; ++i) {
      int u = int(rng.NextBelow(size_t(n)));
      int v = int(rng.NextBelow(size_t(n)));
      if (u == v) continue;
      g.AddEdge(u, v, {int(rng.NextBelow(2))}, {0},
                rng.NextDouble(0.5, 0.95));
    }
    KmcaResult backbone = SolveKmcaCc(g);
    auto exact = SolveEmsExact(g, backbone.edge_ids);
    // Re-verify the constraints on the union.
    std::set<int> keys;
    std::vector<std::pair<int, int>> arcs;
    for (int id : backbone.edge_ids) {
      EXPECT_TRUE(keys.insert(g.edge(id).source_key).second);
      arcs.emplace_back(g.edge(id).src, g.edge(id).dst);
    }
    for (int id : exact) {
      EXPECT_TRUE(keys.insert(g.edge(id).source_key).second);
      arcs.emplace_back(g.edge(id).src, g.edge(id).dst);
    }
    EXPECT_FALSE(HasDirectedCycle(n, arcs));
  }
}

TEST(EmsExactTest, RespectsTau) {
  JoinGraph g(3);
  g.AddEdge(0, 1, {0}, {0}, 0.6);
  g.AddEdge(0, 2, {1}, {0}, 0.4);
  EmsOptions opt;
  opt.tau = 0.5;
  EXPECT_EQ(SolveEmsExact(g, {}, opt).size(), 1u);
  opt.tau = 0.3;
  EXPECT_EQ(SolveEmsExact(g, {}, opt).size(), 2u);
}

}  // namespace
}  // namespace autobi
