#include "core/model_export.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include "common/fs.h"
#include "tests/test_util.h"

namespace autobi {
namespace {

// Unwraps an export expected to succeed.
std::string MustExport(StatusOr<std::string> result) {
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? std::move(result).value() : std::string();
}

struct ExportFixture {
  std::vector<Table> tables;
  BiModel model;
  ExportFixture() {
    tables.push_back(MakeTable("fact", {{"cust_id", {"1"}}}));
    tables.push_back(MakeTable("customers", {{"id", {"1"}}}));
    tables.push_back(MakeTable("cust_details", {{"id", {"1"}}}));
    model.joins.push_back(
        Join{ColumnRef{0, {0}}, ColumnRef{1, {0}}, JoinKind::kNToOne});
    model.joins.push_back(
        Join{ColumnRef{1, {0}}, ColumnRef{2, {0}}, JoinKind::kOneToOne}
            .Normalized());
  }
};

TEST(ExportDotTest, ContainsNodesAndEdges) {
  ExportFixture f;
  std::string dot = MustExport(ExportDot(f.tables, f.model));
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("\"fact\""), std::string::npos);
  EXPECT_NE(dot.find("\"customers\""), std::string::npos);
  EXPECT_NE(dot.find("\"fact\" -> \"customers\""), std::string::npos);
  // 1:1 edges render dashed & bidirectional.
  EXPECT_NE(dot.find("dir=both"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
}

TEST(ExportDotTest, EscapesQuotesInNames) {
  std::vector<Table> tables;
  tables.push_back(MakeTable("we\"ird", {{"a", {"1"}}}));
  tables.push_back(MakeTable("other", {{"a", {"1"}}}));
  BiModel model;
  model.joins.push_back(
      Join{ColumnRef{0, {0}}, ColumnRef{1, {0}}, JoinKind::kNToOne});
  std::string dot = MustExport(ExportDot(tables, model));
  EXPECT_NE(dot.find("we\\\"ird"), std::string::npos);
}

TEST(ExportSqlTest, EmitsForeignKeys) {
  ExportFixture f;
  std::string sql = MustExport(ExportSqlDdl(f.tables, f.model));
  EXPECT_NE(sql.find("ALTER TABLE \"fact\" ADD FOREIGN KEY (cust_id) "
                     "REFERENCES \"customers\" (id);"),
            std::string::npos);
  // 1:1 joins become comments.
  EXPECT_NE(sql.find("-- 1:1 relationship"), std::string::npos);
}

TEST(ExportJsonTest, WellFormedStructure) {
  ExportFixture f;
  std::string json = MustExport(ExportJson(f.tables, f.model));
  EXPECT_NE(json.find("\"tables\": [\"fact\", \"customers\", "
                      "\"cust_details\"]"),
            std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"N:1\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"1:1\""), std::string::npos);
  // Exactly one comma between the two join objects (valid JSON list).
  EXPECT_NE(json.find("\"},"), std::string::npos);
}

TEST(ExportTest, EmptyModel) {
  std::vector<Table> tables;
  tables.push_back(MakeTable("lonely", {{"a", {"1"}}}));
  BiModel empty;
  EXPECT_NE(MustExport(ExportDot(tables, empty)).find("\"lonely\""),
            std::string::npos);
  EXPECT_EQ(MustExport(ExportSqlDdl(tables, empty)), "");
  EXPECT_NE(MustExport(ExportJson(tables, empty)).find("\"joins\": [\n  ]"),
            std::string::npos);
}

TEST(ExportTest, ExportToFileWritesAtomicallyAndValidatesFormat) {
  ExportFixture f;
  std::string dir = ::testing::TempDir();
  std::string path = dir + "/autobi_export_test.json";
  ASSERT_TRUE(ExportToFile(f.tables, f.model, "json", path).ok());
  StatusOr<std::string> back = ReadFileToString(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, MustExport(ExportJson(f.tables, f.model)));
  // The temp file used for the atomic rename must not linger.
  EXPECT_FALSE(ReadFileToString(path + ".tmp").ok());

  Status bad = ExportToFile(f.tables, f.model, "yaml", path);
  EXPECT_EQ(bad.code(), StatusCode::kInvalidInput);
  ::unlink(path.c_str());
}

TEST(ExportTest, OutOfRangeJoinRejectedNotDereferenced) {
  // A model whose join points at table 7 of a 1-table set must produce
  // kInvalidInput from every exporter, never an out-of-bounds access.
  std::vector<Table> tables;
  tables.push_back(MakeTable("only", {{"a", {"1"}}}));
  BiModel bad;
  bad.joins.push_back(
      Join{ColumnRef{0, {0}}, ColumnRef{7, {0}}, JoinKind::kNToOne});
  EXPECT_EQ(ExportDot(tables, bad).status().code(),
            StatusCode::kInvalidInput);
  EXPECT_EQ(ExportSqlDdl(tables, bad).status().code(),
            StatusCode::kInvalidInput);
  EXPECT_EQ(ExportJson(tables, bad).status().code(),
            StatusCode::kInvalidInput);
}

}  // namespace
}  // namespace autobi
