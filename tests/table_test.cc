#include "table/table.h"

#include <gtest/gtest.h>

#include <cmath>

#include "table/value.h"

namespace autobi {
namespace {

// --- ValueType inference.

TEST(InferValueTypeTest, Basic) {
  EXPECT_EQ(InferValueType("42"), ValueType::kInt);
  EXPECT_EQ(InferValueType("-17"), ValueType::kInt);
  EXPECT_EQ(InferValueType("3.14"), ValueType::kDouble);
  EXPECT_EQ(InferValueType("2e5"), ValueType::kDouble);
  EXPECT_EQ(InferValueType("abc"), ValueType::kString);
  EXPECT_EQ(InferValueType("12ab"), ValueType::kString);
  EXPECT_EQ(InferValueType(""), ValueType::kNull);
  EXPECT_EQ(InferValueType("   "), ValueType::kNull);
}

TEST(UnifyValueTypesTest, NullIsIdentity) {
  EXPECT_EQ(UnifyValueTypes(ValueType::kNull, ValueType::kInt),
            ValueType::kInt);
  EXPECT_EQ(UnifyValueTypes(ValueType::kString, ValueType::kNull),
            ValueType::kString);
}

TEST(UnifyValueTypesTest, IntWidensToDouble) {
  EXPECT_EQ(UnifyValueTypes(ValueType::kInt, ValueType::kDouble),
            ValueType::kDouble);
  EXPECT_EQ(UnifyValueTypes(ValueType::kDouble, ValueType::kInt),
            ValueType::kDouble);
}

TEST(UnifyValueTypesTest, MixedDegradesToString) {
  EXPECT_EQ(UnifyValueTypes(ValueType::kInt, ValueType::kString),
            ValueType::kString);
  EXPECT_EQ(UnifyValueTypes(ValueType::kDouble, ValueType::kString),
            ValueType::kString);
}

// --- Column.

TEST(ColumnTest, IntColumnRoundTrip) {
  Column col("c", ValueType::kInt);
  col.AppendInt(5);
  col.AppendNull();
  col.AppendInt(-3);
  ASSERT_EQ(col.size(), 3u);
  EXPECT_EQ(col.Int(0), 5);
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_EQ(col.Int(2), -3);
  EXPECT_EQ(col.num_non_null(), 2u);
  EXPECT_EQ(col.num_null(), 1u);
}

TEST(ColumnTest, NullsBeforeFirstTypedAppendAreBackfilled) {
  Column col("c");
  col.AppendNull();
  col.AppendNull();
  col.AppendString("x");
  ASSERT_EQ(col.size(), 3u);
  EXPECT_TRUE(col.IsNull(0));
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_EQ(col.Str(2), "x");
}

TEST(ColumnTest, KeyAtCanonicalizesIntAndIntegralDouble) {
  Column ints("a", ValueType::kInt);
  ints.AppendInt(3);
  Column doubles("b", ValueType::kDouble);
  doubles.AppendDouble(3.0);
  std::string ka, kb;
  ASSERT_TRUE(ints.KeyAt(0, &ka));
  ASSERT_TRUE(doubles.KeyAt(0, &kb));
  EXPECT_EQ(ka, kb);  // Cross-type joins line up.
}

TEST(ColumnTest, KeyAtReturnsFalseForNull) {
  Column col("c", ValueType::kInt);
  col.AppendNull();
  std::string key;
  EXPECT_FALSE(col.KeyAt(0, &key));
}

TEST(ColumnTest, KeysSkipsNulls) {
  Column col("c", ValueType::kString);
  col.AppendString("a");
  col.AppendNull();
  col.AppendString("b");
  EXPECT_EQ(col.Keys(), (std::vector<std::string>{"a", "b"}));
}

TEST(ColumnTest, AsDoubleNumericAndNan) {
  Column col("c", ValueType::kInt);
  col.AppendInt(7);
  col.AppendNull();
  EXPECT_DOUBLE_EQ(col.AsDouble(0), 7.0);
  EXPECT_TRUE(std::isnan(col.AsDouble(1)));
  Column s("s", ValueType::kString);
  s.AppendString("x");
  EXPECT_TRUE(std::isnan(s.AsDouble(0)));
}

TEST(ColumnTest, AppendParsedHonorsColumnType) {
  Column col("c", ValueType::kInt);
  col.AppendParsed("12");
  col.AppendParsed("oops");  // Unparseable numeric -> null.
  col.AppendParsed("");
  ASSERT_EQ(col.size(), 3u);
  EXPECT_EQ(col.Int(0), 12);
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_TRUE(col.IsNull(2));
}

// --- Table.

TEST(TableTest, AddAndLookupColumns) {
  Table t("orders");
  t.AddColumn("id", ValueType::kInt);
  t.AddColumn("name", ValueType::kString);
  EXPECT_EQ(t.num_columns(), 2u);
  EXPECT_EQ(t.ColumnIndex("name"), 1);
  EXPECT_EQ(t.ColumnIndex("missing"), -1);
}

TEST(TableTest, ValidateDetectsRaggedColumns) {
  Table t("t");
  t.AddColumn("a", ValueType::kInt).AppendInt(1);
  t.AddColumn("b", ValueType::kInt);
  EXPECT_FALSE(t.Validate());
  t.column(1).AppendInt(2);
  EXPECT_TRUE(t.Validate());
}

TEST(TableTest, NumRowsComesFromFirstColumn) {
  Table t("t");
  EXPECT_EQ(t.num_rows(), 0u);
  Column& c = t.AddColumn("a", ValueType::kInt);
  c.AppendInt(1);
  c.AppendInt(2);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(ColumnRefTest, OrderingAndToString) {
  ColumnRef a{0, {1}};
  ColumnRef b{0, {2}};
  ColumnRef c{1, {0}};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (ColumnRef{0, {1}}));

  Table t("orders");
  t.AddColumn("id", ValueType::kInt);
  t.AddColumn("cust", ValueType::kInt);
  std::vector<Table> tables;
  tables.push_back(std::move(t));
  EXPECT_EQ(ColumnRefToString(tables, ColumnRef{0, {0, 1}}),
            "orders(id,cust)");
}

}  // namespace
}  // namespace autobi
