// Trainer-option matrix: calibration methods, split/transitivity toggles,
// and the training-report contract.

#include <gtest/gtest.h>

#include "core/auto_bi.h"
#include "core/trainer.h"
#include "synth/corpus.h"

namespace autobi {
namespace {

std::vector<BiCase> SmallCorpus(uint64_t seed = 321) {
  CorpusOptions opt;
  opt.seed = seed;
  opt.training_cases = 30;
  return BuildTrainingCorpus(opt);
}

TEST(TrainerOptionsTest, PlattAndIsotonicBothProduceCalibratedModels) {
  std::vector<BiCase> corpus = SmallCorpus();
  for (CalibrationMethod method :
       {CalibrationMethod::kPlatt, CalibrationMethod::kIsotonic}) {
    TrainerOptions opt;
    opt.calibration = method;
    opt.forest.num_trees = 16;
    TrainerReport report;
    LocalModel model = TrainLocalModel(corpus, opt, &report);
    EXPECT_TRUE(model.trained());
    EXPECT_EQ(model.calibration(), method);
    EXPECT_GT(report.n1_auc, 0.8);
    EXPECT_LT(report.n1_calibration_error, 0.25);
  }
}

TEST(TrainerOptionsTest, NoCalibrationStillScoresInUnitInterval) {
  TrainerOptions opt;
  opt.calibration = CalibrationMethod::kNone;
  opt.forest.num_trees = 12;
  LocalModel model = TrainLocalModel(SmallCorpus(), opt);
  BiCase probe = SmallCorpus(999)[0];
  CandidateSet cands = GenerateCandidates(probe.tables);
  FeatureContext ctx{&probe.tables, &cands.profiles, &model.frequency()};
  for (const JoinCandidate& c : cands.candidates) {
    double p = model.Score(ctx, c, false);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(TrainerOptionsTest, SplitToggleRoutesOneToOneCandidates) {
  TrainerOptions split_opt;
  split_opt.forest.num_trees = 12;
  TrainerOptions merged_opt = split_opt;
  merged_opt.split_one_to_one = false;
  TrainerReport split_report, merged_report;
  LocalModel split_model =
      TrainLocalModel(SmallCorpus(), split_opt, &split_report);
  LocalModel merged_model =
      TrainLocalModel(SmallCorpus(), merged_opt, &merged_report);
  EXPECT_TRUE(split_model.split_one_to_one());
  EXPECT_FALSE(merged_model.split_one_to_one());
  // Without the split, 1:1 candidates feed the N:1 dataset.
  EXPECT_EQ(merged_report.one_examples, 0u);
  EXPECT_GT(merged_report.n1_examples, split_report.n1_examples);
}

TEST(TrainerOptionsTest, TransitivityAddsPositiveLabels) {
  TrainerOptions with;
  with.forest.num_trees = 8;
  TrainerOptions without = with;
  without.label_transitivity = false;
  TrainerReport with_report, without_report;
  TrainLocalModel(SmallCorpus(), with, &with_report);
  TrainLocalModel(SmallCorpus(), without, &without_report);
  EXPECT_GE(with_report.n1_positives, without_report.n1_positives);
}

TEST(TrainerOptionsTest, ReportCountsConsistent) {
  TrainerOptions opt;
  opt.forest.num_trees = 8;
  TrainerReport report;
  std::vector<BiCase> corpus = SmallCorpus();
  TrainLocalModel(corpus, opt, &report);
  EXPECT_EQ(report.num_cases, corpus.size());
  EXPECT_GE(report.n1_examples, report.n1_positives);
  EXPECT_GE(report.one_examples, report.one_positives);
  EXPECT_GT(report.n1_examples, 0u);
}

TEST(TrainerOptionsTest, SeedControlsDeterminism) {
  TrainerOptions opt;
  opt.forest.num_trees = 8;
  std::vector<BiCase> corpus = SmallCorpus();
  LocalModel a = TrainLocalModel(corpus, opt);
  LocalModel b = TrainLocalModel(corpus, opt);
  BiCase probe = SmallCorpus(999)[0];
  CandidateSet cands = GenerateCandidates(probe.tables);
  FeatureContext ctx_a{&probe.tables, &cands.profiles, &a.frequency()};
  FeatureContext ctx_b{&probe.tables, &cands.profiles, &b.frequency()};
  for (const JoinCandidate& c : cands.candidates) {
    EXPECT_DOUBLE_EQ(a.Score(ctx_a, c, false), b.Score(ctx_b, c, false));
  }
}

}  // namespace
}  // namespace autobi
