// Unit tests for the baseline predictors on small hand-built cases (the
// integration suite covers them on generated benchmarks).

#include <gtest/gtest.h>

#include "baselines/fk_baselines.h"
#include "baselines/ml_fk.h"
#include "core/candidates.h"
#include "eval/metrics.h"
#include "tests/test_util.h"

namespace autobi {
namespace {

// A clean 3-table star: fact(cust_id, prod_id) -> customers, products.
BiCase CleanStar() {
  BiCase c;
  c.name = "clean_star";
  c.tables.push_back(MakeTable(
      "fact_sales",
      {{"cust_id", {"1", "2", "3", "1", "2", "3", "1", "2"}},
       {"prod_id", {"1", "2", "1", "2", "1", "2", "1", "2"}},
       {"amount", {"5", "6", "7", "8", "9", "10", "11", "12"}}}));
  c.tables.push_back(MakeTable("customers",
                               {{"cust_id", {"1", "2", "3"}},
                                {"cust_name", {"a", "b", "c"}}}));
  c.tables.push_back(MakeTable("products",
                               {{"prod_id", {"1", "2"}},
                                {"prod_name", {"x", "y"}}}));
  c.ground_truth.joins.push_back(
      Join{ColumnRef{0, {0}}, ColumnRef{1, {0}}, JoinKind::kNToOne});
  c.ground_truth.joins.push_back(
      Join{ColumnRef{0, {1}}, ColumnRef{2, {0}}, JoinKind::kNToOne});
  return c;
}

TEST(SystemXTest, PerfectOnExactNameStar) {
  BiCase c = CleanStar();
  SystemX sx;
  BiModel pred = sx.Predict(c.tables, nullptr);
  EdgeMetrics m = EvaluateCase(c, pred);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
}

TEST(SystemXTest, SilentWhenNamesDiffer) {
  BiCase c = CleanStar();
  // Rename the FK so no exact/augmented match exists.
  c.tables[0].column(0).set_name("buyer_ref");
  SystemX sx;
  BiModel pred = sx.Predict(c.tables, nullptr);
  for (const Join& j : pred.joins) {
    EXPECT_FALSE(j.from == (ColumnRef{0, {0}}));
  }
}

TEST(FastFkTest, ConnectsAllTablesOnCleanCase) {
  BiCase c = CleanStar();
  FastFk fk;
  BiModel pred = fk.Predict(c.tables, nullptr);
  EdgeMetrics m = EvaluateCase(c, pred);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
}

TEST(McFkTest, FindsCleanJoins) {
  BiCase c = CleanStar();
  McFk fk;
  BiModel pred = fk.Predict(c.tables, nullptr);
  EXPECT_GE(EvaluateCase(c, pred).recall, 0.5);
}

TEST(HoPfTest, RespectsStructuralConstraints) {
  BiCase c = CleanStar();
  HoPf fk;
  BiModel pred = fk.Predict(c.tables, nullptr);
  // FK-once: at most one join per source column.
  std::set<std::pair<int, std::vector<int>>> sources;
  for (const Join& j : pred.joins) {
    EXPECT_TRUE(sources.emplace(j.from.table, j.from.columns).second);
  }
}

TEST(NamePriorTest, SchemaOnlyPredictionNeedsNoData) {
  BiCase c = CleanStar();
  // Erase all rows: NamePrior must still produce the name-matching joins.
  for (Table& t : c.tables) {
    Table empty(t.name());
    for (size_t col = 0; col < t.num_columns(); ++col) {
      empty.AddColumn(t.column(col).name(), t.column(col).type());
    }
    t = std::move(empty);
  }
  NamePrior prior;
  BiModel pred = prior.Predict(c.tables, nullptr);
  EXPECT_FALSE(pred.joins.empty());
}

TEST(BaselineTimingTest, BreakdownStagesPopulated) {
  BiCase c = CleanStar();
  AutoBiTiming timing;
  FastFk fk;
  fk.Predict(c.tables, &timing);
  EXPECT_GE(timing.ucc, 0.0);
  EXPECT_GE(timing.ind, 0.0);
  EXPECT_GE(timing.Total(), 0.0);
}

// --- ML-FK (Rostin-style).

TEST(MlFkModelTest, FeatureVectorMatchesNames) {
  BiCase c = CleanStar();
  CandidateSet cands = GenerateCandidates(c.tables);
  ASSERT_FALSE(cands.candidates.empty());
  FeatureContext ctx{&c.tables, &cands.profiles, nullptr};
  EXPECT_EQ(MlFkModel::Featurize(ctx, cands.candidates[0]).size(),
            MlFkModel::FeatureNames().size());
}

TEST(MlFkModelTest, TrainsAndSeparatesCleanCase) {
  std::vector<BiCase> corpus;
  for (int i = 0; i < 10; ++i) corpus.push_back(CleanStar());
  MlFkModel model;
  model.Train(corpus);
  ASSERT_TRUE(model.trained());
  BiCase c = CleanStar();
  MlFkRostin predictor(&model);
  BiModel pred = predictor.Predict(c.tables, nullptr);
  EXPECT_GE(EvaluateCase(c, pred).recall, 0.5);
}

TEST(MlFkModelTest, UntrainedScoresZero) {
  MlFkModel model;
  EXPECT_FALSE(model.trained());
  BiCase c = CleanStar();
  MlFkRostin predictor(&model);
  BiModel pred = predictor.Predict(c.tables, nullptr);
  EXPECT_TRUE(pred.joins.empty());
}

TEST(MlFkModelTest, SerializationRoundTrip) {
  std::vector<BiCase> corpus;
  for (int i = 0; i < 10; ++i) corpus.push_back(CleanStar());
  MlFkModel model;
  model.Train(corpus);
  std::string path = ::testing::TempDir() + "/mlfk.txt";
  ASSERT_TRUE(model.SaveToFile(path));
  MlFkModel loaded;
  ASSERT_TRUE(loaded.LoadFromFile(path));
  BiCase c = CleanStar();
  CandidateSet cands = GenerateCandidates(c.tables);
  FeatureContext ctx{&c.tables, &cands.profiles, nullptr};
  for (const JoinCandidate& cand : cands.candidates) {
    EXPECT_NEAR(model.Score(ctx, cand), loaded.Score(ctx, cand), 1e-9);
  }
}

}  // namespace
}  // namespace autobi
