#include <gtest/gtest.h>

#include "core/explain.h"
#include "core/schema_summary.h"
#include "core/trainer.h"
#include "tests/test_util.h"

namespace autobi {
namespace {

// --- Schema summarization.

BiModel StarModel() {
  // fact(0) -> dims 1,2; second fact(3) -> dim 2 (shared hub); table 4
  // isolated.
  BiModel m;
  m.joins.push_back(Join{ColumnRef{0, {0}}, ColumnRef{1, {0}},
                         JoinKind::kNToOne});
  m.joins.push_back(Join{ColumnRef{0, {1}}, ColumnRef{2, {0}},
                         JoinKind::kNToOne});
  m.joins.push_back(Join{ColumnRef{3, {0}}, ColumnRef{2, {0}},
                         JoinKind::kNToOne});
  return m;
}

std::vector<Table> FiveTables() {
  std::vector<Table> tables;
  for (const char* name : {"fact_a", "dim_x", "dim_shared", "fact_b",
                           "loner"}) {
    tables.push_back(MakeTable(name, {{"c", {"1"}}}));
  }
  return tables;
}

TEST(SchemaSummaryTest, RolesAndClusters) {
  std::vector<Table> tables = FiveTables();
  SchemaSummary s = SummarizeSchema(tables, StarModel());
  EXPECT_EQ(s.tables[0].role, TableRole::kFact);
  EXPECT_EQ(s.tables[1].role, TableRole::kDimension);
  EXPECT_EQ(s.tables[2].role, TableRole::kHub);  // In-degree 2.
  EXPECT_EQ(s.tables[3].role, TableRole::kFact);
  EXPECT_EQ(s.tables[4].role, TableRole::kIsolated);
  // One joined component + the isolated table.
  EXPECT_EQ(s.num_clusters, 2);
  EXPECT_EQ(s.tables[0].cluster, s.tables[2].cluster);
  EXPECT_NE(s.tables[0].cluster, s.tables[4].cluster);
}

TEST(SchemaSummaryTest, AccessorsAndDegrees) {
  SchemaSummary s = SummarizeSchema(FiveTables(), StarModel());
  EXPECT_EQ(s.FactTables(), (std::vector<int>{0, 3}));
  EXPECT_EQ(s.HubTables(), (std::vector<int>{2}));
  EXPECT_EQ(s.tables[0].out_degree, 2);
  EXPECT_EQ(s.tables[2].in_degree, 2);
}

TEST(SchemaSummaryTest, OneToOneCountsForConnectivityNotDegree) {
  std::vector<Table> tables = FiveTables();
  BiModel m;
  m.joins.push_back(Join{ColumnRef{0, {0}}, ColumnRef{1, {0}},
                         JoinKind::kOneToOne}
                        .Normalized());
  SchemaSummary s = SummarizeSchema(tables, m);
  EXPECT_EQ(s.tables[0].cluster, s.tables[1].cluster);
  EXPECT_EQ(s.tables[0].in_degree, 0);
  EXPECT_EQ(s.tables[1].in_degree, 0);
}

TEST(SchemaSummaryTest, RenderMentionsEveryTable) {
  std::vector<Table> tables = FiveTables();
  SchemaSummary s = SummarizeSchema(tables, StarModel());
  std::string text = RenderSchemaSummary(tables, s);
  for (const Table& t : tables) {
    EXPECT_NE(text.find(t.name()), std::string::npos) << t.name();
  }
  EXPECT_NE(text.find("hub"), std::string::npos);
}

TEST(SchemaSummaryTest, EmptyModel) {
  std::vector<Table> tables = FiveTables();
  SchemaSummary s = SummarizeSchema(tables, BiModel{});
  EXPECT_EQ(s.num_clusters, 5);
  for (const TableSummary& t : s.tables) {
    EXPECT_EQ(t.role, TableRole::kIsolated);
  }
}

// --- Explanations.

TEST(ExplainTest, ExplainsEveryPredictedJoin) {
  // Train a tiny model and predict the mini star.
  std::vector<Table> tables;
  tables.push_back(MakeTable(
      "fact", {{"cust_id", {"1", "2", "2", "3", "1", "3", "2", "1"}},
               {"x", {"7", "8", "9", "10", "11", "12", "13", "14"}}}));
  tables.push_back(MakeTable("customers", {{"cust_id", {"1", "2", "3"}},
                                           {"nm", {"a", "b", "c"}}}));
  tables.push_back(MakeTable("noise", {{"z", SeqCells(50, 60)}}));
  BiCase train_case;
  train_case.tables = tables;
  train_case.ground_truth.joins.push_back(
      Join{ColumnRef{0, {0}}, ColumnRef{1, {0}}, JoinKind::kNToOne});
  std::vector<BiCase> corpus(12, train_case);
  TrainerOptions topt;
  topt.forest.num_trees = 8;
  LocalModel model = TrainLocalModel(corpus, topt);

  AutoBi auto_bi(&model, AutoBiOptions{});
  AutoBiResult result = auto_bi.Predict(tables);
  std::vector<JoinExplanation> explanations =
      ExplainPrediction(tables, result);
  EXPECT_EQ(explanations.size(), result.model.joins.size());
  for (const JoinExplanation& ex : explanations) {
    EXPECT_GT(ex.probability, 0.0);
    EXPECT_FALSE(ex.stage.empty());
    EXPECT_FALSE(ex.evidence.empty());
    std::string line = ex.ToString(tables);
    EXPECT_NE(line.find("P="), std::string::npos);
  }
}

TEST(ExplainTest, EvidenceMentionsContainmentAndKeys) {
  std::vector<Table> tables;
  tables.push_back(MakeTable("a", {{"k", {"1", "2", "2"}}}));
  tables.push_back(MakeTable("b", {{"k", {"1", "2", "3"}}}));
  // Build a result by hand: one edge in the graph, selected as backbone.
  AutoBiResult result;
  result.graph = JoinGraph(2);
  result.graph.AddEdge(0, 1, {0}, {0}, 0.9);
  result.backbone_edges = {0};
  auto ex = ExplainPrediction(tables, result);
  ASSERT_EQ(ex.size(), 1u);
  bool containment_mentioned = false;
  bool key_mentioned = false;
  for (const std::string& e : ex[0].evidence) {
    if (e.find("match") != std::string::npos) containment_mentioned = true;
    if (e.find("key") != std::string::npos) key_mentioned = true;
  }
  EXPECT_TRUE(containment_mentioned);
  EXPECT_TRUE(key_mentioned);
  EXPECT_EQ(ex[0].stage, "precision-mode backbone");
}

}  // namespace
}  // namespace autobi
