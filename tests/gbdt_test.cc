#include "ml/gbdt.h"

#include <gtest/gtest.h>

#include <sstream>

#include "ml/metrics.h"

namespace autobi {
namespace {

Dataset XorTask(size_t n, Rng& rng) {
  // XOR is not linearly separable: boosted trees must compose splits.
  Dataset d({"a", "b"});
  for (size_t i = 0; i < n; ++i) {
    double a = rng.NextDouble();
    double b = rng.NextDouble();
    d.Add({a, b}, ((a > 0.5) != (b > 0.5)) ? 1 : 0);
  }
  return d;
}

TEST(GbdtTest, LearnsXor) {
  Rng rng(1);
  Dataset train = XorTask(1000, rng);
  Gbdt gbdt;
  GbdtOptions opt;
  gbdt.Fit(train, opt, rng);
  Dataset test = XorTask(300, rng);
  std::vector<double> scores;
  std::vector<int> labels;
  for (size_t i = 0; i < test.num_rows(); ++i) {
    scores.push_back(gbdt.PredictProba(test.Row(i)));
    labels.push_back(test.Label(i));
  }
  EXPECT_GT(RocAuc(scores, labels), 0.95);
}

TEST(GbdtTest, ProbaBounded) {
  Rng rng(2);
  Dataset d = XorTask(200, rng);
  Gbdt gbdt;
  gbdt.Fit(d, GbdtOptions{}, rng);
  for (int i = 0; i < 50; ++i) {
    double p = gbdt.PredictProba({rng.NextDouble(), rng.NextDouble()});
    EXPECT_GT(p, 0.0);
    EXPECT_LT(p, 1.0);
  }
}

TEST(GbdtTest, BasePriorMatchesClassBalance) {
  // On constant features, the prediction converges to the positive rate.
  Rng rng(3);
  Dataset d({"x"});
  for (int i = 0; i < 400; ++i) d.Add({1.0}, i % 4 == 0 ? 1 : 0);
  Gbdt gbdt;
  gbdt.Fit(d, GbdtOptions{}, rng);
  EXPECT_NEAR(gbdt.PredictProba({1.0}), 0.25, 0.05);
}

TEST(GbdtTest, MoreRoundsImproveTrainingFit) {
  Rng rng(4);
  Dataset d = XorTask(600, rng);
  auto auc_with_rounds = [&](int rounds) {
    Rng local(5);
    Gbdt gbdt;
    GbdtOptions opt;
    opt.num_rounds = rounds;
    gbdt.Fit(d, opt, local);
    std::vector<double> scores;
    std::vector<int> labels;
    for (size_t i = 0; i < d.num_rows(); ++i) {
      scores.push_back(gbdt.PredictProba(d.Row(i)));
      labels.push_back(d.Label(i));
    }
    return RocAuc(scores, labels);
  };
  EXPECT_GT(auc_with_rounds(40), auc_with_rounds(2));
}

TEST(GbdtTest, SerializationRoundTrip) {
  Rng rng(6);
  Dataset d = XorTask(300, rng);
  Gbdt gbdt;
  GbdtOptions opt;
  opt.learning_rate = 0.3;  // Non-default: must survive the round trip.
  gbdt.Fit(d, opt, rng);
  std::stringstream ss;
  gbdt.Save(ss);
  Gbdt loaded;
  ASSERT_TRUE(loaded.Load(ss));
  EXPECT_EQ(gbdt.num_rounds(), loaded.num_rounds());
  for (int i = 0; i < 20; ++i) {
    std::vector<double> x = {rng.NextDouble(), rng.NextDouble()};
    EXPECT_NEAR(gbdt.PredictProba(x), loaded.PredictProba(x), 1e-12);
  }
}

}  // namespace
}  // namespace autobi
