#include <gtest/gtest.h>

#include <memory>

#include "baselines/fk_baselines.h"
#include "baselines/ml_fk.h"
#include "core/auto_bi.h"
#include "core/trainer.h"
#include "eval/harness.h"
#include "synth/corpus.h"
#include "synth/tpc.h"

namespace autobi {
namespace {

// Shares one trained model + one small REAL-style benchmark across all
// integration tests (training is the expensive step).
class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CorpusOptions train_opt;
    train_opt.seed = 101;
    train_opt.training_cases = 60;
    TrainerOptions trainer;
    trainer.forest.num_trees = 24;
    model_ = new LocalModel(
        TrainLocalModel(BuildTrainingCorpus(train_opt), trainer, &report_));

    CorpusOptions bench_opt;
    bench_opt.seed = 555;  // Disjoint from training.
    bench_opt.cases_per_bucket = 2;
    benchmark_ = new RealBenchmark(BuildRealBenchmark(bench_opt));
  }
  static void TearDownTestSuite() {
    delete model_;
    delete benchmark_;
    model_ = nullptr;
    benchmark_ = nullptr;
  }

  static LocalModel* model_;
  static RealBenchmark* benchmark_;
  static TrainerReport report_;
};

LocalModel* PipelineTest::model_ = nullptr;
RealBenchmark* PipelineTest::benchmark_ = nullptr;
TrainerReport PipelineTest::report_;

TEST_F(PipelineTest, TrainingProducesUsableClassifiers) {
  EXPECT_TRUE(model_->trained());
  EXPECT_GT(report_.n1_examples, 100u);
  EXPECT_GT(report_.n1_positives, 20u);
  EXPECT_GT(report_.n1_auc, 0.85);
  EXPECT_LT(report_.n1_calibration_error, 0.2);
}

TEST_F(PipelineTest, AutoBiBeatsQualityFloorOnRealBenchmark) {
  AutoBiPredictor auto_bi("Auto-BI", model_, AutoBiOptions{});
  MethodResults results = RunMethod(auto_bi, benchmark_->cases);
  AggregateMetrics q = results.Quality();
  // Floors well below paper numbers but high enough to catch regressions.
  EXPECT_GT(q.precision, 0.8);
  EXPECT_GT(q.recall, 0.6);
  EXPECT_GT(q.f1, 0.7);
}

TEST_F(PipelineTest, PrecisionModeHasHigherPrecisionThanFull) {
  AutoBiOptions p_opt;
  p_opt.mode = AutoBiMode::kPrecisionOnly;
  AutoBiPredictor precision("Auto-BI-P", model_, p_opt);
  AutoBiPredictor full("Auto-BI", model_, AutoBiOptions{});
  AggregateMetrics qp = RunMethod(precision, benchmark_->cases).Quality();
  AggregateMetrics qf = RunMethod(full, benchmark_->cases).Quality();
  // Precision mode is precision-oriented and full mode recall-oriented; a
  // small tolerance absorbs per-case averaging noise on small samples.
  EXPECT_GE(qp.precision + 0.02, qf.precision);
  EXPECT_GE(qf.recall + 0.02, qp.recall);
}

TEST_F(PipelineTest, PredictionIsDeterministic) {
  AutoBi auto_bi(model_, AutoBiOptions{});
  const BiCase& c = benchmark_->cases[0];
  BiModel a = auto_bi.Predict(c.tables).model;
  BiModel b = auto_bi.Predict(c.tables).model;
  ASSERT_EQ(a.joins.size(), b.joins.size());
  for (size_t i = 0; i < a.joins.size(); ++i) {
    EXPECT_TRUE(a.joins[i] == b.joins[i]);
  }
}

TEST_F(PipelineTest, PredictionsSatisfyFkOnceAndAcyclicity) {
  AutoBi auto_bi(model_, AutoBiOptions{});
  for (const BiCase& c : benchmark_->cases) {
    AutoBiResult r = auto_bi.Predict(c.tables);
    // FK-once over all N:1 joins.
    std::set<std::pair<int, std::vector<int>>> sources;
    for (const Join& j : r.model.joins) {
      if (j.kind != JoinKind::kNToOne) continue;
      EXPECT_TRUE(sources.emplace(j.from.table, j.from.columns).second)
          << "FK-once violated in " << c.name;
    }
  }
}

TEST_F(PipelineTest, SolverStatsArepopulated) {
  AutoBi auto_bi(model_, AutoBiOptions{});
  AutoBiResult r = auto_bi.Predict(benchmark_->cases[0].tables);
  EXPECT_GE(r.solver_stats.one_mca_calls, 1);
  EXPECT_GE(r.kmca_cc_seconds, 0.0);
  EXPECT_GE(r.timing.Total(), 0.0);
}

TEST_F(PipelineTest, AblationsDegradeGracefully) {
  // Each ablation must still produce valid output; LC-only should have
  // (weakly) lower case precision than the full system.
  AutoBiOptions lc;
  lc.lc_only = true;
  AutoBiOptions no_fk;
  no_fk.enforce_fk_once = false;
  AutoBiOptions no_prec;
  no_prec.use_precision_mode = false;
  AggregateMetrics full =
      RunMethod(AutoBiPredictor("full", model_, AutoBiOptions{}),
                benchmark_->cases)
          .Quality();
  AggregateMetrics q_lc =
      RunMethod(AutoBiPredictor("lc", model_, lc), benchmark_->cases)
          .Quality();
  AggregateMetrics q_nofk =
      RunMethod(AutoBiPredictor("nofk", model_, no_fk), benchmark_->cases)
          .Quality();
  AggregateMetrics q_noprec =
      RunMethod(AutoBiPredictor("noprec", model_, no_prec),
                benchmark_->cases)
          .Quality();
  EXPECT_GE(full.case_precision + 1e-9, q_lc.case_precision);
  EXPECT_GT(q_nofk.f1, 0.3);
  EXPECT_GT(q_noprec.f1, 0.3);
}

TEST_F(PipelineTest, SchemaOnlyModeRuns) {
  AutoBiOptions opt;
  opt.mode = AutoBiMode::kSchemaOnly;
  AggregateMetrics q =
      RunMethod(AutoBiPredictor("Auto-BI-S", model_, opt), benchmark_->cases)
          .Quality();
  EXPECT_GT(q.f1, 0.5);
}

// --- Baselines all run and produce sane output.

TEST_F(PipelineTest, BaselinesProduceValidModels) {
  std::vector<std::unique_ptr<JoinPredictor>> methods;
  methods.push_back(std::make_unique<McFk>());
  methods.push_back(std::make_unique<FastFk>());
  methods.push_back(std::make_unique<HoPf>());
  MlFkModel mlfk_model;
  {
    CorpusOptions mini;
    mini.seed = 909;
    mini.training_cases = 12;
    mlfk_model.Train(BuildTrainingCorpus(mini));
  }
  methods.push_back(std::make_unique<MlFkRostin>(&mlfk_model));
  methods.push_back(std::make_unique<LcOnly>(model_));
  methods.push_back(std::make_unique<SystemX>());
  methods.push_back(std::make_unique<NamePrior>());
  methods.push_back(std::make_unique<McFk>(model_));
  methods.push_back(std::make_unique<FastFk>(model_));
  methods.push_back(std::make_unique<HoPf>(model_));
  std::vector<BiCase> subset(benchmark_->cases.begin(),
                             benchmark_->cases.begin() + 4);
  for (const auto& m : methods) {
    MethodResults r = RunMethod(*m, subset);
    AggregateMetrics q = r.Quality();
    EXPECT_GE(q.precision, 0.0) << m->name();
    EXPECT_LE(q.precision, 1.0) << m->name();
    for (const CaseResult& cr : r.cases) {
      EXPECT_GE(cr.timing.Total(), 0.0) << m->name();
    }
  }
}

TEST_F(PipelineTest, AutoBiOutperformsLocalBaselinesOnF1) {
  AggregateMetrics auto_bi =
      RunMethod(AutoBiPredictor("Auto-BI", model_, AutoBiOptions{}),
                benchmark_->cases)
          .Quality();
  AggregateMetrics mcfk = RunMethod(McFk(), benchmark_->cases).Quality();
  AggregateMetrics fastfk = RunMethod(FastFk(), benchmark_->cases).Quality();
  EXPECT_GT(auto_bi.f1, mcfk.f1);
  EXPECT_GT(auto_bi.f1, fastfk.f1);
}

TEST_F(PipelineTest, SystemXIsConservative) {
  MethodResults r = RunMethod(SystemX(), benchmark_->cases);
  // Stand-in contract (DESIGN.md): high precision *when it predicts*,
  // modest recall. (Cases with zero predictions score precision 0 by the
  // evaluation convention, which is about recall, not about wrong edges.)
  std::vector<EdgeMetrics> non_empty;
  for (const CaseResult& cr : r.cases) {
    if (cr.metrics.predicted > 0) non_empty.push_back(cr.metrics);
  }
  ASSERT_FALSE(non_empty.empty());
  AggregateMetrics q = Aggregate(non_empty);
  EXPECT_GT(q.precision, 0.85);
  EXPECT_LT(r.Quality().recall, 0.9);
}

TEST_F(PipelineTest, TpcHEndToEnd) {
  Rng rng(7);
  BiCase tpch = GenerateTpcH(0.25, rng);
  AutoBi auto_bi(model_, AutoBiOptions{});
  AutoBiResult r = auto_bi.Predict(tpch.tables);
  EdgeMetrics m = EvaluateCase(tpch, r.model);
  EXPECT_GT(m.f1, 0.6);
}

}  // namespace
}  // namespace autobi
