#include "text/tokenize.h"

#include <gtest/gtest.h>

namespace autobi {
namespace {

using V = std::vector<std::string>;

TEST(TokenizeTest, SnakeCase) {
  EXPECT_EQ(TokenizeIdentifier("customer_id"), (V{"customer", "id"}));
  EXPECT_EQ(TokenizeIdentifier("cust_seg_key"), (V{"cust", "seg", "key"}));
}

TEST(TokenizeTest, CamelAndPascalCase) {
  EXPECT_EQ(TokenizeIdentifier("customerId"), (V{"customer", "id"}));
  EXPECT_EQ(TokenizeIdentifier("CustomerID"), (V{"customer", "id"}));
  EXPECT_EQ(TokenizeIdentifier("XMLHttpRequest"),
            (V{"xml", "http", "request"}));
}

TEST(TokenizeTest, MixedDelimiters) {
  EXPECT_EQ(TokenizeIdentifier("Cust-Segment.Key Name"),
            (V{"cust", "segment", "key", "name"}));
}

TEST(TokenizeTest, DigitRunsAreTokens) {
  EXPECT_EQ(TokenizeIdentifier("addr2line"), (V{"addr", "2", "line"}));
  EXPECT_EQ(TokenizeIdentifier("col_12"), (V{"col", "12"}));
}

TEST(TokenizeTest, EmptyAndDelimiterOnly) {
  EXPECT_TRUE(TokenizeIdentifier("").empty());
  EXPECT_TRUE(TokenizeIdentifier("___").empty());
}

TEST(NormalizeIdentifierTest, LowercasesAndStripsDelimiters) {
  EXPECT_EQ(NormalizeIdentifier("Customer_ID"), "customerid");
  EXPECT_EQ(NormalizeIdentifier("cust-seg key"), "custsegkey");
  EXPECT_EQ(NormalizeIdentifier(""), "");
}

// Property: tokenization is insensitive to casing convention.
TEST(TokenizeTest, CaseConventionInvariance) {
  EXPECT_EQ(TokenizeIdentifier("order_date_key"),
            TokenizeIdentifier("OrderDateKey"));
  EXPECT_EQ(TokenizeIdentifier("ship_to_address"),
            TokenizeIdentifier("ShipToAddress"));
}

}  // namespace
}  // namespace autobi
