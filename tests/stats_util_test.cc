#include "common/stats_util.h"

#include <gtest/gtest.h>

namespace autobi {
namespace {

TEST(MeanTest, Basic) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({5}), 5.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

TEST(PercentileTest, MedianOfOddCount) {
  EXPECT_DOUBLE_EQ(Percentile({3, 1, 2}, 50), 2.0);
}

TEST(PercentileTest, InterpolatesBetweenOrderStatistics) {
  EXPECT_DOUBLE_EQ(Percentile({0, 10}, 50), 5.0);
  EXPECT_DOUBLE_EQ(Percentile({0, 10}, 25), 2.5);
}

TEST(PercentileTest, Extremes) {
  std::vector<double> xs = {4, 8, 15, 16, 23, 42};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), 42.0);
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0.0);
}

TEST(PercentileTest, UnsortedInputHandled) {
  EXPECT_DOUBLE_EQ(Percentile({42, 4, 23, 8, 16, 15}, 100), 42.0);
}

TEST(FScoreTest, HarmonicMean) {
  EXPECT_DOUBLE_EQ(FScore(1.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(FScore(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(FScore(1.0, 0.0), 0.0);
  EXPECT_NEAR(FScore(0.5, 1.0), 2.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace autobi
