#include "core/suggest.h"

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "tests/test_util.h"

namespace autobi {
namespace {

// fact(cust_id, prod_id) with two dims whose key ranges overlap, so
// cust_id has two plausible targets; plus an unrelated decoy dim.
std::vector<Table> SuggestTables() {
  std::vector<Table> tables;
  tables.push_back(MakeTable(
      "fact", {{"cust_id", {"1", "2", "3", "1", "2", "3", "2", "1"}},
               {"prod_id", {"1", "2", "3", "4", "1", "2", "3", "4"}},
               {"amt", {"9", "8", "7", "6", "5", "4", "3", "2"}}}));
  tables.push_back(MakeTable("customers", {{"cust_id", SeqCells(1, 5)},
                                           {"nm", {"a", "b", "c", "d",
                                                   "e"}}}));
  tables.push_back(MakeTable("products", {{"prod_id", SeqCells(1, 6)},
                                          {"lbl", {"p", "q", "r", "s", "t",
                                                   "u"}}}));
  return tables;
}

BiCase SuggestCase() {
  BiCase c;
  c.tables = SuggestTables();
  c.ground_truth.joins.push_back(
      Join{ColumnRef{0, {0}}, ColumnRef{1, {0}}, JoinKind::kNToOne});
  c.ground_truth.joins.push_back(
      Join{ColumnRef{0, {1}}, ColumnRef{2, {0}}, JoinKind::kNToOne});
  return c;
}

LocalModel TinyModel() {
  std::vector<BiCase> corpus(12, SuggestCase());
  TrainerOptions opt;
  opt.forest.num_trees = 8;
  return TrainLocalModel(corpus, opt);
}

TEST(SuggestJoinsTest, GroupsBySourceAndRanksByProbability) {
  LocalModel model = TinyModel();
  auto groups = SuggestJoins(SuggestTables(), model, 3);
  ASSERT_FALSE(groups.empty());
  for (const auto& group : groups) {
    ASSERT_FALSE(group.empty());
    // Same source column in every suggestion of a group.
    for (const JoinSuggestion& s : group) {
      EXPECT_EQ(s.join.from.table, group[0].join.from.table);
    }
    // Descending probability.
    for (size_t i = 1; i < group.size(); ++i) {
      EXPECT_GE(group[i - 1].probability, group[i].probability);
    }
  }
  // Groups themselves ordered strongest first.
  for (size_t g = 1; g < groups.size(); ++g) {
    EXPECT_GE(groups[g - 1].front().probability,
              groups[g].front().probability);
  }
}

TEST(SuggestJoinsTest, ChosenFlagMatchesAutoBiOutput) {
  LocalModel model = TinyModel();
  std::vector<Table> tables = SuggestTables();
  AutoBi auto_bi(&model, AutoBiOptions{});
  BiModel predicted = auto_bi.Predict(tables).model;
  size_t chosen = 0;
  for (const auto& group : SuggestJoins(tables, model)) {
    for (const JoinSuggestion& s : group) {
      if (s.chosen_by_auto_bi) {
        ++chosen;
        EXPECT_TRUE(predicted.Contains(s.join));
      }
    }
  }
  EXPECT_GE(chosen, predicted.joins.size());
}

TEST(SuggestJoinsTest, TopKTruncates) {
  LocalModel model = TinyModel();
  for (const auto& group : SuggestJoins(SuggestTables(), model, 1)) {
    EXPECT_EQ(group.size(), 1u);
  }
}

TEST(PredictJoinsForNewTableTest, FindsJoinForAppendedTable) {
  LocalModel model = TinyModel();
  std::vector<Table> tables = SuggestTables();
  // Confirmed model: the two fact joins.
  BiModel confirmed = SuggestCase().ground_truth;
  // Append a second event table referencing customers — the same N:1
  // pattern the tiny model was trained on.
  tables.push_back(MakeTable(
      "visits", {{"cust_id", {"1", "1", "2", "3", "2", "1"}},
                 {"dur", {"4", "5", "6", "7", "8", "9"}}}));
  std::vector<Join> joins =
      PredictJoinsForNewTable(tables, confirmed, model);
  ASSERT_FALSE(joins.empty());
  for (const Join& j : joins) {
    EXPECT_TRUE(j.from.table == 3 || j.to.table == 3);
  }
}

TEST(PredictJoinsForNewTableTest, ConfirmedJoinsOccupyStructure) {
  LocalModel model = TinyModel();
  std::vector<Table> tables = SuggestTables();
  BiModel confirmed = SuggestCase().ground_truth;
  tables.push_back(MakeTable("extra", {{"k", SeqCells(1, 4)}}));
  std::vector<Join> joins =
      PredictJoinsForNewTable(tables, confirmed, model);
  // Whatever is returned involves only the new table; the confirmed joins
  // are not re-reported.
  for (const Join& j : joins) {
    EXPECT_FALSE(confirmed.Contains(j));
    EXPECT_TRUE(j.from.table == 3 || j.to.table == 3);
  }
}

TEST(PredictJoinsForNewTableTest, UnjoinableTableYieldsNothing) {
  LocalModel model = TinyModel();
  std::vector<Table> tables = SuggestTables();
  BiModel confirmed = SuggestCase().ground_truth;
  tables.push_back(MakeTable(
      "disconnected", {{"zz", {"9001", "9002", "9003"}}}));
  EXPECT_TRUE(PredictJoinsForNewTable(tables, confirmed, model).empty());
}

}  // namespace
}  // namespace autobi
