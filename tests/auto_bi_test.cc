// Unit tests for the online Auto-BI stages on hand-constructed graphs that
// mirror the paper's running examples (Figures 3 and 4), independent of the
// trained classifiers.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "graph/ems.h"
#include "graph/join_graph.h"
#include "graph/kmca.h"
#include "graph/kmca_cc.h"

namespace autobi {
namespace {

// The Figure 3 / Example 1 graph. Vertices: 0=Fact_Sales, 1=Cust-Details,
// 2=Customers, 3=Cust-Segments, 4=Products, 5=Dates, 6=Prod-Groups.
// Ground-truth edges e1..e4, e7, e8 carry the paper's probabilities; the
// decoy e5 (Cust-Details.Customer-ID -> Cust-Segments.Customer-Segment-ID,
// P=0.8) shares its source column with e2, so taking it both violates
// FK-once with e2 and strands Customers — the situation a greedy local
// method mishandles.
struct Figure3 {
  JoinGraph graph{7};
  int e1, e2, e3, e4, e5, e6, e7, e8;
  Figure3() {
    e1 = graph.AddEdge(0, 1, {0}, {0}, 0.9);  // fact -> cust_details
    e2 = graph.AddEdge(1, 2, {0}, {0}, 0.7);  // details.customer_id -> cust
    e3 = graph.AddEdge(0, 5, {1}, {0}, 0.6);  // fact -> dates
    e4 = graph.AddEdge(2, 3, {1}, {0}, 0.7);  // customers -> segments
    // e5: details.customer_id -> segments (Example 1's decoy; same source
    // column as e2).
    e5 = graph.AddEdge(1, 3, {0}, {0}, 0.8);
    e6 = graph.AddEdge(0, 3, {2}, {0}, 0.4);  // fact -> segments (weak).
    e7 = graph.AddEdge(0, 4, {3}, {0}, 0.8);  // fact -> products
    e8 = graph.AddEdge(4, 6, {1}, {0}, 0.9);  // products -> groups
  }
};

TEST(Figure3Test, KmcaCcRecoversGroundTruthSnowflake) {
  Figure3 fig;
  KmcaResult r = SolveKmcaCc(fig.graph);
  std::vector<int> expected = {fig.e1, fig.e2, fig.e3, fig.e4,
                               fig.e7, fig.e8};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(r.edge_ids, expected);
  EXPECT_EQ(r.k, 1);  // One snowflake.
}

TEST(Figure3Test, DecoyE5LosesDespiteHigherLocalScore) {
  // A greedy local method would take e5 (0.8 > 0.7); the global optimum
  // must not contain it (Example 1 / Example 3 of the paper).
  Figure3 fig;
  KmcaResult r = SolveKmcaCc(fig.graph);
  EXPECT_EQ(std::count(r.edge_ids.begin(), r.edge_ids.end(), fig.e5), 0);
  EXPECT_EQ(std::count(r.edge_ids.begin(), r.edge_ids.end(), fig.e6), 0);
}

TEST(Figure3Test, JointProbabilityMatchesPaperExample) {
  // Example 3: P(J*) = 0.9 * 0.7 * 0.6 * 0.7 * 0.8 * 0.9.
  Figure3 fig;
  KmcaResult r = SolveKmcaCc(fig.graph);
  double joint = 1.0;
  for (int id : r.edge_ids) joint *= fig.graph.edge(id).probability;
  EXPECT_NEAR(joint, 0.9 * 0.7 * 0.6 * 0.7 * 0.8 * 0.9, 1e-9);
  // And the cost is exactly -log of that (Lemma 1; k = 1 so no penalty).
  EXPECT_NEAR(r.cost, -std::log(joint), 1e-9);
}

// The Figure 4 constellation: two facts (0=Fact_Sales, 4=Fact_Supplies)
// over dims 1=Products, 2=Dates, 3=Suppliers; the dims are shared.
struct Figure4 {
  JoinGraph graph{5};
  int sales_products, sales_dates, supplies_products, supplies_suppliers;
  int supplies_dates, sales_suppliers;
  Figure4() {
    sales_products = graph.AddEdge(0, 1, {0}, {0}, 0.9);
    sales_dates = graph.AddEdge(0, 2, {1}, {0}, 0.8);
    supplies_products = graph.AddEdge(4, 1, {0}, {0}, 0.75);
    supplies_suppliers = graph.AddEdge(4, 3, {1}, {0}, 0.85);
    // Shared-dimension joins that cannot all fit in a k-arborescence
    // (the orange dotted edges of Figure 4).
    supplies_dates = graph.AddEdge(4, 2, {2}, {0}, 0.7);
    sales_suppliers = graph.AddEdge(0, 3, {2}, {0}, 0.65);
  }
};

TEST(Figure4Test, PrecisionModeFindsTwoSnowflakeBackbone) {
  Figure4 fig;
  KmcaResult r = SolveKmcaCc(fig.graph);
  // Every dim has in-degree 1; the two facts are roots -> k = 2.
  EXPECT_EQ(r.k, 2);
  EXPECT_EQ(r.edge_ids.size(), 3u);
  // The strongest in-edge wins per dim.
  EXPECT_TRUE(std::count(r.edge_ids.begin(), r.edge_ids.end(),
                         fig.sales_products));
  EXPECT_TRUE(std::count(r.edge_ids.begin(), r.edge_ids.end(),
                         fig.sales_dates));
  EXPECT_TRUE(std::count(r.edge_ids.begin(), r.edge_ids.end(),
                         fig.supplies_suppliers));
}

TEST(Figure4Test, RecallModeRecoversSharedDimensionJoins) {
  Figure4 fig;
  KmcaResult backbone = SolveKmcaCc(fig.graph);
  std::vector<int> extra = SolveEmsGreedy(fig.graph, backbone.edge_ids);
  // The remaining shared-dim joins (>= τ, no conflicts, no cycles) are
  // exactly the three missing ground-truth edges.
  std::vector<int> expected = {fig.supplies_products, fig.supplies_dates,
                               fig.sales_suppliers};
  std::sort(extra.begin(), extra.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(extra, expected);
}

TEST(Figure4Test, PenaltyControlsNumberOfSnowflakes) {
  // Example 6's logic: removing a >0.5 edge to split a component never
  // pays off at p = -log(0.5); at a harsher penalty (p from probability
  // 0.05) even weak edges are kept to reduce k.
  Figure4 fig;
  KmcaResult at_half = SolveKmca(fig.graph, -std::log(0.5));
  EXPECT_EQ(at_half.k, 2);
  // With p ~ 0 (penalty weight from probability ~1), dropping edges is
  // free: the solver keeps only... nothing — every edge costs more than a
  // free virtual edge.
  KmcaResult at_one = SolveKmca(fig.graph, -std::log(0.999999));
  EXPECT_TRUE(at_one.edge_ids.empty());
  EXPECT_EQ(at_one.k, 5);
}

TEST(Figure4Test, FkOnceForcesAlternativeWhenSourcesCollide) {
  // Give Fact_Supplies two candidate edges from the SAME source column to
  // different dims; only one may survive.
  Figure4 fig;
  int conflict = fig.graph.AddEdge(4, 2, {1}, {0}, 0.8);  // Same col as
                                                          // supplies_suppliers?
  (void)conflict;
  KmcaResult r = SolveKmcaCc(fig.graph);
  EXPECT_TRUE(SatisfiesFkOnce(fig.graph, r.edge_ids));
}

}  // namespace
}  // namespace autobi
