#include "common/status.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace autobi {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_TRUE(s.message().empty());
  EXPECT_EQ(s, Status::Ok());
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidInput("bad").code(), StatusCode::kInvalidInput);
  EXPECT_EQ(Status::DeadlineExceeded("late").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Cancelled("stop").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::ResourceExhausted("big").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("boom").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Internal("boom").message(), "boom");
  EXPECT_FALSE(Status::Internal("boom").ok());
}

TEST(StatusTest, ToStringNamesTheCode) {
  EXPECT_EQ(Status::Ok().ToString(), "OK");
  EXPECT_EQ(Status::InvalidInput("bad row").ToString(),
            "INVALID_INPUT: bad row");
  EXPECT_EQ(std::string(StatusCodeName(StatusCode::kResourceExhausted)),
            "RESOURCE_EXHAUSTED");
}

TEST(StatusTest, WithContextChainsOutermostFirst) {
  Status s = Status::InvalidInput("row 3 has 2 fields")
                 .WithContext("read table.csv")
                 .WithContext("load case");
  EXPECT_EQ(s.code(), StatusCode::kInvalidInput);
  EXPECT_EQ(s.message(), "load case: read table.csv: row 3 has 2 fields");
  // Context on OK is a no-op.
  EXPECT_TRUE(Status::Ok().WithContext("ignored").ok());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::InvalidInput("x"), Status::InvalidInput("x"));
  EXPECT_NE(Status::InvalidInput("x"), Status::InvalidInput("y"));
  EXPECT_NE(Status::InvalidInput("x"), Status::Internal("x"));
}

TEST(StatusOrTest, HoldsValueOrStatus) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());

  StatusOr<int> e = Status::InvalidInput("nope");
  ASSERT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kInvalidInput);
  EXPECT_EQ(e.value_or(-1), -1);
  EXPECT_EQ(v.value_or(-1), 42);
}

TEST(StatusOrTest, MoveOnlyValueMovesOut) {
  StatusOr<std::vector<int>> v = std::vector<int>{1, 2, 3};
  std::vector<int> out = std::move(v).value();
  EXPECT_EQ(out.size(), 3u);
}

TEST(StatusOrTest, ArrowOperatorReachesMembers) {
  StatusOr<std::string> s = std::string("hello");
  EXPECT_EQ(s->size(), 5u);
}

namespace macros {

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidInput("negative");
  return Status::Ok();
}

Status Outer(int x) {
  AUTOBI_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::Ok();
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidInput("odd");
  return x / 2;
}

StatusOr<int> Quarter(int x) {
  AUTOBI_ASSIGN_OR_RETURN(int half, Half(x));
  AUTOBI_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

}  // namespace macros

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(macros::Outer(1).ok());
  EXPECT_EQ(macros::Outer(-1).code(), StatusCode::kInvalidInput);
}

TEST(StatusMacrosTest, AssignOrReturnUnwrapsAndPropagates) {
  StatusOr<int> ok = macros::Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);
  EXPECT_EQ(macros::Quarter(6).status().code(), StatusCode::kInvalidInput);
  EXPECT_EQ(macros::Quarter(5).status().code(), StatusCode::kInvalidInput);
}

}  // namespace
}  // namespace autobi
