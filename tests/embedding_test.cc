#include "text/embedding.h"

#include <gtest/gtest.h>

namespace autobi {
namespace {

TEST(EmbeddingTest, SelfSimilarityIsOne) {
  NgramEmbedder e;
  EXPECT_NEAR(e.Similarity("customer_id", "customer_id"), 1.0, 1e-6);
}

TEST(EmbeddingTest, CaseAndDelimiterInsensitive) {
  NgramEmbedder e;
  EXPECT_NEAR(e.Similarity("CustomerID", "customer_id"), 1.0, 1e-6);
}

TEST(EmbeddingTest, TokenReorderScoresHigh) {
  NgramEmbedder e;
  // The whole point of the embedding feature: "id customer" should still be
  // close to "customer id" where edit distance fails.
  EXPECT_GT(e.Similarity("id_customer", "customer_id"), 0.9);
}

TEST(EmbeddingTest, RelatedBeatsUnrelated) {
  NgramEmbedder e;
  double related = e.Similarity("cust_key", "customer_key");
  double unrelated = e.Similarity("cust_key", "warehouse_zone");
  EXPECT_GT(related, unrelated);
}

TEST(EmbeddingTest, OutputIsUnitNormOrZero) {
  NgramEmbedder e;
  auto v = e.Embed("product_code");
  double norm = 0;
  for (float x : v) norm += double(x) * x;
  EXPECT_NEAR(norm, 1.0, 1e-5);
  auto zero = e.Embed("");
  double znorm = 0;
  for (float x : zero) znorm += double(x) * x;
  EXPECT_DOUBLE_EQ(znorm, 0.0);
}

TEST(EmbeddingTest, SimilarityBoundedInUnitInterval) {
  NgramEmbedder e;
  const char* names[] = {"a", "customer", "x9", "order_line_total", ""};
  for (const char* a : names) {
    for (const char* b : names) {
      double s = e.Similarity(a, b);
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 1.0 + 1e-9);
    }
  }
}

TEST(EmbeddingTest, Deterministic) {
  NgramEmbedder e;
  EXPECT_EQ(e.Embed("stable_name"), e.Embed("stable_name"));
}

}  // namespace
}  // namespace autobi
