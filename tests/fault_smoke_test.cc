// Runs the end-to-end fault-injection campaign (src/fuzz/fault_fuzz.h) as a
// gtest so a plain `ctest` exercises the full service layer: mutated
// CSV/DDL, ReadCsvFile with io faults armed, and Predict under randomized
// RunContext budgets/deadlines with candidates.exhausted / parallel.task
// armed. The standalone autobi_faultfuzz binary runs the same campaign under
// ASan/UBSan in the AUTOBI_FAULT_SMOKE=1 CI stage.

#include <gtest/gtest.h>

#include "fuzz/fault_fuzz.h"

namespace autobi {
namespace {

TEST(FaultFuzzSmoke, ThousandCasesNoInvariantViolations) {
  FaultFuzzOptions options;
  options.seed = 20260807;
  options.cases = 1000;
  FaultFuzzReport report = RunFaultFuzz(options);
  EXPECT_EQ(report.failures, 0) << FormatFaultFuzzReport(report);
  EXPECT_EQ(report.cases_run, 1000);
  // The scenario mix must actually cover every surface.
  EXPECT_GT(report.csv_cases, 0);
  EXPECT_GT(report.ddl_cases, 0);
  EXPECT_GT(report.file_cases, 0);
  EXPECT_GT(report.pipeline_cases, 0);
  EXPECT_GT(report.schema_evolution_cases, 0);
  EXPECT_GT(report.injected_faults, 0);
  EXPECT_GT(report.degraded_models, 0);
}

// The dedicated schema-evolution campaign: every case replays a mutation
// sequence through PredictIncremental and cross-checks a cold Predict after
// each step. Any incremental/cold divergence is an invariant violation.
TEST(FaultFuzzSmoke, SchemaEvolutionDifferentialCampaign) {
  FaultFuzzOptions options;
  options.seed = 20260808;
  options.cases = 150;
  options.scenario = "schema";
  FaultFuzzReport report = RunFaultFuzz(options);
  EXPECT_EQ(report.failures, 0) << FormatFaultFuzzReport(report);
  EXPECT_EQ(report.schema_evolution_cases, 150);
}

TEST(FaultFuzzSmoke, DeterministicAcrossRuns) {
  FaultFuzzOptions options;
  options.seed = 42;
  options.cases = 120;
  FaultFuzzReport a = RunFaultFuzz(options);
  FaultFuzzReport b = RunFaultFuzz(options);
  EXPECT_EQ(a.failures, 0) << FormatFaultFuzzReport(a);
  EXPECT_EQ(a.status_errors, b.status_errors);
  EXPECT_EQ(a.parses_ok, b.parses_ok);
  EXPECT_EQ(a.degraded_models, b.degraded_models);
  EXPECT_EQ(a.injected_faults, b.injected_faults);
}

}  // namespace
}  // namespace autobi
