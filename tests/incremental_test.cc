// Differential-equivalence suite for the incremental re-prediction engine
// (core/incremental.h): for every mutation kind — no-op, append rows, add
// table, drop table, rename column, rename table, replace cells —
// PredictIncremental over the mutated tables must be bit-identical to a
// cold Predict on the same tables: joins, graph, backbone/recall edge sets,
// solver stats, degradation markers, and the JSON model export, at 1/2/8
// threads. The observability counters must also report exactly how much
// work the delta path did.

#include "core/incremental.h"

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "common/run_context.h"
#include "common/strings.h"
#include "core/auto_bi.h"
#include "core/model_export.h"
#include "core/trainer.h"
#include "synth/corpus.h"
#include "table/table.h"

namespace autobi {
namespace {

// Shared tiny trained model (the suite probes the delta machinery, not
// classifier quality).
const LocalModel& TestModel() {
  static const LocalModel* model = [] {
    CorpusOptions copt;
    copt.seed = 321;
    copt.training_cases = 12;
    TrainerOptions topt;
    topt.forest.num_trees = 4;
    return new LocalModel(TrainLocalModel(BuildTrainingCorpus(copt), topt));
  }();
  return *model;
}

// A 4-table snowflake: orders -> customers -> regions, orders -> products.
// Six unordered pairs, so per-pair reuse counters are meaningful.
std::vector<Table> BaseTables() {
  std::vector<Table> tables;

  Table customers("customers");
  Column& cid = customers.AddColumn("cust_id");
  Column& cname = customers.AddColumn("cust_name");
  Column& cregion = customers.AddColumn("region_id");
  for (int i = 0; i < 40; ++i) {
    cid.AppendInt(1000 + i);
    cname.AppendString("customer_" + std::to_string(i));
    cregion.AppendInt(i % 5);
  }
  tables.push_back(std::move(customers));

  Table regions("regions");
  Column& rid = regions.AddColumn("region_id");
  Column& rname = regions.AddColumn("region_name");
  for (int i = 0; i < 5; ++i) {
    rid.AppendInt(i);
    rname.AppendString("region_" + std::to_string(i));
  }
  tables.push_back(std::move(regions));

  Table products("products");
  Column& pid = products.AddColumn("prod_id");
  Column& pname = products.AddColumn("prod_name");
  for (int i = 0; i < 30; ++i) {
    pid.AppendInt(500 + i);
    pname.AppendString("product_" + std::to_string(i));
  }
  tables.push_back(std::move(products));

  Table orders("orders");
  Column& oid = orders.AddColumn("order_id");
  Column& ocust = orders.AddColumn("cust_id");
  Column& oprod = orders.AddColumn("prod_id");
  Column& oqty = orders.AddColumn("quantity");
  for (int i = 0; i < 150; ++i) {
    oid.AppendInt(i + 1);
    ocust.AppendInt(1000 + (i * 13) % 40);
    oprod.AppendInt(500 + (i * 7) % 30);
    oqty.AppendInt(1 + i % 9);
  }
  tables.push_back(std::move(orders));

  return tables;
}

// The full bit-identity contract, field by field.
void ExpectBitIdentical(const AutoBiResult& incr, const AutoBiResult& cold,
                        const std::vector<Table>& tables) {
  ASSERT_EQ(incr.model.joins.size(), cold.model.joins.size());
  for (size_t i = 0; i < cold.model.joins.size(); ++i) {
    EXPECT_TRUE(incr.model.joins[i] == cold.model.joins[i]) << i;
  }
  EXPECT_TRUE(incr.graph.StructurallyEqual(cold.graph));
  EXPECT_EQ(incr.backbone_edges, cold.backbone_edges);
  EXPECT_EQ(incr.recall_edges, cold.recall_edges);
  EXPECT_EQ(incr.solver_stats.one_mca_calls, cold.solver_stats.one_mca_calls);
  EXPECT_EQ(incr.solver_stats.nodes, cold.solver_stats.nodes);
  EXPECT_EQ(incr.solver_stats.budget_exhausted,
            cold.solver_stats.budget_exhausted);
  EXPECT_EQ(incr.degradation.Any(), cold.degradation.Any());
  EXPECT_EQ(incr.degradation.ucc.degraded, cold.degradation.ucc.degraded);
  EXPECT_EQ(incr.degradation.ind.degraded, cold.degradation.ind.degraded);
  EXPECT_EQ(incr.degradation.local_inference.degraded,
            cold.degradation.local_inference.degraded);
  EXPECT_EQ(incr.degradation.global_predict.degraded,
            cold.degradation.global_predict.degraded);
  StatusOr<std::string> incr_json = ExportJson(tables, incr.model);
  StatusOr<std::string> cold_json = ExportJson(tables, cold.model);
  ASSERT_TRUE(incr_json.ok() && cold_json.ok());
  EXPECT_EQ(*incr_json, *cold_json);
}

struct Mutation {
  const char* name;
  std::function<void(std::vector<Table>*)> apply;
  // Expected counters of the incremental run after the mutation
  // (4 base tables -> 6 unordered pairs).
  size_t reprofiled;
  size_t delta_merged;
  size_t rescored;
  size_t reused;
};

std::vector<Mutation> Mutations() {
  std::vector<Mutation> muts;
  muts.push_back({"no-op", [](std::vector<Table>*) {}, 0, 0, 0, 6});
  muts.push_back({"append-rows",
                  [](std::vector<Table>* t) {
                    Table& orders = (*t)[3];
                    for (int i = 150; i < 162; ++i) {
                      orders.column(0).AppendInt(i + 1);
                      orders.column(1).AppendInt(1000 + (i * 13) % 40);
                      orders.column(2).AppendInt(500 + (i * 7) % 30);
                      orders.column(3).AppendInt(1 + i % 9);
                    }
                  },
                  0, 1, 3, 3});
  muts.push_back({"add-table",
                  [](std::vector<Table>* t) {
                    Table shippers("shippers");
                    Column& sid = shippers.AddColumn("shipper_id");
                    Column& sname = shippers.AddColumn("shipper_name");
                    for (int i = 0; i < 6; ++i) {
                      sid.AppendInt(i);
                      sname.AppendString("shipper_" + std::to_string(i));
                    }
                    t->push_back(std::move(shippers));
                  },
                  1, 0, 4, 6});
  muts.push_back({"drop-table",
                  [](std::vector<Table>* t) { t->erase(t->begin() + 2); },
                  0, 0, 0, 3});
  muts.push_back({"rename-column",
                  [](std::vector<Table>* t) {
                    (*t)[0].column(1).set_name("customer_name");
                  },
                  0, 0, 3, 3});
  muts.push_back({"rename-table",
                  [](std::vector<Table>* t) { (*t)[2].set_name("catalog"); },
                  0, 0, 3, 3});
  muts.push_back({"replace-cells",
                  [](std::vector<Table>* t) {
                    Table& orders = (*t)[3];
                    Column fresh("quantity", ValueType::kInt);
                    for (int i = 0; i < 150; ++i) fresh.AppendInt(9 - i % 9);
                    orders.column(3) = std::move(fresh);
                  },
                  1, 0, 3, 3});
  return muts;
}

class IncrementalDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalDifferentialTest, EveryMutationKindMatchesColdPredict) {
  const int threads = GetParam();
  AutoBiOptions options;
  options.threads = threads;
  AutoBi predictor(&TestModel(), options);

  for (const Mutation& mut : Mutations()) {
    SCOPED_TRACE(StrFormat("mutation=%s threads=%d", mut.name, threads));
    IncrementalState state;

    // Seed: first incremental call is a cold rebuild through the engine.
    std::vector<Table> tables = BaseTables();
    StatusOr<AutoBiResult> seed =
        predictor.PredictIncremental(tables, nullptr, &state);
    ASSERT_TRUE(seed.ok()) << seed.status().ToString();
    EXPECT_FALSE(seed->incremental.used);
    EXPECT_EQ(seed->incremental.tables_reprofiled, 4u);
    EXPECT_EQ(seed->incremental.pairs_rescored, 6u);
    ASSERT_TRUE(state.valid);

    // Differential step: incremental on the mutated tables vs cold.
    mut.apply(&tables);
    StatusOr<AutoBiResult> incr =
        predictor.PredictIncremental(tables, nullptr, &state);
    ASSERT_TRUE(incr.ok()) << incr.status().ToString();
    StatusOr<AutoBiResult> cold = predictor.Predict(tables, nullptr);
    ASSERT_TRUE(cold.ok());
    ExpectBitIdentical(*incr, *cold, tables);

    EXPECT_TRUE(incr->incremental.used);
    EXPECT_EQ(incr->incremental.tables_reprofiled, mut.reprofiled);
    EXPECT_EQ(incr->incremental.tables_delta_merged, mut.delta_merged);
    EXPECT_EQ(incr->incremental.pairs_rescored, mut.rescored);
    EXPECT_EQ(incr->incremental.pairs_reused, mut.reused);

    // The committed state is a sound baseline: an immediate no-op re-run
    // reuses everything, warm-starts the solve, and still matches cold.
    StatusOr<AutoBiResult> again =
        predictor.PredictIncremental(tables, nullptr, &state);
    ASSERT_TRUE(again.ok());
    EXPECT_TRUE(again->incremental.used);
    EXPECT_EQ(again->incremental.tables_reprofiled, 0u);
    EXPECT_EQ(again->incremental.pairs_rescored, 0u);
    EXPECT_TRUE(again->incremental.warm_start_used);
    ExpectBitIdentical(*again, *cold, tables);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, IncrementalDifferentialTest,
                         ::testing::Values(1, 2, 8));

TEST(IncrementalTest, NoOpWarmStartsTheSolve) {
  AutoBiOptions options;
  options.threads = 2;
  AutoBi predictor(&TestModel(), options);
  IncrementalState state;
  std::vector<Table> tables = BaseTables();
  ASSERT_TRUE(predictor.PredictIncremental(tables, nullptr, &state).ok());
  StatusOr<AutoBiResult> noop =
      predictor.PredictIncremental(tables, nullptr, &state);
  ASSERT_TRUE(noop.ok());
  EXPECT_TRUE(noop->incremental.used);
  EXPECT_TRUE(noop->incremental.warm_start_used);
  EXPECT_EQ(noop->incremental.pairs_reused, 6u);
}

TEST(IncrementalTest, OptionsChangeForcesColdRebuild) {
  std::vector<Table> tables = BaseTables();
  IncrementalState state;
  AutoBiOptions options;
  options.threads = 1;
  AutoBi predictor(&TestModel(), options);
  ASSERT_TRUE(predictor.PredictIncremental(tables, nullptr, &state).ok());
  ASSERT_TRUE(state.valid);

  // Thread count is execution-only (results are bit-identical at any
  // thread count), so it is excluded from the options fingerprint and the
  // delta path still engages.
  AutoBiOptions rethreaded = options;
  rethreaded.threads = 4;
  AutoBi rethreaded_predictor(&TestModel(), rethreaded);
  StatusOr<AutoBiResult> same =
      rethreaded_predictor.PredictIncremental(tables, nullptr, &state);
  ASSERT_TRUE(same.ok());
  EXPECT_TRUE(same->incremental.used);

  // A solve-shaping option, by contrast, must force a cold rebuild
  // (used == false), not silently reuse results computed under the old
  // options.
  AutoBiOptions changed = options;
  changed.tau = 0.75;
  AutoBi changed_predictor(&TestModel(), changed);
  StatusOr<AutoBiResult> rebuilt =
      changed_predictor.PredictIncremental(tables, nullptr, &state);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_FALSE(rebuilt->incremental.used);
}

TEST(IncrementalTest, DegradedRunsMatchColdButNeverCommitState) {
  std::vector<Table> tables = BaseTables();
  AutoBiOptions options;
  options.threads = 1;
  AutoBi predictor(&TestModel(), options);
  IncrementalState state;
  ASSERT_TRUE(predictor.PredictIncremental(tables, nullptr, &state).ok());
  ASSERT_TRUE(state.valid);

  // A candidate-pair budget trips mid-engine (it is not part of the
  // fallback screen): the degraded result still matches cold under the
  // same budgets, and the state keeps describing the last healthy run.
  RunContext budgeted;
  budgeted.budgets.max_candidate_pairs = 1;
  StatusOr<AutoBiResult> degraded =
      predictor.PredictIncremental(tables, &budgeted, &state);
  ASSERT_TRUE(degraded.ok());
  ASSERT_TRUE(degraded->degradation.Any());
  StatusOr<AutoBiResult> cold_degraded = predictor.Predict(tables, &budgeted);
  ASSERT_TRUE(cold_degraded.ok());
  ExpectBitIdentical(*degraded, *cold_degraded, tables);
  EXPECT_TRUE(state.valid);

  // The surviving baseline still powers a healthy delta run.
  StatusOr<AutoBiResult> healthy =
      predictor.PredictIncremental(tables, nullptr, &state);
  ASSERT_TRUE(healthy.ok());
  EXPECT_TRUE(healthy->incremental.used);
  EXPECT_TRUE(healthy->incremental.warm_start_used);
}

TEST(IncrementalTest, FallbackConditionsInvalidateStateAndUsePlainPredict) {
  std::vector<Table> tables = BaseTables();
  AutoBiOptions options;
  options.threads = 1;
  AutoBi predictor(&TestModel(), options);
  IncrementalState state;
  ASSERT_TRUE(predictor.PredictIncremental(tables, nullptr, &state).ok());
  ASSERT_TRUE(state.valid);

  // A context that is already stopped at entry cannot run the delta path.
  RunContext cancelled;
  cancelled.Cancel();
  StatusOr<AutoBiResult> stopped =
      predictor.PredictIncremental(tables, &cancelled, &state);
  ASSERT_TRUE(stopped.ok());
  EXPECT_FALSE(stopped->incremental.used);
  EXPECT_TRUE(stopped->degradation.Any());
  EXPECT_FALSE(state.valid);

  // Rebuild, then trip the value-probe table budget: same fallback.
  ASSERT_TRUE(predictor.PredictIncremental(tables, nullptr, &state).ok());
  ASSERT_TRUE(state.valid);
  RunContext tiny_rows;
  tiny_rows.budgets.max_rows_per_table = 5;
  StatusOr<AutoBiResult> budgeted =
      predictor.PredictIncremental(tables, &tiny_rows, &state);
  ASSERT_TRUE(budgeted.ok());
  EXPECT_FALSE(budgeted->incremental.used);
  EXPECT_FALSE(state.valid);
  StatusOr<AutoBiResult> cold = predictor.Predict(tables, &tiny_rows);
  ASSERT_TRUE(cold.ok());
  ExpectBitIdentical(*budgeted, *cold, tables);
}

TEST(IncrementalTest, MalformedTablesAreInvalidInput) {
  std::vector<Table> tables = BaseTables();
  tables[0].column(0).AppendInt(7);  // Ragged.
  AutoBi predictor(&TestModel(), AutoBiOptions{});
  IncrementalState state;
  StatusOr<AutoBiResult> result =
      predictor.PredictIncremental(tables, nullptr, &state);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidInput);
}

}  // namespace
}  // namespace autobi
