#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/rng.h"
#include "ml/calibration.h"
#include "ml/dataset.h"
#include "ml/decision_tree.h"
#include "ml/logistic.h"
#include "ml/metrics.h"
#include "ml/random_forest.h"

namespace autobi {
namespace {

// --- Dataset.

TEST(DatasetTest, AddAndAccess) {
  Dataset d({"f0", "f1"});
  d.Add({1.0, 2.0}, 1);
  d.Add({3.0, 4.0}, 0);
  EXPECT_EQ(d.num_rows(), 2u);
  EXPECT_EQ(d.num_features(), 2u);
  EXPECT_DOUBLE_EQ(d.Feature(1, 0), 3.0);
  EXPECT_EQ(d.Label(0), 1);
  EXPECT_EQ(d.num_positives(), 1u);
  EXPECT_EQ(d.Row(1), (std::vector<double>{3.0, 4.0}));
}

TEST(DatasetTest, SplitPreservesAllRows) {
  Dataset d({"x"});
  for (int i = 0; i < 100; ++i) d.Add({double(i)}, i % 2);
  Rng rng(1);
  Dataset train, holdout;
  d.Split(0.8, rng, &train, &holdout);
  EXPECT_EQ(train.num_rows(), 80u);
  EXPECT_EQ(holdout.num_rows(), 20u);
  EXPECT_EQ(train.num_positives() + holdout.num_positives(), 50u);
}

// Synthetic task: label = x0 > 0.5 XOR-free, learnable by axis splits.
Dataset ThresholdTask(size_t n, Rng& rng, double noise = 0.0) {
  Dataset d({"x0", "x1"});
  for (size_t i = 0; i < n; ++i) {
    double x0 = rng.NextDouble();
    double x1 = rng.NextDouble();
    int label = x0 > 0.5 ? 1 : 0;
    if (noise > 0 && rng.NextBool(noise)) label = 1 - label;
    d.Add({x0, x1}, label);
  }
  return d;
}

// --- Decision tree.

TEST(DecisionTreeTest, LearnsThresholdFunction) {
  Rng rng(2);
  Dataset d = ThresholdTask(400, rng);
  DecisionTree tree;
  TreeOptions opt;
  tree.Fit(d, opt, rng);
  EXPECT_GT(tree.PredictProba({0.9, 0.5}), 0.9);
  EXPECT_LT(tree.PredictProba({0.1, 0.5}), 0.1);
}

TEST(DecisionTreeTest, LearnsConjunction) {
  Rng rng(3);
  Dataset d({"a", "b"});
  for (int i = 0; i < 600; ++i) {
    double a = rng.NextDouble();
    double b = rng.NextDouble();
    d.Add({a, b}, (a > 0.5 && b > 0.5) ? 1 : 0);
  }
  DecisionTree tree;
  tree.Fit(d, TreeOptions{}, rng);
  EXPECT_GT(tree.PredictProba({0.8, 0.8}), 0.85);
  EXPECT_LT(tree.PredictProba({0.8, 0.2}), 0.15);
  EXPECT_LT(tree.PredictProba({0.2, 0.8}), 0.15);
}

TEST(DecisionTreeTest, PureLeafStopsSplitting) {
  Rng rng(4);
  Dataset d({"x"});
  for (int i = 0; i < 50; ++i) d.Add({double(i)}, 1);
  DecisionTree tree;
  tree.Fit(d, TreeOptions{}, rng);
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_DOUBLE_EQ(tree.PredictProba({25.0}), 1.0);
}

TEST(DecisionTreeTest, MaxDepthRespected) {
  Rng rng(5);
  Dataset d = ThresholdTask(500, rng, 0.3);
  DecisionTree shallow, deep;
  TreeOptions opt;
  opt.max_depth = 1;
  shallow.Fit(d, opt, rng);
  opt.max_depth = 10;
  deep.Fit(d, opt, rng);
  EXPECT_LE(shallow.num_nodes(), 3u);
  EXPECT_GT(deep.num_nodes(), shallow.num_nodes());
}

TEST(DecisionTreeTest, SerializationRoundTrip) {
  Rng rng(6);
  Dataset d = ThresholdTask(300, rng);
  DecisionTree tree;
  tree.Fit(d, TreeOptions{}, rng);
  std::stringstream ss;
  tree.Save(ss);
  DecisionTree loaded;
  ASSERT_TRUE(loaded.Load(ss));
  for (int i = 0; i < 20; ++i) {
    std::vector<double> x = {rng.NextDouble(), rng.NextDouble()};
    EXPECT_DOUBLE_EQ(tree.PredictProba(x), loaded.PredictProba(x));
  }
}

// --- Random forest.

TEST(RandomForestTest, BeatsChanceOnNoisyTask) {
  Rng rng(7);
  Dataset train = ThresholdTask(800, rng, 0.15);
  Dataset test = ThresholdTask(300, rng, 0.0);
  RandomForest forest;
  ForestOptions opt;
  opt.num_trees = 20;
  forest.Fit(train, opt, rng);
  std::vector<double> scores;
  std::vector<int> labels;
  for (size_t i = 0; i < test.num_rows(); ++i) {
    scores.push_back(forest.PredictProba(test.Row(i)));
    labels.push_back(test.Label(i));
  }
  EXPECT_GT(RocAuc(scores, labels), 0.95);
}

TEST(RandomForestTest, ProbaInUnitInterval) {
  Rng rng(8);
  Dataset d = ThresholdTask(200, rng, 0.2);
  RandomForest forest;
  forest.Fit(d, ForestOptions{}, rng);
  for (int i = 0; i < 50; ++i) {
    double p = forest.PredictProba({rng.NextDouble(), rng.NextDouble()});
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(RandomForestTest, FeatureImportanceIdentifiesSignal) {
  Rng rng(9);
  Dataset d = ThresholdTask(600, rng);  // Only x0 matters.
  RandomForest forest;
  forest.Fit(d, ForestOptions{}, rng);
  std::vector<double> imp = forest.FeatureImportance(2);
  EXPECT_GT(imp[0], imp[1]);
  EXPECT_NEAR(imp[0] + imp[1], 1.0, 1e-9);
}

TEST(RandomForestTest, SerializationRoundTrip) {
  Rng rng(10);
  Dataset d = ThresholdTask(300, rng, 0.1);
  RandomForest forest;
  ForestOptions opt;
  opt.num_trees = 8;
  forest.Fit(d, opt, rng);
  std::stringstream ss;
  forest.Save(ss);
  RandomForest loaded;
  ASSERT_TRUE(loaded.Load(ss));
  EXPECT_EQ(loaded.num_trees(), 8u);
  for (int i = 0; i < 20; ++i) {
    std::vector<double> x = {rng.NextDouble(), rng.NextDouble()};
    EXPECT_DOUBLE_EQ(forest.PredictProba(x), loaded.PredictProba(x));
  }
}

// --- Logistic regression.

TEST(LogisticTest, LearnsLinearBoundary) {
  Rng rng(11);
  Dataset d({"x", "y"});
  for (int i = 0; i < 500; ++i) {
    double x = rng.NextDouble(-1, 1);
    double y = rng.NextDouble(-1, 1);
    d.Add({x, y}, x + y > 0 ? 1 : 0);
  }
  LogisticRegression lr;
  lr.Fit(d);
  EXPECT_GT(lr.PredictProba({0.8, 0.8}), 0.9);
  EXPECT_LT(lr.PredictProba({-0.8, -0.8}), 0.1);
}

TEST(LogisticTest, SerializationRoundTrip) {
  Rng rng(12);
  Dataset d = ThresholdTask(200, rng);
  LogisticRegression lr;
  lr.Fit(d);
  std::stringstream ss;
  lr.Save(ss);
  LogisticRegression loaded;
  ASSERT_TRUE(loaded.Load(ss));
  for (int i = 0; i < 10; ++i) {
    std::vector<double> x = {rng.NextDouble(), rng.NextDouble()};
    EXPECT_NEAR(lr.PredictProba(x), loaded.PredictProba(x), 1e-9);
  }
}

// --- Calibration.

TEST(PlattTest, RecoversMonotoneMapping) {
  // Raw scores s correlate with P(y=1) = sigmoid(4s - 2); Platt should
  // produce a calibrated output close to the truth.
  Rng rng(13);
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 4000; ++i) {
    double s = rng.NextDouble();
    double p = 1.0 / (1.0 + std::exp(-(4 * s - 2)));
    scores.push_back(s);
    labels.push_back(rng.NextBool(p) ? 1 : 0);
  }
  PlattCalibrator cal;
  cal.Fit(scores, labels);
  EXPECT_NEAR(cal.Calibrate(0.5), 0.5, 0.05);
  EXPECT_NEAR(cal.Calibrate(1.0), 1.0 / (1.0 + std::exp(-2.0)), 0.05);
  // Calibration error after Platt should be small.
  std::vector<double> calibrated;
  for (double s : scores) calibrated.push_back(cal.Calibrate(s));
  EXPECT_LT(ExpectedCalibrationError(calibrated, labels), 0.04);
}

TEST(PlattTest, MonotoneInScore) {
  Rng rng(14);
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 500; ++i) {
    double s = rng.NextDouble();
    scores.push_back(s);
    labels.push_back(rng.NextBool(s) ? 1 : 0);
  }
  PlattCalibrator cal;
  cal.Fit(scores, labels);
  double prev = -1;
  for (double s = 0.0; s <= 1.0; s += 0.05) {
    double c = cal.Calibrate(s);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(IsotonicTest, OutputIsMonotoneAndBounded) {
  Rng rng(15);
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 800; ++i) {
    double s = rng.NextDouble();
    scores.push_back(s);
    labels.push_back(rng.NextBool(s * s) ? 1 : 0);
  }
  IsotonicCalibrator cal;
  cal.Fit(scores, labels);
  double prev = -1;
  for (double s = 0.0; s <= 1.0; s += 0.02) {
    double c = cal.Calibrate(s);
    EXPECT_GE(c, prev - 1e-12);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
}

TEST(IsotonicTest, PerfectSeparationYieldsStep) {
  std::vector<double> scores = {0.1, 0.2, 0.3, 0.7, 0.8, 0.9};
  std::vector<int> labels = {0, 0, 0, 1, 1, 1};
  IsotonicCalibrator cal;
  cal.Fit(scores, labels);
  EXPECT_DOUBLE_EQ(cal.Calibrate(0.05), 0.0);
  EXPECT_DOUBLE_EQ(cal.Calibrate(0.95), 1.0);
}

TEST(CalibratorSerializationTest, RoundTrips) {
  std::vector<double> scores = {0.1, 0.4, 0.6, 0.9};
  std::vector<int> labels = {0, 0, 1, 1};
  PlattCalibrator platt;
  platt.Fit(scores, labels);
  IsotonicCalibrator iso;
  iso.Fit(scores, labels);
  std::stringstream ss;
  platt.Save(ss);
  iso.Save(ss);
  PlattCalibrator platt2;
  IsotonicCalibrator iso2;
  ASSERT_TRUE(platt2.Load(ss));
  ASSERT_TRUE(iso2.Load(ss));
  for (double s : {0.0, 0.3, 0.5, 0.8, 1.0}) {
    EXPECT_NEAR(platt.Calibrate(s), platt2.Calibrate(s), 1e-12);
    EXPECT_NEAR(iso.Calibrate(s), iso2.Calibrate(s), 1e-12);
  }
}

// --- Metrics.

TEST(MetricsTest, BinaryMetricsKnownValues) {
  std::vector<double> scores = {0.9, 0.8, 0.3, 0.6};
  std::vector<int> labels = {1, 0, 0, 1};
  BinaryMetrics m = ComputeBinaryMetrics(scores, labels);
  EXPECT_EQ(m.true_positives, 2u);
  EXPECT_EQ(m.false_positives, 1u);
  EXPECT_EQ(m.true_negatives, 1u);
  EXPECT_EQ(m.false_negatives, 0u);
  EXPECT_DOUBLE_EQ(m.precision, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
}

TEST(MetricsTest, AucPerfectAndInvertedAndTies) {
  EXPECT_DOUBLE_EQ(RocAuc({0.1, 0.2, 0.8, 0.9}, {0, 0, 1, 1}), 1.0);
  EXPECT_DOUBLE_EQ(RocAuc({0.9, 0.8, 0.2, 0.1}, {0, 0, 1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(RocAuc({0.5, 0.5, 0.5, 0.5}, {0, 1, 0, 1}), 0.5);
  EXPECT_DOUBLE_EQ(RocAuc({0.3, 0.4}, {1, 1}), 0.5);  // One class only.
}

TEST(MetricsTest, BrierScore) {
  EXPECT_DOUBLE_EQ(BrierScore({1.0, 0.0}, {1, 0}), 0.0);
  EXPECT_DOUBLE_EQ(BrierScore({0.0, 1.0}, {1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(BrierScore({0.5}, {1}), 0.25);
}

TEST(MetricsTest, EceZeroForPerfectCalibration) {
  // Scores exactly equal to empirical frequency per bin.
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 100; ++i) {
    scores.push_back(0.25);
    labels.push_back(i % 4 == 0 ? 1 : 0);  // 25% positives.
  }
  EXPECT_NEAR(ExpectedCalibrationError(scores, labels, 10), 0.0, 1e-9);
}

}  // namespace
}  // namespace autobi
