#include "common/run_context.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "core/auto_bi.h"
#include "core/bi_model.h"
#include "core/trainer.h"
#include "synth/corpus.h"

namespace autobi {
namespace {

TEST(RunContextTest, DefaultIsNoOp) {
  RunContext ctx;
  EXPECT_FALSE(ctx.has_deadline());
  EXPECT_FALSE(ctx.cancelled());
  EXPECT_FALSE(ctx.StopRequested());
  EXPECT_TRUE(ctx.CheckStop("stage").ok());
  EXPECT_TRUE(std::isinf(ctx.SecondsRemaining()));
}

TEST(RunContextTest, ExpiredDeadlineTrips) {
  RunContext ctx;
  ctx.set_deadline_after(0.0);
  EXPECT_TRUE(ctx.has_deadline());
  EXPECT_TRUE(ctx.StopRequested());
  Status s = ctx.CheckStop("IND discovery");
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(s.message().find("IND discovery"), std::string::npos);
  EXPECT_LE(ctx.SecondsRemaining(), 0.0);
  ctx.clear_deadline();
  EXPECT_FALSE(ctx.StopRequested());
}

TEST(RunContextTest, FutureDeadlineDoesNotTrip) {
  RunContext ctx;
  ctx.set_deadline_after(3600.0);
  EXPECT_FALSE(ctx.StopRequested());
  EXPECT_TRUE(ctx.CheckStop("stage").ok());
  EXPECT_GT(ctx.SecondsRemaining(), 3000.0);
}

TEST(RunContextTest, CancelTripsAndWinsOverDeadline) {
  RunContext ctx;
  ctx.set_deadline_after(0.0);
  ctx.Cancel();
  EXPECT_TRUE(ctx.cancelled());
  EXPECT_TRUE(ctx.StopRequested());
  EXPECT_EQ(ctx.CheckStop("solve").code(), StatusCode::kCancelled);
}

TEST(StageHealthTest, FirstTriggerWins) {
  StageHealth h;
  EXPECT_FALSE(h.degraded);
  h.MarkDegraded("first");
  h.MarkDegraded("second");
  EXPECT_TRUE(h.degraded);
  EXPECT_EQ(h.trigger, "first");
}

// --- Pipeline-level behavior. One small shared model keeps this suite fast.

const LocalModel& TestModel() {
  static const LocalModel* model = [] {
    CorpusOptions copt;
    copt.seed = 77;
    copt.training_cases = 8;
    TrainerOptions topt;
    topt.forest.num_trees = 6;
    return new LocalModel(TrainLocalModel(BuildTrainingCorpus(copt), topt));
  }();
  return *model;
}

std::vector<BiCase> TestCases() {
  CorpusOptions opt;
  opt.seed = 4321;  // Disjoint from training.
  opt.training_cases = 3;
  return BuildTrainingCorpus(opt);
}

// Serializes everything observable about a prediction (joins, edge choices,
// graph shape, probabilities) for bit-identity comparisons.
std::string Fingerprint(const AutoBiResult& r) {
  std::ostringstream os;
  os.precision(17);
  for (const Join& j : r.model.joins) {
    os << j.from.table << "/" << j.to.table << ":";
    for (int c : j.from.columns) os << c << ",";
    os << "->";
    for (int c : j.to.columns) os << c << ",";
    os << (j.kind == JoinKind::kOneToOne ? "1:1" : "N:1") << ";";
  }
  os << "|b:";
  for (int e : r.backbone_edges) os << e << ",";
  os << "|r:";
  for (int e : r.recall_edges) os << e << ",";
  os << "|g:" << r.graph.edges().size();
  for (const JoinEdge& e : r.graph.edges()) os << ":" << e.probability;
  return os.str();
}

TEST(RunContextPipelineTest, NullAndUntrippedContextBitIdentical) {
  std::vector<BiCase> cases = TestCases();
  for (const BiCase& bi_case : cases) {
    std::string reference;
    for (int threads : {1, 2, 8}) {
      AutoBiOptions opt;
      opt.threads = threads;
      AutoBi autobi(&TestModel(), opt);
      // Legacy (no-context) path.
      AutoBiResult legacy = autobi.Predict(bi_case.tables);
      // Untripped context: generous deadline, no budgets.
      RunContext ctx;
      ctx.set_deadline_after(3600.0);
      StatusOr<AutoBiResult> with_ctx = autobi.Predict(bi_case.tables, &ctx);
      ASSERT_TRUE(with_ctx.ok()) << with_ctx.status().ToString();
      EXPECT_FALSE(with_ctx.value().degradation.Any());
      std::string fp = Fingerprint(legacy);
      EXPECT_EQ(fp, Fingerprint(with_ctx.value()))
          << "context-on diverged (threads=" << threads << ")";
      if (reference.empty()) {
        reference = fp;
      } else {
        EXPECT_EQ(fp, reference)
            << "thread count changed the prediction (threads=" << threads
            << ")";
      }
    }
  }
}

TEST(RunContextPipelineTest, PreCancelledRunDegradesToEmptyFeasibleModel) {
  BiCase bi_case = TestCases()[0];
  AutoBi autobi(&TestModel(), AutoBiOptions{});
  RunContext ctx;
  ctx.Cancel();
  StatusOr<AutoBiResult> result = autobi.Predict(bi_case.tables, &ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const AutoBiResult& r = result.value();
  EXPECT_TRUE(r.degradation.Any());
  EXPECT_TRUE(r.degradation.global_predict.degraded);
  EXPECT_FALSE(r.degradation.global_predict.trigger.empty());
  EXPECT_TRUE(r.model.joins.empty());
  EXPECT_TRUE(ValidateBiModel(bi_case.tables, r.model).ok());
}

TEST(RunContextPipelineTest, ExpiredDeadlineDegradesGracefully) {
  BiCase bi_case = TestCases()[0];
  AutoBi autobi(&TestModel(), AutoBiOptions{});
  RunContext ctx;
  ctx.set_deadline_after(0.0);
  StatusOr<AutoBiResult> result = autobi.Predict(bi_case.tables, &ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().degradation.Any());
  EXPECT_TRUE(ValidateBiModel(bi_case.tables, result.value().model).ok());
}

TEST(RunContextPipelineTest, RowBudgetExcludesTablesDeterministically) {
  BiCase bi_case = TestCases()[0];
  AutoBi autobi(&TestModel(), AutoBiOptions{});
  RunContext ctx;
  ctx.budgets.max_rows_per_table = 1;  // Excludes every non-empty table.
  StatusOr<AutoBiResult> result = autobi.Predict(bi_case.tables, &ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const AutoBiResult& r = result.value();
  EXPECT_TRUE(r.degradation.ucc.degraded);
  EXPECT_NE(r.degradation.ucc.trigger.find("budget"), std::string::npos);
  EXPECT_TRUE(ValidateBiModel(bi_case.tables, r.model).ok());
  // Metadata fallback still yields candidates (schema-only style), so the
  // graph is not necessarily empty.
  // Determinism: a second identical run gives the identical result.
  StatusOr<AutoBiResult> again = autobi.Predict(bi_case.tables, &ctx);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(Fingerprint(r), Fingerprint(again.value()));
}

TEST(RunContextPipelineTest, CandidatePairBudgetTruncates) {
  BiCase bi_case = TestCases()[0];
  AutoBiOptions opt;
  AutoBi autobi(&TestModel(), opt);
  // Baseline candidate count.
  AutoBiResult full = autobi.Predict(bi_case.tables);
  ASSERT_GT(full.graph.edges().size(), 2u);
  RunContext ctx;
  ctx.budgets.max_candidate_pairs = 1;
  StatusOr<AutoBiResult> result = autobi.Predict(bi_case.tables, &ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const AutoBiResult& r = result.value();
  EXPECT_TRUE(r.degradation.ind.degraded);
  EXPECT_NE(r.degradation.ind.trigger.find("candidate-pair budget"),
            std::string::npos);
  // 1 candidate -> at most 2 graph edges (a 1:1 pair expands to two).
  EXPECT_LE(r.graph.edges().size(), 2u);
  EXPECT_TRUE(ValidateBiModel(bi_case.tables, r.model).ok());
}

TEST(RunContextPipelineTest, SolverBudgetFallsBackToFeasibleBackbone) {
  BiCase bi_case = TestCases()[0];
  AutoBi autobi(&TestModel(), AutoBiOptions{});
  RunContext ctx;
  ctx.budgets.max_one_mca_calls = 1;
  StatusOr<AutoBiResult> result = autobi.Predict(bi_case.tables, &ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const AutoBiResult& r = result.value();
  // The degradation marker must track the solver's own budget telemetry.
  EXPECT_EQ(r.degradation.global_predict.degraded,
            r.solver_stats.budget_exhausted);
  EXPECT_TRUE(ValidateBiModel(bi_case.tables, r.model).ok());
}

TEST(RunContextPipelineTest, MalformedTableIsInvalidInput) {
  BiCase bi_case = TestCases()[0];
  std::vector<Table> tables = bi_case.tables;
  // Make table 0 ragged: one column longer than the others.
  tables[0].column(0).AppendInt(1);
  AutoBi autobi(&TestModel(), AutoBiOptions{});
  StatusOr<AutoBiResult> result = autobi.Predict(tables, nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidInput);
}

}  // namespace
}  // namespace autobi
