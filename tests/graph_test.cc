#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "fuzz/corpus.h"
#include "fuzz/differential.h"
#include "graph/brute_force.h"
#include "graph/edmonds.h"
#include "graph/ems.h"
#include "graph/join_graph.h"
#include "graph/kmca.h"
#include "graph/kmca_cc.h"
#include "graph/validate.h"

namespace autobi {
namespace {

using Pairs = std::vector<std::pair<int, int>>;

// --- Validators.

TEST(ValidateTest, DirectedCycleDetection) {
  EXPECT_FALSE(HasDirectedCycle(3, {{0, 1}, {1, 2}}));
  EXPECT_TRUE(HasDirectedCycle(3, {{0, 1}, {1, 2}, {2, 0}}));
  EXPECT_TRUE(HasDirectedCycle(2, {{0, 1}, {1, 0}}));
  EXPECT_FALSE(HasDirectedCycle(1, {}));
  // Diamond (two paths, no cycle).
  EXPECT_FALSE(HasDirectedCycle(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}}));
}

TEST(ValidateTest, KArborescenceRecognition) {
  int k = 0;
  // Single path = 1-arborescence.
  EXPECT_TRUE(IsKArborescence(3, {{0, 1}, {1, 2}}, &k));
  EXPECT_EQ(k, 1);
  // Two disjoint trees + isolated vertex = 3 components.
  EXPECT_TRUE(IsKArborescence(5, {{0, 1}, {2, 3}}, &k));
  EXPECT_EQ(k, 3);
  // In-degree 2 is not an arborescence.
  EXPECT_FALSE(IsKArborescence(3, {{0, 2}, {1, 2}}));
  // Cycle is not an arborescence.
  EXPECT_FALSE(IsKArborescence(3, {{0, 1}, {1, 2}, {2, 0}}));
}

TEST(ValidateTest, SpanningArborescenceRequiresRoot) {
  EXPECT_TRUE(IsSpanningArborescence(3, {{0, 1}, {0, 2}}, 0));
  EXPECT_FALSE(IsSpanningArborescence(3, {{0, 1}, {0, 2}}, 1));
  EXPECT_FALSE(IsSpanningArborescence(3, {{0, 1}}, 0));  // Not spanning.
}

TEST(ValidateTest, WeakComponents) {
  EXPECT_EQ(CountWeakComponents(4, {}), 4);
  EXPECT_EQ(CountWeakComponents(4, {{0, 1}, {2, 3}}), 2);
  EXPECT_EQ(CountWeakComponents(4, {{0, 1}, {1, 2}, {2, 3}}), 1);
}

// --- Edmonds (1-MCA).

TEST(EdmondsTest, SimpleStar) {
  std::vector<Arc> arcs = {{0, 1, 1.0}, {0, 2, 2.0}, {1, 2, 5.0}};
  auto result = SolveMinCostArborescence(3, arcs, 0);
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(ArcSetWeight(arcs, *result), 3.0);
}

TEST(EdmondsTest, ChoosesCheaperPath) {
  std::vector<Arc> arcs = {{0, 1, 1.0}, {0, 2, 10.0}, {1, 2, 1.0}};
  auto result = SolveMinCostArborescence(3, arcs, 0);
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(ArcSetWeight(arcs, *result), 2.0);  // 0->1->2.
}

TEST(EdmondsTest, CycleContractionClassic) {
  // Cheap 2-cycle between 1 and 2 must be broken via the root.
  std::vector<Arc> arcs = {
      {1, 2, 1.0}, {2, 1, 1.0}, {0, 1, 5.0}, {0, 2, 4.0}};
  auto result = SolveMinCostArborescence(3, arcs, 0);
  ASSERT_TRUE(result.has_value());
  // Best: 0->2 (4) + 2->1 (1) = 5.
  EXPECT_DOUBLE_EQ(ArcSetWeight(arcs, *result), 5.0);
}

TEST(EdmondsTest, InfeasibleWhenVertexUnreachable) {
  std::vector<Arc> arcs = {{0, 1, 1.0}};
  EXPECT_FALSE(SolveMinCostArborescence(3, arcs, 0).has_value());
}

TEST(EdmondsTest, SingleVertexTrivial) {
  auto result = SolveMinCostArborescence(1, {}, 0);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->empty());
}

TEST(EdmondsTest, MultiEdgesPickCheapest) {
  std::vector<Arc> arcs = {{0, 1, 7.0}, {0, 1, 2.0}, {0, 1, 9.0}};
  auto result = SolveMinCostArborescence(2, arcs, 0);
  ASSERT_TRUE(result.has_value());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0], 1);
}

TEST(EdmondsTest, IgnoresArcsIntoRootAndSelfLoops) {
  std::vector<Arc> arcs = {{1, 0, 0.1}, {1, 1, 0.1}, {0, 1, 3.0}};
  auto result = SolveMinCostArborescence(2, arcs, 0);
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(ArcSetWeight(arcs, *result), 3.0);
}

// Property: Edmonds output matches brute force on random multigraphs, and is
// always a valid spanning arborescence when one exists.
class EdmondsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EdmondsPropertyTest, MatchesBruteForce) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 15; ++trial) {
    int n = 2 + int(rng.NextBelow(5));
    std::vector<Arc> arcs;
    size_t m = 2 + rng.NextBelow(10);
    for (size_t i = 0; i < m; ++i) {
      int u = int(rng.NextBelow(size_t(n)));
      int v = int(rng.NextBelow(size_t(n)));
      arcs.push_back(Arc{u, v, std::floor(rng.NextDouble(0, 10) * 4) / 4});
    }
    int root = int(rng.NextBelow(size_t(n)));
    auto fast = SolveMinCostArborescence(n, arcs, root);
    auto slow = BruteForceMinArborescence(n, arcs, root);
    ASSERT_EQ(fast.has_value(), slow.has_value());
    if (!fast.has_value()) continue;
    Pairs pairs;
    for (int i : *fast) {
      pairs.emplace_back(arcs[size_t(i)].src, arcs[size_t(i)].dst);
    }
    EXPECT_TRUE(IsSpanningArborescence(n, pairs, root));
    EXPECT_NEAR(ArcSetWeight(arcs, *fast), ArcSetWeight(arcs, *slow), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EdmondsPropertyTest,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

// --- JoinGraph.

TEST(JoinGraphTest, EdgeWeightIsNegLogProbability) {
  JoinGraph g(2);
  int id = g.AddEdge(0, 1, {0}, {0}, 0.5);
  EXPECT_NEAR(g.edge(id).weight, -std::log(0.5), 1e-12);
}

TEST(JoinGraphTest, ProbabilityClampedAwayFromZeroAndOne) {
  JoinGraph g(2);
  int a = g.AddEdge(0, 1, {0}, {0}, 0.0);
  int b = g.AddEdge(0, 1, {1}, {0}, 1.0);
  EXPECT_GT(g.edge(a).probability, 0.0);
  EXPECT_LT(g.edge(b).probability, 1.0);
  EXPECT_TRUE(std::isfinite(g.edge(a).weight));
}

TEST(JoinGraphTest, SourceKeysGroupBySourceColumns) {
  JoinGraph g(3);
  int a = g.AddEdge(0, 1, {0}, {0}, 0.9);
  int b = g.AddEdge(0, 2, {0}, {0}, 0.8);  // Same source column.
  int c = g.AddEdge(0, 1, {1}, {0}, 0.7);  // Different source column.
  EXPECT_EQ(g.edge(a).source_key, g.edge(b).source_key);
  EXPECT_NE(g.edge(a).source_key, g.edge(c).source_key);
}

TEST(JoinGraphTest, OneToOneAddsBothOrientationsSharingPair) {
  JoinGraph g(2);
  g.AddOneToOneEdge(0, 1, {0}, {2}, 0.8);
  ASSERT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.edge(0).pair_id, g.edge(1).pair_id);
  EXPECT_EQ(g.edge(0).src, g.edge(1).dst);
  EXPECT_EQ(g.edge(0).src_columns, g.edge(1).dst_columns);
  EXPECT_TRUE(g.edge(0).one_to_one);
}

// --- k-MCA (Algorithm 2).

TEST(KmcaTest, PenaltyCostFormula) {
  JoinGraph g(4);
  g.AddEdge(0, 1, {0}, {0}, 0.9);
  double p = DefaultPenaltyWeight();
  // One edge, 4 vertices -> k = 3 components -> cost = w + 2p.
  EXPECT_NEAR(KArborescenceCost(g, {0}, p),
              -std::log(0.9) + 2 * p, 1e-12);
  // No edges -> k = 4 -> 3 penalties.
  EXPECT_NEAR(KArborescenceCost(g, {}, p), 3 * p, 1e-12);
}

TEST(KmcaTest, HighProbabilityEdgesSelected) {
  JoinGraph g(3);
  g.AddEdge(0, 1, {0}, {0}, 0.9);
  g.AddEdge(0, 2, {1}, {0}, 0.8);
  KmcaResult r = SolveKmca(g, DefaultPenaltyWeight());
  EXPECT_EQ(r.edge_ids, (std::vector<int>{0, 1}));
  EXPECT_EQ(r.k, 1);
}

TEST(KmcaTest, LowProbabilityEdgesDropped) {
  // p < 0.5 edges cost more than the virtual-edge penalty, so k-MCA prefers
  // disconnecting (the coin-toss semantics of Section 4.3.2).
  JoinGraph g(3);
  g.AddEdge(0, 1, {0}, {0}, 0.9);
  g.AddEdge(0, 2, {1}, {0}, 0.3);
  KmcaResult r = SolveKmca(g, DefaultPenaltyWeight());
  EXPECT_EQ(r.edge_ids, (std::vector<int>{0}));
  EXPECT_EQ(r.k, 2);
}

TEST(KmcaTest, InfersNumberOfSnowflakes) {
  // Two independent stars -> k = 2 (the Figure 4 structure).
  JoinGraph g(6);
  g.AddEdge(0, 1, {0}, {0}, 0.9);
  g.AddEdge(0, 2, {1}, {0}, 0.9);
  g.AddEdge(3, 4, {0}, {0}, 0.9);
  g.AddEdge(3, 5, {1}, {0}, 0.9);
  KmcaResult r = SolveKmca(g, DefaultPenaltyWeight());
  EXPECT_EQ(r.k, 2);
  EXPECT_EQ(r.edge_ids.size(), 4u);
}

TEST(KmcaTest, GlobalBeatsGreedyOnFigure3Decoy) {
  // The decoy e5 (P=0.8) from the same source column as e1 shares no source
  // here, but competes for Customers' structure: a greedy method would take
  // it; k-MCA keeps the arborescence with the highest joint probability.
  JoinGraph g(6);
  int e1 = g.AddEdge(0, 1, {0}, {0}, 0.9);
  int e2 = g.AddEdge(0, 2, {1}, {0}, 0.7);
  int e3 = g.AddEdge(0, 3, {2}, {0}, 0.6);
  int e4 = g.AddEdge(1, 4, {1}, {0}, 0.7);
  g.AddEdge(0, 4, {3}, {0}, 0.4);                // e6: weaker path to segs.
  int e7 = g.AddEdge(2, 5, {1}, {0}, 0.8);
  KmcaResult r = SolveKmca(g, DefaultPenaltyWeight());
  EXPECT_EQ(r.edge_ids, (std::vector<int>{e1, e2, e3, e4, e7}));
}

// Lemma 1: minimizing sum of -log(P) == maximizing product of P.
TEST(KmcaTest, Lemma1ProductSumEquivalence) {
  Rng rng(42);
  JoinGraph g(5);
  for (int i = 0; i < 10; ++i) {
    int u = int(rng.NextBelow(5));
    int v = int(rng.NextBelow(5));
    if (u == v) continue;
    g.AddEdge(u, v, {i}, {0}, rng.NextDouble(0.05, 0.95));
  }
  double p = DefaultPenaltyWeight();
  KmcaResult best = SolveKmca(g, p);
  KmcaResult brute = BruteForceKmca(g, p);
  EXPECT_NEAR(best.cost, brute.cost, 1e-9);
  // Translate both to joint probability (with 0.5 per virtual edge): equal.
  auto joint = [&](const KmcaResult& r) {
    double logp = 0;
    for (int id : r.edge_ids) logp += std::log(g.edge(id).probability);
    logp += (r.k - 1) * std::log(0.5);
    return logp;
  };
  EXPECT_NEAR(joint(best), joint(brute), 1e-9);
}

// Property: Algorithm 2 is optimal vs brute force on random graphs.
class KmcaPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KmcaPropertyTest, OptimalAndValid) {
  Rng rng(GetParam() * 977);
  for (int trial = 0; trial < 8; ++trial) {
    int n = 2 + int(rng.NextBelow(4));
    JoinGraph g(n);
    size_t m = rng.NextBelow(12);
    for (size_t i = 0; i < m; ++i) {
      int u = int(rng.NextBelow(size_t(n)));
      int v = int(rng.NextBelow(size_t(n)));
      if (u == v) continue;
      g.AddEdge(u, v, {int(i)}, {0}, rng.NextDouble(0.05, 0.95));
    }
    double p = rng.NextDouble(0.1, 1.2);
    KmcaResult fast = SolveKmca(g, p);
    KmcaResult brute = BruteForceKmca(g, p);
    ASSERT_TRUE(fast.feasible);
    EXPECT_NEAR(fast.cost, brute.cost, 1e-9);
    Pairs pairs;
    for (int id : fast.edge_ids) {
      pairs.emplace_back(g.edge(id).src, g.edge(id).dst);
    }
    int k = 0;
    EXPECT_TRUE(IsKArborescence(n, pairs, &k));
    EXPECT_EQ(k, fast.k);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KmcaPropertyTest,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

// --- k-MCA-CC (Algorithm 3).

TEST(KmcaCcTest, FkOnceSatisfiedAlways) {
  // Two edges from the same source column: only one may survive.
  JoinGraph g(3);
  g.AddEdge(0, 1, {0}, {0}, 0.9);
  g.AddEdge(0, 2, {0}, {0}, 0.8);  // Same source column {0}.
  KmcaResult r = SolveKmcaCc(g);
  EXPECT_TRUE(SatisfiesFkOnce(g, r.edge_ids));
  EXPECT_EQ(r.edge_ids.size(), 1u);
  EXPECT_EQ(r.edge_ids[0], 0);  // Keeps the more probable edge.
}

TEST(KmcaCcTest, ConstraintCanForceRestructure) {
  // Without FK-once, both 0->1 and 0->2 (same column) would be taken; with
  // it, the solver must route 2 through 1.
  JoinGraph g(3);
  g.AddEdge(0, 1, {0}, {0}, 0.9);
  g.AddEdge(0, 2, {0}, {0}, 0.85);
  g.AddEdge(1, 2, {1}, {0}, 0.6);
  KmcaCcOptions opt;
  KmcaResult with_cc = SolveKmcaCc(g, opt);
  EXPECT_TRUE(SatisfiesFkOnce(g, with_cc.edge_ids));
  EXPECT_EQ(with_cc.edge_ids, (std::vector<int>{0, 2}));

  opt.enforce_fk_once = false;
  KmcaResult without = SolveKmcaCc(g, opt);
  EXPECT_EQ(without.edge_ids, (std::vector<int>{0, 1}));
}

TEST(KmcaCcTest, StatsCountOneMcaCalls) {
  JoinGraph g(3);
  g.AddEdge(0, 1, {0}, {0}, 0.9);
  g.AddEdge(0, 2, {0}, {0}, 0.8);
  KmcaCcStats stats;
  SolveKmcaCc(g, KmcaCcOptions{}, &stats);
  EXPECT_GE(stats.one_mca_calls, 1);
  EXPECT_GE(stats.nodes, 1);
}

TEST(KmcaCcTest, NoConflictSolvesInOneCall) {
  JoinGraph g(3);
  g.AddEdge(0, 1, {0}, {0}, 0.9);
  g.AddEdge(0, 2, {1}, {0}, 0.9);
  KmcaCcStats stats;
  SolveKmcaCc(g, KmcaCcOptions{}, &stats);
  EXPECT_EQ(stats.one_mca_calls, 1);
}

// Property: Algorithm 3 optimal vs constrained brute force; FK-once always
// holds; result is a k-arborescence.
class KmcaCcPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KmcaCcPropertyTest, OptimalAndFeasible) {
  Rng rng(GetParam() * 1315423911ULL);
  for (int trial = 0; trial < 6; ++trial) {
    int n = 2 + int(rng.NextBelow(4));
    JoinGraph g(n);
    size_t m = rng.NextBelow(11);
    for (size_t i = 0; i < m; ++i) {
      int u = int(rng.NextBelow(size_t(n)));
      int v = int(rng.NextBelow(size_t(n)));
      if (u == v) continue;
      // Few distinct source columns -> frequent FK-once conflicts.
      int src_col = int(rng.NextBelow(2));
      g.AddEdge(u, v, {src_col}, {0}, rng.NextDouble(0.05, 0.95));
    }
    KmcaCcOptions opt;
    opt.penalty_weight = rng.NextDouble(0.1, 1.2);
    KmcaResult fast = SolveKmcaCc(g, opt);
    KmcaResult brute = BruteForceKmcaCc(g, opt.penalty_weight);
    ASSERT_TRUE(fast.feasible);
    EXPECT_TRUE(SatisfiesFkOnce(g, fast.edge_ids));
    EXPECT_NEAR(fast.cost, brute.cost, 1e-9);
    Pairs pairs;
    for (int id : fast.edge_ids) {
      pairs.emplace_back(g.edge(id).src, g.edge(id).dst);
    }
    EXPECT_TRUE(IsKArborescence(n, pairs));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KmcaCcPropertyTest,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

// --- Figure 7 counterfactual estimators.

TEST(Fig7EstimatorsTest, BruteForceCallsGrowSuperExponentially) {
  // sum_k S(n,k)*k: n=1 -> 1, n=2 -> 3 (S(2,1)*1 + S(2,2)*2 = 1 + 2),
  // n=3 -> S(3,1)+S(3,2)*2+S(3,3)*3 = 1+6+3 = 10.
  EXPECT_DOUBLE_EQ(EstimateBruteForceKmcaCalls(1), 1.0);
  EXPECT_DOUBLE_EQ(EstimateBruteForceKmcaCalls(2), 3.0);
  EXPECT_DOUBLE_EQ(EstimateBruteForceKmcaCalls(3), 10.0);
  EXPECT_GT(EstimateBruteForceKmcaCalls(20), 1e13);
}

TEST(Fig7EstimatorsTest, UnprunedBranchProduct) {
  JoinGraph g(4);
  g.AddEdge(0, 1, {0}, {0}, 0.9);
  g.AddEdge(0, 2, {0}, {0}, 0.9);  // Conflict group of size 2.
  g.AddEdge(0, 3, {0}, {0}, 0.9);  // -> size 3.
  g.AddEdge(1, 2, {0}, {0}, 0.9);
  g.AddEdge(1, 3, {0}, {0}, 0.9);  // Second group, size 2.
  EXPECT_DOUBLE_EQ(EstimateUnprunedBranchCalls(g), 6.0);
}

// --- EMS (recall mode).

TEST(EmsTest, AddsConfidentNonConflictingEdges) {
  JoinGraph g(4);
  int backbone = g.AddEdge(0, 1, {0}, {0}, 0.9);
  int extra = g.AddEdge(2, 1, {0}, {0}, 0.8);  // Second fact -> shared dim.
  g.AddEdge(3, 1, {0}, {0}, 0.3);              // Below τ.
  std::vector<int> s = SolveEmsGreedy(g, {backbone});
  EXPECT_EQ(s, std::vector<int>{extra});
}

TEST(EmsTest, RespectsFkOnceAgainstBackbone) {
  JoinGraph g(3);
  int backbone = g.AddEdge(0, 1, {0}, {0}, 0.9);
  g.AddEdge(0, 2, {0}, {0}, 0.95);  // Same source column as backbone.
  EXPECT_TRUE(SolveEmsGreedy(g, {backbone}).empty());
}

TEST(EmsTest, RejectsCycleCreatingEdges) {
  JoinGraph g(2);
  int backbone = g.AddEdge(0, 1, {0}, {0}, 0.9);
  g.AddEdge(1, 0, {0}, {0}, 0.9);  // Would create a 2-cycle.
  EXPECT_TRUE(SolveEmsGreedy(g, {backbone}).empty());
}

TEST(EmsTest, OneOrientationPerOneToOnePair) {
  JoinGraph g(3);
  int backbone = g.AddEdge(0, 1, {0}, {0}, 0.9);
  g.AddOneToOneEdge(1, 2, {0}, {0}, 0.8);  // Edges 1 and 2 share a pair.
  std::vector<int> s = SolveEmsGreedy(g, {backbone});
  EXPECT_EQ(s.size(), 1u);
}

TEST(EmsTest, GreedyPrefersHigherProbability) {
  JoinGraph g(3);
  // Two conflicting candidates (same source column), only one can enter.
  g.AddEdge(0, 1, {0}, {0}, 0.7);
  int better = g.AddEdge(0, 2, {0}, {0}, 0.9);
  std::vector<int> s = SolveEmsGreedy(g, {});
  EXPECT_EQ(s, std::vector<int>{better});
}

TEST(EmsTest, TauThresholdHonored) {
  JoinGraph g(2);
  g.AddEdge(0, 1, {0}, {0}, 0.6);
  EmsOptions opt;
  opt.tau = 0.7;
  EXPECT_TRUE(SolveEmsGreedy(g, {}, opt).empty());
  opt.tau = 0.5;
  EXPECT_EQ(SolveEmsGreedy(g, {}, opt).size(), 1u);
}

// --- Corpus replay.

#ifndef AUTOBI_CORPUS_DIR
#define AUTOBI_CORPUS_DIR ""
#endif

// Every checked-in fuzz-corpus case (seeded adversarial instances plus
// minimized finds) must parse and pass the full differential cross-check.
// Keeping this in the core graph suite means a solver regression on a known
// repro fails even when the fuzz smoke target is not built.
TEST(CorpusReplayTest, CheckedInCasesPassDifferentialCrossCheck) {
  std::vector<std::string> files = ListCorpusFiles(AUTOBI_CORPUS_DIR);
  ASSERT_GE(files.size(), 10u)
      << "fuzz corpus missing or too small at " << AUTOBI_CORPUS_DIR;
  for (const std::string& path : files) {
    SCOPED_TRACE(path);
    CorpusCase c;
    std::string error;
    ASSERT_TRUE(LoadCorpusFile(path, &c, &error)) << error;
    if (c.graph.num_edges() > 20) continue;  // Oracle cap; fuzzer covers it.
    CheckResult r = CheckJoinGraphDifferential(c.graph, c.penalty_weight);
    EXPECT_TRUE(r.ok) << r.kind << ": " << r.message;
  }
}

// The corpus text format round-trips exactly (ids, columns, probabilities).
TEST(CorpusReplayTest, FormatRoundTripsBitExactly) {
  for (const std::string& path : ListCorpusFiles(AUTOBI_CORPUS_DIR)) {
    SCOPED_TRACE(path);
    CorpusCase c;
    std::string error;
    ASSERT_TRUE(LoadCorpusFile(path, &c, &error)) << error;
    std::string text =
        FormatCorpusCase(c.graph, c.penalty_weight, c.comments);
    CorpusCase again;
    ASSERT_TRUE(ParseCorpusCase(text, &again, &error)) << error;
    ASSERT_EQ(again.graph.num_edges(), c.graph.num_edges());
    for (size_t i = 0; i < c.graph.num_edges(); ++i) {
      const JoinEdge& a = c.graph.edge(int(i));
      const JoinEdge& b = again.graph.edge(int(i));
      EXPECT_EQ(a.src, b.src);
      EXPECT_EQ(a.dst, b.dst);
      EXPECT_EQ(a.probability, b.probability);  // Bitwise via %.17g.
      EXPECT_EQ(a.weight, b.weight);
      EXPECT_EQ(a.source_key, b.source_key);
      EXPECT_EQ(a.one_to_one, b.one_to_one);
    }
  }
}

}  // namespace
}  // namespace autobi
