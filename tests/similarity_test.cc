#include "text/similarity.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "text/tokenize.h"

namespace autobi {
namespace {

using V = std::vector<std::string>;

TEST(TokenJaccardTest, KnownValues) {
  EXPECT_DOUBLE_EQ(TokenJaccard(V{"a", "b"}, V{"a", "b"}), 1.0);
  EXPECT_DOUBLE_EQ(TokenJaccard(V{"a", "b"}, V{"b", "c"}), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(TokenJaccard(V{"a"}, V{"b"}), 0.0);
  EXPECT_DOUBLE_EQ(TokenJaccard(V{}, V{}), 0.0);
}

TEST(TokenJaccardTest, DuplicatesIgnored) {
  EXPECT_DOUBLE_EQ(TokenJaccard(V{"a", "a", "b"}, V{"a", "b", "b"}), 1.0);
}

TEST(TokenContainmentTest, SubsetScoresOne) {
  EXPECT_DOUBLE_EQ(TokenContainment(V{"customer", "id"},
                                    V{"customer", "id", "number"}),
                   1.0);
  EXPECT_DOUBLE_EQ(TokenContainment(V{"a"}, V{"b"}), 0.0);
  EXPECT_DOUBLE_EQ(TokenContainment(V{}, V{"a"}), 0.0);
}

TEST(LevenshteinTest, KnownValues) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(LevenshteinDistance("abc", "abc"), 0u);
  EXPECT_EQ(LevenshteinDistance("ab", "ba"), 2u);
}

TEST(EditSimilarityTest, Bounds) {
  EXPECT_DOUBLE_EQ(EditSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(EditSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(EditSimilarity("abc", "xyz"), 0.0);
}

TEST(JaroWinklerTest, KnownBehavior) {
  EXPECT_DOUBLE_EQ(JaroWinkler("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(JaroWinkler("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroWinkler("abc", ""), 0.0);
  // Shared prefix beats same-length non-prefix overlap.
  EXPECT_GT(JaroWinkler("customer", "customor"),
            JaroWinkler("customer", "rustomec"));
}

TEST(JaroWinklerTest, MartthaReference) {
  // Classic reference value: JW("MARTHA","MARHTA") = 0.9611.
  EXPECT_NEAR(JaroWinkler("martha", "marhta"), 0.9611, 0.001);
}

// Property sweep: similarity metrics are symmetric, bounded in [0,1], and
// score identical strings as 1.
class SimilarityPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimilarityPropertyTest, SymmetryBoundsIdentity) {
  Rng rng(GetParam());
  auto random_ident = [&rng]() {
    static const char* parts[] = {"cust", "order", "id",  "key", "date",
                                  "line", "prod",  "amt", "seg", "x"};
    std::string s;
    size_t n = 1 + rng.NextBelow(3);
    for (size_t i = 0; i < n; ++i) {
      if (i) s += "_";
      s += parts[rng.NextBelow(10)];
    }
    return s;
  };
  for (int i = 0; i < 20; ++i) {
    std::string a = random_ident();
    std::string b = random_ident();
    auto ta = TokenizeIdentifier(a);
    auto tb = TokenizeIdentifier(b);

    double j1 = TokenJaccard(ta, tb), j2 = TokenJaccard(tb, ta);
    EXPECT_DOUBLE_EQ(j1, j2);
    EXPECT_GE(j1, 0.0);
    EXPECT_LE(j1, 1.0);
    EXPECT_DOUBLE_EQ(TokenJaccard(ta, ta), ta.empty() ? 0.0 : 1.0);

    double e1 = EditSimilarity(a, b), e2 = EditSimilarity(b, a);
    EXPECT_DOUBLE_EQ(e1, e2);
    EXPECT_GE(e1, 0.0);
    EXPECT_LE(e1, 1.0);
    EXPECT_DOUBLE_EQ(EditSimilarity(a, a), 1.0);

    double w1 = JaroWinkler(a, b), w2 = JaroWinkler(b, a);
    EXPECT_DOUBLE_EQ(w1, w2);
    EXPECT_GE(w1, 0.0);
    EXPECT_LE(w1, 1.0);
    EXPECT_DOUBLE_EQ(JaroWinkler(a, a), 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimilarityPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace autobi
