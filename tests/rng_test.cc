#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace autobi {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextBelowCoversAllValues) {
  Rng rng(4);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBelow(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleUnitInterval) {
  Rng rng(6);
  double sum = 0;
  for (int i = 0; i < 5000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 5000.0, 0.5, 0.03);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(8);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.08);
}

TEST(RngTest, ZipfFavorsSmallIndices) {
  Rng rng(9);
  size_t first_bucket = 0;
  for (int i = 0; i < 2000; ++i) {
    if (rng.NextZipf(100, 1.0) == 0) ++first_bucket;
  }
  // Index 0 should get far more than the uniform 1/100 share.
  EXPECT_GT(first_bucket, 200u);
}

TEST(RngTest, ZipfStaysInRange) {
  Rng rng(10);
  for (int i = 0; i < 500; ++i) {
    EXPECT_LT(rng.NextZipf(7, 0.8), 7u);
  }
}

TEST(RngTest, WeightedSamplingRespectsWeights) {
  Rng rng(11);
  std::vector<double> weights = {1.0, 0.0, 9.0};
  size_t counts[3] = {0, 0, 0};
  for (int i = 0; i < 5000; ++i) ++counts[rng.NextWeighted(weights)];
  EXPECT_EQ(counts[1], 0u);
  EXPECT_GT(counts[2], counts[0] * 5);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(12);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(13);
  Rng child = a.Fork();
  EXPECT_NE(a.Next(), child.Next());
}

}  // namespace
}  // namespace autobi
