// Reproduces Tables 7 and 8: edge-level quality "F1 (P,R)" and case-level
// precision, bucketized by the number of input tables, plus the case-type
// statistics row (star/snowflake/constellation/other counts per bucket).

#include <cstdio>

#include "bench/bench_common.h"
#include "common/strings.h"
#include "eval/harness.h"
#include "eval/report.h"

int main() {
  using namespace autobi;
  using namespace autobi::bench;

  LocalModel model = GetTrainedModel();
  RealBenchmark real = GetRealBenchmark();
  auto methods = StandardMethods(&model);

  // Bucket membership.
  std::vector<std::vector<size_t>> bucket_cases(kNumBuckets);
  for (size_t i = 0; i < real.cases.size(); ++i) {
    bucket_cases[size_t(real.bucket_of[i])].push_back(i);
  }

  std::vector<std::string> header = {"Method"};
  for (int b = 0; b < kNumBuckets; ++b) header.push_back(BucketLabel(b));

  // Case-type statistics (ST, SN, C, O) per bucket.
  std::printf("=== Table 7: edge-level quality by #tables, reported as "
              "\"F1 (P,R)\" ===\n");
  TablePrinter t7(header);
  {
    std::vector<std::string> stats_row = {"(ST,SN,C,O)"};
    for (int b = 0; b < kNumBuckets; ++b) {
      int counts[4] = {0, 0, 0, 0};
      for (size_t i : bucket_cases[size_t(b)]) {
        ++counts[int(real.cases[i].schema_type)];
      }
      stats_row.push_back(StrFormat("(%d,%d,%d,%d)", counts[0], counts[1],
                                    counts[2], counts[3]));
    }
    t7.AddRow(stats_row);
    t7.AddSeparator();
  }

  TablePrinter t8(header);

  for (const auto& method : methods) {
    std::fprintf(stderr, "[table7/8] running %s...\n",
                 method->name().c_str());
    MethodResults results = RunMethod(*method, real.cases);
    std::vector<std::string> row7 = {method->name()};
    std::vector<std::string> row8 = {method->name()};
    for (int b = 0; b < kNumBuckets; ++b) {
      AggregateMetrics q = QualityOnSubset(results, bucket_cases[size_t(b)]);
      row7.push_back(StrFormat("%.2f (%.2f,%.2f)", q.f1, q.precision,
                               q.recall));
      row8.push_back(Fmt3(q.case_precision));
    }
    t7.AddRow(row7);
    t8.AddRow(row8);
  }
  t7.Print();

  std::printf("\n=== Table 8: case-level precision by #tables ===\n");
  t8.Print();
  std::printf("\nPaper reference (Table 7, Auto-BI F1): 0.97 at 4 tables "
              "declining to 0.79 at 21+; precision stays >= 0.94 across "
              "buckets. (Table 8, Auto-BI-P case precision): 1.00 at 4 "
              "tables to 0.67 at 21+.\n");
  return 0;
}
