// Reproduces Figure 6: the latency distribution of the k-MCA-CC solve
// (Algorithm 3) alone, across the REAL benchmark.

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "common/strings.h"
#include "common/stats_util.h"
#include "eval/report.h"

int main() {
  using namespace autobi;
  using namespace autobi::bench;

  LocalModel model = GetTrainedModel();
  RealBenchmark real = GetRealBenchmark();

  AutoBi auto_bi(&model, AutoBiOptions{});
  std::vector<double> latencies;
  std::vector<std::pair<double, size_t>> worst;  // (seconds, #tables).
  for (const BiCase& bi_case : real.cases) {
    AutoBiResult r = auto_bi.Predict(bi_case.tables);
    latencies.push_back(r.kmca_cc_seconds);
    worst.emplace_back(r.kmca_cc_seconds, bi_case.tables.size());
  }
  std::sort(worst.rbegin(), worst.rend());

  std::printf("=== Figure 6: k-MCA-CC solve latency distribution "
              "(%zu REAL cases) ===\n",
              latencies.size());
  TablePrinter t({"Statistic", "Seconds"});
  t.AddRow({"mean", FmtSeconds(Mean(latencies))});
  t.AddRow({"50-th percentile", FmtSeconds(Percentile(latencies, 50))});
  t.AddRow({"90-th percentile", FmtSeconds(Percentile(latencies, 90))});
  t.AddRow({"95-th percentile", FmtSeconds(Percentile(latencies, 95))});
  t.AddRow({"max", FmtSeconds(Percentile(latencies, 100))});
  t.Print();

  std::printf("\nSlowest cases (latency @ #tables): ");
  for (size_t i = 0; i < std::min<size_t>(5, worst.size()); ++i) {
    std::printf("%s@%zu ", FmtSeconds(worst[i].first).c_str(),
                worst[i].second);
  }
  std::printf("\n\nPaper reference: mean 0.11s, median 0.02s; 90/95-th "
              "percentile 0.06/0.17s; max 11s on an 88-table case.\n");
  return 0;
}
