// Reproduces Figure 6: the latency distribution of the k-MCA-CC solve
// (Algorithm 3) alone, across the REAL benchmark — plus, since PR 4, a
// before/after solver comparison on adversarial conflict-dense instances
// (frozen serial DFS vs the wave-parallel workspace solver at 1 and 8
// threads, with a bit-identical-results assertion across thread counts).
//
// `--json` prints only the machine-readable solver comparison (consumed by
// scripts/bench_smoke.sh for BENCH_pr4.json).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/stats_util.h"
#include "eval/report.h"
#include "graph/kmca_cc.h"

namespace autobi {
namespace {

// Adversarial conflict-dense schema: `hubs` fact-like tables, each with one
// FK-once group fanning out to `fan` dimensions (every group member beats
// the virtual-edge penalty, so the whole group survives the relaxation and
// must be branched on), a costlier parallel alternative per dimension, and a
// `chain`-deep snowflake tail under every dimension. The tails keep each
// relaxation realistically sized, so the per-node rebuild cost the PR 4
// solver eliminates actually shows up in wall-clock.
JoinGraph AdversarialConflictGraph(int hubs, int fan, int chain, Rng& rng) {
  int n = hubs + hubs * fan * (1 + chain);
  JoinGraph g(n);
  int next = hubs + hubs * fan;
  for (int h = 0; h < hubs; ++h) {
    for (int f = 0; f < fan; ++f) {
      int dst = hubs + h * fan + f;
      g.AddEdge(h, dst, {0}, {0}, rng.NextDouble(0.55, 0.95));
      g.AddEdge(h, dst, {0}, {1}, rng.NextDouble(0.51, 0.54));
      int prev = dst;
      for (int c = 0; c < chain; ++c) {
        int v = next++;
        g.AddEdge(prev, v, {c + 2}, {0}, rng.NextDouble(0.6, 0.95));
        prev = v;
      }
    }
  }
  return g;
}

double MinSolveSeconds(const JoinGraph& g, bool legacy, int threads,
                       int reps, KmcaCcStats* stats, KmcaResult* result) {
  KmcaCcOptions opt;
  opt.threads = threads;
  double best = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    *result = legacy ? SolveKmcaCcLegacy(g, opt, stats)
                     : SolveKmcaCc(g, opt, stats);
    auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

struct SolverRow {
  const char* name;
  int hubs, fan, chain, vertices;
  double legacy_s, new1_s, new8_s;
  long legacy_calls, new_calls, memo_hits, waves;
};

std::vector<SolverRow> RunSolverComparison() {
  struct Shape {
    const char* name;
    int hubs, fan, chain;
  };
  const Shape shapes[] = {
      {"dense-small", 3, 6, 0},
      {"dense-snowflake", 3, 6, 10},
      {"wide-snowflake", 4, 5, 20},
  };
  std::vector<SolverRow> rows;
  for (const Shape& s : shapes) {
    Rng rng(21);
    JoinGraph g = AdversarialConflictGraph(s.hubs, s.fan, s.chain, rng);
    SolverRow row{};
    row.name = s.name;
    row.hubs = s.hubs;
    row.fan = s.fan;
    row.chain = s.chain;
    row.vertices = g.num_vertices();

    KmcaCcStats legacy_stats, new_stats, new8_stats;
    KmcaResult legacy_r, new1_r, new8_r;
    row.legacy_s =
        MinSolveSeconds(g, /*legacy=*/true, 1, 5, &legacy_stats, &legacy_r);
    row.new1_s =
        MinSolveSeconds(g, /*legacy=*/false, 1, 5, &new_stats, &new1_r);
    row.new8_s =
        MinSolveSeconds(g, /*legacy=*/false, 8, 5, &new8_stats, &new8_r);
    row.legacy_calls = legacy_stats.one_mca_calls;
    row.new_calls = new_stats.one_mca_calls;
    row.memo_hits = new_stats.memo_hits;
    row.waves = new_stats.waves;

    // Hard determinism assertion: the wave-parallel solver must be
    // bit-identical across thread counts, and exact-cost-equal to the
    // frozen reference.
    if (new1_r.edge_ids != new8_r.edge_ids || new1_r.cost != new8_r.cost ||
        new_stats.one_mca_calls != new8_stats.one_mca_calls ||
        new_stats.nodes != new8_stats.nodes ||
        new_stats.pruned != new8_stats.pruned ||
        new_stats.memo_hits != new8_stats.memo_hits) {
      std::fprintf(stderr,
                   "FATAL: solver results differ between 1 and 8 threads on "
                   "%s\n",
                   s.name);
      std::exit(1);
    }
    if (new1_r.cost != legacy_r.cost) {
      std::fprintf(stderr,
                   "FATAL: new solver cost %.17g != legacy cost %.17g on "
                   "%s\n",
                   new1_r.cost, legacy_r.cost, s.name);
      std::exit(1);
    }
    rows.push_back(row);
  }
  return rows;
}

void PrintSolverJson(const std::vector<SolverRow>& rows) {
  std::printf("{\n  \"host_cpus\": %u,\n",
              std::thread::hardware_concurrency());
  std::printf("  \"adversarial\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const SolverRow& r = rows[i];
    std::printf(
        "    {\"name\": \"%s\", \"vertices\": %d, "
        "\"legacy_seconds\": %.6g, \"new_1t_seconds\": %.6g, "
        "\"new_8t_seconds\": %.6g, \"speedup_1t\": %.3g, "
        "\"legacy_one_mca_calls\": %ld, \"new_one_mca_calls\": %ld, "
        "\"memo_hits\": %ld, \"waves\": %ld}%s\n",
        r.name, r.vertices, r.legacy_s, r.new1_s, r.new8_s,
        r.legacy_s / r.new1_s, r.legacy_calls, r.new_calls, r.memo_hits,
        r.waves, i + 1 < rows.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
}

}  // namespace
}  // namespace autobi

int main(int argc, char** argv) {
  using namespace autobi;
  using namespace autobi::bench;

  const bool json_only = argc > 1 && std::strcmp(argv[1], "--json") == 0;

  std::vector<SolverRow> solver_rows = RunSolverComparison();
  if (json_only) {
    PrintSolverJson(solver_rows);
    return 0;
  }

  LocalModel model = GetTrainedModel();
  RealBenchmark real = GetRealBenchmark();

  AutoBi auto_bi(&model, AutoBiOptions{});
  std::vector<double> latencies;
  std::vector<std::pair<double, size_t>> worst;  // (seconds, #tables).
  for (const BiCase& bi_case : real.cases) {
    AutoBiResult r = auto_bi.Predict(bi_case.tables);
    latencies.push_back(r.kmca_cc_seconds);
    worst.emplace_back(r.kmca_cc_seconds, bi_case.tables.size());
  }
  std::sort(worst.rbegin(), worst.rend());

  std::printf("=== Figure 6: k-MCA-CC solve latency distribution "
              "(%zu REAL cases) ===\n",
              latencies.size());
  TablePrinter t({"Statistic", "Seconds"});
  t.AddRow({"mean", FmtSeconds(Mean(latencies))});
  t.AddRow({"50-th percentile", FmtSeconds(Percentile(latencies, 50))});
  t.AddRow({"90-th percentile", FmtSeconds(Percentile(latencies, 90))});
  t.AddRow({"95-th percentile", FmtSeconds(Percentile(latencies, 95))});
  t.AddRow({"max", FmtSeconds(Percentile(latencies, 100))});
  t.Print();

  std::printf("\nSlowest cases (latency @ #tables): ");
  for (size_t i = 0; i < std::min<size_t>(5, worst.size()); ++i) {
    std::printf("%s@%zu ", FmtSeconds(worst[i].first).c_str(),
                worst[i].second);
  }
  std::printf("\n\nPaper reference: mean 0.11s, median 0.02s; 90/95-th "
              "percentile 0.06/0.17s; max 11s on an 88-table case.\n");

  std::printf("\n=== PR 4 solver comparison: adversarial conflict-dense "
              "instances ===\n");
  TablePrinter st({"Instance", "Vertices", "Legacy", "New (1T)", "New (8T)",
                   "Speedup 1T", "1-MCA calls (legacy -> new)", "Memo hits"});
  for (const SolverRow& r : solver_rows) {
    st.AddRow({r.name, StrFormat("%d", r.vertices), FmtSeconds(r.legacy_s),
               FmtSeconds(r.new1_s), FmtSeconds(r.new8_s),
               StrFormat("%.2fx", r.legacy_s / r.new1_s),
               StrFormat("%ld -> %ld", r.legacy_calls, r.new_calls),
               StrFormat("%ld", r.memo_hits)});
  }
  st.Print();
  std::printf("\nResults verified bit-identical at 1 and 8 threads; costs "
              "exactly match the frozen serial reference. The 8-thread "
              "column only separates from 1T on multi-core hosts (this run: "
              "%u hardware threads).\n",
              std::thread::hardware_concurrency());
  return 0;
}
