// Google-benchmark microbenchmarks for the fuzz harness: instance
// generation, the brute-force oracles, and one full differential case.
// Tracks the cost of the per-case cross-check so campaign throughput
// regressions (cases/sec of autobi_fuzz) show up in the micro trajectory.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "fuzz/differential.h"
#include "fuzz/generator.h"
#include "graph/brute_force.h"
#include "graph/kmca_cc.h"

namespace autobi {
namespace {

void BM_GenJoinGraph(benchmark::State& state) {
  JoinGraphGenOptions opt;
  opt.max_edges = int(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    JoinGraphInstance inst = GenJoinGraph(opt, rng);
    benchmark::DoNotOptimize(inst.graph.num_edges());
  }
}
BENCHMARK(BM_GenJoinGraph)->Arg(12)->Arg(18);

void BM_BruteForceKmcaCc(benchmark::State& state) {
  // Fixed instance at the edge count under test; the oracle is O(2^m).
  JoinGraphGenOptions opt;
  opt.min_edges = int(state.range(0));
  opt.max_edges = int(state.range(0));
  opt.edge_skew = 1.0;
  Rng rng(7);
  JoinGraphInstance inst = GenJoinGraph(opt, rng);
  for (auto _ : state) {
    KmcaResult r = BruteForceKmcaCc(inst.graph, inst.penalty_weight);
    benchmark::DoNotOptimize(r.cost);
  }
}
BENCHMARK(BM_BruteForceKmcaCc)->Arg(12)->Arg(16)->Arg(18);

void BM_DifferentialCase(benchmark::State& state) {
  // One full fuzz case: generate + every differential cross-check.
  JoinGraphGenOptions opt;
  opt.max_edges = int(state.range(0));
  Rng rng(3);
  for (auto _ : state) {
    JoinGraphInstance inst = GenJoinGraph(opt, rng);
    CheckResult r =
        CheckJoinGraphDifferential(inst.graph, inst.penalty_weight);
    benchmark::DoNotOptimize(r.ok);
  }
}
BENCHMARK(BM_DifferentialCase)->Arg(12)->Arg(18);

void BM_SolveKmcaCcAdversarial(benchmark::State& state) {
  // Conflict-dense, tie-heavy instance: worst case for branch-and-bound.
  JoinGraphGenOptions opt;
  opt.min_vertices = 6;
  opt.max_vertices = 8;
  opt.min_edges = 20;
  opt.max_edges = 24;
  opt.conflict_density = 0.6;
  opt.tie_prob = 0.7;
  opt.edge_skew = 1.0;
  Rng rng(11);
  JoinGraphInstance inst = GenJoinGraph(opt, rng);
  for (auto _ : state) {
    KmcaCcOptions cc;
    cc.penalty_weight = inst.penalty_weight;
    KmcaResult r = SolveKmcaCc(inst.graph, cc, nullptr);
    benchmark::DoNotOptimize(r.cost);
  }
}
BENCHMARK(BM_SolveKmcaCcAdversarial);

}  // namespace
}  // namespace autobi

BENCHMARK_MAIN();
