// Reproduces Table 10 (Appendix C): quality comparison including the
// enhanced baselines (MC-FK+LC, Fast-FK+LC, HoPF+LC) and the LC-threshold
// method, on REAL and the 4 TPC benchmarks.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/strings.h"
#include "eval/harness.h"
#include "eval/report.h"

int main() {
  using namespace autobi;
  using namespace autobi::bench;

  LocalModel model = GetTrainedModel();
  RealBenchmark real = GetRealBenchmark();
  std::vector<BiCase> tpc = TpcBenchmarks();

  auto methods = StandardMethods(&model);
  auto enhanced = EnhancedMethods(&model);
  for (auto& m : enhanced) methods.push_back(std::move(m));

  std::printf("=== Table 10: quality incl. enhanced baselines (%zu-case "
              "REAL + 4 TPC) ===\n",
              real.cases.size());
  TablePrinter t({"Method", "REAL P_edge", "REAL R_edge", "REAL F_edge",
                  "REAL P_case", "TPC-H P/R/F", "TPC-DS P/R/F",
                  "TPC-C P/R/F", "TPC-E P/R/F"});
  for (const auto& method : methods) {
    std::fprintf(stderr, "[table10] running %s...\n",
                 method->name().c_str());
    AggregateMetrics q = RunMethod(*method, real.cases).Quality();
    std::vector<std::string> row = {method->name(), Fmt3(q.precision),
                                    Fmt3(q.recall), Fmt3(q.f1),
                                    Fmt3(q.case_precision)};
    for (const BiCase& bi_case : tpc) {
      AggregateMetrics tq = RunMethod(*method, {bi_case}).Quality();
      row.push_back(
          StrFormat("%.2f/%.2f/%.2f", tq.precision, tq.recall, tq.f1));
    }
    t.AddRow(row);
  }
  t.Print();
  std::printf("\nPaper reference (REAL): MC-FK+LC 0.903/0.872/0.887/0.636; "
              "Fast-FK+LC 0.898/0.879/0.883/0.631; HoPF+LC 0.738/0.765/"
              "0.726/0.524; LC 0.885/0.864/0.87/0.631. Auto-BI still leads, "
              "especially in case-level precision (0.853).\n");
  return 0;
}
