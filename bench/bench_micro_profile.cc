// Micro-benchmark of the profiling layer (profile/column_profile.h):
//
//   1. ProfileColumn cost: hash-first columnar kernel (table/key_view.h +
//      radix-sorted distinct aggregation) vs the legacy per-cell string-map
//      kernel (ProfileColumnLegacy), on a 100k-row string column.
//   2. Exact unary Containment: legacy string-map implementation (probing
//      prebuilt maps, i.e. only the cost the historical kernel paid per
//      probe) vs the sorted-hash merge, on high-cardinality string columns
//      and on the skewed small-FK-in-big-PK shape where the merge switches
//      to a galloping search. The skewed shape is asserted to never lose to
//      the string map (>= 1.0x) — a regression gate, not just a report.
//   3. KMV pre-screen hit-rate and DiscoverInds end-to-end with the screen
//      on vs off, on REAL-style synthetic cases.
//   4. TPC-H via the SQL-DDL path (synth/tpch_ddl.h): full-table profiling
//      and UCC discovery, hash-first vs legacy kernels, on a recognizable
//      8-table snowflake with a composite key.
//
// Usage: bench_micro_profile [--json]
//   --json   emit a single machine-readable JSON object on stdout (consumed
//            by scripts/bench_smoke.sh, accumulated as BENCH_*.json).

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "common/timer.h"
#include "profile/column_profile.h"
#include "profile/ind.h"
#include "profile/ucc.h"
#include "synth/corpus.h"
#include "synth/tpch_ddl.h"
#include "table/key_view.h"
#include "table/table.h"

namespace autobi {
namespace {

Column StringColumn(const char* name, size_t rows, size_t distinct,
                    const char* prefix, uint64_t salt) {
  Column col(name, ValueType::kString);
  for (size_t r = 0; r < rows; ++r) {
    // Deterministic pseudo-random pick so duplicates are spread out.
    uint64_t v = (r * 2654435761ULL + salt) % distinct;
    col.AppendString(StrFormat("%s%llu", prefix,
                               static_cast<unsigned long long>(v)));
  }
  return col;
}

// Accumulator that keeps benchmarked results observable (defeats dead-code
// elimination); checked at the end of main.
double g_sink = 0.0;

// Times `fn` over `iters` calls; returns microseconds per call.
template <typename Fn>
double TimeUs(size_t iters, const Fn& fn) {
  double sink = 0.0;
  Timer t;
  for (size_t i = 0; i < iters; ++i) sink += fn();
  double us = t.Seconds() * 1e6 / static_cast<double>(iters);
  g_sink += sink;
  return us;
}

struct Result {
  std::string name;
  double value;
  std::string unit;
};

}  // namespace
}  // namespace autobi

int main(int argc, char** argv) {
  using namespace autobi;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }
  std::vector<Result> results;
  auto add = [&](const std::string& name, double value,
                 const std::string& unit) {
    results.push_back({name, value, unit});
    if (!json) std::printf("%-42s %12.3f %s\n", name.c_str(), value,
                           unit.c_str());
  };

  // --- 1. Profiling kernel, old vs new, on a high-cardinality string column.
  constexpr size_t kRows = 100000;
  constexpr size_t kDistinct = 40000;
  Column fk = StringColumn("fk", kRows, kDistinct, "cust_", 17);
  Column pk = StringColumn("pk", kDistinct, kDistinct, "cust_", 0);

  Timer prof_timer;
  ColumnProfile pfk = ProfileColumn(fk);
  double profile_ms = prof_timer.Millis();
  ColumnProfile ppk = ProfileColumn(pk);
  add("profile_column_100k_rows", profile_ms, "ms");

  Timer legacy_prof_timer;
  ColumnProfile pfk_legacy = ProfileColumnLegacy(fk);
  double profile_legacy_ms = legacy_prof_timer.Millis();
  add("profile_column_100k_rows_legacy", profile_legacy_ms, "ms");
  add("profile_column_speedup", profile_legacy_ms / profile_ms, "x");
  if (pfk_legacy.num_distinct != pfk.num_distinct ||
      pfk_legacy.distinct_hashes != pfk.distinct_hashes ||
      pfk_legacy.distinct_pool != pfk.distinct_pool) {
    std::fprintf(stderr,
                 "FATAL: hash-first profile diverged from the legacy kernel\n");
    return 1;
  }

  // --- 2. Unary containment kernels. The legacy timings probe *prebuilt*
  // string maps, matching what the historical kernel paid per probe (its
  // maps lived inside the profiles).
  DistinctKeyMap map_fk = BuildDistinctKeyMap(pfk);
  DistinctKeyMap map_pk = BuildDistinctKeyMap(ppk);
  constexpr size_t kIters = 20;
  double old_us = TimeUs(kIters, [&] {
    return ContainmentViaStringMap(map_fk, pfk.non_null_count, map_pk);
  });
  double new_us = TimeUs(kIters, [&] { return Containment(pfk, ppk); });
  add("containment_string_map_40k_distinct", old_us, "us");
  add("containment_hash_merge_40k_distinct", new_us, "us");
  add("containment_speedup_40k_distinct", old_us / new_us, "x");

  // Skewed shape: small FK distinct set probing a big key column (the merge
  // switches to a galloping search over the big side).
  Column small_fk = StringColumn("sfk", 20000, 500, "cust_", 23);
  ColumnProfile psmall = ProfileColumn(small_fk);
  DistinctKeyMap map_small = BuildDistinctKeyMap(psmall);
  double old_skew_us = TimeUs(kIters * 10, [&] {
    return ContainmentViaStringMap(map_small, psmall.non_null_count, map_pk);
  });
  double new_skew_us = TimeUs(kIters * 10, [&] {
    return Containment(psmall, ppk);
  });
  double skew_speedup = old_skew_us / new_skew_us;
  add("containment_string_map_skewed", old_skew_us, "us");
  add("containment_hash_merge_skewed", new_skew_us, "us");
  add("containment_speedup_skewed", skew_speedup, "x");
  if (skew_speedup < 1.0) {
    std::fprintf(stderr,
                 "FATAL: skewed containment regressed vs the string map "
                 "(%.3fx < 1.0x)\n",
                 skew_speedup);
    return 1;
  }

  // --- 3. KMV screen hit-rate + DiscoverInds end-to-end on REAL-style
  // cases (serial, so the kernel change is what's measured).
  CorpusOptions copt;
  copt.seed = 4242;
  copt.cases_per_bucket = 2;
  RealBenchmark real = BuildRealBenchmark(copt);
  std::vector<std::vector<TableProfile>> profiles(real.cases.size());
  std::vector<std::vector<std::vector<Ucc>>> uccs(real.cases.size());
  for (size_t i = 0; i < real.cases.size(); ++i) {
    profiles[i] = ProfileTables(real.cases[i].tables);
    for (size_t t = 0; t < real.cases[i].tables.size(); ++t) {
      uccs[i].push_back(
          DiscoverUccs(real.cases[i].tables[t], profiles[i][t]));
    }
  }
  // Old vs new candidate-generation kernel end-to-end: evaluate exactly the
  // column pairs the unary IND scan evaluates (same pre-screens), with the
  // legacy string-map kernel (prebuilt maps, as the old profiles carried)
  // vs the hash-merge kernel.
  std::vector<std::vector<std::vector<DistinctKeyMap>>> maps(
      real.cases.size());
  for (size_t i = 0; i < real.cases.size(); ++i) {
    maps[i].resize(profiles[i].size());
    for (size_t t = 0; t < profiles[i].size(); ++t) {
      for (const ColumnProfile& p : profiles[i][t].columns) {
        maps[i][t].push_back(BuildDistinctKeyMap(p));
      }
    }
  }
  IndOptions defaults;
  auto unary_kernel_ms = [&](bool legacy) {
    double sum = 0.0;
    Timer t;
    for (size_t i = 0; i < real.cases.size(); ++i) {
      const auto& tp = profiles[i];
      for (size_t ti = 0; ti < tp.size(); ++ti) {
        for (size_t tj = 0; tj < tp.size(); ++tj) {
          if (ti == tj) continue;
          for (size_t a = 0; a < tp[ti].columns.size(); ++a) {
            const ColumnProfile& pa = tp[ti].columns[a];
            if (pa.num_distinct < defaults.min_distinct) continue;
            for (size_t b = 0; b < tp[tj].columns.size(); ++b) {
              const ColumnProfile& pb = tp[tj].columns[b];
              if (pb.non_null_count == 0 ||
                  pb.distinct_ratio <
                      defaults.min_referenced_distinct_ratio) {
                continue;
              }
              sum += legacy ? ContainmentViaStringMap(maps[i][ti][a],
                                                      pa.non_null_count,
                                                      maps[i][tj][b])
                            : Containment(pa, pb);
            }
          }
        }
      }
    }
    g_sink += sum;
    return t.Millis();
  };
  double kernel_old_ms = unary_kernel_ms(/*legacy=*/true);
  double kernel_new_ms = unary_kernel_ms(/*legacy=*/false);
  add("unary_kernel_e2e_string_map", kernel_old_ms, "ms");
  add("unary_kernel_e2e_hash_merge", kernel_new_ms, "ms");
  add("unary_kernel_e2e_speedup", kernel_old_ms / kernel_new_ms, "x");

  IndStats on_stats;
  IndStats off_stats;
  double on_ms = 0.0;
  double off_ms = 0.0;
  size_t inds_on = 0;
  size_t inds_off = 0;
  for (size_t i = 0; i < real.cases.size(); ++i) {
    IndOptions on;
    on.threads = 1;
    IndStats s;
    Timer t;
    inds_on += DiscoverInds(real.cases[i].tables, profiles[i], uccs[i], on,
                            &s).size();
    on_ms += t.Millis();
    on_stats.Add(s);

    IndOptions off;
    off.threads = 1;
    off.blocking.enabled = false;
    Timer t2;
    inds_off += DiscoverInds(real.cases[i].tables, profiles[i], uccs[i], off,
                             &s).size();
    off_ms += t2.Millis();
    off_stats.Add(s);
  }
  if (inds_on != inds_off) {
    std::fprintf(stderr,
                 "FATAL: blocking changed the IND count (%zu vs %zu)\n",
                 inds_on, inds_off);
    return 1;
  }
  add("real_cases", double(real.cases.size()), "cases");
  add("discover_inds_total_inds", double(inds_on), "inds");
  add("blocking_prune_rate", on_stats.blocking.PruningRate(), "frac");
  add("blocking_table_pairs_active",
      double(on_stats.blocking.table_pairs_active), "pairs");
  add("discover_inds_blocking_on", on_ms, "ms");
  add("discover_inds_blocking_off", off_ms, "ms");
  add("discover_inds_blocking_speedup", off_ms / on_ms, "x");
  add("composite_sets_built", double(on_stats.composite_sets_built), "sets");
  add("composite_budget_truncations",
      double(on_stats.composite_budget_truncations), "pairs");

  // --- 4. TPC-H through the SQL-DDL ingestion path: profile + UCC kernels
  // on a real multi-table snowflake (wide lineitem, composite partsupp key).
  Rng tpch_rng(7);
  StatusOr<BiCase> tpch = GenerateTpchFromDdl(/*scale=*/2.0, tpch_rng);
  if (!tpch.ok()) {
    std::fprintf(stderr, "FATAL: TPC-H DDL generation failed: %s\n",
                 tpch.status().message().c_str());
    return 1;
  }
  size_t tpch_rows = 0;
  for (const Table& t : tpch->tables) tpch_rows += t.num_rows();
  add("tpch_ddl_tables", double(tpch->tables.size()), "tables");
  add("tpch_ddl_rows", double(tpch_rows), "rows");

  Timer tpch_prof_timer;
  std::vector<TableProfile> tpch_profiles =
      ProfileTables(tpch->tables, /*max_sample=*/512, /*threads=*/1);
  double tpch_prof_ms = tpch_prof_timer.Millis();
  Timer tpch_prof_legacy_timer;
  for (const Table& t : tpch->tables) {
    for (size_t c = 0; c < t.num_columns(); ++c) {
      g_sink += double(ProfileColumnLegacy(t.column(c)).num_distinct);
    }
  }
  double tpch_prof_legacy_ms = tpch_prof_legacy_timer.Millis();
  add("tpch_profile_ms", tpch_prof_ms, "ms");
  add("tpch_profile_legacy_ms", tpch_prof_legacy_ms, "ms");
  add("tpch_profile_speedup", tpch_prof_legacy_ms / tpch_prof_ms, "x");

  size_t tpch_uccs_new = 0;
  Timer tpch_ucc_timer;
  for (size_t t = 0; t < tpch->tables.size(); ++t) {
    TableKeyView view(tpch->tables[t]);
    tpch_uccs_new +=
        DiscoverUccs(tpch->tables[t], tpch_profiles[t], {}, &view).size();
  }
  double tpch_ucc_ms = tpch_ucc_timer.Millis();
  size_t tpch_uccs_legacy = 0;
  UccOptions legacy_opt;
  legacy_opt.legacy_kernel = true;
  Timer tpch_ucc_legacy_timer;
  for (size_t t = 0; t < tpch->tables.size(); ++t) {
    tpch_uccs_legacy +=
        DiscoverUccs(tpch->tables[t], tpch_profiles[t], legacy_opt).size();
  }
  double tpch_ucc_legacy_ms = tpch_ucc_legacy_timer.Millis();
  if (tpch_uccs_new != tpch_uccs_legacy) {
    std::fprintf(stderr,
                 "FATAL: TPC-H UCC kernels disagree (%zu vs %zu legacy)\n",
                 tpch_uccs_new, tpch_uccs_legacy);
    return 1;
  }
  add("tpch_uccs", double(tpch_uccs_new), "uccs");
  add("tpch_ucc_ms", tpch_ucc_ms, "ms");
  add("tpch_ucc_legacy_ms", tpch_ucc_legacy_ms, "ms");
  add("tpch_ucc_speedup", tpch_ucc_legacy_ms / tpch_ucc_ms, "x");

  if (json) {
    std::printf("{\n  \"bench\": \"bench_micro_profile\",\n");
    std::printf("  \"config\": {\"rows\": %zu, \"distinct\": %zu, "
                "\"cases_per_bucket\": %zu},\n",
                kRows, kDistinct, copt.cases_per_bucket);
    std::printf("  \"results\": {\n");
    for (size_t i = 0; i < results.size(); ++i) {
      std::printf("    \"%s\": {\"value\": %.6g, \"unit\": \"%s\"}%s\n",
                  results[i].name.c_str(), results[i].value,
                  results[i].unit.c_str(),
                  i + 1 < results.size() ? "," : "");
    }
    std::printf("  }\n}\n");
  }
  // Keep the accumulated kernel outputs observable so nothing above was
  // optimized away (NaN would indicate a broken kernel, too).
  if (!(g_sink == g_sink)) {
    std::fprintf(stderr, "FATAL: kernel produced NaN\n");
    return 1;
  }
  return 0;
}
