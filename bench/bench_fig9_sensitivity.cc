// Reproduces Figure 9: sensitivity of Auto-BI to (a) the k-MCA penalty
// probability p, and (b) the recall-mode threshold τ. Calibrated
// probabilities make 0.5 the natural optimum in both.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/strings.h"
#include "eval/harness.h"
#include "eval/report.h"

int main() {
  using namespace autobi;
  using namespace autobi::bench;

  LocalModel model = GetTrainedModel();
  RealBenchmark real = GetRealBenchmark();
  const double kGrid[] = {0.05, 0.1, 0.2, 0.3, 0.4, 0.5,
                          0.6,  0.7, 0.8, 0.9, 0.95};

  std::printf("=== Figure 9(a): sensitivity to penalty probability p "
              "(τ fixed at 0.5) ===\n");
  // Full-system columns plus precision-mode-only columns: recall mode
  // backfills most of what a large p drops, so p's raw effect is clearest
  // on the backbone.
  TablePrinter ta({"p", "P_edge", "R_edge", "F_edge", "P_case",
                   "P-mode P/R/F"});
  for (double p : kGrid) {
    AutoBiOptions opt;
    opt.penalty_probability = p;
    AutoBiPredictor predictor("Auto-BI", &model, opt);
    AggregateMetrics q = RunMethod(predictor, real.cases).Quality();
    AutoBiOptions popt = opt;
    popt.mode = AutoBiMode::kPrecisionOnly;
    AggregateMetrics qp =
        RunMethod(AutoBiPredictor("Auto-BI-P", &model, popt), real.cases)
            .Quality();
    ta.AddRow({StrFormat("%.2f", p), Fmt3(q.precision), Fmt3(q.recall),
               Fmt3(q.f1), Fmt3(q.case_precision),
               StrFormat("%.2f/%.2f/%.2f", qp.precision, qp.recall, qp.f1)});
  }
  ta.Print();

  std::printf("\n=== Figure 9(b): sensitivity to EMS threshold τ "
              "(p fixed at 0.5) ===\n");
  TablePrinter tb({"tau", "P_edge", "R_edge", "F_edge", "P_case"});
  for (double tau : kGrid) {
    AutoBiOptions opt;
    opt.tau = tau;
    AutoBiPredictor predictor("Auto-BI", &model, opt);
    AggregateMetrics q = RunMethod(predictor, real.cases).Quality();
    tb.AddRow({StrFormat("%.2f", tau), Fmt3(q.precision), Fmt3(q.recall),
               Fmt3(q.f1), Fmt3(q.case_precision)});
  }
  tb.Print();
  std::printf("\nPaper reference: F1 peaks around p = 0.5; τ trades "
              "precision for recall with the best F1 near τ = 0.5.\n");
  return 0;
}
