// Reproduces Figure 5: (a) end-to-end latency percentiles per method on the
// REAL benchmark; (b) per-stage latency breakdown (UCC / IND /
// Local-Inference / Global-Predict).

#include <cstdio>

#include "bench/bench_common.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/stats_util.h"
#include "eval/harness.h"
#include "eval/report.h"
#include "synth/tpch_ddl.h"

int main() {
  using namespace autobi;
  using namespace autobi::bench;

  LocalModel model = GetTrainedModel();
  RealBenchmark real = GetRealBenchmark();
  auto methods = StandardMethods(&model);

  std::printf("worker threads: %d of %d hardware (override with "
              "AUTOBI_THREADS; per-case latencies use the parallel "
              "pipeline, speedup = serial time / these times)\n",
              ResolveThreads(0), HardwareThreads());
  std::printf("=== Figure 5(a): end-to-end latency percentiles (seconds) "
              "on the %zu-case REAL benchmark ===\n",
              real.cases.size());
  TablePrinter ta({"Method", "50-th p%", "90-th p%", "95-th p%", "Average"});
  std::vector<MethodResults> all_results;
  for (const auto& method : methods) {
    std::fprintf(stderr, "[fig5] running %s...\n", method->name().c_str());
    MethodResults r = RunMethod(*method, real.cases);
    std::vector<double> totals = r.TotalSeconds();
    ta.AddRow({method->name(), FmtSeconds(Percentile(totals, 50)),
               FmtSeconds(Percentile(totals, 90)),
               FmtSeconds(Percentile(totals, 95)),
               FmtSeconds(Mean(totals))});
    all_results.push_back(std::move(r));
  }
  ta.Print();

  std::printf("\n=== Figure 5(b): latency breakdown (mean seconds per "
              "stage) ===\n");
  TablePrinter tb({"Method", "UCC", "IND", "Local-Inference",
                   "Global-Predict", "Threads"});
  for (const MethodResults& r : all_results) {
    double ucc = 0, ind = 0, local = 0, global = 0;
    int threads = 0;
    for (const CaseResult& cr : r.cases) {
      ucc += cr.timing.ucc;
      ind += cr.timing.ind;
      local += cr.timing.local_inference;
      global += cr.timing.global_predict;
      if (cr.timing.threads > threads) threads = cr.timing.threads;
    }
    double n = double(r.cases.size());
    tb.AddRow({r.method, FmtSeconds(ucc / n), FmtSeconds(ind / n),
               FmtSeconds(local / n), FmtSeconds(global / n),
               threads > 0 ? StrFormat("%d", threads) : "-"});
  }
  tb.Print();

  // Per-stage breakdown on TPC-H ingested through the SQL-DDL path
  // (synth/tpch_ddl.h): a recognizable 8-table snowflake with a wide fact
  // table and a composite key, complementing the synthetic REAL cases above.
  // (Printed after the Figure 5(b) table so its parsers are unaffected.)
  Rng tpch_rng(11);
  StatusOr<BiCase> tpch = GenerateTpchFromDdl(TpcScale(), tpch_rng);
  if (tpch.ok()) {
    std::printf("\n=== TPC-H via SQL DDL (scale %.2f, %zu tables): "
                "per-stage latency ===\n",
                TpcScale(), tpch->tables.size());
    TablePrinter tc({"Method", "UCC", "IND", "Local-Inference",
                     "Global-Predict"});
    std::vector<BiCase> tpch_cases;
    tpch_cases.push_back(std::move(*tpch));
    for (const auto& method : methods) {
      if (method->name() != "Auto-BI") continue;
      MethodResults r = RunMethod(*method, tpch_cases);
      const CaseResult& cr = r.cases[0];
      tc.AddRow({method->name(), FmtSeconds(cr.timing.ucc),
                 FmtSeconds(cr.timing.ind),
                 FmtSeconds(cr.timing.local_inference),
                 FmtSeconds(cr.timing.global_predict)});
    }
    tc.Print();
  } else {
    std::fprintf(stderr, "[fig5] TPC-H DDL generation failed: %s\n",
                 tpch.status().message().c_str());
    return 1;
  }

  std::printf("\nPaper reference: Auto-BI-S and Fast-FK fastest (2-3s on "
              "largest cases); Auto-BI 2-3x slower; HoPF slowest. "
              "Local-Inference dominates Auto-BI; Global-Predict (k-MCA) is "
              "cheap.\n");
  return 0;
}
