// Reproduces Figure 5: (a) end-to-end latency percentiles per method on the
// REAL benchmark; (b) per-stage latency breakdown (UCC / IND /
// Local-Inference / Global-Predict).

#include <cstdio>

#include "bench/bench_common.h"
#include "common/parallel.h"
#include "common/strings.h"
#include "common/stats_util.h"
#include "eval/harness.h"
#include "eval/report.h"

int main() {
  using namespace autobi;
  using namespace autobi::bench;

  LocalModel model = GetTrainedModel();
  RealBenchmark real = GetRealBenchmark();
  auto methods = StandardMethods(&model);

  std::printf("worker threads: %d of %d hardware (override with "
              "AUTOBI_THREADS; per-case latencies use the parallel "
              "pipeline, speedup = serial time / these times)\n",
              ResolveThreads(0), HardwareThreads());
  std::printf("=== Figure 5(a): end-to-end latency percentiles (seconds) "
              "on the %zu-case REAL benchmark ===\n",
              real.cases.size());
  TablePrinter ta({"Method", "50-th p%", "90-th p%", "95-th p%", "Average"});
  std::vector<MethodResults> all_results;
  for (const auto& method : methods) {
    std::fprintf(stderr, "[fig5] running %s...\n", method->name().c_str());
    MethodResults r = RunMethod(*method, real.cases);
    std::vector<double> totals = r.TotalSeconds();
    ta.AddRow({method->name(), FmtSeconds(Percentile(totals, 50)),
               FmtSeconds(Percentile(totals, 90)),
               FmtSeconds(Percentile(totals, 95)),
               FmtSeconds(Mean(totals))});
    all_results.push_back(std::move(r));
  }
  ta.Print();

  std::printf("\n=== Figure 5(b): latency breakdown (mean seconds per "
              "stage) ===\n");
  TablePrinter tb({"Method", "UCC", "IND", "Local-Inference",
                   "Global-Predict", "Threads"});
  for (const MethodResults& r : all_results) {
    double ucc = 0, ind = 0, local = 0, global = 0;
    int threads = 0;
    for (const CaseResult& cr : r.cases) {
      ucc += cr.timing.ucc;
      ind += cr.timing.ind;
      local += cr.timing.local_inference;
      global += cr.timing.global_predict;
      if (cr.timing.threads > threads) threads = cr.timing.threads;
    }
    double n = double(r.cases.size());
    tb.AddRow({r.method, FmtSeconds(ucc / n), FmtSeconds(ind / n),
               FmtSeconds(local / n), FmtSeconds(global / n),
               threads > 0 ? StrFormat("%d", threads) : "-"});
  }
  tb.Print();
  std::printf("\nPaper reference: Auto-BI-S and Fast-FK fastest (2-3s on "
              "largest cases); Auto-BI 2-3x slower; HoPF slowest. "
              "Local-Inference dominates Auto-BI; Global-Predict (k-MCA) is "
              "cheap.\n");
  return 0;
}
