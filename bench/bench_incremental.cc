// Cold vs incremental re-prediction latency (PR 8): on a 20-table synthetic
// BI case, replays one mutation of each kind (no-op, single-table row
// append, add table, drop table, rename column, replace cells) and times
// AutoBi::PredictIncremental with a pre-seeded IncrementalState against a
// cold Predict on the same post-change tables. Bit-identity between the two
// (JSON model export + degradation flags) is enforced in-binary: any
// divergence prints FATAL and exits nonzero, so the timing numbers can never
// mask a correctness regression.
//
// Usage: bench_incremental [--json] [--tables N] [--reps N] [--threads N]
//   --json   emit one machine-readable JSON object (consumed by
//            scripts/bench_smoke.sh -> BENCH_pr8.json; the smoke gates
//            append_rows.speedup >= 5 and every kind's bit_identical).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/timer.h"
#include "core/auto_bi.h"
#include "core/incremental.h"
#include "core/model_export.h"
#include "synth/bi_generator.h"

namespace autobi {
namespace {

std::vector<Table> MakeBaseTables(int num_tables) {
  Rng rng(20260808);
  BiGenOptions gen;
  gen.num_tables = num_tables;
  // Comparable dim/fact row counts: the speedup then reflects the share of
  // *pairs* rescanned (19 of 190 for a single-table change), not one
  // outsized fact table dominating the scan cost from both sides.
  gen.min_dim_rows = 100;
  gen.max_dim_rows = 400;
  gen.min_fact_rows = 250;
  gen.max_fact_rows = 600;
  return GenerateBiCase(gen, rng).tables;
}

size_t LargestTable(const std::vector<Table>& tables) {
  size_t best = 0;
  for (size_t i = 1; i < tables.size(); ++i) {
    if (tables[i].num_rows() > tables[best].num_rows()) best = i;
  }
  return best;
}

void AppendTypedCell(Column& col, Rng& rng) {
  switch (col.type()) {
    case ValueType::kInt:
      col.AppendInt(int64_t(rng.NextBelow(10000)));
      break;
    case ValueType::kDouble:
      col.AppendDouble(rng.NextDouble(0.0, 1000.0));
      break;
    case ValueType::kString:
      col.AppendString(StrFormat("bench_%llu",
                                 (unsigned long long)rng.NextBelow(10000)));
      break;
    default:
      col.AppendNull();
      break;
  }
}

struct MutationKind {
  const char* name;
  void (*apply)(std::vector<Table>*);
};

void MutateNoop(std::vector<Table>*) {}

// Appends ~2% fresh rows to the largest table (the dashboard-refresh case
// the delta path is built for: one fact table grew, everything else is
// byte-identical).
void MutateAppendRows(std::vector<Table>* tables) {
  Table& t = (*tables)[LargestTable(*tables)];
  Rng rng(99);
  size_t rows = std::max<size_t>(8, t.num_rows() / 50);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < t.num_columns(); ++c) {
      AppendTypedCell(t.column(c), rng);
    }
  }
}

void MutateAddTable(std::vector<Table>* tables) {
  Table t("bench_added");
  Column& id = t.AddColumn("bench_id", ValueType::kInt);
  Column& label = t.AddColumn("bench_label", ValueType::kString);
  for (int r = 0; r < 40; ++r) {
    id.AppendInt(r);
    label.AppendString(StrFormat("v%d", r));
  }
  tables->push_back(std::move(t));
}

void MutateDropTable(std::vector<Table>* tables) {
  tables->erase(tables->begin() + long(tables->size() / 2));
}

void MutateRenameColumn(std::vector<Table>* tables) {
  Column& c = (*tables)[LargestTable(*tables)].column(0);
  c.set_name(c.name() + "_renamed");
}

void MutateReplaceCells(std::vector<Table>* tables) {
  Table& t = (*tables)[LargestTable(*tables)];
  Column& old = t.column(t.num_columns() - 1);
  Rng rng(7);
  Column fresh(old.name(), old.type());
  for (size_t i = 0; i < old.size(); ++i) AppendTypedCell(fresh, rng);
  old = std::move(fresh);
}

const MutationKind kKinds[] = {
    {"noop", MutateNoop},
    {"append_rows", MutateAppendRows},
    {"add_table", MutateAddTable},
    {"drop_table", MutateDropTable},
    {"rename_column", MutateRenameColumn},
    {"replace_cells", MutateReplaceCells},
};

struct KindResult {
  std::string name;
  double cold_ms = 0.0;
  double incremental_ms = 0.0;
  double speedup = 0.0;
  bool bit_identical = false;
  IncrementalStats stats;
};

[[noreturn]] void Fatal(const std::string& message) {
  std::fprintf(stderr, "bench_incremental: FATAL — %s\n", message.c_str());
  std::exit(1);
}

AutoBiResult MustPredictIncremental(const AutoBi& predictor,
                                    const std::vector<Table>& tables,
                                    IncrementalState* state) {
  StatusOr<AutoBiResult> result =
      predictor.PredictIncremental(tables, nullptr, state);
  if (!result.ok()) {
    Fatal("PredictIncremental failed: " + result.status().ToString());
  }
  return std::move(result.value());
}

KindResult RunKind(const MutationKind& kind, const AutoBi& predictor,
                   const std::vector<Table>& base, int reps) {
  KindResult out;
  out.name = kind.name;

  std::vector<Table> mutated = base;
  kind.apply(&mutated);

  // Incremental timing: every rep re-seeds a fresh state from the base
  // tables (untimed) so each measurement is a genuine first delta run, not
  // a no-op warm start over already-committed state.
  AutoBiResult incr;
  double incr_best = 1e100;
  for (int r = 0; r < reps; ++r) {
    IncrementalState state;
    MustPredictIncremental(predictor, base, &state);
    Timer timer;
    incr = MustPredictIncremental(predictor, mutated, &state);
    incr_best = std::min(incr_best, timer.Seconds());
    if (!incr.incremental.used) Fatal(out.name + ": delta path not taken");
  }
  out.incremental_ms = incr_best * 1e3;
  out.stats = incr.incremental;

  AutoBiResult cold;
  double cold_best = 1e100;
  for (int r = 0; r < reps; ++r) {
    Timer timer;
    StatusOr<AutoBiResult> result = predictor.Predict(mutated, nullptr);
    if (!result.ok()) Fatal("Predict failed: " + result.status().ToString());
    cold_best = std::min(cold_best, timer.Seconds());
    cold = std::move(result.value());
  }
  out.cold_ms = cold_best * 1e3;
  out.speedup = out.incremental_ms > 0 ? out.cold_ms / out.incremental_ms : 0;

  StatusOr<std::string> incr_json = ExportJson(mutated, incr.model);
  StatusOr<std::string> cold_json = ExportJson(mutated, cold.model);
  out.bit_identical = incr_json.ok() && cold_json.ok() &&
                      *incr_json == *cold_json &&
                      incr.degradation.Any() == cold.degradation.Any() &&
                      incr.graph.StructurallyEqual(cold.graph);
  if (!out.bit_identical) {
    Fatal(out.name + ": incremental result diverged from cold Predict");
  }
  return out;
}

std::string KindJson(const KindResult& r) {
  return StrFormat(
      "    \"%s\": {\"cold_ms\": %.3f, \"incremental_ms\": %.3f, "
      "\"speedup\": %.2f, \"bit_identical\": %s, \"tables_reprofiled\": %zu, "
      "\"tables_delta_merged\": %zu, \"pairs_rescored\": %zu, "
      "\"pairs_reused\": %zu, \"warm_start_used\": %s}",
      r.name.c_str(), r.cold_ms, r.incremental_ms, r.speedup,
      r.bit_identical ? "true" : "false", r.stats.tables_reprofiled,
      r.stats.tables_delta_merged, r.stats.pairs_rescored,
      r.stats.pairs_reused, r.stats.warm_start_used ? "true" : "false");
}

}  // namespace
}  // namespace autobi

int main(int argc, char** argv) {
  using namespace autobi;
  bool json = false;
  int num_tables = 20;
  int reps = 2;
  int threads = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--tables") == 0 && i + 1 < argc) {
      num_tables = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: bench_incremental [--json] [--tables N] "
                   "[--reps N] [--threads N]\n");
      return 2;
    }
  }

  LocalModel model = bench::GetTrainedModel();
  AutoBiOptions options;
  options.threads = threads;
  AutoBi predictor(&model, options);
  std::vector<Table> base = MakeBaseTables(num_tables);

  std::vector<KindResult> results;
  for (const MutationKind& kind : kKinds) {
    results.push_back(RunKind(kind, predictor, base, reps));
  }

  if (json) {
    std::string out = "{\n";
    out += StrFormat("  \"tables\": %d,\n  \"reps\": %d,\n", num_tables, reps);
    out += "  \"kinds\": {\n";
    for (size_t i = 0; i < results.size(); ++i) {
      out += KindJson(results[i]);
      out += i + 1 < results.size() ? ",\n" : "\n";
    }
    out += "  }\n}\n";
    std::fputs(out.c_str(), stdout);
  } else {
    std::printf("Incremental re-prediction, %d tables (best of %d):\n",
                num_tables, reps);
    std::printf("  %-14s %10s %14s %9s %s\n", "mutation", "cold", "incremental",
                "speedup", "work (reprof/merge/rescore/reuse/warm)");
    for (const KindResult& r : results) {
      std::printf("  %-14s %8.1fms %12.1fms %8.1fx %zu/%zu/%zu/%zu/%s\n",
                  r.name.c_str(), r.cold_ms, r.incremental_ms, r.speedup,
                  r.stats.tables_reprofiled, r.stats.tables_delta_merged,
                  r.stats.pairs_rescored, r.stats.pairs_reused,
                  r.stats.warm_start_used ? "warm" : "cold-solve");
    }
  }
  return 0;
}
