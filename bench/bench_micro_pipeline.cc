// Google-benchmark microbenchmarks for the data-facing pipeline stages:
// column profiling, UCC discovery, IND discovery and featurization — plus
// thread-count sweeps over candidate generation and end-to-end prediction
// (the speedup trajectory of the parallel pipeline; use --benchmark_filter=
// Threads and compare real time across the threads counter).

#include <benchmark/benchmark.h>

#include "common/parallel.h"
#include "common/rng.h"
#include "core/auto_bi.h"
#include "core/candidates.h"
#include "core/trainer.h"
#include "features/featurizer.h"
#include "profile/column_profile.h"
#include "profile/ind.h"
#include "profile/ucc.h"
#include "synth/bi_generator.h"
#include "synth/corpus.h"

namespace autobi {
namespace {

BiCase MakeCase(int tables, uint64_t seed) {
  Rng rng(seed);
  BiGenOptions opt;
  opt.num_tables = tables;
  return GenerateBiCase(opt, rng);
}

void BM_ProfileTables(benchmark::State& state) {
  BiCase c = MakeCase(int(state.range(0)), 11);
  for (auto _ : state) {
    auto profiles = ProfileTables(c.tables);
    benchmark::DoNotOptimize(profiles);
  }
}
BENCHMARK(BM_ProfileTables)->Arg(6)->Arg(12)->Arg(24);

void BM_DiscoverUccs(benchmark::State& state) {
  BiCase c = MakeCase(int(state.range(0)), 12);
  auto profiles = ProfileTables(c.tables);
  for (auto _ : state) {
    for (size_t i = 0; i < c.tables.size(); ++i) {
      auto uccs = DiscoverUccs(c.tables[i], profiles[i]);
      benchmark::DoNotOptimize(uccs);
    }
  }
}
BENCHMARK(BM_DiscoverUccs)->Arg(6)->Arg(12)->Arg(24);

void BM_DiscoverInds(benchmark::State& state) {
  BiCase c = MakeCase(int(state.range(0)), 13);
  auto profiles = ProfileTables(c.tables);
  std::vector<std::vector<Ucc>> uccs;
  for (size_t i = 0; i < c.tables.size(); ++i) {
    uccs.push_back(DiscoverUccs(c.tables[i], profiles[i]));
  }
  for (auto _ : state) {
    auto inds = DiscoverInds(c.tables, profiles, uccs);
    benchmark::DoNotOptimize(inds);
  }
}
BENCHMARK(BM_DiscoverInds)->Arg(6)->Arg(12)->Arg(24);

void BM_FeaturizeCandidates(benchmark::State& state) {
  BiCase c = MakeCase(int(state.range(0)), 14);
  CandidateSet cands = GenerateCandidates(c.tables);
  FeatureContext ctx{&c.tables, &cands.profiles, nullptr};
  Featurizer f;
  for (auto _ : state) {
    for (const JoinCandidate& cand : cands.candidates) {
      auto v = f.FeaturizeN1(ctx, cand, false);
      benchmark::DoNotOptimize(v);
    }
  }
  state.counters["candidates"] = double(cands.candidates.size());
}
BENCHMARK(BM_FeaturizeCandidates)->Arg(6)->Arg(12)->Arg(24);

// --- Thread-count sweeps. Real time is the relevant axis (internal
// parallelism doesn't show in the calling thread's CPU time); the speedup at
// threads=N is time(threads=1) / time(threads=N) on a machine with >= N
// hardware threads. Results are bit-identical across the sweep by the
// concurrency contract, so only latency changes.

void BM_GenerateCandidatesThreads(benchmark::State& state) {
  BiCase c = MakeCase(16, 15);
  CandidateGenOptions opt;
  opt.threads = int(state.range(0));
  for (auto _ : state) {
    CandidateSet cands = GenerateCandidates(c.tables, opt);
    benchmark::DoNotOptimize(cands);
  }
  state.counters["threads"] = double(state.range(0));
  state.counters["hw_threads"] = double(HardwareThreads());
}
BENCHMARK(BM_GenerateCandidatesThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// A small but real local model for the end-to-end sweep (trained once;
// candidate generation + local inference + global predict all run per
// iteration).
const LocalModel& SweepModel() {
  static const LocalModel* model = [] {
    CorpusOptions copt;
    copt.seed = 77;
    copt.training_cases = 24;
    TrainerOptions topt;
    topt.forest.num_trees = 12;
    return new LocalModel(TrainLocalModel(BuildTrainingCorpus(copt), topt));
  }();
  return *model;
}

void BM_AutoBiPredictThreads(benchmark::State& state) {
  BiCase c = MakeCase(16, 16);
  AutoBiOptions opt;
  opt.threads = int(state.range(0));
  AutoBi auto_bi(&SweepModel(), opt);
  for (auto _ : state) {
    AutoBiResult r = auto_bi.Predict(c.tables);
    benchmark::DoNotOptimize(r);
  }
  state.counters["threads"] = double(state.range(0));
  state.counters["hw_threads"] = double(HardwareThreads());
}
BENCHMARK(BM_AutoBiPredictThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace autobi

BENCHMARK_MAIN();
