// Google-benchmark microbenchmarks for the data-facing pipeline stages:
// column profiling, UCC discovery, IND discovery and featurization — plus
// thread-count sweeps over candidate generation and end-to-end prediction
// (the speedup trajectory of the parallel pipeline; use --benchmark_filter=
// Threads and compare real time across the threads counter).
//
// Usage: bench_micro_pipeline [--json | google-benchmark flags]
//   --json   skip google-benchmark and emit one machine-readable JSON object
//            measuring RunContext overhead: end-to-end Predict with no
//            context vs. an armed-but-untripped context (generous deadline,
//            generous budgets) on the Figure 5 workload. Consumed by
//            scripts/bench_smoke.sh (BENCH_pr5.json); the overhead must stay
//            under the 2% guard.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>

#include "common/parallel.h"
#include "common/run_context.h"
#include "common/timer.h"
#include "common/rng.h"
#include "core/auto_bi.h"
#include "core/candidates.h"
#include "core/trainer.h"
#include "features/featurizer.h"
#include "profile/column_profile.h"
#include "profile/ind.h"
#include "profile/ucc.h"
#include "synth/bi_generator.h"
#include "synth/corpus.h"

namespace autobi {
namespace {

BiCase MakeCase(int tables, uint64_t seed) {
  Rng rng(seed);
  BiGenOptions opt;
  opt.num_tables = tables;
  return GenerateBiCase(opt, rng);
}

void BM_ProfileTables(benchmark::State& state) {
  BiCase c = MakeCase(int(state.range(0)), 11);
  for (auto _ : state) {
    auto profiles = ProfileTables(c.tables);
    benchmark::DoNotOptimize(profiles);
  }
}
BENCHMARK(BM_ProfileTables)->Arg(6)->Arg(12)->Arg(24);

void BM_DiscoverUccs(benchmark::State& state) {
  BiCase c = MakeCase(int(state.range(0)), 12);
  auto profiles = ProfileTables(c.tables);
  for (auto _ : state) {
    for (size_t i = 0; i < c.tables.size(); ++i) {
      auto uccs = DiscoverUccs(c.tables[i], profiles[i]);
      benchmark::DoNotOptimize(uccs);
    }
  }
}
BENCHMARK(BM_DiscoverUccs)->Arg(6)->Arg(12)->Arg(24);

void BM_DiscoverInds(benchmark::State& state) {
  BiCase c = MakeCase(int(state.range(0)), 13);
  auto profiles = ProfileTables(c.tables);
  std::vector<std::vector<Ucc>> uccs;
  for (size_t i = 0; i < c.tables.size(); ++i) {
    uccs.push_back(DiscoverUccs(c.tables[i], profiles[i]));
  }
  for (auto _ : state) {
    auto inds = DiscoverInds(c.tables, profiles, uccs);
    benchmark::DoNotOptimize(inds);
  }
}
BENCHMARK(BM_DiscoverInds)->Arg(6)->Arg(12)->Arg(24);

void BM_FeaturizeCandidates(benchmark::State& state) {
  BiCase c = MakeCase(int(state.range(0)), 14);
  CandidateSet cands = GenerateCandidates(c.tables);
  FeatureContext ctx{&c.tables, &cands.profiles, nullptr};
  Featurizer f;
  for (auto _ : state) {
    for (const JoinCandidate& cand : cands.candidates) {
      auto v = f.FeaturizeN1(ctx, cand, false);
      benchmark::DoNotOptimize(v);
    }
  }
  state.counters["candidates"] = double(cands.candidates.size());
}
BENCHMARK(BM_FeaturizeCandidates)->Arg(6)->Arg(12)->Arg(24);

// --- Thread-count sweeps. Real time is the relevant axis (internal
// parallelism doesn't show in the calling thread's CPU time); the speedup at
// threads=N is time(threads=1) / time(threads=N) on a machine with >= N
// hardware threads. Results are bit-identical across the sweep by the
// concurrency contract, so only latency changes.

void BM_GenerateCandidatesThreads(benchmark::State& state) {
  BiCase c = MakeCase(16, 15);
  CandidateGenOptions opt;
  opt.threads = int(state.range(0));
  for (auto _ : state) {
    CandidateSet cands = GenerateCandidates(c.tables, opt);
    benchmark::DoNotOptimize(cands);
  }
  state.counters["threads"] = double(state.range(0));
  state.counters["hw_threads"] = double(HardwareThreads());
}
BENCHMARK(BM_GenerateCandidatesThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// A small but real local model for the end-to-end sweep (trained once;
// candidate generation + local inference + global predict all run per
// iteration).
const LocalModel& SweepModel() {
  static const LocalModel* model = [] {
    CorpusOptions copt;
    copt.seed = 77;
    copt.training_cases = 24;
    TrainerOptions topt;
    topt.forest.num_trees = 12;
    return new LocalModel(TrainLocalModel(BuildTrainingCorpus(copt), topt));
  }();
  return *model;
}

void BM_AutoBiPredictThreads(benchmark::State& state) {
  BiCase c = MakeCase(16, 16);
  AutoBiOptions opt;
  opt.threads = int(state.range(0));
  AutoBi auto_bi(&SweepModel(), opt);
  for (auto _ : state) {
    AutoBiResult r = auto_bi.Predict(c.tables);
    benchmark::DoNotOptimize(r);
  }
  state.counters["threads"] = double(state.range(0));
  state.counters["hw_threads"] = double(HardwareThreads());
}
BENCHMARK(BM_AutoBiPredictThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// --- RunContext overhead guard (--json mode). Interleaves context-off and
// context-on end-to-end predictions so clock drift and cache warmth hit both
// sides equally, then reports the relative overhead of the armed-but-
// untripped context (the only configuration whose cost matters: a tripped
// context is doing less work by design).

int RunContextOverheadJson() {
  BiCase c = MakeCase(16, 16);
  AutoBi auto_bi(&SweepModel(), AutoBiOptions{});

  RunContext ctx;
  ctx.set_deadline_after(3600.0);
  ctx.budgets.max_rows_per_table = size_t{1} << 40;
  ctx.budgets.max_cells_per_table = size_t{1} << 40;
  ctx.budgets.max_candidate_pairs = size_t{1} << 40;
  ctx.budgets.max_one_mca_calls = long{1} << 40;

  // Warm-up: train-once statics, allocator, page cache.
  (void)auto_bi.Predict(c.tables);
  (void)auto_bi.Predict(c.tables, &ctx);

  // Interleaved reps; the guard compares the per-side minima, which strip
  // scheduler/timer noise (large on a loaded or single-core host) and leave
  // the systematic cost of the context polls — the quantity the 2% guard is
  // actually about. Means are reported alongside for context.
  constexpr int kReps = 40;
  double off_min = 1e300, on_min = 1e300;
  double off_sum = 0.0, on_sum = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    {
      Timer t;
      AutoBiResult r = auto_bi.Predict(c.tables);
      double s = t.Seconds();
      off_sum += s;
      if (s < off_min) off_min = s;
      benchmark::DoNotOptimize(r);
    }
    {
      Timer t;
      StatusOr<AutoBiResult> r = auto_bi.Predict(c.tables, &ctx);
      double s = t.Seconds();
      on_sum += s;
      if (s < on_min) on_min = s;
      if (!r.ok() || r.value().degradation.Any()) {
        std::fprintf(stderr, "unexpected degradation/error in --json run\n");
        return 1;
      }
    }
  }
  double overhead_pct = (on_min / off_min - 1.0) * 100.0;
  std::printf(
      "{\n"
      "  \"workload\": \"end-to-end Predict, 16-table synthetic case\",\n"
      "  \"reps\": %d,\n"
      "  \"predict_no_context_min_ms\": %.4f,\n"
      "  \"predict_with_context_min_ms\": %.4f,\n"
      "  \"predict_no_context_mean_ms\": %.4f,\n"
      "  \"predict_with_context_mean_ms\": %.4f,\n"
      "  \"overhead_pct\": %.3f,\n"
      "  \"guard_pct\": 2.0\n"
      "}\n",
      kReps, off_min * 1e3, on_min * 1e3, off_sum * 1e3 / kReps,
      on_sum * 1e3 / kReps, overhead_pct);
  return 0;
}

}  // namespace
}  // namespace autobi

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      return autobi::RunContextOverheadJson();
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
