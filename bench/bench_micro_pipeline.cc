// Google-benchmark microbenchmarks for the data-facing pipeline stages:
// column profiling, UCC discovery, IND discovery and featurization.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/candidates.h"
#include "features/featurizer.h"
#include "profile/column_profile.h"
#include "profile/ind.h"
#include "profile/ucc.h"
#include "synth/bi_generator.h"

namespace autobi {
namespace {

BiCase MakeCase(int tables, uint64_t seed) {
  Rng rng(seed);
  BiGenOptions opt;
  opt.num_tables = tables;
  return GenerateBiCase(opt, rng);
}

void BM_ProfileTables(benchmark::State& state) {
  BiCase c = MakeCase(int(state.range(0)), 11);
  for (auto _ : state) {
    auto profiles = ProfileTables(c.tables);
    benchmark::DoNotOptimize(profiles);
  }
}
BENCHMARK(BM_ProfileTables)->Arg(6)->Arg(12)->Arg(24);

void BM_DiscoverUccs(benchmark::State& state) {
  BiCase c = MakeCase(int(state.range(0)), 12);
  auto profiles = ProfileTables(c.tables);
  for (auto _ : state) {
    for (size_t i = 0; i < c.tables.size(); ++i) {
      auto uccs = DiscoverUccs(c.tables[i], profiles[i]);
      benchmark::DoNotOptimize(uccs);
    }
  }
}
BENCHMARK(BM_DiscoverUccs)->Arg(6)->Arg(12)->Arg(24);

void BM_DiscoverInds(benchmark::State& state) {
  BiCase c = MakeCase(int(state.range(0)), 13);
  auto profiles = ProfileTables(c.tables);
  std::vector<std::vector<Ucc>> uccs;
  for (size_t i = 0; i < c.tables.size(); ++i) {
    uccs.push_back(DiscoverUccs(c.tables[i], profiles[i]));
  }
  for (auto _ : state) {
    auto inds = DiscoverInds(c.tables, profiles, uccs);
    benchmark::DoNotOptimize(inds);
  }
}
BENCHMARK(BM_DiscoverInds)->Arg(6)->Arg(12)->Arg(24);

void BM_FeaturizeCandidates(benchmark::State& state) {
  BiCase c = MakeCase(int(state.range(0)), 14);
  CandidateSet cands = GenerateCandidates(c.tables);
  FeatureContext ctx{&c.tables, &cands.profiles, nullptr};
  Featurizer f;
  for (auto _ : state) {
    for (const JoinCandidate& cand : cands.candidates) {
      auto v = f.FeaturizeN1(ctx, cand, false);
      benchmark::DoNotOptimize(v);
    }
  }
  state.counters["candidates"] = double(cands.candidates.size());
}
BENCHMARK(BM_FeaturizeCandidates)->Arg(6)->Arg(12)->Arg(24);

}  // namespace
}  // namespace autobi

BENCHMARK_MAIN();
