// Reproduces Figure 8: ablation study of Auto-BI components on the REAL
// benchmark — no-FK-once-constraint, no-precision-mode, no-N:1/1:1
// separation, no-label-transitivity, no-data-features, and LC-only.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/strings.h"
#include "eval/harness.h"
#include "eval/report.h"

int main() {
  using namespace autobi;
  using namespace autobi::bench;

  LocalModel model = GetTrainedModel();
  LocalModel model_nosplit = GetTrainedModel("nosplit");
  LocalModel model_notrans = GetTrainedModel("notrans");
  RealBenchmark real = GetRealBenchmark();

  struct Variant {
    std::string name;
    const LocalModel* model;
    AutoBiOptions options;
  };
  std::vector<Variant> variants;
  variants.push_back({"Auto-BI (full)", &model, AutoBiOptions{}});
  {
    AutoBiOptions o;
    o.enforce_fk_once = false;
    variants.push_back({"no-FK-once-constraint", &model, o});
  }
  {
    AutoBiOptions o;
    o.use_precision_mode = false;
    variants.push_back({"no-precision-mode", &model, o});
  }
  variants.push_back(
      {"no-N-1/1-1-separation", &model_nosplit, AutoBiOptions{}});
  variants.push_back(
      {"no-label-transitivity", &model_notrans, AutoBiOptions{}});
  {
    AutoBiOptions o;
    o.mode = AutoBiMode::kSchemaOnly;  // Metadata-only features.
    variants.push_back({"no-data-features", &model, o});
  }
  {
    AutoBiOptions o;
    o.lc_only = true;
    variants.push_back({"LC-only", &model, o});
  }

  std::printf("=== Figure 8: ablation study on the %zu-case REAL "
              "benchmark ===\n",
              real.cases.size());
  TablePrinter t({"Variant", "P_edge", "R_edge", "F_edge", "P_case"});
  for (const Variant& v : variants) {
    std::fprintf(stderr, "[fig8] running %s...\n", v.name.c_str());
    AutoBiPredictor predictor(v.name, v.model, v.options);
    AggregateMetrics q = RunMethod(predictor, real.cases).Quality();
    t.AddRow({v.name, Fmt3(q.precision), Fmt3(q.recall), Fmt3(q.f1),
              Fmt3(q.case_precision)});
  }
  t.Print();
  std::printf("\nPaper reference: every ablation degrades the full system; "
              "LC-only loses ~25 points of case precision; no-precision-mode "
              "loses 6/13 points of edge/case precision.\n");
  return 0;
}
