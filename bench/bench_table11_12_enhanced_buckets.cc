// Reproduces Tables 11 and 12 (Appendix C): edge-level quality and
// case-level precision by table-count bucket, including the enhanced
// baselines.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/strings.h"
#include "eval/harness.h"
#include "eval/report.h"

int main() {
  using namespace autobi;
  using namespace autobi::bench;

  LocalModel model = GetTrainedModel();
  RealBenchmark real = GetRealBenchmark();

  auto methods = StandardMethods(&model);
  auto enhanced = EnhancedMethods(&model);
  for (auto& m : enhanced) methods.push_back(std::move(m));

  std::vector<std::vector<size_t>> bucket_cases(kNumBuckets);
  for (size_t i = 0; i < real.cases.size(); ++i) {
    bucket_cases[size_t(real.bucket_of[i])].push_back(i);
  }

  std::vector<std::string> header = {"Method"};
  for (int b = 0; b < kNumBuckets; ++b) header.push_back(BucketLabel(b));
  TablePrinter t11(header);
  TablePrinter t12(header);

  for (const auto& method : methods) {
    std::fprintf(stderr, "[table11/12] running %s...\n",
                 method->name().c_str());
    MethodResults results = RunMethod(*method, real.cases);
    std::vector<std::string> row11 = {method->name()};
    std::vector<std::string> row12 = {method->name()};
    for (int b = 0; b < kNumBuckets; ++b) {
      AggregateMetrics q = QualityOnSubset(results, bucket_cases[size_t(b)]);
      row11.push_back(
          StrFormat("%.2f (%.2f,%.2f)", q.f1, q.precision, q.recall));
      row12.push_back(Fmt3(q.case_precision));
    }
    t11.AddRow(row11);
    t12.AddRow(row12);
  }

  std::printf("=== Table 11: edge-level quality \"F1 (P,R)\" by #tables, "
              "incl. enhanced baselines ===\n");
  t11.Print();
  std::printf("\n=== Table 12: case-level precision by #tables, incl. "
              "enhanced baselines ===\n");
  t12.Print();
  std::printf("\nPaper reference: enhanced baselines close much of the gap "
              "in F1 but still trail Auto-BI in precision on large cases "
              "(21+ tables: Auto-BI 0.94 precision vs ~0.73 for the best "
              "enhanced baseline).\n");
  return 0;
}
