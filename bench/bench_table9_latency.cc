// Reproduces Table 9 (Appendix C): end-to-end latency comparison including
// the enhanced "+LC" baselines, which pay the classifier cost.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/strings.h"
#include "common/stats_util.h"
#include "eval/harness.h"
#include "eval/report.h"

int main() {
  using namespace autobi;
  using namespace autobi::bench;

  LocalModel model = GetTrainedModel();
  RealBenchmark real = GetRealBenchmark();

  auto methods = StandardMethods(&model);
  auto enhanced = EnhancedMethods(&model);
  for (auto& m : enhanced) methods.push_back(std::move(m));

  std::printf("=== Table 9: end-to-end latency (seconds) on the %zu-case "
              "REAL benchmark ===\n",
              real.cases.size());
  TablePrinter t({"Method", "Average", "50%tile", "90%tile", "95%tile"});
  for (const auto& method : methods) {
    std::fprintf(stderr, "[table9] running %s...\n", method->name().c_str());
    MethodResults r = RunMethod(*method, real.cases);
    std::vector<double> totals = r.TotalSeconds();
    t.AddRow({method->name(), FmtSeconds(Mean(totals)),
              FmtSeconds(Percentile(totals, 50)),
              FmtSeconds(Percentile(totals, 90)),
              FmtSeconds(Percentile(totals, 95))});
  }
  t.Print();
  std::printf("\nPaper reference: enhanced (+LC) baselines have latency "
              "comparable to Auto-BI (they pay the same classifier cost); "
              "HoPF+LC is the slowest.\n");
  return 0;
}
