// Reproduces Figure 7: the effect of the two efficiency optimizations,
// measured in number of 1-MCA (Chu-Liu/Edmonds) invocations:
//   (1) brute-force k-MCA (enumerate every vertex partition) vs the
//       artificial-root reduction (Algorithm 2);
//   (2) exhaustive conflict branching vs branch-and-bound (Algorithm 3).
// The unoptimized counts are computed analytically (running them would time
// out, as the paper notes); the optimized counts are measured.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/strings.h"
#include "common/stats_util.h"
#include "core/candidates.h"
#include "core/graph_builder.h"
#include "eval/report.h"
#include "graph/kmca_cc.h"

int main() {
  using namespace autobi;
  using namespace autobi::bench;

  LocalModel model = GetTrainedModel();
  RealBenchmark real = GetRealBenchmark();

  std::vector<double> brute_force_calls;     // No artificial root.
  std::vector<double> unpruned_calls;        // No branch-and-bound.
  std::vector<double> optimized_calls;       // Algorithm 3 (measured).
  for (const BiCase& bi_case : real.cases) {
    CandidateSet cands = GenerateCandidates(bi_case.tables);
    JoinGraph graph = BuildJoinGraph(bi_case.tables, cands, model, false);
    brute_force_calls.push_back(
        EstimateBruteForceKmcaCalls(graph.num_vertices()));
    unpruned_calls.push_back(EstimateUnprunedBranchCalls(graph));
    KmcaCcStats stats;
    SolveKmcaCc(graph, KmcaCcOptions{}, &stats);
    optimized_calls.push_back(double(stats.one_mca_calls));
  }

  std::printf("=== Figure 7: number of 1-MCA invocations, with vs without "
              "the optimizations (%zu REAL cases) ===\n",
              real.cases.size());
  TablePrinter t({"Variant", "Mean #1-MCA calls", "Median", "Max"});
  auto row = [&](const char* label, std::vector<double>& v) {
    t.AddRow({label, StrFormat("%.3g", Mean(v)),
              StrFormat("%.3g", Percentile(v, 50)),
              StrFormat("%.3g", Percentile(v, 100))});
  };
  row("brute-force k-MCA (no artificial root)", brute_force_calls);
  row("k-MCA-CC w/o branch-and-bound (exhaustive)", unpruned_calls);
  row("Auto-BI (Algorithms 2+3, measured)", optimized_calls);
  t.Print();

  // Optimization (1) replaces the per-partition enumeration with a single
  // 1-MCA call per k-MCA solve; optimization (2) prunes the conflict
  // branching down to the measured call count.
  double speedup1 = Mean(brute_force_calls);
  double speedup2 =
      Mean(unpruned_calls) / std::max(1.0, Mean(optimized_calls));
  std::printf("\nArtificial-root reduction:   ~%.1e x fewer 1-MCA calls\n",
              speedup1);
  std::printf("Branch-and-bound pruning:    ~%.1e x fewer 1-MCA calls\n",
              speedup2);
  std::printf("\nPaper reference: ~5 and ~4 orders of magnitude "
              "respectively (~10 orders combined).\n");
  return 0;
}
