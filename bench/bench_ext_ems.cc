// Extension ablation: validates the paper's Section 4.3.3 claim that the
// greedy EMS solution is near-optimal in practice ("we find different
// solutions have very similar results"), by comparing greedy EMS against
// the exact (exhaustive) solver on the REAL benchmark.

#include <cstdio>
#include <set>

#include "bench/bench_common.h"
#include "common/strings.h"
#include "core/candidates.h"
#include "core/graph_builder.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "graph/ems.h"
#include "graph/kmca_cc.h"

int main() {
  using namespace autobi;
  using namespace autobi::bench;

  LocalModel model = GetTrainedModel();
  RealBenchmark real = GetRealBenchmark();

  size_t comparable = 0;
  size_t skipped_large = 0;
  size_t identical_size = 0;
  size_t exact_larger = 0;
  std::vector<EdgeMetrics> greedy_metrics;
  std::vector<EdgeMetrics> exact_metrics;

  for (const BiCase& bi_case : real.cases) {
    CandidateSet cands = GenerateCandidates(bi_case.tables);
    JoinGraph graph = BuildJoinGraph(bi_case.tables, cands, model, false);
    KmcaResult backbone = SolveKmcaCc(graph);
    // Count remaining promising edges; the exact solver is exponential.
    size_t remaining = 0;
    std::set<int> in_backbone(backbone.edge_ids.begin(),
                              backbone.edge_ids.end());
    for (const JoinEdge& e : graph.edges()) {
      if (!in_backbone.count(e.id) && e.probability >= 0.5) ++remaining;
    }
    if (remaining > 18) {
      ++skipped_large;
      continue;
    }
    ++comparable;
    std::vector<int> greedy = SolveEmsGreedy(graph, backbone.edge_ids);
    std::vector<int> exact = SolveEmsExact(graph, backbone.edge_ids);
    if (greedy.size() == exact.size()) ++identical_size;
    if (exact.size() > greedy.size()) ++exact_larger;

    auto evaluate = [&](std::vector<int> extra) {
      std::vector<int> all = backbone.edge_ids;
      all.insert(all.end(), extra.begin(), extra.end());
      return EvaluateCase(bi_case, EdgesToModel(graph, all));
    };
    greedy_metrics.push_back(evaluate(greedy));
    exact_metrics.push_back(evaluate(exact));
  }

  std::printf("=== Extension: greedy vs exact EMS on the %zu-case REAL "
              "benchmark ===\n",
              real.cases.size());
  std::printf("comparable cases: %zu (skipped %zu with > 18 remaining "
              "edges)\n",
              comparable, skipped_large);
  std::printf("identical |S|: %zu / %zu; exact strictly larger: %zu\n",
              identical_size, comparable, exact_larger);
  AggregateMetrics g = Aggregate(greedy_metrics);
  AggregateMetrics e = Aggregate(exact_metrics);
  TablePrinter t({"EMS solver", "P_edge", "R_edge", "F_edge", "P_case"});
  t.AddRow({"greedy (default)", Fmt3(g.precision), Fmt3(g.recall),
            Fmt3(g.f1), Fmt3(g.case_precision)});
  t.AddRow({"exact (exhaustive)", Fmt3(e.precision), Fmt3(e.recall),
            Fmt3(e.f1), Fmt3(e.case_precision)});
  t.Print();
  std::printf("\nPaper reference (Section 4.3.3): EMS is NP-hard and "
              "1/2-inapproximable, but the backbone leaves little slack, so "
              "greedy and optimal solutions have very similar quality.\n");
  return 0;
}
