// Reproduces Table 6: quality comparison on FoodMart, Northwind,
// AdventureWorks and WorldWideImporters, each in a denormalized (OLAP-like)
// and a normalized (OLTP-like) variant.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/strings.h"
#include "common/rng.h"
#include "eval/harness.h"
#include "eval/report.h"
#include "synth/classic_dbs.h"

int main() {
  using namespace autobi;
  using namespace autobi::bench;

  LocalModel model = GetTrainedModel();
  auto methods = StandardMethods(&model);

  Rng rng(4242);
  struct Db {
    std::string label;
    BiCase bi_case;
  };
  std::vector<Db> dbs;
  for (bool olap : {true, false}) {
    for (ClassicDb db : {ClassicDb::kFoodMart, ClassicDb::kNorthwind,
                         ClassicDb::kAdventureWorks,
                         ClassicDb::kWorldWideImporters}) {
      dbs.push_back(Db{StrFormat("%s-%s", ClassicDbName(db),
                                 olap ? "OLAP" : "OLTP"),
                       GenerateClassicDb(db, olap, TpcScale(), rng)});
    }
  }

  std::printf("=== Table 6: quality on classic sample databases "
              "(P/R/F per database) ===\n");
  std::vector<std::string> header = {"Method"};
  for (const Db& db : dbs) header.push_back(db.label);
  TablePrinter t(header);
  for (const auto& method : methods) {
    std::fprintf(stderr, "[table6] running %s...\n", method->name().c_str());
    std::vector<std::string> row = {method->name()};
    for (const Db& db : dbs) {
      MethodResults r = RunMethod(*method, {db.bi_case});
      AggregateMetrics q = r.Quality();
      row.push_back(
          StrFormat("%.2f/%.2f/%.2f", q.precision, q.recall, q.f1));
    }
    t.AddRow(row);
  }
  t.Print();
  std::printf("\nPaper reference (Table 6, F1 denorm/norm): Auto-BI "
              "FoodMart 0.86/0.89, Northwind 1.0/1.0, AdventureWorks "
              "0.97/0.89, WWI 0.91/0.91.\n");
  return 0;
}
