// Extension ablation (DESIGN.md §6, beyond the paper): which classifier
// should back the local join model? Compares random forest (the default,
// matching the paper's sklearn setup), gradient-boosted trees, and logistic
// regression on the same featurized candidate task, measuring ranking
// quality (AUC), calibration after Platt scaling (ECE/Brier), and the
// precision/recall of the 0.5-threshold decision.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "common/strings.h"
#include "core/candidates.h"
#include "core/trainer.h"
#include "eval/report.h"
#include "ml/gbdt.h"
#include "ml/logistic.h"
#include "ml/metrics.h"
#include "ml/random_forest.h"

namespace autobi {
namespace {

// Featurizes every N:1 candidate of `cases` into a dataset.
Dataset BuildDataset(const std::vector<BiCase>& cases) {
  Featurizer featurizer;
  Dataset data(Featurizer::N1FeatureNames(false));
  for (const BiCase& bi_case : cases) {
    CandidateSet cands = GenerateCandidates(bi_case.tables);
    std::vector<int> labels = LabelCandidates(bi_case, cands.candidates,
                                              /*label_transitivity=*/true);
    FeatureContext ctx{&bi_case.tables, &cands.profiles, nullptr};
    for (size_t i = 0; i < cands.candidates.size(); ++i) {
      if (cands.candidates[i].one_to_one) continue;
      data.Add(featurizer.FeaturizeN1(ctx, cands.candidates[i], false),
               labels[i]);
    }
  }
  return data;
}

struct Scored {
  std::vector<double> raw;
  std::vector<int> labels;
};

template <typename Model>
Scored ScoreAll(const Model& model, const Dataset& test) {
  Scored out;
  for (size_t i = 0; i < test.num_rows(); ++i) {
    out.raw.push_back(model.PredictProba(test.Row(i)));
    out.labels.push_back(test.Label(i));
  }
  return out;
}

void Report(TablePrinter& table, const std::string& name, Scored scored) {
  PlattCalibrator platt;
  platt.Fit(scored.raw, scored.labels);
  std::vector<double> calibrated;
  for (double s : scored.raw) calibrated.push_back(platt.Calibrate(s));
  BinaryMetrics bm = ComputeBinaryMetrics(calibrated, scored.labels);
  table.AddRow({name, Fmt3(RocAuc(scored.raw, scored.labels)),
                Fmt3(ExpectedCalibrationError(calibrated, scored.labels)),
                Fmt3(BrierScore(calibrated, scored.labels)),
                Fmt3(bm.precision), Fmt3(bm.recall), Fmt3(bm.f1)});
}

}  // namespace
}  // namespace autobi

int main() {
  using namespace autobi;
  using namespace autobi::bench;

  CorpusOptions train_opt;
  train_opt.seed = 20230701;
  train_opt.training_cases = TrainCases();
  std::fprintf(stderr, "[ext] building train/test candidate datasets...\n");
  Dataset train = BuildDataset(BuildTrainingCorpus(train_opt));
  RealBenchmark real = GetRealBenchmark();
  Dataset test = BuildDataset(real.cases);
  std::printf("Local N:1 join-prediction task: %zu train / %zu test "
              "examples (%zu / %zu positive)\n",
              train.num_rows(), test.num_rows(), train.num_positives(),
              test.num_positives());

  TablePrinter table({"Classifier", "AUC", "ECE", "Brier", "P@0.5", "R@0.5",
                      "F1@0.5"});
  Rng rng(99);
  {
    RandomForest rf;
    rf.Fit(train, ForestOptions{}, rng);
    Report(table, "RandomForest (default)", ScoreAll(rf, test));
  }
  {
    Gbdt gbdt;
    gbdt.Fit(train, GbdtOptions{}, rng);
    Report(table, "GBDT", ScoreAll(gbdt, test));
  }
  {
    LogisticRegression lr;
    lr.Fit(train);
    Report(table, "LogisticRegression", ScoreAll(lr, test));
  }
  table.Print();
  std::printf("\nThe forest's calibrated probabilities back k-MCA's "
              "probabilistic interpretation; this table justifies that "
              "default (an extension ablation not in the paper).\n");
  return 0;
}
