#ifndef AUTOBI_BENCH_BENCH_COMMON_H_
#define AUTOBI_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/baseline.h"
#include "baselines/fk_baselines.h"
#include "baselines/ml_fk.h"
#include "core/local_model.h"
#include "core/trainer.h"
#include "synth/corpus.h"

namespace autobi {
namespace bench {

// Shared setup for the paper-reproduction benchmark binaries.
//
// Scale knobs (environment variables, see DESIGN.md §3):
//   AUTOBI_REAL_CASES  cases per REAL-benchmark bucket (default 4 -> 40
//                      cases; the paper uses 100 -> 1000 cases).
//   AUTOBI_TRAIN_CASES training-corpus size (default 150).
//   AUTOBI_TPC_SCALE   TPC/classic-DB row scale (default 0.25).

int RealCasesPerBucket();
size_t TrainCases();
double TpcScale();

// Trains (or loads from the on-disk cache "autobi_model_cache_*.txt") the
// local model with the given trainer ablations. `variant` distinguishes
// cache files ("default", "nosplit", "notrans").
LocalModel GetTrainedModel(const std::string& variant = "default");

// The stratified REAL benchmark at the configured scale (seed disjoint from
// training).
RealBenchmark GetRealBenchmark();

// Trains (or loads from cache) the ML-FK [48] baseline's model on the same
// training corpus.
const MlFkModel* GetMlFkModel();

// All methods of Table 5 (Auto-BI variants + baselines), excluding the
// enhanced "+LC" variants. `model` must outlive the returned predictors.
std::vector<std::unique_ptr<JoinPredictor>> StandardMethods(
    const LocalModel* model);

// The enhanced baselines of Tables 9-12 (+LC variants and plain LC).
std::vector<std::unique_ptr<JoinPredictor>> EnhancedMethods(
    const LocalModel* model);

// The four TPC benchmark cases at the configured scale.
std::vector<BiCase> TpcBenchmarks();

}  // namespace bench
}  // namespace autobi

#endif  // AUTOBI_BENCH_BENCH_COMMON_H_
