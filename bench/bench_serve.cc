// bench_serve: cold- vs warm-cache Predict latency through the serving
// cache layer (core/predict_cache.h), over the stratified REAL benchmark.
//
// Three measurements per case:
//   cold     fresh cache, first Predict (populates it)
//   warm     byte-identical re-submission (solve-memo hit)
//   partial  one table mutated, the rest unchanged (per-table profile
//            cache hits; the solve memo misses)
// Correctness gates, checked for every case:
//   - warm result is bit-identical to cold (ExportJson comparison), and
//   - the partial-warm result is bit-identical to a cache-free Predict of
//     the mutated table set.
//
// Usage: bench_serve [--json]
// Scale via AUTOBI_REAL_CASES / AUTOBI_TRAIN_CASES (see bench_common.h).

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/timer.h"
#include "core/auto_bi.h"
#include "core/model_export.h"
#include "core/predict_cache.h"

namespace autobi {
namespace {

std::string ModelFingerprint(const std::vector<Table>& tables,
                             const AutoBiResult& result) {
  StatusOr<std::string> json = ExportJson(tables, result.model);
  return json.ok() ? *json : std::string("<invalid>");
}

int Run(bool as_json) {
  LocalModel model = bench::GetTrainedModel();
  RealBenchmark benchmark = bench::GetRealBenchmark();

  double cold_total = 0.0, warm_total = 0.0;
  double partial_total = 0.0, partial_nocache_total = 0.0;
  size_t warm_mismatches = 0, partial_mismatches = 0;
  size_t profile_hits = 0, profile_misses = 0;

  for (const BiCase& bi_case : benchmark.cases) {
    PredictCache cache;
    AutoBiOptions options;
    options.threads = 1;
    options.cache = &cache;
    AutoBi predictor(&model, options);

    Timer cold_timer;
    AutoBiResult cold = predictor.Predict(bi_case.tables);
    cold_total += cold_timer.Seconds();

    Timer warm_timer;
    AutoBiResult warm = predictor.Predict(bi_case.tables);
    warm_total += warm_timer.Seconds();

    if (ModelFingerprint(bi_case.tables, cold) !=
        ModelFingerprint(bi_case.tables, warm)) {
      ++warm_mismatches;
    }

    // Partial re-upload: one table changes (an appended all-null row), the
    // rest are byte-identical and should hit the per-table profile cache.
    std::vector<Table> mutated = bi_case.tables;
    for (size_t c = 0; c < mutated[0].num_columns(); ++c) {
      mutated[0].column(c).AppendNull();
    }
    PredictCache::Stats before = cache.GetStats();
    Timer partial_timer;
    AutoBiResult partial = predictor.Predict(mutated);
    partial_total += partial_timer.Seconds();
    PredictCache::Stats after = cache.GetStats();
    profile_hits += after.table_hits - before.table_hits;
    profile_misses += after.table_misses - before.table_misses;

    AutoBiOptions nocache_options;
    nocache_options.threads = 1;
    AutoBi nocache(&model, nocache_options);
    Timer nocache_timer;
    AutoBiResult reference = nocache.Predict(mutated);
    partial_nocache_total += nocache_timer.Seconds();
    if (ModelFingerprint(mutated, partial) !=
        ModelFingerprint(mutated, reference)) {
      ++partial_mismatches;
    }
  }

  double speedup = warm_total > 0 ? cold_total / warm_total : 0.0;
  double partial_speedup =
      partial_total > 0 ? partial_nocache_total / partial_total : 0.0;
  double hit_rate =
      profile_hits + profile_misses > 0
          ? double(profile_hits) / double(profile_hits + profile_misses)
          : 0.0;
  bool ok = warm_mismatches == 0 && partial_mismatches == 0;

  if (as_json) {
    std::printf(
        "{\"bench\":\"serve_cold_warm\",\"cases\":%zu,"
        "\"cold_total_seconds\":%.6f,\"warm_total_seconds\":%.6f,"
        "\"warm_speedup\":%.2f,"
        "\"partial_total_seconds\":%.6f,"
        "\"partial_nocache_total_seconds\":%.6f,"
        "\"partial_speedup\":%.2f,"
        "\"profile_cache_hit_rate\":%.3f,"
        "\"warm_bit_identical\":%s,\"partial_bit_identical\":%s}\n",
        benchmark.cases.size(), cold_total, warm_total, speedup,
        partial_total, partial_nocache_total, partial_speedup, hit_rate,
        warm_mismatches == 0 ? "true" : "false",
        partial_mismatches == 0 ? "true" : "false");
  } else {
    std::printf("bench_serve: %zu cases\n", benchmark.cases.size());
    std::printf("  cold    total %.3f s\n", cold_total);
    std::printf("  warm    total %.3f s (%.1fx speedup, %s)\n", warm_total,
                speedup, warm_mismatches == 0 ? "bit-identical" : "MISMATCH");
    std::printf("  partial total %.3f s vs %.3f s uncached (%.1fx, %s)\n",
                partial_total, partial_nocache_total, partial_speedup,
                partial_mismatches == 0 ? "bit-identical" : "MISMATCH");
    std::printf("  profile cache hit rate on partial re-upload: %.1f%%\n",
                100.0 * hit_rate);
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace autobi

int main(int argc, char** argv) {
  bool as_json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") as_json = true;
  }
  return autobi::Run(as_json);
}
