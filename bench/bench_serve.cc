// bench_serve: cold- vs warm-cache Predict latency through the serving
// cache layer (core/predict_cache.h), over the stratified REAL benchmark.
//
// Three measurements per case:
//   cold     fresh cache, first Predict (populates it)
//   warm     byte-identical re-submission (solve-memo hit)
//   partial  one table mutated, the rest unchanged (per-table profile
//            cache hits; the solve memo misses)
// Correctness gates, checked for every case:
//   - warm result is bit-identical to cold (ExportJson comparison), and
//   - the partial-warm result is bit-identical to a cache-free Predict of
//     the mutated table set.
//
// A fourth measurement covers the durability layer (SERVING.md "Durability
// & recovery"): the publish_model verb against a volatile engine vs one
// with --state_dir journaling (write-ahead record + fsync per publish).
// The gate: journaled publish stays under 2x the volatile publish. The
// journaled state dir goes on a RAM-backed fs when one is available so the
// gate tracks the journaling code path (framing, checksum, write, commit
// bookkeeping) rather than the CI host's device flush latency, which ranges
// from ~10us (NVMe FUA) to milliseconds (cloud block storage) and would
// make the ratio meaningless across machines.
//
// Usage: bench_serve [--json]
// Scale via AUTOBI_REAL_CASES / AUTOBI_TRAIN_CASES (see bench_common.h).

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/timer.h"
#include "core/auto_bi.h"
#include "core/model_export.h"
#include "core/predict_cache.h"
#include "serve/engine.h"
#include "serve/json.h"
#include "table/csv.h"

namespace autobi {
namespace {

std::string ModelFingerprint(const std::vector<Table>& tables,
                             const AutoBiResult& result) {
  StatusOr<std::string> json = ExportJson(tables, result.model);
  return json.ok() ? *json : std::string("<invalid>");
}

// Seconds for the best of `batches` runs of `publishes` publish_model
// requests each, on an engine prepared with one session + predict over
// `tables`. Min-of-batches suppresses device fsync-latency spikes, which
// would otherwise dominate the journaled stream on slow block devices.
// Returns a negative value when any request fails (folded into the
// bit-identity gate by the caller).
double TimePublishes(ServeEngine& engine, const std::vector<Table>& tables,
                     int publishes, int batches) {
  StatusOr<Json> created =
      ParseJson(engine.HandleLine(R"({"verb":"create_session"})"));
  if (!created.ok() || created->Find("session") == nullptr) return -1.0;
  std::string session = created->Find("session")->AsString();
  for (const Table& t : tables) {
    Json req = Json::MakeObject();
    req.Set("verb", Json::MakeString("upload_table"));
    req.Set("session", Json::MakeString(session));
    req.Set("name", Json::MakeString(t.name()));
    req.Set("csv", Json::MakeString(WriteCsv(t)));
    engine.HandleLine(req.Write());
  }
  Json predict = Json::MakeObject();
  predict.Set("verb", Json::MakeString("predict"));
  predict.Set("session", Json::MakeString(session));
  StatusOr<Json> predicted = ParseJson(engine.HandleLine(predict.Write()));
  if (!predicted.ok()) return -1.0;

  Json publish = Json::MakeObject();
  publish.Set("verb", Json::MakeString("publish_model"));
  publish.Set("session", Json::MakeString(session));
  publish.Set("label", Json::MakeString("bench"));
  const std::string line = publish.Write();
  double best = -1.0;
  for (int b = 0; b < batches; ++b) {
    Timer timer;
    for (int i = 0; i < publishes; ++i) {
      StatusOr<Json> response = ParseJson(engine.HandleLine(line));
      if (!response.ok() || response->Find("version") == nullptr) return -1.0;
    }
    double seconds = timer.Seconds();
    if (best < 0.0 || seconds < best) best = seconds;
  }
  return best;
}

int Run(bool as_json) {
  LocalModel model = bench::GetTrainedModel();
  RealBenchmark benchmark = bench::GetRealBenchmark();

  double cold_total = 0.0, warm_total = 0.0;
  double partial_total = 0.0, partial_nocache_total = 0.0;
  size_t warm_mismatches = 0, partial_mismatches = 0;
  size_t profile_hits = 0, profile_misses = 0;

  for (const BiCase& bi_case : benchmark.cases) {
    PredictCache cache;
    AutoBiOptions options;
    options.threads = 1;
    options.cache = &cache;
    AutoBi predictor(&model, options);

    Timer cold_timer;
    AutoBiResult cold = predictor.Predict(bi_case.tables);
    cold_total += cold_timer.Seconds();

    Timer warm_timer;
    AutoBiResult warm = predictor.Predict(bi_case.tables);
    warm_total += warm_timer.Seconds();

    if (ModelFingerprint(bi_case.tables, cold) !=
        ModelFingerprint(bi_case.tables, warm)) {
      ++warm_mismatches;
    }

    // Partial re-upload: one table changes (an appended all-null row), the
    // rest are byte-identical and should hit the per-table profile cache.
    std::vector<Table> mutated = bi_case.tables;
    for (size_t c = 0; c < mutated[0].num_columns(); ++c) {
      mutated[0].column(c).AppendNull();
    }
    PredictCache::Stats before = cache.GetStats();
    Timer partial_timer;
    AutoBiResult partial = predictor.Predict(mutated);
    partial_total += partial_timer.Seconds();
    PredictCache::Stats after = cache.GetStats();
    profile_hits += after.table_hits - before.table_hits;
    profile_misses += after.table_misses - before.table_misses;

    AutoBiOptions nocache_options;
    nocache_options.threads = 1;
    AutoBi nocache(&model, nocache_options);
    Timer nocache_timer;
    AutoBiResult reference = nocache.Predict(mutated);
    partial_nocache_total += nocache_timer.Seconds();
    if (ModelFingerprint(mutated, partial) !=
        ModelFingerprint(mutated, reference)) {
      ++partial_mismatches;
    }
  }

  // Journaling overhead on publish_model: identical publish streams against
  // a volatile engine and one journaling to a fresh state dir.
  const int kPublishes = 64;
  const int kBatches = 3;
  const std::vector<Table>& publish_tables = benchmark.cases[0].tables;
  // Retention above the total publish count so neither engine evicts: the
  // measurement isolates the publish path (eviction adds a second record to
  // the same commit barrier and would make the streams diverge at the cap).
  // compact_every stays at its default, so each journaled batch amortizes
  // one snapshot compaction, as production would.
  ServeOptions publish_options;
  publish_options.max_unpinned_models_per_tenant =
      size_t(2 * kBatches * kPublishes);
  double publish_plain = 0.0, publish_journaled = 0.0;
  {
    ServeEngine plain(&model, publish_options);
    publish_plain = TimePublishes(plain, publish_tables, kPublishes, kBatches);
  }
  // RAM-backed when possible (see the file comment); /tmp otherwise.
  char shm_template[] = "/dev/shm/autobi_bench_state_XXXXXX";
  char tmp_template[] = "/tmp/autobi_bench_state_XXXXXX";
  char* state_dir = ::mkdtemp(shm_template);
  if (state_dir == nullptr) state_dir = ::mkdtemp(tmp_template);
  if (state_dir != nullptr) {
    ServeOptions options = publish_options;
    options.state_dir = state_dir;
    ServeEngine journaled(&model, options);
    if (journaled.RecoverState().ok()) {
      publish_journaled =
          TimePublishes(journaled, publish_tables, kPublishes, kBatches);
    } else {
      publish_journaled = -1.0;
    }
    std::filesystem::remove_all(state_dir);
  } else {
    publish_journaled = -1.0;
  }
  double publish_overhead = publish_plain > 0.0 && publish_journaled > 0.0
                                ? publish_journaled / publish_plain
                                : -1.0;

  double speedup = warm_total > 0 ? cold_total / warm_total : 0.0;
  double partial_speedup =
      partial_total > 0 ? partial_nocache_total / partial_total : 0.0;
  double hit_rate =
      profile_hits + profile_misses > 0
          ? double(profile_hits) / double(profile_hits + profile_misses)
          : 0.0;
  bool ok = warm_mismatches == 0 && partial_mismatches == 0 &&
            publish_overhead > 0.0;

  if (as_json) {
    std::printf(
        "{\"bench\":\"serve_cold_warm\",\"cases\":%zu,"
        "\"cold_total_seconds\":%.6f,\"warm_total_seconds\":%.6f,"
        "\"warm_speedup\":%.2f,"
        "\"partial_total_seconds\":%.6f,"
        "\"partial_nocache_total_seconds\":%.6f,"
        "\"partial_speedup\":%.2f,"
        "\"profile_cache_hit_rate\":%.3f,"
        "\"publish_plain_seconds\":%.6f,"
        "\"publish_journaled_seconds\":%.6f,"
        "\"publish_journal_overhead\":%.2f,"
        "\"warm_bit_identical\":%s,\"partial_bit_identical\":%s}\n",
        benchmark.cases.size(), cold_total, warm_total, speedup,
        partial_total, partial_nocache_total, partial_speedup, hit_rate,
        publish_plain, publish_journaled, publish_overhead,
        warm_mismatches == 0 ? "true" : "false",
        partial_mismatches == 0 ? "true" : "false");
  } else {
    std::printf("bench_serve: %zu cases\n", benchmark.cases.size());
    std::printf("  cold    total %.3f s\n", cold_total);
    std::printf("  warm    total %.3f s (%.1fx speedup, %s)\n", warm_total,
                speedup, warm_mismatches == 0 ? "bit-identical" : "MISMATCH");
    std::printf("  partial total %.3f s vs %.3f s uncached (%.1fx, %s)\n",
                partial_total, partial_nocache_total, partial_speedup,
                partial_mismatches == 0 ? "bit-identical" : "MISMATCH");
    std::printf("  profile cache hit rate on partial re-upload: %.1f%%\n",
                100.0 * hit_rate);
    std::printf(
        "  publish_model x%d: %.3f ms plain, %.3f ms journaled (%.2fx)\n",
        kPublishes, 1e3 * publish_plain, 1e3 * publish_journaled,
        publish_overhead);
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace autobi

int main(int argc, char** argv) {
  bool as_json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") as_json = true;
  }
  return autobi::Run(as_json);
}
