// Reproduces Table 5: overall quality comparison of all methods on the REAL
// benchmark (edge-level P/R/F + case-level precision) and on the four TPC
// benchmarks (edge-level P/R/F).

#include <cstdio>

#include "bench/bench_common.h"
#include "common/strings.h"
#include "eval/harness.h"
#include "eval/report.h"

int main() {
  using namespace autobi;
  using namespace autobi::bench;

  LocalModel model = GetTrainedModel();
  RealBenchmark real = GetRealBenchmark();
  std::vector<BiCase> tpc = TpcBenchmarks();
  auto methods = StandardMethods(&model);

  std::printf("=== Table 5: quality on the %zu-case REAL benchmark and 4 "
              "TPC benchmarks ===\n",
              real.cases.size());
  TablePrinter t({"Method",
                  "REAL P_edge", "REAL R_edge", "REAL F_edge", "REAL P_case",
                  "TPC-H P/R/F", "TPC-DS P/R/F", "TPC-C P/R/F",
                  "TPC-E P/R/F"});
  for (const auto& method : methods) {
    std::fprintf(stderr, "[table5] running %s...\n", method->name().c_str());
    MethodResults real_results = RunMethod(*method, real.cases);
    AggregateMetrics q = real_results.Quality();
    std::vector<std::string> row = {
        method->name(), Fmt3(q.precision), Fmt3(q.recall), Fmt3(q.f1),
        Fmt3(q.case_precision)};
    for (const BiCase& bi_case : tpc) {
      MethodResults r = RunMethod(*method, {bi_case});
      AggregateMetrics tq = r.Quality();
      row.push_back(StrFormat("%.2f/%.2f/%.2f", tq.precision, tq.recall,
                              tq.f1));
    }
    t.AddRow(row);
  }
  t.Print();
  std::printf("\nPaper reference (Table 5, REAL): Auto-BI-P 0.98/0.664/"
              "0.752/0.92; Auto-BI 0.973/0.879/0.907/0.853; Auto-BI-S "
              "0.951/0.848/0.861/0.779; System-X 0.916/0.584/0.66/0.754; "
              "MC-FK 0.604/0.616/0.503/0.289; Fast-FK 0.647/0.585/0.594/"
              "0.259; HoPF 0.684/0.714/0.67/0.301; ML-FK 0.846/0.77/0.773/"
              "0.557; GPT-3.5 0.73/0.64/0.67/0.43.\n");
  return 0;
}
