// Lake-scale Predict scaling (PR 9): sweeps synthetic data lakes of
// disconnected star/snowflake islands (synth/lake.h) over increasing table
// counts and measures how blocking + the partitioned solve bend the
// end-to-end curve. At every size the blocked run is compared against the
// exhaustive all-pairs oracle (blocking.enabled = false): any divergence in
// the exported model, the join graph, or the selected edge sets prints
// FATAL and exits nonzero — the scaling numbers can never mask a recall
// loss.
//
// The sub-quadratic claim is gated on the admitted-column-pair curve: a
// log-log least-squares fit of blocking-admitted pairs against table count
// must stay below exponent 1.5 (all-pairs scanning is exactly 2.0 in table
// count at fixed island size).
//
// Usage: bench_lake [--json] [--max_tables N] [--threads N]
//   --json        one machine-readable JSON object (consumed by
//                 scripts/bench_smoke.sh -> BENCH_pr9.json).
//   --max_tables  largest sweep point (default 500, capped at 1000).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/timer.h"
#include "core/auto_bi.h"
#include "core/model_export.h"
#include "synth/lake.h"

namespace autobi {
namespace {

[[noreturn]] void Fatal(const std::string& message) {
  std::fprintf(stderr, "bench_lake: FATAL — %s\n", message.c_str());
  std::exit(1);
}

struct SizeResult {
  int tables = 0;
  double predict_on_ms = 0.0;   // Blocking + partitioned solve (default).
  double predict_off_ms = 0.0;  // Exhaustive all-pairs oracle.
  double speedup = 0.0;
  bool bit_identical = false;
  // Blocking counters of the blocked run.
  double pruning_rate = 0.0;
  size_t column_pairs_total = 0;
  size_t column_pairs_admitted = 0;
  size_t table_pairs_total = 0;
  size_t table_pairs_active = 0;
  // Partitioned-solve telemetry.
  bool partition_used = false;
  size_t components = 0;
  size_t components_solved = 0;
  size_t joins = 0;
};

AutoBiResult MustPredict(const AutoBi& predictor,
                         const std::vector<Table>& tables) {
  StatusOr<AutoBiResult> result = predictor.Predict(tables, nullptr);
  if (!result.ok()) Fatal("Predict failed: " + result.status().ToString());
  return std::move(result.value());
}

SizeResult RunSize(const LocalModel& model, int num_tables, int threads) {
  Rng rng(0x1a6e0000u + uint64_t(num_tables));
  LakeGenOptions gen;
  gen.num_tables = num_tables;
  BiCase lake = GenerateLake(gen, rng);
  if (int(lake.tables.size()) != num_tables) {
    Fatal(StrFormat("lake generator produced %zu tables, wanted %d",
                    lake.tables.size(), num_tables));
  }

  AutoBiOptions on;
  on.threads = threads;
  AutoBiOptions off = on;
  off.candidates.ind.blocking.enabled = false;

  SizeResult out;
  out.tables = num_tables;

  AutoBi predictor_on(&model, on);
  Timer on_timer;
  AutoBiResult r_on = MustPredict(predictor_on, lake.tables);
  out.predict_on_ms = on_timer.Seconds() * 1e3;

  AutoBi predictor_off(&model, off);
  Timer off_timer;
  AutoBiResult r_off = MustPredict(predictor_off, lake.tables);
  out.predict_off_ms = off_timer.Seconds() * 1e3;
  out.speedup =
      out.predict_on_ms > 0 ? out.predict_off_ms / out.predict_on_ms : 0;

  StatusOr<std::string> json_on = ExportJson(lake.tables, r_on.model);
  StatusOr<std::string> json_off = ExportJson(lake.tables, r_off.model);
  out.bit_identical = json_on.ok() && json_off.ok() &&
                      *json_on == *json_off &&
                      r_on.graph.StructurallyEqual(r_off.graph) &&
                      r_on.backbone_edges == r_off.backbone_edges &&
                      r_on.recall_edges == r_off.recall_edges;
  if (!out.bit_identical) {
    Fatal(StrFormat("%d tables: blocking changed the prediction (recall "
                    "loss or graph divergence vs exhaustive oracle)",
                    num_tables));
  }

  const BlockingStats& b = r_on.ind_stats.blocking;
  out.pruning_rate = b.PruningRate();
  out.column_pairs_total = b.column_pairs_total;
  out.column_pairs_admitted = b.column_pairs_admitted;
  out.table_pairs_total = b.table_pairs_total;
  out.table_pairs_active = b.table_pairs_active;
  out.partition_used = r_on.partition.used;
  out.components = r_on.partition.components;
  out.components_solved = r_on.partition.components_solved;
  out.joins = r_on.model.joins.size();
  return out;
}

// Least-squares slope of log(y) against log(x): the growth exponent of the
// admitted-pair curve over the sweep.
double FitExponent(const std::vector<SizeResult>& results) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  size_t n = 0;
  for (const SizeResult& r : results) {
    if (r.column_pairs_admitted == 0) continue;
    double x = std::log(double(r.tables));
    double y = std::log(double(r.column_pairs_admitted));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++n;
  }
  if (n < 2) return 0.0;
  double denom = double(n) * sxx - sx * sx;
  return denom != 0 ? (double(n) * sxy - sx * sy) / denom : 0.0;
}

std::string SizeJson(const SizeResult& r) {
  return StrFormat(
      "    {\"tables\": %d, \"predict_on_ms\": %.3f, \"predict_off_ms\": "
      "%.3f, \"speedup\": %.2f, \"bit_identical\": %s, \"pruning_rate\": "
      "%.4f, \"column_pairs_total\": %zu, \"column_pairs_admitted\": %zu, "
      "\"table_pairs_total\": %zu, \"table_pairs_active\": %zu, "
      "\"partition_used\": %s, \"components\": %zu, \"components_solved\": "
      "%zu, \"joins\": %zu}",
      r.tables, r.predict_on_ms, r.predict_off_ms, r.speedup,
      r.bit_identical ? "true" : "false", r.pruning_rate,
      r.column_pairs_total, r.column_pairs_admitted, r.table_pairs_total,
      r.table_pairs_active, r.partition_used ? "true" : "false",
      r.components, r.components_solved, r.joins);
}

}  // namespace
}  // namespace autobi

int main(int argc, char** argv) {
  using namespace autobi;
  bool json = false;
  int max_tables = 500;
  int threads = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--max_tables") == 0 && i + 1 < argc) {
      max_tables = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: bench_lake [--json] [--max_tables N] "
                   "[--threads N]\n");
      return 2;
    }
  }
  max_tables = std::min(std::max(max_tables, 50), 1000);

  LocalModel model = bench::GetTrainedModel();
  std::vector<int> sizes;
  for (int s : {50, 100, 200, 350, 500, 700, 1000}) {
    if (s <= max_tables) sizes.push_back(s);
  }
  if (sizes.back() != max_tables) sizes.push_back(max_tables);

  std::vector<SizeResult> results;
  for (int s : sizes) {
    results.push_back(RunSize(model, s, threads));
    const SizeResult& r = results.back();
    if (!json) {
      std::printf(
          "%5d tables: on %8.1f ms  off %8.1f ms  (%5.2fx)  pruning %.4f  "
          "active pairs %zu/%zu  components %zu  joins %zu\n",
          r.tables, r.predict_on_ms, r.predict_off_ms, r.speedup,
          r.pruning_rate, r.table_pairs_active, r.table_pairs_total,
          r.components, r.joins);
    }
  }

  double exponent = FitExponent(results);
  const SizeResult& largest = results.back();
  bool all_identical = true;
  for (const SizeResult& r : results) all_identical &= r.bit_identical;

  if (json) {
    std::string out = "{\n  \"runs\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
      out += SizeJson(results[i]);
      out += i + 1 < results.size() ? ",\n" : "\n";
    }
    out += "  ],\n";
    out += StrFormat("  \"admitted_pairs_exponent\": %.3f,\n", exponent);
    out += StrFormat("  \"max_tables\": %d,\n", largest.tables);
    out += StrFormat("  \"max_size_pruning_rate\": %.4f,\n",
                     largest.pruning_rate);
    out += StrFormat("  \"max_size_predict_ms\": %.3f,\n",
                     largest.predict_on_ms);
    out += StrFormat("  \"all_bit_identical\": %s\n",
                     all_identical ? "true" : "false");
    out += "}\n";
    std::fputs(out.c_str(), stdout);
  } else {
    std::printf("admitted-pairs growth exponent: %.3f (gate: < 1.5)\n",
                exponent);
  }
  return 0;
}
