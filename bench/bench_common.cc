#include "bench/bench_common.h"

#include <cstdio>
#include <cstdlib>

#include "common/rng.h"
#include "common/strings.h"
#include "synth/tpc.h"

namespace autobi {
namespace bench {

namespace {

long EnvLong(const char* name, long fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  int64_t out = 0;
  return ParseInt64(v, &out) ? long(out) : fallback;
}

double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  double out = 0;
  return ParseDouble(v, &out) ? out : fallback;
}

constexpr uint64_t kTrainSeed = 20230701;
constexpr uint64_t kBenchSeed = 555;

}  // namespace

int RealCasesPerBucket() {
  return int(EnvLong("AUTOBI_REAL_CASES", 4));
}

size_t TrainCases() { return size_t(EnvLong("AUTOBI_TRAIN_CASES", 150)); }

double TpcScale() { return EnvDouble("AUTOBI_TPC_SCALE", 0.25); }

LocalModel GetTrainedModel(const std::string& variant) {
  std::string path = StrFormat("autobi_model_cache_%s_%zu.txt",
                               variant.c_str(), TrainCases());
  LocalModel model;
  if (model.LoadFromFile(path)) {
    std::fprintf(stderr, "[bench] loaded cached model %s\n", path.c_str());
    return model;
  }
  std::fprintf(stderr,
               "[bench] training local model (%zu cases, variant=%s)...\n",
               TrainCases(), variant.c_str());
  CorpusOptions corpus;
  corpus.seed = kTrainSeed;
  corpus.training_cases = TrainCases();
  TrainerOptions trainer;
  if (variant == "nosplit") trainer.split_one_to_one = false;
  if (variant == "notrans") trainer.label_transitivity = false;
  TrainerReport report;
  model = TrainLocalModel(BuildTrainingCorpus(corpus), trainer, &report);
  std::fprintf(stderr,
               "[bench] trained: N1 %zu ex (%zu pos, AUC %.3f, ECE %.3f); "
               "1:1 %zu ex (%zu pos, AUC %.3f)\n",
               report.n1_examples, report.n1_positives, report.n1_auc,
               report.n1_calibration_error, report.one_examples,
               report.one_positives, report.one_auc);
  if (!model.SaveToFile(path)) {
    std::fprintf(stderr, "[bench] warning: could not cache model to %s\n",
                 path.c_str());
  }
  return model;
}

RealBenchmark GetRealBenchmark() {
  CorpusOptions opt;
  opt.seed = kBenchSeed;
  opt.cases_per_bucket = size_t(RealCasesPerBucket());
  return BuildRealBenchmark(opt);
}

const MlFkModel* GetMlFkModel() {
  static MlFkModel* model = [] {
    auto* m = new MlFkModel();
    std::string path = StrFormat("autobi_mlfk_cache_%zu.txt", TrainCases());
    if (m->LoadFromFile(path)) return m;
    std::fprintf(stderr, "[bench] training ML-FK baseline model...\n");
    CorpusOptions corpus;
    corpus.seed = kTrainSeed;
    corpus.training_cases = TrainCases();
    m->Train(BuildTrainingCorpus(corpus));
    m->SaveToFile(path);
    return m;
  }();
  return model;
}

std::vector<std::unique_ptr<JoinPredictor>> StandardMethods(
    const LocalModel* model) {
  std::vector<std::unique_ptr<JoinPredictor>> methods;
  AutoBiOptions precision;
  precision.mode = AutoBiMode::kPrecisionOnly;
  methods.push_back(
      std::make_unique<AutoBiPredictor>("Auto-BI-P", model, precision));
  methods.push_back(
      std::make_unique<AutoBiPredictor>("Auto-BI", model, AutoBiOptions{}));
  AutoBiOptions schema_only;
  schema_only.mode = AutoBiMode::kSchemaOnly;
  methods.push_back(
      std::make_unique<AutoBiPredictor>("Auto-BI-S", model, schema_only));
  methods.push_back(std::make_unique<SystemX>());
  methods.push_back(std::make_unique<McFk>());
  methods.push_back(std::make_unique<FastFk>());
  methods.push_back(std::make_unique<HoPf>());
  methods.push_back(std::make_unique<MlFkRostin>(GetMlFkModel()));
  methods.push_back(std::make_unique<NamePrior>());
  return methods;
}

std::vector<std::unique_ptr<JoinPredictor>> EnhancedMethods(
    const LocalModel* model) {
  std::vector<std::unique_ptr<JoinPredictor>> methods;
  methods.push_back(std::make_unique<McFk>(model));
  methods.push_back(std::make_unique<FastFk>(model));
  methods.push_back(std::make_unique<HoPf>(model));
  methods.push_back(std::make_unique<LcOnly>(model));
  return methods;
}

std::vector<BiCase> TpcBenchmarks() {
  std::vector<BiCase> cases;
  Rng rng(777);
  cases.push_back(GenerateTpcH(TpcScale(), rng));
  cases.push_back(GenerateTpcDs(TpcScale(), rng));
  cases.push_back(GenerateTpcC(TpcScale(), rng));
  cases.push_back(GenerateTpcE(TpcScale(), rng));
  return cases;
}

}  // namespace bench
}  // namespace autobi
