// Reproduces Tables 2, 3 and 4: characteristics of the harvested BI-model
// population, the stratified REAL benchmark, and the four TPC benchmarks.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/strings.h"
#include "eval/report.h"
#include "synth/corpus.h"

namespace autobi {
namespace {

void PrintStatsTable(const char* title, const CorpusStats& s) {
  std::printf("\n%s\n", title);
  TablePrinter t({"", "Average", "50-th p%", "90-th p%", "95-th p%"});
  auto row = [&](const char* label, double avg, double p50, double p90,
                 double p95) {
    t.AddRow({label, StrFormat("%.1f", avg), StrFormat("%.1f", p50),
              StrFormat("%.1f", p90), StrFormat("%.1f", p95)});
  };
  row("# of rows per table", s.rows_avg, s.rows_p50, s.rows_p90, s.rows_p95);
  row("# of columns per table", s.cols_avg, s.cols_p50, s.cols_p90,
      s.cols_p95);
  row("# of tables (nodes) per case", s.tables_avg, s.tables_p50,
      s.tables_p90, s.tables_p95);
  row("# of relationships (edges) per case", s.edges_avg, s.edges_p50,
      s.edges_p90, s.edges_p95);
  t.Print();
}

}  // namespace
}  // namespace autobi

int main() {
  using namespace autobi;
  using namespace autobi::bench;

  std::printf("=== Table 2: characteristics of all BI models harvested "
              "(synthetic wild collection) ===\n");
  CorpusOptions wild;
  wild.seed = 20230701;
  std::vector<BiCase> collection = BuildWildCollection(wild, 400);
  PrintStatsTable("Table 2 (wild collection)",
                  ComputeCorpusStats(collection));

  std::printf("\n=== Table 3: characteristics of the stratified REAL "
              "benchmark ===\n");
  RealBenchmark real = GetRealBenchmark();
  PrintStatsTable(
      StrFormat("Table 3 (%zu-case REAL benchmark)", real.cases.size())
          .c_str(),
      ComputeCorpusStats(real.cases));

  std::printf("\n=== Table 4: characteristics of the 4 TPC benchmarks ===\n");
  TablePrinter t4({"", "TPC-H", "TPC-DS", "TPC-C", "TPC-E"});
  std::vector<BiCase> tpc = TpcBenchmarks();
  // TpcBenchmarks returns H, DS, C, E.
  auto stat = [&](auto f) {
    std::vector<std::string> row;
    for (const BiCase& c : tpc) row.push_back(f(c));
    return row;
  };
  auto rows_avg = stat([](const BiCase& c) {
    double sum = 0;
    for (const Table& t : c.tables) sum += double(t.num_rows());
    return StrFormat("%.0f", sum / double(c.tables.size()));
  });
  auto cols_avg = stat([](const BiCase& c) {
    double sum = 0;
    for (const Table& t : c.tables) sum += double(t.num_columns());
    return StrFormat("%.1f", sum / double(c.tables.size()));
  });
  auto tables = stat(
      [](const BiCase& c) { return StrFormat("%zu", c.tables.size()); });
  auto edges = stat([](const BiCase& c) {
    return StrFormat("%zu", c.ground_truth.joins.size());
  });
  t4.AddRow({"average # of rows per table", rows_avg[0], rows_avg[1],
             rows_avg[2], rows_avg[3]});
  t4.AddRow({"average # of columns per table", cols_avg[0], cols_avg[1],
             cols_avg[2], cols_avg[3]});
  t4.AddRow({"# of tables (nodes)", tables[0], tables[1], tables[2],
             tables[3]});
  t4.AddRow({"# of relationships (edges)", edges[0], edges[1], edges[2],
             edges[3]});
  t4.Print();
  std::printf("\nNote: row counts scale with AUTOBI_TPC_SCALE (=%.2f); the\n"
              "paper's Table 4 used full-scale dbgen data.\n",
              TpcScale());
  return 0;
}
