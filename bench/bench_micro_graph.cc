// Google-benchmark microbenchmarks for the graph solvers: Chu-Liu/Edmonds
// (1-MCA), the artificial-root k-MCA reduction, and branch-and-bound
// k-MCA-CC, on random schema-like graphs of growing size.
//
// Besides wall-clock, the solver benchmarks report two PR 4 counters:
//   allocs_per_iter — heap allocations per solve (global operator new
//                     count; ~0 in the steady state for the workspace path),
//   ns_per_1mca     — mean wall-clock per Chu-Liu/Edmonds invocation inside
//                     branch-and-bound (the Figure 7 cost unit).

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "common/rng.h"
#include "graph/edmonds.h"
#include "graph/join_graph.h"
#include "graph/kmca.h"
#include "graph/kmca_cc.h"

// --- Global allocation counter. Counting overrides of the replaceable
// global operators; relaxed atomics keep the probe cheap enough to leave on.
static std::atomic<long> g_alloc_count{0};

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace autobi {
namespace {

long AllocCount() { return g_alloc_count.load(std::memory_order_relaxed); }

// Random graph shaped like a scored schema graph: n vertices, ~3n candidate
// edges, a few FK-once conflicts.
JoinGraph RandomSchemaGraph(int n, Rng& rng) {
  JoinGraph g(n);
  int edges = 3 * n;
  for (int i = 0; i < edges; ++i) {
    int u = int(rng.NextBelow(size_t(n)));
    int v = int(rng.NextBelow(size_t(n)));
    if (u == v) continue;
    // Small column space per vertex creates realistic conflict groups.
    int col = int(rng.NextBelow(4));
    g.AddEdge(u, v, {col}, {0}, rng.NextDouble(0.05, 0.95));
  }
  return g;
}

// Adversarial conflict-dense graph: `hubs` source vertices, each with one
// FK-once group fanning out to `fan` destinations (all probability > 0.5,
// so every group member survives the relaxation). The branch-and-bound tree
// has ~fan^hubs leaves before pruning and keeps >= kKmcaCcWaveBatch
// subproblems open, which is what the wave-parallel search is built for.
JoinGraph AdversarialConflictGraph(int hubs, int fan, Rng& rng) {
  int n = hubs + hubs * fan;
  JoinGraph g(n);
  for (int h = 0; h < hubs; ++h) {
    for (int f = 0; f < fan; ++f) {
      int dst = hubs + h * fan + f;
      g.AddEdge(h, dst, {0}, {0}, rng.NextDouble(0.55, 0.95));
      // A costlier parallel alternative keeps subtrees non-trivial after the
      // primary edge is masked.
      g.AddEdge(h, dst, {0}, {1}, rng.NextDouble(0.51, 0.54));
    }
  }
  return g;
}

void BM_Edmonds(benchmark::State& state) {
  int n = int(state.range(0));
  Rng rng(99);
  std::vector<Arc> arcs;
  for (int i = 0; i < 4 * n; ++i) {
    arcs.push_back(Arc{int(rng.NextBelow(size_t(n))),
                       int(rng.NextBelow(size_t(n))),
                       rng.NextDouble(0.0, 1.0)});
  }
  for (auto _ : state) {
    auto result = SolveMinCostArborescence(n + 1, arcs, 0);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_Edmonds)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

// The frozen recursive reference, for the before/after column: fresh
// scratch vectors at every level of every call.
void BM_EdmondsLegacy(benchmark::State& state) {
  int n = int(state.range(0));
  Rng rng(99);
  std::vector<Arc> arcs;
  for (int i = 0; i < 4 * n; ++i) {
    arcs.push_back(Arc{int(rng.NextBelow(size_t(n))),
                       int(rng.NextBelow(size_t(n))),
                       rng.NextDouble(0.0, 1.0)});
  }
  for (auto _ : state) {
    auto result = SolveMinCostArborescenceLegacy(n + 1, arcs, 0);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_EdmondsLegacy)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

// Steady-state workspace reuse: same instance solved repeatedly through one
// explicitly-owned arena. allocs_per_iter should read ~0.
void BM_EdmondsWorkspaceReuse(benchmark::State& state) {
  int n = int(state.range(0));
  Rng rng(99);
  std::vector<Arc> arcs;
  for (int i = 0; i < 4 * n; ++i) {
    arcs.push_back(Arc{int(rng.NextBelow(size_t(n))),
                       int(rng.NextBelow(size_t(n))),
                       rng.NextDouble(0.0, 1.0)});
  }
  EdmondsWorkspace workspace;
  workspace.Solve(n + 1, arcs, 0);  // Warm the arena.
  long allocs_before = AllocCount();
  long iters = 0;
  for (auto _ : state) {
    bool ok = workspace.Solve(n + 1, arcs, 0);
    benchmark::DoNotOptimize(ok);
    benchmark::DoNotOptimize(workspace.selected().data());
    ++iters;
  }
  state.counters["allocs_per_iter"] =
      double(AllocCount() - allocs_before) / double(iters > 0 ? iters : 1);
}
BENCHMARK(BM_EdmondsWorkspaceReuse)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_SolveKmca(benchmark::State& state) {
  int n = int(state.range(0));
  Rng rng(7);
  JoinGraph g = RandomSchemaGraph(n, rng);
  for (auto _ : state) {
    KmcaResult r = SolveKmca(g, DefaultPenaltyWeight());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SolveKmca)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void RunKmcaCc(benchmark::State& state, const JoinGraph& g, bool legacy,
               int threads) {
  KmcaCcOptions opt;
  opt.threads = threads;
  long calls = 0;
  long allocs_before = AllocCount();
  long iters = 0;
  for (auto _ : state) {
    KmcaCcStats stats;
    KmcaResult r = legacy ? SolveKmcaCcLegacy(g, opt, &stats)
                          : SolveKmcaCc(g, opt, &stats);
    benchmark::DoNotOptimize(r);
    calls = stats.one_mca_calls;
    ++iters;
  }
  state.counters["one_mca_calls"] = double(calls);
  state.counters["allocs_per_iter"] =
      double(AllocCount() - allocs_before) / double(iters > 0 ? iters : 1);
  // Time per 1-MCA call: total 1-MCA invocations as an inverted rate, i.e.
  // elapsed seconds / (calls * iterations), printed with an SI suffix
  // (e.g. 850n = 850 ns per Chu-Liu/Edmonds call inside branch-and-bound).
  state.counters["time_per_1mca"] = benchmark::Counter(
      double(calls) * double(iters),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

void BM_SolveKmcaCc(benchmark::State& state) {
  int n = int(state.range(0));
  Rng rng(13);
  JoinGraph g = RandomSchemaGraph(n, rng);
  RunKmcaCc(state, g, /*legacy=*/false, /*threads=*/1);
}
BENCHMARK(BM_SolveKmcaCc)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_SolveKmcaCcLegacy(benchmark::State& state) {
  int n = int(state.range(0));
  Rng rng(13);
  JoinGraph g = RandomSchemaGraph(n, rng);
  RunKmcaCc(state, g, /*legacy=*/true, /*threads=*/1);
}
BENCHMARK(BM_SolveKmcaCcLegacy)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

// Adversarial branch-and-bound: legacy vs wave-parallel at 1 and 8 threads.
// Arg encodes (hubs, fan) = (3, 6): ~200+ open subproblems.
void BM_KmcaCcAdversarialLegacy(benchmark::State& state) {
  Rng rng(21);
  JoinGraph g = AdversarialConflictGraph(3, int(state.range(0)), rng);
  RunKmcaCc(state, g, /*legacy=*/true, /*threads=*/1);
}
BENCHMARK(BM_KmcaCcAdversarialLegacy)->Arg(4)->Arg(6);

void BM_KmcaCcAdversarial1T(benchmark::State& state) {
  Rng rng(21);
  JoinGraph g = AdversarialConflictGraph(3, int(state.range(0)), rng);
  RunKmcaCc(state, g, /*legacy=*/false, /*threads=*/1);
}
BENCHMARK(BM_KmcaCcAdversarial1T)->Arg(4)->Arg(6);

void BM_KmcaCcAdversarial8T(benchmark::State& state) {
  Rng rng(21);
  JoinGraph g = AdversarialConflictGraph(3, int(state.range(0)), rng);
  RunKmcaCc(state, g, /*legacy=*/false, /*threads=*/8);
}
BENCHMARK(BM_KmcaCcAdversarial8T)->Arg(4)->Arg(6);

}  // namespace
}  // namespace autobi

BENCHMARK_MAIN();
