// Google-benchmark microbenchmarks for the graph solvers: Chu-Liu/Edmonds
// (1-MCA), the artificial-root k-MCA reduction, and branch-and-bound
// k-MCA-CC, on random schema-like graphs of growing size.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "graph/edmonds.h"
#include "graph/join_graph.h"
#include "graph/kmca.h"
#include "graph/kmca_cc.h"

namespace autobi {
namespace {

// Random graph shaped like a scored schema graph: n vertices, ~3n candidate
// edges, a few FK-once conflicts.
JoinGraph RandomSchemaGraph(int n, Rng& rng) {
  JoinGraph g(n);
  int edges = 3 * n;
  for (int i = 0; i < edges; ++i) {
    int u = int(rng.NextBelow(size_t(n)));
    int v = int(rng.NextBelow(size_t(n)));
    if (u == v) continue;
    // Small column space per vertex creates realistic conflict groups.
    int col = int(rng.NextBelow(4));
    g.AddEdge(u, v, {col}, {0}, rng.NextDouble(0.05, 0.95));
  }
  return g;
}

void BM_Edmonds(benchmark::State& state) {
  int n = int(state.range(0));
  Rng rng(99);
  std::vector<Arc> arcs;
  for (int i = 0; i < 4 * n; ++i) {
    arcs.push_back(Arc{int(rng.NextBelow(size_t(n))),
                       int(rng.NextBelow(size_t(n))),
                       rng.NextDouble(0.0, 1.0)});
  }
  for (auto _ : state) {
    auto result = SolveMinCostArborescence(n + 1, arcs, 0);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_Edmonds)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_SolveKmca(benchmark::State& state) {
  int n = int(state.range(0));
  Rng rng(7);
  JoinGraph g = RandomSchemaGraph(n, rng);
  for (auto _ : state) {
    KmcaResult r = SolveKmca(g, DefaultPenaltyWeight());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SolveKmca)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_SolveKmcaCc(benchmark::State& state) {
  int n = int(state.range(0));
  Rng rng(13);
  JoinGraph g = RandomSchemaGraph(n, rng);
  long calls = 0;
  for (auto _ : state) {
    KmcaCcStats stats;
    KmcaResult r = SolveKmcaCc(g, KmcaCcOptions{}, &stats);
    benchmark::DoNotOptimize(r);
    calls = stats.one_mca_calls;
  }
  state.counters["one_mca_calls"] = double(calls);
}
BENCHMARK(BM_SolveKmcaCc)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

}  // namespace
}  // namespace autobi

BENCHMARK_MAIN();
