// Extension: compares the default hash-based approximate IND discovery with
// the SPIDER-style exact merge algorithm [12] on generated cases —
// agreement on clean data, divergence on dirty FKs (which only the
// approximate variant tolerates), and wall-clock cost.

#include <cstdio>
#include <set>

#include "bench/bench_common.h"
#include "common/strings.h"
#include "common/timer.h"
#include "eval/report.h"
#include "profile/ind.h"
#include "profile/spider.h"
#include "synth/bi_generator.h"

int main() {
  using namespace autobi;
  using namespace autobi::bench;

  Rng rng(2023);
  TablePrinter t({"case", "#tables", "hash INDs", "SPIDER exact INDs",
                  "exact ⊆ approx?", "hash time", "SPIDER time"});
  for (int size : {6, 10, 16, 24}) {
    for (bool clean : {true, false}) {
      BiGenOptions gen;
      gen.num_tables = size;
      if (clean) {
        gen.dangling_fk_prob = 0.0;  // Perfect FKs: exact == approximate.
      }
      BiCase bi_case = GenerateBiCase(gen, rng);

      Timer hash_timer;
      auto profiles = ProfileTables(bi_case.tables);
      std::vector<std::vector<Ucc>> uccs;
      for (size_t i = 0; i < bi_case.tables.size(); ++i) {
        uccs.push_back(DiscoverUccs(bi_case.tables[i], profiles[i]));
      }
      IndOptions opt;
      opt.max_arity = 1;
      std::vector<Ind> hash_inds =
          DiscoverInds(bi_case.tables, profiles, uccs, opt);
      double hash_seconds = hash_timer.Seconds();

      Timer spider_timer;
      std::vector<SpiderInd> exact_inds =
          DiscoverExactIndsSpider(bi_case.tables);
      double spider_seconds = spider_timer.Seconds();

      // Every exact IND whose referenced side is key-like must also be an
      // approximate IND (containment 1.0 >= threshold).
      std::set<std::pair<ColumnRef, ColumnRef>> approx;
      for (const Ind& ind : hash_inds) {
        approx.insert({ind.dependent, ind.referenced});
      }
      bool contained = true;
      for (const SpiderInd& ind : exact_inds) {
        const ColumnProfile& ref =
            profiles[size_t(ind.referenced.table)]
                .columns[size_t(ind.referenced.columns[0])];
        if (ref.distinct_ratio < opt.min_referenced_distinct_ratio) continue;
        if (!approx.count({ind.dependent, ind.referenced})) {
          contained = false;
        }
      }
      t.AddRow({StrFormat("%s-%dT", clean ? "clean" : "dirty", size),
                StrFormat("%zu", bi_case.tables.size()),
                StrFormat("%zu", hash_inds.size()),
                StrFormat("%zu", exact_inds.size()),
                contained ? "yes" : "NO", FmtSeconds(hash_seconds),
                FmtSeconds(spider_seconds)});
    }
  }
  std::printf("=== Extension: hash-based approximate vs SPIDER exact IND "
              "discovery ===\n");
  t.Print();
  std::printf("\nThe approximate variant is the Auto-BI default because "
              "real BI joins are often not perfectly inclusive (dirty FKs); "
              "on clean data every key-targeted exact IND is also found by "
              "the approximate pass.\n");
  return 0;
}
