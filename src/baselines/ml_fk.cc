#include "baselines/ml_fk.h"

#include <algorithm>
#include <fstream>
#include <map>

#include "common/strings.h"
#include "common/timer.h"
#include "core/candidates.h"
#include "core/trainer.h"
#include "text/similarity.h"
#include "text/tokenize.h"

namespace autobi {

namespace {

std::string RefName(const FeatureContext& ctx, const ColumnRef& ref) {
  std::string out;
  for (size_t i = 0; i < ref.columns.size(); ++i) {
    if (i > 0) out += " ";
    out += (*ctx.tables)[size_t(ref.table)]
               .column(size_t(ref.columns[i]))
               .name();
  }
  return out;
}

}  // namespace

std::vector<std::string> MlFkModel::FeatureNames() {
  return {"coverage",          "name_similarity", "dependent_distinct",
          "referenced_is_first", "row_ratio",     "key_suffix",
          "value_length_diff"};
}

std::vector<double> MlFkModel::Featurize(const FeatureContext& ctx,
                                         const JoinCandidate& cand) {
  const TableProfile& ps = (*ctx.profiles)[size_t(cand.src.table)];
  const TableProfile& pd = (*ctx.profiles)[size_t(cand.dst.table)];
  const ColumnProfile& src = ps.columns[size_t(cand.src.columns[0])];
  const ColumnProfile& dst = pd.columns[size_t(cand.dst.columns[0])];
  std::string src_name = NormalizeIdentifier(RefName(ctx, cand.src));
  std::string dst_name = NormalizeIdentifier(RefName(ctx, cand.dst));
  std::string lower = ToLower(src_name);
  double key_suffix = (EndsWith(lower, "id") || EndsWith(lower, "key") ||
                       EndsWith(lower, "code") || EndsWith(lower, "no"))
                          ? 1.0
                          : 0.0;
  double rows_src = double(ps.row_count) + 1.0;
  double rows_dst = double(pd.row_count) + 1.0;
  return {
      cand.left_containment,
      EditSimilarity(src_name, dst_name),
      src.distinct_ratio,
      cand.dst.columns[0] == 0 ? 1.0 : 0.0,
      std::min(10.0, rows_src / rows_dst),
      key_suffix,
      std::min(20.0, std::fabs(src.avg_value_length - dst.avg_value_length)),
  };
}

void MlFkModel::Train(const std::vector<BiCase>& corpus) {
  Dataset data(FeatureNames());
  for (const BiCase& bi_case : corpus) {
    CandidateSet cands = GenerateCandidates(bi_case.tables);
    std::vector<int> labels =
        LabelCandidates(bi_case, cands.candidates, /*label_transitivity=*/false);
    FeatureContext ctx{&bi_case.tables, &cands.profiles, nullptr};
    for (size_t i = 0; i < cands.candidates.size(); ++i) {
      data.Add(Featurize(ctx, cands.candidates[i]), labels[i]);
    }
  }
  if (data.num_rows() >= 10 && data.num_positives() > 0 &&
      data.num_positives() < data.num_rows()) {
    lr_.Fit(data);
  }
}

double MlFkModel::Score(const FeatureContext& ctx,
                        const JoinCandidate& cand) const {
  if (!lr_.trained()) return 0.0;
  return lr_.PredictProba(Featurize(ctx, cand));
}

void MlFkModel::Save(std::ostream& os) const {
  os << "mlfk 1\n";
  lr_.Save(os);
}

bool MlFkModel::Load(std::istream& is) {
  std::string tag;
  int version = 0;
  if (!(is >> tag >> version) || tag != "mlfk" || version != 1) return false;
  return lr_.Load(is);
}

bool MlFkModel::SaveToFile(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  Save(os);
  return static_cast<bool>(os);
}

bool MlFkModel::LoadFromFile(const std::string& path) {
  std::ifstream is(path);
  if (!is) return false;
  return Load(is);
}

BiModel MlFkRostin::Predict(const std::vector<Table>& tables,
                            AutoBiTiming* timing) const {
  CandidateSet cands = GenerateCandidates(tables);
  if (timing != nullptr) {
    timing->ucc = cands.ucc_seconds;
    timing->ind = cands.ind_seconds;
  }
  Timer local_timer;
  FeatureContext ctx{&tables, &cands.profiles, nullptr};
  std::vector<double> scores;
  scores.reserve(cands.candidates.size());
  for (const JoinCandidate& cand : cands.candidates) {
    scores.push_back(model_->Score(ctx, cand));
  }
  if (timing != nullptr) timing->local_inference = local_timer.Seconds();

  Timer global_timer;
  // Per-FK argmax at threshold 0.5 (local decision only).
  std::map<std::pair<int, std::vector<int>>, size_t> best;
  for (size_t i = 0; i < cands.candidates.size(); ++i) {
    if (scores[i] < 0.5) continue;
    auto key = std::make_pair(cands.candidates[i].src.table,
                              cands.candidates[i].src.columns);
    auto it = best.find(key);
    if (it == best.end() || scores[i] > scores[it->second]) best[key] = i;
  }
  BiModel model;
  for (const auto& [key, idx] : best) {
    (void)key;
    const JoinCandidate& c = cands.candidates[idx];
    Join join;
    join.from = c.src;
    join.to = c.dst;
    join.kind = c.one_to_one ? JoinKind::kOneToOne : JoinKind::kNToOne;
    model.joins.push_back(join.Normalized());
  }
  if (timing != nullptr) timing->global_predict = global_timer.Seconds();
  return model;
}

}  // namespace autobi
