#ifndef AUTOBI_BASELINES_BASELINE_H_
#define AUTOBI_BASELINES_BASELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/auto_bi.h"
#include "core/bi_model.h"
#include "table/table.h"

namespace autobi {

// Common interface for all join-prediction methods compared in Section 5
// (Auto-BI variants, FK-detection baselines, commercial stand-in, enhanced
// "+LC" baselines). `timing` receives the per-stage latency breakdown of
// Figure 5(b) when non-null.
class JoinPredictor {
 public:
  virtual ~JoinPredictor() = default;
  virtual std::string name() const = 0;
  virtual BiModel Predict(const std::vector<Table>& tables,
                          AutoBiTiming* timing) const = 0;
};

// Adapts an AutoBi instance to the JoinPredictor interface.
class AutoBiPredictor : public JoinPredictor {
 public:
  AutoBiPredictor(std::string name, const LocalModel* model,
                  AutoBiOptions options)
      : name_(std::move(name)), auto_bi_(model, std::move(options)) {}

  std::string name() const override { return name_; }
  BiModel Predict(const std::vector<Table>& tables,
                  AutoBiTiming* timing) const override {
    AutoBiResult result = auto_bi_.Predict(tables);
    if (timing != nullptr) *timing = result.timing;
    return std::move(result.model);
  }

 private:
  std::string name_;
  AutoBi auto_bi_;
};

}  // namespace autobi

#endif  // AUTOBI_BASELINES_BASELINE_H_
