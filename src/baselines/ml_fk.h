#ifndef AUTOBI_BASELINES_ML_FK_H_
#define AUTOBI_BASELINES_ML_FK_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "baselines/baseline.h"
#include "core/bi_model.h"
#include "features/featurizer.h"
#include "ml/logistic.h"

namespace autobi {

// ML-FK (Rostin et al. [48]): an ML classifier over a compact set of
// hand-picked features — value coverage, name similarity, key-ish naming,
// dependent distinctness, table-size ratio — trained with logistic
// regression. It receives the same training data as Auto-BI's local
// classifiers (Section 5.2) but, per the original method, neither the
// 21-feature representation, the N:1/1:1 split, nor calibration; and it
// makes purely local decisions (per-FK argmax at threshold 0.5).
class MlFkModel {
 public:
  static std::vector<std::string> FeatureNames();

  // Feature vector of a candidate (7 features).
  static std::vector<double> Featurize(const FeatureContext& ctx,
                                       const JoinCandidate& cand);

  // Fits on labeled BI cases (same corpus the Auto-BI trainer consumes).
  void Train(const std::vector<BiCase>& corpus);

  double Score(const FeatureContext& ctx, const JoinCandidate& cand) const;
  bool trained() const { return lr_.trained(); }

  void Save(std::ostream& os) const;
  bool Load(std::istream& is);
  bool SaveToFile(const std::string& path) const;
  bool LoadFromFile(const std::string& path);

 private:
  LogisticRegression lr_;
};

// The ML-FK predictor: per FK column, keep the best-scoring PK candidate
// with score >= 0.5.
class MlFkRostin : public JoinPredictor {
 public:
  explicit MlFkRostin(const MlFkModel* model) : model_(model) {}
  std::string name() const override { return "ML-FK"; }
  BiModel Predict(const std::vector<Table>& tables,
                  AutoBiTiming* timing) const override;

 private:
  const MlFkModel* model_;
};

}  // namespace autobi

#endif  // AUTOBI_BASELINES_ML_FK_H_
