#include "baselines/fk_baselines.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>

#include "common/strings.h"
#include "common/timer.h"
#include "graph/validate.h"
#include "profile/emd.h"
#include "text/similarity.h"
#include "text/tokenize.h"

namespace autobi {

namespace {

// Runs candidate generation and charges its cost to the timing breakdown.
CandidateSet RunCandidates(const std::vector<Table>& tables,
                           AutoBiTiming* timing) {
  CandidateSet cands = GenerateCandidates(tables);
  if (timing != nullptr) {
    timing->ucc = cands.ucc_seconds;
    timing->ind = cands.ind_seconds;
  }
  return cands;
}

Join CandidateToJoin(const JoinCandidate& cand) {
  Join join;
  join.from = cand.src;
  join.to = cand.dst;
  join.kind = cand.one_to_one ? JoinKind::kOneToOne : JoinKind::kNToOne;
  return join.Normalized();
}

// Concatenated column name of a ref.
std::string RefName(const std::vector<Table>& tables, const ColumnRef& ref) {
  std::string out;
  for (size_t i = 0; i < ref.columns.size(); ++i) {
    if (i > 0) out += " ";
    out += tables[size_t(ref.table)].column(size_t(ref.columns[i])).name();
  }
  return out;
}

// Hand-crafted name similarity used by Fast-FK/HoPF: max of direct and
// dimension-table-augmented token Jaccard.
double BaselineNameSim(const std::vector<Table>& tables,
                       const JoinCandidate& cand) {
  std::string src = RefName(tables, cand.src);
  std::string dst = RefName(tables, cand.dst);
  std::string aug = tables[size_t(cand.dst.table)].name() + " " + dst;
  auto ts = TokenizeIdentifier(src);
  double direct = TokenJaccard(ts, TokenizeIdentifier(dst));
  double augmented = TokenJaccard(ts, TokenizeIdentifier(aug));
  double edit = EditSimilarity(NormalizeIdentifier(src),
                               NormalizeIdentifier(dst));
  return std::max({direct, augmented, edit});
}

// Calibrated LC probability for a candidate (used by ML-FK/LC and the
// enhanced "+LC" baselines), charged to the local-inference stage.
std::vector<double> LcScores(const LocalModel& lc,
                             const std::vector<Table>& tables,
                             const CandidateSet& cands, AutoBiTiming* timing) {
  Timer timer;
  FeatureContext ctx;
  ctx.tables = &tables;
  ctx.profiles = &cands.profiles;
  ctx.frequency = &lc.frequency();
  std::vector<double> scores;
  scores.reserve(cands.candidates.size());
  for (const JoinCandidate& cand : cands.candidates) {
    scores.push_back(lc.Score(ctx, cand, /*schema_only=*/false));
  }
  if (timing != nullptr) timing->local_inference = timer.Seconds();
  return scores;
}

// Per-source-column argmax selection: for each FK column keep the single
// best-scoring target whose score passes `threshold`. Higher = better.
BiModel ArgmaxPerSource(const std::vector<Table>& tables,
                        const CandidateSet& cands,
                        const std::vector<double>& scores, double threshold) {
  std::map<std::pair<int, std::vector<int>>, int> best;  // src ref -> index.
  for (size_t i = 0; i < cands.candidates.size(); ++i) {
    if (scores[i] < threshold) continue;
    auto key = std::make_pair(cands.candidates[i].src.table,
                              cands.candidates[i].src.columns);
    auto it = best.find(key);
    if (it == best.end() || scores[i] > scores[size_t(it->second)]) {
      best[key] = static_cast<int>(i);
    }
  }
  BiModel model;
  for (const auto& [key, idx] : best) {
    (void)key;
    model.joins.push_back(CandidateToJoin(cands.candidates[size_t(idx)]));
  }
  (void)tables;
  return model;
}

}  // namespace

// ------------------------------------------------------------------ MC-FK.

BiModel McFk::Predict(const std::vector<Table>& tables,
                      AutoBiTiming* timing) const {
  CandidateSet cands = RunCandidates(tables, timing);
  Timer timer;
  std::vector<double> scores(cands.candidates.size(), 0.0);
  if (lc_ != nullptr) {
    scores = LcScores(*lc_, tables, cands, timing);
  } else {
    for (size_t i = 0; i < cands.candidates.size(); ++i) {
      const JoinCandidate& c = cands.candidates[i];
      const ColumnProfile& ps =
          cands.profiles[size_t(c.src.table)].columns[size_t(
              c.src.columns[0])];
      const ColumnProfile& pd =
          cands.profiles[size_t(c.dst.table)].columns[size_t(
              c.dst.columns[0])];
      // Randomness metric: 1 - EMD, so that higher is better; weight by
      // containment like the original's pruning rules.
      scores[i] = (1.0 - EmdScore(ps, pd)) * c.left_containment;
    }
  }
  BiModel model = ArgmaxPerSource(tables, cands, scores,
                                  lc_ != nullptr ? 0.5 : 0.55);
  if (timing != nullptr) timing->global_predict = timer.Seconds();
  return model;
}

// ----------------------------------------------------------------- Fast-FK.

BiModel FastFk::Predict(const std::vector<Table>& tables,
                        AutoBiTiming* timing) const {
  CandidateSet cands = RunCandidates(tables, timing);
  std::vector<double> scores;
  if (lc_ != nullptr) {
    scores = LcScores(*lc_, tables, cands, timing);
  } else {
    Timer timer;
    scores.reserve(cands.candidates.size());
    for (const JoinCandidate& c : cands.candidates) {
      scores.push_back(0.5 * BaselineNameSim(tables, c) +
                       0.5 * c.left_containment);
    }
    if (timing != nullptr) timing->local_inference = timer.Seconds();
  }
  Timer timer;
  // Best-first until all tables connect (union-find over table endpoints).
  std::vector<size_t> order(cands.candidates.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] > scores[b]; });
  std::vector<int> parent(tables.size());
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&](int x) {
    while (parent[size_t(x)] != x) {
      parent[size_t(x)] = parent[size_t(parent[size_t(x)])];
      x = parent[size_t(x)];
    }
    return x;
  };
  int components = static_cast<int>(tables.size());
  BiModel model;
  double min_score = lc_ != nullptr ? 0.25 : 0.3;
  double keep_score = lc_ != nullptr ? 0.85 : 0.8;
  for (size_t i : order) {
    if (scores[i] < min_score) break;
    const JoinCandidate& c = cands.candidates[i];
    int ra = find(c.src.table);
    int rb = find(c.dst.table);
    bool connects = ra != rb;
    // Take connecting edges while disconnected; afterwards only
    // high-confidence extras.
    if (connects && components > 1) {
      parent[size_t(ra)] = rb;
      --components;
      model.joins.push_back(CandidateToJoin(c));
    } else if (scores[i] >= keep_score && connects) {
      model.joins.push_back(CandidateToJoin(c));
    }
  }
  if (timing != nullptr) timing->global_predict = timer.Seconds();
  return model;
}

// -------------------------------------------------------------------- HoPF.

BiModel HoPf::Predict(const std::vector<Table>& tables,
                      AutoBiTiming* timing) const {
  CandidateSet cands = RunCandidates(tables, timing);
  Timer local_timer;
  // PK-score per (table, column): uniqueness + name + leftmost position.
  auto pk_score = [&](int t, int c) {
    const ColumnProfile& p = cands.profiles[size_t(t)].columns[size_t(c)];
    double score = 0.0;
    if (p.IsUnique()) score += 0.5;
    std::string lower = ToLower(tables[size_t(t)].column(size_t(c)).name());
    if (lower.find("id") != std::string::npos ||
        lower.find("key") != std::string::npos ||
        lower.find("code") != std::string::npos) {
      score += 0.25;
    }
    double ncols = double(tables[size_t(t)].num_columns());
    score += 0.25 * (1.0 - double(c) / std::max(1.0, ncols));
    return score;
  };
  std::vector<double> scores;
  scores.reserve(cands.candidates.size());
  for (const JoinCandidate& c : cands.candidates) {
    if (lc_ != nullptr) {
      scores.push_back(0.0);  // Filled below in one LC pass.
    } else {
      double fk = 0.45 * c.left_containment +
                  0.3 * BaselineNameSim(tables, c) +
                  0.25 * pk_score(c.dst.table, c.dst.columns[0]);
      scores.push_back(fk);
    }
  }
  if (lc_ != nullptr) {
    scores = LcScores(*lc_, tables, cands, timing);
    // HoPF+LC keeps its structural PK-prior as a tie-breaker.
    for (size_t i = 0; i < scores.size(); ++i) {
      const JoinCandidate& c = cands.candidates[i];
      scores[i] = 0.85 * scores[i] +
                  0.15 * pk_score(c.dst.table, c.dst.columns[0]);
    }
  } else if (timing != nullptr) {
    timing->local_inference = local_timer.Seconds();
  }

  Timer timer;
  // Greedy best-first subject to HoPF's structural constraints: FK-once and
  // no cycles.
  std::vector<size_t> order(cands.candidates.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] > scores[b]; });
  std::set<std::pair<int, std::vector<int>>> used_sources;
  std::vector<std::pair<int, int>> arcs;
  BiModel model;
  double threshold = lc_ != nullptr ? 0.5 : 0.55;
  for (size_t i : order) {
    if (scores[i] < threshold) break;
    const JoinCandidate& c = cands.candidates[i];
    auto src_key = std::make_pair(c.src.table, c.src.columns);
    if (used_sources.count(src_key)) continue;  // FK-once.
    arcs.emplace_back(c.src.table, c.dst.table);
    if (HasDirectedCycle(static_cast<int>(tables.size()), arcs)) {
      arcs.pop_back();
      continue;
    }
    used_sources.insert(src_key);
    model.joins.push_back(CandidateToJoin(c));
  }
  if (timing != nullptr) timing->global_predict = timer.Seconds();
  return model;
}

// ---------------------------------------------------------------- LC-only.

BiModel LcOnly::Predict(const std::vector<Table>& tables,
                        AutoBiTiming* timing) const {
  CandidateSet cands = RunCandidates(tables, timing);
  std::vector<double> scores = LcScores(*lc_, tables, cands, timing);
  Timer timer;
  BiModel model;
  for (size_t i = 0; i < scores.size(); ++i) {
    if (scores[i] >= 0.5) {
      model.joins.push_back(CandidateToJoin(cands.candidates[i]));
    }
  }
  if (timing != nullptr) timing->global_predict = timer.Seconds();
  return model;
}

// ---------------------------------------------------------------- System-X.

BiModel SystemX::Predict(const std::vector<Table>& tables,
                         AutoBiTiming* timing) const {
  CandidateSet cands = RunCandidates(tables, timing);
  Timer timer;
  BiModel model;
  std::set<std::pair<int, std::vector<int>>> used_sources;
  for (const JoinCandidate& c : cands.candidates) {
    // Near-exact normalized name equality (optionally with the referenced
    // table's name prefixed — modulo dim/fact prefixes and plural 's'),
    // near-perfect containment, unique target. Generic stubs ("id", "key")
    // are not accepted as evidence on their own — commercial detectors
    // require a discriminative name.
    std::string src = NormalizeIdentifier(RefName(tables, c.src));
    std::string dst = NormalizeIdentifier(RefName(tables, c.dst));
    std::vector<std::string> table_tokens =
        TokenizeIdentifier(tables[size_t(c.dst.table)].name());
    std::string entity;
    for (const std::string& tok : table_tokens) {
      if (tok == "dim" || tok == "fact" || tok == "tbl") continue;
      entity += tok;
    }
    std::string entity_singular =
        (entity.size() > 3 && entity.back() == 's')
            ? entity.substr(0, entity.size() - 1)
            : entity;
    bool generic = src == "id" || src == "key" || src == "code" ||
                   src == "rownum";
    bool name_match = (src == dst && !generic) || src == entity + dst ||
                      src == entity_singular + dst;
    if (!name_match) continue;
    if (c.left_containment < 0.98) continue;
    const ColumnProfile& pd =
        cands.profiles[size_t(c.dst.table)].columns[size_t(c.dst.columns[0])];
    if (!pd.IsUnique()) continue;
    auto src_key = std::make_pair(c.src.table, c.src.columns);
    if (used_sources.count(src_key)) continue;
    used_sources.insert(src_key);
    model.joins.push_back(CandidateToJoin(c));
  }
  if (timing != nullptr) timing->global_predict = timer.Seconds();
  return model;
}

// --------------------------------------------------------------- NamePrior.

BiModel NamePrior::Predict(const std::vector<Table>& tables,
                           AutoBiTiming* timing) const {
  // Schema-only: enumerate column pairs directly (no profiling, no data).
  Timer timer;
  BiModel model;
  std::map<std::pair<int, int>, std::pair<double, Join>> best_per_source;
  for (size_t ti = 0; ti < tables.size(); ++ti) {
    for (size_t tj = 0; tj < tables.size(); ++tj) {
      if (ti == tj) continue;
      for (size_t ci = 0; ci < tables[ti].num_columns(); ++ci) {
        const std::string& src_name = tables[ti].column(ci).name();
        std::string src_lower = ToLower(src_name);
        bool src_keyish = src_lower.find("id") != std::string::npos ||
                          src_lower.find("key") != std::string::npos ||
                          src_lower.find("code") != std::string::npos;
        if (!src_keyish) continue;  // An LLM only links key-looking columns.
        for (size_t cj = 0; cj < tables[tj].num_columns(); ++cj) {
          const std::string& dst_name = tables[tj].column(cj).name();
          std::string aug = tables[tj].name() + " " + dst_name;
          auto ts = TokenizeIdentifier(src_name);
          double sim = std::max(
              {TokenJaccard(ts, TokenizeIdentifier(dst_name)),
               TokenJaccard(ts, TokenizeIdentifier(aug)),
               EditSimilarity(NormalizeIdentifier(src_name),
                              NormalizeIdentifier(dst_name))});
          double score = 0.75 * sim + 0.25 * (cj == 0 ? 1.0 : 0.0);
          if (score < 0.72) continue;
          Join join;
          join.from = ColumnRef{int(ti), {int(ci)}};
          join.to = ColumnRef{int(tj), {int(cj)}};
          join.kind = JoinKind::kNToOne;
          auto key = std::make_pair(int(ti), int(ci));
          auto it = best_per_source.find(key);
          if (it == best_per_source.end() || score > it->second.first) {
            best_per_source[key] = {score, join};
          }
        }
      }
    }
  }
  for (const auto& [key, scored] : best_per_source) {
    (void)key;
    model.joins.push_back(scored.second);
  }
  if (timing != nullptr) timing->global_predict = timer.Seconds();
  return model;
}

}  // namespace autobi
