#ifndef AUTOBI_BASELINES_FK_BASELINES_H_
#define AUTOBI_BASELINES_FK_BASELINES_H_

#include <string>
#include <vector>

#include "baselines/baseline.h"
#include "core/candidates.h"
#include "core/local_model.h"

namespace autobi {

// Reimplementations of the FK-detection baselines of Section 5.2. Each can
// optionally be "enhanced" (Appendix C) by injecting the calibrated
// local-classifier scores in place of its hand-crafted scoring function —
// the MC-FK+LC / Fast-FK+LC / HoPF+LC rows of Tables 9-12.

// MC-FK [58]: scores candidate INDs by the EMD-based randomness metric
// (an FK's values should look like a random sample of the PK's
// distribution); per FK column, keeps the best-scoring PK below a cutoff.
// Local and greedy by design.
class McFk : public JoinPredictor {
 public:
  explicit McFk(const LocalModel* lc = nullptr) : lc_(lc) {}
  std::string name() const override { return lc_ ? "MC-FK+LC" : "MC-FK"; }
  BiModel Predict(const std::vector<Table>& tables,
                  AutoBiTiming* timing) const override;

 private:
  const LocalModel* lc_;
};

// Fast-FK [17]: a predefined score mixing column-name similarity and value
// containment; edges are taken best-first until all tables are connected
// (plus any remaining edges above a high-confidence threshold).
class FastFk : public JoinPredictor {
 public:
  explicit FastFk(const LocalModel* lc = nullptr) : lc_(lc) {}
  std::string name() const override { return lc_ ? "Fast-FK+LC" : "Fast-FK"; }
  BiModel Predict(const std::vector<Table>& tables,
                  AutoBiTiming* timing) const override;

 private:
  const LocalModel* lc_;
};

// HoPF [30]: holistic PK+FK detection — combines a PK-score for the
// referenced column (position, name, uniqueness) with an FK-score for the
// pair, subject to structural constraints (no cycles, FK-once), selected
// greedily by total score.
class HoPf : public JoinPredictor {
 public:
  explicit HoPf(const LocalModel* lc = nullptr) : lc_(lc) {}
  std::string name() const override { return lc_ ? "HoPF+LC" : "HoPF"; }
  BiModel Predict(const std::vector<Table>& tables,
                  AutoBiTiming* timing) const override;

 private:
  const LocalModel* lc_;
};

// "LC": keeps every candidate whose calibrated probability is >= 0.5 — the
// local-classifier-only ablation row of Table 10 / Figure 8.
class LcOnly : public JoinPredictor {
 public:
  explicit LcOnly(const LocalModel* lc) : lc_(lc) {}
  std::string name() const override { return "LC"; }
  BiModel Predict(const std::vector<Table>& tables,
                  AutoBiTiming* timing) const override;

 private:
  const LocalModel* lc_;
};

// System-X stand-in (DESIGN.md §1): a conservative commercial-style
// detector — near-exact (normalized) name match plus near-perfect
// containment into a unique key. High precision, low recall; detects
// nothing on TPC schemas whose FK names carry table prefixes.
class SystemX : public JoinPredictor {
 public:
  std::string name() const override { return "System-X"; }
  BiModel Predict(const std::vector<Table>& tables,
                  AutoBiTiming* timing) const override;
};

// GPT-3.5 stand-in (DESIGN.md §1): a schema-only name/position prior with
// no training and no data-value access, mimicking LLM few-shot guessing.
// Reported for table-shape completeness; marked as a substitution in
// EXPERIMENTS.md.
class NamePrior : public JoinPredictor {
 public:
  std::string name() const override { return "NamePrior(GPT-sub)"; }
  BiModel Predict(const std::vector<Table>& tables,
                  AutoBiTiming* timing) const override;
};

}  // namespace autobi

#endif  // AUTOBI_BASELINES_FK_BASELINES_H_
