#ifndef AUTOBI_FEATURES_NAME_FREQUENCY_H_
#define AUTOBI_FEATURES_NAME_FREQUENCY_H_

#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_map>

namespace autobi {

// Corpus-level column-name frequency statistics (the Col_frequency feature,
// Appendix B): matches between common generic names ("id", "name", "code")
// are less reliable evidence of joinability, analogous to IDF in TF-IDF.
// Built from the training corpus during offline training and serialized with
// the model.
class NameFrequency {
 public:
  // Counts one occurrence of a (normalized) column name.
  void Observe(std::string_view name);

  // Relative frequency in [0, 1]: occurrences / max-occurrences. Unknown
  // names score 0 (maximally specific).
  double Frequency(std::string_view name) const;

  size_t vocabulary_size() const { return counts_.size(); }

  void Save(std::ostream& os) const;
  bool Load(std::istream& is);

 private:
  std::unordered_map<std::string, long> counts_;
  long max_count_ = 0;
};

}  // namespace autobi

#endif  // AUTOBI_FEATURES_NAME_FREQUENCY_H_
