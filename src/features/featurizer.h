#ifndef AUTOBI_FEATURES_FEATURIZER_H_
#define AUTOBI_FEATURES_FEATURIZER_H_

#include <string>
#include <vector>

#include "features/name_frequency.h"
#include "profile/column_profile.h"
#include "table/table.h"
#include "text/embedding.h"

namespace autobi {

// Everything a featurizer call needs about the case being scored.
struct FeatureContext {
  const std::vector<Table>* tables = nullptr;
  const std::vector<TableProfile>* profiles = nullptr;
  // Corpus column-name frequencies (may be null before training).
  const NameFrequency* frequency = nullptr;
};

// A candidate join to score: src is the prospective FK (N) side, dst the
// prospective PK (1) side. Containments are precomputed by candidate
// generation (they fall out of IND discovery).
struct JoinCandidate {
  ColumnRef src;
  ColumnRef dst;
  // Fraction of src distinct values present in dst, and vice versa.
  double left_containment = 0.0;
  double right_containment = 0.0;
  // True if the candidate is 1:1-shaped (both sides key-like with mutual
  // containment) and should be scored by the 1:1 classifier (Appendix A).
  bool one_to_one = false;
};

// Computes the local-classifier feature vectors of Appendix B. Two distinct
// feature sets are produced — N:1 and 1:1 — since the paper trains separate
// classifiers per join kind; each also has a schema-only prefix used by
// Auto-BI-S (metadata features only, no data access).
class Featurizer {
 public:
  // Feature-name lists (positions match the produced vectors).
  static std::vector<std::string> N1FeatureNames(bool schema_only);
  static std::vector<std::string> OneToOneFeatureNames(bool schema_only);

  std::vector<double> FeaturizeN1(const FeatureContext& ctx,
                                  const JoinCandidate& cand,
                                  bool schema_only) const;
  std::vector<double> FeaturizeOneToOne(const FeatureContext& ctx,
                                        const JoinCandidate& cand,
                                        bool schema_only) const;

 private:
  NgramEmbedder embedder_;
};

}  // namespace autobi

#endif  // AUTOBI_FEATURES_FEATURIZER_H_
