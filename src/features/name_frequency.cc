#include "features/name_frequency.h"

#include <algorithm>
#include <istream>
#include <ostream>

#include "text/tokenize.h"

namespace autobi {

void NameFrequency::Observe(std::string_view name) {
  long& c = counts_[NormalizeIdentifier(name)];
  ++c;
  max_count_ = std::max(max_count_, c);
}

double NameFrequency::Frequency(std::string_view name) const {
  if (max_count_ == 0) return 0.0;
  auto it = counts_.find(NormalizeIdentifier(name));
  if (it == counts_.end()) return 0.0;
  return static_cast<double>(it->second) / static_cast<double>(max_count_);
}

void NameFrequency::Save(std::ostream& os) const {
  os << "namefreq " << counts_.size() << " " << max_count_ << "\n";
  for (const auto& [name, count] : counts_) {
    os << count << " " << name << "\n";
  }
}

bool NameFrequency::Load(std::istream& is) {
  std::string tag;
  size_t n = 0;
  if (!(is >> tag >> n >> max_count_) || tag != "namefreq") return false;
  counts_.clear();
  for (size_t i = 0; i < n; ++i) {
    long count;
    std::string name;
    if (!(is >> count >> name)) return false;
    counts_[name] = count;
  }
  return true;
}

}  // namespace autobi
