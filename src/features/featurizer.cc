#include "features/featurizer.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "profile/emd.h"
#include "text/similarity.h"
#include "text/tokenize.h"

namespace autobi {

namespace {

// Concatenated display name of a (possibly composite) column reference.
std::string RefName(const FeatureContext& ctx, const ColumnRef& ref) {
  const Table& t = (*ctx.tables)[size_t(ref.table)];
  std::string out;
  for (size_t i = 0; i < ref.columns.size(); ++i) {
    if (i > 0) out += " ";
    out += t.column(size_t(ref.columns[i])).name();
  }
  return out;
}

const Table& RefTable(const FeatureContext& ctx, const ColumnRef& ref) {
  return (*ctx.tables)[size_t(ref.table)];
}

const TableProfile& RefProfile(const FeatureContext& ctx,
                               const ColumnRef& ref) {
  return (*ctx.profiles)[size_t(ref.table)];
}

// Profile of the leading column of a composite ref (the dominant component
// for column-level statistics).
const ColumnProfile& LeadProfile(const FeatureContext& ctx,
                                 const ColumnRef& ref) {
  return RefProfile(ctx, ref).columns[size_t(ref.columns[0])];
}

// Mean over the ref's component columns.
double MeanOver(const FeatureContext& ctx, const ColumnRef& ref,
                double (*f)(const ColumnProfile&)) {
  double sum = 0.0;
  for (int c : ref.columns) {
    sum += f(RefProfile(ctx, ref).columns[size_t(c)]);
  }
  return sum / static_cast<double>(ref.columns.size());
}

double DistinctRatioOf(const ColumnProfile& p) { return p.distinct_ratio; }
double AvgLenOf(const ColumnProfile& p) { return p.avg_value_length; }

// Mean (relative) position of the ref's columns, counting from the left.
double MeanPosition(const ColumnRef& ref) {
  double sum = 0.0;
  for (int c : ref.columns) sum += static_cast<double>(c);
  return sum / static_cast<double>(ref.columns.size());
}

// Position of the ref's lead column among *unique* columns from the left;
// columns that are not key-like score as if last (Appendix B,
// Unique_col_position).
double UniquePosition(const FeatureContext& ctx, const ColumnRef& ref) {
  const TableProfile& tp = RefProfile(ctx, ref);
  int lead = ref.columns[0];
  if (!tp.columns[size_t(lead)].IsUnique()) {
    return static_cast<double>(tp.columns.size());
  }
  int pos = 0;
  for (int c = 0; c < lead; ++c) {
    if (tp.columns[size_t(c)].IsUnique()) ++pos;
  }
  return static_cast<double>(pos);
}

// Overlap of numeric [min,max] ranges relative to their union; 0 when either
// side is non-numeric or empty.
double RangeOverlap(const ColumnProfile& a, const ColumnProfile& b) {
  if (!a.is_numeric || !b.is_numeric) return 0.0;
  if (a.non_null_count == 0 || b.non_null_count == 0) return 0.0;
  double lo = std::max(a.min_value, b.min_value);
  double hi = std::min(a.max_value, b.max_value);
  double union_lo = std::min(a.min_value, b.min_value);
  double union_hi = std::max(a.max_value, b.max_value);
  if (union_hi <= union_lo) return 1.0;  // Both ranges a single equal point.
  return std::max(0.0, hi - lo) / (union_hi - union_lo);
}

double LogRows(size_t rows) { return std::log1p(static_cast<double>(rows)); }

double BoundedRatio(double a, double b) {
  double r = a / (b + 1.0);
  return std::min(r, 100.0);
}

double TypeCode(ValueType t) { return static_cast<double>(t); }

struct NamePair {
  // All metadata similarities use max over (src vs dst) and (src vs
  // dst-table-augmented dst), recovering entity names that live only in the
  // dimension table's name (Appendix B).
  double jaccard;
  double containment;
  double edit;
  double jaro_winkler;
  double embedding;
};

NamePair NameSimilarities(const FeatureContext& ctx,
                          const NgramEmbedder& embedder,
                          const ColumnRef& src, const ColumnRef& dst) {
  std::string src_name = RefName(ctx, src);
  std::string dst_name = RefName(ctx, dst);
  std::string dst_aug = RefTable(ctx, dst).name() + " " + dst_name;

  auto src_tokens = TokenizeIdentifier(src_name);
  auto dst_tokens = TokenizeIdentifier(dst_name);
  auto aug_tokens = TokenizeIdentifier(dst_aug);
  std::string src_norm = NormalizeIdentifier(src_name);
  std::string dst_norm = NormalizeIdentifier(dst_name);
  std::string aug_norm = NormalizeIdentifier(dst_aug);

  NamePair out;
  out.jaccard = std::max(TokenJaccard(src_tokens, dst_tokens),
                         TokenJaccard(src_tokens, aug_tokens));
  out.containment = std::max(TokenContainment(src_tokens, dst_tokens),
                             TokenContainment(src_tokens, aug_tokens));
  out.edit = std::max(EditSimilarity(src_norm, dst_norm),
                      EditSimilarity(src_norm, aug_norm));
  out.jaro_winkler = std::max(JaroWinkler(src_norm, dst_norm),
                              JaroWinkler(src_norm, aug_norm));
  out.embedding = std::max(embedder.Similarity(src_name, dst_name),
                           embedder.Similarity(src_name, dst_aug));
  return out;
}

// Shared metadata block (the schema-only prefix of both classifiers).
void AppendMetadataFeatures(const FeatureContext& ctx,
                            const NgramEmbedder& embedder,
                            const JoinCandidate& cand,
                            std::vector<double>* f) {
  NamePair sims = NameSimilarities(ctx, embedder, cand.src, cand.dst);
  f->push_back(sims.jaccard);
  f->push_back(sims.containment);
  f->push_back(sims.edit);
  f->push_back(sims.jaro_winkler);
  f->push_back(sims.embedding);

  std::string src_name = RefName(ctx, cand.src);
  std::string dst_name = RefName(ctx, cand.dst);
  f->push_back(double(TokenizeIdentifier(src_name).size()));
  f->push_back(double(TokenizeIdentifier(dst_name).size()));
  f->push_back(double(NormalizeIdentifier(src_name).size()));
  f->push_back(double(NormalizeIdentifier(dst_name).size()));

  double src_freq = 0.0, dst_freq = 0.0;
  if (ctx.frequency != nullptr) {
    src_freq = ctx.frequency->Frequency(src_name);
    dst_freq = ctx.frequency->Frequency(dst_name);
  }
  f->push_back(src_freq);
  f->push_back(dst_freq);

  double src_cols = double(RefTable(ctx, cand.src).num_columns());
  double dst_cols = double(RefTable(ctx, cand.dst).num_columns());
  double src_pos = MeanPosition(cand.src);
  double dst_pos = MeanPosition(cand.dst);
  f->push_back(src_pos);
  f->push_back(dst_pos);
  f->push_back(src_cols > 0 ? src_pos / src_cols : 0.0);
  f->push_back(dst_cols > 0 ? dst_pos / dst_cols : 0.0);
  f->push_back(UniquePosition(ctx, cand.src));
  f->push_back(UniquePosition(ctx, cand.dst));
}

std::vector<std::string> MetadataFeatureNames() {
  return {
      "Jaccard_similarity", "Jaccard_containment", "Edit_distance",
      "Jaro_winkler",       "Embedding_similarity",
      "Src_token_count",    "Dst_token_count",
      "Src_char_count",     "Dst_char_count",
      "Src_col_frequency",  "Dst_col_frequency",
      "Src_col_position",   "Dst_col_position",
      "Src_col_relative_position", "Dst_col_relative_position",
      "Src_unique_col_position",   "Dst_unique_col_position",
  };
}

}  // namespace

std::vector<std::string> Featurizer::N1FeatureNames(bool schema_only) {
  std::vector<std::string> names = MetadataFeatureNames();
  if (schema_only) return names;
  std::vector<std::string> data = {
      "Left_containment",   "Right_containment", "Max_containment",
      "Src_distinct_ratio", "Dst_distinct_ratio",
      "Range_overlap",      "EMD_score",
      "Src_value_length",   "Dst_value_length",
      "Type_match",         "Src_type",          "Dst_type",
      "Src_row_cnt",        "Dst_row_cnt",
      "Row_ratio",          "Col_ratio",         "Cell_ratio",
  };
  names.insert(names.end(), data.begin(), data.end());
  return names;
}

std::vector<std::string> Featurizer::OneToOneFeatureNames(bool schema_only) {
  std::vector<std::string> names = MetadataFeatureNames();
  names.push_back("Table_embedding");
  names.push_back("Header_jaccard");
  if (schema_only) return names;
  std::vector<std::string> data = {
      "Min_containment",    "Left_containment",  "Right_containment",
      "Src_distinct_ratio", "Dst_distinct_ratio",
      "Range_overlap",      "EMD_score",
      "Src_value_length",   "Dst_value_length",
      "Type_match",         "Src_type",          "Dst_type",
      "Src_row_cnt",        "Dst_row_cnt",
  };
  names.insert(names.end(), data.begin(), data.end());
  return names;
}

std::vector<double> Featurizer::FeaturizeN1(const FeatureContext& ctx,
                                            const JoinCandidate& cand,
                                            bool schema_only) const {
  // invariant: FeatureContext is fully populated by the pipeline.
  AUTOBI_CHECK(ctx.tables != nullptr && ctx.profiles != nullptr);
  std::vector<double> f;
  f.reserve(34);
  AppendMetadataFeatures(ctx, embedder_, cand, &f);
  if (schema_only) return f;

  const ColumnProfile& ps = LeadProfile(ctx, cand.src);
  const ColumnProfile& pd = LeadProfile(ctx, cand.dst);
  f.push_back(cand.left_containment);
  f.push_back(cand.right_containment);
  f.push_back(std::max(cand.left_containment, cand.right_containment));
  f.push_back(MeanOver(ctx, cand.src, DistinctRatioOf));
  f.push_back(MeanOver(ctx, cand.dst, DistinctRatioOf));
  f.push_back(RangeOverlap(ps, pd));
  f.push_back(EmdScore(ps, pd));
  f.push_back(MeanOver(ctx, cand.src, AvgLenOf));
  f.push_back(MeanOver(ctx, cand.dst, AvgLenOf));
  f.push_back(ps.type == pd.type ? 1.0 : 0.0);
  f.push_back(TypeCode(ps.type));
  f.push_back(TypeCode(pd.type));
  double src_rows = double(RefProfile(ctx, cand.src).row_count);
  double dst_rows = double(RefProfile(ctx, cand.dst).row_count);
  double src_cols = double(RefTable(ctx, cand.src).num_columns());
  double dst_cols = double(RefTable(ctx, cand.dst).num_columns());
  f.push_back(LogRows(size_t(src_rows)));
  f.push_back(LogRows(size_t(dst_rows)));
  f.push_back(BoundedRatio(src_rows, dst_rows));
  f.push_back(BoundedRatio(src_cols, dst_cols));
  f.push_back(BoundedRatio(src_rows * src_cols, dst_rows * dst_cols));
  return f;
}

std::vector<double> Featurizer::FeaturizeOneToOne(const FeatureContext& ctx,
                                                  const JoinCandidate& cand,
                                                  bool schema_only) const {
  // invariant: FeatureContext is fully populated by the pipeline.
  AUTOBI_CHECK(ctx.tables != nullptr && ctx.profiles != nullptr);
  std::vector<double> f;
  f.reserve(33);
  AppendMetadataFeatures(ctx, embedder_, cand, &f);

  // Table_embedding: 1:1 joins connect tables about the same entity.
  const Table& ts = RefTable(ctx, cand.src);
  const Table& td = RefTable(ctx, cand.dst);
  f.push_back(embedder_.Similarity(ts.name(), td.name()));

  // Header_jaccard over all column names of the two tables (high overlap of
  // *all* headers between fact-like tables argues against a 1:1 join).
  std::vector<std::string> hs, hd;
  for (const Column& c : ts.columns()) {
    auto toks = TokenizeIdentifier(c.name());
    hs.insert(hs.end(), toks.begin(), toks.end());
  }
  for (const Column& c : td.columns()) {
    auto toks = TokenizeIdentifier(c.name());
    hd.insert(hd.end(), toks.begin(), toks.end());
  }
  f.push_back(TokenJaccard(hs, hd));
  if (schema_only) return f;

  const ColumnProfile& ps = LeadProfile(ctx, cand.src);
  const ColumnProfile& pd = LeadProfile(ctx, cand.dst);
  f.push_back(std::min(cand.left_containment, cand.right_containment));
  f.push_back(cand.left_containment);
  f.push_back(cand.right_containment);
  f.push_back(MeanOver(ctx, cand.src, DistinctRatioOf));
  f.push_back(MeanOver(ctx, cand.dst, DistinctRatioOf));
  f.push_back(RangeOverlap(ps, pd));
  f.push_back(EmdScore(ps, pd));
  f.push_back(MeanOver(ctx, cand.src, AvgLenOf));
  f.push_back(MeanOver(ctx, cand.dst, AvgLenOf));
  f.push_back(ps.type == pd.type ? 1.0 : 0.0);
  f.push_back(TypeCode(ps.type));
  f.push_back(TypeCode(pd.type));
  f.push_back(LogRows(RefProfile(ctx, cand.src).row_count));
  f.push_back(LogRows(RefProfile(ctx, cand.dst).row_count));
  return f;
}

}  // namespace autobi
