#ifndef AUTOBI_TABLE_COLUMN_H_
#define AUTOBI_TABLE_COLUMN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "table/value.h"

namespace autobi {

// A typed, in-memory column. Storage is columnar: exactly one of the typed
// vectors is populated (chosen by `type()`), plus a null mask. Cells can also
// be read back uniformly as canonical string keys (`KeyAt`), which is how the
// join-discovery layers compare values across columns of different types
// (e.g. an int FK column against a string PK column holding digits).
class Column {
 public:
  Column() = default;
  explicit Column(std::string name, ValueType type = ValueType::kNull)
      : name_(std::move(name)), type_(type) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  ValueType type() const { return type_; }
  size_t size() const { return null_.size(); }
  bool empty() const { return null_.empty(); }

  // Number of non-null cells.
  size_t num_non_null() const { return size() - num_null_; }
  size_t num_null() const { return num_null_; }

  // --- Appending cells. The column's type must match (or be kNull, in which
  // case the first typed append fixes the type).
  void AppendInt(int64_t v);
  void AppendDouble(double v);
  void AppendString(std::string v);
  void AppendNull();

  // Appends a textual cell, parsing it according to the column's type. Used
  // by the CSV reader after type inference. A cell that fails to parse as the
  // column type is stored as null for numeric columns.
  void AppendParsed(std::string_view cell);

  // --- Reading cells.
  bool IsNull(size_t i) const { return null_[i] != 0; }
  int64_t Int(size_t i) const;
  double Double(size_t i) const;
  const std::string& Str(size_t i) const;

  // Numeric view of cell i: the value as a double for int/double columns, or
  // NaN for nulls / string columns. Used by range-overlap and EMD features.
  double AsDouble(size_t i) const;

  // Canonical string key for joins. Ints render as decimal, doubles with
  // %.12g (so 3 and 3.0 compare equal across int/double columns), strings are
  // verbatim. Returns false for null cells.
  bool KeyAt(size_t i, std::string* out) const;

  // Materializes all non-null keys (in row order, duplicates preserved).
  std::vector<std::string> Keys() const;

 private:
  void EnsureType(ValueType t);

  std::string name_;
  ValueType type_ = ValueType::kNull;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
  std::vector<uint8_t> null_;
  size_t num_null_ = 0;
};

}  // namespace autobi

#endif  // AUTOBI_TABLE_COLUMN_H_
