#ifndef AUTOBI_TABLE_SQL_DDL_H_
#define AUTOBI_TABLE_SQL_DDL_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "table/table.h"

namespace autobi {

// Minimal SQL-DDL ingestion: parses a script of CREATE TABLE statements
// into empty typed Tables, so Auto-BI-S (schema-only mode) can run directly
// on a database's DDL dump before any data is available. Also extracts any
// declared FOREIGN KEY constraints for comparison with predictions.
//
// Supported subset (case-insensitive):
//   CREATE TABLE [schema.]name (
//     col TYPE [constraints...],
//     ...,
//     [PRIMARY KEY (...)],
//     [FOREIGN KEY (a[, b]) REFERENCES other (x[, y])]
//   );
// Types map as: INT/INTEGER/BIGINT/SMALLINT -> kInt; FLOAT/DOUBLE/REAL/
// DECIMAL/NUMERIC -> kDouble; everything else -> kString. Quoted
// identifiers ("name", `name`, [name]) are unquoted.

struct DdlForeignKey {
  std::string from_table;
  std::vector<std::string> from_columns;
  std::string to_table;
  std::vector<std::string> to_columns;
};

struct DdlSchema {
  std::vector<Table> tables;  // Empty (0-row) typed tables.
  std::vector<DdlForeignKey> foreign_keys;
};

// Parses `script`. This is an untrusted-input surface: malformed input
// yields kInvalidInput (truncated statements, missing parens, no CREATE
// TABLE at all), never a crash. Unknown constraints within a column
// definition are ignored.
StatusOr<DdlSchema> ParseSqlDdl(std::string_view script);

}  // namespace autobi

#endif  // AUTOBI_TABLE_SQL_DDL_H_
