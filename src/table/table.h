#ifndef AUTOBI_TABLE_TABLE_H_
#define AUTOBI_TABLE_TABLE_H_

#include <deque>
#include <string>
#include <vector>

#include "table/column.h"

namespace autobi {

// An in-memory relational table: a name plus equal-length typed columns.
// Tables are the unit the Auto-BI problem is defined over (Definition 1).
class Table {
 public:
  Table() = default;
  explicit Table(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const {
    return columns_.empty() ? 0 : columns_[0].size();
  }

  const Column& column(size_t i) const { return columns_[i]; }
  Column& column(size_t i) { return columns_[i]; }
  const std::deque<Column>& columns() const { return columns_; }

  // Adds a column; all columns must end up with the same length (checked by
  // Validate()). The returned reference stays valid across later AddColumn
  // calls (columns live in a deque).
  Column& AddColumn(std::string name, ValueType type = ValueType::kNull);

  // Index of the column with the given name, or -1.
  int ColumnIndex(std::string_view name) const;

  // Checks that all columns have the same number of rows.
  bool Validate() const;

 private:
  std::string name_;
  std::deque<Column> columns_;
};

// A reference to an ordered list of columns within one table of a table set
// (used for join endpoints; usually a single column, composite for
// multi-column joins).
struct ColumnRef {
  int table = -1;
  std::vector<int> columns;

  bool operator==(const ColumnRef& o) const {
    return table == o.table && columns == o.columns;
  }
  bool operator<(const ColumnRef& o) const {
    if (table != o.table) return table < o.table;
    return columns < o.columns;
  }
};

// Renders "TableName(colA,colB)" for diagnostics.
std::string ColumnRefToString(const std::vector<Table>& tables,
                              const ColumnRef& ref);

}  // namespace autobi

#endif  // AUTOBI_TABLE_TABLE_H_
