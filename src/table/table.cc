#include "table/table.h"

#include "common/strings.h"

namespace autobi {

Column& Table::AddColumn(std::string name, ValueType type) {
  columns_.emplace_back(std::move(name), type);
  return columns_.back();
}

int Table::ColumnIndex(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name() == name) return static_cast<int>(i);
  }
  return -1;
}

bool Table::Validate() const {
  if (columns_.empty()) return true;
  size_t n = columns_[0].size();
  for (const Column& c : columns_) {
    if (c.size() != n) return false;
  }
  return true;
}

std::string ColumnRefToString(const std::vector<Table>& tables,
                              const ColumnRef& ref) {
  std::string out;
  if (ref.table >= 0 && ref.table < static_cast<int>(tables.size())) {
    out = tables[ref.table].name();
  } else {
    out = StrFormat("T%d", ref.table);
  }
  out += "(";
  const Table* t = (ref.table >= 0 && ref.table < (int)tables.size())
                       ? &tables[ref.table]
                       : nullptr;
  for (size_t i = 0; i < ref.columns.size(); ++i) {
    if (i > 0) out += ",";
    int c = ref.columns[i];
    if (t != nullptr && c >= 0 && c < static_cast<int>(t->num_columns())) {
      out += t->column(c).name();
    } else {
      out += StrFormat("c%d", c);
    }
  }
  out += ")";
  return out;
}

}  // namespace autobi
