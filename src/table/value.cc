#include "table/value.h"

#include "common/strings.h"

namespace autobi {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

ValueType InferValueType(std::string_view s) {
  std::string_view t = Trim(s);
  if (t.empty()) return ValueType::kNull;
  int64_t i;
  if (ParseInt64(t, &i)) return ValueType::kInt;
  double d;
  if (ParseDouble(t, &d)) return ValueType::kDouble;
  return ValueType::kString;
}

ValueType UnifyValueTypes(ValueType a, ValueType b) {
  if (a == ValueType::kNull) return b;
  if (b == ValueType::kNull) return a;
  if (a == b) return a;
  if ((a == ValueType::kInt && b == ValueType::kDouble) ||
      (a == ValueType::kDouble && b == ValueType::kInt)) {
    return ValueType::kDouble;
  }
  return ValueType::kString;
}

}  // namespace autobi
