#include "table/column.h"

#include <charconv>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/strings.h"

namespace autobi {

void Column::EnsureType(ValueType t) {
  if (type_ == ValueType::kNull) {
    type_ = t;
    // Backfill placeholder slots for any nulls appended before the type was
    // known.
    size_t n = null_.size();
    switch (t) {
      case ValueType::kInt:
        ints_.resize(n, 0);
        break;
      case ValueType::kDouble:
        doubles_.resize(n, 0.0);
        break;
      case ValueType::kString:
        strings_.resize(n);
        break;
      case ValueType::kNull:
        break;
    }
    return;
  }
  // invariant: loaders fix a column's type before appending to it.
  AUTOBI_CHECK_MSG(type_ == t, "column type mismatch on append");
}

void Column::AppendInt(int64_t v) {
  EnsureType(ValueType::kInt);
  ints_.push_back(v);
  null_.push_back(0);
}

void Column::AppendDouble(double v) {
  EnsureType(ValueType::kDouble);
  doubles_.push_back(v);
  null_.push_back(0);
}

void Column::AppendString(std::string v) {
  EnsureType(ValueType::kString);
  strings_.push_back(std::move(v));
  null_.push_back(0);
}

void Column::AppendNull() {
  switch (type_) {
    case ValueType::kInt:
      ints_.push_back(0);
      break;
    case ValueType::kDouble:
      doubles_.push_back(0.0);
      break;
    case ValueType::kString:
      strings_.emplace_back();
      break;
    case ValueType::kNull:
      break;
  }
  null_.push_back(1);
  ++num_null_;
}

void Column::AppendParsed(std::string_view cell) {
  std::string_view t = Trim(cell);
  if (t.empty()) {
    AppendNull();
    return;
  }
  switch (type_) {
    case ValueType::kInt: {
      int64_t v;
      if (ParseInt64(t, &v)) {
        AppendInt(v);
      } else {
        AppendNull();
      }
      return;
    }
    case ValueType::kDouble: {
      double v;
      if (ParseDouble(t, &v)) {
        AppendDouble(v);
      } else {
        AppendNull();
      }
      return;
    }
    case ValueType::kString:
    case ValueType::kNull:
      AppendString(std::string(t));
      return;
  }
}

int64_t Column::Int(size_t i) const {
  AUTOBI_CHECK(type_ == ValueType::kInt);  // invariant: caller checked type().
  return ints_[i];
}

double Column::Double(size_t i) const {
  AUTOBI_CHECK(type_ == ValueType::kDouble);  // invariant: caller checked type().
  return doubles_[i];
}

const std::string& Column::Str(size_t i) const {
  AUTOBI_CHECK(type_ == ValueType::kString);  // invariant: caller checked type().
  return strings_[i];
}

double Column::AsDouble(size_t i) const {
  if (IsNull(i)) return std::numeric_limits<double>::quiet_NaN();
  switch (type_) {
    case ValueType::kInt:
      return static_cast<double>(ints_[i]);
    case ValueType::kDouble:
      return doubles_[i];
    default:
      return std::numeric_limits<double>::quiet_NaN();
  }
}

bool Column::KeyAt(size_t i, std::string* out) const {
  if (IsNull(i)) return false;
  switch (type_) {
    case ValueType::kInt:
      *out = std::to_string(ints_[i]);
      return true;
    case ValueType::kDouble: {
      double v = doubles_[i];
      // Integral doubles render like ints so cross-type joins line up.
      if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
        *out = std::to_string(static_cast<int64_t>(v));
      } else {
        // std::to_chars(general, 12) emits exactly printf %.12g bytes and is
        // ~5x faster; fall back to StrFormat if the buffer ever overflows.
        char buf[40];
        auto [p, ec] =
            std::to_chars(buf, buf + sizeof(buf), v, std::chars_format::general,
                          12);
        if (ec == std::errc{}) {
          out->assign(buf, static_cast<size_t>(p - buf));
        } else {
          *out = StrFormat("%.12g", v);
        }
      }
      return true;
    }
    case ValueType::kString:
      *out = strings_[i];
      return true;
    case ValueType::kNull:
      return false;
  }
  return false;
}

std::vector<std::string> Column::Keys() const {
  std::vector<std::string> out;
  out.reserve(size());
  std::string key;
  for (size_t i = 0; i < size(); ++i) {
    if (KeyAt(i, &key)) out.push_back(key);
  }
  return out;
}

}  // namespace autobi
