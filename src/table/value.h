#ifndef AUTOBI_TABLE_VALUE_H_
#define AUTOBI_TABLE_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace autobi {

// Logical type of a column. Mixed-type columns degrade to kString.
enum class ValueType : uint8_t {
  kNull = 0,   // All-null column (type unknown).
  kInt = 1,    // 64-bit signed integer.
  kDouble = 2, // IEEE double.
  kString = 3, // UTF-8 / opaque bytes.
};

// Human-readable type name ("int", "double", "string", "null").
const char* ValueTypeName(ValueType t);

// Infers the narrowest ValueType that can represent the textual cell `s`.
// Empty (after trimming) means kNull.
ValueType InferValueType(std::string_view s);

// Widens `a` to also accommodate `b` (e.g. int + double -> double,
// anything + string -> string; null is the identity).
ValueType UnifyValueTypes(ValueType a, ValueType b);

}  // namespace autobi

#endif  // AUTOBI_TABLE_VALUE_H_
