#include "table/sql_ddl.h"

#include <cctype>

#include "common/strings.h"
#include "table/value.h"

namespace autobi {

namespace {

struct Token {
  std::string text;   // Unquoted, original case for identifiers.
  bool quoted = false;
};

// Tokenizes SQL into identifiers/keywords, punctuation and literals.
// Comments (-- and /* */) are stripped.
std::vector<Token> Tokenize(std::string_view s) {
  std::vector<Token> out;
  size_t i = 0;
  while (i < s.size()) {
    char c = s[i];
    unsigned char uc = static_cast<unsigned char>(c);
    if (std::isspace(uc)) {
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < s.size() && s[i + 1] == '-') {
      while (i < s.size() && s[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < s.size() && s[i + 1] == '*') {
      i += 2;
      while (i + 1 < s.size() && !(s[i] == '*' && s[i + 1] == '/')) ++i;
      i = std::min(s.size(), i + 2);
      continue;
    }
    if (c == '"' || c == '`' || c == '[') {
      char close = c == '[' ? ']' : c;
      size_t j = i + 1;
      std::string ident;
      while (j < s.size() && s[j] != close) ident += s[j++];
      out.push_back({ident, true});
      i = j + 1;
      continue;
    }
    if (c == '\'') {
      size_t j = i + 1;
      std::string lit;
      while (j < s.size() && s[j] != '\'') lit += s[j++];
      out.push_back({lit, true});
      i = j + 1;
      continue;
    }
    if (std::isalnum(uc) || c == '_') {
      size_t j = i;
      while (j < s.size() && (std::isalnum(static_cast<unsigned char>(s[j])) ||
                              s[j] == '_')) {
        ++j;
      }
      out.push_back({std::string(s.substr(i, j - i)), false});
      i = j;
      continue;
    }
    out.push_back({std::string(1, c), false});
    ++i;
  }
  return out;
}

bool IsKeyword(const Token& t, const char* kw) {
  return !t.quoted && ToLower(t.text) == kw;
}

ValueType TypeFromSql(const std::string& type_name) {
  std::string t = ToLower(type_name);
  if (t == "int" || t == "integer" || t == "bigint" || t == "smallint" ||
      t == "tinyint" || t == "serial") {
    return ValueType::kInt;
  }
  if (t == "float" || t == "double" || t == "real" || t == "decimal" ||
      t == "numeric" || t == "money") {
    return ValueType::kDouble;
  }
  return ValueType::kString;
}

// Parses "(ident [, ident]*)" starting at tokens[i] == "("; returns the
// identifiers and advances i past the ")".
Status ParseIdentList(const std::vector<Token>& tokens, size_t& i,
                      std::vector<std::string>* out) {
  out->clear();
  if (i >= tokens.size() || tokens[i].text != "(") {
    return Status::InvalidInput("expected '('");
  }
  ++i;
  while (i < tokens.size() && tokens[i].text != ")") {
    if (tokens[i].text == ",") {
      ++i;
      continue;
    }
    out->push_back(tokens[i].text);
    ++i;
  }
  if (i >= tokens.size()) {
    return Status::InvalidInput("unterminated identifier list");
  }
  ++i;  // Consume ')'.
  if (out->empty()) {
    return Status::InvalidInput("empty identifier list");
  }
  return Status::Ok();
}

}  // namespace

StatusOr<DdlSchema> ParseSqlDdl(std::string_view script) {
  DdlSchema schema;
  DdlSchema* out = &schema;
  std::vector<Token> tokens = Tokenize(script);
  size_t i = 0;
  auto skip_statement = [&]() {
    while (i < tokens.size() && tokens[i].text != ";") ++i;
    if (i < tokens.size()) ++i;
  };

  while (i < tokens.size()) {
    if (!IsKeyword(tokens[i], "create")) {
      skip_statement();
      continue;
    }
    ++i;
    if (i >= tokens.size() || !IsKeyword(tokens[i], "table")) {
      skip_statement();
      continue;
    }
    ++i;
    // Optional IF NOT EXISTS.
    if (i + 2 < tokens.size() && IsKeyword(tokens[i], "if") &&
        IsKeyword(tokens[i + 1], "not") && IsKeyword(tokens[i + 2], "exists")) {
      i += 3;
    }
    if (i >= tokens.size()) {
      return Status::InvalidInput("truncated CREATE TABLE");
    }
    // [schema.]name — keep the last component.
    std::string table_name = tokens[i].text;
    ++i;
    while (i + 1 < tokens.size() && tokens[i].text == ".") {
      table_name = tokens[i + 1].text;
      i += 2;
    }
    if (i >= tokens.size() || tokens[i].text != "(") {
      return Status::InvalidInput("expected '(' after table name " +
                                  table_name);
    }
    ++i;

    Table table(table_name);
    // Parse comma-separated items at depth 1.
    while (i < tokens.size() && tokens[i].text != ")") {
      // Table-level constraints.
      if (IsKeyword(tokens[i], "constraint")) {
        i += 2;  // CONSTRAINT <name>.
        continue;  // The constraint kind follows as the next item token.
      }
      if (IsKeyword(tokens[i], "primary") || IsKeyword(tokens[i], "unique") ||
          IsKeyword(tokens[i], "check") || IsKeyword(tokens[i], "index") ||
          IsKeyword(tokens[i], "key")) {
        // Skip to end of this item (depth-aware).
        int depth = 0;
        while (i < tokens.size()) {
          if (tokens[i].text == "(") ++depth;
          if (tokens[i].text == ")") {
            if (depth == 0) break;
            --depth;
          }
          if (tokens[i].text == "," && depth == 0) {
            ++i;
            break;
          }
          ++i;
        }
        continue;
      }
      if (IsKeyword(tokens[i], "foreign")) {
        i += 2;  // FOREIGN KEY.
        DdlForeignKey fk;
        fk.from_table = table_name;
        AUTOBI_RETURN_IF_ERROR(ParseIdentList(tokens, i, &fk.from_columns)
                                   .WithContext("FOREIGN KEY in " +
                                                table_name));
        if (i >= tokens.size() || !IsKeyword(tokens[i], "references")) {
          return Status::InvalidInput("expected REFERENCES in " + table_name);
        }
        ++i;
        if (i >= tokens.size()) {
          return Status::InvalidInput("truncated REFERENCES in " + table_name);
        }
        fk.to_table = tokens[i].text;
        ++i;
        while (i + 1 < tokens.size() && tokens[i].text == ".") {
          fk.to_table = tokens[i + 1].text;
          i += 2;
        }
        if (i < tokens.size() && tokens[i].text == "(") {
          AUTOBI_RETURN_IF_ERROR(
              ParseIdentList(tokens, i, &fk.to_columns)
                  .WithContext("REFERENCES in " + table_name));
        }
        out->foreign_keys.push_back(std::move(fk));
        // Skip trailing ON DELETE/UPDATE actions up to ',' or ')'.
        while (i < tokens.size() && tokens[i].text != "," &&
               tokens[i].text != ")") {
          ++i;
        }
        if (i < tokens.size() && tokens[i].text == ",") ++i;
        continue;
      }
      // Column definition: name TYPE[(args)] [inline constraints].
      std::string column_name = tokens[i].text;
      ++i;
      if (i >= tokens.size()) {
        return Status::InvalidInput("truncated column definition in " +
                                    table_name);
      }
      std::string type_name = tokens[i].text;
      ++i;
      table.AddColumn(column_name, TypeFromSql(type_name));
      // Inline REFERENCES constraint.
      int depth = 0;
      while (i < tokens.size()) {
        if (IsKeyword(tokens[i], "references") && depth == 0) {
          ++i;
          if (i >= tokens.size()) {
            return Status::InvalidInput("truncated REFERENCES in " +
                                        table_name);
          }
          DdlForeignKey fk;
          fk.from_table = table_name;
          fk.from_columns = {column_name};
          fk.to_table = tokens[i].text;
          ++i;
          while (i + 1 < tokens.size() && tokens[i].text == ".") {
            fk.to_table = tokens[i + 1].text;
            i += 2;
          }
          if (i < tokens.size() && tokens[i].text == "(") {
            AUTOBI_RETURN_IF_ERROR(
                ParseIdentList(tokens, i, &fk.to_columns)
                    .WithContext("REFERENCES in " + table_name));
          }
          out->foreign_keys.push_back(std::move(fk));
          continue;
        }
        if (tokens[i].text == "(") {
          ++depth;
          ++i;
          continue;
        }
        if (tokens[i].text == ")") {
          if (depth == 0) break;
          --depth;
          ++i;
          continue;
        }
        if (tokens[i].text == "," && depth == 0) {
          ++i;
          break;
        }
        ++i;
      }
    }
    if (i >= tokens.size()) {
      return Status::InvalidInput("unterminated CREATE TABLE " + table_name);
    }
    ++i;  // Consume ')'.
    if (i < tokens.size() && tokens[i].text == ";") ++i;
    out->tables.push_back(std::move(table));
  }
  if (out->tables.empty()) {
    return Status::InvalidInput("no CREATE TABLE statements found");
  }
  return schema;
}

}  // namespace autobi
