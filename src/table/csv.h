#ifndef AUTOBI_TABLE_CSV_H_
#define AUTOBI_TABLE_CSV_H_

#include <iosfwd>
#include <string>
#include <string_view>

#include "table/table.h"

namespace autobi {

// Minimal RFC-4180-style CSV support so users can feed their own tables to
// Auto-BI (see examples/quickstart.cc). Quoted fields with embedded commas,
// quotes ("" escaping) and newlines are handled. Types are inferred from the
// data: a column is int/double only if every non-empty cell parses.

// Parses CSV text (first row = header) into a Table. Returns false and fills
// *error on malformed input (ragged rows, unterminated quote).
bool ReadCsv(std::string_view text, std::string table_name, Table* out,
             std::string* error);

// Reads a CSV file; the table name defaults to the basename without ".csv".
bool ReadCsvFile(const std::string& path, Table* out, std::string* error);

// Serializes a table as CSV (header + rows; nulls render as empty fields).
std::string WriteCsv(const Table& table);

}  // namespace autobi

#endif  // AUTOBI_TABLE_CSV_H_
