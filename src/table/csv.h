#ifndef AUTOBI_TABLE_CSV_H_
#define AUTOBI_TABLE_CSV_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "common/status.h"
#include "table/table.h"

namespace autobi {

// Minimal RFC-4180-style CSV support so users can feed their own tables to
// Auto-BI (see examples/quickstart.cc). Quoted fields with embedded commas,
// quotes ("" escaping) and newlines are handled; a leading UTF-8 BOM and
// CRLF line endings are tolerated. Types are inferred from the data: a
// column is int/double only if every non-empty cell parses.
//
// This is an untrusted-input surface: all entry points return a typed
// Status (common/status.h) instead of aborting, whatever the bytes are.

struct CsvOptions {
  // Inputs larger than this many bytes are rejected with kResourceExhausted
  // before any buffering happens (ReadCsvFile checks the file size up
  // front). 0 disables the cap.
  size_t max_bytes = size_t{512} << 20;  // 512 MiB.
  // Strict mode (default) rejects ragged rows with kInvalidInput. Lenient
  // mode pads short rows with nulls and truncates long rows to the header
  // width, counting the repairs in CsvStats.
  bool lenient = false;
};

// Per-load observability: what the reader tolerated or repaired.
struct CsvStats {
  bool had_bom = false;
  size_t ragged_rows_padded = 0;
  size_t ragged_rows_truncated = 0;
  size_t Warnings() const { return ragged_rows_padded + ragged_rows_truncated; }
};

// Parses CSV text (first row = header) into a Table. Errors: kInvalidInput
// on malformed input (ragged rows in strict mode, unterminated quote, empty
// input), kResourceExhausted past options.max_bytes.
StatusOr<Table> ReadCsv(std::string_view text, std::string table_name,
                        const CsvOptions& options = {},
                        CsvStats* stats = nullptr);

// Reads a CSV file; the table name defaults to the basename without ".csv".
// Adds kInternal for I/O failures (cannot open / read failure).
StatusOr<Table> ReadCsvFile(const std::string& path,
                            const CsvOptions& options = {},
                            CsvStats* stats = nullptr);

// Serializes a table as CSV (header + rows; nulls render as empty fields).
std::string WriteCsv(const Table& table);

}  // namespace autobi

#endif  // AUTOBI_TABLE_CSV_H_
