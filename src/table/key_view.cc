#include "table/key_view.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/check.h"

namespace autobi {

namespace {

// FNV-1a over a byte span (the StableHash64 constants of profile/sketch.h,
// inlined here so autobi_table does not depend on autobi_profile).
constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

inline uint64_t FnvMix(uint64_t h, const char* data, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= kFnvPrime;
  }
  return h;
}

// Bounded signed decimal formatting, byte-identical to std::to_string:
// writes into buf (at least 21 bytes) and returns the length.
inline size_t FormatInt64(int64_t v, char* buf) {
  char tmp[20];
  size_t n = 0;
  // Negate into unsigned space so INT64_MIN does not overflow.
  uint64_t u = v < 0 ? ~static_cast<uint64_t>(v) + 1 : static_cast<uint64_t>(v);
  do {
    tmp[n++] = static_cast<char>('0' + u % 10);
    u /= 10;
  } while (u != 0);
  size_t len = 0;
  if (v < 0) buf[len++] = '-';
  while (n > 0) buf[len++] = tmp[--n];
  return len;
}

// Canonical key bytes of a double, matching Column::KeyAt: integral doubles
// render like ints so cross-type joins line up, everything else as %.12g.
// std::to_chars with chars_format::general is specified to produce printf
// %.12g output (C locale) and runs ~5x faster than snprintf, which dominates
// view-build time on double-heavy tables.
inline size_t FormatDouble(double v, char* buf, size_t buf_size) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    return FormatInt64(static_cast<int64_t>(v), buf);
  }
  auto [p, ec] =
      std::to_chars(buf, buf + buf_size, v, std::chars_format::general, 12);
  if (ec == std::errc{}) return static_cast<size_t>(p - buf);
  int n = std::snprintf(buf, buf_size, "%.12g", v);
  return n > 0 ? static_cast<size_t>(n) : 0;
}

}  // namespace

void ColumnKeyView::Build(const Column& col) {
  size_t n = col.size();
  col_ = nullptr;
  row_offset_ = 0;
  pool_.clear();
  hashes_.assign(n, 0);
  num_non_null_ = col.num_non_null();
  key_bytes_ = 0;
  has_nulls_ = num_non_null_ < n || col.type() == ValueType::kNull;
  if (has_nulls_) {
    null_.assign(n, 0);
  } else {
    null_.clear();
  }

  if (col.type() == ValueType::kString) {
    // A string cell's canonical key is the cell itself: borrow the column's
    // storage instead of copying it into an arena (no pool, no offsets — one
    // hashing pass is the whole build).
    col_ = &col;
    offsets_.clear();
    size_t bytes = 0;
    for (size_t i = 0; i < n; ++i) {
      if (col.IsNull(i)) {
        null_[i] = 1;
        continue;
      }
      const std::string& s = col.Str(i);
      bytes += s.size();
      hashes_[i] = FnvMix(kFnvOffset, s.data(), s.size());
    }
    key_bytes_ = bytes;
    return;
  }

  offsets_.assign(n + 1, 0);
  switch (col.type()) {
    case ValueType::kString:
      break;  // Handled above.
    case ValueType::kInt: {
      pool_.reserve(n * 8);
      char buf[24];
      for (size_t i = 0; i < n; ++i) {
        offsets_[i] = pool_.size();
        if (col.IsNull(i)) {
          null_[i] = 1;
          continue;
        }
        size_t len = FormatInt64(col.Int(i), buf);
        pool_.append(buf, len);
        hashes_[i] = FnvMix(kFnvOffset, buf, len);
      }
      break;
    }
    case ValueType::kDouble: {
      pool_.reserve(n * 8);
      char buf[40];
      for (size_t i = 0; i < n; ++i) {
        offsets_[i] = pool_.size();
        if (col.IsNull(i)) {
          null_[i] = 1;
          continue;
        }
        size_t len = FormatDouble(col.Double(i), buf, sizeof(buf));
        pool_.append(buf, len);
        hashes_[i] = FnvMix(kFnvOffset, buf, len);
      }
      break;
    }
    case ValueType::kNull: {
      // Untyped column: every cell is null.
      for (size_t i = 0; i < n; ++i) null_[i] = 1;
      break;
    }
  }
  offsets_[n] = pool_.size();
  key_bytes_ = pool_.size();
}

void ColumnKeyView::BuildSuffix(const Column& col, size_t from_row) {
  size_t total = col.size();
  AUTOBI_CHECK_MSG(from_row <= total, "suffix view past the end of the column");
  size_t n = total - from_row;
  col_ = nullptr;
  row_offset_ = from_row;
  pool_.clear();
  hashes_.assign(n, 0);
  // Unlike Build, the suffix null count is not known up front (the column
  // only tracks a whole-column total), so the mask is carried through the
  // pass and dropped afterwards if the suffix turned out dense.
  null_.assign(n, 0);
  has_nulls_ = true;
  num_non_null_ = 0;
  key_bytes_ = 0;

  if (col.type() == ValueType::kString) {
    col_ = &col;
    offsets_.clear();
    size_t bytes = 0;
    for (size_t i = 0; i < n; ++i) {
      size_t r = from_row + i;
      if (col.IsNull(r)) {
        null_[i] = 1;
        continue;
      }
      const std::string& s = col.Str(r);
      bytes += s.size();
      hashes_[i] = FnvMix(kFnvOffset, s.data(), s.size());
      ++num_non_null_;
    }
    key_bytes_ = bytes;
  } else if (col.type() == ValueType::kNull) {
    offsets_.assign(n + 1, 0);
    for (size_t i = 0; i < n; ++i) null_[i] = 1;
  } else {
    offsets_.assign(n + 1, 0);
    pool_.reserve(n * 8);
    char buf[40];
    for (size_t i = 0; i < n; ++i) {
      size_t r = from_row + i;
      offsets_[i] = pool_.size();
      if (col.IsNull(r)) {
        null_[i] = 1;
        continue;
      }
      size_t len = col.type() == ValueType::kInt
                       ? FormatInt64(col.Int(r), buf)
                       : FormatDouble(col.Double(r), buf, sizeof(buf));
      pool_.append(buf, len);
      hashes_[i] = FnvMix(kFnvOffset, buf, len);
      ++num_non_null_;
    }
    offsets_[n] = pool_.size();
    key_bytes_ = pool_.size();
  }
  has_nulls_ = num_non_null_ < n || col.type() == ValueType::kNull;
  if (!has_nulls_) null_.clear();
}

void TableKeyView::Build(const Table& table) {
  columns_.clear();
  columns_.reserve(table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    // Ragged tables violate Table's contract (Table::Validate); the view
    // kernels index every column by the shared row count, so fail loudly
    // here instead of reading out of bounds later.
    AUTOBI_CHECK_MSG(table.column(c).size() == table.num_rows(),
                     "TableKeyView over a ragged table");
    columns_.emplace_back(table.column(c));
  }
}

void StableRadixSortByHash(std::vector<HashRow>* items,
                           std::vector<HashRow>* scratch) {
  size_t n = items->size();
  if (n < 2) return;
  if (n < 1024) {
    // Radix setup does not pay for itself on tiny inputs.
    std::stable_sort(
        items->begin(), items->end(),
        [](const HashRow& a, const HashRow& b) { return a.hash < b.hash; });
    return;
  }
  scratch->resize(n);
  // MSD hybrid: one scatter pass partitions by the top 14 hash bits (bucket
  // order == global hash order), then each small bucket is finished with a
  // stable insertion sort over the remaining bits. One pass of scatter
  // traffic instead of LSD's eight; stability holds because the scatter
  // preserves input order within a bucket and insertion sort never reorders
  // equal hashes. Buckets the insertion cutoff can't handle (skewed top
  // bits — e.g. low-cardinality hash sets) fall back to std::stable_sort.
  constexpr int kBits = 14;
  constexpr size_t kBuckets = size_t(1) << kBits;
  constexpr int kShift = 64 - kBits;
  constexpr size_t kInsertionCutoff = 32;
  std::vector<uint32_t> start(kBuckets + 1, 0);
  for (const HashRow& e : *items) ++start[(e.hash >> kShift) + 1];
  for (size_t d = 0; d < kBuckets; ++d) start[d + 1] += start[d];
  {
    std::vector<uint32_t> pos(start.begin(), start.end() - 1);
    HashRow* dst = scratch->data();
    for (const HashRow& e : *items) dst[pos[e.hash >> kShift]++] = e;
  }
  HashRow* a = scratch->data();
  for (size_t d = 0; d < kBuckets; ++d) {
    size_t lo = start[d], hi = start[d + 1];
    if (hi - lo < 2) continue;
    if (hi - lo <= kInsertionCutoff) {
      for (size_t i = lo + 1; i < hi; ++i) {
        HashRow e = a[i];
        size_t j = i;
        while (j > lo && a[j - 1].hash > e.hash) {
          a[j] = a[j - 1];
          --j;
        }
        a[j] = e;
      }
    } else {
      std::stable_sort(a + lo, a + hi, [](const HashRow& x, const HashRow& y) {
        return x.hash < y.hash;
      });
    }
  }
  items->swap(*scratch);
}

bool TupleHashFromViews(const std::vector<const ColumnKeyView*>& cols,
                        size_t r, uint64_t* out) {
  uint64_t h = kFnvOffset;
  for (const ColumnKeyView* view : cols) {
    if (view->IsNull(r)) return false;
    std::string_view key = view->key(r);
    for (char ch : key) {
      if (ch == '|' || ch == '\\') {
        h ^= static_cast<unsigned char>('\\');
        h *= kFnvPrime;
      }
      h ^= static_cast<unsigned char>(ch);
      h *= kFnvPrime;
    }
    h ^= static_cast<unsigned char>('|');
    h *= kFnvPrime;
  }
  *out = h;
  return true;
}

bool TuplesEqual(const std::vector<const ColumnKeyView*>& cols, size_t ra,
                 size_t rb) {
  for (const ColumnKeyView* view : cols) {
    if (view->key(ra) != view->key(rb)) return false;
  }
  return true;
}

}  // namespace autobi
