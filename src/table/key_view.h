#ifndef AUTOBI_TABLE_KEY_VIEW_H_
#define AUTOBI_TABLE_KEY_VIEW_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "table/column.h"
#include "table/table.h"

namespace autobi {

// Columnar canonical-key view of a Column: every non-null cell's canonical
// key (exactly the bytes Column::KeyAt would produce), plus a parallel
// vector of stable 64-bit FNV-1a hashes of those keys (the same value
// identity as StableHash64 in profile/sketch.h, so content hashes, the EMD
// hash mapping, and PredictCache keys are unchanged). Numeric columns are
// formatted once into one contiguous arena addressed by per-row offset
// spans; string columns borrow the column's cell storage directly (their
// canonical key IS the cell), so building the view never copies a string.
//
// This is the batched representation the profiling/UCC/IND kernels run on:
// building it costs one pass over the column with zero per-cell heap
// allocations (ints and integral doubles are formatted by a bounded local
// itoa, non-integral doubles by std::to_chars — specified to emit printf
// %.12g bytes — into a stack buffer),
// after which the hot loops touch only contiguous offsets/hashes — no
// std::string materialization.
//
// Lifetime: the view of a string column borrows the column's storage, so the
// column must outlive the view. Every kernel builds its views next to the
// tables it scans, which satisfies this by construction.
class ColumnKeyView {
 public:
  ColumnKeyView() = default;
  explicit ColumnKeyView(const Column& col) { Build(col); }

  // (Re)builds the view from `col`.
  void Build(const Column& col);

  // (Re)builds the view over the row suffix [from_row, col.size()) — the
  // delta batch of an append-only update. View index i addresses column row
  // from_row + i; keys, hashes, and null semantics are exactly those Build
  // would produce for the same cells, and string columns still borrow the
  // column's storage. This is what lets a cached ColumnProfile be merged
  // forward without rescanning old rows (profile/column_profile.h,
  // MergeAppendedColumnProfile).
  void BuildSuffix(const Column& col, size_t from_row);

  size_t size() const { return hashes_.size(); }
  // Nulls short-circuit on a flag: the common all-non-null column never
  // allocates (or reads) a null mask.
  bool IsNull(size_t i) const { return has_nulls_ && null_[i] != 0; }

  // Canonical key bytes of cell i (valid only when !IsNull(i); null cells
  // have empty spans). Byte-identical to Column::KeyAt output.
  std::string_view key(size_t i) const {
    if (col_ != nullptr) {
      return IsNull(i) ? std::string_view()
                       : std::string_view(col_->Str(i + row_offset_));
    }
    return std::string_view(pool_.data() + offsets_[i],
                            offsets_[i + 1] - offsets_[i]);
  }

  // StableHash64(key(i)); unspecified for null cells.
  uint64_t hash(size_t i) const { return hashes_[i]; }
  const std::vector<uint64_t>& hashes() const { return hashes_; }

  size_t num_non_null() const { return num_non_null_; }
  // Total key bytes over all non-null cells (the profiling length feature).
  size_t key_bytes() const { return key_bytes_; }

 private:
  const Column* col_ = nullptr;  // Set for string columns (borrowed keys).
  size_t row_offset_ = 0;        // First column row of a suffix view.
  std::string pool_;
  std::vector<uint64_t> offsets_;  // size() + 1 entries into pool_.
  std::vector<uint64_t> hashes_;   // Per-row stable hash (0 for nulls).
  std::vector<uint8_t> null_;      // Empty unless has_nulls_.
  bool has_nulls_ = false;
  size_t num_non_null_ = 0;
  size_t key_bytes_ = 0;
};

// Per-column key views of a whole table, built once and shared by every
// kernel that scans the table (UCC lattice checks, composite IND probes).
class TableKeyView {
 public:
  TableKeyView() = default;
  explicit TableKeyView(const Table& table) { Build(table); }

  void Build(const Table& table);

  size_t num_columns() const { return columns_.size(); }
  const ColumnKeyView& column(size_t i) const { return columns_[i]; }

 private:
  std::vector<ColumnKeyView> columns_;
};

// One element of the sort-based aggregation kernels: a cell's stable hash
// tagged with its row index.
struct HashRow {
  uint64_t hash;
  uint32_t row;
};

// Stable sort of `items` by hash ascending: equal hashes keep their input
// order, so when items are appended in row order every equal-hash run is in
// first-occurrence order and its first element is the lowest row. One MSD
// scatter pass over the top 14 hash bits, then tiny per-bucket insertion
// sorts (std::stable_sort for the rare oversized bucket) — a single pass of
// scatter traffic instead of LSD's eight, several times faster than a
// comparison sort on the 100k-row profiling workload. `scratch` is the
// scatter buffer, resized as needed; pass the same vector across calls to
// reuse its capacity.
void StableRadixSortByHash(std::vector<HashRow>* items,
                           std::vector<HashRow>* scratch);

// Streamed composite tuple hash of row r over `cols`: byte-for-byte the
// FNV-1a of the escaped rendering "v1|v2|...|" ('|' and '\' are
// backslash-escaped inside values — the TupleKey convention of
// profile/ucc.cc and TupleHash of profile/sketch.h), computed directly from
// the pooled key bytes. Returns false if any cell is null.
bool TupleHashFromViews(const std::vector<const ColumnKeyView*>& cols,
                        size_t r, uint64_t* out);

// True if the composite tuples of rows ra and rb are identical (span
// equality per column). Both rows must be non-null-complete over `cols`;
// used as the verify-on-collision fallback of the sort-based kernels.
bool TuplesEqual(const std::vector<const ColumnKeyView*>& cols, size_t ra,
                 size_t rb);

}  // namespace autobi

#endif  // AUTOBI_TABLE_KEY_VIEW_H_
