#include "table/csv.h"

#include <fstream>
#include <vector>

#include "common/strings.h"
#include "fuzz/faultpoints.h"
#include "table/value.h"

namespace autobi {

namespace {

constexpr std::string_view kUtf8Bom = "\xEF\xBB\xBF";

// Splits CSV text into rows of fields, honoring quotes. Errors on an
// unterminated quoted field.
Status ParseCsvCells(std::string_view text,
                     std::vector<std::vector<std::string>>* rows) {
  rows->clear();
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;
  size_t i = 0;
  auto end_field = [&]() {
    row.push_back(field);
    field.clear();
    field_started = false;
  };
  auto end_row = [&]() {
    end_field();
    // Skip rows that are entirely empty (e.g. trailing newline).
    bool all_empty = true;
    for (const auto& f : row) {
      if (!f.empty()) {
        all_empty = false;
        break;
      }
    }
    if (!(row.size() == 1 && all_empty)) rows->push_back(row);
    row.clear();
  };
  while (i < text.size()) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      field += c;
      ++i;
      continue;
    }
    switch (c) {
      case '"':
        if (!field_started || field.empty()) {
          in_quotes = true;
          field_started = true;
        } else {
          field += c;  // Stray quote mid-field: keep it verbatim.
        }
        ++i;
        break;
      case ',':
        end_field();
        ++i;
        break;
      case '\r':
        ++i;  // Tolerate CRLF (and stray CR).
        break;
      case '\n':
        end_row();
        ++i;
        break;
      default:
        field += c;
        field_started = true;
        ++i;
        break;
    }
  }
  if (in_quotes) {
    return Status::InvalidInput("unterminated quoted field");
  }
  if (field_started || !field.empty() || !row.empty()) end_row();
  return Status::Ok();
}

}  // namespace

StatusOr<Table> ReadCsv(std::string_view text, std::string table_name,
                        const CsvOptions& options, CsvStats* stats) {
  CsvStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = CsvStats{};
  if (options.max_bytes > 0 && text.size() > options.max_bytes) {
    return Status::ResourceExhausted(
        StrFormat("CSV input is %zu bytes, over the %zu-byte cap", text.size(),
                  options.max_bytes));
  }
  if (StartsWith(text, kUtf8Bom)) {
    text.remove_prefix(kUtf8Bom.size());
    stats->had_bom = true;
  }
  std::vector<std::vector<std::string>> rows;
  AUTOBI_RETURN_IF_ERROR(ParseCsvCells(text, &rows));
  if (rows.empty()) {
    return Status::InvalidInput("empty CSV input");
  }
  const std::vector<std::string>& header = rows[0];
  size_t width = header.size();
  for (size_t r = 1; r < rows.size(); ++r) {
    if (rows[r].size() == width) continue;
    if (!options.lenient) {
      return Status::InvalidInput(StrFormat(
          "row %zu has %zu fields, expected %zu", r, rows[r].size(), width));
    }
    if (rows[r].size() < width) {
      rows[r].resize(width);  // Pad with empty cells (become nulls).
      ++stats->ragged_rows_padded;
    } else {
      rows[r].resize(width);
      ++stats->ragged_rows_truncated;
    }
  }
  // Infer each column's type across all data rows.
  std::vector<ValueType> types(width, ValueType::kNull);
  for (size_t r = 1; r < rows.size(); ++r) {
    for (size_t c = 0; c < width; ++c) {
      types[c] = UnifyValueTypes(types[c], InferValueType(rows[r][c]));
    }
  }
  Table out(std::move(table_name));
  for (size_t c = 0; c < width; ++c) {
    ValueType t = types[c] == ValueType::kNull ? ValueType::kString : types[c];
    out.AddColumn(header[c], t);
  }
  for (size_t r = 1; r < rows.size(); ++r) {
    for (size_t c = 0; c < width; ++c) {
      out.column(c).AppendParsed(rows[r][c]);
    }
  }
  return out;
}

StatusOr<Table> ReadCsvFile(const std::string& path, const CsvOptions& options,
                            CsvStats* stats) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in || FaultPoints::Global().Fire("io.open")) {
    return Status::Internal("cannot open " + path);
  }
  std::streamoff size = in.tellg();
  if (size < 0) {
    return Status::Internal("cannot determine size of " + path);
  }
  // Reject oversized files before buffering a single byte.
  if (options.max_bytes > 0 && size_t(size) > options.max_bytes) {
    return Status::ResourceExhausted(
        StrFormat("%s is %lld bytes, over the %zu-byte cap", path.c_str(),
                  static_cast<long long>(size), options.max_bytes));
  }
  in.seekg(0, std::ios::beg);
  std::string bytes(size_t(size), '\0');
  if (size > 0 && !in.read(bytes.data(), size)) {
    return Status::Internal("read failed for " + path);
  }
  if (FaultPoints::Global().Fire("io.short_read")) {
    bytes.resize(size_t(double(bytes.size()) *
                        FaultPoints::Global().Fraction("io.short_read")));
  }
  std::string name = path;
  size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  if (EndsWith(name, ".csv")) name = name.substr(0, name.size() - 4);
  StatusOr<Table> table = ReadCsv(bytes, name, options, stats);
  if (!table.ok()) return table.status().WithContext("read " + path);
  return table;
}

namespace {

// Quotes a field if it contains separators, quotes or newlines.
std::string CsvQuote(const std::string& s) {
  bool needs = s.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

}  // namespace

std::string WriteCsv(const Table& table) {
  std::string out;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (c > 0) out += ",";
    out += CsvQuote(table.column(c).name());
  }
  out += "\n";
  std::string key;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out += ",";
      if (table.column(c).KeyAt(r, &key)) out += CsvQuote(key);
    }
    out += "\n";
  }
  return out;
}

}  // namespace autobi
