#include "table/csv.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "common/strings.h"
#include "table/value.h"

namespace autobi {

namespace {

// Splits CSV text into rows of fields, honoring quotes. Returns false on an
// unterminated quoted field.
bool ParseCsvCells(std::string_view text,
                   std::vector<std::vector<std::string>>* rows,
                   std::string* error) {
  rows->clear();
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;
  size_t i = 0;
  auto end_field = [&]() {
    row.push_back(field);
    field.clear();
    field_started = false;
  };
  auto end_row = [&]() {
    end_field();
    // Skip rows that are entirely empty (e.g. trailing newline).
    bool all_empty = true;
    for (const auto& f : row) {
      if (!f.empty()) {
        all_empty = false;
        break;
      }
    }
    if (!(row.size() == 1 && all_empty)) rows->push_back(row);
    row.clear();
  };
  while (i < text.size()) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      field += c;
      ++i;
      continue;
    }
    switch (c) {
      case '"':
        if (!field_started || field.empty()) {
          in_quotes = true;
          field_started = true;
        } else {
          field += c;  // Stray quote mid-field: keep it verbatim.
        }
        ++i;
        break;
      case ',':
        end_field();
        ++i;
        break;
      case '\r':
        ++i;  // Tolerate CRLF.
        break;
      case '\n':
        end_row();
        ++i;
        break;
      default:
        field += c;
        field_started = true;
        ++i;
        break;
    }
  }
  if (in_quotes) {
    *error = "unterminated quoted field";
    return false;
  }
  if (field_started || !field.empty() || !row.empty()) end_row();
  return true;
}

}  // namespace

bool ReadCsv(std::string_view text, std::string table_name, Table* out,
             std::string* error) {
  std::vector<std::vector<std::string>> rows;
  if (!ParseCsvCells(text, &rows, error)) return false;
  if (rows.empty()) {
    *error = "empty CSV input";
    return false;
  }
  const std::vector<std::string>& header = rows[0];
  size_t width = header.size();
  for (size_t r = 1; r < rows.size(); ++r) {
    if (rows[r].size() != width) {
      *error = StrFormat("row %zu has %zu fields, expected %zu", r,
                         rows[r].size(), width);
      return false;
    }
  }
  // Infer each column's type across all data rows.
  std::vector<ValueType> types(width, ValueType::kNull);
  for (size_t r = 1; r < rows.size(); ++r) {
    for (size_t c = 0; c < width; ++c) {
      types[c] = UnifyValueTypes(types[c], InferValueType(rows[r][c]));
    }
  }
  *out = Table(std::move(table_name));
  for (size_t c = 0; c < width; ++c) {
    ValueType t = types[c] == ValueType::kNull ? ValueType::kString : types[c];
    out->AddColumn(header[c], t);
  }
  for (size_t r = 1; r < rows.size(); ++r) {
    for (size_t c = 0; c < width; ++c) {
      out->column(c).AppendParsed(rows[r][c]);
    }
  }
  return true;
}

bool ReadCsvFile(const std::string& path, Table* out, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string name = path;
  size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  if (EndsWith(name, ".csv")) name = name.substr(0, name.size() - 4);
  return ReadCsv(buf.str(), name, out, error);
}

namespace {

// Quotes a field if it contains separators, quotes or newlines.
std::string CsvQuote(const std::string& s) {
  bool needs = s.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

}  // namespace

std::string WriteCsv(const Table& table) {
  std::string out;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (c > 0) out += ",";
    out += CsvQuote(table.column(c).name());
  }
  out += "\n";
  std::string key;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out += ",";
      if (table.column(c).KeyAt(r, &key)) out += CsvQuote(key);
    }
    out += "\n";
  }
  return out;
}

}  // namespace autobi
