#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <numeric>
#include <ostream>
#include <sstream>
#include <string>

#include "common/check.h"

namespace autobi {

namespace {

// Gini impurity of a (pos, total) split side.
double Gini(double pos, double total) {
  if (total <= 0.0) return 0.0;
  double p = pos / total;
  return 2.0 * p * (1.0 - p);
}

}  // namespace

void DecisionTree::Fit(const Dataset& data, const std::vector<size_t>& rows,
                       const TreeOptions& options, Rng& rng) {
  nodes_.clear();
  AUTOBI_CHECK(!rows.empty());  // invariant: forests never fit empty node sets.
  std::vector<size_t> work = rows;
  Build(data, work, 0, work.size(), 0, options, rng);
}

void DecisionTree::Fit(const Dataset& data, const TreeOptions& options,
                       Rng& rng) {
  std::vector<size_t> rows(data.num_rows());
  std::iota(rows.begin(), rows.end(), 0);
  Fit(data, rows, options, rng);
}

int DecisionTree::Build(const Dataset& data, std::vector<size_t>& rows,
                        size_t begin, size_t end, int depth,
                        const TreeOptions& options, Rng& rng) {
  size_t n = end - begin;
  double pos = 0.0;
  for (size_t i = begin; i < end; ++i) pos += data.Label(rows[i]);

  int node_index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_index].weight = static_cast<double>(n);
  nodes_[node_index].proba = pos / static_cast<double>(n);

  bool pure = (pos == 0.0 || pos == static_cast<double>(n));
  if (pure || depth >= options.max_depth || n < options.min_samples_split) {
    return node_index;  // Leaf.
  }

  // Choose the candidate feature subset for this node.
  size_t nf = data.num_features();
  std::vector<size_t> feats(nf);
  std::iota(feats.begin(), feats.end(), 0);
  size_t k = options.features_per_split == 0
                 ? nf
                 : std::min(options.features_per_split, nf);
  if (k < nf) rng.Shuffle(feats);

  // Exact best split: for each candidate feature, sort the rows by that
  // feature and scan thresholds between consecutive distinct values.
  double best_gain = 1e-12;
  int best_feature = -1;
  double best_threshold = 0.0;
  double parent_gini = Gini(pos, static_cast<double>(n));
  std::vector<std::pair<double, int>> vals;
  vals.reserve(n);
  for (size_t fi = 0; fi < k; ++fi) {
    size_t f = feats[fi];
    vals.clear();
    for (size_t i = begin; i < end; ++i) {
      vals.emplace_back(data.Feature(rows[i], f), data.Label(rows[i]));
    }
    std::sort(vals.begin(), vals.end());
    if (vals.front().first == vals.back().first) continue;  // Constant.
    double left_pos = 0.0;
    for (size_t i = 0; i + 1 < n; ++i) {
      left_pos += vals[i].second;
      if (vals[i].first == vals[i + 1].first) continue;
      size_t left_n = i + 1;
      size_t right_n = n - left_n;
      if (left_n < options.min_samples_leaf ||
          right_n < options.min_samples_leaf) {
        continue;
      }
      double right_pos = pos - left_pos;
      double wl = static_cast<double>(left_n) / static_cast<double>(n);
      double wr = 1.0 - wl;
      double child = wl * Gini(left_pos, double(left_n)) +
                     wr * Gini(right_pos, double(right_n));
      double gain = parent_gini - child;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = (vals[i].first + vals[i + 1].first) / 2.0;
      }
    }
  }
  if (best_feature < 0) return node_index;  // No useful split: leaf.

  // Partition rows in place around the threshold.
  size_t mid = begin;
  for (size_t i = begin; i < end; ++i) {
    if (data.Feature(rows[i], static_cast<size_t>(best_feature)) <=
        best_threshold) {
      std::swap(rows[i], rows[mid]);
      ++mid;
    }
  }
  if (mid == begin || mid == end) return node_index;  // Degenerate.

  nodes_[node_index].feature = best_feature;
  nodes_[node_index].threshold = best_threshold;
  int left = Build(data, rows, begin, mid, depth + 1, options, rng);
  int right = Build(data, rows, mid, end, depth + 1, options, rng);
  nodes_[node_index].left = left;
  nodes_[node_index].right = right;
  return node_index;
}

double DecisionTree::PredictProba(const std::vector<double>& features) const {
  AUTOBI_CHECK(!nodes_.empty());  // invariant: Fit() precedes prediction.
  int cur = 0;
  for (;;) {
    const Node& node = nodes_[static_cast<size_t>(cur)];
    if (node.feature < 0) return node.proba;
    cur = features[static_cast<size_t>(node.feature)] <= node.threshold
              ? node.left
              : node.right;
  }
}

void DecisionTree::AccumulateImportance(
    std::vector<double>* importance) const {
  for (const Node& node : nodes_) {
    if (node.feature >= 0) {
      size_t f = static_cast<size_t>(node.feature);
      if (f < importance->size()) (*importance)[f] += node.weight;
    }
  }
}

void DecisionTree::Save(std::ostream& os) const {
  os.precision(17);  // Round-trip doubles exactly.
  os << "tree " << nodes_.size() << "\n";
  for (const Node& n : nodes_) {
    os << n.feature << " " << n.threshold << " " << n.left << " " << n.right
       << " " << n.proba << " " << n.weight << "\n";
  }
}

bool DecisionTree::Load(std::istream& is) {
  std::string tag;
  size_t count = 0;
  if (!(is >> tag >> count) || tag != "tree") return false;
  nodes_.assign(count, Node{});
  for (Node& n : nodes_) {
    if (!(is >> n.feature >> n.threshold >> n.left >> n.right >> n.proba >>
          n.weight)) {
      return false;
    }
  }
  return true;
}

}  // namespace autobi
