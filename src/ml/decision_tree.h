#ifndef AUTOBI_ML_DECISION_TREE_H_
#define AUTOBI_ML_DECISION_TREE_H_

#include <iosfwd>
#include <vector>

#include "common/rng.h"
#include "ml/dataset.h"

namespace autobi {

struct TreeOptions {
  int max_depth = 8;
  size_t min_samples_leaf = 3;
  size_t min_samples_split = 6;
  // Number of features considered per split; 0 = all (single trees),
  // sqrt(num_features) is typical inside a random forest.
  size_t features_per_split = 0;
};

// A CART binary classification tree with axis-aligned threshold splits and
// Gini impurity. Leaves store the positive-class fraction, so PredictProba
// returns a (raw, uncalibrated) probability estimate — calibration happens
// downstream (Section 4.2, "calibrate classifier scores into probabilities").
class DecisionTree {
 public:
  // Fits on the rows of `data` listed in `rows` (duplicates allowed, which is
  // how bootstrap sampling is expressed).
  void Fit(const Dataset& data, const std::vector<size_t>& rows,
           const TreeOptions& options, Rng& rng);

  // Convenience: fit on all rows.
  void Fit(const Dataset& data, const TreeOptions& options, Rng& rng);

  // Positive-class fraction at the leaf reached by `features`.
  double PredictProba(const std::vector<double>& features) const;

  size_t num_nodes() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }

  // Accumulates per-feature split counts weighted by node size (a simple
  // feature-importance measure, used to report the paper's Appendix-B
  // "feature importance" lists).
  void AccumulateImportance(std::vector<double>* importance) const;

  // Text (de)serialization; one node per line.
  void Save(std::ostream& os) const;
  bool Load(std::istream& is);

 private:
  struct Node {
    // Internal: feature >= 0, with `left` taken when x[feature] <= threshold.
    // Leaf: feature == -1 and `proba` is the positive fraction.
    int feature = -1;
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    double proba = 0.0;
    double weight = 0.0;  // Training rows that reached this node.
  };

  int Build(const Dataset& data, std::vector<size_t>& rows, size_t begin,
            size_t end, int depth, const TreeOptions& options, Rng& rng);

  std::vector<Node> nodes_;
};

}  // namespace autobi

#endif  // AUTOBI_ML_DECISION_TREE_H_
