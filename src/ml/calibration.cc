#include "ml/calibration.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <string>

#include "common/check.h"

namespace autobi {

namespace {

double Sigmoid(double z) {
  if (z >= 0) {
    double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

void PlattCalibrator::Fit(const std::vector<double>& scores,
                          const std::vector<int>& labels) {
  // invariant: the trainer builds scores and labels in lockstep, non-empty.
  AUTOBI_CHECK(scores.size() == labels.size());
  AUTOBI_CHECK(!scores.empty());
  size_t n = scores.size();
  double n_pos = 0.0;
  for (int l : labels) n_pos += (l != 0);
  double n_neg = static_cast<double>(n) - n_pos;
  // Platt's label smoothing targets.
  double t_pos = (n_pos + 1.0) / (n_pos + 2.0);
  double t_neg = 1.0 / (n_neg + 2.0);

  double a = 1.0;
  double b = std::log((n_neg + 1.0) / (n_pos + 1.0));
  for (int iter = 0; iter < 100; ++iter) {
    double g_a = 0.0, g_b = 0.0;
    double h_aa = 1e-9, h_ab = 0.0, h_bb = 1e-9;
    for (size_t i = 0; i < n; ++i) {
      double s = scores[i];
      double t = labels[i] ? t_pos : t_neg;
      double p = Sigmoid(a * s + b);
      double err = p - t;
      g_a += err * s;
      g_b += err;
      double w = p * (1.0 - p);
      h_aa += w * s * s;
      h_ab += w * s;
      h_bb += w;
    }
    // Newton step: solve [h_aa h_ab; h_ab h_bb] [da db] = [g_a g_b].
    double det = h_aa * h_bb - h_ab * h_ab;
    if (std::fabs(det) < 1e-18) break;
    double da = (g_a * h_bb - g_b * h_ab) / det;
    double db = (g_b * h_aa - g_a * h_ab) / det;
    a -= da;
    b -= db;
    if (std::fabs(da) < 1e-10 && std::fabs(db) < 1e-10) break;
  }
  a_ = a;
  b_ = b;
  fitted_ = true;
}

double PlattCalibrator::Calibrate(double score) const {
  if (!fitted_) return score;
  return Sigmoid(a_ * score + b_);
}

void PlattCalibrator::Save(std::ostream& os) const {
  os.precision(17);
  os << "platt " << a_ << " " << b_ << " " << (fitted_ ? 1 : 0) << "\n";
}

bool PlattCalibrator::Load(std::istream& is) {
  std::string tag;
  int f = 0;
  if (!(is >> tag >> a_ >> b_ >> f) || tag != "platt") return false;
  fitted_ = (f != 0);
  return true;
}

void IsotonicCalibrator::Fit(const std::vector<double>& scores,
                             const std::vector<int>& labels) {
  // invariant: the trainer builds scores and labels in lockstep, non-empty.
  AUTOBI_CHECK(scores.size() == labels.size());
  AUTOBI_CHECK(!scores.empty());
  size_t n = scores.size();
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
    return scores[x] < scores[y];
  });

  // PAVA with blocks (sum_y, sum_x, count).
  struct Block {
    double sum_y;
    double sum_x;
    double count;
  };
  std::vector<Block> blocks;
  blocks.reserve(n);
  for (size_t i : order) {
    blocks.push_back({labels[i] ? 1.0 : 0.0, scores[i], 1.0});
    while (blocks.size() >= 2) {
      Block& b2 = blocks[blocks.size() - 1];
      Block& b1 = blocks[blocks.size() - 2];
      if (b1.sum_y / b1.count <= b2.sum_y / b2.count) break;
      b1.sum_y += b2.sum_y;
      b1.sum_x += b2.sum_x;
      b1.count += b2.count;
      blocks.pop_back();
    }
  }
  xs_.clear();
  ys_.clear();
  for (const Block& b : blocks) {
    xs_.push_back(b.sum_x / b.count);
    ys_.push_back(b.sum_y / b.count);
  }
}

double IsotonicCalibrator::Calibrate(double score) const {
  if (xs_.empty()) return score;
  if (score <= xs_.front()) return ys_.front();
  if (score >= xs_.back()) return ys_.back();
  // Binary search for the bracketing block centers, then interpolate.
  size_t hi = static_cast<size_t>(
      std::lower_bound(xs_.begin(), xs_.end(), score) - xs_.begin());
  size_t lo = hi - 1;
  double span = xs_[hi] - xs_[lo];
  if (span <= 0.0) return ys_[lo];
  double frac = (score - xs_[lo]) / span;
  return ys_[lo] * (1.0 - frac) + ys_[hi] * frac;
}

void IsotonicCalibrator::Save(std::ostream& os) const {
  os.precision(17);
  os << "isotonic " << xs_.size() << "\n";
  for (size_t i = 0; i < xs_.size(); ++i) {
    os << xs_[i] << " " << ys_[i] << "\n";
  }
}

bool IsotonicCalibrator::Load(std::istream& is) {
  std::string tag;
  size_t n = 0;
  if (!(is >> tag >> n) || tag != "isotonic") return false;
  xs_.assign(n, 0.0);
  ys_.assign(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    if (!(is >> xs_[i] >> ys_[i])) return false;
  }
  return true;
}

}  // namespace autobi
