#include "ml/random_forest.h"

#include <cmath>
#include <istream>
#include <ostream>
#include <string>

#include "common/check.h"
#include "common/parallel.h"

namespace autobi {

void RandomForest::Fit(const Dataset& data, const ForestOptions& options,
                       Rng& rng) {
  AUTOBI_CHECK(data.num_rows() > 0);  // invariant: trainer filters empty data.
  trees_.clear();
  TreeOptions topt = options.tree;
  if (options.sqrt_features && topt.features_per_split == 0) {
    topt.features_per_split = static_cast<size_t>(
        std::ceil(std::sqrt(static_cast<double>(data.num_features()))));
  }
  size_t sample_size = static_cast<size_t>(
      options.sample_fraction * static_cast<double>(data.num_rows()));
  if (sample_size == 0) sample_size = data.num_rows();
  trees_.resize(static_cast<size_t>(options.num_trees));
  // Fork one RNG stream per tree *before* the parallel region, in tree
  // order: every tree's bootstrap sample and split randomness depend only on
  // its own stream, so the fitted forest is bit-identical at any thread
  // count (the concurrency contract in ARCHITECTURE.md).
  std::vector<Rng> tree_rngs;
  tree_rngs.reserve(trees_.size());
  for (size_t t = 0; t < trees_.size(); ++t) tree_rngs.push_back(rng.Fork());
  ParallelFor(
      trees_.size(),
      [&](size_t t) {
        std::vector<size_t> rows(sample_size);
        for (size_t& r : rows) r = tree_rngs[t].NextBelow(data.num_rows());
        trees_[t].Fit(data, rows, topt, tree_rngs[t]);
      },
      options.threads);
}

double RandomForest::PredictProba(const std::vector<double>& features) const {
  AUTOBI_CHECK(!trees_.empty());  // invariant: Fit() precedes prediction.
  double sum = 0.0;
  for (const DecisionTree& tree : trees_) sum += tree.PredictProba(features);
  return sum / static_cast<double>(trees_.size());
}

std::vector<double> RandomForest::FeatureImportance(
    size_t num_features) const {
  std::vector<double> importance(num_features, 0.0);
  for (const DecisionTree& tree : trees_) {
    tree.AccumulateImportance(&importance);
  }
  double total = 0.0;
  for (double v : importance) total += v;
  if (total > 0.0) {
    for (double& v : importance) v /= total;
  }
  return importance;
}

void RandomForest::Save(std::ostream& os) const {
  os << "forest " << trees_.size() << "\n";
  for (const DecisionTree& tree : trees_) tree.Save(os);
}

bool RandomForest::Load(std::istream& is) {
  std::string tag;
  size_t count = 0;
  if (!(is >> tag >> count) || tag != "forest") return false;
  trees_.assign(count, DecisionTree{});
  for (DecisionTree& tree : trees_) {
    if (!tree.Load(is)) return false;
  }
  return true;
}

}  // namespace autobi
