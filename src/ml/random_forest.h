#ifndef AUTOBI_ML_RANDOM_FOREST_H_
#define AUTOBI_ML_RANDOM_FOREST_H_

#include <iosfwd>
#include <vector>

#include "ml/decision_tree.h"

namespace autobi {

struct ForestOptions {
  int num_trees = 48;
  TreeOptions tree;
  // Bootstrap sample fraction per tree.
  double sample_fraction = 1.0;
  // If true, tree.features_per_split defaults to sqrt(num_features).
  bool sqrt_features = true;
  // Worker threads for per-tree fitting (ResolveThreads semantics: 0 = use
  // AUTOBI_THREADS / hardware, 1 = serial). Each tree draws from its own
  // deterministically forked RNG stream, so the fitted forest is identical
  // at any thread count.
  int threads = 0;
};

// Bagged random forest over CART trees — the feature-based local join
// classifier of Section 4.2. PredictProba averages the trees' leaf
// fractions; the result is a raw score that the calibrators turn into a true
// probability.
class RandomForest {
 public:
  void Fit(const Dataset& data, const ForestOptions& options, Rng& rng);

  double PredictProba(const std::vector<double>& features) const;

  bool trained() const { return !trees_.empty(); }
  size_t num_trees() const { return trees_.size(); }

  // Per-feature importance (normalized to sum to 1), for the Appendix-B
  // feature-importance report.
  std::vector<double> FeatureImportance(size_t num_features) const;

  void Save(std::ostream& os) const;
  bool Load(std::istream& is);

 private:
  std::vector<DecisionTree> trees_;
};

}  // namespace autobi

#endif  // AUTOBI_ML_RANDOM_FOREST_H_
