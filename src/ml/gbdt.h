#ifndef AUTOBI_ML_GBDT_H_
#define AUTOBI_ML_GBDT_H_

#include <iosfwd>
#include <vector>

#include "common/rng.h"
#include "ml/dataset.h"

namespace autobi {

struct GbdtOptions {
  int num_rounds = 60;
  double learning_rate = 0.15;
  int max_depth = 4;
  size_t min_samples_leaf = 5;
  // Row subsampling per round (stochastic gradient boosting).
  double subsample = 0.8;
  // Worker threads for the per-feature split search inside each boosting
  // round (rounds themselves are inherently sequential). ResolveThreads
  // semantics; the fitted ensemble is identical at any thread count because
  // per-feature gains are computed independently and reduced in feature
  // order with the same strict-improvement tie-break as the serial scan.
  int threads = 0;
};

// Gradient-boosted decision trees with logistic loss — an alternative local
// classifier to the random forest (an extension beyond the paper's sklearn
// setup, used by the classifier-choice ablation bench). Each round fits a
// small regression tree to the loss gradient; leaf values use Friedman's
// single Newton step for the logistic objective.
class Gbdt {
 public:
  void Fit(const Dataset& data, const GbdtOptions& options, Rng& rng);

  // Probability via sigmoid of the boosted score.
  double PredictProba(const std::vector<double>& features) const;

  bool trained() const { return !trees_.empty(); }
  size_t num_rounds() const { return trees_.size(); }

  void Save(std::ostream& os) const;
  bool Load(std::istream& is);

 private:
  struct Node {
    int feature = -1;   // -1 for leaves.
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    double value = 0.0;  // Leaf output.
  };
  using Tree = std::vector<Node>;

  int BuildTree(Tree& tree, const Dataset& data,
                const std::vector<double>& gradient,
                const std::vector<double>& hessian, std::vector<size_t>& rows,
                size_t begin, size_t end, int depth,
                const GbdtOptions& options) const;
  static double Evaluate(const Tree& tree,
                         const std::vector<double>& features);

  std::vector<Tree> trees_;
  double base_score_ = 0.0;     // Log-odds prior.
  double learning_rate_ = 0.15;  // Shrinkage used at fit time.
};

}  // namespace autobi

#endif  // AUTOBI_ML_GBDT_H_
