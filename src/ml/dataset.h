#ifndef AUTOBI_ML_DATASET_H_
#define AUTOBI_ML_DATASET_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.h"

namespace autobi {

// A dense supervised-learning dataset: row-major feature matrix plus binary
// labels. Produced by the featurizer over harvested training BI models,
// consumed by the classifiers (Section 4.2).
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<std::string> feature_names)
      : feature_names_(std::move(feature_names)) {}

  size_t num_rows() const { return labels_.size(); }
  size_t num_features() const { return feature_names_.size(); }
  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }

  // Adds one example. `features.size()` must equal num_features().
  void Add(const std::vector<double>& features, int label);

  double Feature(size_t row, size_t feature) const {
    return features_[row * num_features() + feature];
  }
  int Label(size_t row) const { return labels_[row]; }

  // Feature vector of one row (copy).
  std::vector<double> Row(size_t row) const;

  // Number of positive labels.
  size_t num_positives() const;

  // Splits rows (after a seeded shuffle) into train/holdout with the given
  // train fraction. Used to reserve calibration data.
  void Split(double train_fraction, Rng& rng, Dataset* train,
             Dataset* holdout) const;

 private:
  std::vector<std::string> feature_names_;
  std::vector<double> features_;  // Row-major.
  std::vector<int> labels_;
};

}  // namespace autobi

#endif  // AUTOBI_ML_DATASET_H_
