#include "ml/logistic.h"

#include <cmath>
#include <istream>
#include <ostream>
#include <string>

#include "common/check.h"

namespace autobi {

namespace {

double Sigmoid(double z) {
  if (z >= 0) {
    double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

void LogisticRegression::Fit(const Dataset& data,
                             const LogisticOptions& options) {
  size_t n = data.num_rows();
  size_t d = data.num_features();
  // invariant: the trainer never fits on an empty dataset.
  AUTOBI_CHECK(n > 0 && d > 0);

  // Standardize features for stable gradient descent.
  mean_.assign(d, 0.0);
  scale_.assign(d, 1.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) mean_[j] += data.Feature(i, j);
  }
  for (double& m : mean_) m /= static_cast<double>(n);
  std::vector<double> var(d, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) {
      double delta = data.Feature(i, j) - mean_[j];
      var[j] += delta * delta;
    }
  }
  for (size_t j = 0; j < d; ++j) {
    double s = std::sqrt(var[j] / static_cast<double>(n));
    scale_[j] = s > 1e-12 ? s : 1.0;
  }

  weights_.assign(d, 0.0);
  bias_ = 0.0;
  std::vector<double> grad(d);
  double prev_loss = 1e300;
  for (int iter = 0; iter < options.max_iters; ++iter) {
    std::fill(grad.begin(), grad.end(), 0.0);
    double grad_b = 0.0;
    double loss = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double z = bias_;
      for (size_t j = 0; j < d; ++j) {
        z += weights_[j] * (data.Feature(i, j) - mean_[j]) / scale_[j];
      }
      double p = Sigmoid(z);
      double y = data.Label(i) ? 1.0 : 0.0;
      double err = p - y;
      for (size_t j = 0; j < d; ++j) {
        grad[j] += err * (data.Feature(i, j) - mean_[j]) / scale_[j];
      }
      grad_b += err;
      double pc = std::min(std::max(p, 1e-12), 1.0 - 1e-12);
      loss += -(y * std::log(pc) + (1.0 - y) * std::log(1.0 - pc));
    }
    loss /= static_cast<double>(n);
    for (size_t j = 0; j < d; ++j) {
      grad[j] = grad[j] / static_cast<double>(n) + options.l2 * weights_[j];
      loss += 0.5 * options.l2 * weights_[j] * weights_[j];
    }
    grad_b /= static_cast<double>(n);
    for (size_t j = 0; j < d; ++j) {
      weights_[j] -= options.learning_rate * grad[j];
    }
    bias_ -= options.learning_rate * grad_b;
    if (std::fabs(prev_loss - loss) < options.tolerance) break;
    prev_loss = loss;
  }
}

double LogisticRegression::PredictProba(
    const std::vector<double>& features) const {
  AUTOBI_CHECK(trained());  // invariant: Fit() precedes prediction.
  double z = bias_;
  for (size_t j = 0; j < weights_.size(); ++j) {
    z += weights_[j] * (features[j] - mean_[j]) / scale_[j];
  }
  return Sigmoid(z);
}

void LogisticRegression::Save(std::ostream& os) const {
  os.precision(17);
  os << "logistic " << weights_.size() << " " << bias_ << "\n";
  for (size_t j = 0; j < weights_.size(); ++j) {
    os << weights_[j] << " " << mean_[j] << " " << scale_[j] << "\n";
  }
}

bool LogisticRegression::Load(std::istream& is) {
  std::string tag;
  size_t d = 0;
  if (!(is >> tag >> d >> bias_) || tag != "logistic") return false;
  weights_.assign(d, 0.0);
  mean_.assign(d, 0.0);
  scale_.assign(d, 1.0);
  for (size_t j = 0; j < d; ++j) {
    if (!(is >> weights_[j] >> mean_[j] >> scale_[j])) return false;
  }
  return true;
}

}  // namespace autobi
