#ifndef AUTOBI_ML_METRICS_H_
#define AUTOBI_ML_METRICS_H_

#include <cstddef>
#include <vector>

namespace autobi {

// Classifier-quality metrics used by the offline training pipeline to report
// local-classifier quality, and by tests to assert on calibration quality.

struct BinaryMetrics {
  double accuracy = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  size_t true_positives = 0;
  size_t false_positives = 0;
  size_t false_negatives = 0;
  size_t true_negatives = 0;
};

// Threshold-at-0.5 classification metrics.
BinaryMetrics ComputeBinaryMetrics(const std::vector<double>& scores,
                                   const std::vector<int>& labels,
                                   double threshold = 0.5);

// Area under the ROC curve (probability a random positive outranks a random
// negative; ties count half). Returns 0.5 if either class is absent.
double RocAuc(const std::vector<double>& scores,
              const std::vector<int>& labels);

// Brier score: mean squared error of probabilistic predictions.
double BrierScore(const std::vector<double>& scores,
                  const std::vector<int>& labels);

// Expected calibration error with equal-width bins: weighted mean
// |empirical positive rate - mean predicted probability| per bin.
double ExpectedCalibrationError(const std::vector<double>& scores,
                                const std::vector<int>& labels,
                                int num_bins = 10);

}  // namespace autobi

#endif  // AUTOBI_ML_METRICS_H_
