#include "ml/gbdt.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <string>

#include "common/check.h"
#include "common/parallel.h"

namespace autobi {

namespace {

// Node-size floor below which the split search stays serial (task overhead
// would dominate on the small nodes deep in the tree).
constexpr size_t kParallelSplitMinRows = 512;

double Sigmoid(double z) {
  if (z >= 0) {
    double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

int Gbdt::BuildTree(Tree& tree, const Dataset& data,
                    const std::vector<double>& gradient,
                    const std::vector<double>& hessian,
                    std::vector<size_t>& rows, size_t begin, size_t end,
                    int depth, const GbdtOptions& options) const {
  double g_sum = 0.0;
  double h_sum = 0.0;
  for (size_t i = begin; i < end; ++i) {
    g_sum += gradient[rows[i]];
    h_sum += hessian[rows[i]];
  }
  int node_index = static_cast<int>(tree.size());
  tree.emplace_back();
  // Newton leaf value: -sum(g) / sum(h), lightly regularized.
  tree[size_t(node_index)].value = -g_sum / (h_sum + 1.0);

  size_t n = end - begin;
  if (depth >= options.max_depth || n < 2 * options.min_samples_leaf) {
    return node_index;
  }

  // Best split by gain of the Newton objective: G^2/H improvement. Each
  // feature's scan is independent, so features fan out across the pool for
  // large nodes; the serial reduction below applies the same strict ">"
  // improvement rule in feature order, which reproduces the single-loop
  // result exactly (first feature reaching the maximum wins, and within a
  // feature the first split reaching its maximum wins).
  double parent_score = g_sum * g_sum / (h_sum + 1.0);
  struct FeatureSplit {
    double gain = 1e-10;
    double threshold = 0.0;
    bool valid = false;
  };
  auto scan_feature = [&](size_t f) {
    FeatureSplit best;
    std::vector<std::pair<double, size_t>> vals;
    vals.reserve(n);
    for (size_t i = begin; i < end; ++i) {
      vals.emplace_back(data.Feature(rows[i], f), rows[i]);
    }
    std::sort(vals.begin(), vals.end());
    if (vals.front().first == vals.back().first) return best;
    double gl = 0.0;
    double hl = 0.0;
    for (size_t i = 0; i + 1 < n; ++i) {
      gl += gradient[vals[i].second];
      hl += hessian[vals[i].second];
      if (vals[i].first == vals[i + 1].first) continue;
      size_t left_n = i + 1;
      if (left_n < options.min_samples_leaf ||
          n - left_n < options.min_samples_leaf) {
        continue;
      }
      double gr = g_sum - gl;
      double hr = h_sum - hl;
      double gain =
          gl * gl / (hl + 1.0) + gr * gr / (hr + 1.0) - parent_score;
      if (gain > best.gain) {
        best.gain = gain;
        best.threshold = (vals[i].first + vals[i + 1].first) / 2.0;
        best.valid = true;
      }
    }
    return best;
  };
  // Parallelism only pays for itself on nodes with enough rows; small nodes
  // (the vast majority, deep in the tree) scan serially.
  int split_threads = n >= kParallelSplitMinRows ? options.threads : 1;
  std::vector<FeatureSplit> splits =
      ParallelMap(data.num_features(), scan_feature, split_threads);
  double best_gain = 1e-10;
  int best_feature = -1;
  double best_threshold = 0.0;
  for (size_t f = 0; f < splits.size(); ++f) {
    if (splits[f].valid && splits[f].gain > best_gain) {
      best_gain = splits[f].gain;
      best_feature = static_cast<int>(f);
      best_threshold = splits[f].threshold;
    }
  }
  if (best_feature < 0) return node_index;

  size_t mid = begin;
  for (size_t i = begin; i < end; ++i) {
    if (data.Feature(rows[i], size_t(best_feature)) <= best_threshold) {
      std::swap(rows[i], rows[mid]);
      ++mid;
    }
  }
  if (mid == begin || mid == end) return node_index;

  tree[size_t(node_index)].feature = best_feature;
  tree[size_t(node_index)].threshold = best_threshold;
  int left = BuildTree(tree, data, gradient, hessian, rows, begin, mid,
                       depth + 1, options);
  int right = BuildTree(tree, data, gradient, hessian, rows, mid, end,
                        depth + 1, options);
  tree[size_t(node_index)].left = left;
  tree[size_t(node_index)].right = right;
  return node_index;
}

double Gbdt::Evaluate(const Tree& tree, const std::vector<double>& features) {
  int cur = 0;
  for (;;) {
    const Node& node = tree[size_t(cur)];
    if (node.feature < 0) return node.value;
    cur = features[size_t(node.feature)] <= node.threshold ? node.left
                                                           : node.right;
  }
}

void Gbdt::Fit(const Dataset& data, const GbdtOptions& options, Rng& rng) {
  AUTOBI_CHECK(data.num_rows() > 0);  // invariant: trainer filters empty data.
  trees_.clear();
  size_t n = data.num_rows();
  double pos = double(data.num_positives());
  double neg = double(n) - pos;
  base_score_ = std::log((pos + 1.0) / (neg + 1.0));
  learning_rate_ = options.learning_rate;

  std::vector<double> score(n, base_score_);
  std::vector<double> gradient(n);
  std::vector<double> hessian(n);
  std::vector<size_t> rows;
  rows.reserve(n);
  for (int round = 0; round < options.num_rounds; ++round) {
    for (size_t i = 0; i < n; ++i) {
      double p = Sigmoid(score[i]);
      gradient[i] = p - (data.Label(i) ? 1.0 : 0.0);
      hessian[i] = std::max(1e-9, p * (1.0 - p));
    }
    rows.clear();
    for (size_t i = 0; i < n; ++i) {
      if (options.subsample >= 1.0 || rng.NextBool(options.subsample)) {
        rows.push_back(i);
      }
    }
    if (rows.size() < 2 * options.min_samples_leaf) continue;
    Tree tree;
    BuildTree(tree, data, gradient, hessian, rows, 0, rows.size(), 0,
              options);
    for (size_t i = 0; i < n; ++i) {
      score[i] += options.learning_rate * Evaluate(tree, data.Row(i));
    }
    trees_.push_back(std::move(tree));
  }
}

double Gbdt::PredictProba(const std::vector<double>& features) const {
  AUTOBI_CHECK(trained());  // invariant: Fit() precedes prediction.
  double score = base_score_;
  for (const Tree& tree : trees_) {
    score += learning_rate_ * Evaluate(tree, features);
  }
  return Sigmoid(score);
}

void Gbdt::Save(std::ostream& os) const {
  os.precision(17);
  os << "gbdt " << trees_.size() << " " << base_score_ << " "
     << learning_rate_ << "\n";
  for (const Tree& tree : trees_) {
    os << tree.size() << "\n";
    for (const Node& n : tree) {
      os << n.feature << " " << n.threshold << " " << n.left << " "
         << n.right << " " << n.value << "\n";
    }
  }
}

bool Gbdt::Load(std::istream& is) {
  std::string tag;
  size_t count = 0;
  if (!(is >> tag >> count >> base_score_ >> learning_rate_) ||
      tag != "gbdt") {
    return false;
  }
  trees_.assign(count, Tree{});
  for (Tree& tree : trees_) {
    size_t nodes = 0;
    if (!(is >> nodes)) return false;
    tree.assign(nodes, Node{});
    for (Node& n : tree) {
      if (!(is >> n.feature >> n.threshold >> n.left >> n.right >> n.value)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace autobi
