#include "ml/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace autobi {

BinaryMetrics ComputeBinaryMetrics(const std::vector<double>& scores,
                                   const std::vector<int>& labels,
                                   double threshold) {
  // invariant: evaluators build scores and labels in lockstep.
  AUTOBI_CHECK(scores.size() == labels.size());
  BinaryMetrics m;
  for (size_t i = 0; i < scores.size(); ++i) {
    bool pred = scores[i] >= threshold;
    bool truth = labels[i] != 0;
    if (pred && truth) ++m.true_positives;
    else if (pred && !truth) ++m.false_positives;
    else if (!pred && truth) ++m.false_negatives;
    else ++m.true_negatives;
  }
  size_t n = scores.size();
  if (n > 0) {
    m.accuracy = double(m.true_positives + m.true_negatives) / double(n);
  }
  if (m.true_positives + m.false_positives > 0) {
    m.precision = double(m.true_positives) /
                  double(m.true_positives + m.false_positives);
  }
  if (m.true_positives + m.false_negatives > 0) {
    m.recall = double(m.true_positives) /
               double(m.true_positives + m.false_negatives);
  }
  if (m.precision + m.recall > 0) {
    m.f1 = 2 * m.precision * m.recall / (m.precision + m.recall);
  }
  return m;
}

double RocAuc(const std::vector<double>& scores,
              const std::vector<int>& labels) {
  // invariant: evaluators build scores and labels in lockstep.
  AUTOBI_CHECK(scores.size() == labels.size());
  // Rank-based (Mann-Whitney) computation with average ranks for ties.
  size_t n = scores.size();
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] < scores[b]; });
  std::vector<double> rank(n);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    double avg_rank = (double(i) + double(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) rank[order[k]] = avg_rank;
    i = j + 1;
  }
  double n_pos = 0.0, rank_sum_pos = 0.0;
  for (size_t k = 0; k < n; ++k) {
    if (labels[k]) {
      n_pos += 1.0;
      rank_sum_pos += rank[k];
    }
  }
  double n_neg = double(n) - n_pos;
  if (n_pos == 0.0 || n_neg == 0.0) return 0.5;
  return (rank_sum_pos - n_pos * (n_pos + 1.0) / 2.0) / (n_pos * n_neg);
}

double BrierScore(const std::vector<double>& scores,
                  const std::vector<int>& labels) {
  // invariant: evaluators build scores and labels in lockstep.
  AUTOBI_CHECK(scores.size() == labels.size());
  if (scores.empty()) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < scores.size(); ++i) {
    double err = scores[i] - (labels[i] ? 1.0 : 0.0);
    sum += err * err;
  }
  return sum / double(scores.size());
}

double ExpectedCalibrationError(const std::vector<double>& scores,
                                const std::vector<int>& labels,
                                int num_bins) {
  // invariant: evaluators build scores and labels in lockstep.
  AUTOBI_CHECK(scores.size() == labels.size());
  AUTOBI_CHECK(num_bins > 0);  // invariant: bin count is a compile-time-ish knob.
  if (scores.empty()) return 0.0;
  std::vector<double> sum_p(num_bins, 0.0), sum_y(num_bins, 0.0);
  std::vector<size_t> count(num_bins, 0);
  for (size_t i = 0; i < scores.size(); ++i) {
    int b = std::min(num_bins - 1,
                     static_cast<int>(scores[i] * num_bins));
    b = std::max(0, b);
    sum_p[b] += scores[i];
    sum_y[b] += labels[i] ? 1.0 : 0.0;
    ++count[b];
  }
  double ece = 0.0;
  for (int b = 0; b < num_bins; ++b) {
    if (count[b] == 0) continue;
    double conf = sum_p[b] / double(count[b]);
    double acc = sum_y[b] / double(count[b]);
    ece += double(count[b]) / double(scores.size()) * std::fabs(conf - acc);
  }
  return ece;
}

}  // namespace autobi
