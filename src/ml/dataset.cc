#include "ml/dataset.h"

#include <numeric>

#include "common/check.h"

namespace autobi {

void Dataset::Add(const std::vector<double>& features, int label) {
  // invariant: the featurizer emits fixed-width rows.
  AUTOBI_CHECK(features.size() == num_features());
  features_.insert(features_.end(), features.begin(), features.end());
  labels_.push_back(label);
}

std::vector<double> Dataset::Row(size_t row) const {
  size_t nf = num_features();
  return std::vector<double>(features_.begin() + row * nf,
                             features_.begin() + (row + 1) * nf);
}

size_t Dataset::num_positives() const {
  size_t n = 0;
  for (int l : labels_) n += (l != 0);
  return n;
}

void Dataset::Split(double train_fraction, Rng& rng, Dataset* train,
                    Dataset* holdout) const {
  *train = Dataset(feature_names_);
  *holdout = Dataset(feature_names_);
  std::vector<size_t> order(num_rows());
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);
  size_t n_train = static_cast<size_t>(train_fraction * num_rows());
  for (size_t i = 0; i < order.size(); ++i) {
    (i < n_train ? train : holdout)->Add(Row(order[i]), Label(order[i]));
  }
}

}  // namespace autobi
