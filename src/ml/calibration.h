#ifndef AUTOBI_ML_CALIBRATION_H_
#define AUTOBI_ML_CALIBRATION_H_

#include <iosfwd>
#include <vector>

namespace autobi {

// Score calibration (Section 4.2): maps raw classifier scores to true
// probabilities so that P = 0.5 literally means "50% chance the join is
// correct" — the property that makes the k-MCA penalty p = -log(0.5) and the
// EMS threshold τ = 0.5 principled (Figures 8/9).

// Platt scaling: fit sigma(a*s + b) on (score, label) pairs by Newton's
// method on the log-likelihood, with the standard label smoothing of Platt's
// original method to avoid saturation.
class PlattCalibrator {
 public:
  void Fit(const std::vector<double>& scores, const std::vector<int>& labels);
  double Calibrate(double score) const;
  bool fitted() const { return fitted_; }
  double a() const { return a_; }
  double b() const { return b_; }

  void Save(std::ostream& os) const;
  bool Load(std::istream& is);

 private:
  double a_ = 1.0;
  double b_ = 0.0;
  bool fitted_ = false;
};

// Isotonic regression calibration: pool-adjacent-violators (PAVA) fit of a
// monotone step function, evaluated with linear interpolation between block
// centers. Non-parametric alternative to Platt, used in ablation tests.
class IsotonicCalibrator {
 public:
  void Fit(const std::vector<double>& scores, const std::vector<int>& labels);
  double Calibrate(double score) const;
  bool fitted() const { return !xs_.empty(); }

  void Save(std::ostream& os) const;
  bool Load(std::istream& is);

 private:
  std::vector<double> xs_;  // Block centers (ascending).
  std::vector<double> ys_;  // Calibrated values (non-decreasing).
};

}  // namespace autobi

#endif  // AUTOBI_ML_CALIBRATION_H_
