#ifndef AUTOBI_ML_LOGISTIC_H_
#define AUTOBI_ML_LOGISTIC_H_

#include <iosfwd>
#include <vector>

#include "ml/dataset.h"

namespace autobi {

struct LogisticOptions {
  int max_iters = 200;
  double learning_rate = 0.5;
  double l2 = 1e-4;
  double tolerance = 1e-7;
};

// L2-regularized logistic regression trained by batch gradient descent with
// feature standardization. Serves two roles:
//  - the 1-D case implements Platt scaling for probability calibration;
//  - the multi-feature case is an alternative (linear) local classifier used
//    in tests and ablations.
class LogisticRegression {
 public:
  void Fit(const Dataset& data, const LogisticOptions& options = {});

  double PredictProba(const std::vector<double>& features) const;

  bool trained() const { return !weights_.empty(); }
  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }

  void Save(std::ostream& os) const;
  bool Load(std::istream& is);

 private:
  std::vector<double> weights_;
  std::vector<double> mean_;
  std::vector<double> scale_;
  double bias_ = 0.0;
};

}  // namespace autobi

#endif  // AUTOBI_ML_LOGISTIC_H_
