#include "common/strings.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace autobi {

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> Split(std::string_view s, std::string_view delims) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || delims.find(s[i]) != std::string_view::npos) {
      if (i > start) out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  s = Trim(s);
  if (s.empty() || s.size() > 30) return false;
  char buf[32];
  std::memcpy(buf, s.data(), s.size());
  buf[s.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(buf, &end, 10);
  if (errno != 0 || end != buf + s.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

bool ParseDouble(std::string_view s, double* out) {
  s = Trim(s);
  if (s.empty() || s.size() > 60) return false;
  char buf[64];
  std::memcpy(buf, s.data(), s.size());
  buf[s.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(buf, &end);
  if (errno != 0 || end != buf + s.size()) return false;
  *out = v;
  return true;
}

}  // namespace autobi
