#include "common/fs.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/strings.h"
#include "fuzz/faultpoints.h"

namespace autobi {

std::string DirName(const std::string& path) {
  size_t slash = path.rfind('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

namespace {

Status WriteAll(int fd, std::string_view content) {
  size_t off = 0;
  while (off < content.size()) {
    ssize_t w = ::write(fd, content.data() + off, content.size() - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(
          StrFormat("write failed: %s", std::strerror(errno)));
    }
    off += size_t(w);
  }
  return Status::Ok();
}

}  // namespace

Status SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::Internal(StrFormat("cannot open directory %s: %s",
                                      dir.c_str(), std::strerror(errno)));
  }
  // Some filesystems reject fsync on directory fds; the rename is still
  // atomic there, so a sync failure is not worth failing the write over.
  ::fsync(fd);
  ::close(fd);
  return Status::Ok();
}

Status WriteFileAtomic(const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal(StrFormat("cannot create %s: %s", tmp.c_str(),
                                      std::strerror(errno)));
  }
  Status written = WriteAll(fd, content);
  if (written.ok() && ::fsync(fd) != 0) {
    written = Status::Internal(
        StrFormat("fsync %s failed: %s", tmp.c_str(), std::strerror(errno)));
  }
  ::close(fd);
  if (written.ok() && FaultPoints::Global().Fire("io.rename")) {
    written = Status::Internal(
        StrFormat("injected rename fault for %s", path.c_str()));
  }
  if (written.ok() && ::rename(tmp.c_str(), path.c_str()) != 0) {
    written = Status::Internal(StrFormat("rename %s -> %s failed: %s",
                                         tmp.c_str(), path.c_str(),
                                         std::strerror(errno)));
  }
  if (!written.ok()) {
    ::unlink(tmp.c_str());
    return written;
  }
  return SyncDir(DirName(path));
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0 || FaultPoints::Global().Fire("io.open")) {
    if (fd >= 0) ::close(fd);
    return Status::Internal(StrFormat("cannot open %s: %s", path.c_str(),
                                      fd < 0 ? std::strerror(errno)
                                             : "injected fault"));
  }
  std::string out;
  char buf[1 << 16];
  while (true) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      Status status = Status::Internal(
          StrFormat("read %s failed: %s", path.c_str(), std::strerror(errno)));
      ::close(fd);
      return status;
    }
    if (n == 0) break;
    out.append(buf, size_t(n));
  }
  ::close(fd);
  return out;
}

}  // namespace autobi
