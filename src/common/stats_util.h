#ifndef AUTOBI_COMMON_STATS_UTIL_H_
#define AUTOBI_COMMON_STATS_UTIL_H_

#include <vector>

namespace autobi {

// Descriptive-statistics helpers used when reporting experiment results
// (percentile latencies, averages over test cases).

// Arithmetic mean; 0 for an empty input.
double Mean(const std::vector<double>& xs);

// p-th percentile (p in [0,100]) by linear interpolation between order
// statistics; 0 for an empty input.
double Percentile(std::vector<double> xs, double p);

// Harmonic-mean style F-score given precision and recall; 0 when both are 0.
double FScore(double precision, double recall);

}  // namespace autobi

#endif  // AUTOBI_COMMON_STATS_UTIL_H_
