#ifndef AUTOBI_COMMON_STRINGS_H_
#define AUTOBI_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace autobi {

// Small string helpers shared across the library. These deliberately avoid
// locale dependence: all case folding is ASCII-only, which is what schema
// identifiers in BI models use in practice.

// ASCII lower-casing.
std::string ToLower(std::string_view s);

// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

// Splits on any character in `delims`; empty pieces are dropped.
std::vector<std::string> Split(std::string_view s, std::string_view delims);

// Joins pieces with `sep`. (Named JoinStrings to avoid colliding with the
// core Join relationship type.)
std::string JoinStrings(const std::vector<std::string>& pieces, std::string_view sep);

// True if `s` starts with / ends with the given prefix/suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Parses a string as int64/double. Returns false if the full string is not a
// valid number (leading/trailing spaces are tolerated).
bool ParseInt64(std::string_view s, int64_t* out);
bool ParseDouble(std::string_view s, double* out);

}  // namespace autobi

#endif  // AUTOBI_COMMON_STRINGS_H_
