#ifndef AUTOBI_COMMON_RNG_H_
#define AUTOBI_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace autobi {

// Deterministic, seedable pseudo-random number generator (xoshiro256++).
//
// All randomized components of the library (synthetic data generators, random
// forests, property tests) draw from this generator so that every experiment
// is reproducible from a single seed. The implementation is self-contained so
// results do not depend on the standard library's unspecified distributions.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  // Uniform 64-bit value.
  uint64_t Next();

  // Uniform integer in [0, n). Requires n > 0.
  uint64_t NextBelow(uint64_t n);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  // Standard normal variate (Box-Muller).
  double NextGaussian();

  // Bernoulli trial with success probability p.
  bool NextBool(double p = 0.5);

  // Zipf-distributed integer in [0, n) with exponent s. Used by workload
  // generators to produce skewed foreign-key distributions.
  uint64_t NextZipf(uint64_t n, double s);

  // Samples an index proportionally to `weights` (all must be >= 0, with a
  // positive sum).
  size_t NextWeighted(const std::vector<double>& weights);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = NextBelow(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  // Derives an independent child generator; used to give each test case its
  // own stream so cases are insensitive to evaluation order.
  Rng Fork();

 private:
  uint64_t s_[4];
  bool have_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace autobi

#endif  // AUTOBI_COMMON_RNG_H_
