#ifndef AUTOBI_COMMON_CHECK_H_
#define AUTOBI_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Invariant checks that stay on in release builds. Used for programmer errors
// (violated preconditions), not for recoverable input errors.
//
// AUTOBI_CHECK(cond) aborts with file/line if `cond` is false.
#define AUTOBI_CHECK(cond)                                                    \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "AUTOBI_CHECK failed at %s:%d: %s\n", __FILE__,    \
                   __LINE__, #cond);                                          \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

#define AUTOBI_CHECK_MSG(cond, msg)                                           \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "AUTOBI_CHECK failed at %s:%d: %s (%s)\n",         \
                   __FILE__, __LINE__, #cond, (msg));                         \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

#endif  // AUTOBI_COMMON_CHECK_H_
