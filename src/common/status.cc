#include "common/status.h"

namespace autobi {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidInput:
      return "INVALID_INPUT";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";  // invariant: all enumerators handled above.
}

Status Status::WithContext(std::string_view context) const {
  if (ok() || context.empty()) return *this;
  std::string chained;
  chained.reserve(context.size() + 2 + message_.size());
  chained.append(context);
  chained.append(": ");
  chained.append(message_);
  return Status(code_, std::move(chained));
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace autobi
