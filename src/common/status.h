#ifndef AUTOBI_COMMON_STATUS_H_
#define AUTOBI_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

#include "common/check.h"

namespace autobi {

// Typed error propagation for every untrusted-input surface of the service
// layer (ARCHITECTURE.md, "Error handling & graceful degradation"). The
// contract: any bytes in, a typed error or a best-effort degraded model out —
// never a crash or a hang. AUTOBI_CHECK stays reserved for true programmer
// invariants; anything reachable from file/CSV/DDL bytes returns a Status.

enum class StatusCode {
  kOk = 0,
  // Malformed or semantically invalid input (unparseable bytes, references
  // out of range, inconsistent manifest...).
  kInvalidInput,
  // A RunContext deadline expired before the operation finished.
  kDeadlineExceeded,
  // The RunContext was cancelled cooperatively.
  kCancelled,
  // A resource budget was exceeded (byte caps, row/cell/pair budgets).
  kResourceExhausted,
  // Environment failures and caught internal exceptions (I/O errors,
  // injected faults, unexpected std::exception at a service boundary).
  kInternal,
};

// Stable upper-case name ("OK", "INVALID_INPUT", ...).
const char* StatusCodeName(StatusCode code);

// A cheap value type carrying a code plus a human-readable message. Context
// is chained outermost-first: callers wrap callee errors via WithContext, so
// a deep failure reads "load case: read table.csv: unterminated quoted
// field".
class Status {
 public:
  Status() = default;  // OK.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidInput(std::string message) {
    return Status(StatusCode::kInvalidInput, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }
  static Status Cancelled(std::string message) {
    return Status(StatusCode::kCancelled, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Returns a copy with `context` prepended ("context: message"). No-op on
  // OK statuses, so it is safe inside AUTOBI_RETURN_IF_ERROR chains.
  Status WithContext(std::string_view context) const;

  // "CODE_NAME: message" (or "OK").
  std::string ToString() const;

  bool operator==(const Status& o) const {
    return code_ == o.code_ && message_ == o.message_;
  }
  bool operator!=(const Status& o) const { return !(*this == o); }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// A Status or a value of type T. Accessing value() on an error status is a
// programmer invariant violation (checked), mirroring absl::StatusOr.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    AUTOBI_CHECK_MSG(!status_.ok(),
                     "StatusOr constructed from an OK status without a value");
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AUTOBI_CHECK_MSG(ok(), status_.ToString().c_str());
    return value_;
  }
  T& value() & {
    AUTOBI_CHECK_MSG(ok(), status_.ToString().c_str());
    return value_;
  }
  T&& value() && {
    AUTOBI_CHECK_MSG(ok(), status_.ToString().c_str());
    return std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // The value, or `fallback` on error (degraded-path convenience).
  T value_or(T fallback) const& { return ok() ? value_ : std::move(fallback); }

 private:
  Status status_;  // OK iff value_ is meaningful.
  T value_{};
};

// Propagates a non-OK Status to the caller.
//
//   AUTOBI_RETURN_IF_ERROR(DoThing().WithContext("doing thing"));
#define AUTOBI_RETURN_IF_ERROR(expr)                \
  do {                                              \
    ::autobi::Status autobi_status_tmp_ = (expr);   \
    if (!autobi_status_tmp_.ok()) {                 \
      return autobi_status_tmp_;                    \
    }                                               \
  } while (0)

// Unwraps a StatusOr into `lhs`, propagating errors to the caller.
//
//   AUTOBI_ASSIGN_OR_RETURN(Table t, ReadCsv(text, "name"));
#define AUTOBI_ASSIGN_OR_RETURN(lhs, expr) \
  AUTOBI_ASSIGN_OR_RETURN_IMPL_(           \
      AUTOBI_STATUS_CONCAT_(autobi_statusor_, __LINE__), lhs, expr)

#define AUTOBI_STATUS_CONCAT_INNER_(a, b) a##b
#define AUTOBI_STATUS_CONCAT_(a, b) AUTOBI_STATUS_CONCAT_INNER_(a, b)
#define AUTOBI_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) {                                    \
    return tmp.status();                              \
  }                                                   \
  lhs = std::move(tmp).value()

}  // namespace autobi

#endif  // AUTOBI_COMMON_STATUS_H_
