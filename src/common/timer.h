#ifndef AUTOBI_COMMON_TIMER_H_
#define AUTOBI_COMMON_TIMER_H_

#include <chrono>

namespace autobi {

// Simple wall-clock stopwatch used by the latency experiments (Figures 5/6,
// Table 9).
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  // Elapsed time since construction / last Reset, in seconds.
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace autobi

#endif  // AUTOBI_COMMON_TIMER_H_
