#include "common/parallel.h"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <limits>

namespace autobi {

namespace {

// Set once, permanently, by every pool worker thread; ParallelFor consults
// it to fall back to the serial loop on nested calls (a worker blocking on
// further pool tasks could deadlock a saturated pool).
thread_local bool t_in_worker = false;

}  // namespace

int HardwareThreads() {
  int h = static_cast<int>(std::thread::hardware_concurrency());
  return h > 0 ? h : 1;
}

int ParseThreadCount(const char* value) {
  if (value == nullptr || *value == '\0') return 0;
  char* end = nullptr;
  long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0') return 0;
  if (parsed <= 0) return 0;
  return static_cast<int>(std::min<long>(parsed, kMaxThreads));
}

int ResolveThreads(int requested) {
  if (requested > 0) return std::min(requested, kMaxThreads);
  int env = ParseThreadCount(std::getenv("AUTOBI_THREADS"));
  if (env > 0) return env;
  return HardwareThreads();
}

ThreadPool::ThreadPool(int num_threads) {
  EnsureWorkers(num_threads);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

int ThreadPool::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(workers_.size());
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!workers_.empty()) {
      queue_.push_back(std::move(task));
      cv_.notify_one();
      return;
    }
  }
  task();  // Zero-worker pool: degrade to inline execution.
}

void ThreadPool::EnsureWorkers(int num_threads) {
  int target = std::clamp(num_threads, 0, kMaxThreads);
  std::lock_guard<std::mutex> lock(mu_);
  while (static_cast<int>(workers_.size()) < target) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

bool ThreadPool::InWorker() { return t_in_worker; }

ThreadPool& ThreadPool::Global() {
  // Starts empty; ParallelFor grows it to the largest concurrency actually
  // requested, so processes that never parallelize never spawn threads.
  static ThreadPool pool(0);
  return pool;
}

void ThreadPool::WorkerLoop() {
  t_in_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain the queue even when stopping: queued tasks hold references
      // into live ParallelFor frames and must signal completion.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                 int threads) {
  if (n == 0) return;
  int effective = ResolveThreads(threads);
  if (effective <= 1 || n < 2 || ThreadPool::InWorker()) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  size_t chunks = std::min(static_cast<size_t>(effective), n);
  ThreadPool& pool = ThreadPool::Global();
  pool.EnsureWorkers(static_cast<int>(chunks) - 1);

  struct ChunkState {
    std::exception_ptr error;
    size_t error_index = std::numeric_limits<size_t>::max();
  };
  std::vector<ChunkState> states(chunks);
  std::mutex mu;
  std::condition_variable cv;
  size_t pending = chunks - 1;

  // Deterministic block partition: chunk c owns [n*c/chunks, n*(c+1)/chunks).
  // A chunk stops at its first throwing iteration, so the minimum recorded
  // error_index across chunks is the smallest failing index overall.
  auto run_chunk = [&](size_t c) {
    size_t begin = n * c / chunks;
    size_t end = n * (c + 1) / chunks;
    size_t i = begin;
    try {
      for (; i < end; ++i) fn(i);
    } catch (...) {
      states[c].error = std::current_exception();
      states[c].error_index = i;
    }
  };

  for (size_t c = 1; c < chunks; ++c) {
    pool.Submit([&, c] {
      run_chunk(c);
      // Notify while holding the lock: mu/cv live on the caller's stack, and
      // the caller may destroy them the instant it can observe pending == 0.
      // Signalling under the lock guarantees this worker is done touching
      // them before the caller's wait() can re-acquire mu and return.
      std::lock_guard<std::mutex> lock(mu);
      --pending;
      cv.notify_one();
    });
  }
  // The caller runs chunk 0 itself: progress never depends on pool capacity,
  // and a serial caller's cache-warm first block stays on its own core.
  run_chunk(0);
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return pending == 0; });
  }

  std::exception_ptr first_error;
  size_t first_index = std::numeric_limits<size_t>::max();
  for (const ChunkState& s : states) {
    if (s.error && s.error_index < first_index) {
      first_index = s.error_index;
      first_error = s.error;
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace autobi
