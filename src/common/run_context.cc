#include "common/run_context.h"

#include <limits>

#include "common/strings.h"

namespace autobi {

void RunContext::set_deadline(std::chrono::steady_clock::time_point deadline) {
  deadline_ = deadline;
  has_deadline_.store(true, std::memory_order_release);
}

void RunContext::set_deadline_after(double seconds) {
  set_deadline(std::chrono::steady_clock::now() +
               std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double>(seconds)));
}

void RunContext::clear_deadline() {
  has_deadline_.store(false, std::memory_order_relaxed);
}

double RunContext::SecondsRemaining() const {
  if (!has_deadline()) return std::numeric_limits<double>::infinity();
  return std::chrono::duration<double>(deadline_ -
                                       std::chrono::steady_clock::now())
      .count();
}

bool RunContext::StopRequested() const {
  if (cancelled_.load(std::memory_order_relaxed)) return true;
  if (!has_deadline_.load(std::memory_order_acquire)) return false;
  return std::chrono::steady_clock::now() >= deadline_;
}

Status RunContext::CheckStop(const char* stage) const {
  if (cancelled_.load(std::memory_order_relaxed)) {
    return Status::Cancelled(StrFormat("run cancelled before %s", stage));
  }
  if (has_deadline_.load(std::memory_order_acquire) &&
      std::chrono::steady_clock::now() >= deadline_) {
    return Status::DeadlineExceeded(
        StrFormat("deadline exceeded before %s", stage));
  }
  return Status::Ok();
}

}  // namespace autobi
