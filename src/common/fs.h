#ifndef AUTOBI_COMMON_FS_H_
#define AUTOBI_COMMON_FS_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace autobi {

// Durable file primitives for state that must survive a crash: the serving
// catalog's snapshot files (serve/journal.h) and exported model artifacts
// (core/model_export.h). Everything here is POSIX-only, like the transports.

// Writes `content` to `path` atomically and durably: the bytes go to a
// temporary sibling file, are fsync'd, and the temp file is renamed over
// `path` — rename within one filesystem is atomic, so a concurrent reader
// (or a reboot) sees either the complete old file or the complete new one,
// never a torn write. The containing directory is then fsync'd so the
// rename itself is on stable storage. Fault point `io.rename` fails the
// rename step (the temp file is cleaned up and `path` is left untouched).
Status WriteFileAtomic(const std::string& path, std::string_view content);

// Reads the whole file into a string. kInternal when the file cannot be
// opened or read (including the `io.open` fault point).
StatusOr<std::string> ReadFileToString(const std::string& path);

// fsyncs the directory itself so recently created/renamed entries in it
// survive a crash. Best-effort: kInternal only when the directory cannot be
// opened at all.
Status SyncDir(const std::string& dir);

// The directory part of `path` ("." when there is none).
std::string DirName(const std::string& path);

}  // namespace autobi

#endif  // AUTOBI_COMMON_FS_H_
