#ifndef AUTOBI_COMMON_PARALLEL_H_
#define AUTOBI_COMMON_PARALLEL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace autobi {

// Deterministic data-parallel substrate (ARCHITECTURE.md "Concurrency
// model"). All parallel stages of the pipeline go through ParallelFor /
// ParallelMap, which guarantee:
//
//   1. Results are bit-identical regardless of thread count: iterations are
//      partitioned into contiguous index blocks, every iteration writes only
//      to its own output slot, and any randomness is drawn from streams
//      forked deterministically *before* the parallel region (see
//      RandomForest::Fit for the canonical pattern).
//   2. A thread count of <= 1 (or a nested call from inside a worker) runs
//      the plain serial loop — the parallel path is strictly an execution
//      strategy, never a semantic switch.
//   3. Exceptions propagate: the exception thrown by the lowest-indexed
//      failing iteration is rethrown on the calling thread after all chunks
//      have stopped, and the pool remains usable afterwards.

// Hard upper bound on worker threads (sanity cap for AUTOBI_THREADS typos).
inline constexpr int kMaxThreads = 256;

// Number of hardware threads, always >= 1.
int HardwareThreads();

// Parses an AUTOBI_THREADS-style string. Returns the parsed count clamped to
// [1, kMaxThreads], or 0 ("auto") when `value` is null, empty, non-numeric,
// or <= 0.
int ParseThreadCount(const char* value);

// Resolves a requested thread count to an effective one:
//   requested >  0  ->  min(requested, kMaxThreads)
//   requested <= 0  ->  AUTOBI_THREADS if set and valid, else
//                       HardwareThreads().
// Every Parallel* entry point resolves its `threads` argument this way, so
// option structs can default to 0 and inherit the process-wide setting.
int ResolveThreads(int requested);

// A fixed-size pool of persistent worker threads. Work is submitted as
// closures; the pool never drops or reorders completion signalling, and it
// drains cleanly on destruction. Users normally do not touch this class —
// ParallelFor/ParallelMap schedule onto the shared Global() pool — but it is
// public so tests (and future subsystems, e.g. a request server) can own a
// private pool.
class ThreadPool {
 public:
  // Spawns `num_threads` workers (clamped to [0, kMaxThreads]). A pool of
  // size 0 is legal; Submit then runs tasks inline.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const;

  // Enqueues a task. Tasks must not block on other tasks (ParallelFor's
  // nested-call serial fallback exists precisely so they never do).
  void Submit(std::function<void()> task);

  // Grows the pool to at least `num_threads` workers (clamped to
  // kMaxThreads). Used by the shared pool when a caller requests more
  // parallelism than previously seen.
  void EnsureWorkers(int num_threads);

  // True when called from inside one of *any* pool's worker threads.
  static bool InWorker();

  // The process-wide shared pool, created on first use.
  static ThreadPool& Global();

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

// Runs fn(i) for i in [0, n). With an effective thread count of 1, with
// n < 2, or when called from inside a pool worker (nested parallelism), this
// is a plain serial loop. Otherwise the index range is split into
// min(threads, n) contiguous blocks; the calling thread executes block 0
// itself while pool workers take the rest, so forward progress never depends
// on pool capacity. `threads` is resolved via ResolveThreads.
void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                 int threads = 0);

// Maps fn over [0, n) into a vector with results in index order. The result
// type must be default-constructible and movable.
template <typename Fn>
auto ParallelMap(size_t n, Fn&& fn, int threads = 0)
    -> std::vector<decltype(fn(size_t{0}))> {
  std::vector<decltype(fn(size_t{0}))> out(n);
  ParallelFor(
      n, [&](size_t i) { out[i] = fn(i); }, threads);
  return out;
}

}  // namespace autobi

#endif  // AUTOBI_COMMON_PARALLEL_H_
