#ifndef AUTOBI_COMMON_RUN_CONTEXT_H_
#define AUTOBI_COMMON_RUN_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <string>
#include <utility>

#include "common/status.h"

namespace autobi {

// Per-stage degradation marker. When a RunContext deadline, cancellation or
// budget trips inside a stage, the stage still produces a feasible partial
// result and records here what was given up and why. A healthy stage leaves
// this untouched.
struct StageHealth {
  bool degraded = false;
  std::string trigger;  // Human-readable reason; empty when healthy.

  // Records the first trigger (later ones on the same stage are subsumed).
  void MarkDegraded(std::string reason) {
    if (degraded) return;
    degraded = true;
    trigger = std::move(reason);
  }
};

// Cooperative run control for the prediction pipeline: a wall-clock
// deadline, an externally settable cancel flag, and deterministic resource
// budgets, threaded through profiling/UCC -> IND -> local inference ->
// global solve (ARCHITECTURE.md, "Error handling & graceful degradation").
//
// Contract:
//   - A null RunContext* (or a default-constructed RunContext) is a no-op:
//     the pipeline behaves bit-identically to a context-free run at any
//     thread count. StopRequested() is then two relaxed atomic loads and no
//     clock read.
//   - Deadline/cancel state is polled at stage and item boundaries only
//     (per table, per table pair, per candidate). When nothing trips, the
//     polls have no observable effect; when something trips, each stage
//     degrades to a well-defined partial result (see AutoBiDegradation)
//     instead of erroring or hanging.
//   - Budgets are deterministic (counted, not timed): the same inputs trip
//     the same budget at the same point regardless of thread count.
//   - Thread safety: Cancel() and all const queries may race freely with a
//     running pipeline. Deadline and budgets must be set before the run
//     starts.
class RunContext {
 public:
  // Deterministic resource budgets. 0 always means "unlimited".
  struct Budgets {
    // Tables with more rows / cells (rows * columns) than this are excluded
    // from value probing: they keep a metadata-only profile, discover no
    // UCCs/INDs, and fall back to name-based candidates (same path as
    // empty DDL tables).
    size_t max_rows_per_table = 0;
    size_t max_cells_per_table = 0;
    // Hard cap on the deduplicated candidate-pair list fed to local
    // inference; the list is truncated in its deterministic sorted order.
    size_t max_candidate_pairs = 0;
    // Cap on 1-MCA (Edmonds) invocations inside the k-MCA-CC search. When
    // set, the solver runs with min(this, KmcaCcOptions::max_one_mca_calls)
    // and returns its greedy feasible fallback on exhaustion.
    long max_one_mca_calls = 0;
  };

  RunContext() = default;
  RunContext(const RunContext&) = delete;
  RunContext& operator=(const RunContext&) = delete;

  // --- Deadline (steady clock). Set before the run starts.
  void set_deadline(std::chrono::steady_clock::time_point deadline);
  void set_deadline_after(double seconds);
  void clear_deadline();
  bool has_deadline() const {
    return has_deadline_.load(std::memory_order_relaxed);
  }
  // Seconds until the deadline (negative if past); +infinity without one.
  double SecondsRemaining() const;

  // --- Cooperative cancellation. Safe from any thread at any time.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  // True when the run should stop (cancelled, or past the deadline). This
  // is the cheap poll used at item boundaries.
  bool StopRequested() const;

  // Status form for stage boundaries: OK, or kCancelled /
  // kDeadlineExceeded with `stage` named in the message.
  Status CheckStop(const char* stage) const;

  Budgets budgets;

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<bool> has_deadline_{false};
  std::chrono::steady_clock::time_point deadline_{};
};

}  // namespace autobi

#endif  // AUTOBI_COMMON_RUN_CONTEXT_H_
