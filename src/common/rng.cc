#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace autobi {

namespace {

// SplitMix64, used to expand the user seed into the xoshiro state.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
  // Avoid the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // Full 64-bit range.
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (have_gaussian_) {
    have_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  double mag = std::sqrt(-2.0 * std::log(u1));
  spare_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  have_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

uint64_t Rng::NextZipf(uint64_t n, double s) {
  assert(n > 0);
  if (n == 1) return 0;
  // Inverse-CDF sampling over the (truncated) harmonic weights. For the small
  // n used by the generators this is exact and fast enough.
  double h = 0.0;
  for (uint64_t i = 1; i <= n; ++i) h += 1.0 / std::pow(double(i), s);
  double u = NextDouble() * h;
  double acc = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    acc += 1.0 / std::pow(double(i), s);
    if (acc >= u) return i - 1;
  }
  return n - 1;
}

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  assert(total > 0.0);
  double u = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (acc >= u) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xA5A5A5A55A5A5A5AULL); }

}  // namespace autobi
