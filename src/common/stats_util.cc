#include "common/stats_util.h"

#include <algorithm>
#include <cmath>

namespace autobi {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  if (p <= 0.0) return xs.front();
  if (p >= 100.0) return xs.back();
  double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(rank));
  size_t hi = static_cast<size_t>(std::ceil(rank));
  double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double FScore(double precision, double recall) {
  if (precision + recall <= 0.0) return 0.0;
  return 2.0 * precision * recall / (precision + recall);
}

}  // namespace autobi
