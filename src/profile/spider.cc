#include "profile/spider.h"

#include <algorithm>
#include <queue>
#include <string>

namespace autobi {

namespace {

// One column's sorted distinct-value stream.
struct Stream {
  int table = -1;
  int column = -1;
  std::vector<std::string> values;  // Sorted ascending, distinct.
  size_t pos = 0;
};

// Fixed-width bitset over column indices.
class ColumnSet {
 public:
  explicit ColumnSet(size_t n, bool ones)
      : words_((n + 63) / 64, ones ? ~uint64_t{0} : 0), size_(n) {
    if (ones && n % 64 != 0) {
      words_.back() = (uint64_t{1} << (n % 64)) - 1;
    }
  }
  void Set(size_t i) { words_[i / 64] |= uint64_t{1} << (i % 64); }
  bool Test(size_t i) const {
    return (words_[i / 64] >> (i % 64)) & 1;
  }
  void IntersectWith(const ColumnSet& o) {
    for (size_t w = 0; w < words_.size(); ++w) words_[w] &= o.words_[w];
  }
  size_t size() const { return size_; }

 private:
  std::vector<uint64_t> words_;
  size_t size_;
};

}  // namespace

std::vector<SpiderInd> DiscoverExactIndsSpider(
    const std::vector<Table>& tables) {
  // Materialize sorted distinct streams for every column.
  std::vector<Stream> streams;
  for (size_t t = 0; t < tables.size(); ++t) {
    for (size_t c = 0; c < tables[t].num_columns(); ++c) {
      Stream s;
      s.table = int(t);
      s.column = int(c);
      s.values = tables[t].column(c).Keys();
      std::sort(s.values.begin(), s.values.end());
      s.values.erase(std::unique(s.values.begin(), s.values.end()),
                     s.values.end());
      if (!s.values.empty()) streams.push_back(std::move(s));
    }
  }
  size_t n = streams.size();
  if (n == 0) return {};

  // refs[i]: columns that (so far) contain every value of stream i.
  std::vector<ColumnSet> refs(n, ColumnSet(n, true));

  // Min-heap over (current value, stream index).
  auto cmp = [&](size_t a, size_t b) {
    return streams[a].values[streams[a].pos] >
           streams[b].values[streams[b].pos];
  };
  std::priority_queue<size_t, std::vector<size_t>, decltype(cmp)> heap(cmp);
  for (size_t i = 0; i < n; ++i) heap.push(i);

  std::vector<size_t> group;
  while (!heap.empty()) {
    group.clear();
    const std::string value =
        streams[heap.top()].values[streams[heap.top()].pos];
    while (!heap.empty() &&
           streams[heap.top()].values[streams[heap.top()].pos] == value) {
      group.push_back(heap.top());
      heap.pop();
    }
    // Every stream holding `value`: its referenced-candidates shrink to the
    // group (anything outside the group lacks this value).
    ColumnSet group_set(n, false);
    for (size_t i : group) group_set.Set(i);
    for (size_t i : group) {
      refs[i].IntersectWith(group_set);
      if (++streams[i].pos < streams[i].values.size()) heap.push(i);
    }
  }

  std::vector<SpiderInd> result;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i == j || !refs[i].Test(j)) continue;
      if (streams[i].table == streams[j].table) continue;
      SpiderInd ind;
      ind.dependent = ColumnRef{streams[i].table, {streams[i].column}};
      ind.referenced = ColumnRef{streams[j].table, {streams[j].column}};
      result.push_back(ind);
    }
  }
  return result;
}

}  // namespace autobi
