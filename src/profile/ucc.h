#ifndef AUTOBI_PROFILE_UCC_H_
#define AUTOBI_PROFILE_UCC_H_

#include <vector>

#include "profile/column_profile.h"
#include "table/key_view.h"
#include "table/table.h"

namespace autobi {

// Unique column combination (candidate key) discovery. UCC generation is the
// first stage of the join-discovery pipeline (Figure 5(b)): join targets
// ("1"-sides) must be unique, so only columns participating in a UCC can be
// PK endpoints.

struct UccOptions {
  // Maximum combination size explored (composite keys).
  size_t max_arity = 3;
  // Apriori-style lattice search is cut off after this many candidate checks
  // to bound worst-case cost on wide tables.
  size_t max_candidates = 2000;
  // A column with distinct ratio below this cannot participate in any UCC
  // (pruning heuristic; 0 disables).
  double min_distinct_ratio = 0.05;
  // Run candidate checks through the legacy string-set kernel
  // (IsUniqueCombinationLegacy) instead of the hash-first one. Oracle knob
  // for the kernel-equivalence property tests; production leaves it off.
  bool legacy_kernel = false;
};

// One discovered minimal unique column combination.
struct Ucc {
  std::vector<int> columns;  // Sorted column indices.
};

// Returns all *minimal* UCCs of `table` up to the option's arity, using a
// breadth-first lattice search with superset pruning (in the spirit of the
// IND/UCC discovery literature the paper invokes as a standard step).
// If `view` is non-null it must be a TableKeyView of `table` and is reused
// for the candidate checks; otherwise per-column views are built lazily the
// first time a column appears in an arity >= 2 candidate.
std::vector<Ucc> DiscoverUccs(const Table& table, const TableProfile& profile,
                              const UccOptions& options = {},
                              const TableKeyView* view = nullptr);

// True if the given column set has no duplicate (non-null-complete) tuples.
// Rows with a null in any of the columns are skipped, matching the SQL
// semantics of candidate keys with nullable columns.
//
// Hash-first kernel: streams the composite tuple hashes (the TupleHash
// escape convention of profile/sketch.h), radix-sorts (hash, row) pairs, and
// scans equal-hash runs — a run of length >= 2 is a duplicate unless the
// pooled key bytes prove it a 64-bit collision (verify-on-collision keeps
// the result exact). No per-row string tuple keys, no string set.
bool IsUniqueCombination(const Table& table, const std::vector<int>& columns);
bool IsUniqueCombination(const TableKeyView& view,
                         const std::vector<int>& columns);

// Legacy reference kernel: escaped string tuple keys probed through an
// unordered_set. Retained as the oracle for the kernel-equivalence property
// tests (the PR 2/4 pattern); production call sites use the hash-first form.
bool IsUniqueCombinationLegacy(const Table& table,
                               const std::vector<int>& columns);

}  // namespace autobi

#endif  // AUTOBI_PROFILE_UCC_H_
