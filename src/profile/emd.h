#ifndef AUTOBI_PROFILE_EMD_H_
#define AUTOBI_PROFILE_EMD_H_

#include <vector>

#include "profile/column_profile.h"

namespace autobi {

// Earth Mover's Distance between two 1-D empirical distributions, the
// "randomness" metric MC-FK [58] uses to decide whether an FK column's value
// distribution looks like a random sample of the PK column.
//
// For 1-D distributions EMD equals the integral of |CDF_a - CDF_b|. Both
// inputs must be sorted ascending. The result is normalized by the combined
// value range so it lies in [0, 1] (0 == identical distributions).
double NormalizedEmd(const std::vector<double>& sorted_a,
                     const std::vector<double>& sorted_b);

// EMD feature between two column profiles:
//  - numeric columns use their sorted numeric samples;
//  - string columns are mapped to numeric space via a stable hash so the
//    metric still reflects distributional similarity of the key sets.
// Returns 1.0 (maximally dissimilar) when either side has no values.
double EmdScore(const ColumnProfile& a, const ColumnProfile& b);

}  // namespace autobi

#endif  // AUTOBI_PROFILE_EMD_H_
