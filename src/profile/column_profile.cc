#include "profile/column_profile.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"
#include "profile/sketch.h"

namespace autobi {

ColumnProfile ProfileColumn(const Column& col, size_t max_sample) {
  ColumnProfile p;
  p.type = col.type();
  p.row_count = col.size();
  p.non_null_count = col.num_non_null();
  p.is_numeric =
      col.type() == ValueType::kInt || col.type() == ValueType::kDouble;

  std::string key;
  double len_sum = 0.0;
  bool first_numeric = true;
  std::vector<double> numeric;
  numeric.reserve(std::min(p.non_null_count, max_sample));
  // Stride so the numeric sample covers the whole column.
  size_t stride = 1;
  if (p.is_numeric && p.non_null_count > max_sample) {
    stride = (p.non_null_count + max_sample - 1) / max_sample;
  }
  size_t non_null_seen = 0;
  for (size_t i = 0; i < col.size(); ++i) {
    if (col.IsNull(i)) continue;
    if (col.KeyAt(i, &key)) {
      len_sum += static_cast<double>(key.size());
      ++p.distinct[key];
    }
    if (p.is_numeric) {
      double v = col.AsDouble(i);
      if (first_numeric) {
        p.min_value = p.max_value = v;
        first_numeric = false;
      } else {
        p.min_value = std::min(p.min_value, v);
        p.max_value = std::max(p.max_value, v);
      }
      if (non_null_seen % stride == 0 && numeric.size() < max_sample) {
        numeric.push_back(v);
      }
    }
    ++non_null_seen;
  }
  if (p.non_null_count > 0) {
    p.distinct_ratio = static_cast<double>(p.distinct.size()) /
                       static_cast<double>(p.non_null_count);
    p.avg_value_length = len_sum / static_cast<double>(p.non_null_count);
  }
  std::sort(numeric.begin(), numeric.end());
  p.sorted_numeric_sample = std::move(numeric);
  SortedHashCounts shc = BuildSortedHashCounts(p.distinct);
  p.distinct_hashes = std::move(shc.hashes);
  p.distinct_counts = std::move(shc.counts);
  return p;
}

TableProfile ProfileTable(const Table& table, size_t max_sample) {
  TableProfile tp;
  tp.row_count = table.num_rows();
  tp.columns.reserve(table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    tp.columns.push_back(ProfileColumn(table.column(c), max_sample));
  }
  return tp;
}

TableProfile MetadataOnlyProfile(const Table& table) {
  TableProfile tp;
  tp.row_count = 0;
  tp.columns.resize(table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    tp.columns[c].type = table.column(c).type();
    tp.columns[c].is_numeric = tp.columns[c].type == ValueType::kInt ||
                               tp.columns[c].type == ValueType::kDouble;
  }
  return tp;
}

std::vector<TableProfile> ProfileTables(const std::vector<Table>& tables,
                                        size_t max_sample, int threads) {
  std::vector<TableProfile> out(tables.size());
  ParallelFor(
      tables.size(),
      [&](size_t i) { out[i] = ProfileTable(tables[i], max_sample); },
      threads);
  return out;
}

double Containment(const ColumnProfile& a, const ColumnProfile& b) {
  if (a.non_null_count == 0) return 0.0;
  const std::vector<uint64_t>& ah = a.distinct_hashes;
  const std::vector<uint64_t>& bh = b.distinct_hashes;
  int64_t hits = 0;
  if (ah.size() * 16 < bh.size()) {
    // Heavy size skew (typical FK probing a much larger key column): binary
    // search each dependent hash instead of sweeping the big side.
    for (size_t i = 0; i < ah.size(); ++i) {
      if (std::binary_search(bh.begin(), bh.end(), ah[i])) {
        hits += a.distinct_counts[i];
      }
    }
  } else {
    size_t i = 0;
    size_t j = 0;
    while (i < ah.size() && j < bh.size()) {
      if (ah[i] < bh[j]) {
        ++i;
      } else if (bh[j] < ah[i]) {
        ++j;
      } else {
        hits += a.distinct_counts[i];
        ++i;
        ++j;
      }
    }
  }
  return static_cast<double>(hits) / static_cast<double>(a.non_null_count);
}

double ContainmentViaStringMap(const ColumnProfile& a,
                               const ColumnProfile& b) {
  if (a.non_null_count == 0) return 0.0;
  int64_t hits = 0;
  for (const auto& [key, count] : a.distinct) {
    if (b.distinct.count(key)) hits += count;
  }
  return static_cast<double>(hits) / static_cast<double>(a.non_null_count);
}

}  // namespace autobi
