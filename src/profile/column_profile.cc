#include "profile/column_profile.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/check.h"
#include "common/parallel.h"
#include "profile/sketch.h"

namespace autobi {

namespace {

// Numeric min/max plus the strided distribution sample. Byte-identical to
// the historical ProfileColumn loop: stride covers the whole column, the
// sample is capped at max_sample, nulls do not advance the stride phase.
void NumericStats(const Column& col, ColumnProfile* p, size_t max_sample) {
  if (!p->is_numeric) return;
  std::vector<double> numeric;
  numeric.reserve(std::min(p->non_null_count, max_sample));
  size_t stride = 1;
  if (p->non_null_count > max_sample) {
    stride = (p->non_null_count + max_sample - 1) / max_sample;
  }
  bool first = true;
  size_t non_null_seen = 0;
  for (size_t i = 0; i < col.size(); ++i) {
    if (col.IsNull(i)) continue;
    double v = col.AsDouble(i);
    if (first) {
      p->min_value = p->max_value = v;
      first = false;
    } else {
      p->min_value = std::min(p->min_value, v);
      p->max_value = std::max(p->max_value, v);
    }
    if (non_null_seen % stride == 0 && numeric.size() < max_sample) {
      numeric.push_back(v);
    }
    ++non_null_seen;
  }
  std::sort(numeric.begin(), numeric.end());
  p->sorted_numeric_sample = std::move(numeric);
}

// Single-pass distinct aggregation of `view` into the profile's distinct
// vectors (hashes/counts/pool/offsets), collision bookkeeping, num_distinct
// and key_bytes. Shared by full-column profiling and the append-only delta
// path (MergeAppendedColumnProfile), which runs it over a suffix view.
void AggregateDistinct(const ColumnKeyView& view, ColumnProfile* out) {
  ColumnProfile& p = *out;
  const size_t non_null = view.num_non_null();
  // Single-pass distinct aggregation over an open-addressing table keyed by
  // the cell's stable hash: one slot per distinct hash, carrying the run
  // count and the first (lowest) row. Rows are visited in order, so the
  // first insert into a slot is the first occurrence. Fibonacci finalizer on
  // the slot index, linear probing. The scratch buffers are thread_local so
  // small-table profiling (the corpus workload: hundreds of rows, dozens of
  // columns per table) does not pay a malloc per column; every byte read is
  // written first within this call, so results are unaffected.
  struct Slot {
    uint64_t hash;
    uint32_t first_row;
    int32_t count;  // 0 marks an empty slot.
  };
  // Sized against the all-distinct worst case at ~0.8 max load; the usual
  // load is distinct/cap, far lower, and prefetching hides the probes.
  size_t cap = 16;
  while (cap * 4 < non_null * 5) cap <<= 1;
  const int idx_shift =
      64 - static_cast<int>(std::countr_zero(cap));  // cap is a power of 2.
  static thread_local std::vector<Slot> slots;
  slots.assign(cap, Slot{0, 0, 0});
  // Distinct keys beyond a slot's representative (only populated by a true
  // 64-bit collision between different keys — kept so num_distinct stays
  // exact, exactly like the legacy string-map kernel).
  std::vector<std::pair<size_t, uint32_t>> extra_reps;  // (slot, rep row)
  size_t runs = 0;
  const size_t n_rows = view.size();
  // The slot table exceeds cache for large columns, so each probe is a
  // dependent memory miss; prefetching the slot a fixed distance ahead
  // overlaps those misses and is the difference between ~60ns and ~15ns per
  // row on the 100k-row profiling workload.
  constexpr size_t kPrefetchAhead = 16;
  for (size_t i = 0; i < n_rows; ++i) {
    if (i + kPrefetchAhead < n_rows && !view.IsNull(i + kPrefetchAhead)) {
      uint64_t hp = view.hash(i + kPrefetchAhead);
      __builtin_prefetch(&slots[(hp * 0x9E3779B97F4A7C15ULL) >> idx_shift], 1);
    }
    if (view.IsNull(i)) continue;
    uint64_t h = view.hash(i);
    size_t idx = (h * 0x9E3779B97F4A7C15ULL) >> idx_shift;
    while (true) {
      Slot& s = slots[idx];
      if (s.count == 0) {
        s = Slot{h, static_cast<uint32_t>(i), 1};
        ++runs;
        break;
      }
      if (s.hash == h) {
        ++s.count;
        // Verify-on-collision: equal hash does not prove an equal key.
        if (view.key(i) != view.key(s.first_row)) {
          bool found = false;
          for (const auto& [slot_idx, row] : extra_reps) {
            if (slot_idx == idx && view.key(row) == view.key(i)) {
              found = true;
              break;
            }
          }
          if (!found) extra_reps.emplace_back(idx, static_cast<uint32_t>(i));
        }
        break;
      }
      idx = (idx + 1) & (cap - 1);
    }
  }

  // Order the distinct entries by hash (each hash owns one slot, so there
  // are no ties) and size the long-lived vectors exactly — profiles sit in
  // the cross-request caches, so no slack capacity.
  static thread_local std::vector<HashRow> hr;
  static thread_local std::vector<HashRow> scratch;
  hr.clear();
  hr.reserve(runs);
  for (size_t idx = 0; idx < cap; ++idx) {
    if (slots[idx].count != 0) {
      hr.push_back(HashRow{slots[idx].hash, static_cast<uint32_t>(idx)});
    }
  }
  StableRadixSortByHash(&hr, &scratch);
  size_t rep_bytes = 0;
  for (const HashRow& e : hr) rep_bytes += view.key(slots[e.row].first_row).size();

  p.distinct_hashes.reserve(runs);
  p.distinct_counts.reserve(runs);
  p.distinct_offsets.reserve(runs + 1);
  p.distinct_pool.reserve(rep_bytes);
  for (const HashRow& e : hr) {
    const Slot& s = slots[e.row];
    p.distinct_hashes.push_back(s.hash);
    p.distinct_counts.push_back(s.count);
    p.distinct_offsets.push_back(p.distinct_pool.size());
    std::string_view rep = view.key(s.first_row);
    p.distinct_pool.append(rep.data(), rep.size());
  }
  p.distinct_offsets.push_back(p.distinct_pool.size());
  p.num_distinct = runs + extra_reps.size();
  p.key_bytes = view.key_bytes();
  if (!extra_reps.empty()) {
    // Canonical collision order: (hash ascending, first-occurrence row
    // ascending). extra_reps was appended in row order, so a stable sort by
    // slot hash preserves the per-hash occurrence order.
    std::stable_sort(extra_reps.begin(), extra_reps.end(),
                     [&](const std::pair<size_t, uint32_t>& a,
                         const std::pair<size_t, uint32_t>& b) {
                       return slots[a.first].hash < slots[b.first].hash;
                     });
    p.collision_hashes.reserve(extra_reps.size());
    p.collision_keys.reserve(extra_reps.size());
    for (const auto& [slot_idx, row] : extra_reps) {
      p.collision_hashes.push_back(slots[slot_idx].hash);
      p.collision_keys.emplace_back(view.key(row));
    }
  }
}

}  // namespace

ColumnProfile ProfileColumn(const Column& col, const ColumnKeyView& view,
                            size_t max_sample) {
  ColumnProfile p;
  p.type = col.type();
  p.row_count = col.size();
  p.non_null_count = col.num_non_null();
  p.is_numeric =
      col.type() == ValueType::kInt || col.type() == ValueType::kDouble;
  AggregateDistinct(view, &p);
  if (p.non_null_count > 0) {
    p.distinct_ratio = static_cast<double>(p.num_distinct) /
                       static_cast<double>(p.non_null_count);
    p.avg_value_length = static_cast<double>(p.key_bytes) /
                         static_cast<double>(p.non_null_count);
  }
  NumericStats(col, &p, max_sample);
  return p;
}

ColumnProfile ProfileColumn(const Column& col, size_t max_sample) {
  return ProfileColumn(col, ColumnKeyView(col), max_sample);
}

ColumnProfile ProfileColumnLegacy(const Column& col, size_t max_sample) {
  ColumnProfile p;
  p.type = col.type();
  p.row_count = col.size();
  p.non_null_count = col.num_non_null();
  p.is_numeric =
      col.type() == ValueType::kInt || col.type() == ValueType::kDouble;

  // The original per-cell hot path: a fresh canonical key string per cell,
  // distinct counting through a node-based string map.
  struct Entry {
    int32_t count = 0;
    uint32_t first_row = 0;
  };
  std::unordered_map<std::string, Entry> distinct;
  std::string key;
  size_t len_sum = 0;
  bool first_numeric = true;
  std::vector<double> numeric;
  numeric.reserve(std::min(p.non_null_count, max_sample));
  size_t stride = 1;
  if (p.is_numeric && p.non_null_count > max_sample) {
    stride = (p.non_null_count + max_sample - 1) / max_sample;
  }
  size_t non_null_seen = 0;
  for (size_t i = 0; i < col.size(); ++i) {
    if (col.IsNull(i)) continue;
    if (col.KeyAt(i, &key)) {
      len_sum += key.size();
      auto [it, inserted] = distinct.try_emplace(key);
      if (inserted) it->second.first_row = static_cast<uint32_t>(i);
      ++it->second.count;
    }
    if (p.is_numeric) {
      double v = col.AsDouble(i);
      if (first_numeric) {
        p.min_value = p.max_value = v;
        first_numeric = false;
      } else {
        p.min_value = std::min(p.min_value, v);
        p.max_value = std::max(p.max_value, v);
      }
      if (non_null_seen % stride == 0 && numeric.size() < max_sample) {
        numeric.push_back(v);
      }
    }
    ++non_null_seen;
  }
  p.num_distinct = distinct.size();
  p.key_bytes = len_sum;
  if (p.non_null_count > 0) {
    p.distinct_ratio = static_cast<double>(distinct.size()) /
                       static_cast<double>(p.non_null_count);
    p.avg_value_length = static_cast<double>(len_sum) /
                         static_cast<double>(p.non_null_count);
  }
  std::sort(numeric.begin(), numeric.end());
  p.sorted_numeric_sample = std::move(numeric);

  // Materialize the sorted distinct vectors the same way the hash-first
  // kernel does: entries ordered by (hash, first_row), equal hashes merged
  // by summing counts with the lowest-row key as the run representative.
  struct Hashed {
    uint64_t hash;
    uint32_t first_row;
    int32_t count;
    const std::string* key;
  };
  std::vector<Hashed> entries;
  entries.reserve(distinct.size());
  for (const auto& [k, e] : distinct) {
    entries.push_back(Hashed{StableHash64(k), e.first_row, e.count, &k});
  }
  std::sort(entries.begin(), entries.end(),
            [](const Hashed& a, const Hashed& b) {
              if (a.hash != b.hash) return a.hash < b.hash;
              return a.first_row < b.first_row;
            });
  for (size_t i = 0; i < entries.size();) {
    size_t j = i + 1;
    int32_t count = entries[i].count;
    while (j < entries.size() && entries[j].hash == entries[i].hash) {
      count += entries[j].count;
      // A merged run's non-representative keys are true 64-bit collisions;
      // the (hash, first_row) sort already puts them in first-occurrence
      // order, matching the hash kernel's bookkeeping.
      p.collision_hashes.push_back(entries[j].hash);
      p.collision_keys.push_back(*entries[j].key);
      ++j;
    }
    p.distinct_hashes.push_back(entries[i].hash);
    p.distinct_counts.push_back(count);
    p.distinct_offsets.push_back(p.distinct_pool.size());
    p.distinct_pool.append(*entries[i].key);
    i = j;
  }
  p.distinct_offsets.push_back(p.distinct_pool.size());
  return p;
}

TableProfile ProfileTable(const Table& table, size_t max_sample) {
  TableProfile tp;
  tp.row_count = table.num_rows();
  tp.columns.reserve(table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    // One transient view per column keeps peak memory at a single column.
    ColumnKeyView view(table.column(c));
    tp.columns.push_back(ProfileColumn(table.column(c), view, max_sample));
  }
  return tp;
}

TableProfile ProfileTable(const Table& table, const TableKeyView& view,
                          size_t max_sample) {
  TableProfile tp;
  tp.row_count = table.num_rows();
  tp.columns.reserve(table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    tp.columns.push_back(
        ProfileColumn(table.column(c), view.column(c), max_sample));
  }
  return tp;
}

ColumnProfile MergeAppendedColumnProfile(const ColumnProfile& old_profile,
                                         const Column& col,
                                         size_t max_sample) {
  // invariant: the caller proved (via the per-column prefix content hash)
  // that col's first old_profile.row_count rows are byte-identical to what
  // old_profile summarized — which also pins the declared type.
  AUTOBI_CHECK(old_profile.row_count <= col.size());
  AUTOBI_CHECK(old_profile.type == col.type());

  // Aggregate the appended suffix only; everything per-key below is
  // O(delta). The one full-column pass left is NumericStats at the end.
  ColumnKeyView delta_view;
  delta_view.BuildSuffix(col, old_profile.row_count);
  ColumnProfile delta;
  AggregateDistinct(delta_view, &delta);

  ColumnProfile m;
  m.type = col.type();
  m.row_count = col.size();
  m.non_null_count = col.num_non_null();
  m.is_numeric =
      col.type() == ValueType::kInt || col.type() == ValueType::kDouble;
  m.key_bytes = old_profile.key_bytes + delta.key_bytes;

  // Sorted merge of the two strictly-increasing distinct-hash vectors. For
  // a shared hash the old representative wins (its row precedes every delta
  // row), counts add, and any delta key not already among the old keys of
  // that hash becomes a collision entry — exactly the bookkeeping a from-
  // scratch scan would produce, in the same (hash, first-occurrence) order.
  const std::vector<uint64_t>& oh = old_profile.distinct_hashes;
  const std::vector<uint64_t>& dh = delta.distinct_hashes;
  m.distinct_hashes.reserve(oh.size() + dh.size());
  m.distinct_counts.reserve(oh.size() + dh.size());
  m.distinct_offsets.reserve(oh.size() + dh.size() + 1);
  m.distinct_pool.reserve(old_profile.distinct_pool.size() +
                          delta.distinct_pool.size());
  size_t i = 0;
  size_t j = 0;
  size_t ci = 0;  // Cursor into old_profile.collision_hashes.
  size_t cj = 0;  // Cursor into delta.collision_hashes.
  auto emit = [&m](uint64_t hash, int32_t count, std::string_view rep) {
    m.distinct_hashes.push_back(hash);
    m.distinct_counts.push_back(count);
    m.distinct_offsets.push_back(m.distinct_pool.size());
    m.distinct_pool.append(rep.data(), rep.size());
  };
  while (i < oh.size() || j < dh.size()) {
    bool from_old = j >= dh.size() || (i < oh.size() && oh[i] < dh[j]);
    bool from_delta = i >= oh.size() || (j < dh.size() && dh[j] < oh[i]);
    if (from_old) {
      uint64_t h = oh[i];
      emit(h, old_profile.distinct_counts[i], old_profile.distinct_key(i));
      while (ci < old_profile.collision_hashes.size() &&
             old_profile.collision_hashes[ci] == h) {
        m.collision_hashes.push_back(h);
        m.collision_keys.push_back(old_profile.collision_keys[ci]);
        ++ci;
      }
      ++i;
    } else if (from_delta) {
      uint64_t h = dh[j];
      emit(h, delta.distinct_counts[j], delta.distinct_key(j));
      while (cj < delta.collision_hashes.size() &&
             delta.collision_hashes[cj] == h) {
        m.collision_hashes.push_back(h);
        m.collision_keys.push_back(std::move(delta.collision_keys[cj]));
        ++cj;
      }
      ++j;
    } else {
      // Shared hash. Old keys of this hash first (representative + old
      // collisions), then every delta key of the hash not already present.
      uint64_t h = oh[i];
      emit(h,
           old_profile.distinct_counts[i] + delta.distinct_counts[j],
           old_profile.distinct_key(i));
      size_t old_coll_begin = ci;
      while (ci < old_profile.collision_hashes.size() &&
             old_profile.collision_hashes[ci] == h) {
        m.collision_hashes.push_back(h);
        m.collision_keys.push_back(old_profile.collision_keys[ci]);
        ++ci;
      }
      auto known = [&](std::string_view key) {
        if (key == old_profile.distinct_key(i)) return true;
        for (size_t k = old_coll_begin; k < ci; ++k) {
          if (key == old_profile.collision_keys[k]) return true;
        }
        return false;
      };
      if (!known(delta.distinct_key(j))) {
        m.collision_hashes.push_back(h);
        m.collision_keys.emplace_back(delta.distinct_key(j));
      }
      while (cj < delta.collision_hashes.size() &&
             delta.collision_hashes[cj] == h) {
        if (!known(delta.collision_keys[cj])) {
          m.collision_hashes.push_back(h);
          m.collision_keys.push_back(std::move(delta.collision_keys[cj]));
        }
        ++cj;
      }
      ++i;
      ++j;
    }
  }
  m.distinct_offsets.push_back(m.distinct_pool.size());
  m.num_distinct = m.distinct_hashes.size() + m.collision_keys.size();
  if (m.non_null_count > 0) {
    m.distinct_ratio = static_cast<double>(m.num_distinct) /
                       static_cast<double>(m.non_null_count);
    m.avg_value_length = static_cast<double>(m.key_bytes) /
                         static_cast<double>(m.non_null_count);
  }
  // Min/max and the strided sample depend on the total non-null count (the
  // stride phase restarts from row 0), so they are recomputed over the full
  // column — a cheap numeric scan, not a key-rendering pass.
  NumericStats(col, &m, max_sample);
  return m;
}

TableProfile MergeAppendedTableProfile(const TableProfile& old_profile,
                                       const Table& table,
                                       size_t max_sample) {
  AUTOBI_CHECK(old_profile.columns.size() == table.num_columns());
  TableProfile tp;
  tp.row_count = table.num_rows();
  tp.columns.reserve(table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    tp.columns.push_back(MergeAppendedColumnProfile(old_profile.columns[c],
                                                    table.column(c),
                                                    max_sample));
  }
  return tp;
}

TableProfile MetadataOnlyProfile(const Table& table) {
  TableProfile tp;
  tp.row_count = 0;
  tp.columns.resize(table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    tp.columns[c].type = table.column(c).type();
    tp.columns[c].is_numeric = tp.columns[c].type == ValueType::kInt ||
                               tp.columns[c].type == ValueType::kDouble;
  }
  return tp;
}

std::vector<TableProfile> ProfileTables(const std::vector<Table>& tables,
                                        size_t max_sample, int threads) {
  std::vector<TableProfile> out(tables.size());
  ParallelFor(
      tables.size(),
      [&](size_t i) { out[i] = ProfileTable(tables[i], max_sample); },
      threads);
  return out;
}

double Containment(const ColumnProfile& a, const ColumnProfile& b) {
  if (a.non_null_count == 0) return 0.0;
  const std::vector<uint64_t>& ah = a.distinct_hashes;
  const std::vector<uint64_t>& bh = b.distinct_hashes;
  int64_t hits = 0;
  if (ah.size() * 16 < bh.size()) {
    // Heavy size skew (typical FK probing a much larger key column): gallop
    // from a moving cursor instead of full-width binary searches. Because
    // both vectors are sorted, each probe starts where the previous one
    // landed — for tiny dependents the exponential steps stay within a few
    // cache lines, so this path beats the string-map kernel even at the
    // skew ratios where full binary search used to lose.
    const uint64_t* b_data = bh.data();
    size_t nb = bh.size();
    size_t from = 0;
    for (size_t i = 0; i < ah.size() && from < nb; ++i) {
      uint64_t t = ah[i];
      size_t lo = from;
      size_t hi = from;
      size_t step = 1;
      while (hi < nb && b_data[hi] < t) {
        lo = hi + 1;
        hi = from + step;
        step <<= 1;
      }
      if (hi > nb) hi = nb;
      size_t pos = std::lower_bound(b_data + lo, b_data + hi, t) - b_data;
      if (pos < nb && b_data[pos] == t) hits += a.distinct_counts[i];
      from = pos;
    }
  } else {
    size_t i = 0;
    size_t j = 0;
    while (i < ah.size() && j < bh.size()) {
      if (ah[i] < bh[j]) {
        ++i;
      } else if (bh[j] < ah[i]) {
        ++j;
      } else {
        hits += a.distinct_counts[i];
        ++i;
        ++j;
      }
    }
  }
  return static_cast<double>(hits) / static_cast<double>(a.non_null_count);
}

DistinctKeyMap BuildDistinctKeyMap(const ColumnProfile& p) {
  DistinctKeyMap m;
  m.reserve(p.distinct_hashes.size() * 2);
  for (size_t i = 0; i < p.distinct_hashes.size(); ++i) {
    m.emplace(std::string(p.distinct_key(i)), p.distinct_counts[i]);
  }
  return m;
}

double ContainmentViaStringMap(const DistinctKeyMap& a, size_t a_non_null,
                               const DistinctKeyMap& b) {
  if (a_non_null == 0) return 0.0;
  int64_t hits = 0;
  for (const auto& [key, count] : a) {
    if (b.count(key)) hits += count;
  }
  return static_cast<double>(hits) / static_cast<double>(a_non_null);
}

double ContainmentViaStringMap(const ColumnProfile& a,
                               const ColumnProfile& b) {
  return ContainmentViaStringMap(BuildDistinctKeyMap(a), a.non_null_count,
                                 BuildDistinctKeyMap(b));
}

}  // namespace autobi
