#ifndef AUTOBI_PROFILE_BLOCKING_H_
#define AUTOBI_PROFILE_BLOCKING_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/run_context.h"
#include "profile/column_profile.h"

namespace autobi {

// Lake-scale candidate blocking for IND discovery (PR 9; ROADMAP item 2).
//
// DiscoverInds historically enumerated all O(n^2) ordered table pairs and,
// within each pair, all column pairs — fine at the paper's ~20 tables,
// quadratic collapse at data-lake scale. Blocking replaces the all-pairs
// loops with a value-level inverted index: every distinct hash of every
// profiled column is indexed once, each prospective dependent (FK-side)
// column probes the index with a small, deterministic probe set, and only
// column pairs that share at least one probed value are admitted to the
// exact containment checks. Table pairs with zero admitted column pairs are
// never scanned at all — on a lake of disconnected islands that is the
// overwhelming majority, which is what makes end-to-end Predict near-linear
// in table count.
//
// The admission predicate is conservative by design. Each dependent column
// a probes with two classes of hashes:
//   - the `bottom_probes` hashes smallest under a SplitMix64 remix (the
//     raw FNV-1a profile hashes cluster sequential keys, so the remix is
//     what makes this a uniform sample of a's distinct values), and
//   - the top `heavy_probes` hashes by occurrence count (containment is
//     row-weighted — see Containment() — so high-weight pairs must share
//     heavy values; ties broken by hash ascending).
// The pair (a in b) is admitted iff either class finds >= a
// min_probe_fraction share of its probes in b's distinct hashes. A pair
// above a containment threshold tau either spreads its shared row weight
// over many distinct values (the uniform sample then hits at rate ~tau) or
// concentrates it in few (those values then dominate the by-count heavy
// set), so clearing BOTH fraction tests while truly contained requires a
// coordinated estimator failure — vanishingly unlikely at the default
// budgets, and verified recall-1.0 on the corpus, the TPC-H DDL schema,
// and the synthetic lakes by the blocking property tests. Columns with
// <= probe_all_below distinct values skip sampling entirely: every value
// is probed with its count, and admission compares the EXACT row-weighted
// containment against min_probe_fraction (no estimator, no failure mode).
// The exhaustive path (enabled = false) is retained as the oracle.
//
// The fraction thresholds assume the downstream containment thresholds
// (IndOptions.min_containment / component_threshold) stay well above
// min_probe_fraction — the shipped defaults give a 0.68 / 0.25 margin.
// Callers lowering containment thresholds toward min_probe_fraction must
// lower it (or disable blocking) in step; a threshold of 0 (admit any
// overlap) cannot be supported by any blocking scheme.
//
// Determinism contract: the predicate is a pure pair-local function of the
// two column profiles. The cold path (BuildBlockingPlan) evaluates it
// through the global index; the incremental engine's direct ScanTablePair
// calls recompute it per pair (ComputePairBlocking). Both produce identical
// admissions by construction, which is what keeps delta re-prediction
// byte-identical to a cold run with blocking on.
struct BlockingOptions {
  // Master switch. false = the exhaustive all-pairs oracle.
  bool enabled = true;
  // Probe budget: k hashes smallest under a SplitMix64 remix (a uniform
  // sample of the column's distinct values).
  size_t bottom_probes = 24;
  // Probe budget: top hashes by occurrence count (count desc, hash asc).
  size_t heavy_probes = 16;
  // Columns with at most this many distinct values probe every value
  // (admission is then exact, not probabilistic).
  size_t probe_all_below = 64;
  // Minimum share of a probe class that must hit the referenced column for
  // admission (exact mode: minimum true row-weighted containment). Must be
  // comfortably below every containment threshold in use; see the header
  // comment. 0 degrades to admit-on-any-shared-value.
  double min_probe_fraction = 0.25;
};

// Counters of one blocking run (plan-level; thread-count invariant).
struct BlockingStats {
  size_t columns_indexed = 0;  // Columns contributing postings.
  size_t index_entries = 0;    // (hash -> column) postings built.
  size_t probe_hashes = 0;     // Probe hashes issued across all columns.
  // Ordered cross-table column pairs in scope vs admitted past blocking.
  size_t column_pairs_total = 0;
  size_t column_pairs_admitted = 0;
  size_t column_pairs_pruned = 0;  // total - admitted.
  // Ordered table pairs in scope vs pairs with >= 1 admitted column pair
  // (only active pairs are scanned by DiscoverInds).
  size_t table_pairs_total = 0;
  size_t table_pairs_active = 0;

  void Add(const BlockingStats& o) {
    columns_indexed += o.columns_indexed;
    index_entries += o.index_entries;
    probe_hashes += o.probe_hashes;
    column_pairs_total += o.column_pairs_total;
    column_pairs_admitted += o.column_pairs_admitted;
    column_pairs_pruned += o.column_pairs_pruned;
    table_pairs_total += o.table_pairs_total;
    table_pairs_active += o.table_pairs_active;
  }

  double PruningRate() const {
    if (column_pairs_total == 0) return 0.0;
    return static_cast<double>(column_pairs_pruned) /
           static_cast<double>(column_pairs_total);
  }
};

// Probe material of one dependent column. Exact mode (<= probe_all_below
// distinct values) carries every distinct hash plus its occurrence count,
// so admission compares the exact row-weighted containment. Sampled mode
// carries the two probe classes separately (a hash heavy AND sampled is
// probed in both). A column with no distinct values builds an empty set
// and is never admitted (it can satisfy no containment threshold > 0).
struct ColumnProbeSet {
  bool exact = false;
  // Exact: all distinct hashes (ascending). Sampled: the uniform
  // bottom-under-remix sample, sorted ascending.
  std::vector<uint64_t> bottom;
  // Exact only: occurrence counts aligned with `bottom`.
  std::vector<int64_t> weights;
  // Exact only: the containment denominator (non-null row count).
  int64_t total_weight = 0;
  // Sampled only: top-by-count probes, sorted ascending.
  std::vector<uint64_t> heavy;

  size_t issued() const { return bottom.size() + heavy.size(); }
};

ColumnProbeSet BuildColumnProbes(const ColumnProfile& profile,
                                 const BlockingOptions& options);

// The pair-local admission predicate: probes `ref_hashes` (a sorted
// distinct-hash vector) with every probe of `probes` and applies the
// fraction tests above. BuildBlockingPlan evaluates the same arithmetic
// through the global index.
bool AdmitColumnPair(const ColumnProbeSet& probes,
                     const std::vector<uint64_t>& ref_hashes,
                     const BlockingOptions& options);

// Admission of one ordered table pair (dependent ti -> referenced tj):
// the admitted (dependent column, referenced column) pairs, sorted
// lexicographically — the exact iteration order of the exhaustive unary
// nested loop restricted to admitted pairs.
struct PairBlocking {
  std::vector<std::pair<int, int>> admitted;
};

// Pair-local admission: evaluates the blocking predicate for every column
// pair of (dep -> ref) directly from the two profiles. Identical to the
// (ti, tj) entry of BuildBlockingPlan over the same profiles.
PairBlocking ComputePairBlocking(const TableProfile& dep,
                                 const TableProfile& ref,
                                 const BlockingOptions& options);

// The cold-path plan: builds the global inverted index over every distinct
// hash of every profiled column, probes it with every column's probe set,
// and returns the admissions of every ACTIVE ordered table pair, keyed
// (ti, tj) — std::map order is exactly DiscoverInds' serial ti-major pair
// order restricted to active pairs. Ordered pairs absent from the map have
// zero admitted column pairs and are skipped entirely.
//
// Per-table probing fans out over `threads` (ResolveThreads semantics);
// the plan is bit-identical at any thread count. If `ctx` is non-null,
// probing polls RunContext::StopRequested at dependent-table boundaries;
// tables skipped after a trip contribute no admissions (the caller's
// stage-degradation marking covers this, as the same stop gates the scans
// downstream). `stats`, if non-null, receives the plan counters.
std::map<std::pair<int, int>, PairBlocking> BuildBlockingPlan(
    const std::vector<TableProfile>& profiles, const BlockingOptions& options,
    BlockingStats* stats = nullptr, int threads = 0,
    const RunContext* ctx = nullptr);

}  // namespace autobi

#endif  // AUTOBI_PROFILE_BLOCKING_H_
