#include "profile/emd.h"

#include <algorithm>
#include <cmath>

#include "profile/sketch.h"

namespace autobi {

namespace {

std::vector<double> HashedSample(const ColumnProfile& p, size_t cap = 512) {
  // The profile's sorted distinct-hash vector uses the same FNV-1a hash this
  // sample always did, and the hash -> unit mapping is monotone, so the
  // sample is just the first min(cap, n) entries mapped into [0, 1): for a
  // column under the cap that is the whole distinct set (as before); above
  // the cap it is the bottom-cap slice — a uniform sample of the distinct
  // values by the same uniform-hashing argument as the KMV sketch, and
  // deterministic (the historical truncation took whatever unordered-map
  // iteration order produced). Already sorted, no re-hash, no sort.
  size_t n = std::min(p.distinct_hashes.size(), cap);
  std::vector<double> vals;
  vals.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    vals.push_back(HashToUnitInterval(p.distinct_hashes[i]));
  }
  return vals;
}

}  // namespace

double NormalizedEmd(const std::vector<double>& a,
                     const std::vector<double>& b) {
  if (a.empty() || b.empty()) return 1.0;
  double lo = std::min(a.front(), b.front());
  double hi = std::max(a.back(), b.back());
  double range = hi - lo;
  if (range <= 0.0) return 0.0;  // Both distributions are a single point.

  // Sweep the merged value axis accumulating |CDF_a - CDF_b| * dx.
  size_t i = 0;
  size_t j = 0;
  double prev_x = lo;
  double emd = 0.0;
  double na = static_cast<double>(a.size());
  double nb = static_cast<double>(b.size());
  while (i < a.size() || j < b.size()) {
    double x;
    if (i < a.size() && (j >= b.size() || a[i] <= b[j])) {
      x = a[i];
    } else {
      x = b[j];
    }
    double cdf_a = static_cast<double>(i) / na;
    double cdf_b = static_cast<double>(j) / nb;
    emd += std::fabs(cdf_a - cdf_b) * (x - prev_x);
    prev_x = x;
    while (i < a.size() && a[i] == x) ++i;
    while (j < b.size() && b[j] == x) ++j;
  }
  return std::min(1.0, emd / range);
}

double EmdScore(const ColumnProfile& a, const ColumnProfile& b) {
  if (a.non_null_count == 0 || b.non_null_count == 0) return 1.0;
  if (a.is_numeric && b.is_numeric) {
    return NormalizedEmd(a.sorted_numeric_sample, b.sorted_numeric_sample);
  }
  // Fall back to the hashed-key distribution for string columns. Two columns
  // drawing from the same key domain hash to similar uniform samples.
  return NormalizedEmd(HashedSample(a), HashedSample(b));
}

}  // namespace autobi
