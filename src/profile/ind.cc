#include "profile/ind.h"

#include <iterator>
#include <memory>
#include <string>
#include <utility>

#include "common/parallel.h"
#include "profile/sketch.h"
#include "table/key_view.h"

namespace autobi {

namespace {

// Cheap numeric-range disjointness screen: containment must be ~0 when the
// dependent's range lies entirely outside the referenced range.
bool RangesDisjoint(const ColumnProfile& a, const ColumnProfile& b) {
  if (!a.is_numeric || !b.is_numeric) return false;
  if (a.non_null_count == 0 || b.non_null_count == 0) return false;
  return a.max_value < b.min_value || b.max_value < a.min_value;
}

}  // namespace

IndPairScan ScanTablePair(const std::vector<Table>& tables,
                          const std::vector<TableProfile>& profiles,
                          const std::vector<std::vector<Ucc>>& uccs,
                          const IndOptions& options, CompositeKeyCache* cache,
                          int ti, int tj, const PairBlocking* blocking) {
  IndPairScan out;
  std::vector<Ind>& result = out.inds;
  IndStats& stats = out.stats;
  stats.pairs_scanned = 1;
  const TableProfile& pi = profiles[ti];
  const TableProfile& pj = profiles[tj];
  const size_t na = pi.columns.size();
  const size_t nb = pj.columns.size();
  // Blocking admission for this pair: the caller's precomputed plan entry
  // (cold path), or recomputed pair-locally from the two profiles
  // (incremental path) — identical by construction. The exhaustive loop
  // structure below is kept and non-admitted column pairs are skipped in
  // place, so the iteration order of everything that still runs is exactly
  // the oracle's.
  PairBlocking local;
  if (options.blocking.enabled && blocking == nullptr) {
    local = ComputePairBlocking(pi, pj, options.blocking);
    blocking = &local;
    stats.blocking.column_pairs_total = na * nb;
    stats.blocking.column_pairs_admitted = local.admitted.size();
    stats.blocking.column_pairs_pruned = na * nb - local.admitted.size();
    stats.blocking.table_pairs_total = 1;
    stats.blocking.table_pairs_active = local.admitted.empty() ? 0 : 1;
  }
  std::vector<char> admit;  // (a * nb + b) -> admitted; empty = admit all.
  if (options.blocking.enabled && blocking != nullptr) {
    admit.assign(na * nb, 0);
    for (const auto& [a, b] : blocking->admitted) {
      admit[static_cast<size_t>(a) * nb + static_cast<size_t>(b)] = 1;
    }
  }
  auto admitted = [&](int a, int b) {
    return admit.empty() ||
           admit[static_cast<size_t>(a) * nb + static_cast<size_t>(b)] != 0;
  };
  // --- Unary INDs.
  for (int a = 0; a < static_cast<int>(na); ++a) {
    const ColumnProfile& pa = pi.columns[a];
    if (pa.num_distinct < options.min_distinct) continue;
    for (int b = 0; b < static_cast<int>(nb); ++b) {
      if (!admitted(a, b)) {
        ++stats.unary_blocked;
        continue;
      }
      const ColumnProfile& pb = pj.columns[b];
      if (pb.non_null_count == 0) continue;
      if (pb.distinct_ratio < options.min_referenced_distinct_ratio) {
        continue;
      }
      if (RangesDisjoint(pa, pb)) {
        ++stats.unary_range_screened;
        continue;
      }
      ++stats.unary_exact_checks;
      double c = Containment(pa, pb);
      if (c >= options.min_containment) {
        Ind ind;
        ind.dependent = ColumnRef{ti, {a}};
        ind.referenced = ColumnRef{tj, {b}};
        ind.containment = c;
        result.push_back(std::move(ind));
      }
    }
  }
  // --- Composite INDs: probe composite UCCs of the referenced table.
  if (options.max_arity < 2) return out;
  // Dependent-side key views, built lazily on first probe of a column and
  // shared across every probe/UCC of this pair.
  std::vector<std::unique_ptr<ColumnKeyView>> dep_views(pi.columns.size());
  auto dep_view = [&](int a) -> const ColumnKeyView& {
    auto& slot = dep_views[static_cast<size_t>(a)];
    if (slot == nullptr) {
      slot = std::make_unique<ColumnKeyView>(
          tables[ti].column(static_cast<size_t>(a)));
    }
    return *slot;
  };
  size_t probes = 0;
  bool budget_exhausted = false;
  double component_threshold = options.min_containment * 0.8;
  for (const Ucc& key : uccs[tj]) {
    if (budget_exhausted) break;
    size_t arity = key.columns.size();
    if (arity < 2 || arity > options.max_arity) continue;
    // For each UCC component, collect plausible source columns by
    // per-column containment pre-screen.
    std::vector<std::vector<int>> component_candidates(arity);
    bool viable = true;
    for (size_t k = 0; k < arity; ++k) {
      const ColumnProfile& pb = pj.columns[key.columns[k]];
      for (int a = 0; a < static_cast<int>(na); ++a) {
        const ColumnProfile& pa = pi.columns[a];
        if (pa.num_distinct == 0) continue;
        // Blocking admission is threshold-agnostic (shared values, not a
        // score), so the same admit matrix serves the relaxed
        // component_threshold here.
        if (!admitted(a, key.columns[k])) continue;
        if (RangesDisjoint(pa, pb)) continue;
        if (Containment(pa, pb) >= component_threshold) {
          component_candidates[k].push_back(a);
        }
      }
      if (component_candidates[k].empty()) {
        viable = false;
        break;
      }
    }
    if (!viable) continue;
    // Referenced tuple-hash set: built once per (table, UCC) across ALL
    // dependent tables via the shared cache, not once per probe.
    std::shared_ptr<const CompositeKeyCache::HashSet> referenced;
    // Enumerate assignments (distinct source columns per component).
    std::vector<int> assign(arity, -1);
    std::vector<size_t> idx(arity, 0);
    size_t level = 0;
    while (true) {
      if (idx[level] >= component_candidates[level].size()) {
        if (level == 0) break;
        idx[level] = 0;
        --level;
        ++idx[level];
        continue;
      }
      int cand = component_candidates[level][idx[level]];
      bool dup = false;
      for (size_t k = 0; k < level; ++k) {
        if (assign[k] == cand) {
          dup = true;
          break;
        }
      }
      if (dup) {
        ++idx[level];
        continue;
      }
      assign[level] = cand;
      if (level + 1 == arity) {
        if (++probes > options.max_composite_probes) {
          // Budget exhausted: stop ALL composite probing for this pair (not
          // just this UCC) and record the truncation.
          budget_exhausted = true;
          ++stats.composite_budget_truncations;
          break;
        }
        ++stats.composite_probes;
        if (referenced == nullptr) {
          referenced = cache->Get(tables[tj], tj, key.columns);
        }
        std::vector<int> src(assign.begin(), assign.end());
        std::vector<const ColumnKeyView*> src_views;
        src_views.reserve(src.size());
        for (int a2 : src) src_views.push_back(&dep_view(a2));
        double c = CompositeContainment(src_views, tables[ti].num_rows(),
                                        *referenced);
        if (c >= options.min_containment) {
          Ind ind;
          ind.dependent = ColumnRef{ti, src};
          ind.referenced = ColumnRef{tj, key.columns};
          ind.containment = c;
          result.push_back(std::move(ind));
        }
        ++idx[level];
      } else {
        ++level;
      }
    }
  }
  return out;
}

std::shared_ptr<const CompositeKeyCache::HashSet> CompositeKeyCache::Get(
    const Table& table, int table_index, const std::vector<int>& columns) {
  std::promise<std::shared_ptr<const HashSet>> promise;
  std::shared_future<std::shared_ptr<const HashSet>> future;
  bool builder = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Key key{table_index, columns};
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      future = it->second;
    } else {
      future = promise.get_future().share();
      entries_.emplace(std::move(key), future);
      builder = true;
    }
  }
  if (builder) {
    auto set = std::make_shared<const HashSet>(
        BuildCompositeKeySet(table, columns));
    builds_.fetch_add(1, std::memory_order_relaxed);
    promise.set_value(set);
    return set;
  }
  return future.get();
}

void CompositeKeyCache::Seed(int table_index, const std::vector<int>& columns,
                             std::shared_ptr<const HashSet> set) {
  std::promise<std::shared_ptr<const HashSet>> promise;
  promise.set_value(std::move(set));
  std::lock_guard<std::mutex> lock(mu_);
  // emplace keeps any existing entry, so seeding never clobbers a build.
  entries_.emplace(Key{table_index, columns}, promise.get_future().share());
}

std::vector<std::pair<CompositeKeyCache::Key,
                      std::shared_ptr<const CompositeKeyCache::HashSet>>>
CompositeKeyCache::Entries() {
  std::vector<std::pair<Key, std::shared_ptr<const HashSet>>> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(entries_.size());
  for (const auto& [key, future] : entries_) {
    if (future.wait_for(std::chrono::seconds(0)) ==
        std::future_status::ready) {
      out.emplace_back(key, future.get());
    }
  }
  return out;
}

namespace {

// Materializes key views for `cols` of `table` into `storage` and returns
// pointer spans for the streaming tuple-hash kernels.
std::vector<const ColumnKeyView*> BuildViews(
    const Table& table, const std::vector<int>& cols,
    std::vector<ColumnKeyView>* storage) {
  storage->clear();
  storage->reserve(cols.size());
  for (int c : cols) {
    storage->emplace_back(table.column(static_cast<size_t>(c)));
  }
  std::vector<const ColumnKeyView*> views;
  views.reserve(storage->size());
  for (const ColumnKeyView& v : *storage) views.push_back(&v);
  return views;
}

}  // namespace

CompositeKeyCache::HashSet BuildCompositeKeySet(
    const Table& table, const std::vector<int>& cols) {
  std::vector<ColumnKeyView> storage;
  std::vector<const ColumnKeyView*> views = BuildViews(table, cols, &storage);
  CompositeKeyCache::HashSet referenced;
  referenced.reserve(table.num_rows() * 2);
  uint64_t h = 0;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (TupleHashFromViews(views, r, &h)) referenced.insert(h);
  }
  return referenced;
}

double CompositeContainment(const std::vector<const ColumnKeyView*>& cols,
                            size_t rows,
                            const CompositeKeyCache::HashSet& referenced) {
  // Row-weighted, matching the unary Containment semantics.
  size_t total = 0;
  size_t hits = 0;
  uint64_t h = 0;
  for (size_t r = 0; r < rows; ++r) {
    if (!TupleHashFromViews(cols, r, &h)) continue;
    ++total;
    if (referenced.count(h)) ++hits;
  }
  if (total == 0) return 0.0;
  return static_cast<double>(hits) / static_cast<double>(total);
}

double CompositeContainment(const Table& ta, const std::vector<int>& ca,
                            const CompositeKeyCache::HashSet& referenced) {
  std::vector<ColumnKeyView> storage;
  std::vector<const ColumnKeyView*> views = BuildViews(ta, ca, &storage);
  return CompositeContainment(views, ta.num_rows(), referenced);
}

double CompositeContainment(const Table& ta, const std::vector<int>& ca,
                            const Table& tb, const std::vector<int>& cb) {
  return CompositeContainment(ta, ca, BuildCompositeKeySet(tb, cb));
}

CompositeKeyCache::HashSet BuildCompositeKeySetLegacy(
    const Table& table, const std::vector<int>& cols) {
  CompositeKeyCache::HashSet referenced;
  referenced.reserve(table.num_rows() * 2);
  std::string scratch;
  uint64_t h = 0;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (TupleHash(table, cols, r, &h, &scratch)) referenced.insert(h);
  }
  return referenced;
}

double CompositeContainmentLegacy(const Table& ta, const std::vector<int>& ca,
                                  const Table& tb, const std::vector<int>& cb) {
  CompositeKeyCache::HashSet referenced = BuildCompositeKeySetLegacy(tb, cb);
  size_t total = 0;
  size_t hits = 0;
  std::string scratch;
  uint64_t h = 0;
  for (size_t r = 0; r < ta.num_rows(); ++r) {
    if (!TupleHash(ta, ca, r, &h, &scratch)) continue;
    ++total;
    if (referenced.count(h)) ++hits;
  }
  if (total == 0) return 0.0;
  return static_cast<double>(hits) / static_cast<double>(total);
}

std::vector<Ind> DiscoverInds(const std::vector<Table>& tables,
                              const std::vector<TableProfile>& profiles,
                              const std::vector<std::vector<Ucc>>& uccs,
                              const IndOptions& options, IndStats* stats,
                              CompositeKeyCache* cache,
                              const RunContext* ctx) {
  // Enumerate ordered pairs in the serial scan order, fan the per-pair scans
  // out, then concatenate per-pair results in that same order: the combined
  // IND list is byte-identical at any thread count. With blocking enabled
  // the pair list shrinks to the plan's ACTIVE pairs — std::map iteration
  // over (ti, tj) keys is the serial ti-major order restricted to them, so
  // the concatenation order is unchanged.
  CompositeKeyCache local_cache;
  if (cache == nullptr) cache = &local_cache;
  size_t builds_before = cache->builds();
  int n = static_cast<int>(tables.size());
  IndStats total;
  std::vector<std::pair<int, int>> pairs;
  std::vector<const PairBlocking*> pair_blocking;
  std::map<std::pair<int, int>, PairBlocking> plan;
  if (options.blocking.enabled) {
    plan = BuildBlockingPlan(profiles, options.blocking, &total.blocking,
                             options.threads, ctx);
    pairs.reserve(plan.size());
    pair_blocking.reserve(plan.size());
    for (const auto& [key, admission] : plan) {
      pairs.push_back(key);
      pair_blocking.push_back(&admission);
    }
  } else {
    pairs.reserve(static_cast<size_t>(n) * static_cast<size_t>(n));
    for (int ti = 0; ti < n; ++ti) {
      for (int tj = 0; tj < n; ++tj) {
        if (ti != tj) pairs.emplace_back(ti, tj);
      }
    }
    pair_blocking.assign(pairs.size(), nullptr);
  }
  std::vector<IndPairScan> per_pair = ParallelMap(
      pairs.size(),
      [&](size_t p) {
        // Item-boundary stop poll: once the deadline passes or the run is
        // cancelled, remaining pairs contribute nothing (the caller marks
        // the stage degraded). A null/untripped context changes nothing.
        if (ctx != nullptr && ctx->StopRequested()) return IndPairScan{};
        return ScanTablePair(tables, profiles, uccs, options, cache,
                             pairs[p].first, pairs[p].second,
                             pair_blocking[p]);
      },
      options.threads);
  std::vector<Ind> result;
  for (IndPairScan& part : per_pair) {
    total.Add(part.stats);
    result.insert(result.end(), std::make_move_iterator(part.inds.begin()),
                  std::make_move_iterator(part.inds.end()));
  }
  if (options.blocking.enabled) {
    // Per-pair scans only see blocked column pairs inside ACTIVE table
    // pairs; the plan-level pruned count covers never-scanned pairs too and
    // is the authoritative number.
    total.unary_blocked = total.blocking.column_pairs_pruned;
  }
  // Attribute exactly the sets built during this run (the cache may be
  // shared across calls).
  total.composite_sets_built = cache->builds() - builds_before;
  if (stats != nullptr) *stats = total;
  return result;
}

}  // namespace autobi
