#include "profile/ind.h"

#include <iterator>
#include <string>
#include <unordered_set>
#include <utility>

#include "common/parallel.h"

namespace autobi {

namespace {

// Tuple key of `columns` at row r (escaped '|' separators); false on null.
bool TupleKey(const Table& table, const std::vector<int>& columns, size_t r,
              std::string* out) {
  out->clear();
  std::string cell;
  for (int c : columns) {
    if (!table.column(static_cast<size_t>(c)).KeyAt(r, &cell)) return false;
    for (char ch : cell) {
      if (ch == '|' || ch == '\\') out->push_back('\\');
      out->push_back(ch);
    }
    out->push_back('|');
  }
  return true;
}

// Cheap numeric-range disjointness screen: containment must be ~0 when the
// dependent's range lies entirely outside the referenced range.
bool RangesDisjoint(const ColumnProfile& a, const ColumnProfile& b) {
  if (!a.is_numeric || !b.is_numeric) return false;
  if (a.non_null_count == 0 || b.non_null_count == 0) return false;
  return a.max_value < b.min_value || b.max_value < a.min_value;
}

// Scans one ordered table pair (ti -> tj) for unary and composite INDs.
// Pure function of its inputs, so pairs can be scanned on any thread; the
// caller concatenates per-pair results in serial pair order to keep the
// output identical to a single-threaded scan.
std::vector<Ind> ScanTablePair(const std::vector<Table>& tables,
                               const std::vector<TableProfile>& profiles,
                               const std::vector<std::vector<Ucc>>& uccs,
                               const IndOptions& options, int ti, int tj) {
  std::vector<Ind> result;
  const TableProfile& pi = profiles[ti];
  const TableProfile& pj = profiles[tj];
  // --- Unary INDs.
  for (int a = 0; a < static_cast<int>(pi.columns.size()); ++a) {
    const ColumnProfile& pa = pi.columns[a];
    if (pa.distinct.size() < options.min_distinct) continue;
    for (int b = 0; b < static_cast<int>(pj.columns.size()); ++b) {
      const ColumnProfile& pb = pj.columns[b];
      if (pb.non_null_count == 0) continue;
      if (pb.distinct_ratio < options.min_referenced_distinct_ratio) {
        continue;
      }
      if (RangesDisjoint(pa, pb)) continue;
      double c = Containment(pa, pb);
      if (c >= options.min_containment) {
        Ind ind;
        ind.dependent = ColumnRef{ti, {a}};
        ind.referenced = ColumnRef{tj, {b}};
        ind.containment = c;
        result.push_back(std::move(ind));
      }
    }
  }
  // --- Composite INDs: probe composite UCCs of the referenced table.
  if (options.max_arity < 2) return result;
  size_t probes = 0;
  for (const Ucc& key : uccs[tj]) {
    size_t arity = key.columns.size();
    if (arity < 2 || arity > options.max_arity) continue;
    // For each UCC component, collect plausible source columns by
    // per-column containment pre-screen.
    std::vector<std::vector<int>> component_candidates(arity);
    bool viable = true;
    for (size_t k = 0; k < arity; ++k) {
      const ColumnProfile& pb = pj.columns[key.columns[k]];
      for (int a = 0; a < static_cast<int>(pi.columns.size()); ++a) {
        const ColumnProfile& pa = pi.columns[a];
        if (pa.distinct.empty()) continue;
        if (RangesDisjoint(pa, pb)) continue;
        if (Containment(pa, pb) >= options.min_containment * 0.8) {
          component_candidates[k].push_back(a);
        }
      }
      if (component_candidates[k].empty()) {
        viable = false;
        break;
      }
    }
    if (!viable) continue;
    // Enumerate assignments (distinct source columns per component).
    std::vector<int> assign(arity, -1);
    std::vector<size_t> idx(arity, 0);
    size_t level = 0;
    while (true) {
      if (idx[level] >= component_candidates[level].size()) {
        if (level == 0) break;
        idx[level] = 0;
        --level;
        ++idx[level];
        continue;
      }
      int cand = component_candidates[level][idx[level]];
      bool dup = false;
      for (size_t k = 0; k < level; ++k) {
        if (assign[k] == cand) {
          dup = true;
          break;
        }
      }
      if (dup) {
        ++idx[level];
        continue;
      }
      assign[level] = cand;
      if (level + 1 == arity) {
        if (++probes > options.max_composite_probes) break;
        std::vector<int> src(assign.begin(), assign.end());
        double c = CompositeContainment(tables[ti], src, tables[tj],
                                        key.columns);
        if (c >= options.min_containment) {
          Ind ind;
          ind.dependent = ColumnRef{ti, src};
          ind.referenced = ColumnRef{tj, key.columns};
          ind.containment = c;
          result.push_back(std::move(ind));
        }
        ++idx[level];
      } else {
        ++level;
      }
    }
  }
  return result;
}

}  // namespace

double CompositeContainment(const Table& ta, const std::vector<int>& ca,
                            const Table& tb, const std::vector<int>& cb) {
  std::unordered_set<std::string> referenced;
  referenced.reserve(tb.num_rows() * 2);
  std::string key;
  for (size_t r = 0; r < tb.num_rows(); ++r) {
    if (TupleKey(tb, cb, r, &key)) referenced.insert(key);
  }
  // Row-weighted, matching the unary Containment semantics.
  size_t total = 0;
  size_t hits = 0;
  for (size_t r = 0; r < ta.num_rows(); ++r) {
    if (!TupleKey(ta, ca, r, &key)) continue;
    ++total;
    if (referenced.count(key)) ++hits;
  }
  if (total == 0) return 0.0;
  return static_cast<double>(hits) / static_cast<double>(total);
}

std::vector<Ind> DiscoverInds(const std::vector<Table>& tables,
                              const std::vector<TableProfile>& profiles,
                              const std::vector<std::vector<Ucc>>& uccs,
                              const IndOptions& options) {
  // Enumerate ordered pairs in the serial scan order, fan the per-pair scans
  // out, then concatenate per-pair results in that same order: the combined
  // IND list is byte-identical at any thread count.
  int n = static_cast<int>(tables.size());
  std::vector<std::pair<int, int>> pairs;
  pairs.reserve(static_cast<size_t>(n) * static_cast<size_t>(n));
  for (int ti = 0; ti < n; ++ti) {
    for (int tj = 0; tj < n; ++tj) {
      if (ti != tj) pairs.emplace_back(ti, tj);
    }
  }
  std::vector<std::vector<Ind>> per_pair = ParallelMap(
      pairs.size(),
      [&](size_t p) {
        return ScanTablePair(tables, profiles, uccs, options, pairs[p].first,
                             pairs[p].second);
      },
      options.threads);
  std::vector<Ind> result;
  for (std::vector<Ind>& part : per_pair) {
    result.insert(result.end(), std::make_move_iterator(part.begin()),
                  std::make_move_iterator(part.end()));
  }
  return result;
}

}  // namespace autobi
