#include "profile/sketch.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace autobi {

SortedHashCounts BuildSortedHashCounts(
    const std::unordered_map<std::string, int32_t>& distinct) {
  std::vector<std::pair<uint64_t, int32_t>> entries;
  entries.reserve(distinct.size());
  for (const auto& [key, count] : distinct) {
    entries.emplace_back(StableHash64(key), count);
  }
  std::sort(entries.begin(), entries.end());
  SortedHashCounts out;
  out.hashes.reserve(entries.size());
  out.counts.reserve(entries.size());
  for (const auto& [hash, count] : entries) {
    if (!out.hashes.empty() && out.hashes.back() == hash) {
      // In-column 64-bit collision: merge so the vector stays strictly
      // increasing. Astronomically rare; counts stay row-weight-correct.
      out.counts.back() += count;
    } else {
      out.hashes.push_back(hash);
      out.counts.push_back(count);
    }
  }
  return out;
}

KmvEstimate EstimateContainment(const std::vector<uint64_t>& a_hashes,
                                const std::vector<int32_t>& a_counts,
                                const std::vector<uint64_t>& b_hashes,
                                size_t k) {
  KmvEstimate est;
  if (a_hashes.empty() || k == 0) return est;
  constexpr uint64_t kMax = std::numeric_limits<uint64_t>::max();
  uint64_t ta = a_hashes.size() > k ? a_hashes[k - 1] : kMax;
  uint64_t tb = b_hashes.size() > k ? b_hashes[k - 1] : kMax;
  uint64_t tau = std::min(ta, tb);
  // Both distinct sets are fully enumerated in [0, tau]; sorted merge over
  // that prefix (at most k entries per side).
  int64_t total = 0;
  int64_t hits = 0;
  size_t j = 0;
  for (size_t i = 0; i < a_hashes.size() && a_hashes[i] <= tau; ++i) {
    ++est.sample;
    total += a_counts[i];
    while (j < b_hashes.size() && b_hashes[j] < a_hashes[i]) ++j;
    if (j < b_hashes.size() && b_hashes[j] == a_hashes[i]) hits += a_counts[i];
  }
  if (total > 0) {
    est.containment = static_cast<double>(hits) / static_cast<double>(total);
  }
  return est;
}

namespace {

// FNV-1a accumulation helpers for the content hashes. Byte-exact and
// allocation-free: numeric cells hash their binary representation, string
// cells their bytes, and a per-cell tag separates null/int/double/string so
// "" and null (or 3 and "3") never alias.
inline void MixByte(uint64_t& h, unsigned char c) {
  h ^= c;
  h *= 1099511628211ULL;
}

inline void MixBytes(uint64_t& h, const void* data, size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) MixByte(h, p[i]);
}

inline void MixU64(uint64_t& h, uint64_t v) { MixBytes(h, &v, sizeof(v)); }

// The shared cell-stream accumulator of every content-hash variant below:
// declared type, cell count, then each of the first `rows` cells with its
// null/int/double/string tag. Keeping it in one place is what makes the
// prefix hash byte-identical to the full hash of a truncated column.
inline void MixColumnCells(uint64_t& h, const Column& column, size_t rows) {
  MixU64(h, uint64_t(column.type()));
  MixU64(h, rows);
  for (size_t r = 0; r < rows; ++r) {
    if (column.IsNull(r)) {
      MixByte(h, 0);
      continue;
    }
    switch (column.type()) {
      case ValueType::kInt: {
        MixByte(h, 1);
        MixU64(h, uint64_t(column.Int(r)));
        break;
      }
      case ValueType::kDouble: {
        MixByte(h, 2);
        double d = column.Double(r);
        MixBytes(h, &d, sizeof(d));
        break;
      }
      case ValueType::kString: {
        const std::string& s = column.Str(r);
        MixByte(h, 3);
        MixU64(h, s.size());
        MixBytes(h, s.data(), s.size());
        break;
      }
      case ValueType::kNull:
        MixByte(h, 0);
        break;
    }
  }
}

}  // namespace

// The named content hashes are defined as a recomposition of the name-free
// cells hash so that a caller holding the cells hash gets the named hash for
// free (one cell pass yields both; see ColumnContentHashFromCells).

uint64_t ColumnContentHashFromCells(std::string_view name,
                                    uint64_t cells_hash) {
  uint64_t h = 1469598103934665603ULL;
  MixBytes(h, name.data(), name.size());
  MixByte(h, 0);  // Name/content separator.
  MixU64(h, cells_hash);
  return SplitMix64(h);
}

uint64_t ColumnContentHash(const Column& column) {
  return ColumnContentHashFromCells(column.name(), ColumnCellsHash(column));
}

uint64_t ColumnContentHashPrefix(const Column& column, size_t rows) {
  return ColumnContentHashFromCells(column.name(),
                                    ColumnCellsHashPrefix(column, rows));
}

uint64_t ColumnCellsHash(const Column& column) {
  return ColumnCellsHashPrefix(column, column.size());
}

uint64_t ColumnCellsHashPrefix(const Column& column, size_t rows) {
  uint64_t h = 1469598103934665603ULL;
  MixColumnCells(h, column, rows);
  return SplitMix64(h);
}

uint64_t TableContentHashFromColumnHashes(
    std::string_view name, const std::vector<uint64_t>& column_hashes) {
  uint64_t h = 1469598103934665603ULL;
  MixBytes(h, name.data(), name.size());
  MixByte(h, 0);
  MixU64(h, column_hashes.size());
  for (uint64_t ch : column_hashes) MixU64(h, ch);
  return SplitMix64(h);
}

uint64_t TableContentHash(const Table& table) {
  std::vector<uint64_t> hashes;
  hashes.reserve(table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    hashes.push_back(ColumnContentHash(table.column(c)));
  }
  return TableContentHashFromColumnHashes(table.name(), hashes);
}

uint64_t TablesContentHash(const std::vector<Table>& tables) {
  std::vector<uint64_t> hashes;
  hashes.reserve(tables.size());
  for (const Table& t : tables) hashes.push_back(TableContentHash(t));
  return TablesContentHashFromHashes(hashes);
}

uint64_t TablesContentHashFromHashes(
    const std::vector<uint64_t>& table_hashes) {
  uint64_t h = 1469598103934665603ULL;
  MixU64(h, table_hashes.size());
  for (uint64_t th : table_hashes) MixU64(h, th);
  return SplitMix64(h);
}

bool TupleHash(const Table& table, const std::vector<int>& columns, size_t r,
               uint64_t* out, std::string* scratch) {
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](char c) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  };
  for (int c : columns) {
    if (!table.column(static_cast<size_t>(c)).KeyAt(r, scratch)) return false;
    for (char ch : *scratch) {
      if (ch == '|' || ch == '\\') mix('\\');
      mix(ch);
    }
    mix('|');
  }
  *out = h;
  return true;
}

}  // namespace autobi
