#ifndef AUTOBI_PROFILE_IND_H_
#define AUTOBI_PROFILE_IND_H_

#include <vector>

#include "profile/column_profile.h"
#include "profile/ucc.h"
#include "table/table.h"

namespace autobi {

// Approximate inclusion-dependency (IND) discovery. INDs are the candidate
// generation step of Algorithm 1 (Line 3): every column pair (C_i, C_j) with
// containment(C_i in C_j) above a threshold becomes a candidate join edge.

struct IndOptions {
  // Minimum fraction of the dependent (FK) side's distinct values contained
  // in the referenced (PK) side. Real BI joins are often not perfectly
  // inclusive, so this is < 1 by default.
  double min_containment = 0.85;
  // Dependent side must have at least this many distinct values (tiny
  // domains overlap by accident).
  size_t min_distinct = 1;
  // Referenced side must have distinct ratio at least this (a join target
  // should be key-like).
  double min_referenced_distinct_ratio = 0.9;
  // Also search composite (multi-column) INDs against composite UCCs of the
  // referenced table, up to this arity. 1 disables composite search.
  size_t max_arity = 2;
  // Composite probes are capped per table pair.
  size_t max_composite_probes = 64;
  // Worker threads for the pairwise scan (ResolveThreads semantics: 0 = use
  // AUTOBI_THREADS / hardware, 1 = serial). Output is identical regardless.
  int threads = 0;
};

// One approximate inclusion dependency: dependent ⊆ referenced (dependent is
// the prospective FK side, referenced the PK side).
struct Ind {
  ColumnRef dependent;
  ColumnRef referenced;
  // Fraction of dependent distinct values found in referenced.
  double containment = 0.0;
  bool IsComposite() const { return dependent.columns.size() > 1; }
};

// Exact containment of the composite tuple-set of (ta, ca) in (tb, cb):
// fraction of distinct non-null tuples of `ca` that appear among tuples of
// `cb`.
double CompositeContainment(const Table& ta, const std::vector<int>& ca,
                            const Table& tb, const std::vector<int>& cb);

// Discovers all approximate INDs between distinct tables of `tables`.
// `profiles` must come from ProfileTables(tables); `uccs[i]` are the UCCs of
// table i (used to direct composite probes and filter referenced sides).
std::vector<Ind> DiscoverInds(const std::vector<Table>& tables,
                              const std::vector<TableProfile>& profiles,
                              const std::vector<std::vector<Ucc>>& uccs,
                              const IndOptions& options = {});

}  // namespace autobi

#endif  // AUTOBI_PROFILE_IND_H_
