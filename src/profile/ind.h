#ifndef AUTOBI_PROFILE_IND_H_
#define AUTOBI_PROFILE_IND_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/run_context.h"
#include "profile/blocking.h"
#include "profile/column_profile.h"
#include "profile/ucc.h"
#include "table/key_view.h"
#include "table/table.h"

namespace autobi {

// Approximate inclusion-dependency (IND) discovery. INDs are the candidate
// generation step of Algorithm 1 (Line 3): every column pair (C_i, C_j) with
// containment(C_i in C_j) above a threshold becomes a candidate join edge.

struct IndOptions {
  // Minimum fraction of the dependent (FK) side's distinct values contained
  // in the referenced (PK) side. Real BI joins are often not perfectly
  // inclusive, so this is < 1 by default.
  double min_containment = 0.85;
  // Dependent side must have at least this many distinct values (tiny
  // domains overlap by accident).
  size_t min_distinct = 1;
  // Referenced side must have distinct ratio at least this (a join target
  // should be key-like).
  double min_referenced_distinct_ratio = 0.9;
  // Also search composite (multi-column) INDs against composite UCCs of the
  // referenced table, up to this arity. 1 disables composite search.
  size_t max_arity = 2;
  // Composite probes are capped per table pair. When the cap is hit, ALL
  // remaining composite probing for the pair stops and the truncation is
  // recorded in IndStats::composite_budget_truncations (no silent caps).
  size_t max_composite_probes = 64;
  // Worker threads for the pairwise scan (ResolveThreads semantics: 0 = use
  // AUTOBI_THREADS / hardware, 1 = serial). Output is identical regardless.
  int threads = 0;

  // Inverted-index candidate blocking (profile/blocking.h). Replaced the
  // PR 5 KMV pre-screen in PR 9: one pruning mechanism, one set of
  // counters, and — unlike the sketch screen, which still visited every
  // column pair — blocking skips entire table pairs, which is what makes
  // lake-scale discovery near-linear. blocking.enabled = false restores the
  // exhaustive all-pairs oracle.
  BlockingOptions blocking;
};

// Observability counters for one DiscoverInds run (summed over table pairs
// in deterministic pair order; thread-count invariant).
struct IndStats {
  size_t pairs_scanned = 0;
  // Unary screens/evaluations.
  size_t unary_range_screened = 0;  // Skipped by numeric-range disjointness.
  size_t unary_blocked = 0;         // Skipped by inverted-index blocking.
  size_t unary_exact_checks = 0;    // Exact sorted-merge containments run.
  // Composite search.
  size_t composite_probes = 0;      // Exact composite containments run.
  size_t composite_sets_built = 0;  // Referenced tuple-hash sets constructed.
  size_t composite_budget_truncations = 0;  // Pairs that hit the probe cap.
  // Blocking-plan counters. On the cold path these are set once per
  // DiscoverInds run from BuildBlockingPlan; incremental ScanTablePair
  // calls contribute their pair-local admissions instead.
  BlockingStats blocking;

  void Add(const IndStats& o) {
    pairs_scanned += o.pairs_scanned;
    unary_range_screened += o.unary_range_screened;
    unary_blocked += o.unary_blocked;
    unary_exact_checks += o.unary_exact_checks;
    composite_probes += o.composite_probes;
    composite_sets_built += o.composite_sets_built;
    composite_budget_truncations += o.composite_budget_truncations;
    blocking.Add(o.blocking);
  }
};

// Thread-safe cache of referenced-side composite tuple-hash sets, keyed by
// (table index, key columns). Under DiscoverInds' per-pair ParallelMap many
// dependent tables probe the same referenced UCC; the cache guarantees each
// set is built exactly once (first requester builds, concurrent requesters
// block on a shared future), so `builds()` == number of distinct keys ever
// requested, at any thread count.
class CompositeKeyCache {
 public:
  using HashSet = std::unordered_set<uint64_t>;
  using Key = std::pair<int, std::vector<int>>;

  // Returns the tuple-hash set of `columns` over `table` (which must be the
  // table at `table_index` of the case), building it on first request.
  std::shared_ptr<const HashSet> Get(const Table& table, int table_index,
                                     const std::vector<int>& columns);

  // Pre-seeds an already-built set (kept if the key is already present).
  // The incremental engine re-injects sets of hash-proven-unchanged tables
  // from the previous run this way: a set is a pure function of the table
  // cells and the key columns, and consumers only probe it (count/size), so
  // a reused set is observationally identical to a rebuilt one.
  void Seed(int table_index, const std::vector<int>& columns,
            std::shared_ptr<const HashSet> set);

  // Snapshot of every entry whose set is ready (seeded or already built);
  // in-flight builds are skipped. Used to persist sets across runs.
  std::vector<std::pair<Key, std::shared_ptr<const HashSet>>> Entries();

  // Number of sets actually constructed so far (seeded sets not included).
  size_t builds() const { return builds_.load(std::memory_order_relaxed); }

 private:
  std::mutex mu_;
  std::map<Key, std::shared_future<std::shared_ptr<const HashSet>>> entries_;
  std::atomic<size_t> builds_{0};
};

// One approximate inclusion dependency: dependent ⊆ referenced (dependent is
// the prospective FK side, referenced the PK side).
struct Ind {
  ColumnRef dependent;
  ColumnRef referenced;
  // Fraction of dependent distinct values found in referenced.
  double containment = 0.0;
  bool IsComposite() const { return dependent.columns.size() > 1; }
};

// Builds the set of stable 64-bit tuple hashes of the non-null-complete
// tuples of `columns` over `table` (the referenced side of composite
// containment). Exposed for CompositeKeyCache and tests. Streams the hashes
// from per-column key views (table/key_view.h) — one bounded-format pass per
// column, no per-cell string materialization.
CompositeKeyCache::HashSet BuildCompositeKeySet(const Table& table,
                                                const std::vector<int>& cols);

// Row-weighted containment of the composite tuples of (ta, ca) in a
// prebuilt referenced tuple-hash set: fraction of ta's non-null-complete
// `ca` tuples (per row) that appear in `referenced`. The view-based overload
// lets callers (ScanTablePair) reuse dependent-side views across probes.
double CompositeContainment(const Table& ta, const std::vector<int>& ca,
                            const CompositeKeyCache::HashSet& referenced);
double CompositeContainment(const std::vector<const ColumnKeyView*>& cols,
                            size_t rows,
                            const CompositeKeyCache::HashSet& referenced);

// Convenience form that builds the referenced set ad hoc. Prefer the
// prebuilt-set overload (via CompositeKeyCache) on hot paths.
double CompositeContainment(const Table& ta, const std::vector<int>& ca,
                            const Table& tb, const std::vector<int>& cb);

// Legacy reference kernels: the original per-row KeyAt-based TupleHash path
// (profile/sketch.h). Retained as oracles for the kernel-equivalence
// property tests; production call sites use the view-based forms above.
CompositeKeyCache::HashSet BuildCompositeKeySetLegacy(
    const Table& table, const std::vector<int>& cols);
double CompositeContainmentLegacy(const Table& ta, const std::vector<int>& ca,
                                  const Table& tb, const std::vector<int>& cb);

// Result of scanning one ordered table pair: the INDs found plus the pair's
// share of the run counters (aggregated serially by DiscoverInds).
struct IndPairScan {
  std::vector<Ind> inds;
  IndStats stats;
};

// Scans one ordered table pair (ti -> tj) for unary and composite INDs —
// exactly the per-pair unit DiscoverInds fans out. Pure function of its
// inputs apart from the (internally synchronized) composite-key cache, so
// the incremental engine (core/incremental.h) can re-run just the pairs
// touching changed tables and splice the results into cached ones:
// concatenating per-pair results in DiscoverInds' serial pair order
// reproduces a full scan byte-for-byte.
//
// `blocking` is the pair's admission from a precomputed BuildBlockingPlan
// entry. Callers without a plan (the incremental engine) leave it null:
// with options.blocking.enabled the admission is then recomputed
// pair-locally via ComputePairBlocking — the predicate is a pure function
// of the two profiles, so the result is identical either way.
IndPairScan ScanTablePair(const std::vector<Table>& tables,
                          const std::vector<TableProfile>& profiles,
                          const std::vector<std::vector<Ucc>>& uccs,
                          const IndOptions& options, CompositeKeyCache* cache,
                          int ti, int tj,
                          const PairBlocking* blocking = nullptr);

// Discovers all approximate INDs between distinct tables of `tables`.
// `profiles` must come from ProfileTables(tables); `uccs[i]` are the UCCs of
// table i (used to direct composite probes and filter referenced sides).
// If `stats` is non-null it receives the run's counters; if `cache` is
// non-null referenced composite key sets are built/reused through it (pass
// one cache across calls to share sets with e.g. reverse-containment
// probing in GenerateCandidates), otherwise a run-local cache is used.
// If `ctx` is non-null, each table-pair scan polls RunContext::StopRequested
// at its boundary and returns no INDs once the run is stopped (graceful
// degradation; a null or untripped context leaves results byte-identical).
// With options.blocking.enabled (default) a BuildBlockingPlan pass first
// prunes the ordered-pair space: only table pairs with at least one admitted
// column pair are scanned at all, and each scan skips non-admitted column
// pairs. The plan's counters land in stats->blocking.
std::vector<Ind> DiscoverInds(const std::vector<Table>& tables,
                              const std::vector<TableProfile>& profiles,
                              const std::vector<std::vector<Ucc>>& uccs,
                              const IndOptions& options = {},
                              IndStats* stats = nullptr,
                              CompositeKeyCache* cache = nullptr,
                              const RunContext* ctx = nullptr);

}  // namespace autobi

#endif  // AUTOBI_PROFILE_IND_H_
