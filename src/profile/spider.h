#ifndef AUTOBI_PROFILE_SPIDER_H_
#define AUTOBI_PROFILE_SPIDER_H_

#include <vector>

#include "table/table.h"

namespace autobi {

// SPIDER-style exact unary IND discovery (Bauckmann et al. [12]): all
// columns are merged in one simultaneous sorted sweep; a column's candidate
// referenced-set is intersected with the set of columns sharing each of its
// values, so a single pass finds every exact inclusion dependency. This is
// the "efficient IND enumeration" alternative the paper cites as standard
// pre-processing; the default pipeline uses hash-based approximate
// containment (profile/ind.h) because BI joins are often not perfectly
// inclusive, but on clean data the two agree (see bench_ext_ind and the
// property tests).
struct SpiderInd {
  ColumnRef dependent;
  ColumnRef referenced;
};

// Finds every exact unary IND between columns of *different* tables.
// Dependent columns must have at least one non-null value. O(total distinct
// values * log(#columns) + output), independent of the number of column
// pairs.
std::vector<SpiderInd> DiscoverExactIndsSpider(
    const std::vector<Table>& tables);

}  // namespace autobi

#endif  // AUTOBI_PROFILE_SPIDER_H_
