#ifndef AUTOBI_PROFILE_COLUMN_PROFILE_H_
#define AUTOBI_PROFILE_COLUMN_PROFILE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "table/table.h"

namespace autobi {

// Precomputed per-column statistics shared by the IND/UCC discoverers, the
// featurizers, and the baselines. Profiling is the only pass over the raw
// data; everything downstream works off these summaries, which is what keeps
// end-to-end inference fast (Figure 5).
struct ColumnProfile {
  ValueType type = ValueType::kNull;
  size_t row_count = 0;
  size_t non_null_count = 0;
  // Distinct canonical keys of all non-null cells, with occurrence counts
  // (counts make containment row-weighted; see Containment below). Kept for
  // the consumers that need the values themselves (EMD's legacy
  // high-cardinality path, tests, debugging); kernels that only need
  // membership/counts use the hash vectors below.
  std::unordered_map<std::string, int32_t> distinct;
  // Hash-sketch view of `distinct` (profile/sketch.h): stable 64-bit FNV-1a
  // hashes of the canonical keys, sorted ascending and strictly increasing
  // (in-column collisions merged), with parallel occurrence counts.
  // Containment runs as a sorted-merge intersection over these vectors, and
  // the first min(k, n) entries double as the column's bottom-k KMV sketch.
  std::vector<uint64_t> distinct_hashes;
  std::vector<int32_t> distinct_counts;
  // Distinct / non-null ratio (1.0 == column is a key candidate).
  double distinct_ratio = 0.0;
  // Numeric min/max (valid only if is_numeric).
  bool is_numeric = false;
  double min_value = 0.0;
  double max_value = 0.0;
  // Sorted sample of numeric values, used for distribution features (EMD).
  std::vector<double> sorted_numeric_sample;
  // Average rendered value length (characters).
  double avg_value_length = 0.0;

  bool IsUnique() const {
    return non_null_count > 0 && distinct.size() == non_null_count;
  }
};

// Profile of every column of a table, plus table-level counts.
struct TableProfile {
  size_t row_count = 0;
  std::vector<ColumnProfile> columns;
};

// Computes a profile for one column. `max_sample` bounds the numeric sample
// retained for distribution features.
ColumnProfile ProfileColumn(const Column& col, size_t max_sample = 512);

// Profiles every column of `table`.
TableProfile ProfileTable(const Table& table, size_t max_sample = 512);

// A schema-shaped profile that never scans rows: per-column types only, zero
// counts and empty distinct sets. Used when a RunContext row/cell budget
// excludes a table from value probing — downstream treats the table exactly
// like an empty (DDL-only) one.
TableProfile MetadataOnlyProfile(const Table& table);

// Profiles every table of a case. Tables are profiled in parallel on the
// shared pool (`threads` as in ResolveThreads: 0 = AUTOBI_THREADS/hardware,
// 1 = serial); output order and contents are thread-count-invariant.
std::vector<TableProfile> ProfileTables(const std::vector<Table>& tables,
                                        size_t max_sample = 512,
                                        int threads = 0);

// Row-weighted containment of A in B: the fraction of A's non-null cells
// whose value appears among B's values. Row-weighting (rather than counting
// distinct values) keeps true FK -> small-dimension joins detectable when a
// handful of distinct junk values pollutes the FK column. 0 if A is empty.
//
// Implemented as a sorted-merge intersection of the columns' distinct-hash
// vectors: no string hashing, contiguous memory. Exact modulo 64-bit FNV
// collisions between distinct canonical keys (probability ~ n^2 / 2^64;
// the sketch property tests verify equality with the string-map reference
// on randomized and corpus data).
double Containment(const ColumnProfile& a, const ColumnProfile& b);

// Legacy reference implementation of Containment over the string map.
// Retained as the oracle for the sketch property tests and the old-vs-new
// micro-benchmark (bench_micro_profile); production call sites use
// Containment.
double ContainmentViaStringMap(const ColumnProfile& a, const ColumnProfile& b);

}  // namespace autobi

#endif  // AUTOBI_PROFILE_COLUMN_PROFILE_H_
