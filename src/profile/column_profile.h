#ifndef AUTOBI_PROFILE_COLUMN_PROFILE_H_
#define AUTOBI_PROFILE_COLUMN_PROFILE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "table/key_view.h"
#include "table/table.h"

namespace autobi {

// Precomputed per-column statistics shared by the IND/UCC discoverers, the
// featurizers, and the baselines. Profiling is the only pass over the raw
// data; everything downstream works off these summaries, which is what keeps
// end-to-end inference fast (Figure 5).
//
// The distinct-value summary is hash-first (see table/key_view.h): the
// canonical keys are materialized once into an arena-backed pool and
// aggregated by their stable 64-bit FNV-1a hashes with a radix sort — no
// per-cell std::string, no per-row string-map operation. The pooled key
// bytes stay recoverable for the consumers that need the values themselves
// (the legacy string-map containment oracle, tests, debugging).
struct ColumnProfile {
  ValueType type = ValueType::kNull;
  size_t row_count = 0;
  size_t non_null_count = 0;
  // Number of distinct canonical keys among non-null cells. Exact (collision
  // runs in the hash aggregation are verified against the pooled key bytes),
  // so IsUnique/distinct_ratio match the legacy string-map definition.
  size_t num_distinct = 0;
  // Hash-sketch view of the distinct values (profile/sketch.h): stable
  // 64-bit FNV-1a hashes of the canonical keys, sorted ascending and
  // strictly increasing (in-column collisions merged), with parallel
  // occurrence counts. Containment runs as a sorted-merge intersection over
  // these vectors, and the first min(k, n) entries double as the column's
  // bottom-k KMV sketch.
  std::vector<uint64_t> distinct_hashes;
  std::vector<int32_t> distinct_counts;
  // Pooled canonical key bytes of the distinct values, parallel to
  // distinct_hashes (for a merged collision run the representative is the
  // key of the lowest row). distinct_key(i) recovers the i-th distinct value
  // without any per-value allocation.
  std::string distinct_pool;
  std::vector<uint64_t> distinct_offsets;  // distinct_hashes.size() + 1.
  // Distinct / non-null ratio (1.0 == column is a key candidate).
  double distinct_ratio = 0.0;
  // Numeric min/max (valid only if is_numeric).
  bool is_numeric = false;
  double min_value = 0.0;
  double max_value = 0.0;
  // Sorted sample of numeric values, used for distribution features (EMD).
  std::vector<double> sorted_numeric_sample;
  // Average rendered value length (characters).
  double avg_value_length = 0.0;
  // Exact total canonical key bytes over all non-null cells
  // (avg_value_length = key_bytes / non_null_count). An integer sum, so
  // append-only deltas merge it exactly without rescanning old rows.
  size_t key_bytes = 0;
  // True 64-bit collision bookkeeping: distinct keys sharing a hash beyond
  // the run representative, ordered by (hash ascending, first-occurrence row
  // ascending), the two vectors parallel. Almost always empty; kept so
  // num_distinct (= distinct_hashes.size() + collision_keys.size()) stays
  // exact AND mergeable under append-only deltas — a cross-batch collision
  // is only detectable if the representative keys travel with the profile.
  std::vector<uint64_t> collision_hashes;
  std::vector<std::string> collision_keys;

  // Canonical key bytes of the i-th distinct value (hash order).
  std::string_view distinct_key(size_t i) const {
    return std::string_view(distinct_pool.data() + distinct_offsets[i],
                            distinct_offsets[i + 1] - distinct_offsets[i]);
  }

  bool IsUnique() const {
    return non_null_count > 0 && num_distinct == non_null_count;
  }
};

// Profile of every column of a table, plus table-level counts.
struct TableProfile {
  size_t row_count = 0;
  std::vector<ColumnProfile> columns;
};

// Computes a profile for one column. `max_sample` bounds the numeric sample
// retained for distribution features. The first form builds the column's
// key view internally; the second reuses a prebuilt view (which must come
// from the same column) so callers that also run UCC/IND kernels pay for the
// view once.
ColumnProfile ProfileColumn(const Column& col, size_t max_sample = 512);
ColumnProfile ProfileColumn(const Column& col, const ColumnKeyView& view,
                            size_t max_sample = 512);

// Legacy reference kernel: the original per-cell KeyAt + string-map path,
// producing a bit-identical ColumnProfile. Retained as the oracle for the
// kernel-equivalence property tests and the old-vs-new micro-benchmark
// (bench_micro_profile); production call sites use ProfileColumn.
ColumnProfile ProfileColumnLegacy(const Column& col, size_t max_sample = 512);

// Profiles every column of `table` (optionally through a prebuilt view of
// the same table).
TableProfile ProfileTable(const Table& table, size_t max_sample = 512);
TableProfile ProfileTable(const Table& table, const TableKeyView& view,
                          size_t max_sample = 512);

// Merges a cached profile forward over an append-only delta: `old_profile`
// must be the profile of `col`'s first old_profile.row_count rows (the
// caller establishes this via the per-column prefix content hash — see
// core/schema_diff.h), and the result is bit-identical to
// ProfileColumn(col) on every field. Key rendering, hashing, and distinct
// aggregation run only over the appended suffix rows; the one full-column
// pass left is the cheap numeric min/max/sample scan, whose strided sample
// positions depend on the total non-null count and so cannot be merged.
ColumnProfile MergeAppendedColumnProfile(const ColumnProfile& old_profile,
                                         const Column& col,
                                         size_t max_sample = 512);

// MergeAppendedColumnProfile over every column of a table; bit-identical to
// ProfileTable(table) under the same prefix contract per column.
TableProfile MergeAppendedTableProfile(const TableProfile& old_profile,
                                       const Table& table,
                                       size_t max_sample = 512);

// A schema-shaped profile that never scans rows: per-column types only, zero
// counts and empty distinct sets. Used when a RunContext row/cell budget
// excludes a table from value probing — downstream treats the table exactly
// like an empty (DDL-only) one.
TableProfile MetadataOnlyProfile(const Table& table);

// Profiles every table of a case. Tables are profiled in parallel on the
// shared pool (`threads` as in ResolveThreads: 0 = AUTOBI_THREADS/hardware,
// 1 = serial); output order and contents are thread-count-invariant.
std::vector<TableProfile> ProfileTables(const std::vector<Table>& tables,
                                        size_t max_sample = 512,
                                        int threads = 0);

// Row-weighted containment of A in B: the fraction of A's non-null cells
// whose value appears among B's values. Row-weighting (rather than counting
// distinct values) keeps true FK -> small-dimension joins detectable when a
// handful of distinct junk values pollutes the FK column. 0 if A is empty.
//
// Implemented as a sorted-merge intersection of the columns' distinct-hash
// vectors, switching to a galloping (exponential) search when the dependent
// side is much smaller — tiny/skewed sets probe a handful of nearby cache
// lines instead of full-width binary searches, so they never lose to the
// legacy string-map kernel. Exact modulo 64-bit FNV collisions between
// distinct canonical keys (probability ~ n^2 / 2^64; the sketch property
// tests verify equality with the string-map reference on randomized and
// corpus data).
double Containment(const ColumnProfile& a, const ColumnProfile& b);

// The legacy distinct-value map of a profile, materialized from the pooled
// keys (key -> occurrence count). Oracle/bench scaffolding, not a hot path.
using DistinctKeyMap = std::unordered_map<std::string, int32_t>;
DistinctKeyMap BuildDistinctKeyMap(const ColumnProfile& p);

// Legacy reference implementation of Containment over string maps. Retained
// as the oracle for the sketch property tests and the old-vs-new
// micro-benchmark; production call sites use Containment. The two-profile
// convenience form materializes both maps per call; the prebuilt-map form is
// what the benchmark times (probe cost only, as the historical kernel paid).
double ContainmentViaStringMap(const ColumnProfile& a, const ColumnProfile& b);
double ContainmentViaStringMap(const DistinctKeyMap& a, size_t a_non_null,
                               const DistinctKeyMap& b);

}  // namespace autobi

#endif  // AUTOBI_PROFILE_COLUMN_PROFILE_H_
