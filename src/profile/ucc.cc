#include "profile/ucc.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>

namespace autobi {

namespace {

// Concatenates the canonical keys of `columns` at row r with an unambiguous
// separator. Returns false if any cell is null. (Legacy-kernel helper; the
// hash-first kernel streams the same bytes through TupleHashFromViews.)
bool TupleKey(const Table& table, const std::vector<int>& columns, size_t r,
              std::string* out) {
  out->clear();
  std::string cell;
  for (int c : columns) {
    if (!table.column(static_cast<size_t>(c)).KeyAt(r, &cell)) return false;
    // Escape the separator so ("a|b","c") != ("a","b|c").
    for (char ch : cell) {
      if (ch == '|' || ch == '\\') out->push_back('\\');
      out->push_back(ch);
    }
    out->push_back('|');
  }
  return true;
}

bool IsSubset(const std::vector<int>& small, const std::vector<int>& big) {
  // Both sorted.
  return std::includes(big.begin(), big.end(), small.begin(), small.end());
}

// Lazily-built per-column key views for the lattice scan. A prebuilt table
// view is used directly; otherwise a column's view is built on first touch,
// so only columns that actually reach an arity >= 2 candidate pay for
// materialization.
class LazyViews {
 public:
  LazyViews(const Table& table, const TableKeyView* prebuilt)
      : table_(table), prebuilt_(prebuilt) {
    if (prebuilt_ == nullptr) own_.resize(table.num_columns());
  }

  const ColumnKeyView& Get(int c) {
    if (prebuilt_ != nullptr) return prebuilt_->column(static_cast<size_t>(c));
    auto& slot = own_[static_cast<size_t>(c)];
    if (slot == nullptr) {
      slot = std::make_unique<ColumnKeyView>(
          table_.column(static_cast<size_t>(c)));
    }
    return *slot;
  }

 private:
  const Table& table_;
  const TableKeyView* prebuilt_;
  std::vector<std::unique_ptr<ColumnKeyView>> own_;
};

// The hash-first uniqueness kernel over prebuilt views: radix-sort the
// non-null-complete (tuple hash, row) pairs, then scan equal-hash runs. Any
// two rows in a run with equal pooled tuples are a true duplicate; unequal
// tuples in a run are a 64-bit collision and do not break uniqueness.
bool UniqueOverViews(const std::vector<const ColumnKeyView*>& cols,
                     size_t rows) {
  // thread_local so the lattice scan (many candidate combinations over the
  // same small table) does not pay a malloc per candidate; both buffers are
  // fully rewritten before being read in each call.
  static thread_local std::vector<HashRow> hr;
  static thread_local std::vector<HashRow> scratch;
  hr.clear();
  hr.reserve(rows);
  uint64_t h = 0;
  for (size_t r = 0; r < rows; ++r) {
    if (TupleHashFromViews(cols, r, &h)) {
      hr.push_back(HashRow{h, static_cast<uint32_t>(r)});
    }
  }
  if (hr.empty()) return false;
  StableRadixSortByHash(&hr, &scratch);
  for (size_t i = 0; i < hr.size();) {
    size_t j = i + 1;
    while (j < hr.size() && hr[j].hash == hr[i].hash) ++j;
    if (j - i > 1) {
      for (size_t x = i; x < j; ++x) {
        for (size_t y = x + 1; y < j; ++y) {
          if (TuplesEqual(cols, hr[x].row, hr[y].row)) return false;
        }
      }
    }
    i = j;
  }
  return true;
}

}  // namespace

bool IsUniqueCombination(const TableKeyView& view,
                         const std::vector<int>& columns) {
  std::vector<const ColumnKeyView*> cols;
  cols.reserve(columns.size());
  size_t rows = 0;
  for (int c : columns) {
    const ColumnKeyView& cv = view.column(static_cast<size_t>(c));
    cols.push_back(&cv);
    rows = cv.size();
  }
  return UniqueOverViews(cols, rows);
}

bool IsUniqueCombination(const Table& table, const std::vector<int>& columns) {
  std::vector<ColumnKeyView> storage;
  storage.reserve(columns.size());
  for (int c : columns) {
    storage.emplace_back(table.column(static_cast<size_t>(c)));
  }
  std::vector<const ColumnKeyView*> cols;
  cols.reserve(storage.size());
  for (const ColumnKeyView& v : storage) cols.push_back(&v);
  return UniqueOverViews(cols, table.num_rows());
}

bool IsUniqueCombinationLegacy(const Table& table,
                               const std::vector<int>& columns) {
  std::unordered_set<std::string> seen;
  seen.reserve(table.num_rows() * 2);
  std::string key;
  size_t non_null_rows = 0;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (!TupleKey(table, columns, r, &key)) continue;
    ++non_null_rows;
    if (!seen.insert(key).second) return false;
  }
  return non_null_rows > 0;
}

std::vector<Ucc> DiscoverUccs(const Table& table, const TableProfile& profile,
                              const UccOptions& options,
                              const TableKeyView* view) {
  std::vector<Ucc> result;
  size_t ncols = table.num_columns();
  if (ncols == 0 || table.num_rows() == 0) return result;

  // Level 1: single columns.
  std::vector<int> eligible;
  for (size_t c = 0; c < ncols; ++c) {
    const ColumnProfile& p = profile.columns[c];
    if (p.non_null_count == 0) continue;
    if (p.distinct_ratio < options.min_distinct_ratio) continue;
    if (p.IsUnique()) {
      result.push_back(Ucc{{static_cast<int>(c)}});
    } else {
      eligible.push_back(static_cast<int>(c));
    }
  }

  // Higher levels: apriori over non-unique eligible columns; any candidate
  // containing a known UCC is non-minimal and skipped.
  LazyViews views(table, view);
  std::vector<std::vector<int>> frontier;
  for (int c : eligible) frontier.push_back({c});
  size_t checks = 0;
  for (size_t arity = 2;
       arity <= options.max_arity && !frontier.empty(); ++arity) {
    std::vector<std::vector<int>> next;
    for (const std::vector<int>& base : frontier) {
      for (int c : eligible) {
        if (c <= base.back()) continue;  // Canonical extension order.
        std::vector<int> cand = base;
        cand.push_back(c);
        // Minimality: skip if a discovered UCC is a subset.
        bool covered = false;
        for (const Ucc& u : result) {
          if (IsSubset(u.columns, cand)) {
            covered = true;
            break;
          }
        }
        if (covered) continue;
        if (++checks > options.max_candidates) return result;
        // Counting prune (pigeonhole): the candidate has at most
        // prod(num_distinct) distinct tuples but at least
        // rows - sum(nulls) non-null-complete rows; fewer possible tuples
        // than rows forces a duplicate, so the scan can be skipped without
        // changing the result.
        uint64_t max_tuples = 1;
        uint64_t min_tuple_rows = table.num_rows();
        for (int cc : cand) {
          const ColumnProfile& p = profile.columns[cc];
          uint64_t d = p.num_distinct;
          if (d != 0 && max_tuples > UINT64_MAX / d) {
            max_tuples = UINT64_MAX;  // Saturate; never prunes.
          } else {
            max_tuples *= d;
          }
          uint64_t nulls = p.row_count - p.non_null_count;
          min_tuple_rows = nulls >= min_tuple_rows ? 0 : min_tuple_rows - nulls;
        }
        bool unique;
        if (max_tuples < min_tuple_rows) {
          unique = false;
        } else if (options.legacy_kernel) {
          unique = IsUniqueCombinationLegacy(table, cand);
        } else {
          std::vector<const ColumnKeyView*> cols;
          cols.reserve(cand.size());
          for (int cc : cand) cols.push_back(&views.Get(cc));
          unique = UniqueOverViews(cols, table.num_rows());
        }
        if (unique) {
          result.push_back(Ucc{cand});
        } else {
          next.push_back(std::move(cand));
        }
      }
    }
    frontier = std::move(next);
  }
  return result;
}

}  // namespace autobi
