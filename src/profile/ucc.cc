#include "profile/ucc.h"

#include <algorithm>
#include <string>
#include <unordered_set>

namespace autobi {

namespace {

// Concatenates the canonical keys of `columns` at row r with an unambiguous
// separator. Returns false if any cell is null.
bool TupleKey(const Table& table, const std::vector<int>& columns, size_t r,
              std::string* out) {
  out->clear();
  std::string cell;
  for (int c : columns) {
    if (!table.column(static_cast<size_t>(c)).KeyAt(r, &cell)) return false;
    // Escape the separator so ("a|b","c") != ("a","b|c").
    for (char ch : cell) {
      if (ch == '|' || ch == '\\') out->push_back('\\');
      out->push_back(ch);
    }
    out->push_back('|');
  }
  return true;
}

bool IsSubset(const std::vector<int>& small, const std::vector<int>& big) {
  // Both sorted.
  return std::includes(big.begin(), big.end(), small.begin(), small.end());
}

}  // namespace

bool IsUniqueCombination(const Table& table, const std::vector<int>& columns) {
  std::unordered_set<std::string> seen;
  seen.reserve(table.num_rows() * 2);
  std::string key;
  size_t non_null_rows = 0;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (!TupleKey(table, columns, r, &key)) continue;
    ++non_null_rows;
    if (!seen.insert(key).second) return false;
  }
  return non_null_rows > 0;
}

std::vector<Ucc> DiscoverUccs(const Table& table, const TableProfile& profile,
                              const UccOptions& options) {
  std::vector<Ucc> result;
  size_t ncols = table.num_columns();
  if (ncols == 0 || table.num_rows() == 0) return result;

  // Level 1: single columns.
  std::vector<int> eligible;
  for (size_t c = 0; c < ncols; ++c) {
    const ColumnProfile& p = profile.columns[c];
    if (p.non_null_count == 0) continue;
    if (p.distinct_ratio < options.min_distinct_ratio) continue;
    if (p.IsUnique()) {
      result.push_back(Ucc{{static_cast<int>(c)}});
    } else {
      eligible.push_back(static_cast<int>(c));
    }
  }

  // Higher levels: apriori over non-unique eligible columns; any candidate
  // containing a known UCC is non-minimal and skipped.
  std::vector<std::vector<int>> frontier;
  for (int c : eligible) frontier.push_back({c});
  size_t checks = 0;
  for (size_t arity = 2;
       arity <= options.max_arity && !frontier.empty(); ++arity) {
    std::vector<std::vector<int>> next;
    for (const std::vector<int>& base : frontier) {
      for (int c : eligible) {
        if (c <= base.back()) continue;  // Canonical extension order.
        std::vector<int> cand = base;
        cand.push_back(c);
        // Minimality: skip if a discovered UCC is a subset.
        bool covered = false;
        for (const Ucc& u : result) {
          if (IsSubset(u.columns, cand)) {
            covered = true;
            break;
          }
        }
        if (covered) continue;
        if (++checks > options.max_candidates) return result;
        if (IsUniqueCombination(table, cand)) {
          result.push_back(Ucc{cand});
        } else {
          next.push_back(std::move(cand));
        }
      }
    }
    frontier = std::move(next);
  }
  return result;
}

}  // namespace autobi
