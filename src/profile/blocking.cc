#include "profile/blocking.h"

#include <algorithm>
#include <numeric>
#include <tuple>

#include "common/parallel.h"
#include "profile/sketch.h"

namespace autobi {

namespace {

// One inverted-index posting: a distinct hash of column `column` of table
// `table`. Sorted by (hash, table, column) so probing is a binary search
// followed by a run walk in deterministic order.
struct Posting {
  uint64_t hash = 0;
  int32_t table = 0;
  int32_t column = 0;
};

bool PostingLess(const Posting& a, const Posting& b) {
  return std::tie(a.hash, a.table, a.column) <
         std::tie(b.hash, b.table, b.column);
}

// The admission decision from aggregated hit counts. Both evaluation paths
// (pair-local binary searches, global-index probing) funnel their IDENTICAL
// integer hit counts through this one function, so the double arithmetic —
// and therefore the admission — is bit-identical between them.
bool AdmitFromHits(const ColumnProbeSet& p, int64_t bottom_hits,
                   int64_t heavy_hits, int64_t weight_hits,
                   const BlockingOptions& options) {
  const double f = options.min_probe_fraction;
  if (p.exact) {
    return weight_hits > 0 &&
           double(weight_hits) >= f * double(p.total_weight);
  }
  if (bottom_hits == 0 && heavy_hits == 0) return false;
  if (!p.bottom.empty() &&
      double(bottom_hits) >= f * double(p.bottom.size())) {
    return true;
  }
  if (!p.heavy.empty() && double(heavy_hits) >= f * double(p.heavy.size())) {
    return true;
  }
  return false;
}

}  // namespace

ColumnProbeSet BuildColumnProbes(const ColumnProfile& profile,
                                 const BlockingOptions& options) {
  const std::vector<uint64_t>& hashes = profile.distinct_hashes;
  const size_t n = hashes.size();
  ColumnProbeSet out;
  if (n == 0) return out;
  if (n <= options.probe_all_below) {
    // Exact mode: every value with its count — admission compares the true
    // row-weighted containment.
    out.exact = true;
    out.bottom = hashes;  // Already sorted/deduped.
    out.weights.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      out.weights.push_back(profile.distinct_counts[i]);
      out.total_weight += profile.distinct_counts[i];
    }
    return out;
  }
  // Bottom-k under a SplitMix64 remix of the stable hash. The profile
  // hashes are FNV-1a of the key bytes, whose weak avalanche clusters
  // sequential keys ("101", "102", ...) into nearly-consecutive hash runs —
  // a raw-hash bottom-k prefix then samples one cluster, not the column
  // (observed on the corpus: 285/324 shared values, 0/24 prefix hits). The
  // remix is a bijection with full avalanche, so the k smallest remixed
  // values are a uniform sample of the distinct values, and being a pure
  // function of the hash it stays deterministic and pair-local.
  {
    const size_t k = std::min(options.bottom_probes, n);
    std::vector<std::pair<uint64_t, uint64_t>> mixed(n);
    for (size_t i = 0; i < n; ++i) mixed[i] = {SplitMix64(hashes[i]), hashes[i]};
    std::partial_sort(mixed.begin(), mixed.begin() + long(k), mixed.end());
    out.bottom.reserve(k);
    for (size_t i = 0; i < k; ++i) out.bottom.push_back(mixed[i].second);
    std::sort(out.bottom.begin(), out.bottom.end());
  }
  if (options.heavy_probes > 0) {
    // Top hashes by occurrence count, ties by hash ascending. The hash
    // vector is strictly increasing, so index order IS hash order and the
    // comparator below is a deterministic total order.
    const size_t f = std::min(options.heavy_probes, n);
    std::vector<size_t> idx(n);
    std::iota(idx.begin(), idx.end(), size_t{0});
    std::partial_sort(idx.begin(), idx.begin() + long(f), idx.end(),
                      [&](size_t a, size_t b) {
                        if (profile.distinct_counts[a] !=
                            profile.distinct_counts[b]) {
                          return profile.distinct_counts[a] >
                                 profile.distinct_counts[b];
                        }
                        return a < b;
                      });
    out.heavy.reserve(f);
    for (size_t k = 0; k < f; ++k) out.heavy.push_back(hashes[idx[k]]);
    std::sort(out.heavy.begin(), out.heavy.end());
  }
  return out;
}

bool AdmitColumnPair(const ColumnProbeSet& probes,
                     const std::vector<uint64_t>& ref_hashes,
                     const BlockingOptions& options) {
  if (probes.bottom.empty() || ref_hashes.empty()) return false;
  int64_t bottom_hits = 0;
  int64_t heavy_hits = 0;
  int64_t weight_hits = 0;
  for (size_t i = 0; i < probes.bottom.size(); ++i) {
    if (std::binary_search(ref_hashes.begin(), ref_hashes.end(),
                           probes.bottom[i])) {
      ++bottom_hits;
      if (probes.exact) weight_hits += probes.weights[i];
    }
  }
  for (uint64_t h : probes.heavy) {
    if (std::binary_search(ref_hashes.begin(), ref_hashes.end(), h)) {
      ++heavy_hits;
    }
  }
  return AdmitFromHits(probes, bottom_hits, heavy_hits, weight_hits, options);
}

PairBlocking ComputePairBlocking(const TableProfile& dep,
                                 const TableProfile& ref,
                                 const BlockingOptions& options) {
  PairBlocking out;
  for (int a = 0; a < int(dep.columns.size()); ++a) {
    ColumnProbeSet probes = BuildColumnProbes(dep.columns[size_t(a)], options);
    if (probes.bottom.empty()) continue;
    for (int b = 0; b < int(ref.columns.size()); ++b) {
      if (AdmitColumnPair(probes, ref.columns[size_t(b)].distinct_hashes,
                          options)) {
        out.admitted.emplace_back(a, b);
      }
    }
  }
  return out;
}

std::map<std::pair<int, int>, PairBlocking> BuildBlockingPlan(
    const std::vector<TableProfile>& profiles, const BlockingOptions& options,
    BlockingStats* stats, int threads, const RunContext* ctx) {
  const int n = int(profiles.size());
  BlockingStats local;
  local.table_pairs_total = n > 0 ? size_t(n) * size_t(n - 1) : 0;
  {
    size_t col_sum = 0;
    size_t col_sq = 0;
    for (const TableProfile& p : profiles) {
      col_sum += p.columns.size();
      col_sq += p.columns.size() * p.columns.size();
    }
    // Ordered cross-table column pairs: (sum cols)^2 - sum cols^2.
    local.column_pairs_total = col_sum * col_sum - col_sq;
  }

  // --- Build: every distinct hash of every column becomes one posting.
  std::vector<Posting> postings;
  {
    size_t total = 0;
    for (const TableProfile& p : profiles) {
      for (const ColumnProfile& c : p.columns) total += c.distinct_hashes.size();
    }
    postings.reserve(total);
  }
  for (int ti = 0; ti < n; ++ti) {
    const TableProfile& p = profiles[size_t(ti)];
    for (int c = 0; c < int(p.columns.size()); ++c) {
      const std::vector<uint64_t>& hashes =
          p.columns[size_t(c)].distinct_hashes;
      if (hashes.empty()) continue;
      ++local.columns_indexed;
      for (uint64_t h : hashes) postings.push_back({h, ti, c});
    }
  }
  local.index_entries = postings.size();
  std::sort(postings.begin(), postings.end(), PostingLess);

  // --- Probe: each dependent table's columns against the index, one pool
  // item per dependent table (slot-per-table output keeps the plan
  // thread-count invariant).
  struct Hit {
    int tj;
    int a;
    int b;
    bool operator<(const Hit& o) const {
      return std::tie(tj, a, b) < std::tie(o.tj, o.a, o.b);
    }
    bool operator==(const Hit& o) const {
      return tj == o.tj && a == o.a && b == o.b;
    }
  };
  std::vector<size_t> probe_counts(size_t(n), 0);
  std::vector<std::vector<Hit>> hits_by_table = ParallelMap(
      size_t(n),
      [&](size_t ti) {
        std::vector<Hit> hits;
        // Table-boundary stop poll: a tripped run stops issuing probes;
        // the same stop gates every downstream pair scan, so the caller's
        // degradation marking already covers the skipped work.
        if (ctx != nullptr && ctx->StopRequested()) return hits;
        const TableProfile& p = profiles[ti];
        size_t issued = 0;
        for (int a = 0; a < int(p.columns.size()); ++a) {
          ColumnProbeSet probes =
              BuildColumnProbes(p.columns[size_t(a)], options);
          if (probes.bottom.empty()) continue;
          issued += probes.issued();
          // Per-(referenced column) hit accumulators for this dependent
          // column — the same integers AdmitColumnPair would count pair by
          // pair, gathered through the index instead.
          struct Counts {
            int64_t bottom = 0;
            int64_t heavy = 0;
            int64_t weight = 0;
          };
          std::map<std::pair<int, int>, Counts> counts;  // (tj, b) -> hits.
          auto walk = [&](uint64_t h, bool is_bottom, int64_t weight) {
            Posting key{h, 0, 0};
            auto it = std::lower_bound(postings.begin(), postings.end(), key,
                                       PostingLess);
            for (; it != postings.end() && it->hash == h; ++it) {
              if (it->table == int(ti)) continue;
              Counts& c = counts[{it->table, it->column}];
              if (is_bottom) {
                ++c.bottom;
                c.weight += weight;
              } else {
                ++c.heavy;
              }
            }
          };
          for (size_t i = 0; i < probes.bottom.size(); ++i) {
            walk(probes.bottom[i], /*is_bottom=*/true,
                 probes.exact ? probes.weights[i] : 0);
          }
          for (uint64_t h : probes.heavy) {
            walk(h, /*is_bottom=*/false, 0);
          }
          for (const auto& [key, c] : counts) {
            if (AdmitFromHits(probes, c.bottom, c.heavy, c.weight, options)) {
              hits.push_back({key.first, a, key.second});
            }
          }
        }
        std::sort(hits.begin(), hits.end());
        probe_counts[ti] = issued;
        return hits;
      },
      threads);

  std::map<std::pair<int, int>, PairBlocking> plan;
  for (int ti = 0; ti < n; ++ti) {
    local.probe_hashes += probe_counts[size_t(ti)];
    for (const Hit& h : hits_by_table[size_t(ti)]) {
      plan[{ti, h.tj}].admitted.emplace_back(h.a, h.b);
      ++local.column_pairs_admitted;
    }
  }
  // Hits were sorted (tj, a, b) per dependent table, so each pair's
  // admitted list is already (a, b)-lexicographic — the exhaustive unary
  // loop order restricted to admitted pairs.
  local.column_pairs_pruned =
      local.column_pairs_total - local.column_pairs_admitted;
  local.table_pairs_active = plan.size();
  if (stats != nullptr) *stats = local;
  return plan;
}

}  // namespace autobi
