#ifndef AUTOBI_PROFILE_SKETCH_H_
#define AUTOBI_PROFILE_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <string>
#include <vector>

#include "table/table.h"

namespace autobi {

// Hash-sketch primitives for the profiling layer. The join-discovery kernels
// (Containment, CompositeContainment, the KMV pre-screen of DiscoverInds)
// operate on stable 64-bit hashes of canonical keys instead of on the keys
// themselves: candidate generation then touches only contiguous sorted
// uint64 vectors — no per-pair string hashing, no pointer chasing.
//
// Stability contract: StableHash64 is FNV-1a with the classic 64-bit
// offset/prime constants. It is a pure function of the key bytes — no seed,
// no address-sensitivity — so hashes are identical across runs, thread
// counts, and platforms, and two columns agree on a value's hash iff they
// agree on its canonical key (modulo 64-bit collisions; see the exactness
// note on Containment in column_profile.h).

// Stable FNV-1a 64-bit hash of a byte string. This is the same hash the EMD
// feature has always used for its hashed-key distribution (profile/emd.cc),
// which keeps the two layers' views of a value consistent.
inline uint64_t StableHash64(std::string_view s) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

// Maps a 64-bit hash to [0, 1), monotonically in the hash value. Matches the
// historical HashToUnit of profile/emd.cc: (h >> 11) * 2^-53.
inline double HashToUnitInterval(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

// Sorted-ascending distinct hashes with parallel occurrence counts. Equal
// hashes (collisions within a column) are merged by summing counts so the
// hash vector is strictly increasing — a precondition of the sorted-merge
// intersection in Containment and of the KMV prefix views below.
struct SortedHashCounts {
  std::vector<uint64_t> hashes;
  std::vector<int32_t> counts;
};

// Builds the sorted hash/count vectors from a distinct-value map. Historical
// helper of the string-map profiling path; production profiles now fill
// these vectors directly from the columnar key view (table/key_view.h), so
// this survives for the legacy-oracle scaffolding and tests.
SortedHashCounts BuildSortedHashCounts(
    const std::unordered_map<std::string, int32_t>& distinct);

// KMV (bottom-k minimum values) containment estimate. Because the per-column
// hash vectors are sorted ascending, the bottom-k sketch of a column is
// simply the first min(k, n) entries — no extra storage is kept per column.
//
// The estimate restricts both sides to the hash region [0, tau] where
// tau = min(k-th smallest hash of A, k-th smallest hash of B) (or the
// column's max hash when it has <= k distinct values). Below tau both
// columns' distinct sets are fully known, and a uniform-hashing argument
// makes A's below-tau values a uniform sample of A's distinct values; the
// row-weighted hit ratio over that sample estimates the exact row-weighted
// containment. `sample` is the number of A-distinct values that
// participated — callers must require a minimum sample before trusting the
// estimate. (The PR 5 IND pre-screen built on this was retired in PR 9 in
// favor of inverted-index blocking — profile/blocking.h — which prunes
// whole table pairs instead of individual merges; the kernel survives as a
// standalone estimator for tests and tooling.)
struct KmvEstimate {
  double containment = 0.0;  // Estimated row-weighted containment of A in B.
  size_t sample = 0;         // Distinct A-values below the threshold.
};
KmvEstimate EstimateContainment(const std::vector<uint64_t>& a_hashes,
                                const std::vector<int32_t>& a_counts,
                                const std::vector<uint64_t>& b_hashes,
                                size_t k);

// SplitMix64 finalizer: a strong, stable 64 -> 64 bit mixer. Shared by the
// k-MCA-CC memo signatures and the content hashes below so every layer's
// notion of "mixing" agrees.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

// Content hash of a column: a stable function of the column name, declared
// type, and every cell (nulls included, order-sensitive). Two columns have
// equal hashes iff they are byte-identical (modulo 64-bit collisions), across
// runs, platforms and thread counts. This is the key of the cross-request
// profile caches (core/predict_cache.h): an unchanged column re-uploaded to
// the prediction service hashes identically and skips re-profiling.
uint64_t ColumnContentHash(const Column& column);

// ColumnContentHash restricted to the column's first `rows` cells:
// byte-identical to ColumnContentHash of the column truncated to that length
// (`rows` must be <= column.size(); rows == column.size() gives exactly
// ColumnContentHash). This is how the schema-diff stage
// (core/schema_diff.h) proves a table is an append-only extension of a
// cached one — the old per-column hashes must reappear as prefix hashes of
// the new columns.
uint64_t ColumnContentHashPrefix(const Column& column, size_t rows);

// Name-free content hash of a column: declared type + every cell, the name
// excluded. Two columns agree iff their cells (and type) are byte-identical
// regardless of what they are called — the signal the schema-diff stage uses
// to classify a column/table rename as "same cells, new name".
uint64_t ColumnCellsHash(const Column& column);

// ColumnCellsHash restricted to the column's first `rows` cells (the prefix
// analogue; rows == column.size() gives exactly ColumnCellsHash).
uint64_t ColumnCellsHashPrefix(const Column& column, size_t rows);

// Recomposes the named content hash from a column's name and an already
// computed cells hash: ColumnContentHash(col) ==
// ColumnContentHashFromCells(col.name(), ColumnCellsHash(col)), and likewise
// for the prefix forms. Callers that need both hashes of a column (the
// schema-diff snapshot stage) use this to pay a single pass over the cells.
uint64_t ColumnContentHashFromCells(std::string_view name,
                                    uint64_t cells_hash);

// Content hash of a whole table: name + per-column content hashes, order
// sensitive, SplitMix64-combined. Cost is one linear pass over the cell
// bytes — roughly an order of magnitude cheaper than profiling the table.
uint64_t TableContentHash(const Table& table);

// TableContentHash recomposed from precomputed per-column content hashes
// (column_hashes[c] == ColumnContentHash(table.column(c))). The snapshot
// stage derives the table hash from the column hashes it already holds.
uint64_t TableContentHashFromColumnHashes(
    std::string_view name, const std::vector<uint64_t>& column_hashes);

// Content hash of an ordered table set (a whole prediction case).
uint64_t TablesContentHash(const std::vector<Table>& tables);

// TablesContentHash recomposed from precomputed per-table content hashes
// (table_hashes[i] == TableContentHash(tables[i])). Lets callers that
// already hashed every table (the schema-diff stage) derive the case hash
// without another pass over the cell bytes.
uint64_t TablesContentHashFromHashes(const std::vector<uint64_t>& table_hashes);

// Streaming hash of the composite tuple of `columns` at row r. Byte-for-byte
// equivalent to StableHash64 of the escaped rendering "v1|v2|...|" with '|'
// and '\' backslash-escaped inside values (the TupleKey convention of
// profile/ucc.cc), but never materializes the concatenated string. Returns
// false if any cell is null (null-containing tuples do not participate in
// composite containment, matching SQL key semantics).
bool TupleHash(const Table& table, const std::vector<int>& columns, size_t r,
               uint64_t* out, std::string* scratch);

}  // namespace autobi

#endif  // AUTOBI_PROFILE_SKETCH_H_
