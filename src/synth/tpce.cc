#include "synth/tpc.h"
#include "synth/tpc_util.h"

namespace autobi {

// TPC-E: 32 tables, ~45 FK relationships (OLTP). The schema forms the
// hub-and-spoke clusters the paper highlights (customer cluster joining
// through CUSTOMER, market cluster through SECURITY/COMPANY, trade cluster
// through TRADE) — the reason Auto-BI works on OLTP despite not being
// designed for it (Section 5.3).
BiCase GenerateTpcE(double scale, Rng& rng) {
  SchemaBuilder b;
  size_t customers = ScaleRows(scale, 300);
  size_t accounts = ScaleRows(scale, 450);
  size_t companies = ScaleRows(scale, 150);
  size_t securities = ScaleRows(scale, 200);
  size_t trades = ScaleRows(scale, 2500);
  size_t brokers = ScaleRows(scale, 30);
  size_t addresses = ScaleRows(scale, 400);

  // --- Reference tables (no outgoing FKs).
  b.AddTable({"zip_code",
              ScaleRows(scale, 200),
              {StrKey("zc_code", "Z", 5), TextCol("zc_town"),
               TextCol("zc_div")}});
  b.AddTable({"status_type",
              5,
              {StrKey("st_id", "ST", 2), CatCol("st_name",
                                                {"ACTIVE", "COMPLETED",
                                                 "PENDING", "CANCELED",
                                                 "SUBMITTED"})}});
  b.AddTable({"trade_type",
              5,
              {StrKey("tt_id", "TT", 2),
               CatCol("tt_name", {"MARKET BUY", "MARKET SELL", "STOP LOSS",
                                  "LIMIT BUY", "LIMIT SELL"}),
               IntCol("tt_is_sell", 0, 1), IntCol("tt_is_mrkt", 0, 1)}});
  b.AddTable({"taxrate",
              ScaleRows(scale, 60),
              {StrKey("tx_id", "TX", 3), TextCol("tx_name"),
               NumCol("tx_rate", 0, 0.5)}});
  b.AddTable({"exchange",
              4,
              {StrKey("ex_id", "EX", 4),
               CatCol("ex_name", {"NYSE", "NASDAQ", "AMEX", "PCX"}),
               IntCol("ex_num_symb", 100, 10000), IntCol("ex_open", 900, 930),
               IntCol("ex_close", 1600, 1630)}});
  b.AddTable({"sector",
              12,
              {StrKey("sc_id", "SC", 2), TextCol("sc_name")}});
  b.AddTable({"charge",
              15,
              {IntCol("ch_c_tier", 1, 3), NumCol("ch_chrg", 0, 100)}});

  // --- Customer cluster (hub: customer).
  b.AddTable({"address",
              addresses,
              {Pk("ad_id"), TextCol("ad_line1"), TextCol("ad_line2", 0.5),
               TextCol("ad_ctry")}});
  b.AddTable({"customer",
              customers,
              {Pk("c_id"), StrKey("c_tax_id", "C", 9), TextCol("c_l_name"),
               TextCol("c_f_name"), CatCol("c_gndr", {"M", "F"}),
               IntCol("c_tier", 1, 3), DateCol("c_dob"),
               TextCol("c_email_1")}});
  b.AddTable({"customer_account",
              accounts,
              {Pk("ca_id"), TextCol("ca_name"), NumCol("ca_bal", 0, 1000000),
               IntCol("ca_tax_st", 0, 2)}});
  b.AddTable({"customer_taxrate", ScaleRows(scale, 400), {}});
  b.AddTable({"account_permission",
              ScaleRows(scale, 300),
              {StrKey("ap_tax_id", "P", 9), CatCol("ap_acl", {"0000", "0001",
                                                              "0011"}),
               TextCol("ap_l_name"), TextCol("ap_f_name")}});
  b.AddTable({"watch_list", ScaleRows(scale, 120), {Pk("wl_id")}});
  b.AddTable({"watch_item", ScaleRows(scale, 600), {}});

  // --- Broker cluster.
  b.AddTable({"broker",
              brokers,
              {Pk("b_id"), TextCol("b_name"), IntCol("b_num_trades", 0,
                                                     100000),
               NumCol("b_comm_total", 0, 500000)}});
  b.AddTable({"commission_rate",
              ScaleRows(scale, 80),
              {IntCol("cr_c_tier", 1, 3), IntCol("cr_from_qty", 0, 10000),
               IntCol("cr_to_qty", 1, 100000), NumCol("cr_rate", 0, 1)}});

  // --- Market cluster (hubs: company, security).
  b.AddTable({"industry",
              ScaleRows(scale, 40),
              {StrKey("in_id", "IN", 2), TextCol("in_name")}});
  b.AddTable({"company",
              companies,
              {Pk("co_id"), StrKey("co_name_id", "CO", 6), TextCol("co_name"),
               TextCol("co_ceo"), TextCol("co_desc"),
               DateCol("co_open_date")}});
  b.AddTable({"company_competitor", ScaleRows(scale, 200), {}});
  b.AddTable({"security",
              securities,
              {StrKey("s_symb", "S", 6), TextCol("s_issue"),
               TextCol("s_name"), IntCol("s_num_out", 1000, 10000000),
               DateCol("s_start_date"), NumCol("s_dividend", 0, 10)}});
  b.AddTable({"daily_market",
              ScaleRows(scale, 1500),
              {DateCol("dm_date"), NumCol("dm_close", 1, 500),
               NumCol("dm_high", 1, 550), NumCol("dm_low", 1, 450),
               IntCol("dm_vol", 100, 1000000)}});
  b.AddTable({"financial",
              ScaleRows(scale, 600),
              {IntCol("fi_year", 1995, 2005), IntCol("fi_qtr", 1, 4),
               NumCol("fi_revenue", 0, 1e9), NumCol("fi_net_earn", -1e8,
                                                    1e8)}});
  b.AddTable({"last_trade",
              securities,
              {NumCol("lt_price", 1, 500), NumCol("lt_open_price", 1, 500),
               IntCol("lt_vol", 0, 1000000)}});
  b.AddTable({"news_item",
              ScaleRows(scale, 150),
              {Pk("ni_id"), TextCol("ni_headline"), TextCol("ni_summary"),
               DateCol("ni_dts"), TextCol("ni_author", 0.4)}});
  b.AddTable({"news_xref", ScaleRows(scale, 300), {}});

  // --- Trade cluster (hub: trade).
  b.AddTable({"trade",
              trades,
              {Pk("t_id"), DateCol("t_dts"), IntCol("t_qty", 1, 1000),
               NumCol("t_bid_price", 1, 500), NumCol("t_trade_price", 1, 500,
                                                     0.1),
               NumCol("t_chrg", 0, 100), NumCol("t_comm", 0, 100),
               IntCol("t_lifo", 0, 1)}});
  b.AddTable({"trade_history",
              ScaleRows(scale, 5000),
              {DateCol("th_dts")}});
  b.AddTable({"trade_request",
              ScaleRows(scale, 300),
              {IntCol("tr_qty", 1, 1000), NumCol("tr_bid_price", 1, 500)}});
  b.AddTable({"settlement",
              trades,
              {CatCol("se_cash_type", {"Margin", "Cash Account"}),
               DateCol("se_cash_due_date"), NumCol("se_amt", 0, 500000)}});
  b.AddTable({"cash_transaction",
              ScaleRows(scale, 1800),
              {DateCol("ct_dts"), NumCol("ct_amt", -100000, 100000),
               TextCol("ct_name")}});
  b.AddTable({"holding",
              ScaleRows(scale, 900),
              {Pk("h_seq"), DateCol("h_dts"), NumCol("h_price", 1, 500),
               IntCol("h_qty", 1, 1000)}});
  b.AddTable({"holding_history",
              ScaleRows(scale, 1500),
              {IntCol("hh_before_qty", 0, 1000),
               IntCol("hh_after_qty", 0, 1000)}});
  b.AddTable({"holding_summary",
              ScaleRows(scale, 500),
              {IntCol("hs_qty", 1, 10000)}});

  // --- The ~45 FK relationships.
  auto fk = [&](const std::string& t, const std::string& c,
                const std::string& rt, const std::string& rc,
                double nulls = 0.0) {
    b.AddFkColumn(t, c, rt, rc, /*skew=*/0.4, /*dangling=*/0.0, nulls);
  };
  // Customer cluster.
  fk("address", "ad_zc_code", "zip_code", "zc_code");
  fk("customer", "c_ad_id", "address", "ad_id");
  fk("customer", "c_st_id", "status_type", "st_id");
  fk("customer_account", "ca_c_id", "customer", "c_id");
  fk("customer_account", "ca_b_id", "broker", "b_id");
  fk("customer_taxrate", "cx_c_id", "customer", "c_id");
  fk("customer_taxrate", "cx_tx_id", "taxrate", "tx_id");
  fk("account_permission", "ap_ca_id", "customer_account", "ca_id");
  fk("watch_list", "wl_c_id", "customer", "c_id");
  fk("watch_item", "wi_wl_id", "watch_list", "wl_id");
  fk("watch_item", "wi_s_symb", "security", "s_symb");
  // Broker cluster.
  fk("broker", "b_st_id", "status_type", "st_id");
  fk("commission_rate", "cr_tt_id", "trade_type", "tt_id");
  fk("commission_rate", "cr_ex_id", "exchange", "ex_id");
  // Market cluster.
  fk("exchange", "ex_ad_id", "address", "ad_id");
  fk("industry", "in_sc_id", "sector", "sc_id");
  fk("company", "co_st_id", "status_type", "st_id");
  fk("company", "co_in_id", "industry", "in_id");
  fk("company", "co_ad_id", "address", "ad_id");
  fk("company_competitor", "cp_co_id", "company", "co_id");
  fk("company_competitor", "cp_comp_co_id", "company", "co_id");
  fk("company_competitor", "cp_in_id", "industry", "in_id");
  fk("security", "s_st_id", "status_type", "st_id");
  fk("security", "s_ex_id", "exchange", "ex_id");
  fk("security", "s_co_id", "company", "co_id");
  fk("daily_market", "dm_s_symb", "security", "s_symb");
  fk("financial", "fi_co_id", "company", "co_id");
  fk("last_trade", "lt_s_symb", "security", "s_symb");
  fk("news_xref", "nx_ni_id", "news_item", "ni_id");
  fk("news_xref", "nx_co_id", "company", "co_id");
  // Trade cluster.
  fk("trade", "t_st_id", "status_type", "st_id");
  fk("trade", "t_tt_id", "trade_type", "tt_id");
  fk("trade", "t_s_symb", "security", "s_symb");
  fk("trade", "t_ca_id", "customer_account", "ca_id");
  fk("trade_history", "th_t_id", "trade", "t_id");
  fk("trade_history", "th_st_id", "status_type", "st_id");
  fk("trade_request", "tr_t_id", "trade", "t_id");
  fk("trade_request", "tr_tt_id", "trade_type", "tt_id");
  fk("trade_request", "tr_s_symb", "security", "s_symb");
  fk("trade_request", "tr_b_id", "broker", "b_id");
  fk("settlement", "se_t_id", "trade", "t_id");
  fk("cash_transaction", "ct_t_id", "trade", "t_id");
  fk("holding", "h_t_id", "trade", "t_id");
  fk("holding", "h_ca_id", "customer_account", "ca_id");
  fk("holding", "h_s_symb", "security", "s_symb");
  fk("holding_history", "hh_h_t_id", "holding", "h_seq");
  fk("holding_history", "hh_t_id", "trade", "t_id");
  fk("holding_summary", "hs_ca_id", "customer_account", "ca_id");
  fk("holding_summary", "hs_s_symb", "security", "s_symb");
  fk("charge", "ch_tt_id", "trade_type", "tt_id");

  BiCase out = b.Generate("TPC-E", rng);
  out.schema_type = SchemaType::kOther;
  return out;
}

}  // namespace autobi
