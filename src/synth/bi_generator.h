#ifndef AUTOBI_SYNTH_BI_GENERATOR_H_
#define AUTOBI_SYNTH_BI_GENERATOR_H_

#include "common/rng.h"
#include "core/bi_model.h"

namespace autobi {

// Parameters of the synthetic BI-model generator that stands in for the
// paper's harvested .pbix corpus (DESIGN.md §1). The noise knobs reproduce
// the failure modes the paper reports for local methods: generic column
// names, accidentally-overlapping surrogate keys, dirty (non-inclusive) FKs,
// 1:1 entity splits and role-playing dimensions.
struct BiGenOptions {
  // Total number of tables in the case (after 1:1 splits).
  int num_tables = 6;

  // Row-count ranges (log-uniform-ish sampling inside).
  size_t min_dim_rows = 12;
  size_t max_dim_rows = 400;
  size_t min_fact_rows = 150;
  size_t max_fact_rows = 1500;

  // --- Naming noise.
  double generic_pk_name_prob = 0.6;  // Dim PK named just "id"/"key"/"code".
  double abbrev_fk_prob = 0.45;        // FK uses an abbreviation ("cust_id").
  double dim_prefix_prob = 0.3;        // Table named "dim_customer" etc.
  // The whole model uses TPC-style per-table column prefixes
  // ("c_custkey", "l_partkey").
  double column_prefix_prob = 0.25;
  // A chained parent dim's PK carries the child's entity too
  // ("customer_segment_id"), making it name-confusable with the fact's
  // "customer_id" FK — the paper's Example 1.
  double related_pk_name_prob = 0.4;
  // FK columns occasionally carry cryptic names ("ref_id", "c_id") that
  // give no entity signal at all — the name noise the paper highlights in
  // harvested models.
  double cryptic_fk_prob = 0.38;

  // --- Structural noise.
  double key_offset_prob = 0.08;   // Dim key range starts away from 1 (most
                                   // dims share 1..N, so surrogate ranges
                                   // overlap accidentally).
  // Dims carry a second near-key column ("code") whose values overlap the
  // PK range with a small shift — a plausible but wrong join target.
  double alternate_key_prob = 0.3;
  // A dim copies another dim's exact size (and usually key base), making
  // containment and distribution features tie between true and wrong
  // targets.
  double size_tie_prob = 0.5;
  double string_key_prob = 0.3;    // String business keys ("C00042").
  double one_to_one_prob = 0.15;   // Chance a dim is split into a 1:1 pair.
  double dangling_fk_prob = 0.35;  // Chance an FK column has dirty values.
  double shared_dim_prob = 0.5;    // Constellations: facts share dims.
  double role_playing_prob = 0.2;  // Fact holds 2 FKs to one dim (ship/order
                                   // date).
  double decoy_column_prob = 0.5;  // Extra status/sequence decoy columns.
  double snowflake_chain_prob = 0.55;  // Dim chains to a parent dim.
  // Incomplete ground truth: users forget to define some joins in their BI
  // models (the paper's Appendix A motivates label transitivity with this).
  // The data still joins; only the recorded relationship is missing. This
  // injects label noise in training and caps measurable precision on the
  // benchmark, like real harvested models do.
  double missing_gt_prob = 0.03;
};

// Generates one BI case (tables + ground truth + schema type). Deterministic
// given the Rng state.
BiCase GenerateBiCase(const BiGenOptions& options, Rng& rng);

}  // namespace autobi

#endif  // AUTOBI_SYNTH_BI_GENERATOR_H_
