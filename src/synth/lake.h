#ifndef AUTOBI_SYNTH_LAKE_H_
#define AUTOBI_SYNTH_LAKE_H_

#include "common/rng.h"
#include "core/bi_model.h"

namespace autobi {

// Synthetic data-lake generator (PR 9). Where bi_generator.h models ONE
// harvested BI case (a handful of tables, one connected schema graph), a
// lake is what blocking and the partitioned solve exist for: hundreds of
// tables forming many small DISCONNECTED star/snowflake islands, the way a
// departmental lake accretes unrelated extracts. Ground truth contains only
// the within-island joins; islands share nothing but (adversarially) names
// and sometimes key ranges:
//   - Column names are UNPREFIXED entity names ("customer_id"): two islands
//     that drew the same dimension entity collide by name, so any
//     name-driven candidate pruning would produce false joins. Only values
//     separate them — which is exactly what the blocking index probes.
//   - Key ranges are island-offset by default (island i counts surrogates
//     from 1 + i * 100003), so cross-island column pairs are value-disjoint
//     and blocking prunes them. With `shared_key_range_prob` an island
//     instead counts from 1 like everyone else: those near-joins survive
//     blocking by design and must be rejected (or kept — the oracle
//     decides) by the exact containment checks downstream.
// A lake whose table budget ends with a 1-table remainder gets a standalone
// dimension: an edgeless singleton component for the partition path.
struct LakeGenOptions {
  int num_tables = 100;
  // Tables per island, inclusive (islands are clipped by the table budget).
  int min_island = 3;
  int max_island = 8;
  // Row-count ranges. Small on purpose: lake benchmarks sweep table COUNT,
  // and per-table cost must not drown the pair-enumeration effect.
  size_t min_dim_rows = 24;
  size_t max_dim_rows = 120;
  size_t min_fact_rows = 60;
  size_t max_fact_rows = 240;
  // Chance a non-first dimension chains to an earlier dim of its island
  // (snowflake edge, in the ground truth).
  double snowflake_prob = 0.35;
  // Chance a dimension reuses an entity some earlier island already used —
  // the adversarial same-name-different-data case.
  double shared_dim_name_prob = 0.4;
  // Chance an island's keys count from 1 instead of its private offset
  // (string-key prefixes lose their island tag too), overlapping every
  // other shared-range island. Kept small: shared-range islands overlap
  // PAIRWISE, so this adds an (p*n)^2 quadratic term to the admitted-pair
  // curve by construction.
  double shared_key_range_prob = 0.08;
  // Chance a dimension uses string business keys ("c1", "c2", ...).
  double string_key_prob = 0.25;
};

// Generates one lake case (tables + within-island ground truth).
// Deterministic given the Rng state; table order is island-major.
BiCase GenerateLake(const LakeGenOptions& options, Rng& rng);

}  // namespace autobi

#endif  // AUTOBI_SYNTH_LAKE_H_
