#ifndef AUTOBI_SYNTH_NAMES_H_
#define AUTOBI_SYNTH_NAMES_H_

#include <string>
#include <vector>

#include "common/rng.h"

namespace autobi {

// Vocabulary + naming-noise model for the synthetic BI corpus (DESIGN.md §1).
// Real harvested BI models use messy identifiers: generic PK names ("id",
// "code"), abbreviations ("cust_id"), inconsistent casing, and entity names
// that live only in table names. These helpers reproduce those habits.

// A business entity with typical attribute names (used as dimension tables).
struct EntityTemplate {
  const char* name;
  std::vector<const char*> attributes;
  // True for small enumeration-like dimensions (few rows).
  bool small = false;
  // Optional parent entity for snowflake hierarchies ("" = none); e.g.
  // city -> country.
  const char* parent = "";
};

// The dimension-entity pool.
const std::vector<EntityTemplate>& EntityPool();

// Fact-table subjects ("sales", "orders", ...), with measure column names.
struct FactTemplate {
  const char* name;
  std::vector<const char*> measures;
};
const std::vector<FactTemplate>& FactPool();

// Identifier casing conventions seen in the wild; one is picked per case.
enum class NameStyle { kSnake, kCamel, kPascal, kFlat };

// Renders tokens in the given style ("customer","id" -> "customer_id" /
// "customerId" / "CustomerID"-ish / "customerid").
std::string StyleTokens(const std::vector<std::string>& tokens,
                        NameStyle style);

// Abbreviates a token the way schema authors do ("customer" -> "cust",
// "quantity" -> "qty"); falls back to prefix truncation.
std::string Abbreviate(const std::string& token, Rng& rng);

}  // namespace autobi

#endif  // AUTOBI_SYNTH_NAMES_H_
