#include "synth/tpc_util.h"

#include <algorithm>

namespace autobi {

ColumnSpec Pk(const std::string& name, long base) {
  ColumnSpec c;
  c.name = name;
  c.kind = ColumnKind::kSurrogateKey;
  c.key_base = base;
  return c;
}

ColumnSpec StrKey(const std::string& name, const std::string& prefix,
                  int pad) {
  ColumnSpec c;
  c.name = name;
  c.kind = ColumnKind::kStringKey;
  c.prefix = prefix;
  c.pad_width = pad;
  return c;
}

ColumnSpec IntCol(const std::string& name, double lo, double hi,
                  double nulls) {
  ColumnSpec c;
  c.name = name;
  c.kind = ColumnKind::kInt;
  c.min_value = lo;
  c.max_value = hi;
  c.null_fraction = nulls;
  return c;
}

ColumnSpec NumCol(const std::string& name, double lo, double hi,
                  double nulls) {
  ColumnSpec c;
  c.name = name;
  c.kind = ColumnKind::kDouble;
  c.min_value = lo;
  c.max_value = hi;
  c.null_fraction = nulls;
  return c;
}

ColumnSpec TextCol(const std::string& name, double nulls) {
  ColumnSpec c;
  c.name = name;
  c.kind = ColumnKind::kText;
  c.null_fraction = nulls;
  return c;
}

ColumnSpec DateCol(const std::string& name, double nulls) {
  ColumnSpec c;
  c.name = name;
  c.kind = ColumnKind::kDate;
  c.min_value = 0;
  c.max_value = 2500;
  c.null_fraction = nulls;
  return c;
}

ColumnSpec CatCol(const std::string& name, std::vector<std::string> pool,
                  double nulls) {
  ColumnSpec c;
  c.name = name;
  c.kind = ColumnKind::kCategory;
  c.categories = std::move(pool);
  c.null_fraction = nulls;
  return c;
}

ColumnSpec ModKey(const std::string& name, const std::string& ref_table,
                  const std::string& ref_column) {
  ColumnSpec c;
  c.name = name;
  c.kind = ColumnKind::kModKey;
  c.ref_table = ref_table;
  c.ref_column = ref_column;
  return c;
}

ColumnSpec DivKey(const std::string& name, const std::string& ref_table,
                  const std::string& ref_column, size_t divisor) {
  ColumnSpec c;
  c.name = name;
  c.kind = ColumnKind::kDivKey;
  c.ref_table = ref_table;
  c.ref_column = ref_column;
  c.divisor = divisor;
  return c;
}

size_t ScaleRows(double scale, size_t base, size_t floor) {
  return std::max(floor, size_t(double(base) * scale));
}

}  // namespace autobi
