#include "synth/schema_builder.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "common/check.h"
#include "common/strings.h"

namespace autobi {

namespace {

constexpr const char* kTextWords[] = {
    "alpha", "beta",  "gamma", "delta", "omega", "prime", "north", "south",
    "east",  "west",  "blue",  "green", "red",   "gold",  "iron",  "stone",
    "river", "ridge", "lake",  "hill",  "rapid", "quiet", "misc",  "extra",
};

std::string RandomText(Rng& rng) {
  size_t words = 2 + rng.NextBelow(4);
  std::string out;
  for (size_t i = 0; i < words; ++i) {
    if (i > 0) out += " ";
    out += kTextWords[rng.NextBelow(std::size(kTextWords))];
  }
  return out;
}

std::string DateString(long day_offset) {
  // Days since 2019-01-01, rendered with a simple proleptic calculation.
  static const int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  long year = 2019;
  long day = day_offset;
  for (;;) {
    bool leap = (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
    long in_year = leap ? 366 : 365;
    if (day < in_year) break;
    day -= in_year;
    ++year;
  }
  bool leap = (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
  int month = 0;
  for (; month < 12; ++month) {
    long in_month = kDays[month] + (month == 1 && leap ? 1 : 0);
    if (day < in_month) break;
    day -= in_month;
  }
  return StrFormat("%04ld-%02d-%02ld", year, month + 1, day + 1);
}

// Copies cell `row` of `src` into `dst` (types must match).
void CopyCell(const Column& src, size_t row, Column* dst) {
  if (src.IsNull(row)) {
    dst->AppendNull();
    return;
  }
  switch (src.type()) {
    case ValueType::kInt:
      dst->AppendInt(src.Int(row));
      break;
    case ValueType::kDouble:
      dst->AppendDouble(src.Double(row));
      break;
    case ValueType::kString:
      dst->AppendString(src.Str(row));
      break;
    case ValueType::kNull:
      dst->AppendNull();
      break;
  }
}

}  // namespace

int SchemaBuilder::AddTable(TableSpec spec) {
  tables_.push_back(std::move(spec));
  return static_cast<int>(tables_.size()) - 1;
}

void SchemaBuilder::AddRelationship(RelationshipSpec rel) {
  relationships_.push_back(std::move(rel));
}

void SchemaBuilder::AddFkColumn(const std::string& table,
                                const std::string& column,
                                const std::string& ref_table,
                                const std::string& ref_column, double skew,
                                double dangling, double null_fraction) {
  for (TableSpec& t : tables_) {
    if (t.name != table) continue;
    ColumnSpec col;
    col.name = column;
    col.kind = ColumnKind::kForeignKey;
    col.ref_table = ref_table;
    col.ref_column = ref_column;
    col.fk_skew = skew;
    col.fk_dangling = dangling;
    col.null_fraction = null_fraction;
    t.columns.push_back(std::move(col));
    AddRelationship(RelationshipSpec{table, {column}, ref_table, {ref_column},
                                     JoinKind::kNToOne});
    return;
  }
  // invariant: generator schemas only reference tables they created.
  AUTOBI_CHECK_MSG(false, "AddFkColumn: unknown table");
}

void SchemaBuilder::AddOneToOne(const std::string& table_a,
                                const std::string& column_a,
                                const std::string& table_b,
                                const std::string& column_b) {
  AddRelationship(RelationshipSpec{table_a, {column_a}, table_b, {column_b},
                                   JoinKind::kOneToOne});
}

BiCase SchemaBuilder::Generate(const std::string& case_name, Rng& rng) const {
  BiCase out;
  out.name = case_name;

  // Topological order over FK dependencies (Kahn); cycles fall back to
  // declaration order for the remaining tables.
  std::map<std::string, int> table_index;
  for (size_t i = 0; i < tables_.size(); ++i) {
    table_index[tables_[i].name] = static_cast<int>(i);
  }
  std::vector<std::vector<int>> dependents(tables_.size());
  std::vector<int> pending(tables_.size(), 0);
  for (size_t i = 0; i < tables_.size(); ++i) {
    for (const ColumnSpec& c : tables_[i].columns) {
      if (c.kind != ColumnKind::kForeignKey && c.kind != ColumnKind::kModKey &&
          c.kind != ColumnKind::kDivKey) {
        continue;
      }
      auto it = table_index.find(c.ref_table);
      // invariant: generator schemas only reference tables they created.
      AUTOBI_CHECK_MSG(it != table_index.end(), "FK references unknown table");
      if (it->second == static_cast<int>(i)) continue;  // Self-reference.
      dependents[size_t(it->second)].push_back(static_cast<int>(i));
      ++pending[i];
    }
  }
  std::vector<int> order;
  std::vector<int> queue;
  for (size_t i = 0; i < tables_.size(); ++i) {
    if (pending[i] == 0) queue.push_back(static_cast<int>(i));
  }
  while (!queue.empty()) {
    int t = queue.back();
    queue.pop_back();
    order.push_back(t);
    for (int d : dependents[size_t(t)]) {
      if (--pending[size_t(d)] == 0) queue.push_back(d);
    }
  }
  for (size_t i = 0; i < tables_.size(); ++i) {
    if (std::find(order.begin(), order.end(), int(i)) == order.end()) {
      order.push_back(static_cast<int>(i));  // Cycle remainder.
    }
  }

  // Which (table, column) pairs participate in a declared 1:1 join on the
  // FK ("from") side? Those sample referenced rows without replacement.
  std::map<std::pair<std::string, std::string>, bool> one_to_one_fk;
  for (const RelationshipSpec& rel : relationships_) {
    if (rel.kind != JoinKind::kOneToOne) continue;
    for (const std::string& c : rel.from_columns) {
      one_to_one_fk[{rel.from_table, c}] = true;
    }
  }
  // Composite-FK grouping: FK columns of a table belonging to one
  // multi-column relationship must pick the *same* referenced row.
  // rel_of[table][column] = relationship index (only for composite rels).
  std::map<std::pair<std::string, std::string>, int> composite_rel;
  for (size_t r = 0; r < relationships_.size(); ++r) {
    const RelationshipSpec& rel = relationships_[r];
    if (rel.from_columns.size() < 2) continue;
    for (size_t k = 0; k < rel.from_columns.size(); ++k) {
      composite_rel[{rel.from_table, rel.from_columns[k]}] =
          static_cast<int>(r);
    }
  }

  out.tables.resize(tables_.size());
  for (int ti : order) {
    const TableSpec& spec = tables_[size_t(ti)];
    Table& table = out.tables[size_t(ti)];
    table.set_name(spec.name);
    size_t rows = spec.rows;

    // Pre-sample referenced row indices per composite relationship.
    std::map<int, std::vector<size_t>> composite_rows;
    for (const auto& [key, rel_idx] : composite_rel) {
      if (key.first != spec.name) continue;
      if (composite_rows.count(rel_idx)) continue;
      const RelationshipSpec& rel = relationships_[size_t(rel_idx)];
      int ref_ti = table_index.at(rel.to_table);
      size_t ref_rows = out.tables[size_t(ref_ti)].num_rows();
      if (ref_rows == 0) ref_rows = tables_[size_t(ref_ti)].rows;
      std::vector<size_t>& picks = composite_rows[rel_idx];
      picks.resize(rows);
      for (size_t r = 0; r < rows; ++r) picks[r] = rng.NextBelow(ref_rows);
    }

    for (const ColumnSpec& cs : spec.columns) {
      switch (cs.kind) {
        case ColumnKind::kSurrogateKey: {
          Column& col = table.AddColumn(cs.name, ValueType::kInt);
          for (size_t r = 0; r < rows; ++r) {
            col.AppendInt(cs.key_base + static_cast<long>(r));
          }
          break;
        }
        case ColumnKind::kStringKey: {
          Column& col = table.AddColumn(cs.name, ValueType::kString);
          for (size_t r = 0; r < rows; ++r) {
            long n = cs.key_base + static_cast<long>(r);
            if (cs.pad_width > 0) {
              col.AppendString(
                  StrFormat("%s%0*ld", cs.prefix.c_str(), cs.pad_width, n));
            } else {
              col.AppendString(StrFormat("%s%ld", cs.prefix.c_str(), n));
            }
          }
          break;
        }
        case ColumnKind::kForeignKey: {
          int ref_ti = table_index.at(cs.ref_table);
          const Table& ref = out.tables[size_t(ref_ti)];
          int ref_ci = ref.ColumnIndex(cs.ref_column);
          AUTOBI_CHECK_MSG(ref_ci >= 0 && ref.num_rows() > 0,
                           "FK referenced column not materialized");
          const Column& ref_col = ref.column(size_t(ref_ci));
          Column& col = table.AddColumn(
              cs.name, ref_col.type() == ValueType::kNull ? ValueType::kInt
                                                          : ref_col.type());
          bool without_replacement =
              one_to_one_fk.count({spec.name, cs.name}) > 0;
          auto comp_it = composite_rel.find({spec.name, cs.name});
          std::vector<size_t> permutation;
          if (without_replacement) {
            permutation.resize(ref.num_rows());
            std::iota(permutation.begin(), permutation.end(), 0);
            rng.Shuffle(permutation);
          }
          long dangle_counter = 0;
          for (size_t r = 0; r < rows; ++r) {
            if (cs.null_fraction > 0 && rng.NextBool(cs.null_fraction)) {
              col.AppendNull();
              continue;
            }
            if (cs.fk_dangling > 0 && rng.NextBool(cs.fk_dangling)) {
              // Dangling value outside the referenced set (dirty FK). Like
              // real dirty data, most dirt is a sentinel (-1/0/"unknown");
              // only a minority are unique orphan values, so distinct-value
              // containment stays high for true joins.
              bool sentinel = rng.NextBool(0.75);
              if (col.type() == ValueType::kInt) {
                col.AppendInt(sentinel ? (rng.NextBool() ? -1 : 0)
                                       : 1000000000L + (++dangle_counter));
              } else if (col.type() == ValueType::kDouble) {
                col.AppendDouble(sentinel ? -1.0
                                          : 1e12 + double(++dangle_counter));
              } else {
                col.AppendString(sentinel
                                     ? std::string("unknown")
                                     : StrFormat("zz_%ld", ++dangle_counter));
              }
              continue;
            }
            size_t pick;
            if (without_replacement) {
              pick = permutation[r % permutation.size()];
            } else if (comp_it != composite_rel.end()) {
              pick = composite_rows.at(comp_it->second)[r];
            } else if (cs.fk_skew > 0) {
              pick = rng.NextZipf(ref.num_rows(), cs.fk_skew);
            } else {
              pick = rng.NextBelow(ref.num_rows());
            }
            CopyCell(ref_col, pick, &col);
          }
          break;
        }
        case ColumnKind::kModKey:
        case ColumnKind::kDivKey: {
          int ref_ti = table_index.at(cs.ref_table);
          const Table& ref = out.tables[size_t(ref_ti)];
          int ref_ci = ref.ColumnIndex(cs.ref_column);
          AUTOBI_CHECK_MSG(ref_ci >= 0 && ref.num_rows() > 0,
                           "ModKey/DivKey referenced column missing");
          const Column& ref_col = ref.column(size_t(ref_ci));
          Column& col = table.AddColumn(cs.name, ref_col.type());
          size_t div = std::max<size_t>(1, cs.divisor);
          for (size_t r = 0; r < rows; ++r) {
            // kDivKey uses a "diagonal" (r%div + r/div) so that, paired with
            // a kModKey over `div` values, tuples stay unique while both
            // components cover their full referenced domains.
            size_t pick = (cs.kind == ColumnKind::kModKey)
                              ? r % ref.num_rows()
                              : (r % div + r / div) % ref.num_rows();
            CopyCell(ref_col, pick, &col);
          }
          break;
        }
        case ColumnKind::kInt: {
          Column& col = table.AddColumn(cs.name, ValueType::kInt);
          for (size_t r = 0; r < rows; ++r) {
            if (cs.null_fraction > 0 && rng.NextBool(cs.null_fraction)) {
              col.AppendNull();
            } else {
              col.AppendInt(rng.NextInt(long(cs.min_value),
                                        long(cs.max_value)));
            }
          }
          break;
        }
        case ColumnKind::kDouble: {
          Column& col = table.AddColumn(cs.name, ValueType::kDouble);
          for (size_t r = 0; r < rows; ++r) {
            if (cs.null_fraction > 0 && rng.NextBool(cs.null_fraction)) {
              col.AppendNull();
            } else {
              col.AppendDouble(rng.NextDouble(cs.min_value, cs.max_value));
            }
          }
          break;
        }
        case ColumnKind::kCategory: {
          Column& col = table.AddColumn(cs.name, ValueType::kString);
          // invariant: generators always supply a category vocabulary.
          AUTOBI_CHECK(!cs.categories.empty());
          for (size_t r = 0; r < rows; ++r) {
            if (cs.null_fraction > 0 && rng.NextBool(cs.null_fraction)) {
              col.AppendNull();
            } else {
              col.AppendString(cs.categories[rng.NextBelow(
                  cs.categories.size())]);
            }
          }
          break;
        }
        case ColumnKind::kText: {
          Column& col = table.AddColumn(cs.name, ValueType::kString);
          for (size_t r = 0; r < rows; ++r) {
            if (cs.null_fraction > 0 && rng.NextBool(cs.null_fraction)) {
              col.AppendNull();
            } else {
              col.AppendString(RandomText(rng));
            }
          }
          break;
        }
        case ColumnKind::kDate: {
          Column& col = table.AddColumn(cs.name, ValueType::kString);
          long lo = long(cs.min_value);
          long hi = std::max(lo + 1, long(cs.max_value));
          for (size_t r = 0; r < rows; ++r) {
            if (cs.null_fraction > 0 && rng.NextBool(cs.null_fraction)) {
              col.AppendNull();
            } else {
              col.AppendString(DateString(rng.NextInt(lo, hi)));
            }
          }
          break;
        }
      }
    }
    AUTOBI_CHECK(table.Validate());  // invariant: generated columns align.
  }

  // Ground-truth joins from the declared relationships.
  for (const RelationshipSpec& rel : relationships_) {
    Join join;
    join.kind = rel.kind;
    join.from.table = table_index.at(rel.from_table);
    join.to.table = table_index.at(rel.to_table);
    for (const std::string& c : rel.from_columns) {
      int ci = out.tables[size_t(join.from.table)].ColumnIndex(c);
      // invariant: relationships name columns the builder just emitted.
      AUTOBI_CHECK_MSG(ci >= 0, "relationship from-column missing");
      join.from.columns.push_back(ci);
    }
    for (const std::string& c : rel.to_columns) {
      int ci = out.tables[size_t(join.to.table)].ColumnIndex(c);
      // invariant: relationships name columns the builder just emitted.
      AUTOBI_CHECK_MSG(ci >= 0, "relationship to-column missing");
      join.to.columns.push_back(ci);
    }
    out.ground_truth.joins.push_back(join.Normalized());
  }
  return out;
}

}  // namespace autobi
