#include "synth/tpc.h"
#include "synth/tpc_util.h"

namespace autobi {

// TPC-H: 8 tables, 8 FK relationships (including the composite
// lineitem -> partsupp join on (l_partkey, l_suppkey)).
BiCase GenerateTpcH(double scale, Rng& rng) {
  SchemaBuilder b;
  // Floors keep the spec's size ordering (supplier/customer >> nation) even
  // at tiny scales.
  size_t parts = ScaleRows(scale, 200, 60);
  size_t suppliers = ScaleRows(scale, 50, 35);
  size_t customers = ScaleRows(scale, 150, 60);
  size_t orders = ScaleRows(scale, 1500);
  size_t lineitems = ScaleRows(scale, 4000);

  b.AddTable({"region",
              5,
              {Pk("r_regionkey", 0),
               CatCol("r_name",
                      {"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}),
               TextCol("r_comment")}});
  b.AddTable({"nation",
              25,
              {Pk("n_nationkey", 0), TextCol("n_name"), TextCol("n_comment")}});
  b.AddTable({"supplier",
              suppliers,
              {Pk("s_suppkey"), TextCol("s_name"), TextCol("s_address"),
               TextCol("s_phone"), NumCol("s_acctbal", -999, 9999),
               TextCol("s_comment")}});
  b.AddTable({"customer",
              customers,
              {Pk("c_custkey"), TextCol("c_name"), TextCol("c_address"),
               TextCol("c_phone"), NumCol("c_acctbal", -999, 9999),
               CatCol("c_mktsegment", {"AUTOMOBILE", "BUILDING", "FURNITURE",
                                       "HOUSEHOLD", "MACHINERY"}),
               TextCol("c_comment")}});
  b.AddTable(
      {"part",
       parts,
       {Pk("p_partkey"), TextCol("p_name"), TextCol("p_mfgr"),
        TextCol("p_brand"), TextCol("p_type"), IntCol("p_size", 1, 50),
        CatCol("p_container", {"SM CASE", "LG BOX", "MED BAG", "JUMBO JAR"}),
        NumCol("p_retailprice", 900, 2000), TextCol("p_comment")}});
  // partsupp: composite PK (ps_partkey, ps_suppkey); 4 suppliers per part,
  // generated with deterministic cross keys so tuples are unique.
  b.AddTable({"partsupp",
              parts * 4,
              {ModKey("ps_partkey", "part", "p_partkey"),
               DivKey("ps_suppkey", "supplier", "s_suppkey", parts),
               IntCol("ps_availqty", 1, 9999),
               NumCol("ps_supplycost", 1, 1000), TextCol("ps_comment")}});
  b.AddTable({"orders",
              orders,
              {Pk("o_orderkey"),
               CatCol("o_orderstatus", {"F", "O", "P"}),
               NumCol("o_totalprice", 800, 500000), DateCol("o_orderdate"),
               CatCol("o_orderpriority",
                      {"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED",
                       "5-LOW"}),
               TextCol("o_clerk"), IntCol("o_shippriority", 0, 0),
               TextCol("o_comment")}});
  b.AddTable({"lineitem",
              lineitems,
              {IntCol("l_linenumber", 1, 7),
               NumCol("l_quantity", 1, 50), NumCol("l_extendedprice", 1, 95000),
               NumCol("l_discount", 0, 0.1), NumCol("l_tax", 0, 0.08),
               CatCol("l_returnflag", {"A", "N", "R"}),
               CatCol("l_linestatus", {"F", "O"}), DateCol("l_shipdate"),
               DateCol("l_commitdate"), DateCol("l_receiptdate"),
               CatCol("l_shipinstruct",
                      {"COLLECT COD", "DELIVER IN PERSON", "NONE",
                       "TAKE BACK RETURN"}),
               CatCol("l_shipmode", {"AIR", "FOB", "MAIL", "RAIL", "REG AIR",
                                     "SHIP", "TRUCK"}),
               TextCol("l_comment")}});

  // The 8 spec relationships.
  b.AddFkColumn("nation", "n_regionkey", "region", "r_regionkey");
  b.AddFkColumn("supplier", "s_nationkey", "nation", "n_nationkey");
  b.AddFkColumn("customer", "c_nationkey", "nation", "n_nationkey");
  b.AddRelationship({"partsupp", {"ps_partkey"}, "part", {"p_partkey"},
                     JoinKind::kNToOne});
  b.AddRelationship({"partsupp", {"ps_suppkey"}, "supplier", {"s_suppkey"},
                     JoinKind::kNToOne});
  b.AddFkColumn("orders", "o_custkey", "customer", "c_custkey", 0.5);
  b.AddFkColumn("lineitem", "l_orderkey", "orders", "o_orderkey", 0.3);
  // Composite FK: (l_partkey, l_suppkey) -> partsupp(ps_partkey, ps_suppkey).
  {
    ColumnSpec pk;
    pk.name = "l_partkey";
    pk.kind = ColumnKind::kForeignKey;
    pk.ref_table = "partsupp";
    pk.ref_column = "ps_partkey";
    ColumnSpec sk;
    sk.name = "l_suppkey";
    sk.kind = ColumnKind::kForeignKey;
    sk.ref_table = "partsupp";
    sk.ref_column = "ps_suppkey";
    // Insert before the descriptive columns for realism.
    TableSpec& li = b.table(7);
    li.columns.insert(li.columns.begin(), sk);
    li.columns.insert(li.columns.begin(), pk);
    b.AddRelationship({"lineitem",
                       {"l_partkey", "l_suppkey"},
                       "partsupp",
                       {"ps_partkey", "ps_suppkey"},
                       JoinKind::kNToOne});
  }

  BiCase out = b.Generate("TPC-H", rng);
  out.schema_type = SchemaType::kSnowflake;
  return out;
}

}  // namespace autobi
