#ifndef AUTOBI_SYNTH_CLASSIC_DBS_H_
#define AUTOBI_SYNTH_CLASSIC_DBS_H_

#include "common/rng.h"
#include "core/bi_model.h"

namespace autobi {

// The four classic sample databases of Table 6, each in a denormalized
// ("OLAP-like", star/snowflake warehouse) and a normalized ("OLTP-like")
// variant — 8 test databases total. Schemas are transcribed from the public
// sample databases; data is seeded synthetic (DESIGN.md §1).
enum class ClassicDb {
  kFoodMart,
  kNorthwind,
  kAdventureWorks,
  kWorldWideImporters,
};

const char* ClassicDbName(ClassicDb db);

BiCase GenerateClassicDb(ClassicDb db, bool olap, double scale, Rng& rng);

}  // namespace autobi

#endif  // AUTOBI_SYNTH_CLASSIC_DBS_H_
