#ifndef AUTOBI_SYNTH_CORPUS_H_
#define AUTOBI_SYNTH_CORPUS_H_

#include <string>
#include <vector>

#include "core/bi_model.h"
#include "synth/bi_generator.h"

namespace autobi {

// Builders for the corpora that stand in for the paper's harvested BI
// models: an offline training corpus, a "wild collection" mirroring the
// simple harvested population (Table 2), and the stratified REAL benchmark
// (Table 3) bucketized by table count exactly as in Section 5.1.

struct CorpusOptions {
  uint64_t seed = 42;
  // Number of training cases (drawn from the same generator family as the
  // benchmark but from a disjoint seed stream — no leakage).
  size_t training_cases = 240;
  // Cases per REAL-benchmark bucket; the paper uses 100 (1000 cases total).
  size_t cases_per_bucket = 20;
  BiGenOptions gen;
};

// The 10 table-count buckets of Tables 7/8: {4,...,10,[11-15],[16-20],21+}.
inline constexpr int kNumBuckets = 10;
int BucketOfTableCount(int num_tables);       // -1 if below 4.
const char* BucketLabel(int bucket);

struct RealBenchmark {
  std::vector<BiCase> cases;
  std::vector<int> bucket_of;  // Bucket index per case.
};

// Training corpus: mostly small models (the harvested population skews
// simple), sizes 3-12.
std::vector<BiCase> BuildTrainingCorpus(const CorpusOptions& options);

// The full "wild collection" population for Table 2 statistics: table counts
// concentrated at 2-6 like the harvested 100K+ models.
std::vector<BiCase> BuildWildCollection(const CorpusOptions& options,
                                        size_t num_cases);

// Stratified REAL benchmark (Table 3): `cases_per_bucket` cases in each of
// the 10 buckets.
RealBenchmark BuildRealBenchmark(const CorpusOptions& options);

// Descriptive statistics matching the rows of Tables 2/3.
struct CorpusStats {
  double rows_avg = 0, rows_p50 = 0, rows_p90 = 0, rows_p95 = 0;
  double cols_avg = 0, cols_p50 = 0, cols_p90 = 0, cols_p95 = 0;
  double tables_avg = 0, tables_p50 = 0, tables_p90 = 0, tables_p95 = 0;
  double edges_avg = 0, edges_p50 = 0, edges_p90 = 0, edges_p95 = 0;
};
CorpusStats ComputeCorpusStats(const std::vector<BiCase>& cases);

}  // namespace autobi

#endif  // AUTOBI_SYNTH_CORPUS_H_
