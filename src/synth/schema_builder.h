#ifndef AUTOBI_SYNTH_SCHEMA_BUILDER_H_
#define AUTOBI_SYNTH_SCHEMA_BUILDER_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/bi_model.h"
#include "table/table.h"

namespace autobi {

// Declarative schema + data generator shared by every synthetic workload
// (the BI-model corpus, the four TPC benchmarks, and the classic sample
// databases). Tables are declared with typed column specs; Generate()
// materializes data with referential integrity and returns a BiCase whose
// ground truth contains exactly the declared FK / 1:1 relationships.

enum class ColumnKind {
  kSurrogateKey,  // Dense int key: base, base+1, ...
  kStringKey,     // Unique string key: "<prefix><n>" (optionally zero-padded).
  kForeignKey,    // Values drawn from a referenced column.
  kInt,           // Uniform int in [min_value, max_value].
  kDouble,        // Uniform double in [min_value, max_value].
  kCategory,      // String drawn from a small category pool.
  kText,          // Pseudo-text filler (low distinctness).
  kDate,          // "YYYY-MM-DD" strings over a range.
  // Deterministic references used to build composite primary keys with
  // guaranteed tuple uniqueness (e.g. TPC-H partsupp = part x supplier):
  kModKey,        // value = ref[row % ref_rows]
  kDivKey,        // value = ref[(row % divisor + row / divisor) % ref_rows]
};

struct ColumnSpec {
  std::string name;
  ColumnKind kind = ColumnKind::kInt;
  // kSurrogateKey: first value (keys are base .. base+rows-1).
  long key_base = 1;
  // kStringKey: value prefix; pad_width > 0 zero-pads the counter.
  std::string prefix;
  int pad_width = 0;
  // kForeignKey / kModKey / kDivKey: referenced table/column (by name).
  std::string ref_table;
  std::string ref_column;
  // kDivKey divisor.
  size_t divisor = 1;
  double fk_skew = 0.0;        // Zipf exponent; 0 = uniform.
  double fk_dangling = 0.0;    // Fraction of FK values outside the ref set.
  // kInt / kDouble ranges.
  double min_value = 0.0;
  double max_value = 100.0;
  // kCategory pool.
  std::vector<std::string> categories;
  // Any column: fraction of nulls.
  double null_fraction = 0.0;
};

struct TableSpec {
  std::string name;
  size_t rows = 100;
  std::vector<ColumnSpec> columns;
};

// A declared relationship that becomes both a ground-truth join and (for
// FK columns) the value-sampling dependency.
struct RelationshipSpec {
  std::string from_table;
  std::vector<std::string> from_columns;
  std::string to_table;
  std::vector<std::string> to_columns;
  JoinKind kind = JoinKind::kNToOne;
};

class SchemaBuilder {
 public:
  // Adds a table spec; returns its index.
  int AddTable(TableSpec spec);
  TableSpec& table(int index) { return tables_[size_t(index)]; }

  // Declares a ground-truth relationship. FK columns involved must have
  // matching kForeignKey specs (AddFkColumn is the convenient path).
  void AddRelationship(RelationshipSpec rel);

  // Convenience: appends an FK column to `table` referencing
  // ref_table.ref_column and records the N:1 ground-truth join.
  void AddFkColumn(const std::string& table, const std::string& column,
                   const std::string& ref_table, const std::string& ref_column,
                   double skew = 0.0, double dangling = 0.0,
                   double null_fraction = 0.0);

  // Convenience: records a 1:1 ground-truth join between two key columns
  // (the generator keeps their value sets aligned when the second column is
  // declared as an FK with dangling == 0, or as an identical surrogate key).
  void AddOneToOne(const std::string& table_a, const std::string& column_a,
                   const std::string& table_b, const std::string& column_b);

  // Materializes all tables (topological order over FK dependencies) and
  // returns the case with ground truth filled in.
  BiCase Generate(const std::string& case_name, Rng& rng) const;

 private:
  std::vector<TableSpec> tables_;
  std::vector<RelationshipSpec> relationships_;
};

}  // namespace autobi

#endif  // AUTOBI_SYNTH_SCHEMA_BUILDER_H_
