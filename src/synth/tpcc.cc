#include "synth/tpc.h"
#include "synth/tpc_util.h"

namespace autobi {

// TPC-C: 9 tables, 10 FK relationships (OLTP). The spec's composite keys
// (district keyed by (d_w_id, d_id), etc.) are flattened to globally-unique
// surrogate ids, preserving the relationship graph the paper evaluates
// against while keeping candidate INDs unary (DESIGN.md §1 records this
// simplification).
BiCase GenerateTpcC(double scale, Rng& rng) {
  SchemaBuilder b;
  size_t warehouses = ScaleRows(scale, 8);
  size_t districts = warehouses * 10;
  size_t customers = ScaleRows(scale, 600);
  size_t items = ScaleRows(scale, 300);
  size_t stocks = ScaleRows(scale, 1200);
  size_t orders = ScaleRows(scale, 1500);
  size_t order_lines = ScaleRows(scale, 4500);
  size_t history = ScaleRows(scale, 1200);
  size_t new_orders = ScaleRows(scale, 450);

  b.AddTable({"warehouse",
              warehouses,
              {Pk("w_id"), TextCol("w_name"), TextCol("w_street_1"),
               TextCol("w_city"), CatCol("w_state", {"CA", "NY", "TX", "WA"}),
               StrKey("w_zip", "1", 8), NumCol("w_tax", 0, 0.2),
               NumCol("w_ytd", 0, 900000)}});
  b.AddTable({"district",
              districts,
              {Pk("d_id"), TextCol("d_name"), TextCol("d_street_1"),
               TextCol("d_city"), CatCol("d_state", {"CA", "NY", "TX", "WA"}),
               StrKey("d_zip", "2", 8), NumCol("d_tax", 0, 0.2),
               NumCol("d_ytd", 0, 90000), IntCol("d_next_o_id", 1, 10000)}});
  b.AddTable({"customer",
              customers,
              {Pk("c_id"), TextCol("c_first"), CatCol("c_middle", {"OE"}),
               TextCol("c_last"), TextCol("c_street_1"), TextCol("c_city"),
               CatCol("c_state", {"CA", "NY", "TX", "WA"}),
               StrKey("c_zip", "3", 8), TextCol("c_phone"),
               DateCol("c_since"), CatCol("c_credit", {"GC", "BC"}),
               NumCol("c_credit_lim", 0, 50000),
               NumCol("c_discount", 0, 0.5), NumCol("c_balance", -10, 10)}});
  b.AddTable({"item",
              items,
              {Pk("i_id"), IntCol("i_im_id", 1, 10000), TextCol("i_name"),
               NumCol("i_price", 1, 100), TextCol("i_data")}});
  b.AddTable({"stock",
              stocks,
              {Pk("s_id"), IntCol("s_quantity", 10, 100),
               TextCol("s_dist_01"), TextCol("s_dist_02"),
               NumCol("s_ytd", 0, 1000), IntCol("s_order_cnt", 0, 100),
               IntCol("s_remote_cnt", 0, 10), TextCol("s_data")}});
  b.AddTable({"orders",
              orders,
              {Pk("o_id"), DateCol("o_entry_d"),
               IntCol("o_carrier_id", 1, 10, 0.3),
               IntCol("o_ol_cnt", 5, 15), IntCol("o_all_local", 0, 1)}});
  b.AddTable({"new_order", new_orders, {Pk("no_seq")}});
  b.AddTable({"order_line",
              order_lines,
              {Pk("ol_seq"), IntCol("ol_number", 1, 15),
               DateCol("ol_delivery_d", 0.25), IntCol("ol_quantity", 1, 10),
               NumCol("ol_amount", 0, 10000), TextCol("ol_dist_info")}});
  b.AddTable({"history",
              history,
              {DateCol("h_date"), NumCol("h_amount", 1, 5000),
               TextCol("h_data")}});

  // The 10 spec relationships.
  b.AddFkColumn("district", "d_w_id", "warehouse", "w_id");
  b.AddFkColumn("customer", "c_d_id", "district", "d_id", 0.3);
  b.AddFkColumn("stock", "s_w_id", "warehouse", "w_id");
  b.AddFkColumn("stock", "s_i_id", "item", "i_id", 0.0);
  b.AddFkColumn("orders", "o_c_id", "customer", "c_id", 0.4);
  b.AddFkColumn("new_order", "no_o_id", "orders", "o_id");
  b.AddFkColumn("order_line", "ol_o_id", "orders", "o_id", 0.2);
  b.AddFkColumn("order_line", "ol_supply_s_id", "stock", "s_id", 0.3);
  b.AddFkColumn("history", "h_c_id", "customer", "c_id", 0.4);
  b.AddFkColumn("history", "h_d_id", "district", "d_id", 0.3);

  BiCase out = b.Generate("TPC-C", rng);
  out.schema_type = SchemaType::kOther;
  return out;
}

}  // namespace autobi
