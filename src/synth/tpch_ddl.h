#ifndef AUTOBI_SYNTH_TPCH_DDL_H_
#define AUTOBI_SYNTH_TPCH_DDL_H_

#include "common/rng.h"
#include "common/status.h"
#include "core/bi_model.h"

namespace autobi {

// DDL-driven TPC-H workload: the 8-table schema is defined as a standard SQL
// CREATE TABLE script and ingested through the production ParseSqlDdl
// surface (table/sql_ddl.h); scaled synthetic rows are then materialized
// into the *parsed* shape. This exercises the sql_ddl path with a real
// schema and gives the profiling/UCC benchmarks a recognizable gnarly
// workload (wide lineitem, composite partsupp key, snowflaked dimensions)
// instead of a single synthetic column.

// The CREATE TABLE script: 8 tables in spec column order with PRIMARY KEY
// clauses and all 8 FK relationships, including the composite
// (l_partkey, l_suppkey) -> partsupp join.
const char* TpchDdlScript();

// Parses TpchDdlScript() and generates rows at `scale` (1.0 ≈ thousands of
// lineitem rows; floors keep the spec's size ordering at tiny scales).
// Column generators are derived from the parsed schema: the declared FKs
// drive value sampling (components of a composite-FK target become
// deterministic cross-product keys so the referenced tuple set is unique),
// the first non-FK column of each table is its dense surrogate key, and the
// rest fill by declared type. Ground truth = exactly the parsed FKs as N:1
// joins. Returns kInvalidInput only if the embedded script ever fails to
// parse (a build defect, caught by the synth tests).
StatusOr<BiCase> GenerateTpchFromDdl(double scale, Rng& rng);

}  // namespace autobi

#endif  // AUTOBI_SYNTH_TPCH_DDL_H_
