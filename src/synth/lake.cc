#include "synth/lake.h"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/strings.h"
#include "synth/names.h"
#include "synth/schema_builder.h"

namespace autobi {

namespace {

// Types an entity attribute the way bi_generator does, minus the naming
// noise (lake adversarialness lives in the key columns, not the attributes).
ColumnSpec LakeAttribute(const std::string& name) {
  ColumnSpec col;
  col.name = name;
  auto has = [&](const char* s) { return name.find(s) != std::string::npos; };
  if (has("date")) {
    col.kind = ColumnKind::kDate;
    col.min_value = 0;
    col.max_value = 2000;
  } else if (has("price") || has("salary") || has("budget") || has("rate") ||
             has("amount") || has("cost") || has("weight")) {
    col.kind = ColumnKind::kDouble;
    col.min_value = 1.0;
    col.max_value = 5000.0;
  } else if (has("year") || has("population") || has("pages") ||
             has("credits") || has("capacity") || has("rooms") ||
             has("sq_ft") || has("runtime") || has("founded") ||
             has("rank") || has("zip") || has("level")) {
    col.kind = ColumnKind::kInt;
    col.min_value = 1;
    col.max_value = 5000;
  } else {
    col.kind = ColumnKind::kText;
  }
  return col;
}

}  // namespace

BiCase GenerateLake(const LakeGenOptions& options, Rng& rng) {
  AUTOBI_CHECK(options.num_tables >= 1);
  AUTOBI_CHECK(options.min_island >= 2 && options.min_island <= options.max_island);
  const std::vector<EntityTemplate>& entities = EntityPool();
  const std::vector<FactTemplate>& facts = FactPool();

  SchemaBuilder builder;
  // Entities any earlier island already used — the shared-name draw pool.
  std::vector<const EntityTemplate*> used_entities;

  int remaining = options.num_tables;
  int island = 0;
  while (remaining > 0) {
    int size = int(rng.NextInt(options.min_island, options.max_island));
    size = std::min(size, remaining);
    const std::string prefix = StrFormat("l%d_", island);
    // Island key-space offset: value-disjoint from every other island
    // unless this island rolls the shared range (then both its surrogate
    // base and its string-key prefixes collapse to the shared pool).
    const bool shared_range = rng.NextBool(options.shared_key_range_prob);
    const long key_base = shared_range ? 1 : 1 + island * 100003L;

    // --- Dimensions (size - 1 of them; a 1-table remainder island is a
    // standalone dim — an edgeless singleton component).
    const int num_dims = std::max(1, size - 1);
    struct PlannedDim {
      const EntityTemplate* entity = nullptr;
      std::string table;
      std::string pk;
      bool string_key = false;
    };
    std::vector<PlannedDim> dims;
    std::set<std::string> taken;  // Entity names used inside this island.
    for (int d = 0; d < num_dims; ++d) {
      const EntityTemplate* entity = nullptr;
      for (int attempt = 0; attempt < 16 && entity == nullptr; ++attempt) {
        const EntityTemplate* pick =
            (!used_entities.empty() &&
             rng.NextBool(options.shared_dim_name_prob))
                ? used_entities[size_t(rng.NextBelow(used_entities.size()))]
                : &entities[size_t(rng.NextBelow(entities.size()))];
        if (taken.insert(pick->name).second) entity = pick;
      }
      if (entity == nullptr) break;  // Island saturated the pool; shrink it.
      PlannedDim dim;
      dim.entity = entity;
      dim.table = prefix + entity->name;
      dim.pk = std::string(entity->name) + "_id";
      dim.string_key = rng.NextBool(options.string_key_prob);

      TableSpec spec;
      spec.name = dim.table;
      spec.rows = size_t(rng.NextInt(int64_t(options.min_dim_rows),
                                     int64_t(options.max_dim_rows)));
      ColumnSpec key;
      key.name = dim.pk;
      if (dim.string_key) {
        key.kind = ColumnKind::kStringKey;
        // Shared-range islands drop the island tag from the prefix: their
        // "c1".."cN" counters overlap every other shared-range island with
        // the same entity initial — near-joins that survive blocking and
        // must be settled by the exact containment checks.
        key.prefix = shared_range ? std::string(1, entity->name[0])
                                  : StrFormat("%c%d_", entity->name[0], island);
      } else {
        key.kind = ColumnKind::kSurrogateKey;
        key.key_base = key_base;
      }
      spec.columns.push_back(key);
      const size_t num_attrs = std::min<size_t>(entity->attributes.size(), 2);
      for (size_t a = 0; a < num_attrs; ++a) {
        spec.columns.push_back(LakeAttribute(entity->attributes[a]));
      }
      builder.AddTable(std::move(spec));
      used_entities.push_back(entity);
      // Snowflake chain: this dim references an earlier dim of the island.
      if (!dims.empty() && rng.NextBool(options.snowflake_prob)) {
        const PlannedDim& parent =
            dims[size_t(rng.NextBelow(dims.size()))];
        builder.AddFkColumn(dim.table, parent.pk, parent.table, parent.pk);
      }
      dims.push_back(std::move(dim));
    }

    // --- Fact (only when the island has room for one).
    if (size >= 2 && !dims.empty()) {
      const FactTemplate& fact =
          facts[size_t(rng.NextBelow(facts.size()))];
      TableSpec spec;
      spec.name = prefix + fact.name;
      spec.rows = size_t(rng.NextInt(int64_t(options.min_fact_rows),
                                     int64_t(options.max_fact_rows)));
      const size_t num_measures = std::min<size_t>(fact.measures.size(), 2);
      for (size_t m = 0; m < num_measures; ++m) {
        ColumnSpec col;
        col.name = fact.measures[m];
        col.kind = ColumnKind::kDouble;
        col.min_value = 1.0;
        col.max_value = 5000.0;
        spec.columns.push_back(col);
      }
      const std::string fact_name = spec.name;
      builder.AddTable(std::move(spec));
      for (const PlannedDim& dim : dims) {
        builder.AddFkColumn(fact_name, dim.pk, dim.table, dim.pk);
      }
    }

    remaining -= int(dims.size()) + ((size >= 2 && !dims.empty()) ? 1 : 0);
    ++island;
    AUTOBI_CHECK(!dims.empty());  // Progress guarantee: each island adds tables.
  }

  BiCase result =
      builder.Generate(StrFormat("lake_%d", options.num_tables), rng);
  result.schema_type = SchemaType::kOther;
  return result;
}

}  // namespace autobi
