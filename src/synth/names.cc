#include "synth/names.h"

#include <cctype>
#include <map>

namespace autobi {

const std::vector<EntityTemplate>& EntityPool() {
  static const std::vector<EntityTemplate>* pool =
      new std::vector<EntityTemplate>{
          {"customer",
           {"name", "email", "phone", "city", "address", "birth_date"},
           false,
           "segment"},
          {"segment", {"name", "description"}, true, ""},
          {"product",
           {"name", "brand", "list_price", "color", "size", "weight"},
           false,
           "category"},
          {"category", {"name", "department"}, true, ""},
          {"store", {"name", "city", "phone", "sq_ft"}, false, "region"},
          {"region", {"name", "manager"}, true, "country"},
          {"country", {"name", "iso_code", "population"}, true, ""},
          {"employee",
           {"first_name", "last_name", "hire_date", "salary", "title"},
           false,
           "department"},
          {"department", {"name", "budget"}, true, ""},
          {"supplier", {"name", "contact", "phone", "city"}, false, "country"},
          {"calendar",
           {"full_date", "day_of_week", "month", "quarter", "year"},
           false,
           ""},
          {"promotion", {"name", "discount_pct", "start_date", "end_date"},
           true, ""},
          {"currency", {"name", "symbol", "exchange_rate"}, true, ""},
          {"warehouse", {"name", "city", "capacity"}, false, "region"},
          {"carrier", {"name", "phone", "service_level"}, true, ""},
          {"channel", {"name", "medium"}, true, ""},
          {"campaign", {"name", "budget", "start_date"}, true, "channel"},
          {"account", {"name", "account_type", "open_date"}, false,
           "customer"},
          {"payment_method", {"name", "provider"}, true, ""},
          {"city", {"name", "state", "zip"}, false, "country"},
          {"vendor", {"name", "rating", "contact"}, false, "country"},
          {"item", {"name", "unit", "unit_cost"}, false, "category"},
          {"patient", {"first_name", "last_name", "birth_date", "gender"},
           false, "city"},
          {"doctor", {"name", "specialty", "license_no"}, false,
           "department"},
          {"policy", {"policy_type", "premium", "start_date"}, false,
           "agent"},
          {"agent", {"name", "phone", "commission_rate"}, false, "branch"},
          {"branch", {"name", "city", "manager"}, true, "region"},
          {"vehicle", {"make", "model", "year", "vin"}, false, "category"},
          {"driver", {"name", "license_no", "hire_date"}, false, ""},
          {"route", {"origin", "destination", "distance"}, false, ""},
          {"hotel", {"name", "city", "stars", "rooms"}, false, "city"},
          {"flight", {"flight_no", "origin", "destination"}, false,
           "airline"},
          {"airline", {"name", "iata_code", "country"}, true, ""},
          {"student", {"first_name", "last_name", "enroll_year"}, false,
           "major"},
          {"major", {"name", "school"}, true, ""},
          {"course", {"title", "credits", "level"}, false, "department"},
          {"movie", {"title", "release_year", "runtime", "rating"}, false,
           "genre"},
          {"genre", {"name"}, true, ""},
          {"book", {"title", "isbn", "pages", "publish_year"}, false,
           "publisher"},
          {"publisher", {"name", "city"}, true, ""},
          {"team", {"name", "city", "founded"}, false, "league"},
          {"league", {"name", "level"}, true, ""},
          {"project", {"name", "budget", "start_date", "status"}, false,
           "department"},
          {"machine", {"serial_no", "model", "install_date"}, false,
           "plant"},
          {"plant", {"name", "city", "capacity"}, true, "region"},
          {"shipper", {"company_name", "phone"}, true, ""},
          {"territory", {"name", "zone"}, true, "region"},
          {"status_type", {"name"}, true, ""},
          {"order_priority", {"name", "rank"}, true, ""},
      };
  return *pool;
}

const std::vector<FactTemplate>& FactPool() {
  static const std::vector<FactTemplate>* pool = new std::vector<FactTemplate>{
      {"sales", {"quantity", "unit_price", "discount", "total_amount"}},
      {"orders", {"order_qty", "freight", "order_total"}},
      {"shipments", {"weight", "freight_cost", "days_in_transit"}},
      {"returns", {"return_qty", "refund_amount", "restock_fee"}},
      {"inventory", {"qty_on_hand", "qty_on_order", "reorder_point"}},
      {"payments", {"amount", "fee", "tax"}},
      {"visits", {"duration_min", "pages_viewed", "conversion"}},
      {"claims", {"claim_amount", "deductible", "payout"}},
      {"trades", {"shares", "price", "commission"}},
      {"bookings", {"nights", "room_rate", "total_charge"}},
      {"enrollments", {"credits", "tuition", "grade_points"}},
      {"admissions", {"length_of_stay", "total_cost", "copay"}},
      {"rentals", {"days", "daily_rate", "late_fee"}},
      {"expenses", {"amount", "tax_amount", "reimbursed"}},
      {"production", {"units_produced", "defects", "downtime_min"}},
      {"budget", {"planned_amount", "actual_amount", "variance"}},
  };
  return *pool;
}

namespace {

std::string Capitalize(const std::string& s) {
  std::string out = s;
  if (!out.empty()) {
    out[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(out[0])));
  }
  return out;
}

}  // namespace

std::string StyleTokens(const std::vector<std::string>& tokens,
                        NameStyle style) {
  std::string out;
  for (size_t i = 0; i < tokens.size(); ++i) {
    switch (style) {
      case NameStyle::kSnake:
        if (i > 0) out += "_";
        out += tokens[i];
        break;
      case NameStyle::kCamel:
        out += (i == 0) ? tokens[i] : Capitalize(tokens[i]);
        break;
      case NameStyle::kPascal:
        out += Capitalize(tokens[i]);
        break;
      case NameStyle::kFlat:
        out += tokens[i];
        break;
    }
  }
  return out;
}

std::string Abbreviate(const std::string& token, Rng& rng) {
  static const std::map<std::string, std::string>* known =
      new std::map<std::string, std::string>{
          {"customer", "cust"},   {"product", "prod"},
          {"quantity", "qty"},    {"amount", "amt"},
          {"number", "no"},       {"employee", "emp"},
          {"department", "dept"}, {"category", "cat"},
          {"account", "acct"},    {"address", "addr"},
          {"warehouse", "whse"},  {"supplier", "supp"},
          {"segment", "seg"},     {"description", "desc"},
          {"calendar", "cal"},    {"promotion", "promo"},
          {"payment", "pmt"},     {"vehicle", "veh"},
          {"shipment", "shpmt"},  {"inventory", "inv"},
      };
  auto it = known->find(token);
  if (it != known->end()) return it->second;
  if (token.size() <= 4) return token;
  // Either a prefix cut or vowel-stripping after the first letter.
  if (rng.NextBool(0.5)) {
    return token.substr(0, 3 + rng.NextBelow(2));
  }
  std::string out;
  out += token[0];
  for (size_t i = 1; i < token.size() && out.size() < 5; ++i) {
    char c = token[i];
    if (c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u') continue;
    out += c;
  }
  return out.size() >= 2 ? out : token.substr(0, 4);
}

}  // namespace autobi
