#include "synth/classic_dbs.h"

#include "common/check.h"
#include "synth/tpc_util.h"

namespace autobi {

const char* ClassicDbName(ClassicDb db) {
  switch (db) {
    case ClassicDb::kFoodMart:
      return "FoodMart";
    case ClassicDb::kNorthwind:
      return "Northwind";
    case ClassicDb::kAdventureWorks:
      return "AdventureWorks";
    case ClassicDb::kWorldWideImporters:
      return "WorldWideImporters";
  }
  return "?";
}

namespace {

// ---------------------------------------------------------------- FoodMart.

BiCase FoodMartOlap(double scale, Rng& rng) {
  SchemaBuilder b;
  size_t customers = ScaleRows(scale, 300);
  size_t products = ScaleRows(scale, 250);
  b.AddTable({"time_by_day",
              ScaleRows(scale, 400),
              {Pk("time_id", 367), DateCol("the_date"),
               CatCol("the_day", {"Monday", "Tuesday", "Wednesday", "Thursday",
                                  "Friday", "Saturday", "Sunday"}),
               CatCol("the_month", {"January", "February", "March", "April",
                                    "May", "June", "July"}),
               IntCol("the_year", 1997, 1998), IntCol("month_of_year", 1, 12),
               IntCol("quarter", 1, 4)}});
  b.AddTable({"product_class",
              ScaleRows(scale, 30),
              {Pk("product_class_id"), TextCol("product_subcategory"),
               TextCol("product_category"), TextCol("product_department"),
               CatCol("product_family", {"Food", "Drink", "Non-Consumable"})}});
  b.AddTable({"product",
              products,
              {Pk("product_id"), TextCol("brand_name"), TextCol("product_name"),
               NumCol("SRP", 0.5, 30), NumCol("gross_weight", 4, 22),
               NumCol("net_weight", 3, 21), IntCol("units_per_case", 1, 36),
               IntCol("cases_per_pallet", 5, 14)}});
  b.AddTable({"customer",
              customers,
              {Pk("customer_id"), TextCol("lname"), TextCol("fname"),
               TextCol("address1"), TextCol("city"),
               CatCol("state_province", {"CA", "WA", "OR"}),
               StrKey("postal_code", "9", 5), TextCol("phone1"),
               CatCol("marital_status", {"M", "S"}),
               CatCol("gender", {"M", "F"}), IntCol("num_children_at_home", 0,
                                                    5)}});
  b.AddTable({"store",
              ScaleRows(scale, 25),
              {Pk("store_id"),
               CatCol("store_type", {"Supermarket", "Deluxe Supermarket",
                                     "Gourmet Supermarket", "Small Grocery"}),
               TextCol("store_name"), TextCol("store_city"),
               CatCol("store_state", {"CA", "WA", "OR"}),
               IntCol("store_sqft", 20000, 40000),
               IntCol("grocery_sqft", 15000, 30000)}});
  b.AddTable({"promotion",
              ScaleRows(scale, 50),
              {Pk("promotion_id"), TextCol("promotion_name"),
               CatCol("media_type", {"TV", "Radio", "Daily Paper",
                                     "Street Handout", "In-Store Coupon"}),
               NumCol("cost", 1000, 100000), DateCol("start_date"),
               DateCol("end_date")}});
  b.AddTable({"warehouse",
              ScaleRows(scale, 20),
              {Pk("warehouse_id"), TextCol("warehouse_name"),
               TextCol("wa_address1"), TextCol("warehouse_city"),
               CatCol("warehouse_state_province", {"CA", "WA", "OR"})}});
  b.AddTable({"sales_fact",
              ScaleRows(scale, 2500),
              {NumCol("store_sales", 0.5, 50), NumCol("store_cost", 0.2, 25),
               NumCol("unit_sales", 1, 6)}});
  b.AddTable({"inventory_fact",
              ScaleRows(scale, 1200),
              {IntCol("units_ordered", 1, 200), IntCol("units_shipped", 1,
                                                       200),
               NumCol("supply_time", 0, 10), NumCol("store_invoice", 1,
                                                    1000)}});

  b.AddFkColumn("product", "product_class_id_fk", "product_class",
                "product_class_id");
  b.AddFkColumn("sales_fact", "product_id", "product", "product_id", 0.5);
  b.AddFkColumn("sales_fact", "time_id", "time_by_day", "time_id", 0.3);
  b.AddFkColumn("sales_fact", "customer_id", "customer", "customer_id", 0.5);
  b.AddFkColumn("sales_fact", "promotion_id", "promotion", "promotion_id",
                0.5);
  b.AddFkColumn("sales_fact", "store_id", "store", "store_id", 0.3);
  b.AddFkColumn("inventory_fact", "product_id", "product", "product_id", 0.5);
  b.AddFkColumn("inventory_fact", "time_id", "time_by_day", "time_id", 0.3);
  b.AddFkColumn("inventory_fact", "warehouse_id", "warehouse", "warehouse_id",
                0.3);
  b.AddFkColumn("inventory_fact", "store_id", "store", "store_id", 0.3);

  BiCase out = b.Generate("FoodMart-OLAP", rng);
  out.schema_type = SchemaType::kConstellation;
  return out;
}

BiCase FoodMartOltp(double scale, Rng& rng) {
  SchemaBuilder b;
  b.AddTable({"region",
              ScaleRows(scale, 20),
              {Pk("region_id"), TextCol("sales_city"),
               CatCol("sales_state_province", {"CA", "WA", "OR"}),
               TextCol("sales_district"), TextCol("sales_country")}});
  b.AddTable({"store",
              ScaleRows(scale, 25),
              {Pk("store_id"), TextCol("store_name"),
               IntCol("store_sqft", 20000, 40000),
               CatCol("store_type", {"Supermarket", "Small Grocery"})}});
  b.AddTable({"department",
              12,
              {Pk("department_id"), TextCol("department_description")}});
  b.AddTable({"position",
              ScaleRows(scale, 18),
              {Pk("position_id"), TextCol("position_title"),
               NumCol("min_scale", 5, 20), NumCol("max_scale", 10, 50),
               CatCol("pay_type", {"Hourly", "Monthly"})}});
  b.AddTable({"employee",
              ScaleRows(scale, 200),
              {Pk("employee_id"), TextCol("full_name"), TextCol("first_name"),
               TextCol("last_name"), DateCol("hire_date"),
               NumCol("salary", 5000, 80000),
               CatCol("marital_status", {"M", "S"}),
               CatCol("gender", {"M", "F"})}});
  b.AddTable({"salary",
              ScaleRows(scale, 900),
              {DateCol("pay_date"), NumCol("salary_paid", 100, 5000),
               IntCol("overtime_paid", 0, 400), IntCol("vacation_accrued", 0,
                                                       30),
               IntCol("vacation_used", 0, 30)}});
  b.AddTable({"customer",
              ScaleRows(scale, 300),
              {Pk("customer_id"), StrKey("account_num", "8", 10),
               TextCol("lname"), TextCol("fname"), TextCol("city"),
               CatCol("state_province", {"CA", "WA", "OR"})}});
  b.AddTable({"product_class",
              ScaleRows(scale, 30),
              {Pk("product_class_id"), TextCol("product_subcategory"),
               TextCol("product_category"),
               CatCol("product_family", {"Food", "Drink",
                                         "Non-Consumable"})}});
  b.AddTable({"product",
              ScaleRows(scale, 250),
              {Pk("product_id"), TextCol("product_name"),
               TextCol("brand_name"), NumCol("SRP", 0.5, 30)}});
  b.AddTable({"transactions",
              ScaleRows(scale, 2000),
              {NumCol("amount", 0.5, 100), IntCol("quantity", 1, 10),
               DateCol("transaction_date")}});

  b.AddFkColumn("store", "region_id", "region", "region_id");
  b.AddFkColumn("employee", "store_id", "store", "store_id", 0.3);
  b.AddFkColumn("employee", "department_id", "department", "department_id",
                0.2);
  b.AddFkColumn("employee", "position_id", "position", "position_id", 0.3);
  b.AddFkColumn("salary", "employee_id", "employee", "employee_id", 0.4);
  b.AddFkColumn("salary", "department_id", "department", "department_id",
                0.2);
  b.AddFkColumn("customer", "customer_region_id", "region", "region_id",
                0.3);
  b.AddFkColumn("product", "product_class_id_fk", "product_class",
                "product_class_id");
  b.AddFkColumn("transactions", "product_id", "product", "product_id", 0.5);
  b.AddFkColumn("transactions", "customer_id", "customer", "customer_id",
                0.5);
  b.AddFkColumn("transactions", "store_id", "store", "store_id", 0.3);

  BiCase out = b.Generate("FoodMart-OLTP", rng);
  out.schema_type = SchemaType::kOther;
  return out;
}

// --------------------------------------------------------------- Northwind.

BiCase NorthwindOlap(double scale, Rng& rng) {
  SchemaBuilder b;
  b.AddTable({"dim_date",
              ScaleRows(scale, 400),
              {Pk("date_key"), DateCol("full_date"), IntCol("year", 1996,
                                                            1998),
               IntCol("month", 1, 12), IntCol("day", 1, 31),
               CatCol("month_name", {"January", "February", "March", "April",
                                     "May", "June"})}});
  b.AddTable({"dim_customer",
              ScaleRows(scale, 90),
              {StrKey("customer_key", "ALF", 2), TextCol("company_name"),
               TextCol("contact_name"), TextCol("contact_title"),
               TextCol("city"), TextCol("country")}});
  b.AddTable({"dim_employee",
              ScaleRows(scale, 9, 5),
              {Pk("employee_key"), TextCol("last_name"), TextCol("first_name"),
               CatCol("title", {"Sales Representative", "Sales Manager",
                                "Inside Sales Coordinator"}),
               DateCol("hire_date"), TextCol("city"), TextCol("country")}});
  b.AddTable({"dim_category",
              8,
              {Pk("category_key"), TextCol("category_name"),
               TextCol("description")}});
  b.AddTable({"dim_product",
              ScaleRows(scale, 77),
              {Pk("product_key"), TextCol("product_name"),
               TextCol("quantity_per_unit"), NumCol("unit_price", 2, 300),
               IntCol("units_in_stock", 0, 125),
               IntCol("discontinued", 0, 1)}});
  b.AddTable({"dim_shipper",
              ScaleRows(scale, 3, 3),
              {Pk("shipper_key"), TextCol("company_name"), TextCol("phone")}});
  b.AddTable({"fact_orders",
              ScaleRows(scale, 2100),
              {IntCol("order_id", 10248, 11078), IntCol("quantity", 1, 130),
               NumCol("unit_price", 2, 300), NumCol("discount", 0, 0.25),
               NumCol("freight", 0, 1000)}});

  b.AddFkColumn("dim_product", "category_key", "dim_category",
                "category_key");
  b.AddFkColumn("fact_orders", "customer_key", "dim_customer",
                "customer_key", 0.5);
  b.AddFkColumn("fact_orders", "employee_key", "dim_employee",
                "employee_key", 0.4);
  b.AddFkColumn("fact_orders", "product_key", "dim_product", "product_key",
                0.5);
  b.AddFkColumn("fact_orders", "shipper_key", "dim_shipper", "shipper_key",
                0.2);
  b.AddFkColumn("fact_orders", "order_date_key", "dim_date", "date_key",
                0.3);
  b.AddFkColumn("fact_orders", "shipped_date_key", "dim_date", "date_key",
                0.3);

  BiCase out = b.Generate("Northwind-OLAP", rng);
  out.schema_type = SchemaType::kSnowflake;
  return out;
}

BiCase NorthwindOltp(double scale, Rng& rng) {
  SchemaBuilder b;
  b.AddTable({"categories",
              8,
              {Pk("category_id"), TextCol("category_name"),
               TextCol("description")}});
  b.AddTable({"suppliers",
              ScaleRows(scale, 29),
              {Pk("supplier_id"), TextCol("company_name"),
               TextCol("contact_name"), TextCol("city"), TextCol("country"),
               TextCol("phone")}});
  b.AddTable({"products",
              ScaleRows(scale, 77),
              {Pk("product_id"), TextCol("product_name"),
               TextCol("quantity_per_unit"), NumCol("unit_price", 2, 300),
               IntCol("units_in_stock", 0, 125), IntCol("units_on_order", 0,
                                                        100),
               IntCol("reorder_level", 0, 30), IntCol("discontinued", 0, 1)}});
  b.AddTable({"customers",
              ScaleRows(scale, 91),
              {StrKey("customer_id", "CU", 3), TextCol("company_name"),
               TextCol("contact_name"), TextCol("contact_title"),
               TextCol("address"), TextCol("city"), TextCol("country"),
               TextCol("phone")}});
  b.AddTable({"employees",
              ScaleRows(scale, 9, 5),
              {Pk("employee_id"), TextCol("last_name"), TextCol("first_name"),
               CatCol("title", {"Sales Representative", "Sales Manager",
                                "Vice President Sales"}),
               DateCol("birth_date"), DateCol("hire_date"), TextCol("city"),
               TextCol("country")}});
  b.AddTable({"shippers",
              ScaleRows(scale, 3, 3),
              {Pk("shipper_id"), TextCol("company_name"), TextCol("phone")}});
  b.AddTable({"orders",
              ScaleRows(scale, 830),
              {Pk("order_id", 10248), DateCol("order_date"),
               DateCol("required_date"), DateCol("shipped_date", 0.1),
               NumCol("freight", 0, 1000), TextCol("ship_city"),
               TextCol("ship_country")}});
  b.AddTable({"order_details",
              ScaleRows(scale, 2155),
              {NumCol("unit_price", 2, 300), IntCol("quantity", 1, 130),
               NumCol("discount", 0, 0.25)}});
  b.AddTable({"region",
              4,
              {Pk("region_id"), CatCol("region_description",
                                       {"Eastern", "Western", "Northern",
                                        "Southern"})}});
  b.AddTable({"territories",
              ScaleRows(scale, 53),
              {StrKey("territory_id", "0", 5),
               TextCol("territory_description")}});
  b.AddTable({"employee_territories", ScaleRows(scale, 49), {}});

  b.AddFkColumn("products", "supplier_id", "suppliers", "supplier_id", 0.3);
  b.AddFkColumn("products", "category_id", "categories", "category_id", 0.2);
  b.AddFkColumn("orders", "customer_id", "customers", "customer_id", 0.4);
  b.AddFkColumn("orders", "employee_id", "employees", "employee_id", 0.3);
  b.AddFkColumn("orders", "ship_via", "shippers", "shipper_id", 0.2);
  b.AddFkColumn("order_details", "order_id_fk", "orders", "order_id", 0.2);
  b.AddFkColumn("order_details", "product_id", "products", "product_id",
                0.4);
  b.AddFkColumn("territories", "region_id", "region", "region_id");
  b.AddFkColumn("employee_territories", "employee_id", "employees",
                "employee_id", 0.3);
  b.AddFkColumn("employee_territories", "territory_id", "territories",
                "territory_id", 0.3);

  BiCase out = b.Generate("Northwind-OLTP", rng);
  out.schema_type = SchemaType::kOther;
  return out;
}

// --------------------------------------------------------- AdventureWorks.

BiCase AdventureWorksOlap(double scale, Rng& rng) {
  SchemaBuilder b;
  b.AddTable({"DimDate",
              ScaleRows(scale, 700),
              {Pk("DateKey", 20050101), DateCol("FullDateAlternateKey"),
               IntCol("CalendarYear", 2005, 2008),
               IntCol("CalendarQuarter", 1, 4), IntCol("MonthNumberOfYear", 1,
                                                       12),
               CatCol("EnglishDayNameOfWeek",
                      {"Monday", "Tuesday", "Wednesday", "Thursday", "Friday",
                       "Saturday", "Sunday"})}});
  b.AddTable({"DimGeography",
              ScaleRows(scale, 120),
              {Pk("GeographyKey"), TextCol("City"),
               CatCol("StateProvinceCode", {"CA", "WA", "OR", "TX"}),
               TextCol("StateProvinceName"),
               CatCol("EnglishCountryRegionName",
                      {"United States", "Canada", "France", "Germany",
                       "Australia", "United Kingdom"}),
               StrKey("PostalCode", "9", 5)}});
  b.AddTable({"DimCustomer",
              ScaleRows(scale, 350),
              {Pk("CustomerKey"), StrKey("CustomerAlternateKey", "AW", 8),
               TextCol("FirstName"), TextCol("LastName"),
               DateCol("BirthDate"), CatCol("MaritalStatus", {"M", "S"}),
               CatCol("Gender", {"M", "F"}), NumCol("YearlyIncome", 10000,
                                                    170000),
               IntCol("TotalChildren", 0, 5), TextCol("EmailAddress")}});
  b.AddTable({"DimProductCategory",
              4,
              {Pk("ProductCategoryKey"),
               CatCol("EnglishProductCategoryName",
                      {"Bikes", "Components", "Clothing", "Accessories"})}});
  b.AddTable({"DimProductSubcategory",
              ScaleRows(scale, 37),
              {Pk("ProductSubcategoryKey"),
               TextCol("EnglishProductSubcategoryName")}});
  b.AddTable({"DimProduct",
              ScaleRows(scale, 300),
              {Pk("ProductKey"), StrKey("ProductAlternateKey", "BK", 6),
               TextCol("EnglishProductName"), CatCol("Color",
                                                     {"Black", "Red", "Silver",
                                                      "Blue", "Yellow"}),
               NumCol("StandardCost", 1, 2200), NumCol("ListPrice", 2, 3600),
               CatCol("SizeRange", {"38-40 CM", "42-46 CM", "48-52 CM",
                                    "NA"})}});
  b.AddTable({"DimSalesTerritory",
              ScaleRows(scale, 11, 5),
              {Pk("SalesTerritoryKey"), TextCol("SalesTerritoryRegion"),
               CatCol("SalesTerritoryCountry",
                      {"United States", "Canada", "France", "Germany",
                       "Australia", "United Kingdom"}),
               CatCol("SalesTerritoryGroup", {"North America", "Europe",
                                              "Pacific"})}});
  b.AddTable({"DimCurrency",
              ScaleRows(scale, 105),
              {Pk("CurrencyKey"), StrKey("CurrencyAlternateKey", "CR", 3),
               TextCol("CurrencyName")}});
  b.AddTable({"DimPromotion",
              ScaleRows(scale, 16, 5),
              {Pk("PromotionKey"), TextCol("EnglishPromotionName"),
               NumCol("DiscountPct", 0, 0.5),
               CatCol("EnglishPromotionType", {"No Discount",
                                               "Volume Discount",
                                               "Seasonal Discount"}),
               DateCol("StartDate"), DateCol("EndDate")}});
  b.AddTable({"FactInternetSales",
              ScaleRows(scale, 2500),
              {IntCol("SalesOrderNumber", 43697, 75122),
               IntCol("OrderQuantity", 1, 4), NumCol("UnitPrice", 2, 3600),
               NumCol("SalesAmount", 2, 3600), NumCol("TaxAmt", 0, 290),
               NumCol("Freight", 0, 90)}});
  b.AddTable({"FactResellerSales",
              ScaleRows(scale, 1800),
              {IntCol("SalesOrderNumber", 43659, 71952),
               IntCol("OrderQuantity", 1, 40), NumCol("UnitPrice", 2, 2200),
               NumCol("SalesAmount", 2, 40000),
               NumCol("DiscountAmount", 0, 500)}});

  b.AddFkColumn("DimProductSubcategory", "ProductCategoryKey",
                "DimProductCategory", "ProductCategoryKey");
  b.AddFkColumn("DimProduct", "ProductSubcategoryKey",
                "DimProductSubcategory", "ProductSubcategoryKey", 0.2);
  b.AddFkColumn("DimCustomer", "GeographyKey", "DimGeography",
                "GeographyKey", 0.3);
  b.AddFkColumn("FactInternetSales", "ProductKey", "DimProduct", "ProductKey",
                0.5);
  b.AddFkColumn("FactInternetSales", "OrderDateKey", "DimDate", "DateKey",
                0.3);
  b.AddFkColumn("FactInternetSales", "DueDateKey", "DimDate", "DateKey",
                0.3);
  b.AddFkColumn("FactInternetSales", "ShipDateKey", "DimDate", "DateKey",
                0.3);
  b.AddFkColumn("FactInternetSales", "CustomerKey", "DimCustomer",
                "CustomerKey", 0.5);
  b.AddFkColumn("FactInternetSales", "PromotionKey", "DimPromotion",
                "PromotionKey", 0.2);
  b.AddFkColumn("FactInternetSales", "CurrencyKey", "DimCurrency",
                "CurrencyKey", 0.3);
  b.AddFkColumn("FactInternetSales", "SalesTerritoryKey", "DimSalesTerritory",
                "SalesTerritoryKey", 0.2);
  b.AddFkColumn("FactResellerSales", "ProductKey", "DimProduct", "ProductKey",
                0.5);
  b.AddFkColumn("FactResellerSales", "OrderDateKey", "DimDate", "DateKey",
                0.3);
  b.AddFkColumn("FactResellerSales", "CurrencyKey", "DimCurrency",
                "CurrencyKey", 0.3);
  b.AddFkColumn("FactResellerSales", "SalesTerritoryKey",
                "DimSalesTerritory", "SalesTerritoryKey", 0.2);
  b.AddFkColumn("FactResellerSales", "PromotionKey", "DimPromotion",
                "PromotionKey", 0.2);

  BiCase out = b.Generate("AdventureWorks-OLAP", rng);
  out.schema_type = SchemaType::kConstellation;
  return out;
}

BiCase AdventureWorksOltp(double scale, Rng& rng) {
  SchemaBuilder b;
  b.AddTable({"Person",
              ScaleRows(scale, 400),
              {Pk("BusinessEntityID"), CatCol("PersonType", {"IN", "EM", "SP",
                                                             "SC", "VC"}),
               TextCol("FirstName"), TextCol("MiddleName", 0.4),
               TextCol("LastName"), IntCol("EmailPromotion", 0, 2)}});
  b.AddTable({"Address",
              ScaleRows(scale, 350),
              {Pk("AddressID"), TextCol("AddressLine1"),
               TextCol("AddressLine2", 0.6), TextCol("City"),
               StrKey("PostalCode", "9", 5)}});
  b.AddTable({"SalesTerritory",
              ScaleRows(scale, 10, 5),
              {Pk("TerritoryID"), TextCol("Name"),
               CatCol("CountryRegionCode", {"US", "CA", "FR", "DE", "AU",
                                            "GB"}),
               CatCol("Group", {"North America", "Europe", "Pacific"}),
               NumCol("SalesYTD", 0, 10000000)}});
  b.AddTable({"SalesPerson",
              ScaleRows(scale, 17, 5),
              {Pk("BusinessEntityID", 274), NumCol("SalesQuota", 0, 300000,
                                                   0.2),
               NumCol("Bonus", 0, 7000), NumCol("CommissionPct", 0, 0.02),
               NumCol("SalesYTD", 0, 5000000)}});
  b.AddTable({"Store",
              ScaleRows(scale, 120),
              {Pk("BusinessEntityID", 292), TextCol("Name"),
               TextCol("Demographics")}});
  b.AddTable({"Customer",
              ScaleRows(scale, 350),
              {Pk("CustomerID"), StrKey("AccountNumber", "AW", 8)}});
  b.AddTable({"ProductCategory",
              4,
              {Pk("ProductCategoryID"),
               CatCol("Name", {"Bikes", "Components", "Clothing",
                               "Accessories"})}});
  b.AddTable({"ProductSubcategory",
              ScaleRows(scale, 37),
              {Pk("ProductSubcategoryID"), TextCol("Name")}});
  b.AddTable({"Product",
              ScaleRows(scale, 300),
              {Pk("ProductID"), TextCol("Name"),
               StrKey("ProductNumber", "BK", 6),
               CatCol("Color", {"Black", "Red", "Silver", "Blue"}, 0.3),
               IntCol("SafetyStockLevel", 4, 1000),
               NumCol("StandardCost", 0, 2200), NumCol("ListPrice", 0, 3600),
               DateCol("SellStartDate")}});
  b.AddTable({"SpecialOffer",
              ScaleRows(scale, 16, 5),
              {Pk("SpecialOfferID"), TextCol("Description"),
               NumCol("DiscountPct", 0, 0.5), CatCol("Type", {"No Discount",
                                                              "Volume Discount",
                                                              "Seasonal "
                                                              "Discount"}),
               DateCol("StartDate"), DateCol("EndDate")}});
  b.AddTable({"ShipMethod",
              5,
              {Pk("ShipMethodID"),
               CatCol("Name", {"XRQ - TRUCK GROUND", "ZY - EXPRESS",
                               "OVERSEAS - DELUXE", "OVERNIGHT J-FAST",
                               "CARGO TRANSPORT 5"}),
               NumCol("ShipBase", 3, 22), NumCol("ShipRate", 0.2, 2)}});
  b.AddTable({"CreditCard",
              ScaleRows(scale, 250),
              {Pk("CreditCardID"), CatCol("CardType", {"SuperiorCard",
                                                       "Distinguish", "ColonialVoice",
                                                       "Vista"}),
               StrKey("CardNumber", "4", 14), IntCol("ExpMonth", 1, 12),
               IntCol("ExpYear", 2006, 2010)}});
  b.AddTable({"SalesOrderHeader",
              ScaleRows(scale, 1500),
              {Pk("SalesOrderID", 43659), DateCol("OrderDate"),
               DateCol("DueDate"), DateCol("ShipDate", 0.05),
               IntCol("Status", 1, 5), NumCol("SubTotal", 1, 100000),
               NumCol("TaxAmt", 0, 10000), NumCol("Freight", 0, 3000)}});
  b.AddTable({"SalesOrderDetail",
              ScaleRows(scale, 4000),
              {IntCol("OrderQty", 1, 40), NumCol("UnitPrice", 1, 3600),
               NumCol("UnitPriceDiscount", 0, 0.4),
               NumCol("LineTotal", 1, 30000)}});

  b.AddFkColumn("Customer", "PersonID", "Person", "BusinessEntityID", 0.4);
  b.AddFkColumn("Customer", "StoreID", "Store", "BusinessEntityID", 0.3,
                0.0, 0.3);
  b.AddFkColumn("Customer", "TerritoryID", "SalesTerritory", "TerritoryID",
                0.2);
  b.AddFkColumn("Store", "SalesPersonID", "SalesPerson", "BusinessEntityID",
                0.2);
  b.AddFkColumn("SalesPerson", "TerritoryID", "SalesTerritory", "TerritoryID",
                0.2, 0.0, 0.2);
  b.AddFkColumn("ProductSubcategory", "ProductCategoryID", "ProductCategory",
                "ProductCategoryID");
  b.AddFkColumn("Product", "ProductSubcategoryID", "ProductSubcategory",
                "ProductSubcategoryID", 0.2, 0.0, 0.2);
  b.AddFkColumn("SalesOrderHeader", "CustomerID", "Customer", "CustomerID",
                0.4);
  b.AddFkColumn("SalesOrderHeader", "SalesPersonID", "SalesPerson",
                "BusinessEntityID", 0.2, 0.0, 0.3);
  b.AddFkColumn("SalesOrderHeader", "TerritoryID", "SalesTerritory",
                "TerritoryID", 0.2);
  b.AddFkColumn("SalesOrderHeader", "BillToAddressID", "Address", "AddressID",
                0.3);
  b.AddFkColumn("SalesOrderHeader", "ShipToAddressID", "Address", "AddressID",
                0.3);
  b.AddFkColumn("SalesOrderHeader", "ShipMethodID", "ShipMethod",
                "ShipMethodID", 0.2);
  b.AddFkColumn("SalesOrderHeader", "CreditCardID", "CreditCard",
                "CreditCardID", 0.3, 0.0, 0.1);
  b.AddFkColumn("SalesOrderDetail", "SalesOrderID", "SalesOrderHeader",
                "SalesOrderID", 0.3);
  b.AddFkColumn("SalesOrderDetail", "ProductID", "Product", "ProductID",
                0.4);
  b.AddFkColumn("SalesOrderDetail", "SpecialOfferID", "SpecialOffer",
                "SpecialOfferID", 0.3);

  BiCase out = b.Generate("AdventureWorks-OLTP", rng);
  out.schema_type = SchemaType::kOther;
  return out;
}

// --------------------------------------------------- WorldWideImporters.

BiCase WorldWideImportersOlap(double scale, Rng& rng) {
  SchemaBuilder b;
  b.AddTable({"Dimension_Date",
              ScaleRows(scale, 700),
              {Pk("Date", 20130101), DateCol("DayDate"),
               IntCol("CalendarYear", 2013, 2016),
               CatCol("CalendarMonthLabel",
                      {"CY2013-Jan", "CY2013-Feb", "CY2014-Mar",
                       "CY2015-Apr"}),
               IntCol("DayNumber", 1, 31), IntCol("ISOWeekNumber", 1, 53)}});
  b.AddTable({"Dimension_City",
              ScaleRows(scale, 250),
              {Pk("CityKey"), TextCol("City"), TextCol("StateProvince"),
               CatCol("Country", {"United States"}),
               CatCol("Continent", {"North America"}),
               CatCol("SalesTerritory", {"Southeast", "Plains", "Mideast",
                                         "Far West", "New England"}),
               IntCol("LatestRecordedPopulation", 1000, 9000000)}});
  b.AddTable({"Dimension_Customer",
              ScaleRows(scale, 200),
              {Pk("CustomerKey"), TextCol("Customer"), TextCol("BillToCustomer"),
               CatCol("Category", {"Novelty Shop", "Supermarket",
                                   "Computer Store", "Gift Store",
                                   "Corporate"}),
               CatCol("BuyingGroup", {"Tailspin Toys", "Wingtip Toys",
                                      "N/A"}),
               TextCol("PrimaryContact"), StrKey("PostalCode", "9", 5)}});
  b.AddTable({"Dimension_Employee",
              ScaleRows(scale, 25, 5),
              {Pk("EmployeeKey"), TextCol("Employee"),
               TextCol("PreferredName"), IntCol("IsSalesperson", 0, 1)}});
  b.AddTable({"Dimension_StockItem",
              ScaleRows(scale, 230),
              {Pk("StockItemKey"), TextCol("StockItem"), CatCol("Color",
                                                                {"Red", "Blue",
                                                                 "Black",
                                                                 "White",
                                                                 "N/A"}),
               CatCol("SellingPackage", {"Each", "Carton", "Packet", "Bag"}),
               IntCol("QuantityPerOuter", 1, 100),
               NumCol("TaxRate", 10, 15), NumCol("UnitPrice", 1, 2000)}});
  b.AddTable({"Dimension_Supplier",
              ScaleRows(scale, 13, 5),
              {Pk("SupplierKey"), TextCol("Supplier"),
               CatCol("SupplierCategory", {"Toy Supplier", "Packaging Supplier",
                                           "Novelty Goods Supplier",
                                           "Clothing Supplier"}),
               TextCol("PrimaryContact"), IntCol("PaymentDays", 7, 30)}});
  b.AddTable({"Dimension_TransactionType",
              ScaleRows(scale, 9, 5),
              {Pk("TransactionTypeKey"), TextCol("TransactionType")}});
  b.AddTable({"Fact_Sale",
              ScaleRows(scale, 2800),
              {IntCol("Quantity", 1, 360), NumCol("UnitPrice", 1, 2000),
               NumCol("TaxRate", 10, 15), NumCol("TotalExcludingTax", 1,
                                                 10000),
               NumCol("TaxAmount", 0, 1500), NumCol("Profit", -100, 5000),
               NumCol("TotalIncludingTax", 1, 11500)}});
  b.AddTable({"Fact_Order",
              ScaleRows(scale, 2200),
              {IntCol("Quantity", 1, 360), NumCol("UnitPrice", 1, 2000),
               NumCol("TaxRate", 10, 15), NumCol("TotalExcludingTax", 1,
                                                 10000),
               NumCol("TotalIncludingTax", 1, 11500)}});
  b.AddTable({"Fact_Purchase",
              ScaleRows(scale, 1200),
              {IntCol("OrderedOuters", 1, 100), IntCol("OrderedQuantity", 1,
                                                       1000),
               IntCol("ReceivedOuters", 0, 100), IntCol("IsOrderFinalized", 0,
                                                        1)}});

  b.AddFkColumn("Fact_Sale", "InvoiceDateKey", "Dimension_Date", "Date", 0.3);
  b.AddFkColumn("Fact_Sale", "DeliveryDateKey", "Dimension_Date", "Date",
                0.3);
  b.AddFkColumn("Fact_Sale", "CityKey", "Dimension_City", "CityKey", 0.4);
  b.AddFkColumn("Fact_Sale", "CustomerKey", "Dimension_Customer",
                "CustomerKey", 0.4);
  b.AddFkColumn("Fact_Sale", "SalespersonKey", "Dimension_Employee",
                "EmployeeKey", 0.3);
  b.AddFkColumn("Fact_Sale", "StockItemKey", "Dimension_StockItem",
                "StockItemKey", 0.4);
  b.AddFkColumn("Fact_Order", "OrderDateKey", "Dimension_Date", "Date", 0.3);
  b.AddFkColumn("Fact_Order", "PickedDateKey", "Dimension_Date", "Date",
                0.3);
  b.AddFkColumn("Fact_Order", "CityKey", "Dimension_City", "CityKey", 0.4);
  b.AddFkColumn("Fact_Order", "CustomerKey", "Dimension_Customer",
                "CustomerKey", 0.4);
  b.AddFkColumn("Fact_Order", "SalespersonKey", "Dimension_Employee",
                "EmployeeKey", 0.3);
  b.AddFkColumn("Fact_Order", "PickerKey", "Dimension_Employee",
                "EmployeeKey", 0.3);
  b.AddFkColumn("Fact_Order", "StockItemKey", "Dimension_StockItem",
                "StockItemKey", 0.4);
  b.AddFkColumn("Fact_Purchase", "DateKey", "Dimension_Date", "Date", 0.3);
  b.AddFkColumn("Fact_Purchase", "SupplierKey", "Dimension_Supplier",
                "SupplierKey", 0.2);
  b.AddFkColumn("Fact_Purchase", "StockItemKey", "Dimension_StockItem",
                "StockItemKey", 0.4);

  BiCase out = b.Generate("WorldWideImporters-OLAP", rng);
  out.schema_type = SchemaType::kConstellation;
  return out;
}

BiCase WorldWideImportersOltp(double scale, Rng& rng) {
  SchemaBuilder b;
  b.AddTable({"Countries",
              ScaleRows(scale, 190),
              {Pk("CountryID"), TextCol("CountryName"),
               TextCol("FormalName"), CatCol("Continent",
                                             {"Africa", "Asia", "Europe",
                                              "North America", "Oceania",
                                              "South America"}),
               IntCol("LatestRecordedPopulation", 10000, 1400000000)}});
  b.AddTable({"StateProvinces",
              ScaleRows(scale, 53),
              {Pk("StateProvinceID"), StrKey("StateProvinceCode", "S", 2),
               TextCol("StateProvinceName"), TextCol("SalesTerritory"),
               IntCol("LatestRecordedPopulation", 500000, 39000000)}});
  b.AddTable({"Cities",
              ScaleRows(scale, 400),
              {Pk("CityID"), TextCol("CityName"),
               IntCol("LatestRecordedPopulation", 1000, 9000000, 0.2)}});
  b.AddTable({"People",
              ScaleRows(scale, 300),
              {Pk("PersonID"), TextCol("FullName"), TextCol("PreferredName"),
               IntCol("IsEmployee", 0, 1), IntCol("IsSalesperson", 0, 1),
               TextCol("PhoneNumber"), TextCol("EmailAddress")}});
  b.AddTable({"CustomerCategories",
              ScaleRows(scale, 8, 4),
              {Pk("CustomerCategoryID"), TextCol("CustomerCategoryName")}});
  b.AddTable({"BuyingGroups",
              ScaleRows(scale, 3, 2),
              {Pk("BuyingGroupID"), TextCol("BuyingGroupName")}});
  b.AddTable({"Customers",
              ScaleRows(scale, 200),
              {Pk("CustomerID"), TextCol("CustomerName"),
               NumCol("CreditLimit", 1000, 5000, 0.2),
               DateCol("AccountOpenedDate"), NumCol("StandardDiscountPercentage",
                                                    0, 0.1),
               IntCol("IsOnCreditHold", 0, 1)}});
  b.AddTable({"SupplierCategories",
              ScaleRows(scale, 9, 4),
              {Pk("SupplierCategoryID"), TextCol("SupplierCategoryName")}});
  b.AddTable({"Suppliers",
              ScaleRows(scale, 13, 5),
              {Pk("SupplierID"), TextCol("SupplierName"),
               StrKey("SupplierReference", "SU", 5),
               IntCol("PaymentDays", 7, 30)}});
  b.AddTable({"Colors",
              ScaleRows(scale, 36),
              {Pk("ColorID"), TextCol("ColorName")}});
  b.AddTable({"PackageTypes",
              ScaleRows(scale, 14, 5),
              {Pk("PackageTypeID"), TextCol("PackageTypeName")}});
  b.AddTable({"StockItems",
              ScaleRows(scale, 230),
              {Pk("StockItemID"), TextCol("StockItemName"),
               IntCol("QuantityPerOuter", 1, 100), NumCol("TaxRate", 10, 15),
               NumCol("UnitPrice", 1, 2000), NumCol("RecommendedRetailPrice",
                                                    1, 3000),
               IntCol("LeadTimeDays", 1, 30)}});
  b.AddTable({"Orders",
              ScaleRows(scale, 1800),
              {Pk("OrderID"), DateCol("OrderDate"),
               DateCol("ExpectedDeliveryDate"), IntCol("IsUndersupplyBackordered",
                                                       0, 1)}});
  b.AddTable({"OrderLines",
              ScaleRows(scale, 4500),
              {Pk("OrderLineID"), TextCol("Description"),
               IntCol("Quantity", 1, 360), NumCol("UnitPrice", 1, 2000, 0.1),
               NumCol("TaxRate", 10, 15), IntCol("PickedQuantity", 0, 360)}});
  b.AddTable({"Invoices",
              ScaleRows(scale, 1700),
              {Pk("InvoiceID"), DateCol("InvoiceDate"),
               IntCol("IsCreditNote", 0, 1), TextCol("DeliveryInstructions",
                                                     0.3)}});
  b.AddTable({"InvoiceLines",
              ScaleRows(scale, 4200),
              {Pk("InvoiceLineID"), TextCol("Description"),
               IntCol("Quantity", 1, 360), NumCol("UnitPrice", 1, 2000, 0.1),
               NumCol("TaxRate", 10, 15), NumCol("TaxAmount", 0, 1500),
               NumCol("LineProfit", -100, 5000),
               NumCol("ExtendedPrice", 1, 11500)}});
  b.AddTable({"DeliveryMethods",
              ScaleRows(scale, 10, 5),
              {Pk("DeliveryMethodID"), TextCol("DeliveryMethodName")}});

  b.AddFkColumn("StateProvinces", "CountryID", "Countries", "CountryID");
  b.AddFkColumn("Cities", "StateProvinceID", "StateProvinces",
                "StateProvinceID", 0.3);
  b.AddFkColumn("Customers", "CustomerCategoryID", "CustomerCategories",
                "CustomerCategoryID", 0.2);
  b.AddFkColumn("Customers", "BuyingGroupID", "BuyingGroups", "BuyingGroupID",
                0.2, 0.0, 0.4);
  b.AddFkColumn("Customers", "PrimaryContactPersonID", "People", "PersonID",
                0.3);
  b.AddFkColumn("Customers", "DeliveryCityID", "Cities", "CityID", 0.4);
  b.AddFkColumn("Suppliers", "SupplierCategoryID", "SupplierCategories",
                "SupplierCategoryID", 0.2);
  b.AddFkColumn("Suppliers", "PrimaryContactPersonID", "People", "PersonID",
                0.2);
  b.AddFkColumn("Suppliers", "DeliveryCityID", "Cities", "CityID", 0.3);
  b.AddFkColumn("StockItems", "SupplierID", "Suppliers", "SupplierID", 0.3);
  b.AddFkColumn("StockItems", "ColorID", "Colors", "ColorID", 0.3, 0.0, 0.4);
  b.AddFkColumn("StockItems", "UnitPackageID", "PackageTypes",
                "PackageTypeID", 0.2);
  b.AddFkColumn("Orders", "CustomerID", "Customers", "CustomerID", 0.4);
  b.AddFkColumn("Orders", "SalespersonPersonID", "People", "PersonID", 0.3);
  b.AddFkColumn("Orders", "ContactPersonID", "People", "PersonID", 0.3);
  b.AddFkColumn("OrderLines", "OrderID", "Orders", "OrderID", 0.3);
  b.AddFkColumn("OrderLines", "StockItemID", "StockItems", "StockItemID",
                0.4);
  b.AddFkColumn("OrderLines", "PackageTypeID", "PackageTypes",
                "PackageTypeID", 0.2);
  b.AddFkColumn("Invoices", "CustomerID", "Customers", "CustomerID", 0.4);
  b.AddFkColumn("Invoices", "OrderID", "Orders", "OrderID", 0.3);
  b.AddFkColumn("Invoices", "DeliveryMethodID", "DeliveryMethods",
                "DeliveryMethodID", 0.2);
  b.AddFkColumn("Invoices", "SalespersonPersonID", "People", "PersonID",
                0.3);
  b.AddFkColumn("InvoiceLines", "InvoiceID", "Invoices", "InvoiceID", 0.3);
  b.AddFkColumn("InvoiceLines", "StockItemID", "StockItems", "StockItemID",
                0.4);
  b.AddFkColumn("InvoiceLines", "PackageTypeID", "PackageTypes",
                "PackageTypeID", 0.2);

  BiCase out = b.Generate("WorldWideImporters-OLTP", rng);
  out.schema_type = SchemaType::kOther;
  return out;
}

}  // namespace

BiCase GenerateClassicDb(ClassicDb db, bool olap, double scale, Rng& rng) {
  switch (db) {
    case ClassicDb::kFoodMart:
      return olap ? FoodMartOlap(scale, rng) : FoodMartOltp(scale, rng);
    case ClassicDb::kNorthwind:
      return olap ? NorthwindOlap(scale, rng) : NorthwindOltp(scale, rng);
    case ClassicDb::kAdventureWorks:
      return olap ? AdventureWorksOlap(scale, rng)
                  : AdventureWorksOltp(scale, rng);
    case ClassicDb::kWorldWideImporters:
      return olap ? WorldWideImportersOlap(scale, rng)
                  : WorldWideImportersOltp(scale, rng);
  }
  AUTOBI_CHECK(false);  // invariant: the switch above covers every enum value.
  return {};
}

}  // namespace autobi
