#ifndef AUTOBI_SYNTH_TPC_H_
#define AUTOBI_SYNTH_TPC_H_

#include "common/rng.h"
#include "core/bi_model.h"

namespace autobi {

// Generators for the four TPC benchmarks of Section 5.1 (Table 4). Schemas
// (tables, columns, PK/FK ground truth) follow the TPC specifications; the
// data is seeded synthetic at a configurable scale (DESIGN.md §1 documents
// the substitution for the official dbgen tools). `scale` multiplies base
// row counts (1.0 ≈ thousands of fact rows — sized for single-core runs).

BiCase GenerateTpcH(double scale, Rng& rng);   //  8 tables,   8 FKs (OLAP).
BiCase GenerateTpcDs(double scale, Rng& rng);  // 24 tables, ~107 FKs (OLAP).
BiCase GenerateTpcC(double scale, Rng& rng);   //  9 tables,  10 FKs (OLTP).
BiCase GenerateTpcE(double scale, Rng& rng);   // 32 tables, ~45 FKs (OLTP).

}  // namespace autobi

#endif  // AUTOBI_SYNTH_TPC_H_
