#include "synth/tpch_ddl.h"

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "synth/schema_builder.h"
#include "synth/tpc_util.h"
#include "table/sql_ddl.h"

namespace autobi {

const char* TpchDdlScript() {
  return R"sql(
-- TPC-H schema (spec column order), consumed by ParseSqlDdl.
CREATE TABLE region (
  r_regionkey INTEGER,
  r_name VARCHAR(25),
  r_comment VARCHAR(152),
  PRIMARY KEY (r_regionkey)
);
CREATE TABLE nation (
  n_nationkey INTEGER,
  n_name VARCHAR(25),
  n_regionkey INTEGER,
  n_comment VARCHAR(152),
  PRIMARY KEY (n_nationkey),
  FOREIGN KEY (n_regionkey) REFERENCES region (r_regionkey)
);
CREATE TABLE supplier (
  s_suppkey INTEGER,
  s_name CHAR(25),
  s_address VARCHAR(40),
  s_nationkey INTEGER,
  s_phone CHAR(15),
  s_acctbal DECIMAL(15,2),
  s_comment VARCHAR(101),
  PRIMARY KEY (s_suppkey),
  FOREIGN KEY (s_nationkey) REFERENCES nation (n_nationkey)
);
CREATE TABLE customer (
  c_custkey INTEGER,
  c_name VARCHAR(25),
  c_address VARCHAR(40),
  c_nationkey INTEGER,
  c_phone CHAR(15),
  c_acctbal DECIMAL(15,2),
  c_mktsegment CHAR(10),
  c_comment VARCHAR(117),
  PRIMARY KEY (c_custkey),
  FOREIGN KEY (c_nationkey) REFERENCES nation (n_nationkey)
);
CREATE TABLE part (
  p_partkey INTEGER,
  p_name VARCHAR(55),
  p_mfgr CHAR(25),
  p_brand CHAR(10),
  p_type VARCHAR(25),
  p_size INTEGER,
  p_container CHAR(10),
  p_retailprice DECIMAL(15,2),
  p_comment VARCHAR(23),
  PRIMARY KEY (p_partkey)
);
CREATE TABLE partsupp (
  ps_partkey INTEGER,
  ps_suppkey INTEGER,
  ps_availqty INTEGER,
  ps_supplycost DECIMAL(15,2),
  ps_comment VARCHAR(199),
  PRIMARY KEY (ps_partkey, ps_suppkey),
  FOREIGN KEY (ps_partkey) REFERENCES part (p_partkey),
  FOREIGN KEY (ps_suppkey) REFERENCES supplier (s_suppkey)
);
CREATE TABLE orders (
  o_orderkey INTEGER,
  o_custkey INTEGER,
  o_orderstatus CHAR(1),
  o_totalprice DECIMAL(15,2),
  o_orderdate DATE,
  o_orderpriority CHAR(15),
  o_clerk CHAR(15),
  o_shippriority INTEGER,
  o_comment VARCHAR(79),
  PRIMARY KEY (o_orderkey),
  FOREIGN KEY (o_custkey) REFERENCES customer (c_custkey)
);
CREATE TABLE lineitem (
  l_orderkey INTEGER,
  l_partkey INTEGER,
  l_suppkey INTEGER,
  l_linenumber INTEGER,
  l_quantity DECIMAL(15,2),
  l_extendedprice DECIMAL(15,2),
  l_discount DECIMAL(15,2),
  l_tax DECIMAL(15,2),
  l_returnflag CHAR(1),
  l_linestatus CHAR(1),
  l_shipdate DATE,
  l_commitdate DATE,
  l_receiptdate DATE,
  l_shipinstruct CHAR(25),
  l_shipmode CHAR(10),
  l_comment VARCHAR(44),
  FOREIGN KEY (l_orderkey) REFERENCES orders (o_orderkey),
  FOREIGN KEY (l_partkey, l_suppkey) REFERENCES partsupp (ps_partkey, ps_suppkey)
);
)sql";
}

StatusOr<BiCase> GenerateTpchFromDdl(double scale, Rng& rng) {
  StatusOr<DdlSchema> parsed = ParseSqlDdl(TpchDdlScript());
  if (!parsed.ok()) return parsed.status();
  const DdlSchema& schema = *parsed;

  size_t parts = ScaleRows(scale, 200, 60);
  auto rows_for = [&](const std::string& name) -> size_t {
    // Spec size ordering with floors, matching the hand-built generator.
    if (name == "region") return 5;
    if (name == "nation") return 25;
    if (name == "supplier") return ScaleRows(scale, 50, 35);
    if (name == "customer") return ScaleRows(scale, 150, 60);
    if (name == "part") return parts;
    if (name == "partsupp") return parts * 4;
    if (name == "orders") return ScaleRows(scale, 1500);
    return ScaleRows(scale, 4000);  // lineitem
  };

  // Per-column outgoing reference, with composite FKs mapped positionally,
  // plus the set of columns that are the target of a composite FK: such
  // columns must form a unique tuple set, so when they themselves reference
  // another table they are generated as deterministic cross-product keys
  // (the partsupp shape) instead of sampled FKs.
  using TableColumn = std::pair<std::string, std::string>;
  std::map<TableColumn, TableColumn> ref;
  std::set<TableColumn> composite_target;
  for (const DdlForeignKey& fk : schema.foreign_keys) {
    for (size_t k = 0; k < fk.from_columns.size(); ++k) {
      ref[{fk.from_table, fk.from_columns[k]}] = {fk.to_table,
                                                  fk.to_columns[k]};
    }
    if (fk.to_columns.size() > 1) {
      for (const std::string& c : fk.to_columns) {
        composite_target.insert({fk.to_table, c});
      }
    }
  }

  SchemaBuilder b;
  for (const Table& t : schema.tables) {
    TableSpec spec;
    spec.name = t.name();
    spec.rows = rows_for(t.name());
    size_t cross_index = 0;
    size_t cross_divisor = 1;
    for (size_t c = 0; c < t.num_columns(); ++c) {
      const Column& col = t.column(c);
      auto it = ref.find({t.name(), col.name()});
      ColumnSpec cs;
      if (it != ref.end() && composite_target.count({t.name(), col.name()})) {
        if (cross_index == 0) {
          cross_divisor = rows_for(it->second.first);
          cs = ModKey(col.name(), it->second.first, it->second.second);
        } else {
          cs = DivKey(col.name(), it->second.first, it->second.second,
                      cross_divisor);
        }
        ++cross_index;
      } else if (it != ref.end()) {
        cs.name = col.name();
        cs.kind = ColumnKind::kForeignKey;
        cs.ref_table = it->second.first;
        cs.ref_column = it->second.second;
      } else if (c == 0) {
        cs = Pk(col.name());
      } else if (col.type() == ValueType::kInt) {
        cs = IntCol(col.name(), 1, 1000);
      } else if (col.type() == ValueType::kDouble) {
        cs = NumCol(col.name(), 0, 10000);
      } else if (EndsWith(ToLower(col.name()), "date")) {
        cs = DateCol(col.name());
      } else {
        cs = TextCol(col.name());
      }
      spec.columns.push_back(std::move(cs));
    }
    b.AddTable(std::move(spec));
  }
  for (const DdlForeignKey& fk : schema.foreign_keys) {
    RelationshipSpec rel;
    rel.from_table = fk.from_table;
    rel.from_columns = fk.from_columns;
    rel.to_table = fk.to_table;
    rel.to_columns = fk.to_columns;
    rel.kind = JoinKind::kNToOne;
    b.AddRelationship(std::move(rel));
  }

  BiCase out = b.Generate("TPC-H(ddl)", rng);
  out.schema_type = SchemaType::kSnowflake;
  return out;
}

}  // namespace autobi
