#include "synth/tpc.h"
#include "synth/tpc_util.h"

namespace autobi {

// TPC-DS: 24 tables and ~107 FK relationships per the specification. The
// density comes from role-playing: every fact references date_dim/time_dim/
// customer/demographics several times under different roles, which is what
// stresses recall (Table 5: Auto-BI-P's recall on TPC-DS is only 0.28
// because a k-arborescence backbone keeps a single in-edge per dimension).
BiCase GenerateTpcDs(double scale, Rng& rng) {
  SchemaBuilder b;
  size_t dates = ScaleRows(scale, 800);
  size_t times = ScaleRows(scale, 600);
  size_t items = ScaleRows(scale, 250);
  size_t customers = ScaleRows(scale, 400);
  size_t cdemo = ScaleRows(scale, 350);
  size_t hdemo = ScaleRows(scale, 120);
  size_t addresses = ScaleRows(scale, 300);
  size_t ss = ScaleRows(scale, 2500);
  size_t cs = ScaleRows(scale, 1800);
  size_t ws = ScaleRows(scale, 1200);
  size_t sr = ScaleRows(scale, 500);
  size_t cr = ScaleRows(scale, 400);
  size_t wr = ScaleRows(scale, 300);
  size_t inv = ScaleRows(scale, 1500);

  // --- Dimensions.
  b.AddTable({"date_dim",
              dates,
              {Pk("d_date_sk", 2415022), StrKey("d_date_id", "AAAA", 12),
               DateCol("d_date"), IntCol("d_year", 1998, 2003),
               IntCol("d_moy", 1, 12), IntCol("d_dom", 1, 31),
               IntCol("d_qoy", 1, 4), CatCol("d_day_name",
                                             {"Monday", "Tuesday", "Wednesday",
                                              "Thursday", "Friday", "Saturday",
                                              "Sunday"})}});
  b.AddTable({"time_dim",
              times,
              {Pk("t_time_sk", 0), StrKey("t_time_id", "AAAB", 12),
               IntCol("t_hour", 0, 23), IntCol("t_minute", 0, 59),
               IntCol("t_second", 0, 59),
               CatCol("t_meal_time", {"breakfast", "lunch", "dinner", ""})}});
  b.AddTable({"item",
              items,
              {Pk("i_item_sk"), StrKey("i_item_id", "AAAC", 12),
               TextCol("i_item_desc"), NumCol("i_current_price", 1, 100),
               NumCol("i_wholesale_cost", 1, 80), TextCol("i_brand"),
               TextCol("i_class"), TextCol("i_category"),
               CatCol("i_size", {"small", "medium", "large", "extra large"}),
               TextCol("i_color"), CatCol("i_units", {"Each", "Dozen", "Case",
                                                      "Pallet"})}});
  b.AddTable({"customer_demographics",
              cdemo,
              {Pk("cd_demo_sk"),
               CatCol("cd_gender", {"M", "F"}),
               CatCol("cd_marital_status", {"M", "S", "D", "W", "U"}),
               CatCol("cd_education_status",
                      {"Primary", "Secondary", "College", "2 yr Degree",
                       "4 yr Degree", "Advanced Degree", "Unknown"}),
               IntCol("cd_purchase_estimate", 500, 10000),
               IntCol("cd_dep_count", 0, 6)}});
  b.AddTable({"income_band",
              20,
              {Pk("ib_income_band_sk"), IntCol("ib_lower_bound", 0, 190000),
               IntCol("ib_upper_bound", 10000, 200000)}});
  b.AddTable({"household_demographics",
              hdemo,
              {Pk("hd_demo_sk"),
               CatCol("hd_buy_potential",
                      {">10000", "5001-10000", "1001-5000", "501-1000",
                       "0-500", "Unknown"}),
               IntCol("hd_dep_count", 0, 9),
               IntCol("hd_vehicle_count", 0, 4)}});
  b.AddTable({"customer_address",
              addresses,
              {Pk("ca_address_sk"), StrKey("ca_address_id", "AAAD", 12),
               TextCol("ca_street_name"), TextCol("ca_city"),
               TextCol("ca_county"), CatCol("ca_state", {"CA", "NY", "TX",
                                                         "WA", "IL", "GA"}),
               StrKey("ca_zip", "9", 4), TextCol("ca_country")}});
  b.AddTable({"customer",
              customers,
              {Pk("c_customer_sk"), StrKey("c_customer_id", "AAAE", 12),
               TextCol("c_first_name"), TextCol("c_last_name"),
               IntCol("c_birth_year", 1930, 2000),
               TextCol("c_login", 0.4), TextCol("c_email_address")}});
  b.AddTable({"store",
              ScaleRows(scale, 12),
              {Pk("s_store_sk"), StrKey("s_store_id", "AAAF", 12),
               TextCol("s_store_name"), IntCol("s_number_employees", 200, 300),
               IntCol("s_floor_space", 5000000, 10000000),
               TextCol("s_city"), CatCol("s_state", {"CA", "NY", "TX"}),
               TextCol("s_manager")}});
  b.AddTable({"call_center",
              ScaleRows(scale, 6),
              {Pk("cc_call_center_sk"), StrKey("cc_call_center_id", "AAAG",
                                               12),
               TextCol("cc_name"), CatCol("cc_class", {"small", "medium",
                                                       "large"}),
               IntCol("cc_employees", 100, 700), TextCol("cc_manager")}});
  b.AddTable({"catalog_page",
              ScaleRows(scale, 60),
              {Pk("cp_catalog_page_sk"), StrKey("cp_catalog_page_id", "AAAH",
                                                12),
               IntCol("cp_catalog_number", 1, 30),
               IntCol("cp_catalog_page_number", 1, 200),
               TextCol("cp_description")}});
  b.AddTable({"web_site",
              ScaleRows(scale, 8),
              {Pk("web_site_sk"), StrKey("web_site_id", "AAAI", 12),
               TextCol("web_name"), TextCol("web_manager"),
               CatCol("web_class", {"Unknown"})}});
  b.AddTable({"web_page",
              ScaleRows(scale, 30),
              {Pk("wp_web_page_sk"), StrKey("wp_web_page_id", "AAAJ", 12),
               CatCol("wp_autogen_flag", {"Y", "N"}),
               TextCol("wp_url"), CatCol("wp_type", {"order", "general",
                                                     "welcome", "protected",
                                                     "feedback"})}});
  b.AddTable({"warehouse",
              ScaleRows(scale, 5),
              {Pk("w_warehouse_sk"), StrKey("w_warehouse_id", "AAAK", 12),
               TextCol("w_warehouse_name"),
               IntCol("w_warehouse_sq_ft", 50000, 1000000),
               TextCol("w_city"), CatCol("w_state", {"CA", "NY", "TX"})}});
  b.AddTable({"ship_mode",
              20,
              {Pk("sm_ship_mode_sk"), StrKey("sm_ship_mode_id", "AAAL", 12),
               CatCol("sm_type", {"EXPRESS", "NEXT DAY", "OVERNIGHT",
                                  "REGULAR", "TWO DAY"}),
               CatCol("sm_code", {"AIR", "SURFACE", "SEA"}),
               TextCol("sm_carrier")}});
  b.AddTable({"reason",
              ScaleRows(scale, 35),
              {Pk("r_reason_sk"), StrKey("r_reason_id", "AAAM", 12),
               TextCol("r_reason_desc")}});
  b.AddTable({"promotion",
              ScaleRows(scale, 30),
              {Pk("p_promo_sk"), StrKey("p_promo_id", "AAAN", 12),
               NumCol("p_cost", 0, 1000), CatCol("p_channel_dmail", {"Y",
                                                                     "N"}),
               TextCol("p_promo_name"), CatCol("p_discount_active", {"Y",
                                                                     "N"})}});

  // --- Facts.
  b.AddTable({"store_sales",
              ss,
              {IntCol("ss_ticket_number", 1, 1 << 24),
               IntCol("ss_quantity", 1, 100), NumCol("ss_list_price", 1, 200),
               NumCol("ss_sales_price", 1, 200),
               NumCol("ss_ext_discount_amt", 0, 1000),
               NumCol("ss_net_paid", 0, 20000),
               NumCol("ss_net_profit", -10000, 10000)}});
  b.AddTable({"store_returns",
              sr,
              {IntCol("sr_ticket_number", 1, 1 << 24),
               IntCol("sr_return_quantity", 1, 100),
               NumCol("sr_return_amt", 0, 20000),
               NumCol("sr_fee", 0, 100), NumCol("sr_net_loss", 0, 10000)}});
  b.AddTable({"catalog_sales",
              cs,
              {IntCol("cs_order_number", 1, 1 << 24),
               IntCol("cs_quantity", 1, 100),
               NumCol("cs_wholesale_cost", 1, 100),
               NumCol("cs_list_price", 1, 300), NumCol("cs_sales_price", 1,
                                                       300),
               NumCol("cs_ext_ship_cost", 0, 1000),
               NumCol("cs_net_profit", -10000, 20000)}});
  b.AddTable({"catalog_returns",
              cr,
              {IntCol("cr_order_number", 1, 1 << 24),
               IntCol("cr_return_quantity", 1, 100),
               NumCol("cr_return_amount", 0, 20000),
               NumCol("cr_fee", 0, 100), NumCol("cr_net_loss", 0, 15000)}});
  b.AddTable({"web_sales",
              ws,
              {IntCol("ws_order_number", 1, 1 << 24),
               IntCol("ws_quantity", 1, 100), NumCol("ws_list_price", 1, 300),
               NumCol("ws_sales_price", 1, 300),
               NumCol("ws_ext_sales_price", 0, 30000),
               NumCol("ws_net_paid", 0, 30000),
               NumCol("ws_net_profit", -10000, 20000)}});
  b.AddTable({"web_returns",
              wr,
              {IntCol("wr_order_number", 1, 1 << 24),
               IntCol("wr_return_quantity", 1, 100),
               NumCol("wr_return_amt", 0, 20000),
               NumCol("wr_fee", 0, 100), NumCol("wr_net_loss", 0, 15000)}});
  b.AddTable({"inventory",
              inv,
              {IntCol("inv_quantity_on_hand", 0, 1000)}});

  // --- FK relationships (the spec's ~107, role-playing included).
  auto fk = [&](const std::string& t, const std::string& c,
                const std::string& rt, const std::string& rc,
                double nulls = 0.02) {
    b.AddFkColumn(t, c, rt, rc, /*skew=*/0.4, /*dangling=*/0.0, nulls);
  };
  // Dimension-to-dimension (snowflake) references.
  fk("household_demographics", "hd_income_band_sk", "income_band",
     "ib_income_band_sk", 0);
  fk("customer", "c_current_cdemo_sk", "customer_demographics", "cd_demo_sk");
  fk("customer", "c_current_hdemo_sk", "household_demographics",
     "hd_demo_sk");
  fk("customer", "c_current_addr_sk", "customer_address", "ca_address_sk");
  fk("customer", "c_first_shipto_date_sk", "date_dim", "d_date_sk");
  fk("customer", "c_first_sales_date_sk", "date_dim", "d_date_sk");
  fk("customer", "c_last_review_date_sk", "date_dim", "d_date_sk");
  fk("store", "s_closed_date_sk", "date_dim", "d_date_sk", 0.3);
  fk("call_center", "cc_open_date_sk", "date_dim", "d_date_sk");
  fk("call_center", "cc_closed_date_sk", "date_dim", "d_date_sk", 0.3);
  fk("catalog_page", "cp_start_date_sk", "date_dim", "d_date_sk");
  fk("catalog_page", "cp_end_date_sk", "date_dim", "d_date_sk");
  fk("web_site", "web_open_date_sk", "date_dim", "d_date_sk");
  fk("web_site", "web_close_date_sk", "date_dim", "d_date_sk", 0.3);
  fk("web_page", "wp_creation_date_sk", "date_dim", "d_date_sk");
  fk("web_page", "wp_access_date_sk", "date_dim", "d_date_sk");
  fk("web_page", "wp_customer_sk", "customer", "c_customer_sk", 0.3);
  fk("promotion", "p_start_date_sk", "date_dim", "d_date_sk");
  fk("promotion", "p_end_date_sk", "date_dim", "d_date_sk");
  fk("promotion", "p_item_sk", "item", "i_item_sk");

  // store_sales (9).
  fk("store_sales", "ss_sold_date_sk", "date_dim", "d_date_sk");
  fk("store_sales", "ss_sold_time_sk", "time_dim", "t_time_sk");
  fk("store_sales", "ss_item_sk", "item", "i_item_sk", 0);
  fk("store_sales", "ss_customer_sk", "customer", "c_customer_sk");
  fk("store_sales", "ss_cdemo_sk", "customer_demographics", "cd_demo_sk");
  fk("store_sales", "ss_hdemo_sk", "household_demographics", "hd_demo_sk");
  fk("store_sales", "ss_addr_sk", "customer_address", "ca_address_sk");
  fk("store_sales", "ss_store_sk", "store", "s_store_sk");
  fk("store_sales", "ss_promo_sk", "promotion", "p_promo_sk");
  // store_returns (9).
  fk("store_returns", "sr_returned_date_sk", "date_dim", "d_date_sk");
  fk("store_returns", "sr_return_time_sk", "time_dim", "t_time_sk");
  fk("store_returns", "sr_item_sk", "item", "i_item_sk", 0);
  fk("store_returns", "sr_customer_sk", "customer", "c_customer_sk");
  fk("store_returns", "sr_cdemo_sk", "customer_demographics", "cd_demo_sk");
  fk("store_returns", "sr_hdemo_sk", "household_demographics", "hd_demo_sk");
  fk("store_returns", "sr_addr_sk", "customer_address", "ca_address_sk");
  fk("store_returns", "sr_store_sk", "store", "s_store_sk");
  fk("store_returns", "sr_reason_sk", "reason", "r_reason_sk");
  // catalog_sales (17).
  fk("catalog_sales", "cs_sold_date_sk", "date_dim", "d_date_sk");
  fk("catalog_sales", "cs_sold_time_sk", "time_dim", "t_time_sk");
  fk("catalog_sales", "cs_ship_date_sk", "date_dim", "d_date_sk");
  fk("catalog_sales", "cs_bill_customer_sk", "customer", "c_customer_sk");
  fk("catalog_sales", "cs_bill_cdemo_sk", "customer_demographics",
     "cd_demo_sk");
  fk("catalog_sales", "cs_bill_hdemo_sk", "household_demographics",
     "hd_demo_sk");
  fk("catalog_sales", "cs_bill_addr_sk", "customer_address", "ca_address_sk");
  fk("catalog_sales", "cs_ship_customer_sk", "customer", "c_customer_sk");
  fk("catalog_sales", "cs_ship_cdemo_sk", "customer_demographics",
     "cd_demo_sk");
  fk("catalog_sales", "cs_ship_hdemo_sk", "household_demographics",
     "hd_demo_sk");
  fk("catalog_sales", "cs_ship_addr_sk", "customer_address", "ca_address_sk");
  fk("catalog_sales", "cs_call_center_sk", "call_center",
     "cc_call_center_sk");
  fk("catalog_sales", "cs_catalog_page_sk", "catalog_page",
     "cp_catalog_page_sk");
  fk("catalog_sales", "cs_ship_mode_sk", "ship_mode", "sm_ship_mode_sk");
  fk("catalog_sales", "cs_warehouse_sk", "warehouse", "w_warehouse_sk");
  fk("catalog_sales", "cs_item_sk", "item", "i_item_sk", 0);
  fk("catalog_sales", "cs_promo_sk", "promotion", "p_promo_sk");
  // catalog_returns (16).
  fk("catalog_returns", "cr_returned_date_sk", "date_dim", "d_date_sk");
  fk("catalog_returns", "cr_returned_time_sk", "time_dim", "t_time_sk");
  fk("catalog_returns", "cr_item_sk", "item", "i_item_sk", 0);
  fk("catalog_returns", "cr_refunded_customer_sk", "customer",
     "c_customer_sk");
  fk("catalog_returns", "cr_refunded_cdemo_sk", "customer_demographics",
     "cd_demo_sk");
  fk("catalog_returns", "cr_refunded_hdemo_sk", "household_demographics",
     "hd_demo_sk");
  fk("catalog_returns", "cr_refunded_addr_sk", "customer_address",
     "ca_address_sk");
  fk("catalog_returns", "cr_returning_customer_sk", "customer",
     "c_customer_sk");
  fk("catalog_returns", "cr_returning_cdemo_sk", "customer_demographics",
     "cd_demo_sk");
  fk("catalog_returns", "cr_returning_hdemo_sk", "household_demographics",
     "hd_demo_sk");
  fk("catalog_returns", "cr_returning_addr_sk", "customer_address",
     "ca_address_sk");
  fk("catalog_returns", "cr_call_center_sk", "call_center",
     "cc_call_center_sk");
  fk("catalog_returns", "cr_catalog_page_sk", "catalog_page",
     "cp_catalog_page_sk");
  fk("catalog_returns", "cr_ship_mode_sk", "ship_mode", "sm_ship_mode_sk");
  fk("catalog_returns", "cr_warehouse_sk", "warehouse", "w_warehouse_sk");
  fk("catalog_returns", "cr_reason_sk", "reason", "r_reason_sk");
  // web_sales (17).
  fk("web_sales", "ws_sold_date_sk", "date_dim", "d_date_sk");
  fk("web_sales", "ws_sold_time_sk", "time_dim", "t_time_sk");
  fk("web_sales", "ws_ship_date_sk", "date_dim", "d_date_sk");
  fk("web_sales", "ws_item_sk", "item", "i_item_sk", 0);
  fk("web_sales", "ws_bill_customer_sk", "customer", "c_customer_sk");
  fk("web_sales", "ws_bill_cdemo_sk", "customer_demographics", "cd_demo_sk");
  fk("web_sales", "ws_bill_hdemo_sk", "household_demographics", "hd_demo_sk");
  fk("web_sales", "ws_bill_addr_sk", "customer_address", "ca_address_sk");
  fk("web_sales", "ws_ship_customer_sk", "customer", "c_customer_sk");
  fk("web_sales", "ws_ship_cdemo_sk", "customer_demographics", "cd_demo_sk");
  fk("web_sales", "ws_ship_hdemo_sk", "household_demographics", "hd_demo_sk");
  fk("web_sales", "ws_ship_addr_sk", "customer_address", "ca_address_sk");
  fk("web_sales", "ws_web_page_sk", "web_page", "wp_web_page_sk");
  fk("web_sales", "ws_web_site_sk", "web_site", "web_site_sk");
  fk("web_sales", "ws_ship_mode_sk", "ship_mode", "sm_ship_mode_sk");
  fk("web_sales", "ws_warehouse_sk", "warehouse", "w_warehouse_sk");
  fk("web_sales", "ws_promo_sk", "promotion", "p_promo_sk");
  // web_returns (13).
  fk("web_returns", "wr_returned_date_sk", "date_dim", "d_date_sk");
  fk("web_returns", "wr_returned_time_sk", "time_dim", "t_time_sk");
  fk("web_returns", "wr_item_sk", "item", "i_item_sk", 0);
  fk("web_returns", "wr_refunded_customer_sk", "customer", "c_customer_sk");
  fk("web_returns", "wr_refunded_cdemo_sk", "customer_demographics",
     "cd_demo_sk");
  fk("web_returns", "wr_refunded_hdemo_sk", "household_demographics",
     "hd_demo_sk");
  fk("web_returns", "wr_refunded_addr_sk", "customer_address",
     "ca_address_sk");
  fk("web_returns", "wr_returning_customer_sk", "customer", "c_customer_sk");
  fk("web_returns", "wr_returning_cdemo_sk", "customer_demographics",
     "cd_demo_sk");
  fk("web_returns", "wr_returning_hdemo_sk", "household_demographics",
     "hd_demo_sk");
  fk("web_returns", "wr_returning_addr_sk", "customer_address",
     "ca_address_sk");
  fk("web_returns", "wr_web_page_sk", "web_page", "wp_web_page_sk");
  fk("web_returns", "wr_reason_sk", "reason", "r_reason_sk");
  // inventory (3).
  fk("inventory", "inv_date_sk", "date_dim", "d_date_sk", 0);
  fk("inventory", "inv_item_sk", "item", "i_item_sk", 0);
  fk("inventory", "inv_warehouse_sk", "warehouse", "w_warehouse_sk", 0);

  BiCase out = b.Generate("TPC-DS", rng);
  out.schema_type = SchemaType::kConstellation;
  return out;
}

}  // namespace autobi
